package main

// Cross-backend determinism gates for the spec-driven workloads
// scenario: a -workload-spec run must produce byte-identical runs[]
// whether cells execute in-process, on subprocess workers (spec
// forwarded by path), or on a loopback TCP fleet (spec forwarded by
// value in the welcome frame), under either scheduling mode, with or
// without the mapped trace tier, and across a kill-and-resume.

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"stbpu/internal/harness"
)

// testSpecDoc is a small two-phase, two-tenant spec exercising an
// explicit weight override, a gamma arrival, a burst modifier, and
// drift — every forwarding path must reproduce it exactly.
const testSpecDoc = `{
  "name": "xbackend",
  "tenants": [
    {"name": "web", "preset": "apache2_prefork_c64", "weight": 2},
    {"name": "db", "preset": "mysql_64con_50s", "weight": 1}
  ],
  "phases": [
    {"name": "calm", "records": 6000, "switch": {"model": "gamma", "mean": 900, "shape": 2}},
    {"name": "spike", "records": 6000, "switch": {"model": "geometric", "mean": 700},
     "weights": [1, 3], "drift": 0.01,
     "burst": {"period": 2000, "len": 400, "factor": 8}}
  ]
}`

// writeTestSpec materializes the fixture document for -workload-spec.
func writeTestSpec(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "xbackend.json")
	if err := os.WriteFile(path, []byte(testSpecDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// specConfig pins the byte-stable configuration for the spec runs.
func specConfig(specPath string) config {
	return config{
		filters:      []string{"workloads"},
		seed:         11,
		workers:      2,
		timing:       false,
		stderr:       io.Discard,
		workloadSpec: specPath,
	}
}

// TestWorkloadSpecCrossBackendDeterminism is the PR's acceptance gate:
// the same spec file run locally, model-major, through the mapped
// disk tier, on exec workers, and on a two-worker loopback fleet
// (workers joining bare, adopting the spec from the welcome frame)
// must yield byte-identical documents modulo placement stats.
func TestWorkloadSpecCrossBackendDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocess workers and a TCP fleet")
	}
	specPath := writeTestSpec(t)
	ref, err := runSuite(context.Background(), specConfig(specPath))
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Runs) != 1 || ref.Runs[0].Cells == 0 {
		t.Fatalf("reference run implausible: %d runs", len(ref.Runs))
	}

	docs := map[string]suiteDoc{}

	// Model-major scheduling: grouping is pure scheduling.
	mm := specConfig(specPath)
	mm.modelMajor = true
	if docs["model-major"], err = runSuite(context.Background(), mm); err != nil {
		t.Fatal(err)
	}

	// Mapped disk tier: generate+spill cold, then map the spill warm.
	tier := specConfig(specPath)
	tier.traceDir = t.TempDir()
	tier.traceMmap = true
	if docs["mmap-cold"], err = runSuite(context.Background(), tier); err != nil {
		t.Fatal(err)
	}
	if docs["mmap-warm"], err = runSuite(context.Background(), tier); err != nil {
		t.Fatal(err)
	}

	// Exec workers: the spec crosses by path (workerSpecEnvVar is this
	// test binary's stand-in for the forwarded -workload-spec argv).
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	ex := specConfig(specPath)
	ex.backend = "exec"
	ex.execWorkers = 2
	ex.workerCmd = []string{exe}
	ex.workerEnv = []string{workerEnvVar + "=1", workerSpecEnvVar + "=" + specPath}
	if docs["exec"], err = runSuite(context.Background(), ex); err != nil {
		t.Fatal(err)
	}

	// Remote fleet: two workers join with empty options and must learn
	// the spec from the coordinator's welcome frame.
	rm := specConfig(specPath)
	rm.backend = "remote"
	rm.listen = "127.0.0.1:0"
	addrCh := make(chan string, 1)
	rm.listenReady = func(addr string) { addrCh <- addr }
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var workers sync.WaitGroup
	workers.Add(2)
	go func() {
		addr := <-addrCh
		for i := 0; i < 2; i++ {
			go func() {
				defer workers.Done()
				_ = harness.ServeRemoteWorker(ctx, addr, harness.WorkerOptions{Workers: 1})
			}()
		}
	}()
	if docs["remote"], err = runSuite(context.Background(), rm); err != nil {
		t.Fatal(err)
	}
	cancel()
	workers.Wait()

	normalizePlacement(&ref)
	want := docBytes(t, ref)
	for name, doc := range docs {
		normalizePlacement(&doc)
		if !bytes.Equal(want, docBytes(t, doc)) {
			t.Errorf("%s spec run diverges from the local reference", name)
		}
	}
}

// TestWorkloadSpecResumeAfterKill pins the crash-recovery contract for
// spec runs: a journaled run killed mid-write (simulated by truncating
// the journal inside its final line — the exact artifact kill -9
// leaves) and rerun with -resume must reproduce the uninterrupted
// document.
func TestWorkloadSpecResumeAfterKill(t *testing.T) {
	specPath := writeTestSpec(t)
	journal := filepath.Join(t.TempDir(), "run.jsonl")

	full := specConfig(specPath)
	full.journal = journal
	docFull, err := runSuite(context.Background(), full)
	if err != nil {
		t.Fatal(err)
	}

	// Keep half the entries plus a torn fragment of the next line.
	b, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(b, []byte("\n"))
	cut := len(lines) / 2
	if cut == 0 {
		t.Fatalf("journal too small to truncate: %d lines", len(lines))
	}
	torn := append(bytes.Join(lines[:cut], nil), lines[cut][:len(lines[cut])/2]...)
	if err := os.WriteFile(journal, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	resumed := specConfig(specPath)
	resumed.journal = journal
	resumed.resume = true
	docResumed, err := runSuite(context.Background(), resumed)
	if err != nil {
		t.Fatal(err)
	}

	normalizePlacement(&docFull)
	normalizePlacement(&docResumed)
	if !bytes.Equal(docBytes(t, docFull), docBytes(t, docResumed)) {
		t.Error("spec run resumed after a torn journal diverges from the uninterrupted run")
	}
}
