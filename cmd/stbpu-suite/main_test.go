package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"stbpu/internal/harness"
	"stbpu/internal/tracestore"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

const workerEnvVar = "STBPU_SUITE_TEST_WORKER"

// TestMain lets this test binary double as the subprocess worker for the
// exec-backend tests: with the env var set it serves the frame protocol
// on stdio — the same harness.ServeWorker loop `stbpu-suite -worker`
// runs — instead of running tests.
func TestMain(m *testing.M) {
	if os.Getenv(workerEnvVar) == "1" {
		if err := harness.ServeWorker(context.Background(), os.Stdin, os.Stdout, harness.WorkerOptions{Workers: 1}); err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// goldenConfig pins every knob that feeds the output bytes: fixed seed,
// fixed worker count (recorded in the document), timing suppressed, and a
// QuickScale-sized subset of scenarios that exercises float, int, bool,
// and nested-struct JSON. Sizing is trimmed below QuickScale so -race CI
// stays fast — the golden file guards bytes, not physics.
func goldenConfig() config {
	return config{
		filters: []string{"fig3", "thresholds", "covert"},
		seed:    1,
		workers: 2,
		timing:  false,
		stderr:  io.Discard,
		params: harness.Params{
			Records:      20_000,
			MaxWorkloads: 4,
			Bits:         128,
			Trials:       2,
		},
	}
}

func TestGoldenSuiteOutput(t *testing.T) {
	doc, err := runSuite(context.Background(), goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeDoc(&buf, doc); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "quick.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/stbpu-suite -update` to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("suite output diverged from %s (%d vs %d bytes); rerun with -update if the change is intended",
			golden, buf.Len(), len(want))
	}
}

// TestExecBackendMatchesLocalGolden is the acceptance gate for the
// distributed path: the quick golden scenario set run on subprocess
// workers must produce byte-identical result JSON to the in-process run,
// modulo the per-backend stats and trace-store blocks (the coordinator's
// trace store sits idle when workers generate their own traces).
func TestExecBackendMatchesLocalGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocess workers")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	local := goldenConfig()
	remote := goldenConfig()
	remote.backend = "exec"
	remote.execWorkers = 2
	remote.workerCmd = []string{exe}
	remote.workerEnv = []string{workerEnvVar + "=1"}

	docLocal, err := runSuite(context.Background(), local)
	if err != nil {
		t.Fatal(err)
	}
	docRemote, err := runSuite(context.Background(), remote)
	if err != nil {
		t.Fatal(err)
	}
	if len(docRemote.Backends) != 1 || docRemote.Backends[0].Backend != "exec" || docRemote.Backends[0].Cells == 0 {
		t.Errorf("exec run backend stats implausible: %+v", docRemote.Backends)
	}
	// Normalize the blocks the comparison is explicitly modulo of.
	docLocal.Backends, docRemote.Backends = nil, nil
	docLocal.TraceStore, docRemote.TraceStore = tracestore.Stats{}, tracestore.Stats{}

	var a, b bytes.Buffer
	if err := writeDoc(&a, docLocal); err != nil {
		t.Fatal(err)
	}
	if err := writeDoc(&b, docRemote); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("exec-backend suite output diverges from local (%d vs %d bytes)", a.Len(), b.Len())
	}
}

// TestGoldenOutputWorkerInvariant re-runs the golden configuration at a
// different parallelism: only the recorded worker count may change, so
// the runs' results must match the golden file after normalization.
func TestGoldenOutputWorkerInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("repeat run; covered by TestGoldenSuiteOutput in short mode")
	}
	base := goldenConfig()
	alt := base
	alt.workers = 5
	docBase, err := runSuite(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	docAlt, err := runSuite(context.Background(), alt)
	if err != nil {
		t.Fatal(err)
	}
	docAlt.Workers = docBase.Workers
	for i := range docAlt.Runs {
		docAlt.Runs[i].Workers = docBase.Runs[i].Workers
	}
	var a, b bytes.Buffer
	if err := writeDoc(&a, docBase); err != nil {
		t.Fatal(err)
	}
	if err := writeDoc(&b, docAlt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("suite results depend on worker count")
	}
}
