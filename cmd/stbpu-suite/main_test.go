package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"

	"stbpu/internal/harness"
	"stbpu/internal/snapstore"
	"stbpu/internal/trace/spec"
	"stbpu/internal/tracestore"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

const workerEnvVar = "STBPU_SUITE_TEST_WORKER"

// workerSpecEnvVar points the test worker at a workload-spec file, the
// test-binary analogue of `stbpu-suite -worker -workload-spec FILE`.
const workerSpecEnvVar = "STBPU_SUITE_TEST_WORKLOAD_SPEC"

// TestMain lets this test binary double as the subprocess worker for the
// exec-backend tests: with the env var set it serves the frame protocol
// on stdio — the same harness.ServeWorker loop `stbpu-suite -worker`
// runs — instead of running tests.
func TestMain(m *testing.M) {
	if os.Getenv(workerEnvVar) == "1" {
		opts := harness.WorkerOptions{Workers: 1}
		if path := os.Getenv(workerSpecEnvVar); path != "" {
			s, err := spec.LoadFile(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "worker:", err)
				os.Exit(1)
			}
			opts.WorkloadSpecs = []string{string(s.Canonical())}
		}
		if err := harness.ServeWorker(context.Background(), os.Stdin, os.Stdout, opts); err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// goldenConfig pins every knob that feeds the output bytes: fixed seed,
// fixed worker count (recorded in the document), timing suppressed, and a
// QuickScale-sized subset of scenarios that exercises float, int, bool,
// and nested-struct JSON. Sizing is trimmed below QuickScale so -race CI
// stays fast — the golden file guards bytes, not physics.
func goldenConfig() config {
	return config{
		filters: []string{"fig3", "thresholds", "covert"},
		seed:    1,
		workers: 2,
		timing:  false,
		stderr:  io.Discard,
		params: harness.Params{
			Records:      20_000,
			MaxWorkloads: 4,
			Bits:         128,
			Trials:       2,
		},
	}
}

func TestGoldenSuiteOutput(t *testing.T) {
	doc, err := runSuite(context.Background(), goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeDoc(&buf, doc); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "quick.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/stbpu-suite -update` to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("suite output diverged from %s (%d vs %d bytes); rerun with -update if the change is intended",
			golden, buf.Len(), len(want))
	}
}

// TestExecBackendMatchesLocalGolden is the acceptance gate for the
// distributed path: the quick golden scenario set run on subprocess
// workers must produce byte-identical result JSON to the in-process run,
// modulo the per-backend stats and trace-store blocks (the coordinator's
// trace store sits idle when workers generate their own traces).
func TestExecBackendMatchesLocalGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocess workers")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	local := goldenConfig()
	remote := goldenConfig()
	remote.backend = "exec"
	remote.execWorkers = 2
	remote.workerCmd = []string{exe}
	remote.workerEnv = []string{workerEnvVar + "=1"}

	docLocal, err := runSuite(context.Background(), local)
	if err != nil {
		t.Fatal(err)
	}
	docRemote, err := runSuite(context.Background(), remote)
	if err != nil {
		t.Fatal(err)
	}
	if len(docRemote.Backends) != 1 || docRemote.Backends[0].Backend != "exec" || docRemote.Backends[0].Cells == 0 {
		t.Errorf("exec run backend stats implausible: %+v", docRemote.Backends)
	}
	// Normalize the blocks the comparison is explicitly modulo of.
	normalizePlacement(&docLocal)
	normalizePlacement(&docRemote)
	if !bytes.Equal(docBytes(t, docLocal), docBytes(t, docRemote)) {
		t.Error("exec-backend suite output diverges from local")
	}
}

// TestRemoteBackendMatchesLocalGolden is the fleet-level acceptance
// gate: the golden scenario set coordinated over loopback TCP across
// two workers must produce a suite document byte-identical to the
// in-process run, modulo placement stats, with both workers visible in
// the fleet stats block.
func TestRemoteBackendMatchesLocalGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a TCP worker fleet")
	}
	docLocal, err := runSuite(context.Background(), goldenConfig())
	if err != nil {
		t.Fatal(err)
	}

	remote := goldenConfig()
	remote.backend = "remote"
	remote.listen = "127.0.0.1:0"
	addrCh := make(chan string, 1)
	remote.listenReady = func(addr string) { addrCh <- addr }

	// Workers dial in as soon as the coordinator reports its port; they
	// exit when runSuite closes the backend (their connections drop).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var workers sync.WaitGroup
	workers.Add(2)
	go func() {
		addr := <-addrCh
		for i := 0; i < 2; i++ {
			go func() {
				defer workers.Done()
				_ = harness.ServeRemoteWorker(ctx, addr, harness.WorkerOptions{Workers: 1})
			}()
		}
	}()
	docRemote, err := runSuite(context.Background(), remote)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	workers.Wait()

	if len(docRemote.Backends) != 1 || docRemote.Backends[0].Backend != "remote" {
		t.Fatalf("fleet stats block missing: %+v", docRemote.Backends)
	}
	fleet := docRemote.Backends[0]
	if fleet.Cells == 0 || fleet.Joins != 2 || len(fleet.Workers) != 2 {
		t.Errorf("fleet stats implausible: %+v", fleet)
	}
	normalizePlacement(&docLocal)
	normalizePlacement(&docRemote)
	if !bytes.Equal(docBytes(t, docLocal), docBytes(t, docRemote)) {
		t.Error("remote-fleet suite output diverges from local")
	}
}

// TestExecResumeAllScenarios widens the exec + resume byte-identity
// gate to every registered scenario at tiny scale — the golden subset
// (fig3/thresholds/covert) never touches fig6Cell, ittageCell, or the
// other cell types whose wire fidelity would silently rot if a field
// lost its export.
func TestExecResumeAllScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every scenario, spawns subprocess workers")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	tiny := config{
		seed:    3,
		workers: 2,
		timing:  false,
		stderr:  io.Discard,
		params: harness.Params{
			Records: 8000, MaxWorkloads: 2, MaxPairs: 2,
			Trials: 2, Bits: 32, Budget: 200,
		},
	}
	docLocal, err := runSuite(context.Background(), tiny)
	if err != nil {
		t.Fatal(err)
	}

	// Journal a full local run, keep a prefix (a killed run), then
	// resume it on the exec backend: every scenario's remaining cells
	// cross the wire AND splice against journaled ones.
	journal := filepath.Join(t.TempDir(), "run.jsonl")
	journaled := tiny
	journaled.journal = journal
	if _, err := runSuite(context.Background(), journaled); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(b, []byte("\n"))
	if err := os.WriteFile(journal, bytes.Join(lines[:len(lines)/2], nil), 0o644); err != nil {
		t.Fatal(err)
	}
	resumed := tiny
	resumed.journal = journal
	resumed.resume = true
	resumed.backend = "exec"
	resumed.execWorkers = 2
	resumed.workerCmd = []string{exe}
	resumed.workerEnv = []string{workerEnvVar + "=1"}
	docResumed, err := runSuite(context.Background(), resumed)
	if err != nil {
		t.Fatal(err)
	}
	if len(docResumed.Runs) < 12 {
		t.Fatalf("only %d scenarios ran", len(docResumed.Runs))
	}
	normalizePlacement(&docLocal)
	normalizePlacement(&docResumed)
	if !bytes.Equal(docBytes(t, docLocal), docBytes(t, docResumed)) {
		t.Error("exec-resumed all-scenario document diverges from the local run")
	}
}

// TestTraceMajorOffMatchesOn pins the scheduling flag's contract: the
// golden scenario set produces byte-identical documents under grouped
// trace-major scheduling (the default) and per-cell model-major
// scheduling, modulo trace-store counters — grouping changes how often
// the cache is consulted, never what the cells compute.
func TestTraceMajorOffMatchesOn(t *testing.T) {
	docOn, err := runSuite(context.Background(), goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	off := goldenConfig()
	off.modelMajor = true
	docOff, err := runSuite(context.Background(), off)
	if err != nil {
		t.Fatal(err)
	}
	normalizePlacement(&docOn)
	normalizePlacement(&docOff)
	if !bytes.Equal(docBytes(t, docOn), docBytes(t, docOff)) {
		t.Error("model-major suite output diverges from trace-major")
	}
}

// snapConfig selects the scenarios that exercise the predictor-state
// snapshot tier: the phase-structured workloads (checkpoint at phase
// boundaries) and the warm-state curve (single-pass preset warmup).
func snapConfig() config {
	cfg := goldenConfig()
	cfg.filters = []string{"workloads", "warmup"}
	return cfg
}

// TestSnapshotsOffMatchesOn is the snapshot tier's suite-level
// acceptance gate: checkpoint-restored warmup must be bit-identical to
// full prefix replay — the tier buys time, never different physics.
// Model-major scheduling makes every later-phase cell its own group, so
// each joins mid-trace and restores a checkpoint; that run must match
// both a model-major full-replay run and the trace-major default, and
// must actually engage the tier, or the comparison passes vacuously.
func TestSnapshotsOffMatchesOn(t *testing.T) {
	mm := snapConfig()
	mm.modelMajor = true
	docOn, err := runSuite(context.Background(), mm)
	if err != nil {
		t.Fatal(err)
	}
	if st := docOn.SnapStore; st.Puts == 0 || st.Hits == 0 {
		t.Errorf("snapshot tier never engaged: %+v", st)
	}
	off := snapConfig()
	off.modelMajor = true
	off.snapshotsOff = true
	docOff, err := runSuite(context.Background(), off)
	if err != nil {
		t.Fatal(err)
	}
	if st := docOff.SnapStore; st.Puts != 0 || st.Hits != 0 {
		t.Errorf("-snapshots=false still touched the tier: %+v", st)
	}
	docTM, err := runSuite(context.Background(), snapConfig())
	if err != nil {
		t.Fatal(err)
	}
	normalizePlacement(&docOn)
	normalizePlacement(&docOff)
	normalizePlacement(&docTM)
	ref := docBytes(t, docOn)
	if !bytes.Equal(ref, docBytes(t, docOff)) {
		t.Error("snapshot-restored suite output diverges from full replay")
	}
	if !bytes.Equal(ref, docBytes(t, docTM)) {
		t.Error("model-major snapshot run diverges from the trace-major default")
	}
}

// TestSnapDirSecondRunHitsDisk pins the checkpoint disk tier end to
// end: a first run spills .snap files, and a second process restores
// them. The second run squeezes the in-memory store to one byte so
// every restore must come off disk — without that, its own puts would
// satisfy the gets from memory and the disk path would go untested.
// All runs, plus a full-replay run, must be byte-identical modulo store
// counters.
func TestSnapDirSecondRunHitsDisk(t *testing.T) {
	dir := t.TempDir()
	cfg := snapConfig()
	cfg.snapDir = dir

	first, err := runSuite(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st := first.SnapStore; st.DiskWrites == 0 {
		t.Fatalf("first run spilled no checkpoints: %+v", st)
	}

	warm := snapConfig()
	warm.snapDir = dir
	warm.modelMajor = true
	warm.snapBytes = 1
	second, err := runSuite(context.Background(), warm)
	if err != nil {
		t.Fatal(err)
	}
	if st := second.SnapStore; st.DiskHits == 0 {
		t.Fatalf("second run did not restore from disk: %+v", st)
	}

	bare := snapConfig()
	bare.snapshotsOff = true
	replay, err := runSuite(context.Background(), bare)
	if err != nil {
		t.Fatal(err)
	}

	normalizePlacement(&first)
	normalizePlacement(&second)
	normalizePlacement(&replay)
	ref := docBytes(t, first)
	if !bytes.Equal(ref, docBytes(t, second)) {
		t.Error("disk-restored run diverges from the spilling run")
	}
	if !bytes.Equal(ref, docBytes(t, replay)) {
		t.Error("snapshot-tier runs diverge from full replay")
	}
}

// TestMmapTierMatchesDecode pins the zero-copy tier's contract through
// the whole suite: a cold run that spills STBT v2 files, a warm run
// that maps them, and a plain-decode run over the same directory must
// all produce the document an undisked run produces, modulo trace-store
// counters. The warm run must actually take the mmap path (on Linux,
// where CI runs) — a silent fallback to decode would pass the byte
// comparison while voiding the perf claim.
func TestMmapTierMatchesDecode(t *testing.T) {
	ref, err := runSuite(context.Background(), goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	mm := goldenConfig()
	mm.traceDir = dir
	mm.traceMmap = true
	cold, err := runSuite(context.Background(), mm)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := runSuite(context.Background(), mm)
	if err != nil {
		t.Fatal(err)
	}
	if runtime.GOOS == "linux" {
		if cold.TraceStore.DiskWrites == 0 {
			t.Errorf("cold mmap run spilled nothing: %+v", cold.TraceStore)
		}
		if warm.TraceStore.MmapHits == 0 || warm.TraceStore.Generations != 0 {
			t.Errorf("warm run did not map the spilled tier: %+v", warm.TraceStore)
		}
	}
	// Plain decode mode over the same directory: the v2 files must be
	// readable by the streaming decoder (format interop, not just mmap).
	dec := goldenConfig()
	dec.traceDir = dir
	decoded, err := runSuite(context.Background(), dec)
	if err != nil {
		t.Fatal(err)
	}
	normalizePlacement(&ref)
	for name, doc := range map[string]*suiteDoc{"cold": &cold, "warm": &warm, "decoded": &decoded} {
		normalizePlacement(doc)
		if !bytes.Equal(docBytes(t, ref), docBytes(t, *doc)) {
			t.Errorf("%s trace-tier suite output diverges from the undisked run", name)
		}
	}
}

// TestRemoteFleetTraceTierMatchesLocal runs the golden set on a
// two-worker loopback fleet with the shared mapped trace tier and
// trace-major scheduling — the full PR-7 configuration — and requires
// byte identity with the plain local run. Workers join with empty
// options and adopt the tier/scheduling modes from the welcome frame.
func TestRemoteFleetTraceTierMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a TCP worker fleet")
	}
	docLocal, err := runSuite(context.Background(), goldenConfig())
	if err != nil {
		t.Fatal(err)
	}

	remote := goldenConfig()
	remote.backend = "remote"
	remote.listen = "127.0.0.1:0"
	remote.traceDir = t.TempDir()
	remote.traceMmap = true
	addrCh := make(chan string, 1)
	remote.listenReady = func(addr string) { addrCh <- addr }

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var workers sync.WaitGroup
	workers.Add(2)
	go func() {
		addr := <-addrCh
		for i := 0; i < 2; i++ {
			go func() {
				defer workers.Done()
				_ = harness.ServeRemoteWorker(ctx, addr, harness.WorkerOptions{Workers: 1})
			}()
		}
	}()
	docRemote, err := runSuite(context.Background(), remote)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	workers.Wait()

	normalizePlacement(&docLocal)
	normalizePlacement(&docRemote)
	if !bytes.Equal(docBytes(t, docLocal), docBytes(t, docRemote)) {
		t.Error("fleet + mapped-tier suite output diverges from local")
	}
}

// TestRemoteFleetSnapshotTierMatchesLocal runs the snapshot scenarios
// on a two-worker loopback fleet with a shared checkpoint directory.
// Workers join with empty options and adopt the snapshot mode and snap
// dir from the welcome frame — their spilled .snap files prove the
// adoption — and the fleet document must be byte-identical to both the
// local snapshot run and a local full-replay run.
func TestRemoteFleetSnapshotTierMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a TCP worker fleet")
	}
	docLocal, err := runSuite(context.Background(), snapConfig())
	if err != nil {
		t.Fatal(err)
	}
	replayCfg := snapConfig()
	replayCfg.snapshotsOff = true
	docReplay, err := runSuite(context.Background(), replayCfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	remote := snapConfig()
	remote.backend = "remote"
	remote.listen = "127.0.0.1:0"
	remote.snapDir = dir
	addrCh := make(chan string, 1)
	remote.listenReady = func(addr string) { addrCh <- addr }

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var workers sync.WaitGroup
	workers.Add(2)
	go func() {
		addr := <-addrCh
		for i := 0; i < 2; i++ {
			go func() {
				defer workers.Done()
				_ = harness.ServeRemoteWorker(ctx, addr, harness.WorkerOptions{Workers: 1})
			}()
		}
	}()
	docRemote, err := runSuite(context.Background(), remote)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	workers.Wait()

	if spills, err := filepath.Glob(filepath.Join(dir, "*.snap")); err != nil || len(spills) == 0 {
		t.Errorf("fleet workers spilled no checkpoints to the shared dir (%v, %v)", spills, err)
	}

	normalizePlacement(&docLocal)
	normalizePlacement(&docReplay)
	normalizePlacement(&docRemote)
	ref := docBytes(t, docLocal)
	if !bytes.Equal(ref, docBytes(t, docRemote)) {
		t.Error("fleet + snapshot-tier suite output diverges from local")
	}
	if !bytes.Equal(ref, docBytes(t, docReplay)) {
		t.Error("snapshot-tier output diverges from full replay")
	}
}

// normalizePlacement zeroes the blocks that legitimately differ when
// the same cells run in different places (or not at all, on resume):
// per-backend stats and the coordinator's trace-store and snap-store
// counters.
func normalizePlacement(doc *suiteDoc) {
	doc.Backends = nil
	doc.TraceStore = tracestore.Stats{}
	doc.SnapStore = snapstore.Stats{}
}

func docBytes(t *testing.T, doc suiteDoc) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeDoc(&buf, doc); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestResumeProducesIdenticalDocument is the resume acceptance gate at
// the suite level: a journaled run interrupted partway (here simulated
// by truncating the journal to a prefix, the exact artifact a kill
// leaves) and restarted with -resume must produce a final document
// byte-identical to an uninterrupted run, modulo placement stats.
func TestResumeProducesIdenticalDocument(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "run.jsonl")

	full := goldenConfig()
	full.journal = journal
	docFull, err := runSuite(context.Background(), full)
	if err != nil {
		t.Fatal(err)
	}

	// Keep a prefix of the journal — a run that died partway through.
	b, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(b, []byte("\n"))
	cut := len(lines) * 2 / 3
	if err := os.WriteFile(journal, bytes.Join(lines[:cut], nil), 0o644); err != nil {
		t.Fatal(err)
	}

	resumed := goldenConfig()
	resumed.journal = journal
	resumed.resume = true
	docResumed, err := runSuite(context.Background(), resumed)
	if err != nil {
		t.Fatal(err)
	}

	normalizePlacement(&docFull)
	normalizePlacement(&docResumed)
	if !bytes.Equal(docBytes(t, docFull), docBytes(t, docResumed)) {
		t.Error("resumed document differs from the uninterrupted run")
	}

	// The journal must be whole again after the resume.
	entries, err := harness.ReadJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(lines)-1 { // SplitAfter leaves a trailing empty slice
		t.Errorf("resumed journal holds %d entries, want %d", len(entries), len(lines)-1)
	}
}

// TestResumeExecBackendIdentical runs the same gate with cells on
// subprocess workers: journal entries recorded by a local run must
// satisfy an exec-backend resume and vice versa — the journal is keyed
// by cell address, which is backend-agnostic.
func TestResumeExecBackendIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocess workers")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	journal := filepath.Join(dir, "run.jsonl")

	local := goldenConfig()
	docLocal, err := runSuite(context.Background(), local)
	if err != nil {
		t.Fatal(err)
	}

	// Pass 1 on exec workers, journaled, covering a scenario subset —
	// a sweep that died between scenarios.
	pass1 := goldenConfig()
	pass1.filters = []string{"fig3"}
	pass1.journal = journal
	pass1.backend = "exec"
	pass1.execWorkers = 2
	pass1.workerCmd = []string{exe}
	pass1.workerEnv = []string{workerEnvVar + "=1"}
	if _, err := runSuite(context.Background(), pass1); err != nil {
		t.Fatal(err)
	}

	// Pass 2 resumes the full set on the exec backend.
	pass2 := goldenConfig()
	pass2.journal = journal
	pass2.resume = true
	pass2.backend = "exec"
	pass2.execWorkers = 2
	pass2.workerCmd = []string{exe}
	pass2.workerEnv = []string{workerEnvVar + "=1"}
	docResumed, err := runSuite(context.Background(), pass2)
	if err != nil {
		t.Fatal(err)
	}

	normalizePlacement(&docLocal)
	normalizePlacement(&docResumed)
	if !bytes.Equal(docBytes(t, docLocal), docBytes(t, docResumed)) {
		t.Error("exec-backend resumed document differs from a local uninterrupted run")
	}
}

func TestResumeRequiresJournal(t *testing.T) {
	cfg := goldenConfig()
	cfg.resume = true
	if _, err := runSuite(context.Background(), cfg); err == nil {
		t.Error("-resume without -journal was accepted")
	}
}

// TestJournalRefusesToClobberWithoutResume: rerunning a crashed
// journaled command without -resume must not truncate the completed
// cells the journal exists to protect.
func TestJournalRefusesToClobberWithoutResume(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "run.jsonl")
	cfg := goldenConfig()
	cfg.journal = journal
	if _, err := runSuite(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	_, err = runSuite(context.Background(), cfg) // same command, -resume forgotten
	if err == nil || !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("non-empty journal clobbered without -resume: err = %v", err)
	}
	after, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("refused run still modified the journal")
	}
}

func TestListJSONEnumeratesScenarios(t *testing.T) {
	var buf bytes.Buffer
	if err := writeScenarioListJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var infos []scenarioInfo
	if err := json.Unmarshal(buf.Bytes(), &infos); err != nil {
		t.Fatalf("-list-json output is not valid JSON: %v", err)
	}
	byName := map[string]scenarioInfo{}
	for _, s := range infos {
		byName[s.Name] = s
	}
	fig3, ok := byName["fig3"]
	if !ok {
		t.Fatalf("fig3 missing from %d scenarios", len(infos))
	}
	if fig3.Defaults.Records != 120_000 {
		t.Errorf("fig3 default records = %d", fig3.Defaults.Records)
	}
	if fig6 := byName["fig6"]; len(fig6.Defaults.Sweep) == 0 {
		t.Errorf("fig6 default sweep missing: %+v", fig6.Defaults)
	}
	if len(infos) < 12 {
		t.Errorf("only %d scenarios listed", len(infos))
	}
}

// TestGoldenOutputWorkerInvariant re-runs the golden configuration at a
// different parallelism: only the recorded worker count may change, so
// the runs' results must match the golden file after normalization.
func TestGoldenOutputWorkerInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("repeat run; covered by TestGoldenSuiteOutput in short mode")
	}
	base := goldenConfig()
	alt := base
	alt.workers = 5
	docBase, err := runSuite(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	docAlt, err := runSuite(context.Background(), alt)
	if err != nil {
		t.Fatal(err)
	}
	docAlt.Workers = docBase.Workers
	for i := range docAlt.Runs {
		docAlt.Runs[i].Workers = docBase.Runs[i].Workers
	}
	var a, b bytes.Buffer
	if err := writeDoc(&a, docBase); err != nil {
		t.Fatal(err)
	}
	if err := writeDoc(&b, docAlt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("suite results depend on worker count")
	}
}

// TestTraceDirSecondRunHitsDisk is the acceptance gate for the
// persistent trace tier: a second run sharing -trace-dir must satisfy
// every trace from disk (zero generations) and still produce a
// document byte-identical to the first run and to the committed golden
// (modulo placement stats).
func TestTraceDirSecondRunHitsDisk(t *testing.T) {
	dir := t.TempDir()
	cfg := goldenConfig()
	cfg.traceDir = dir

	first, err := runSuite(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st := first.TraceStore; st.DiskWrites == 0 || st.Generations == 0 {
		t.Fatalf("first run spilled nothing: %+v", st)
	}

	second, err := runSuite(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st := second.TraceStore; st.Generations != 0 || st.DiskHits == 0 {
		t.Fatalf("second run did not serve from disk: %+v", st)
	}

	normalizePlacement(&first)
	normalizePlacement(&second)
	if !bytes.Equal(docBytes(t, first), docBytes(t, second)) {
		t.Error("trace-dir-served run diverges from the generating run")
	}

	// Against a tier-less run too: the tier must be invisible in
	// scenario results (and the tier-less run is itself pinned to the
	// committed golden by TestGoldenSuiteOutput).
	bare, err := runSuite(context.Background(), goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	normalizePlacement(&bare)
	if !bytes.Equal(docBytes(t, bare), docBytes(t, second)) {
		t.Error("trace-dir run diverges from the tier-less run")
	}
}
