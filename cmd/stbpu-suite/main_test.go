package main

import (
	"bytes"
	"context"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"

	"stbpu/internal/harness"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// goldenConfig pins every knob that feeds the output bytes: fixed seed,
// fixed worker count (recorded in the document), timing suppressed, and a
// QuickScale-sized subset of scenarios that exercises float, int, bool,
// and nested-struct JSON. Sizing is trimmed below QuickScale so -race CI
// stays fast — the golden file guards bytes, not physics.
func goldenConfig() config {
	return config{
		filters: []string{"fig3", "thresholds", "covert"},
		seed:    1,
		workers: 2,
		timing:  false,
		stderr:  io.Discard,
		params: harness.Params{
			Records:      20_000,
			MaxWorkloads: 4,
			Bits:         128,
			Trials:       2,
		},
	}
}

func TestGoldenSuiteOutput(t *testing.T) {
	doc, err := runSuite(context.Background(), goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeDoc(&buf, doc); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "quick.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/stbpu-suite -update` to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("suite output diverged from %s (%d vs %d bytes); rerun with -update if the change is intended",
			golden, buf.Len(), len(want))
	}
}

// TestGoldenOutputWorkerInvariant re-runs the golden configuration at a
// different parallelism: only the recorded worker count may change, so
// the runs' results must match the golden file after normalization.
func TestGoldenOutputWorkerInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("repeat run; covered by TestGoldenSuiteOutput in short mode")
	}
	base := goldenConfig()
	alt := base
	alt.workers = 5
	docBase, err := runSuite(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	docAlt, err := runSuite(context.Background(), alt)
	if err != nil {
		t.Fatal(err)
	}
	docAlt.Workers = docBase.Workers
	for i := range docAlt.Runs {
		docAlt.Runs[i].Workers = docBase.Runs[i].Workers
	}
	var a, b bytes.Buffer
	if err := writeDoc(&a, docBase); err != nil {
		t.Fatal(err)
	}
	if err := writeDoc(&b, docAlt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("suite results depend on worker count")
	}
}
