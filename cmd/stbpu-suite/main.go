// Command stbpu-suite lists, filters, and runs the registered experiment
// scenarios on the parallel harness and emits one JSON document per run —
// root seed, worker count, per-scenario parameters, cell counts, timing,
// per-backend stats, and structured results — suitable for golden-file
// comparison and benchmarking trajectories. The document schema is
// specified in docs/SUITE_JSON.md.
//
// Usage:
//
//	stbpu-suite -list                       # registered scenarios
//	stbpu-suite -list-json                  # same, machine-readable with defaults
//	stbpu-suite -run 'fig*' -records 40000  # glob filters, scale knobs
//	stbpu-suite -run thresholds,gamma       # comma-separated filters
//	stbpu-suite -quick -seed 1 -workers 4   # QuickScale, fixed seed/pool
//	stbpu-suite -timing=false               # reproducible output bytes
//	stbpu-suite -backend exec -exec-workers 4  # cells on 4 subprocesses
//	stbpu-suite -worker                     # subprocess worker mode
//	stbpu-suite -backend remote -listen :7701  # coordinate a TCP worker fleet
//	stbpu-suite -worker -connect host:7701  # join a fleet as a network worker
//	stbpu-suite -affinity=false             # plain work sharing (no locality routing)
//	stbpu-suite -wire json                  # pin JSON wire frames (debug/old fleets)
//	stbpu-suite -pprof localhost:6060       # serve live profiling endpoints
//	stbpu-suite -journal run.jsonl          # stream completed cells to a journal
//	stbpu-suite -journal run.jsonl -resume  # skip cells the journal already holds
//	stbpu-suite -trace-dir ~/.cache/stbpu   # persist generated traces across runs
//	stbpu-suite -trace-dir d -trace-mmap    # map spilled traces zero-copy (unix)
//	stbpu-suite -trace-major=false          # model-major (ungrouped) scheduling
//	stbpu-suite -snapshots=false            # force full warmup replay (no checkpoints)
//	stbpu-suite -snap-dir ~/.cache/stbpu-snaps  # persist predictor checkpoints across runs
//
// With -backend exec the suite spawns `stbpu-suite -worker` subprocesses
// that execute cell batches received as length-prefixed JSON frames on
// stdin and answer results on stdout; -backend mixed splits cells
// between the in-process pool and the subprocess fleet. With -backend
// remote the suite listens on -listen and schedules the same frames over
// TCP across whatever workers have dialed in with -worker -connect —
// workers may join late, die mid-chunk, or straggle (their cells are
// speculatively re-executed elsewhere). Results are bit-identical across
// backends and fleet shapes (see docs/ARCHITECTURE.md).
//
// With -journal every completed cell is appended to a JSONL run journal
// as it finishes; if the run dies, rerunning with -resume skips the
// journaled cells and produces a final document byte-identical (modulo
// timing and backend/trace-store stats) to an uninterrupted run, on any
// backend. Compare two runs with cmd/stbpu-report.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // -pprof: registers the profiling handlers
	"os"
	"os/signal"
	"strings"
	"time"

	"stbpu/internal/experiments"
	"stbpu/internal/harness"
	"stbpu/internal/snapstore"
	"stbpu/internal/trace/spec"
	"stbpu/internal/tracestore"
)

// suiteDoc is the one-run JSON document.
type suiteDoc struct {
	Suite   string `json:"suite"`
	Seed    uint64 `json:"seed"`
	Workers int    `json:"workers"`
	// ElapsedMS is total wall-clock time (0 when -timing=false).
	ElapsedMS int64            `json:"elapsed_ms"`
	Runs      []harness.Report `json:"runs"`
	// Backends reports per-backend execution stats (cells run, retries,
	// wall time; wall time is 0 when -timing=false).
	Backends []harness.BackendStats `json:"backends"`
	// TraceStore reports the shared cross-run trace cache's hit/miss/
	// generation/eviction counters for the whole run. With -backend exec
	// the coordinator's store sits idle: workers generate traces into
	// their own process-local stores.
	TraceStore tracestore.Stats `json:"trace_store"`
	// SnapStore reports the warm-state checkpoint store's counters for
	// the whole run (docs/SUITE_JSON.md). Like TraceStore, with -backend
	// exec/remote the coordinator's store sits mostly idle: workers
	// checkpoint into their own process-local stores (shared only
	// through -snap-dir's disk tier).
	SnapStore snapstore.Stats `json:"snap_store"`
}

// config carries the parsed CLI knobs; factored out so tests drive the
// exact code path main uses.
type config struct {
	filters    []string
	seed       uint64
	workers    int
	cacheBytes int64
	// traceDir enables the persistent trace tier: generated traces spill
	// as STBT files and later runs (and exec workers) decode instead of
	// regenerating.
	traceDir string
	// modelMajor disables trace-major grouped scheduling. Stored inverted
	// (like harness.Pool) so a zero-value config keeps the default:
	// trace-major on.
	modelMajor bool
	// traceMmap spills traces in the page-aligned STBT v2 layout and maps
	// them read-only as columns instead of decoding (with -trace-dir).
	traceMmap bool
	// snapshotsOff disables the warm-state snapshot tier. Stored inverted
	// (like modelMajor) so a zero-value config keeps the default: on.
	snapshotsOff bool
	// snapBytes bounds the in-memory checkpoint store (<= 0 = default).
	snapBytes int64
	// snapDir enables the persistent checkpoint tier: phase-boundary
	// predictor snapshots spill as .snap files and later runs (and
	// workers sharing the directory) restore instead of replaying.
	snapDir     string
	backend     string // "local" (default), "exec", "mixed", or "remote"
	execWorkers int
	// execTimeout bounds one exec-worker batch; a worker that exceeds it
	// is killed and its chunk requeued (0 = no deadline).
	execTimeout time.Duration
	// listen is the -backend remote coordinator's TCP address.
	listen string
	// wire pins the frame codec on both wire backends: "" negotiates
	// the compact binary codec, "json" forces JSON frames.
	wire string
	// affinityOff disables locality-aware fleet dispatch. Stored
	// inverted (like modelMajor) so a zero-value config keeps the
	// default: affinity on.
	affinityOff bool
	// listenReady, when set, receives the coordinator's bound address
	// once it is accepting workers (tests use it to learn the ephemeral
	// port before launching workers).
	listenReady func(addr string)
	// workloadSpec is a JSON workload-spec file (docs/WORKLOADS.md):
	// runSuite registers it, points the workloads scenario at it, and
	// forwards it to exec workers (by path) and remote fleets (by
	// document, in the welcome frame).
	workloadSpec string
	// workloadSpecDoc is the loaded spec's canonical JSON (set by
	// runSuite for buildBackend's remote welcome frame).
	workloadSpecDoc string
	// journal streams completed cells to this JSONL file; with resume
	// set, cells the file already holds are not re-executed.
	journal string
	resume  bool
	// workerCmd/workerEnv override the subprocess command (tests re-exec
	// their own binary); nil means this executable with -worker.
	workerCmd []string
	workerEnv []string
	params    harness.Params
	timing    bool
	verbose   bool
	stderr    io.Writer
}

// buildBackend constructs the backend the -backend flag selects; nil
// means the pool's default in-process LocalBackend.
func buildBackend(cfg config) (harness.Backend, error) {
	execWorkers := cfg.execWorkers
	if execWorkers <= 0 {
		execWorkers = 2
	}
	newExec := func() (*harness.ExecBackend, error) {
		cmd := cfg.workerCmd
		if cmd == nil {
			exe, err := os.Executable()
			if err != nil {
				return nil, fmt.Errorf("resolve worker executable: %w", err)
			}
			// Forward the resource knobs so workers honor the same bounds
			// as the coordinator (each worker applies them per process) and
			// share the persistent trace tier when one is configured.
			cmd = []string{exe, "-worker",
				fmt.Sprintf("-workers=%d", cfg.workers),
				fmt.Sprintf("-cache-bytes=%d", cfg.cacheBytes)}
			if cfg.traceDir != "" {
				cmd = append(cmd, fmt.Sprintf("-trace-dir=%s", cfg.traceDir))
				if cfg.traceMmap {
					cmd = append(cmd, "-trace-mmap")
				}
			}
			if cfg.workloadSpec != "" {
				// Exec workers share the coordinator's filesystem, so the
				// spec travels by path; the worker parses and registers it
				// before serving cells.
				cmd = append(cmd, fmt.Sprintf("-workload-spec=%s", cfg.workloadSpec))
			}
			cmd = append(cmd, fmt.Sprintf("-trace-major=%t", !cfg.modelMajor))
			cmd = append(cmd, fmt.Sprintf("-snapshots=%t", !cfg.snapshotsOff))
			cmd = append(cmd, fmt.Sprintf("-snap-bytes=%d", cfg.snapBytes))
			if cfg.snapDir != "" {
				cmd = append(cmd, fmt.Sprintf("-snap-dir=%s", cfg.snapDir))
			}
		}
		return &harness.ExecBackend{Command: cmd, Env: cfg.workerEnv, Workers: execWorkers, BatchTimeout: cfg.execTimeout, Wire: cfg.wire}, nil
	}
	switch cfg.backend {
	case "", "local":
		return nil, nil
	case "remote":
		// The welcome frame carries the scheduling and mmap modes so a
		// fleet joined with bare `-worker -connect` matches the
		// coordinator's configuration without per-worker flags.
		traceMajor := !cfg.modelMajor
		snapshots := !cfg.snapshotsOff
		affinity := !cfg.affinityOff
		rb := &harness.RemoteBackend{Addr: cfg.listen, TraceDir: cfg.traceDir,
			TraceMajor: &traceMajor, TraceMmap: &cfg.traceMmap,
			Snapshots: &snapshots, SnapDir: cfg.snapDir,
			Affinity: &affinity, Wire: cfg.wire}
		if cfg.workloadSpecDoc != "" {
			// Remote workers may sit on other machines, so the spec
			// travels by value in the welcome frame.
			rb.WorkloadSpecs = []string{cfg.workloadSpecDoc}
		}
		// Bind eagerly so the operator (and tests, via listenReady) learn
		// where to point workers before the first batch needs them.
		addr, err := rb.Start()
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(cfg.stderr, "remote: listening on %s; join workers with: stbpu-suite -worker -connect %s\n", addr, addr)
		if cfg.listenReady != nil {
			cfg.listenReady(addr.String())
		}
		return rb, nil
	case "exec":
		return newExec()
	case "mixed":
		eb, err := newExec()
		if err != nil {
			return nil, err
		}
		// Weight the subprocess fleet by its size so it takes a share of
		// chunks proportional to its workers.
		return harness.NewMultiBackend(
			harness.WeightedBackend{Backend: harness.NewLocalBackend(cfg.workers), Weight: 1},
			harness.WeightedBackend{Backend: eb, Weight: execWorkers},
		), nil
	default:
		return nil, fmt.Errorf("unknown backend %q (want local, exec, mixed, or remote)", cfg.backend)
	}
}

// runSuite executes the selected scenarios and assembles the document.
func runSuite(ctx context.Context, cfg config) (suiteDoc, error) {
	if cfg.workloadSpec != "" {
		s, err := spec.LoadFile(cfg.workloadSpec)
		if err != nil {
			return suiteDoc{}, err
		}
		if err := spec.Register(s); err != nil {
			return suiteDoc{}, err
		}
		// The workloads scenario resolves the spec by its registered
		// (content-hashed) workload name in every process of the run.
		if cfg.params.WorkloadSpec == "" {
			cfg.params.WorkloadSpec = s.WorkloadName()
		}
		cfg.workloadSpecDoc = string(s.Canonical())
	}
	pool := harness.NewPool(cfg.workers, cfg.seed)
	pool.SetTraceMajor(!cfg.modelMajor)
	store := tracestore.New(cfg.cacheBytes, nil)
	store.SetMapped(cfg.traceMmap)
	if cfg.traceDir != "" {
		if err := store.SetDir(cfg.traceDir); err != nil {
			return suiteDoc{}, fmt.Errorf("trace dir %s: %w", cfg.traceDir, err)
		}
	}
	pool.SetTraceStore(store)
	pool.SetSnapshots(!cfg.snapshotsOff)
	snaps := snapstore.New(cfg.snapBytes)
	if cfg.snapDir != "" {
		if err := snaps.SetDir(cfg.snapDir); err != nil {
			return suiteDoc{}, fmt.Errorf("snap dir %s: %w", cfg.snapDir, err)
		}
	}
	pool.SetSnapStore(snaps)
	backend, err := buildBackend(cfg)
	if err != nil {
		return suiteDoc{}, err
	}
	if backend != nil {
		pool.SetBackend(backend)
		defer backend.Close()
	}
	var journal *harness.Journal
	if cfg.journal != "" {
		if cfg.resume {
			journal, err = harness.ResumeJournal(cfg.journal)
		} else {
			// Refuse to truncate completed work: rerunning a crashed
			// journaled command without -resume (the easiest mistake to
			// make) must not destroy the very progress the journal exists
			// to protect.
			if st, statErr := os.Stat(cfg.journal); statErr == nil && st.Size() > 0 {
				return suiteDoc{}, fmt.Errorf("journal %s already holds completed cells; pass -resume to continue it or remove the file to start over", cfg.journal)
			}
			journal, err = harness.CreateJournal(cfg.journal)
		}
		if err != nil {
			return suiteDoc{}, fmt.Errorf("journal: %w", err)
		}
		defer journal.Close() // error-path close; idempotent
		pool.SetSink(journal)
		if cfg.verbose && journal.Loaded() > 0 {
			fmt.Fprintf(cfg.stderr, "journal %s: resuming past %d completed cells\n", cfg.journal, journal.Loaded())
		}
	} else if cfg.resume {
		return suiteDoc{}, fmt.Errorf("-resume requires -journal")
	}
	opts := harness.Options{
		Filters: cfg.filters,
		Params:  cfg.params,
		Timing:  cfg.timing,
	}
	if cfg.verbose {
		opts.Observer = func(c harness.Cell) {
			fmt.Fprintf(cfg.stderr, "cell %s/%d seed=%#x backend=%s %v\n", c.Scope, c.Shard, c.Seed, c.Backend, c.Elapsed.Round(0))
		}
	}
	doc := suiteDoc{Suite: "stbpu-suite", Seed: pool.RootSeed(), Workers: pool.Workers()}
	reports, err := harness.RunAll(ctx, pool, opts)
	if err != nil {
		return suiteDoc{}, err
	}
	doc.Runs = reports
	for _, r := range reports {
		doc.ElapsedMS += r.ElapsedMS
	}
	if sr, ok := pool.Backend().(harness.StatsReporter); ok {
		doc.Backends = sr.BackendStats()
	}
	if !cfg.timing {
		for i := range doc.Backends {
			doc.Backends[i].WallMS = 0
		}
	}
	doc.TraceStore = store.Stats()
	doc.SnapStore = snaps.Stats()
	if journal != nil {
		// A journal that stopped persisting must fail the run: the caller
		// believes the file can resume this run, so a silent write failure
		// would lose exactly the cells they counted on keeping.
		if err := journal.Close(); err != nil {
			return suiteDoc{}, fmt.Errorf("journal %s: %w", cfg.journal, err)
		}
	}
	return doc, nil
}

// writeDoc marshals the document with stable indentation.
func writeDoc(w io.Writer, doc suiteDoc) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// scenarioInfo is one -list-json entry: the machine-readable companion
// to -list, so tooling can enumerate scenarios and their default
// harness.Params without parsing the human-oriented listing.
type scenarioInfo struct {
	Name        string         `json:"name"`
	Description string         `json:"description,omitempty"`
	Defaults    harness.Params `json:"defaults"`
	// Workloads enumerates the spec workload names registered in this
	// process (built-in fixtures plus any -workload-spec file). Only the
	// workloads scenario entry carries it.
	Workloads []string `json:"workloads,omitempty"`
}

// writeScenarioListJSON emits the registry as a JSON array in name
// order (harness.All's order).
func writeScenarioListJSON(w io.Writer) error {
	infos := make([]scenarioInfo, 0)
	for _, s := range harness.All() {
		info := scenarioInfo{Name: s.Name, Description: s.Description, Defaults: s.Defaults}
		if s.Name == "workloads" {
			info.Workloads = spec.Names()
		}
		infos = append(infos, info)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(infos)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stbpu-suite:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list      = flag.Bool("list", false, "list registered scenarios and exit")
		listJSON  = flag.Bool("list-json", false, "list registered scenarios with default params as JSON and exit")
		runF      = flag.String("run", "", "comma-separated scenario glob filters (empty = all)")
		seed      = flag.Uint64("seed", harness.DefaultRootSeed, "root seed; every cell seed derives from it")
		workers   = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		records   = flag.Int("records", 0, "records per workload trace (0 = scenario default)")
		workloads = flag.Int("workloads", 0, "cap the workload list (0 = all)")
		pairs     = flag.Int("pairs", 0, "cap the SMT pair list (0 = all)")
		trials    = flag.Int("trials", 0, "repetitions for randomized measurements (0 = scenario default)")
		budget    = flag.Int("budget", 0, "attack scan budget (0 = scenario default)")
		bits      = flag.Int("bits", 0, "covert-channel bits (0 = scenario default)")
		rF        = flag.Float64("r", 0, "attack-difficulty factor (0 = scenario default)")
		quick     = flag.Bool("quick", false, "use the QuickScale test/benchmark sizing")
		cacheB    = flag.Int64("cache-bytes", tracestore.DefaultMaxBytes, "byte budget for the shared cross-run trace store (<=0 = default budget)")
		traceDir  = flag.String("trace-dir", "", "persistent trace tier: spill generated traces as STBT files here and decode them on later runs (shared with exec workers)")
		traceMaj  = flag.Bool("trace-major", true, "group cells that share a trace and replay all their models in one pass over the resident columns (=false for model-major scheduling)")
		traceMmap = flag.Bool("trace-mmap", false, "with -trace-dir: spill traces in the page-aligned STBT v2 layout and map them read-only instead of decoding (unix only; no-op elsewhere)")
		snapsF    = flag.Bool("snapshots", true, "checkpoint predictor state at phase boundaries and restore it instead of replaying warmup prefixes (=false to force full replay; results are bit-identical)")
		snapB     = flag.Int64("snap-bytes", snapstore.DefaultMaxBytes, "byte budget for the in-memory checkpoint store (<=0 = default budget)")
		snapDir   = flag.String("snap-dir", "", "persistent checkpoint tier: spill phase-boundary predictor snapshots as .snap files here and restore them on later runs (shared with workers)")
		backend   = flag.String("backend", "local", "cell execution backend: local, exec (subprocess workers), mixed, or remote (TCP worker fleet)")
		execW     = flag.Int("exec-workers", 2, "subprocess worker count for -backend exec/mixed")
		execTO    = flag.Duration("exec-timeout", 10*time.Minute, "kill an exec worker whose batch exceeds this and requeue the chunk (0 = no deadline)")
		listen    = flag.String("listen", "", "-backend remote: TCP address to coordinate workers on (empty = 127.0.0.1:0)")
		wireF     = flag.String("wire", "binary", "frame codec policy for exec/remote wires: binary (negotiated; old workers fall back to JSON) or json (pin JSON frames)")
		affinity  = flag.Bool("affinity", true, "-backend remote: prefer dispatching each chunk to the worker whose caches are warm for its workload (=false for plain work sharing; results are bit-identical)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof profiling handlers on this address (works in coordinator and -worker modes), e.g. localhost:6060")
		connect   = flag.String("connect", "", "with -worker: dial this coordinator address instead of serving stdin/stdout")
		worker    = flag.Bool("worker", false, "run as a worker: execute cell batches from stdin, or from the -connect coordinator")
		specF     = flag.String("workload-spec", "", "JSON workload-spec file (docs/WORKLOADS.md): register it and point the workloads scenario at it; forwarded to exec and remote workers")
		journalF  = flag.String("journal", "", "stream completed cells to this JSONL run journal (schema: docs/SUITE_JSON.md)")
		resume    = flag.Bool("resume", false, "load the -journal file first and skip cells it already holds")
		timing    = flag.Bool("timing", true, "record wall-clock timing (disable for byte-stable output)")
		verbose   = flag.Bool("v", false, "stream per-cell progress to stderr")
		out       = flag.String("o", "", "write the JSON document to this file (default stdout)")
	)
	flag.Parse()

	var wire string
	switch *wireF {
	case "", "binary":
		wire = "" // negotiate
	case "json":
		wire = "json"
	default:
		return fmt.Errorf("unknown -wire %q (want binary or json)", *wireF)
	}
	if *pprofAddr != "" {
		// DefaultServeMux carries the pprof handlers via the blank import.
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "stbpu-suite: pprof on %s: %v\n", *pprofAddr, err)
			}
		}()
	}

	if *worker {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		opts := harness.WorkerOptions{
			Workers:    *workers,
			CacheBytes: *cacheB,
			TraceDir:   *traceDir,
			TraceMmap:  *traceMmap,
			SnapBytes:  *snapB,
			SnapDir:    *snapDir,
			Wire:       wire,
		}
		if *specF != "" {
			s, err := spec.LoadFile(*specF)
			if err != nil {
				return err
			}
			opts.WorkloadSpecs = append(opts.WorkloadSpecs, string(s.Canonical()))
		}
		// Only an explicit -trace-major/-snapshots pins the worker's
		// mode; left unset, a remote worker adopts the coordinator's
		// welcome value.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "trace-major":
				opts.TraceMajor = traceMaj
			case "snapshots":
				opts.Snapshots = snapsF
			}
		})
		if *connect != "" {
			return harness.ServeRemoteWorker(ctx, *connect, opts)
		}
		return harness.ServeWorker(ctx, os.Stdin, os.Stdout, opts)
	}
	if *connect != "" {
		return fmt.Errorf("-connect requires -worker")
	}

	if *specF != "" && (*list || *listJSON) {
		// Register the user spec so the listings enumerate it alongside
		// the built-in fixtures.
		s, err := spec.LoadFile(*specF)
		if err != nil {
			return err
		}
		if err := spec.Register(s); err != nil {
			return err
		}
	}
	if *list {
		for _, s := range harness.All() {
			fmt.Printf("%-18s %s\n", s.Name, s.Description)
		}
		return nil
	}
	if *listJSON {
		return writeScenarioListJSON(os.Stdout)
	}

	cfg := config{
		seed:         *seed,
		workers:      *workers,
		cacheBytes:   *cacheB,
		traceDir:     *traceDir,
		modelMajor:   !*traceMaj,
		traceMmap:    *traceMmap,
		snapshotsOff: !*snapsF,
		snapBytes:    *snapB,
		snapDir:      *snapDir,
		backend:      *backend,
		execWorkers:  *execW,
		execTimeout:  *execTO,
		listen:       *listen,
		wire:         wire,
		affinityOff:  !*affinity,
		workloadSpec: *specF,
		journal:      *journalF,
		resume:       *resume,
		timing:       *timing,
		verbose:      *verbose,
		stderr:       os.Stderr,
		params: harness.Params{
			Records:      *records,
			MaxWorkloads: *workloads,
			MaxPairs:     *pairs,
			Trials:       *trials,
			Budget:       *budget,
			Bits:         *bits,
			R:            *rF,
		},
	}
	if *quick {
		cfg.params = cfg.params.Merged(experiments.QuickScale().Params())
	}
	if *runF != "" {
		for _, f := range strings.Split(*runF, ",") {
			if f = strings.TrimSpace(f); f != "" {
				cfg.filters = append(cfg.filters, f)
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	doc, err := runSuite(ctx, cfg)
	if err != nil {
		return err
	}
	if *out == "" {
		return writeDoc(os.Stdout, doc)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := writeDoc(f, doc); err != nil {
		f.Close()
		return err
	}
	// A failed close means buffered output never hit the disk — that
	// must fail the run, or golden comparisons would trust a truncated
	// document.
	return f.Close()
}
