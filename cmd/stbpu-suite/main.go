// Command stbpu-suite lists, filters, and runs the registered experiment
// scenarios on the parallel harness and emits one JSON document per run —
// root seed, worker count, per-scenario parameters, cell counts, timing,
// and structured results — suitable for golden-file comparison and
// benchmarking trajectories.
//
// Usage:
//
//	stbpu-suite -list                       # registered scenarios
//	stbpu-suite -run 'fig*' -records 40000  # glob filters, scale knobs
//	stbpu-suite -run thresholds,gamma       # comma-separated filters
//	stbpu-suite -quick -seed 1 -workers 4   # QuickScale, fixed seed/pool
//	stbpu-suite -timing=false               # reproducible output bytes
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"stbpu/internal/experiments"
	"stbpu/internal/harness"
	"stbpu/internal/tracestore"
)

// suiteDoc is the one-run JSON document.
type suiteDoc struct {
	Suite   string `json:"suite"`
	Seed    uint64 `json:"seed"`
	Workers int    `json:"workers"`
	// ElapsedMS is total wall-clock time (0 when -timing=false).
	ElapsedMS int64            `json:"elapsed_ms"`
	Runs      []harness.Report `json:"runs"`
	// TraceStore reports the shared cross-run trace cache's hit/miss/
	// generation/eviction counters for the whole run.
	TraceStore tracestore.Stats `json:"trace_store"`
}

// config carries the parsed CLI knobs; factored out so tests drive the
// exact code path main uses.
type config struct {
	filters    []string
	seed       uint64
	workers    int
	cacheBytes int64
	params     harness.Params
	timing     bool
	verbose    bool
	stderr     io.Writer
}

// runSuite executes the selected scenarios and assembles the document.
func runSuite(ctx context.Context, cfg config) (suiteDoc, error) {
	pool := harness.NewPool(cfg.workers, cfg.seed)
	store := tracestore.New(cfg.cacheBytes, nil)
	pool.SetTraceStore(store)
	opts := harness.Options{
		Filters: cfg.filters,
		Params:  cfg.params,
		Timing:  cfg.timing,
	}
	if cfg.verbose {
		opts.Observer = func(c harness.Cell) {
			fmt.Fprintf(cfg.stderr, "cell %s/%d seed=%#x %v\n", c.Scope, c.Shard, c.Seed, c.Elapsed.Round(0))
		}
	}
	doc := suiteDoc{Suite: "stbpu-suite", Seed: pool.RootSeed(), Workers: pool.Workers()}
	reports, err := harness.RunAll(ctx, pool, opts)
	if err != nil {
		return suiteDoc{}, err
	}
	doc.Runs = reports
	for _, r := range reports {
		doc.ElapsedMS += r.ElapsedMS
	}
	doc.TraceStore = store.Stats()
	return doc, nil
}

// writeDoc marshals the document with stable indentation.
func writeDoc(w io.Writer, doc suiteDoc) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stbpu-suite:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list      = flag.Bool("list", false, "list registered scenarios and exit")
		runF      = flag.String("run", "", "comma-separated scenario glob filters (empty = all)")
		seed      = flag.Uint64("seed", harness.DefaultRootSeed, "root seed; every cell seed derives from it")
		workers   = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		records   = flag.Int("records", 0, "records per workload trace (0 = scenario default)")
		workloads = flag.Int("workloads", 0, "cap the workload list (0 = all)")
		pairs     = flag.Int("pairs", 0, "cap the SMT pair list (0 = all)")
		trials    = flag.Int("trials", 0, "repetitions for randomized measurements (0 = scenario default)")
		budget    = flag.Int("budget", 0, "attack scan budget (0 = scenario default)")
		bits      = flag.Int("bits", 0, "covert-channel bits (0 = scenario default)")
		rF        = flag.Float64("r", 0, "attack-difficulty factor (0 = scenario default)")
		quick     = flag.Bool("quick", false, "use the QuickScale test/benchmark sizing")
		cacheB    = flag.Int64("cache-bytes", tracestore.DefaultMaxBytes, "byte budget for the shared cross-run trace store (<=0 = default budget)")
		timing    = flag.Bool("timing", true, "record wall-clock timing (disable for byte-stable output)")
		verbose   = flag.Bool("v", false, "stream per-cell progress to stderr")
		out       = flag.String("o", "", "write the JSON document to this file (default stdout)")
	)
	flag.Parse()

	if *list {
		for _, s := range harness.All() {
			fmt.Printf("%-18s %s\n", s.Name, s.Description)
		}
		return nil
	}

	cfg := config{
		seed:       *seed,
		workers:    *workers,
		cacheBytes: *cacheB,
		timing:     *timing,
		verbose:    *verbose,
		stderr:     os.Stderr,
		params: harness.Params{
			Records:      *records,
			MaxWorkloads: *workloads,
			MaxPairs:     *pairs,
			Trials:       *trials,
			Budget:       *budget,
			Bits:         *bits,
			R:            *rF,
		},
	}
	if *quick {
		cfg.params = cfg.params.Merged(experiments.QuickScale().Params())
	}
	if *runF != "" {
		for _, f := range strings.Split(*runF, ",") {
			if f = strings.TrimSpace(f); f != "" {
				cfg.filters = append(cfg.filters, f)
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	doc, err := runSuite(ctx, cfg)
	if err != nil {
		return err
	}
	if *out == "" {
		return writeDoc(os.Stdout, doc)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := writeDoc(f, doc); err != nil {
		f.Close()
		return err
	}
	// A failed close means buffered output never hit the disk — that
	// must fail the run, or golden comparisons would trust a truncated
	// document.
	return f.Close()
}
