// Command stbpu-trace generates, inspects, and converts branch traces —
// the workflow the paper performs with Intel PT tooling (§VII-B1), over
// this repository's synthetic workloads and two binary formats:
//
//	STBT — the record-level delta codec (internal/trace)
//	STPT — the Intel-PT-style packet stream (internal/pt)
//
// Usage:
//
//	stbpu-trace list                                  # preset names
//	stbpu-trace gen -preset 505.mcf -n 100000 -o mcf.stbt
//	stbpu-trace gen -preset 505.mcf -n 100000 -format stpt -o mcf.stpt
//	stbpu-trace synth -spec burst.json -o burst.stbt  # phased workload spec
//	stbpu-trace info mcf.stbt                         # composition stats
//	stbpu-trace convert mcf.stbt mcf.stpt             # format by extension
//	stbpu-trace convert mcf.stpt mcf.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"stbpu/internal/pt"
	"stbpu/internal/trace"
	"stbpu/internal/trace/spec"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "gen":
		err = cmdGen(os.Args[2:])
	case "synth":
		err = cmdSynth(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "stbpu-trace: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "stbpu-trace: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  stbpu-trace list
  stbpu-trace gen -preset NAME -n RECORDS [-format stbt|stpt|csv] -o FILE
  stbpu-trace synth -spec FILE [-n RECORDS] [-seed N] [-format stbt|stpt|csv] -o FILE
  stbpu-trace info FILE
  stbpu-trace convert SRC DST`)
}

func cmdList() error {
	names := trace.PresetNames()
	sort.Strings(names)
	for _, n := range names {
		fmt.Println(n)
	}
	return nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	preset := fs.String("preset", "505.mcf", "workload preset (see `stbpu-trace list`)")
	n := fs.Int("n", 100_000, "records to generate")
	format := fs.String("format", "", "output format: stbt, stpt, or csv (default: by -o extension)")
	out := fs.String("o", "", "output file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("gen: -o is required")
	}
	prof, err := trace.Preset(*preset)
	if err != nil {
		return err
	}
	tr, err := trace.Generate(prof.WithRecords(*n))
	if err != nil {
		return err
	}
	f := *format
	if f == "" {
		f = formatByExt(*out)
	}
	if err := writeTrace(*out, f, tr); err != nil {
		return err
	}
	fi, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d records, %d bytes (%.2f bytes/record, %s)\n",
		*out, len(tr.Records), fi.Size(),
		float64(fi.Size())/float64(len(tr.Records)), f)
	return nil
}

// cmdSynth materializes a phase-structured workload spec
// (docs/WORKLOADS.md) as a trace file. Generation is a pure function
// of (spec, seed): the same document and seed produce the same bytes
// the suite's tracestore would cache for the spec's workload name.
func cmdSynth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	specF := fs.String("spec", "", "JSON workload-spec file (required)")
	n := fs.Int("n", 0, "records to generate (0 = the spec's own phase total)")
	seed := fs.Uint64("seed", 0, "instance seed (0 = the canonical stream the suite caches)")
	format := fs.String("format", "", "output format: stbt, stpt, or csv (default: by -o extension)")
	out := fs.String("o", "", "output file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specF == "" {
		return fmt.Errorf("synth: -spec is required")
	}
	if *out == "" {
		return fmt.Errorf("synth: -o is required")
	}
	s, err := spec.LoadFile(*specF)
	if err != nil {
		return err
	}
	tr, err := s.Generate(*n, *seed)
	if err != nil {
		return err
	}
	f := *format
	if f == "" {
		f = formatByExt(*out)
	}
	if err := writeTrace(*out, f, tr); err != nil {
		return err
	}
	fi, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %s, %d records, %d bytes (%.2f bytes/record, %s)\n",
		*out, tr.Name, len(tr.Records), fi.Size(),
		float64(fi.Size())/float64(len(tr.Records)), f)
	return nil
}

func cmdInfo(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("info: exactly one file expected")
	}
	tr, format, err := readTrace(args[0])
	if err != nil {
		return err
	}
	s := tr.ComputeStats()
	fmt.Printf("name:             %s\n", tr.Name)
	fmt.Printf("format:           %s\n", format)
	fmt.Printf("records:          %d\n", s.Total)
	for k := trace.KindCond; k <= trace.KindReturn; k++ {
		fmt.Printf("  %-14s  %d\n", k.String()+":", s.ByKind[k])
	}
	if s.Conds > 0 {
		fmt.Printf("taken cond rate:  %.3f\n", float64(s.TakenConds)/float64(s.Conds))
	}
	fmt.Printf("processes:        %d\n", s.Processes)
	fmt.Printf("context switches: %d\n", s.ContextSwitches)
	fmt.Printf("mode switches:    %d\n", s.ModeSwitches)
	fmt.Printf("kernel records:   %d\n", s.KernelRecords)
	return nil
}

func cmdConvert(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("convert: SRC and DST expected")
	}
	tr, _, err := readTrace(args[0])
	if err != nil {
		return err
	}
	dstFormat := formatByExt(args[1])
	if err := writeTrace(args[1], dstFormat, tr); err != nil {
		return err
	}
	fi, err := os.Stat(args[1])
	if err != nil {
		return err
	}
	fmt.Printf("%s -> %s (%s, %d bytes)\n", args[0], args[1], dstFormat, fi.Size())
	return nil
}

func formatByExt(path string) string {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".stpt":
		return "stpt"
	case ".csv":
		return "csv"
	default:
		return "stbt"
	}
}

func writeTrace(path, format string, tr *trace.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch format {
	case "stbt":
		err = trace.Write(f, tr)
	case "stpt":
		_, err = pt.Encode(f, tr)
	case "csv":
		err = trace.WriteCSV(f, tr)
	default:
		err = fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

func readTrace(path string) (*trace.Trace, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	switch format := formatByExt(path); format {
	case "stpt":
		tr, err := pt.Decode(f)
		return tr, format, err
	case "csv":
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		tr, err := trace.ReadCSV(f, name)
		return tr, format, err
	default:
		tr, err := trace.Read(f)
		return tr, format, err
	}
}
