// Command stbpu-bench regenerates every table and figure of the paper's
// evaluation (§VII) and prints them as text tables; EXPERIMENTS.md records
// the paper-vs-measured comparison these outputs feed. Since the harness
// refactor it is a thin text front-end over the same scenario registry
// stbpu-suite serves as JSON: each figure flag selects a registered
// scenario, and all of them run on one seeded worker pool.
//
// Usage:
//
//	stbpu-bench -all                      # everything at default scale
//	stbpu-bench -fig3 -records 250000     # full-scale Fig. 3 only
//	stbpu-bench -fig5 -pairs 8            # first 8 SMT pairs
//	stbpu-bench -thresholds               # §VI-A.5 numbers
//	stbpu-bench -all -workers 4 -seed 3   # fixed pool, reproducible
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	_ "stbpu/internal/experiments" // scenario registrations
	"stbpu/internal/harness"
	"stbpu/internal/tracestore"
)

func main() {
	var (
		fig3       = flag.Bool("fig3", false, "run the Fig. 3 OAE comparison")
		fig4       = flag.Bool("fig4", false, "run the Fig. 4 single-workload CPU evaluation")
		fig5       = flag.Bool("fig5", false, "run the Fig. 5 SMT evaluation")
		fig6       = flag.Bool("fig6", false, "run the Fig. 6 threshold sweep")
		thresholds = flag.Bool("thresholds", false, "print the §VI-A.5 attack complexities and thresholds")
		table1     = flag.Bool("table1", false, "run the Table I attack surface against both models")
		defensesF  = flag.Bool("defenses", false, "run the §VIII related-work comparison (accuracy + attack matrix)")
		covert     = flag.Bool("covert", false, "run the PHT covert-channel capacity comparison")
		gamma      = flag.Bool("gamma", false, "print the Γ-sweep security table (epoch success vs r)")
		ittageF    = flag.Bool("ittage", false, "run the ITTAGE indirect-predictor extension comparison")
		warmup     = flag.Bool("warmup", false, "run the warm-state curve (flush penalty vs trace length)")
		all        = flag.Bool("all", false, "run everything")
		records    = flag.Int("records", 120_000, "records per workload trace")
		workloads  = flag.Int("workloads", 0, "cap the workload list (0 = all)")
		pairs      = flag.Int("pairs", 0, "cap the SMT pair list (0 = all)")
		seed       = flag.Uint64("seed", harness.DefaultRootSeed, "root seed for all scenario cells")
		workers    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		cacheB     = flag.Int64("cache-bytes", tracestore.DefaultMaxBytes, "byte budget for the shared cross-run trace store (<=0 = default budget)")
		traceDir   = flag.String("trace-dir", "", "persistent trace tier: spill generated traces as STBT files here and decode them on later runs")
	)
	flag.Parse()

	if !(*fig3 || *fig4 || *fig5 || *fig6 || *thresholds || *table1 || *defensesF || *covert || *gamma || *ittageF || *warmup || *all) {
		*all = true
	}

	// Presentation order of the original serial driver.
	var names []string
	pick := func(on bool, scenario ...string) {
		if on || *all {
			names = append(names, scenario...)
		}
	}
	pick(*thresholds, "thresholds")
	pick(*table1, "tablei")
	pick(*defensesF, "defense-accuracy", "defense-matrix")
	pick(*covert, "covert")
	pick(*gamma, "gamma")
	pick(*ittageF, "ittage")
	pick(*warmup, "warmup")
	pick(*fig3, "fig3")
	pick(*fig4, "fig4")
	pick(*fig5, "fig5")
	pick(*fig6, "fig6")

	pool := harness.NewPool(*workers, *seed)
	store := tracestore.New(*cacheB, nil)
	if *traceDir != "" {
		if err := store.SetDir(*traceDir); err != nil {
			fmt.Fprintf(os.Stderr, "stbpu-bench: trace dir %s: %v\n", *traceDir, err)
			os.Exit(1)
		}
	}
	pool.SetTraceStore(store)
	params := harness.Params{Records: *records, MaxWorkloads: *workloads, MaxPairs: *pairs}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	for _, name := range names {
		s, ok := harness.Get(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "stbpu-bench: scenario %q not registered\n", name)
			os.Exit(1)
		}
		start := time.Now()
		fmt.Printf("=== %s ===\n", s.Name)
		res, err := s.Run(ctx, params.Merged(s.Defaults), pool)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stbpu-bench: %s: %v\n", s.Name, err)
			os.Exit(1)
		}
		if r, ok := res.(harness.Renderer); ok {
			r.Render(os.Stdout)
		} else {
			fmt.Printf("%+v\n", res)
		}
		fmt.Printf("(%s in %v)\n\n", s.Name, time.Since(start).Round(time.Millisecond))
	}
	st := store.Stats()
	fmt.Printf("trace store: %d hits, %d misses, %d generations, %d evictions, %d/%d bytes\n",
		st.Hits, st.Misses, st.Generations, st.Evictions, st.Bytes, st.MaxBytes)
	if *traceDir != "" {
		fmt.Printf("trace dir %s: %d disk hits, %d disk misses, %d spills, %d errors\n",
			*traceDir, st.DiskHits, st.DiskMisses, st.DiskWrites, st.DiskErrors)
	}
}
