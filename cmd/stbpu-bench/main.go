// Command stbpu-bench regenerates every table and figure of the paper's
// evaluation (§VII) and prints them as text tables; EXPERIMENTS.md records
// the paper-vs-measured comparison these outputs feed.
//
// Usage:
//
//	stbpu-bench -all                      # everything at default scale
//	stbpu-bench -fig3 -records 250000     # full-scale Fig. 3 only
//	stbpu-bench -fig5 -pairs 8            # first 8 SMT pairs
//	stbpu-bench -thresholds               # §VI-A.5 numbers
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stbpu/internal/analysis"
	"stbpu/internal/experiments"
)

func main() {
	var (
		fig3       = flag.Bool("fig3", false, "run the Fig. 3 OAE comparison")
		fig4       = flag.Bool("fig4", false, "run the Fig. 4 single-workload CPU evaluation")
		fig5       = flag.Bool("fig5", false, "run the Fig. 5 SMT evaluation")
		fig6       = flag.Bool("fig6", false, "run the Fig. 6 threshold sweep")
		thresholds = flag.Bool("thresholds", false, "print the §VI-A.5 attack complexities and thresholds")
		table1     = flag.Bool("table1", false, "run the Table I attack surface against both models")
		defensesF  = flag.Bool("defenses", false, "run the §VIII related-work comparison (accuracy + attack matrix)")
		covert     = flag.Bool("covert", false, "run the PHT covert-channel capacity comparison")
		gamma      = flag.Bool("gamma", false, "print the Γ-sweep security table (epoch success vs r)")
		ittageF    = flag.Bool("ittage", false, "run the ITTAGE indirect-predictor extension comparison")
		warmup     = flag.Bool("warmup", false, "run the warm-state curve (flush penalty vs trace length)")
		all        = flag.Bool("all", false, "run everything")
		records    = flag.Int("records", 120_000, "records per workload trace")
		workloads  = flag.Int("workloads", 0, "cap the workload list (0 = all)")
		pairs      = flag.Int("pairs", 0, "cap the SMT pair list (0 = all)")
	)
	flag.Parse()

	if !(*fig3 || *fig4 || *fig5 || *fig6 || *thresholds || *table1 || *defensesF || *covert || *gamma || *ittageF || *warmup || *all) {
		*all = true
	}
	scale := experiments.Scale{Records: *records, MaxWorkloads: *workloads, MaxPairs: *pairs}

	run := func(name string, f func() error) {
		start := time.Now()
		fmt.Printf("=== %s ===\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "stbpu-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *all || *thresholds {
		run("SectionVI thresholds", func() error {
			experiments.RunThresholds(0.05).Render(os.Stdout)
			return nil
		})
	}
	if *all || *table1 {
		run("TableI attack surface", func() error {
			experiments.RunTableI(20_000).Render(os.Stdout)
			return nil
		})
	}
	if *all || *defensesF {
		run("Defense comparison (§VIII head-to-head)", func() error {
			acc, err := experiments.RunDefenseAccuracy(scale)
			if err != nil {
				return err
			}
			acc.Render(os.Stdout)
			fmt.Println()
			experiments.RunDefenseMatrix().Render(os.Stdout)
			return nil
		})
	}
	if *all || *covert {
		run("PHT covert-channel capacity", func() error {
			experiments.RunCovertComparison(512).Render(os.Stdout)
			return nil
		})
	}
	if *all || *gamma {
		run("Gamma sweep (security side of Fig. 6)", func() error {
			fmt.Printf("%-10s %14s %14s %14s %16s\n",
				"r", "misp Γ", "evict Γ", "P(epoch)", "epochs to 50%")
			for _, row := range analysis.GammaSweep([]float64{0.05, 0.005, 5e-4, 5e-5, 5e-6, 5e-7}) {
				fmt.Printf("%-10.0e %14.3e %14.3e %14.5f %16.3e\n",
					row.R, row.MispThreshold, row.EvictThreshold, row.EpochSuccess, row.EpochsFor50)
			}
			return nil
		})
	}
	if *all || *ittageF {
		run("ITTAGE indirect-prediction extension", func() error {
			res, err := experiments.RunITTAGE(scale)
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			return nil
		})
	}
	if *all || *warmup {
		run("Warm-state curve", func() error {
			res, err := experiments.RunWarmup("mysql_128con_50s", []int{10_000, 40_000, 160_000})
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			return nil
		})
	}
	if *all || *fig3 {
		run("Fig3 overall prediction accuracy", func() error {
			res, err := experiments.RunFig3(scale)
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			return nil
		})
	}
	if *all || *fig4 {
		run("Fig4 single-workload CPU evaluation", func() error {
			res, err := experiments.RunFig4(scale)
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			return nil
		})
	}
	if *all || *fig5 {
		run("Fig5 SMT evaluation", func() error {
			res, err := experiments.RunFig5(scale)
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			return nil
		})
	}
	if *all || *fig6 {
		run("Fig6 aggressive re-randomization", func() error {
			res, err := experiments.RunFig6(scale, nil)
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			return nil
		})
	}
}
