// Command stbpu-sim is the trace-driven BPU simulator CLI (§VII-B1): it
// generates (or loads) a workload trace, replays it through a protection
// model, and prints prediction-accuracy statistics.
//
// Usage:
//
//	stbpu-sim -workload 505.mcf -model STBPU -records 200000
//	stbpu-sim -list
//	stbpu-sim -workload mysql_128con_50s -model all
//	stbpu-sim -workload 502.gcc -save gcc.stbt      # write the trace
//	stbpu-sim -load gcc.stbt -model baseline        # replay a saved trace
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"stbpu/internal/core"
	"stbpu/internal/defenses"
	"stbpu/internal/sim"
	"stbpu/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stbpu-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		workload = flag.String("workload", "505.mcf", "workload preset name")
		model    = flag.String("model", "STBPU", "model: baseline|ucode1|ucode2|conservative|STBPU|all,\n"+
			"a §VIII defense (BRB|BSUP|zhao|exynos), STBPU+ittage, or everything")
		records = flag.Int("records", 200_000, "trace length in branch records")
		list    = flag.Bool("list", false, "list workload presets and exit")
		save    = flag.String("save", "", "write the generated trace to this file (STBT format)")
		load    = flag.String("load", "", "replay a saved STBT trace instead of generating one")
		seed    = flag.Uint64("seed", 7, "token PRNG seed")
	)
	flag.Parse()

	if *list {
		for _, n := range trace.PresetNames() {
			fmt.Println(n)
		}
		return nil
	}

	var tr *trace.Trace
	var prof trace.Profile
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err = trace.Read(f)
		if err != nil {
			return err
		}
	} else {
		p, err := trace.Preset(*workload)
		if err != nil {
			return err
		}
		prof = p.WithRecords(*records)
		tr, err = trace.Generate(prof)
		if err != nil {
			return err
		}
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			return err
		}
		if err := trace.Write(f, tr); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d records to %s\n", len(tr.Records), *save)
	}

	st := tr.ComputeStats()
	fmt.Printf("trace %s: %d records, %d processes, %d ctx switches, %d mode switches\n",
		tr.Name, st.Total, st.Processes, st.ContextSwitches, st.ModeSwitches)

	models, err := pickModels(*model, prof.SharedTokens, *seed)
	if err != nil {
		return err
	}
	// Ctrl-C aborts the replay loop mid-trace instead of killing the
	// process between prints.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Printf("%-22s %8s %8s %8s %10s %8s %8s\n",
		"model", "OAE", "dir", "target", "evictions", "flushes", "rerand")
	for _, m := range models {
		res, err := sim.RunCtx(ctx, m, tr)
		if err != nil {
			return err
		}
		fmt.Printf("%-22s %8.4f %8.4f %8.4f %10d %8d %8d\n",
			res.Model, res.OAE(), res.DirectionRate(), res.TargetRate(),
			res.Evictions, res.Flushes, res.Rerandomizations)
	}
	return nil
}

// pickModels resolves a model selector into ready instances. "all" covers
// the Fig. 3 lineup; "everything" adds the §VIII defenses and the
// ITTAGE-backed STBPU.
func pickModels(name string, sharedTokens bool, seed uint64) ([]sim.Model, error) {
	simKinds := map[string]sim.ModelKind{
		"baseline": sim.KindBaseline, "ucode1": sim.KindUcode1,
		"ucode2": sim.KindUcode2, "conservative": sim.KindConservative,
		"stbpu": sim.KindSTBPU,
	}
	defKinds := map[string]defenses.Kind{
		"brb": defenses.KindBRB, "bsup": defenses.KindBSUP,
		"zhao": defenses.KindZhao, "exynos": defenses.KindExynos,
	}
	opts := sim.Options{SharedTokens: sharedTokens, Seed: seed}
	ittageModel := func() sim.Model {
		return &sim.STBPUModel{Inner: core.NewModel(core.ModelConfig{
			Dir: core.DirSKLCond, SharedTokens: sharedTokens, Seed: seed,
			IndirectITTAGE: true,
		})}
	}

	lower := strings.ToLower(name)
	switch lower {
	case "all":
		var ms []sim.Model
		for _, k := range sim.Fig3Kinds() {
			ms = append(ms, sim.New(k, opts))
		}
		return ms, nil
	case "everything":
		var ms []sim.Model
		for _, k := range sim.Fig3Kinds() {
			ms = append(ms, sim.New(k, opts))
		}
		for _, k := range defenses.Kinds() {
			ms = append(ms, defenses.New(k, defenses.Options{Seed: seed}))
		}
		return append(ms, ittageModel()), nil
	case "stbpu+ittage":
		return []sim.Model{ittageModel()}, nil
	}
	if k, ok := simKinds[lower]; ok {
		return []sim.Model{sim.New(k, opts)}, nil
	}
	if k, ok := defKinds[lower]; ok {
		return []sim.Model{defenses.New(k, defenses.Options{Seed: seed})}, nil
	}
	return nil, fmt.Errorf("unknown model %q", name)
}
