// Command stbpu-attack runs the Table I collision-attack drivers against
// the baseline BPU and STBPU, printing the attacker's event costs next to
// the closed-form complexities of §VI.
//
// Usage:
//
//	stbpu-attack                 # run the full surface against both models
//	stbpu-attack -attack spectre-v2 -budget 50000
//	stbpu-attack -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"stbpu/internal/analysis"
	"stbpu/internal/attacks"
)

type driver struct {
	name string
	run  func(t *attacks.Target, budget int) attacks.Result
}

func driverTable() []driver {
	return []driver{
		{"btb-reuse", func(t *attacks.Target, b int) attacks.Result {
			return attacks.BTBReuseSideChannel(t, b)
		}},
		{"branchscope", func(t *attacks.Target, b int) attacks.Result {
			return attacks.BranchScope(t, true, b)
		}},
		{"same-address-space", func(t *attacks.Target, b int) attacks.Result {
			return attacks.SameAddressSpaceCollision(t, b)
		}},
		{"spectre-v2", func(t *attacks.Target, b int) attacks.Result {
			return attacks.SpectreV2(t, b)
		}},
		{"spectre-rsb", func(t *attacks.Target, b int) attacks.Result {
			return attacks.SpectreRSB(t, b)
		}},
		{"eviction-set", func(t *attacks.Target, b int) attacks.Result {
			return attacks.EvictionSetAttack(t, b)
		}},
		{"rsb-overflow", func(t *attacks.Target, b int) attacks.Result {
			return attacks.RSBOverflowDoS(t, 32)
		}},
		{"dos-eviction", func(t *attacks.Target, b int) attacks.Result {
			return attacks.DoSEviction(t, 50, 16)
		}},
		{"dos-reuse", func(t *attacks.Target, b int) attacks.Result {
			return attacks.DoSReuse(t, 64)
		}},
		{"bluethunder", func(t *attacks.Target, b int) attacks.Result {
			return attacks.BlueThunder(t, true, 16)
		}},
		{"covert-channel", func(t *attacks.Target, b int) attacks.Result {
			cv := attacks.PHTCovertChannel(t, 256, 0xfeed)
			// Adapt the covert result to the common row shape: success
			// means a usable channel (capacity above half a bit/symbol).
			return attacks.Result{
				Attack: "covert-channel", Model: cv.Model,
				Succeeded: cv.CapacityPerSymbol() > 0.5,
				Trials:    cv.BitsSent,
				Leak: fmt.Sprintf("%.2f bits/symbol, %.1f bits/krecord",
					cv.CapacityPerSymbol(), cv.BandwidthBitsPerKRecord()),
				Rerandomizations: cv.Rerandomizations,
			}
		}},
	}
}

func main() {
	var (
		attack = flag.String("attack", "all", "driver name or 'all'")
		budget = flag.Int("budget", 20_000, "attacker trial budget on STBPU")
		list   = flag.Bool("list", false, "list drivers and exit")
	)
	flag.Parse()

	drivers := driverTable()
	if *list {
		for _, d := range drivers {
			fmt.Println(d.name)
		}
		return
	}

	selected := drivers[:0]
	for _, d := range drivers {
		if *attack == "all" || d.name == *attack {
			selected = append(selected, d)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "stbpu-attack: unknown driver %q\n", *attack)
		os.Exit(1)
	}

	fmt.Printf("%-20s %-10s %-9s %9s %12s %10s %8s\n",
		"attack", "model", "success", "trials", "misp", "evictions", "rerand")
	for _, d := range selected {
		for _, mk := range []func() *attacks.Target{
			attacks.NewBaselineTarget,
			func() *attacks.Target { return attacks.NewSTBPUTarget(nil) },
		} {
			t := mk()
			b := *budget
			if t.Name == "baseline" {
				b = 1000
			}
			res := d.run(t, b)
			fmt.Printf("%-20s %-10s %-9v %9d %12d %10d %8d\n",
				res.Attack, res.Model, res.Succeeded, res.Trials,
				res.AttackerMispredicts, res.Evictions, res.Rerandomizations)
		}
	}

	fmt.Println("\nanalytic complexities (§VI-A.5, Skylake sizes, 50% success):")
	rows := analysis.SectionVI()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Events < rows[j].Events })
	for _, c := range rows {
		fmt.Printf("  %-44s %-15s %.4g\n", c.Attack, c.Metric, c.Events)
	}
	misp, evict := analysis.Thresholds(0.05)
	fmt.Printf("re-randomization thresholds at r=0.05: %.4g mispredictions, %.4g evictions\n", misp, evict)
}
