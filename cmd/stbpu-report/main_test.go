package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stbpu/internal/experiments"
	"stbpu/internal/harness"
)

// writeDoc assembles a minimal suite document from live scenario
// aggregates — the same shape stbpu-suite -o emits.
func writeTestDoc(t *testing.T, path string, runs map[string]any) {
	t.Helper()
	doc := map[string]any{"suite": "stbpu-suite", "seed": 1, "runs": []any{}}
	var list []any
	for name, res := range runs {
		list = append(list, map[string]any{"scenario": name, "result": res})
	}
	doc["runs"] = list
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestSelfDiffIsCleanAndExitsZero is the acceptance smoke: a document
// diffed against itself reports zero changed metrics and exits 0.
func TestSelfDiffIsCleanAndExitsZero(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.json")
	writeTestDoc(t, path, map[string]any{
		"thresholds": experiments.RunThresholds(0.05),
		"gamma":      experiments.RunGamma(nil),
	})
	var out, errb bytes.Buffer
	code := run([]string{path, path}, &out, &errb)
	if code != 0 {
		t.Fatalf("self-diff exit = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "0 changed") {
		t.Errorf("self-diff reported changes:\n%s", out.String())
	}
}

// TestRegressionGate: a metric moving beyond the threshold must flip
// the exit status to 1; within the threshold it stays 0.
func TestRegressionGate(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	base := experiments.RunThresholds(0.05)
	writeTestDoc(t, oldPath, map[string]any{"thresholds": base})
	// Degrade one metric by 20% under an unchanged key — a regression,
	// not a reconfiguration.
	worse := base
	worse.MispThresh *= 1.2
	writeTestDoc(t, newPath, map[string]any{"thresholds": worse})

	var out, errb bytes.Buffer
	if code := run([]string{oldPath, newPath}, &out, &errb); code != 1 {
		t.Fatalf("changed run exit = %d (default threshold 0 must gate)\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "!") {
		t.Errorf("violations not marked:\n%s", out.String())
	}
	out.Reset()
	errb.Reset()
	// A 20% move passes a 50% threshold.
	if code := run([]string{"-threshold", "0.5", oldPath, newPath}, &out, &errb); code != 0 {
		t.Fatalf("within-threshold diff exit = %d, stderr: %s\n%s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "1 changed") {
		t.Errorf("within-threshold change not reported:\n%s", out.String())
	}
}

func TestJSONOutput(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeTestDoc(t, oldPath, map[string]any{"gamma": experiments.RunGamma([]float64{0.05})})
	writeTestDoc(t, newPath, map[string]any{"gamma": experiments.RunGamma([]float64{0.05, 0.005})})

	var out, errb bytes.Buffer
	// The default gate fails on one-sided metrics; -missing allow is the
	// explicit opt-out for intentionally different sweeps.
	if code := run([]string{"-json", oldPath, newPath}, &out, &errb); code != 1 {
		t.Fatalf("one-sided metrics did not gate: exit = %d", code)
	}
	out.Reset()
	errb.Reset()
	code := run([]string{"-json", "-missing", "allow", oldPath, newPath}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d (-missing allow must tolerate new-only rows): %s", code, errb.String())
	}
	var parsed struct {
		Compared int               `json:"compared"`
		OnlyNew  []json.RawMessage `json:"only_new"`
	}
	if err := json.Unmarshal(out.Bytes(), &parsed); err != nil {
		t.Fatalf("-json output unparseable: %v\n%s", err, out.String())
	}
	if parsed.Compared == 0 || len(parsed.OnlyNew) == 0 {
		t.Errorf("diff shape wrong: %+v", parsed)
	}
}

// TestJSONOutputSurvivesZeroBaselineChange: a metric leaving zero has
// an infinite relative change, which JSON numbers cannot carry — the
// machine-readable diff must still be produced (Rel as "+inf"), not
// silently empty, exactly when a violation occurs.
func TestJSONOutputSurvivesZeroBaselineChange(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeTestDoc(t, oldPath, map[string]any{"future": map[string]any{"succeeded": 0.0}})
	writeTestDoc(t, newPath, map[string]any{"future": map[string]any{"succeeded": 1.0}})

	var out, errb bytes.Buffer
	if code := run([]string{"-json", oldPath, newPath}, &out, &errb); code != 1 {
		t.Fatalf("zero-baseline violation exit = %d, want 1: %s", code, errb.String())
	}
	var parsed struct {
		Changed []struct {
			Rel any `json:"rel"`
		} `json:"changed"`
	}
	if err := json.Unmarshal(out.Bytes(), &parsed); err != nil {
		t.Fatalf("-json output unparseable with infinite rel: %v\n%s", err, out.String())
	}
	if len(parsed.Changed) != 1 || parsed.Changed[0].Rel != "+inf" {
		t.Errorf("infinite rel not encoded: %+v", parsed.Changed)
	}
}

// TestJournalInputs: two run journals diff cell by cell.
func TestJournalInputs(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string, rootSeed uint64) string {
		path := filepath.Join(dir, name)
		j, err := harness.CreateJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		pool := harness.NewPool(2, rootSeed)
		pool.SetSink(j)
		if _, err := harness.RunAll(context.Background(), pool, harness.Options{
			Filters: []string{"gamma", "thresholds"},
		}); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	a := mk("a.jsonl", 1)
	b := mk("b.jsonl", 1)

	var out, errb bytes.Buffer
	if code := run([]string{a, b}, &out, &errb); code != 0 {
		t.Fatalf("same-seed journals differ: exit %d\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "0 changed") {
		t.Errorf("journal self-comparison reported changes:\n%s", out.String())
	}
}

// TestJournalMixedParamsKeptDistinct: a journal holding the same cell
// address under two parameter sets (the documented re-parameterized
// resume case) must expose both, not silently shadow one.
func TestJournalMixedParamsKeptDistinct(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mixed.jsonl")
	j, err := harness.CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	spec := harness.CellSpec{Scenario: "s", Scope: "sc", Shard: 0, RootSeed: 1, Params: harness.Params{Records: 100}}
	j.CellDone(harness.Cell{Backend: "local"}, spec, harness.CellResult{Shard: 0, Value: json.RawMessage("1.5")})
	spec.Params.Records = 200
	j.CellDone(harness.Cell{Backend: "local"}, spec, harness.CellResult{Shard: 0, Value: json.RawMessage("2.5")})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := harness.ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	table := tableFromJournal(entries)
	if len(table.Rows) != 2 {
		t.Fatalf("mixed-params journal flattened to %d rows, want 2: %+v", len(table.Rows), table.Rows)
	}
	if table.Rows[0].Cell == table.Rows[1].Cell {
		t.Errorf("params missing from cell labels: %q", table.Rows[0].Cell)
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"only-one-arg"}, &out, &errb); code != 2 {
		t.Errorf("missing arg exit = %d, want 2", code)
	}
	if code := run([]string{"a", "b", "c"}, &out, &errb); code != 2 {
		t.Errorf("extra arg exit = %d, want 2", code)
	}
	if code := run([]string{"-threshold", "-1", "a", "b"}, &out, &errb); code != 2 {
		t.Errorf("negative threshold exit = %d, want 2", code)
	}
	if code := run([]string{"-missing", "bogus", "a", "b"}, &out, &errb); code != 2 {
		t.Errorf("bad -missing mode exit = %d, want 2", code)
	}
	missing := filepath.Join(t.TempDir(), "absent.json")
	if code := run([]string{missing, missing}, &out, &errb); code != 2 {
		t.Errorf("missing file exit = %d, want 2", code)
	}
}

// TestUnknownScenarioFallsBackToGenericFlatten: documents from a future
// suite with scenarios this binary doesn't know must still diff.
func TestUnknownScenarioFallsBackToGenericFlatten(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeTestDoc(t, oldPath, map[string]any{"future-scenario": map[string]any{"score": 1.5, "nested": []any{true, 2.0}}})
	writeTestDoc(t, newPath, map[string]any{"future-scenario": map[string]any{"score": 1.5, "nested": []any{true, 3.0}}})

	var out, errb bytes.Buffer
	if code := run([]string{oldPath, newPath}, &out, &errb); code != 1 {
		t.Fatalf("generic-flatten diff exit = %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "nested/1") {
		t.Errorf("generic path metric missing:\n%s", out.String())
	}
}

// TestTimingSummary pins the -timing mode on a crafted journal: scopes
// aggregate cells/total/mean/min/max from elapsed_us, order is by
// total wall time descending, and duplicate cell addresses (resumed
// journal shape) are counted once.
func TestTimingSummary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := harness.CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	add := func(scenario, scope string, shard int, elapsedUS int64) {
		j.CellDone(harness.Cell{Backend: "local"},
			harness.CellSpec{Scenario: scenario, Scope: scope, Shard: shard, RootSeed: 1},
			harness.CellResult{Shard: shard, Value: json.RawMessage("1"), ElapsedUS: elapsedUS})
	}
	add("fig3", "fig3", 0, 2_000) // 2 ms
	add("fig3", "fig3", 1, 4_000) // 4 ms
	add("covert", "covert", 0, 10_000)
	add("covert", "covert", 0, 99_000) // duplicate address: dropped
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	var out, errb bytes.Buffer
	if code := run([]string{"-timing", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d\n%s%s", code, out.String(), errb.String())
	}
	text := out.String()
	if !strings.Contains(text, "3 cells, 2 scopes, 16.0 ms total cell time") {
		t.Errorf("header wrong:\n%s", text)
	}
	covert := strings.Index(text, "covert/covert")
	fig3 := strings.Index(text, "fig3/fig3")
	if covert == -1 || fig3 == -1 || covert > fig3 {
		t.Errorf("scopes missing or not sorted by total time:\n%s", text)
	}
	fig3Line := text[fig3:]
	fig3Line = fig3Line[:strings.Index(fig3Line, "\n")]
	for _, want := range []string{"2", "6.0", "3.0", "2.0", "4.0"} {
		if !strings.Contains(fig3Line, want) {
			t.Errorf("fig3 row lacks %q: %q", want, fig3Line)
		}
	}
}

// TestTimingUsage: -timing takes exactly one input; a suite document
// renders the backends summary rather than the journal report.
func TestTimingUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-timing", "a.jsonl", "b.jsonl"}, &out, &errb); code != 2 {
		t.Errorf("two inputs with -timing: exit %d, want 2", code)
	}
	doc := filepath.Join(t.TempDir(), "doc.json")
	writeTestDoc(t, doc, map[string]any{"thresholds": experiments.RunThresholds(2)})
	out.Reset()
	errb.Reset()
	if code := run([]string{"-timing", doc}, &out, &errb); code != 0 {
		t.Errorf("suite document with -timing: exit %d, want 0\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "backends of") {
		t.Errorf("suite document with -timing should render the backends summary:\n%s", out.String())
	}
}

// TestTimingBackendsReport: a suite document carrying a fleet backends
// block must surface the scheduler and wire diagnostics — per-worker
// affinity hits/misses and per-codec frame bytes.
func TestTimingBackendsReport(t *testing.T) {
	doc := map[string]any{
		"suite": "stbpu-suite",
		"seed":  1,
		"runs":  []any{},
		"backends": []any{
			map[string]any{
				"backend": "remote", "cells": 64, "retries": 1, "wall_ms": 12,
				"joins": 2, "leaves": 1,
				"wire_json_bytes": 512, "wire_binary_bytes": 4096,
				"workers": []any{
					map[string]any{"worker": "alpha#0", "cells": 40, "affinity_hits": 9, "affinity_misses": 1},
					map[string]any{"worker": "beta#1", "cells": 24, "steals": 2, "affinity_hits": 5},
				},
			},
		},
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "suite.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-timing", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d\n%s%s", code, out.String(), errb.String())
	}
	text := out.String()
	for _, want := range []string{
		"remote: 64 cells, 1 retries, 12 ms wall, 2 joins, 1 leaves",
		"wire: 512 JSON frame bytes, 4096 binary frame bytes",
		"alpha#0", "beta#1", "aff hits", "aff misses",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("backends report lacks %q:\n%s", want, text)
		}
	}
}
