// Command stbpu-report compares two runs of the suite metric by metric
// and gates on regressions — the building block for a CI perf/accuracy
// gate and the replacement for manual jq archaeology over suite
// documents.
//
// Usage:
//
//	stbpu-report old.json new.json              # per-metric deltas
//	stbpu-report -threshold 0.05 old new        # fail on >5% relative change
//	stbpu-report -json old new                  # machine-readable diff
//	stbpu-report run-a.jsonl run-b.jsonl        # raw run journals work too
//	stbpu-report -timing run.jsonl              # per-scope wall-time summary
//	stbpu-report -timing suite.json             # per-backend fleet/wire summary
//
// Each input is either a stbpu-suite JSON document (the -o output) or a
// run journal (the -journal JSONL file; schema in docs/SUITE_JSON.md).
// Suite documents flatten through the typed results pipeline
// (internal/experiments' Tabler implementations); unknown scenarios and
// journal cell values flatten generically, numeric leaf by numeric
// leaf, so the tool keeps working on documents newer than itself.
//
// With -timing the single input is either a run journal — the tool
// aggregates each cell's recorded elapsed_us into per-(scenario,
// scope) wall-time summaries, the scheduling diagnostic for spotting
// which scopes dominate a sweep and how skewed their cells are — or a
// suite document, rendering its backends block instead: per-worker
// cells, steals, speculative waste, locality-affinity hits/misses, and
// per-codec wire byte counts.
//
// Exit status: 0 when every metric matches within the threshold (a run
// diffed against itself always exits 0 with zero deltas), 1 when a
// metric exceeds it or — by default — when metrics exist on only one
// side (a run that silently lost scenarios must not compare green;
// -missing allow tolerates intentionally different sets), 2 on usage
// or input errors. The default threshold is 0 — any metric change
// fails — because same-seed runs of this suite are deterministic
// replicas; raise it when comparing across seeds or intentionally
// different configurations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"stbpu/internal/experiments"
	"stbpu/internal/harness"
	"stbpu/internal/results"
)

// suiteRun is the slice of a suite document this tool reads: the
// scenario name plus its raw result, everything else ignored.
type suiteRun struct {
	Scenario string          `json:"scenario"`
	Result   json.RawMessage `json:"result"`
}

// suiteDocIn is the loosely-parsed suite document.
type suiteDocIn struct {
	Suite    string                 `json:"suite"`
	Runs     []suiteRun             `json:"runs"`
	Backends []harness.BackendStats `json:"backends"`
}

// loadTable flattens one input file — suite document or run journal —
// into a metrics table.
func loadTable(path string) (results.Table, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return results.Table{}, err
	}
	var doc suiteDocIn
	if err := json.Unmarshal(b, &doc); err == nil && doc.Suite == "stbpu-suite" {
		return tableFromDoc(doc)
	}
	entries, err := harness.ReadJournal(path)
	if err != nil {
		return results.Table{}, fmt.Errorf("%s is neither a stbpu-suite document nor a run journal: %w", path, err)
	}
	return tableFromJournal(entries), nil
}

// tableFromDoc flattens a suite document through the typed pipeline,
// falling back to generic JSON flattening for scenarios this binary
// doesn't know.
func tableFromDoc(doc suiteDocIn) (results.Table, error) {
	var out results.Table
	for _, run := range doc.Runs {
		if tabler, err := experiments.DecodeResult(run.Scenario, run.Result); err == nil {
			out.Rows = append(out.Rows, tabler.Table().WithScenario(run.Scenario).Rows...)
			continue
		}
		var v any
		if err := json.Unmarshal(run.Result, &v); err != nil {
			return results.Table{}, fmt.Errorf("scenario %s: undecodable result: %w", run.Scenario, err)
		}
		var t results.Table
		flattenJSON(&t, "", v)
		out.Rows = append(out.Rows, t.WithScenario(run.Scenario).Rows...)
	}
	out.Sort()
	return out, nil
}

// tableFromJournal flattens journal entries cell by cell: every numeric
// leaf of a cell's value becomes one metric, addressed by scope/shard
// (plus params and root seed when the journal mixes several, so cells
// from different configurations never collide or shadow each other).
// Duplicate full addresses (a resumed journal appended over its own
// prefix) keep the first occurrence, matching harness.ResumeJournal.
func tableFromJournal(entries []harness.JournalEntry) results.Table {
	// One journal usually holds one configuration; only ambiguous label
	// components are included, so the common case stays readable and two
	// same-config journals key identically.
	multiParams, multiSeeds := map[string]bool{}, map[uint64]bool{}
	for _, e := range entries {
		multiParams[journalParams(e)] = true
		multiSeeds[e.RootSeed] = true
	}
	var out results.Table
	seen := map[string]bool{}
	for _, e := range entries {
		params := journalParams(e)
		addr := journalAddr(e)
		if seen[addr] {
			continue
		}
		seen[addr] = true
		var v any
		if err := json.Unmarshal(e.Value, &v); err != nil {
			continue // a value this binary cannot parse still isn't comparable
		}
		var t results.Table
		flattenJSON(&t, "", v)
		kv := []string{"scope", e.Scope, "shard", results.Itoa(e.Shard)}
		if len(multiSeeds) > 1 {
			kv = append(kv, "root_seed", fmt.Sprint(e.RootSeed))
		}
		if len(multiParams) > 1 {
			kv = append(kv, "params", params)
		}
		cell := results.Labels(kv...)
		for _, r := range t.Rows {
			metric := r.Metric
			if metric == "" {
				metric = "value"
			}
			out.Rows = append(out.Rows, results.Row{Scenario: e.Scenario, Cell: cell, Metric: metric, Value: r.Value})
		}
	}
	out.Sort()
	return out
}

// journalParams collapses an entry's params to the canonical string
// ("?" when unmarshalable state somehow round-tripped).
func journalParams(e harness.JournalEntry) string {
	pj, err := harness.CanonicalParams(e.Params)
	if err != nil {
		return "?"
	}
	return pj
}

// journalAddr is an entry's full cell address in comparable form — the
// single dedup key every journal consumer in this binary shares, so
// the diff and -timing paths can never disagree on which duplicate of
// a resumed journal's cell wins.
func journalAddr(e harness.JournalEntry) string {
	return fmt.Sprintf("%s\x00%s\x00%d\x00%d\x00%s", e.Scenario, e.Scope, e.Shard, e.RootSeed, journalParams(e))
}

// flattenJSON walks an arbitrary decoded JSON value and emits one row
// per numeric (or boolean, as 0/1) leaf, with the slash-joined path as
// the metric name.
func flattenJSON(t *results.Table, path string, v any) {
	join := func(elem string) string {
		if path == "" {
			return elem
		}
		return path + "/" + elem
	}
	switch x := v.(type) {
	case float64:
		t.Add("", path, x)
	case bool:
		t.Add("", path, results.Bool01(x))
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			flattenJSON(t, join(k), x[k])
		}
	case []any:
		for i, e := range x {
			flattenJSON(t, join(results.Itoa(i)), e)
		}
	}
	// Strings and nulls are labels, not metrics: identity already lives
	// in the path.
}

// timingReport aggregates journal elapsed_us per (scenario, scope) and
// renders the summary sorted by total wall time (ties alphabetical), so
// the scope dominating the run reads first. Duplicate cell addresses (a
// resumed journal appended over its own prefix) keep the first
// occurrence, matching harness.ResumeJournal and tableFromJournal.
func timingReport(w io.Writer, path string, entries []harness.JournalEntry) {
	type agg struct {
		label string
		cells int
		total int64
		min   int64
		max   int64
	}
	byScope := map[string]*agg{}
	seen := map[string]bool{}
	kept := 0
	for _, e := range entries {
		addr := journalAddr(e)
		if seen[addr] {
			continue
		}
		seen[addr] = true
		kept++
		label := e.Scenario + "/" + e.Scope
		a := byScope[label]
		if a == nil {
			a = &agg{label: label, min: math.MaxInt64}
			byScope[label] = a
		}
		a.cells++
		a.total += e.ElapsedUS
		if e.ElapsedUS < a.min {
			a.min = e.ElapsedUS
		}
		if e.ElapsedUS > a.max {
			a.max = e.ElapsedUS
		}
	}
	scopes := make([]*agg, 0, len(byScope))
	var grand int64
	for _, a := range byScope {
		scopes = append(scopes, a)
		grand += a.total
	}
	sort.Slice(scopes, func(i, j int) bool {
		if scopes[i].total != scopes[j].total {
			return scopes[i].total > scopes[j].total
		}
		return scopes[i].label < scopes[j].label
	})

	ms := func(us int64) string { return fmt.Sprintf("%12.1f", float64(us)/1e3) }
	fmt.Fprintf(w, "stbpu-report: timing of %s (%d cells, %d scopes, %.1f ms total cell time)\n",
		path, kept, len(scopes), float64(grand)/1e3)
	if len(scopes) == 0 {
		return
	}
	fmt.Fprintln(w)
	g := results.Grid{LabelWidth: 32}
	g.Row(w, "scope", fmt.Sprintf("%8s", "cells"),
		fmt.Sprintf("%12s", "total ms"), fmt.Sprintf("%12s", "mean ms"),
		fmt.Sprintf("%12s", "min ms"), fmt.Sprintf("%12s", "max ms"))
	for _, a := range scopes {
		g.Row(w, a.label, fmt.Sprintf("%8d", a.cells),
			ms(a.total), ms(a.total/int64(a.cells)), ms(a.min), ms(a.max))
	}
}

// backendsReport renders a suite document's per-backend execution
// stats — the fleet diagnostic: per-worker cells, steals, speculative
// waste, locality-affinity hits and misses, and per-codec wire bytes.
func backendsReport(w io.Writer, path string, doc suiteDocIn) {
	fmt.Fprintf(w, "stbpu-report: backends of %s (%d backend(s))\n", path, len(doc.Backends))
	for _, b := range doc.Backends {
		fmt.Fprintf(w, "\n%s: %d cells, %d retries, %d ms wall", b.Backend, b.Cells, b.Retries, b.WallMS)
		if b.Joins+b.Leaves > 0 {
			fmt.Fprintf(w, ", %d joins, %d leaves", b.Joins, b.Leaves)
		}
		fmt.Fprintln(w)
		if b.WireJSONBytes+b.WireBinaryBytes > 0 {
			fmt.Fprintf(w, "  wire: %d JSON frame bytes, %d binary frame bytes\n", b.WireJSONBytes, b.WireBinaryBytes)
		}
		if len(b.Workers) == 0 {
			continue
		}
		g := results.Grid{LabelWidth: 32}
		g.Row(w, "  worker", fmt.Sprintf("%8s", "cells"), fmt.Sprintf("%8s", "steals"),
			fmt.Sprintf("%8s", "spec"), fmt.Sprintf("%9s", "aff hits"), fmt.Sprintf("%10s", "aff misses"))
		for _, ws := range b.Workers {
			g.Row(w, "  "+ws.Worker, fmt.Sprintf("%8d", ws.Cells), fmt.Sprintf("%8d", ws.Steals),
				fmt.Sprintf("%8d", ws.Speculative), fmt.Sprintf("%9d", ws.AffinityHits), fmt.Sprintf("%10d", ws.AffinityMisses))
		}
	}
}

// report renders the diff and returns the number of threshold
// violations; a non-nil error means the output itself could not be
// produced (tooling must not see a silent empty diff).
func report(w io.Writer, oldPath, newPath string, d results.DiffResult, threshold float64, maxRows int, asJSON bool) (int, error) {
	violations := d.Violations(threshold)
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		err := enc.Encode(struct {
			Old        string          `json:"old"`
			New        string          `json:"new"`
			Threshold  float64         `json:"threshold"`
			Compared   int             `json:"compared"`
			Changed    []results.Delta `json:"changed"`
			Violations int             `json:"violations"`
			OnlyOld    []results.Row   `json:"only_old,omitempty"`
			OnlyNew    []results.Row   `json:"only_new,omitempty"`
		}{oldPath, newPath, threshold, len(d.Deltas), d.Changed(), len(violations), d.OnlyOld, d.OnlyNew})
		return len(violations), err
	}

	changed := d.Changed()
	fmt.Fprintf(w, "stbpu-report: %s -> %s\n", oldPath, newPath)
	fmt.Fprintf(w, "%d metrics compared, %d changed, %d exceed threshold %g, %d only in old, %d only in new\n",
		len(d.Deltas), len(changed), len(violations), threshold, len(d.OnlyOld), len(d.OnlyNew))
	if len(changed) > 0 {
		fmt.Fprintln(w)
		g := results.Grid{LabelWidth: 64}
		g.Row(w, "  metric", fmt.Sprintf("%14s", "old"), fmt.Sprintf("%14s", "new"),
			fmt.Sprintf("%14s", "delta"), fmt.Sprintf("%10s", "rel"))
		shown := 0
		for _, x := range changed {
			if shown >= maxRows {
				fmt.Fprintf(w, "  ... %d more changed metrics not shown (-max-rows)\n", len(changed)-shown)
				break
			}
			shown++
			mark := " "
			if math.Abs(x.Rel) > threshold {
				mark = "!"
			}
			label := mark + " " + deltaLabel(x.Row)
			g.Row(w, label, fmt.Sprintf("%14.6g", x.Old), fmt.Sprintf("%14.6g", x.New),
				fmt.Sprintf("%+14.6g", x.Diff), relString(x.Rel))
		}
	}
	for _, r := range d.OnlyOld {
		fmt.Fprintf(w, "- only in old: %s\n", deltaLabel(r))
	}
	for _, r := range d.OnlyNew {
		fmt.Fprintf(w, "+ only in new: %s\n", deltaLabel(r))
	}
	return len(violations), nil
}

// deltaLabel renders a row key for humans.
func deltaLabel(r results.Row) string {
	parts := make([]string, 0, 3)
	if r.Scenario != "" {
		parts = append(parts, r.Scenario)
	}
	if r.Cell != "" {
		parts = append(parts, r.Cell)
	}
	parts = append(parts, r.Metric)
	return strings.Join(parts, " ")
}

// relString formats a relative change, keeping ±Inf readable.
func relString(rel float64) string {
	if math.IsInf(rel, 0) {
		if rel > 0 {
			return fmt.Sprintf("%10s", "+inf")
		}
		return fmt.Sprintf("%10s", "-inf")
	}
	return fmt.Sprintf("%+9.3f%%", rel*100)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main behind testable plumbing; it returns the process exit
// status (0 clean, 1 violations, 2 errors).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("stbpu-report", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 0, "max tolerated |relative change| per metric (0 = any change fails)")
	missing := fs.String("missing", "fail", "metrics present in only one input: fail (exit 1) or allow")
	asJSON := fs.Bool("json", false, "emit the diff as JSON")
	maxRows := fs.Int("max-rows", 100, "cap the changed-metric rows printed (text mode)")
	timing := fs.Bool("timing", false, "summarize one input instead of diffing: per-scope wall time from a run journal, or the fleet/wire backends block from a suite document")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: stbpu-report [flags] <old> <new>")
		fmt.Fprintln(stderr, "       stbpu-report -timing <run.jsonl | suite.json>")
		fmt.Fprintln(stderr, "inputs: stbpu-suite JSON documents (-o) or run journals (-journal)")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *timing {
		if fs.NArg() != 1 {
			fs.Usage()
			return 2
		}
		path := fs.Arg(0)
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "stbpu-report:", err)
			return 2
		}
		var doc suiteDocIn
		if jerr := json.Unmarshal(raw, &doc); jerr == nil && doc.Suite == "stbpu-suite" {
			backendsReport(stdout, path, doc)
			return 0
		}
		entries, err := harness.ReadJournal(path)
		if err != nil {
			fmt.Fprintln(stderr, "stbpu-report:", err)
			return 2
		}
		timingReport(stdout, path, entries)
		return 0
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	if *threshold < 0 {
		fmt.Fprintln(stderr, "stbpu-report: -threshold must be >= 0")
		return 2
	}
	if *missing != "fail" && *missing != "allow" {
		fmt.Fprintf(stderr, "stbpu-report: -missing must be fail or allow, not %q\n", *missing)
		return 2
	}
	oldPath, newPath := fs.Arg(0), fs.Arg(1)
	oldTable, err := loadTable(oldPath)
	if err != nil {
		fmt.Fprintln(stderr, "stbpu-report:", err)
		return 2
	}
	newTable, err := loadTable(newPath)
	if err != nil {
		fmt.Fprintln(stderr, "stbpu-report:", err)
		return 2
	}
	d := results.Diff(oldTable, newTable)
	violations, err := report(stdout, oldPath, newPath, d, *threshold, *maxRows, *asJSON)
	if err != nil {
		fmt.Fprintln(stderr, "stbpu-report: write diff:", err)
		return 2
	}
	status := 0
	if violations > 0 {
		fmt.Fprintf(stderr, "stbpu-report: %d metric(s) exceed the %g threshold\n", violations, *threshold)
		status = 1
	}
	// A gate that compares green while whole scenarios went missing is
	// worse than no gate: one-sided metrics fail by default. Comparing
	// intentionally different scenario sets is -missing allow.
	if onesided := len(d.OnlyOld) + len(d.OnlyNew); onesided > 0 && *missing == "fail" {
		fmt.Fprintf(stderr, "stbpu-report: %d metric(s) present in only one input (-missing allow to tolerate)\n", onesided)
		status = 1
	}
	return status
}
