// Command stbpu-remapgen runs the automated remap-function generator of
// §V-A: given hardware constraints, it searches for S-box/P-box/compression
// circuits meeting C1 (single-cycle), validates C2 (uniformity) and C3
// (avalanche), and prints the winning design with its metrics — the
// software equivalent of the paper's Fig. 2 construction.
//
// Usage:
//
//	stbpu-remapgen                  # generate all six Table II functions
//	stbpu-remapgen -func R1 -samples 10000
//	stbpu-remapgen -table2          # print Table II widths
//	stbpu-remapgen -maxpath 36      # tighter critical-path budget
package main

import (
	"flag"
	"fmt"
	"os"

	"path/filepath"

	"stbpu/internal/remap"
	"stbpu/internal/rng"
)

func main() {
	var (
		fn       = flag.String("func", "all", "function to generate: R1|R2|R3|R4|Rt|Rp|all")
		samples  = flag.Int("samples", 2048, "validation samples per candidate")
		cands    = flag.Int("candidates", 8, "constraint-satisfying candidates to score")
		maxPath  = flag.Int("maxpath", 45, "max transistors on the critical path (C1)")
		table2   = flag.Bool("table2", false, "print Table II and exit")
		deepEval = flag.Int("deepeval", 0, "re-validate the winner with this many samples (0 = skip)")
		seed     = flag.Uint64("seed", 0, "search seed (0 = derived from function name)")
		saveDir  = flag.String("save", "", "directory to write <func>.circuit text files into")
		netlist  = flag.Bool("netlist", false, "also write <func>.v gate-level netlists (requires -save)")
	)
	flag.Parse()

	if *table2 {
		fmt.Printf("%-5s %12s %10s %8s  %s\n", "func", "baseline-in", "stbpu-in", "out", "output fields")
		for _, row := range remap.TableII() {
			fmt.Printf("%-5s %12d %10d %8d  %s\n",
				row.Name, row.BaselineInBits, row.STBPUInBits, row.OutBits, row.OutDesc)
		}
		return
	}

	specs := map[string][2]int{
		"R1": {80, 22}, "R2": {90, 8}, "R3": {80, 14},
		"R4": {96, 14}, "Rt": {96, 25}, "Rp": {80, 10},
	}
	names := []string{"R1", "R2", "R3", "R4", "Rt", "Rp"}
	if *fn != "all" {
		if _, ok := specs[*fn]; !ok {
			fmt.Fprintf(os.Stderr, "stbpu-remapgen: unknown function %q\n", *fn)
			os.Exit(1)
		}
		names = []string{*fn}
	}

	constraints := remap.DefaultConstraints
	constraints.MaxCriticalPath = *maxPath

	for _, name := range names {
		io := specs[name]
		cfg := remap.GenConfig{
			Name: name, InBits: io[0], OutBits: io[1],
			Constraints: constraints,
			Candidates:  *cands, Samples: *samples, Seed: *seed,
		}
		circuit, quality, err := remap.Generate(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stbpu-remapgen: %s: %v\n", name, err)
			os.Exit(1)
		}
		cost := remap.DefaultCostModel.Estimate(circuit)
		fmt.Printf("%s\n", circuit)
		fmt.Printf("  C1: critical path %d transistors (budget %d), total %d, layers %d, max crossover %d\n",
			cost.CriticalPath, constraints.MaxCriticalPath, cost.Total, cost.Layers, cost.MaxCrossover)
		fmt.Printf("  C2: bin-CV excess over Poisson floor %.4f\n", quality.BinCV)
		fmt.Printf("  C3: avalanche mean %.4f (ideal 0.5), CV %.4f, per-bit spread %.4f\n",
			quality.AvalancheMean, quality.AvalancheCV, quality.PerBitSpread)
		fmt.Printf("  score %.4f over %d samples\n", quality.Score(), quality.Samples)
		if *deepEval > 0 {
			deep := remap.EvaluateCircuit(circuit, *deepEval, rng.NewFromString("deepeval:"+name))
			fmt.Printf("  deep validation (%d samples): avalanche %.4f, CV %.4f, spread %.4f, bin excess %.4f\n",
				*deepEval, deep.AvalancheMean, deep.AvalancheCV, deep.PerBitSpread, deep.BinCV)
		}
		if *saveDir != "" {
			text, err := circuit.MarshalText()
			if err != nil {
				fmt.Fprintf(os.Stderr, "stbpu-remapgen: marshal %s: %v\n", name, err)
				os.Exit(1)
			}
			path := filepath.Join(*saveDir, name+".circuit")
			if err := os.WriteFile(path, text, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "stbpu-remapgen: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("  saved %s\n", path)
			if *netlist {
				vpath := filepath.Join(*saveDir, name+".v")
				f, err := os.Create(vpath)
				if err != nil {
					fmt.Fprintf(os.Stderr, "stbpu-remapgen: %v\n", err)
					os.Exit(1)
				}
				if err := circuit.WriteNetlist(f); err != nil {
					fmt.Fprintf(os.Stderr, "stbpu-remapgen: netlist %s: %v\n", name, err)
					os.Exit(1)
				}
				if err := f.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "stbpu-remapgen: %v\n", err)
					os.Exit(1)
				}
				fmt.Printf("  saved %s\n", vpath)
			}
		}
		fmt.Println()
	}
}
