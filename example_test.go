package stbpu_test

// Godoc examples for the public façade. Each runs as a test; outputs are
// deterministic under the fixed seeds.

import (
	"fmt"

	"stbpu"
)

// ExampleSimulate shows the core protected-vs-unprotected comparison.
func ExampleSimulate() {
	tr, err := stbpu.GenerateWorkload("505.mcf", 50_000)
	if err != nil {
		panic(err)
	}
	protected := stbpu.NewProtected(stbpu.Config{Predictor: stbpu.SKLCond, Seed: 1})
	baseline := stbpu.NewUnprotected(stbpu.SKLCond)

	p := stbpu.Simulate(protected, tr)
	b := stbpu.Simulate(baseline, tr)
	fmt.Printf("protection is nearly free: %v\n", p.OAE() > 0.99*b.OAE())
	// Output:
	// protection is nearly free: true
}

// ExampleDeriveThresholds shows the paper's Γ = r·C derivation.
func ExampleDeriveThresholds() {
	th := stbpu.DeriveThresholds(0.05)
	fmt.Printf("misprediction budget %d, eviction budget %d\n",
		th.Mispredictions, th.Evictions)
	// Output:
	// misprediction budget 41900, eviction budget 26500
}

// ExampleNewDefense compares a related-work design against STBPU on the
// same workload.
func ExampleNewDefense() {
	tr, err := stbpu.GenerateWorkload("apache2_prefork_c128", 40_000)
	if err != nil {
		panic(err)
	}
	zhao := stbpu.Simulate(stbpu.NewDefense(stbpu.ZhaoDAC21, 1), tr)
	st := stbpu.Simulate(stbpu.NewProtected(stbpu.Config{Seed: 1, SharedTokens: true}), tr)
	fmt.Printf("STBPU retains more accuracy than Zhao-DAC21: %v\n", st.OAE() > zhao.OAE())
	// Output:
	// STBPU retains more accuracy than Zhao-DAC21: true
}

// ExampleSimulateMany fans a workload sweep out over all CPUs.
func ExampleSimulateMany() {
	var runs []stbpu.Run
	for _, name := range []string{"505.mcf", "541.leela", "519.lbm"} {
		tr, err := stbpu.GenerateWorkload(name, 20_000)
		if err != nil {
			panic(err)
		}
		runs = append(runs, stbpu.Run{
			Name:     name,
			NewModel: func() stbpu.Model { return stbpu.NewProtected(stbpu.Config{Seed: 7}) },
			Trace:    tr,
		})
	}
	for _, res := range stbpu.SimulateMany(runs) {
		fmt.Printf("%s: %d records\n", res.Model, res.Records)
	}
	// Output:
	// 505.mcf: 20000 records
	// 541.leela: 20000 records
	// 519.lbm: 20000 records
}
