package perceptron

// Snapshot support for the warm-state checkpoint tier (sim.Snapshotter):
// deep forks and a deterministic binary state round-trip. The lookup
// stash is dead between records, so clones and decoded snapshots reset
// it to keep encodings canonical.

import "stbpu/internal/snap"

// CloneWith returns a deep copy of the predictor addressed through f
// (forks re-point keyed index functions at the fork's own key state;
// pass nil to keep the original's).
func (p *Predictor) CloneWith(f IndexFunc) *Predictor {
	if f == nil {
		f = p.index
	}
	cfg := p.cfg
	cfg.Index = f
	np := New(cfg)
	for i := range p.weights {
		copy(np.weights[i], p.weights[i])
	}
	np.hist = p.hist
	return np
}

// EncodeState appends the predictor's mutable state to w.
func (p *Predictor) EncodeState(w *snap.Writer) {
	w.Len(len(p.weights))
	for i := range p.weights {
		w.I16s(p.weights[i])
	}
	w.U64(p.hist)
}

// DecodeState restores state encoded by EncodeState onto a predictor of
// the same configuration, resetting the lookup stash.
func (p *Predictor) DecodeState(r *snap.Reader) {
	r.LenExact(len(p.weights))
	for i := range p.weights {
		r.I16sInto(p.weights[i])
	}
	p.hist = r.U64()
	p.lastPC, p.lastIdx, p.lastSum = 0, 0, 0
}
