package perceptron

import (
	"testing"

	"stbpu/internal/rng"
)

const benchMask = 1<<14 - 1

func benchStream() (pcs []uint64, taken []bool) {
	pcs = make([]uint64, benchMask+1)
	taken = make([]bool, benchMask+1)
	s := uint64(0x5eed)
	for i := range pcs {
		r := rng.SplitMix64(&s)
		pcs[i] = 0x400000 + (r%2048)<<2
		taken[i] = (pcs[i]>>2^uint64(i))&3 != 0 // address/history correlated
	}
	return pcs, taken
}

func benchPredictor(b *testing.B) (*Predictor, []uint64, []bool) {
	b.Helper()
	p := New(DefaultConfig())
	pcs, taken := benchStream()
	for i := range pcs {
		p.Predict(pcs[i])
		p.Update(pcs[i], taken[i])
	}
	return p, pcs, taken
}

func BenchmarkPredict(b *testing.B) {
	p, pcs, _ := benchPredictor(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Predict(pcs[i&benchMask])
	}
}

// BenchmarkUpdate measures the full predict/update training pair.
func BenchmarkUpdate(b *testing.B) {
	p, pcs, taken := benchPredictor(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Predict(pcs[i&benchMask])
		p.Update(pcs[i&benchMask], taken[i&benchMask])
	}
}
