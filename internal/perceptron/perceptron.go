// Package perceptron implements the perceptron branch predictor of Jiménez
// & Lin (HPCA 2001), the fourth predictor model of the paper's gem5
// evaluation ("PerceptronBP", §VII-B2).
//
// A table of signed weight vectors is indexed by a hash of the branch
// address; the prediction is the sign of the dot product between the
// weights and the recent global history (encoded ±1), plus a bias weight.
// Training bumps weights when the prediction was wrong or the magnitude of
// the output fell below the adaptive threshold θ = ⌊1.93·h + 14⌋.
//
// The index computation goes through IndexFunc so the STBPU wrapper can
// substitute the keyed Rp remapping function.
package perceptron

import "stbpu/internal/bpu"

// IndexFunc maps a branch address to a weight-table row.
type IndexFunc func(pc uint64) uint32

// Config sizes a perceptron predictor.
type Config struct {
	// TableBits sizes the weight table (Table II's Rp produces a 10-bit
	// index).
	TableBits uint
	// HistoryLen is the number of history bits (weights per row, plus
	// bias).
	HistoryLen int
	// Index is the row hash; nil means the legacy fold of the address.
	Index IndexFunc
}

// DefaultConfig matches the paper's PerceptronBP scale: 1024 rows of
// 32-bit-history perceptrons.
func DefaultConfig() Config {
	return Config{TableBits: 10, HistoryLen: 32}
}

// Predictor is a perceptron branch predictor implementing
// bpu.DirectionPredictor.
type Predictor struct {
	cfg     Config
	index   IndexFunc
	weights [][]int16 // rows × (1 bias + HistoryLen)
	hist    uint64    // most recent outcome in bit 0
	theta   int

	// lookup stash.
	lastIdx uint32
	lastSum int
	lastPC  uint64
}

var _ bpu.DirectionPredictor = (*Predictor)(nil)

// New builds a predictor from the configuration.
func New(cfg Config) *Predictor {
	if cfg.TableBits == 0 {
		cfg.TableBits = 10
	}
	if cfg.HistoryLen <= 0 || cfg.HistoryLen > 64 {
		cfg.HistoryLen = 32
	}
	idx := cfg.Index
	if idx == nil {
		bits := cfg.TableBits
		idx = func(pc uint64) uint32 {
			return uint32((pc>>2)^(pc>>(2+uint64(bits)))) & (1<<bits - 1)
		}
	}
	rows := 1 << cfg.TableBits
	w := make([][]int16, rows)
	for i := range w {
		w[i] = make([]int16, cfg.HistoryLen+1)
	}
	return &Predictor{
		cfg:     cfg,
		index:   idx,
		weights: w,
		theta:   int(1.93*float64(cfg.HistoryLen)) + 14,
	}
}

// Config returns the instance configuration.
func (p *Predictor) Config() Config { return p.cfg }

// SetIndexFunc swaps the row hash (token re-randomization in ST mode).
func (p *Predictor) SetIndexFunc(f IndexFunc) { p.index = f }

// Predict implements bpu.DirectionPredictor. The dot product is computed
// branchlessly: each history bit maps to ±1 via (bit<<1)-1, so the inner
// loop is pure multiply-accumulate with no per-bit branch to mispredict
// (ironically the costliest hazard in a branch predictor's own hot loop).
func (p *Predictor) Predict(pc uint64) bool {
	idx := p.index(pc) & (1<<p.cfg.TableBits - 1)
	row := p.weights[idx]
	sum := int(row[0]) // bias
	h := p.hist
	for _, w := range row[1:] {
		sum += int(w) * (int(h&1)<<1 - 1)
		h >>= 1
	}
	p.lastIdx, p.lastSum, p.lastPC = idx, sum, pc
	return sum >= 0
}

// Update implements bpu.DirectionPredictor.
func (p *Predictor) Update(pc uint64, taken bool) {
	if p.lastPC != pc {
		p.Predict(pc)
	}
	pred := p.lastSum >= 0
	if pred != taken || absInt(p.lastSum) <= p.theta {
		row := p.weights[p.lastIdx]
		bump(&row[0], taken)
		h := p.hist
		for i := 1; i < len(row); i++ {
			bump(&row[i], (h&1 == 1) == taken)
			h >>= 1
		}
	}
	p.hist <<= 1
	if taken {
		p.hist |= 1
	}
}

// Flush implements bpu.DirectionPredictor.
func (p *Predictor) Flush() {
	for i := range p.weights {
		for j := range p.weights[i] {
			p.weights[i][j] = 0
		}
	}
	p.hist = 0
	p.lastPC, p.lastIdx, p.lastSum = 0, 0, 0
}

const weightMax = 127 // 8-bit saturating weights, stored in int16 for headroom checks

func bump(w *int16, up bool) {
	if up {
		if *w < weightMax {
			*w++
		}
	} else if *w > -weightMax-1 {
		*w--
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
