package perceptron

import (
	"testing"

	"stbpu/internal/rng"
)

func train(p *Predictor, n int, pattern func(i int) (uint64, bool)) float64 {
	correct, counted := 0, 0
	for i := 0; i < n; i++ {
		pc, taken := pattern(i)
		pred := p.Predict(pc)
		if i >= n/2 {
			counted++
			if pred == taken {
				correct++
			}
		}
		p.Update(pc, taken)
	}
	return float64(correct) / float64(counted)
}

func TestBiasedBranch(t *testing.T) {
	p := New(DefaultConfig())
	if acc := train(p, 1000, func(i int) (uint64, bool) { return 0x401000, true }); acc < 0.99 {
		t.Errorf("biased accuracy %.3f", acc)
	}
}

func TestAlternatingPattern(t *testing.T) {
	p := New(DefaultConfig())
	if acc := train(p, 2000, func(i int) (uint64, bool) { return 0x402000, i%2 == 0 }); acc < 0.95 {
		t.Errorf("alternating accuracy %.3f", acc)
	}
}

func TestLinearlySeparablePattern(t *testing.T) {
	// taken = h[2] XOR is NOT linearly separable; taken = h[2] alone is.
	// The perceptron must nail single-tap correlation.
	p := New(DefaultConfig())
	var hist uint64
	correct, counted := 0, 0
	const n = 4000
	for i := 0; i < n; i++ {
		taken := hist>>2&1 == 1
		pred := p.Predict(0x403000)
		if i > n/2 {
			counted++
			if pred == taken {
				correct++
			}
		}
		p.Update(0x403000, taken)
		hist = hist<<1 | b2u(taken)
	}
	if acc := float64(correct) / float64(counted); acc < 0.97 {
		t.Errorf("single-tap accuracy %.3f", acc)
	}
}

func TestXorPatternIsHard(t *testing.T) {
	// XOR of two *independent random* history bits is not linearly
	// separable: the classic perceptron weakness. Two feeder branches
	// take random outcomes; a third branch's outcome is their XOR.
	// Accuracy must stay near chance — this validates we implemented a
	// real linear perceptron, not a lookup table.
	p := New(DefaultConfig())
	r := rng.New(21)
	correct, counted := 0, 0
	const n = 4000
	for i := 0; i < n; i++ {
		a, b := r.Bool(0.5), r.Bool(0.5)
		p.Predict(0x404100)
		p.Update(0x404100, a)
		p.Predict(0x404200)
		p.Update(0x404200, b)
		taken := a != b
		pred := p.Predict(0x404000)
		if i > n/2 {
			counted++
			if pred == taken {
				correct++
			}
		}
		p.Update(0x404000, taken)
	}
	if acc := float64(correct) / float64(counted); acc > 0.75 {
		t.Errorf("XOR accuracy %.3f: a linear perceptron should not solve XOR", acc)
	}
}

func TestCustomIndexFunc(t *testing.T) {
	called := 0
	cfg := DefaultConfig()
	cfg.Index = func(pc uint64) uint32 { called++; return 7 }
	p := New(cfg)
	p.Predict(0x1000)
	p.Update(0x1000, true)
	if called == 0 {
		t.Error("custom index function not used")
	}
	p.SetIndexFunc(func(pc uint64) uint32 { return 9 })
	p.Predict(0x1000)
}

func TestFlush(t *testing.T) {
	p := New(DefaultConfig())
	train(p, 500, func(i int) (uint64, bool) { return 0x401000, true })
	p.Flush()
	// Zero weights give sum 0, which predicts taken by the >= convention;
	// what matters is that the trained bias is gone.
	if p.lastSum != 0 {
		p.Predict(0x401000)
	}
	p.Predict(0x401000)
	if p.lastSum != 0 {
		t.Errorf("flushed perceptron kept weights: sum %d", p.lastSum)
	}
}

func TestWeightSaturation(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 10000; i++ {
		p.Predict(0x401000)
		p.Update(0x401000, true)
	}
	for _, w := range p.weights[p.lastIdx] {
		if w > weightMax || w < -weightMax-1 {
			t.Fatalf("weight %d out of saturation range", w)
		}
	}
}

func TestUpdateWithoutPredictRecovers(t *testing.T) {
	p := New(DefaultConfig())
	p.Update(0x999, false)
	p.Predict(0x999)
}

func TestDefaultsFilled(t *testing.T) {
	p := New(Config{})
	if p.cfg.TableBits != 10 || p.cfg.HistoryLen != 32 {
		t.Errorf("defaults not applied: %+v", p.cfg)
	}
	h := p.cfg.HistoryLen
	if p.theta != int(1.93*float64(h))+14 {
		t.Errorf("theta = %d", p.theta)
	}
}

func TestManyBranchesNoInterferenceCollapse(t *testing.T) {
	// Different rows must train independently.
	p := New(DefaultConfig())
	r := rng.New(5)
	bias := map[uint64]bool{}
	correct, total := 0, 0
	const n = 20000
	for i := 0; i < n; i++ {
		pc := 0x400000 + uint64(r.Intn(64))*64
		want, ok := bias[pc]
		if !ok {
			want = r.Bool(0.5)
			bias[pc] = want
		}
		pred := p.Predict(pc)
		if i > n/2 {
			total++
			if pred == want {
				correct++
			}
		}
		p.Update(pc, want)
	}
	if acc := float64(correct) / float64(total); acc < 0.95 {
		t.Errorf("per-branch bias accuracy %.3f", acc)
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func BenchmarkPredictUpdate(b *testing.B) {
	p := New(DefaultConfig())
	for i := 0; i < b.N; i++ {
		pc := 0x400000 + uint64(i%512)*16
		taken := p.Predict(pc)
		p.Update(pc, taken != (i%5 == 0))
	}
}
