package results

import (
	"sort"
	"strconv"
	"strings"
)

// Row is one metric observation: which scenario produced it, which cell
// of the scenario's space it describes, the metric's name and unit, and
// the value. Rows are the atoms diffing and merging operate on; the
// (Scenario, Cell, Metric, Unit) tuple is a row's identity.
type Row struct {
	// Scenario names the registered scenario the metric came from.
	Scenario string `json:"scenario,omitempty"`
	// Cell labels the point in the scenario's space, conventionally
	// comma-joined key=value pairs from Labels (empty for aggregates over
	// the whole scenario).
	Cell string `json:"cell,omitempty"`
	// Metric names the measured quantity (e.g. "norm_oae", "capacity").
	Metric string `json:"metric"`
	// Unit qualifies Value ("" for dimensionless ratios and counts).
	Unit string `json:"unit,omitempty"`
	// Value is the observation.
	Value float64 `json:"value"`
}

// Key is a row's identity — everything except the value.
func (r Row) Key() string {
	return r.Scenario + "\x00" + r.Cell + "\x00" + r.Metric + "\x00" + r.Unit
}

// Table is an ordered collection of metric rows. The zero value is an
// empty table ready for Add.
type Table struct {
	Rows []Row `json:"rows"`
}

// Add appends one (cell, metric, value) row.
func (t *Table) Add(cell, metric string, value float64) {
	t.Rows = append(t.Rows, Row{Cell: cell, Metric: metric, Value: value})
}

// AddUnit appends one row carrying a unit.
func (t *Table) AddUnit(cell, metric, unit string, value float64) {
	t.Rows = append(t.Rows, Row{Cell: cell, Metric: metric, Unit: unit, Value: value})
}

// Sort orders rows canonically by (scenario, cell, metric, unit) so a
// table's serialized form is deterministic regardless of build order.
// Ties (duplicate keys, e.g. repeated-run samples before a Merge) keep
// their insertion order.
func (t *Table) Sort() {
	sort.SliceStable(t.Rows, func(i, j int) bool {
		return t.Rows[i].Key() < t.Rows[j].Key()
	})
}

// WithScenario returns a copy of the table with every row's Scenario
// field set, sorted canonically. Tabler implementations emit rows
// without the scenario name (they don't know what they were registered
// as); the caller that does know stamps it here.
func (t Table) WithScenario(scenario string) Table {
	out := Table{Rows: make([]Row, len(t.Rows))}
	copy(out.Rows, t.Rows)
	for i := range out.Rows {
		out.Rows[i].Scenario = scenario
	}
	out.Sort()
	return out
}

// Tabler is implemented by scenario aggregates that can flatten into a
// metrics table. Table rows carry no Scenario (see Table.WithScenario).
type Tabler interface {
	Table() Table
}

// Labels joins key=value pairs into the canonical Cell string:
// "workload=505.mcf,model=STBPU". Pairs must come in (key, value)
// order; it panics on an odd count so malformed calls surface in tests.
func Labels(kv ...string) string {
	if len(kv)%2 != 0 {
		panic("results: Labels requires key/value pairs")
	}
	var sb strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(kv[i])
		sb.WriteByte('=')
		sb.WriteString(kv[i+1])
	}
	return sb.String()
}

// Ftoa renders a float label component in the shortest exact form, for
// stable Cell strings built from sweep axes (r values, trace lengths).
func Ftoa(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Itoa renders an int label component.
func Itoa(v int) string { return strconv.Itoa(v) }

// Bool01 maps a boolean outcome onto the 0/1 metric scale, so pass/fail
// cells (attack succeeded, claim holds) diff like any other metric.
func Bool01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
