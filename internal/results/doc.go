// Package results is the typed results layer of the pipeline: a
// row-oriented metrics table every scenario aggregate can flatten into,
// plus the diff/merge helpers and the shared text renderer built on it.
//
// A results.Table holds (scenario, cell, metric, unit, value) rows in a
// deterministic order, so two runs of the same suite flatten to
// comparable tables regardless of how their aggregates are shaped.
// Scenario result types implement Tabler (see
// internal/experiments/tables.go); cmd/stbpu-report diffs the tables of
// two suite documents (or run journals) and gates on per-metric deltas.
//
// Diff matches rows by key and reports deltas with relative changes;
// Merge aggregates repeated-run tables into mean/stddev/min/max columns
// through internal/stats. Grid is the shared fixed-layout text renderer
// the experiments' Render methods shim onto — the label-column padding,
// separators, and row loops live here once instead of twelve times.
package results
