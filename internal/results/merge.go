package results

import (
	"sort"

	"stbpu/internal/stats"
)

// Merge unions tables into one, collapsing rows that share a key (the
// same metric observed by several runs) into aggregate columns computed
// by internal/stats: the key's row carries the mean, and when a key has
// more than one sample, companion "<metric>/stddev", "<metric>/min",
// and "<metric>/max" rows describe the spread. Singleton keys pass
// through unchanged, so merging one table is the identity (modulo
// canonical ordering).
func Merge(tables ...Table) Table {
	samples := map[string][]float64{}
	proto := map[string]Row{}
	var order []string
	for _, t := range tables {
		for _, r := range t.Rows {
			k := r.Key()
			if _, seen := proto[k]; !seen {
				proto[k] = r
				order = append(order, k)
			}
			samples[k] = append(samples[k], r.Value)
		}
	}
	var out Table
	for _, k := range order {
		r := proto[k]
		xs := samples[k]
		r.Value = stats.Mean(xs)
		out.Rows = append(out.Rows, r)
		if len(xs) < 2 {
			continue
		}
		s := stats.Summarize(xs)
		for _, agg := range []struct {
			suffix string
			value  float64
		}{
			{"stddev", s.StdDev},
			{"min", s.Min},
			{"max", s.Max},
		} {
			c := r
			c.Metric = r.Metric + "/" + agg.suffix
			c.Value = agg.value
			out.Rows = append(out.Rows, c)
		}
	}
	out.Sort()
	return out
}

// Scenarios lists the distinct scenario names in the table, sorted.
func (t Table) Scenarios() []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range t.Rows {
		if !seen[r.Scenario] {
			seen[r.Scenario] = true
			out = append(out, r.Scenario)
		}
	}
	sort.Strings(out)
	return out
}
