package results

import (
	"encoding/json"
	"math"
	"sort"
)

// Delta is one matched metric's change between two tables.
type Delta struct {
	Row Row `json:"row"` // the key; Value holds the new observation
	// Old and New are the two observations.
	Old float64 `json:"old"`
	New float64 `json:"new"`
	// Diff is New - Old.
	Diff float64 `json:"diff"`
	// Rel is Diff / |Old| — ±Inf when Old is 0 but New is not, 0 when
	// both are 0. In JSON, infinite Rel is encoded as the string "+inf"
	// or "-inf" (JSON numbers cannot carry infinities, and a zero-
	// baseline change is exactly when a machine-readable diff matters).
	Rel float64 `json:"rel"`
}

// deltaJSON is Delta's wire shape: Rel widens to any so infinities
// survive encoding as strings.
type deltaJSON struct {
	Row  Row     `json:"row"`
	Old  float64 `json:"old"`
	New  float64 `json:"new"`
	Diff float64 `json:"diff"`
	Rel  any     `json:"rel"`
}

// MarshalJSON implements json.Marshaler; see the Rel field comment.
func (d Delta) MarshalJSON() ([]byte, error) {
	out := deltaJSON{Row: d.Row, Old: d.Old, New: d.New, Diff: d.Diff, Rel: d.Rel}
	if math.IsInf(d.Rel, 1) {
		out.Rel = "+inf"
	} else if math.IsInf(d.Rel, -1) {
		out.Rel = "-inf"
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler, the inverse of MarshalJSON.
func (d *Delta) UnmarshalJSON(b []byte) error {
	var in deltaJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	d.Row, d.Old, d.New, d.Diff = in.Row, in.Old, in.New, in.Diff
	switch rel := in.Rel.(type) {
	case string:
		if rel == "-inf" {
			d.Rel = math.Inf(-1)
		} else {
			d.Rel = math.Inf(1)
		}
	case float64:
		d.Rel = rel
	}
	return nil
}

// DiffResult pairs two tables metric by metric.
type DiffResult struct {
	// Deltas holds every key present in both tables, in canonical key
	// order (including unchanged metrics, whose Diff is 0).
	Deltas []Delta `json:"deltas"`
	// OnlyOld and OnlyNew hold rows whose key appears in just one table
	// (a scenario added, removed, or re-parameterized between runs).
	OnlyOld []Row `json:"only_old,omitempty"`
	OnlyNew []Row `json:"only_new,omitempty"`
}

// Diff matches old against new by row key. Duplicate keys within one
// table (repeated-run samples) should be collapsed with Merge first;
// Diff keeps the first occurrence and ignores the rest.
func Diff(old, new Table) DiffResult {
	oldBy := make(map[string]Row, len(old.Rows))
	for _, r := range old.Rows {
		if _, dup := oldBy[r.Key()]; !dup {
			oldBy[r.Key()] = r
		}
	}
	var res DiffResult
	seenNew := make(map[string]bool, len(new.Rows))
	for _, r := range new.Rows {
		k := r.Key()
		if seenNew[k] {
			continue
		}
		seenNew[k] = true
		o, ok := oldBy[k]
		if !ok {
			res.OnlyNew = append(res.OnlyNew, r)
			continue
		}
		delete(oldBy, k)
		d := Delta{Row: r, Old: o.Value, New: r.Value, Diff: r.Value - o.Value}
		switch {
		case d.Diff == 0:
			d.Rel = 0
		case o.Value != 0:
			d.Rel = d.Diff / math.Abs(o.Value)
		default:
			d.Rel = math.Inf(1)
			if d.Diff < 0 {
				d.Rel = math.Inf(-1)
			}
		}
		res.Deltas = append(res.Deltas, d)
	}
	for _, r := range oldBy {
		res.OnlyOld = append(res.OnlyOld, r)
	}
	sort.Slice(res.Deltas, func(i, j int) bool { return res.Deltas[i].Row.Key() < res.Deltas[j].Row.Key() })
	sort.Slice(res.OnlyOld, func(i, j int) bool { return res.OnlyOld[i].Key() < res.OnlyOld[j].Key() })
	sort.Slice(res.OnlyNew, func(i, j int) bool { return res.OnlyNew[i].Key() < res.OnlyNew[j].Key() })
	return res
}

// Changed returns the deltas whose value actually moved.
func (d DiffResult) Changed() []Delta {
	var out []Delta
	for _, x := range d.Deltas {
		if x.Diff != 0 {
			out = append(out, x)
		}
	}
	return out
}

// Violations returns the deltas whose relative change exceeds threshold
// in magnitude (a metric moving away from a zero baseline always
// violates any finite threshold: Rel is ±Inf there). threshold 0 means
// any change at all is a violation — the strict gate for runs that
// should be deterministic replicas.
func (d DiffResult) Violations(threshold float64) []Delta {
	var out []Delta
	for _, x := range d.Deltas {
		if x.Diff != 0 && math.Abs(x.Rel) > threshold {
			out = append(out, x)
		}
	}
	return out
}
