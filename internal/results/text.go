package results

import (
	"fmt"
	"io"
)

// Grid is the shared fixed-layout text renderer behind every scenario's
// Render method: a left-aligned label column padded to LabelWidth,
// followed by pre-formatted cells, each preceded by Sep. The cells keep
// their figure-specific numeric formats at the call site; the padding,
// separator, and row loops — the part that used to be duplicated across
// twelve Render methods — live here.
type Grid struct {
	// LabelWidth is the first column's minimum width (left-aligned).
	LabelWidth int
	// Sep is written before every cell (" " for plain tables, " | " for
	// grouped columns). Empty means a single space.
	Sep string
}

// Row writes one table row: the padded label, then each cell behind the
// separator, then a newline.
func (g Grid) Row(w io.Writer, label string, cells ...string) {
	sep := g.Sep
	if sep == "" {
		sep = " "
	}
	fmt.Fprintf(w, "%-*s", g.LabelWidth, label)
	for _, c := range cells {
		io.WriteString(w, sep)
		io.WriteString(w, c)
	}
	fmt.Fprintln(w)
}

// Write renders a whole table: each row's first element is the label,
// the rest are cells.
func (g Grid) Write(w io.Writer, rows [][]string) {
	for _, r := range rows {
		if len(r) == 0 {
			fmt.Fprintln(w)
			continue
		}
		g.Row(w, r[0], r[1:]...)
	}
}

// Cells formats one value per element with the same verb — the common
// "every column renders alike" case (e.g. a header of %18s names or a
// footer of %12.3f averages).
func Cells[T any](format string, vs ...T) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = fmt.Sprintf(format, v)
	}
	return out
}
