package results

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestSortIsDeterministic(t *testing.T) {
	var a, b Table
	a.Add("w=2", "m", 1)
	a.Add("w=1", "m", 2)
	a.Add("w=1", "a", 3)
	b.Add("w=1", "a", 3)
	b.Add("w=2", "m", 1)
	b.Add("w=1", "m", 2)
	a.Sort()
	b.Sort()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("sorted tables differ:\n%+v\n%+v", a, b)
	}
	if a.Rows[0].Metric != "a" || a.Rows[1].Cell != "w=1" || a.Rows[2].Cell != "w=2" {
		t.Errorf("canonical order broken: %+v", a.Rows)
	}
}

func TestWithScenarioStampsAndSorts(t *testing.T) {
	var tb Table
	tb.Add("b", "m", 1)
	tb.Add("a", "m", 2)
	got := tb.WithScenario("fig3")
	for _, r := range got.Rows {
		if r.Scenario != "fig3" {
			t.Errorf("row not stamped: %+v", r)
		}
	}
	if got.Rows[0].Cell != "a" {
		t.Errorf("WithScenario did not sort: %+v", got.Rows)
	}
	if tb.Rows[0].Cell != "b" {
		t.Error("WithScenario mutated its receiver")
	}
}

func TestLabels(t *testing.T) {
	if got := Labels("workload", "505.mcf", "model", "STBPU"); got != "workload=505.mcf,model=STBPU" {
		t.Errorf("Labels = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("odd Labels call did not panic")
		}
	}()
	Labels("only-key")
}

func TestDiffMatchesAndPartitions(t *testing.T) {
	var old, new Table
	old.Add("w=1", "oae", 0.5)
	old.Add("w=1", "gone", 9)
	old.Add("w=2", "oae", 0.25)
	new.Add("w=1", "oae", 0.6)
	new.Add("w=2", "oae", 0.25)
	new.Add("w=3", "fresh", 1)

	d := Diff(old, new)
	if len(d.Deltas) != 2 || len(d.OnlyOld) != 1 || len(d.OnlyNew) != 1 {
		t.Fatalf("partition = %d deltas, %d only-old, %d only-new", len(d.Deltas), len(d.OnlyOld), len(d.OnlyNew))
	}
	if d.OnlyOld[0].Metric != "gone" || d.OnlyNew[0].Metric != "fresh" {
		t.Errorf("one-sided rows wrong: %+v %+v", d.OnlyOld, d.OnlyNew)
	}
	first := d.Deltas[0]
	if first.Old != 0.5 || first.New != 0.6 || math.Abs(first.Rel-0.2) > 1e-12 {
		t.Errorf("delta = %+v", first)
	}
	if ch := d.Changed(); len(ch) != 1 || ch[0].Row.Cell != "w=1" {
		t.Errorf("Changed = %+v", ch)
	}
}

func TestDiffZeroBaselineIsInfiniteRel(t *testing.T) {
	var old, new Table
	old.Add("c", "m", 0)
	new.Add("c", "m", 0.001)
	d := Diff(old, new)
	if !math.IsInf(d.Deltas[0].Rel, 1) {
		t.Errorf("Rel = %v, want +Inf", d.Deltas[0].Rel)
	}
	// Any finite threshold must flag a metric leaving zero.
	if v := d.Violations(1e9); len(v) != 1 {
		t.Errorf("zero-baseline change not flagged: %+v", v)
	}
}

func TestViolationsThreshold(t *testing.T) {
	var old, new Table
	old.Add("a", "m", 1.0)
	old.Add("b", "m", 1.0)
	new.Add("a", "m", 1.04)
	new.Add("b", "m", 1.10)
	d := Diff(old, new)
	if v := d.Violations(0.05); len(v) != 1 || v[0].Row.Cell != "b" {
		t.Errorf("Violations(0.05) = %+v", v)
	}
	if v := d.Violations(0); len(v) != 2 {
		t.Errorf("strict gate missed changes: %+v", v)
	}
}

func TestDiffIdenticalTablesIsClean(t *testing.T) {
	var tb Table
	tb.Add("w=1", "oae", 0.5)
	tb.Add("w=2", "oae", 0.25)
	d := Diff(tb, tb)
	if len(d.Changed()) != 0 || len(d.OnlyOld) != 0 || len(d.OnlyNew) != 0 {
		t.Errorf("self-diff not clean: %+v", d)
	}
}

func TestMergeAggregates(t *testing.T) {
	var a, b Table
	a.Add("c", "m", 1)
	b.Add("c", "m", 3)
	a.Add("solo", "m", 7)
	got := Merge(a, b)
	byKey := map[string]float64{}
	for _, r := range got.Rows {
		byKey[r.Cell+"/"+r.Metric] = r.Value
	}
	if byKey["c/m"] != 2 {
		t.Errorf("mean = %v, want 2", byKey["c/m"])
	}
	if byKey["c/m/min"] != 1 || byKey["c/m/max"] != 3 || byKey["c/m/stddev"] != 1 {
		t.Errorf("spread columns wrong: %+v", byKey)
	}
	if _, spread := byKey["solo/m/stddev"]; spread {
		t.Error("singleton key grew spread columns")
	}
	if byKey["solo/m"] != 7 {
		t.Errorf("singleton passthrough = %v", byKey["solo/m"])
	}
}

func TestGridRowMatchesFprintfLayout(t *testing.T) {
	var sb strings.Builder
	Grid{LabelWidth: 10}.Row(&sb, "r", Cells("%-10s", "accuracy", "norm-IPC")...)
	want := "r          accuracy   norm-IPC  \n"
	if sb.String() != want {
		t.Errorf("Row = %q, want %q", sb.String(), want)
	}
	sb.Reset()
	Grid{LabelWidth: 4, Sep: " | "}.Write(&sb, [][]string{{"a", "x"}, {"bb", "y", "z"}})
	if got := sb.String(); got != "a    | x\nbb   | y | z\n" {
		t.Errorf("Write = %q", got)
	}
}
