package stats

import (
	"math"
	"testing"
	"testing/quick"

	"stbpu/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance of singleton = %v, want 0", got)
	}
}

func TestCV(t *testing.T) {
	if got := CV([]float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("CV of constant = %v, want 0", got)
	}
	if got := CV([]float64{0, 0}); got != 0 {
		t.Errorf("CV of zeros = %v, want 0", got)
	}
	if got := CV([]float64{-1, 1}); !math.IsInf(got, 1) {
		t.Errorf("CV with zero mean = %v, want +Inf", got)
	}
	got := CV([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEqual(got, 2.0/5.0, 1e-12) {
		t.Errorf("CV = %v, want 0.4", got)
	}
}

func TestHarmonicMean(t *testing.T) {
	got, err := HarmonicMean([]float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := 3.0 / (1 + 0.5 + 0.25)
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("HarmonicMean = %v, want %v", got, want)
	}
	if _, err := HarmonicMean(nil); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := HarmonicMean([]float64{1, 0}); err == nil {
		t.Error("expected error for non-positive value")
	}
}

func TestHarmonicMeanLEArithmetic(t *testing.T) {
	// Property: harmonic mean <= arithmetic mean for positive samples.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		xs := make([]float64, 1+r.Intn(10))
		for i := range xs {
			xs[i] = r.Float64() + 0.01
		}
		hm, err := HarmonicMean(xs)
		if err != nil {
			return false
		}
		return hm <= Mean(xs)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeoMean(t *testing.T) {
	got, err := GeoMean([]float64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 2, 1e-12) {
		t.Errorf("GeoMean = %v, want 2", got)
	}
	if _, err := GeoMean([]float64{}); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := GeoMean([]float64{-2}); err == nil {
		t.Error("expected error for negative input")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median odd = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("Median even = %v, want 2.5", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("Median empty = %v, want 0", got)
	}
	// Median must not mutate its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Median mutated its input")
	}
}

func TestHamming64(t *testing.T) {
	cases := []struct {
		a, b uint64
		want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0xffffffffffffffff, 0, 64},
		{0b1010, 0b0101, 4},
	}
	for _, c := range cases {
		if got := Hamming64(c.a, c.b); got != c.want {
			t.Errorf("Hamming64(%#x,%#x) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestBinCountsAndCV(t *testing.T) {
	outputs := []uint64{0, 1, 2, 3, 0, 1, 2, 3}
	counts := BinCounts(outputs, 4)
	for i, c := range counts {
		if c != 2 {
			t.Errorf("bin %d = %d, want 2", i, c)
		}
	}
	if cv := BinCV(outputs, 4); cv != 0 {
		t.Errorf("BinCV of uniform = %v, want 0", cv)
	}
	// All outputs in one bin: maximal skew.
	if cv := BinCV([]uint64{5, 5, 5, 5}, 4); cv <= 1 {
		t.Errorf("BinCV of degenerate = %v, want > 1", cv)
	}
}

func TestBinCVUniformHash(t *testing.T) {
	// A good PRNG reduced mod n should have small bin CV.
	r := rng.New(42)
	outputs := make([]uint64, 1<<16)
	for i := range outputs {
		outputs[i] = r.Uint64()
	}
	if cv := BinCV(outputs, 256); cv > 0.1 {
		t.Errorf("BinCV of PRNG = %v, want < 0.1", cv)
	}
}

func TestBallsBinsExpectedMax(t *testing.T) {
	// m balls into 1 bin: max is m.
	if got := BallsBinsExpectedMax(100, 1); got != 100 {
		t.Errorf("ExpectedMax(100,1) = %v, want 100", got)
	}
	// Heavily loaded: expected max close to m/n.
	got := BallsBinsExpectedMax(1<<20, 256)
	avg := float64(1<<20) / 256
	if got < avg || got > avg*1.2 {
		t.Errorf("ExpectedMax = %v, want within 20%% above %v", got, avg)
	}
}

func TestChiSquareUniform(t *testing.T) {
	if got := ChiSquareUniform([]int{10, 10, 10, 10}); got != 0 {
		t.Errorf("ChiSquare of uniform = %v, want 0", got)
	}
	if got := ChiSquareUniform(nil); got != 0 {
		t.Errorf("ChiSquare of empty = %v, want 0", got)
	}
	if got := ChiSquareUniform([]int{0, 0}); got != 0 {
		t.Errorf("ChiSquare of all-zero = %v, want 0", got)
	}
	if got := ChiSquareUniform([]int{20, 0}); got != 20 {
		t.Errorf("ChiSquare of skewed = %v, want 20", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Errorf("Summarize(nil) = %+v", empty)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(1, 2); got != 0.5 {
		t.Errorf("Ratio = %v, want 0.5", got)
	}
	if got := Ratio(5, 0); got != 0 {
		t.Errorf("Ratio by zero = %v, want 0", got)
	}
}
