package stats

import (
	"math"
	"testing"

	"stbpu/internal/rng"
)

// Reference chi-square critical values: P[X >= crit] = alpha.
func TestChiSquarePValueKnownValues(t *testing.T) {
	cases := []struct {
		stat  float64
		df    int
		wantP float64
	}{
		{3.841, 1, 0.05},
		{5.991, 2, 0.05},
		{14.067, 7, 0.05},
		{6.635, 1, 0.01},
		{18.307, 10, 0.05},
		{23.209, 10, 0.01},
	}
	for _, c := range cases {
		got := ChiSquarePValue(c.stat, c.df)
		if math.Abs(got-c.wantP) > 2e-4 {
			t.Errorf("ChiSquarePValue(%v, %d) = %v, want %v", c.stat, c.df, got, c.wantP)
		}
	}
	if p := ChiSquarePValue(0, 5); math.Abs(p-1) > 1e-12 {
		t.Errorf("ChiSquarePValue(0, 5) = %v, want 1", p)
	}
	if !math.IsNaN(ChiSquarePValue(-1, 3)) || !math.IsNaN(ChiSquarePValue(1, 0)) {
		t.Errorf("out-of-range inputs should return NaN")
	}
}

func TestChiSquareGOF(t *testing.T) {
	// Perfectly uniform counts: statistic 0, p-value 1.
	stat, p, err := ChiSquareGOF([]int{100, 100, 100, 100}, nil)
	if err != nil || stat != 0 || math.Abs(p-1) > 1e-12 {
		t.Fatalf("uniform counts: stat=%v p=%v err=%v", stat, p, err)
	}
	// Grossly skewed counts must be rejected at any sane level.
	_, p, err = ChiSquareGOF([]int{1000, 10, 10, 10}, nil)
	if err != nil || p > 1e-6 {
		t.Fatalf("skewed counts: p=%v err=%v", p, err)
	}
	// Counts matching a non-uniform expectation pass.
	_, p, err = ChiSquareGOF([]int{600, 300, 100}, []float64{0.6, 0.3, 0.1})
	if err != nil || p < 0.99 {
		t.Fatalf("matched probs: p=%v err=%v", p, err)
	}
	// Degenerate inputs error instead of fabricating confidence.
	if _, _, err := ChiSquareGOF([]int{5}, nil); err == nil {
		t.Errorf("single category should be degenerate")
	}
	if _, _, err := ChiSquareGOF([]int{0, 0}, nil); err == nil {
		t.Errorf("all-zero counts should be degenerate")
	}
	if _, _, err := ChiSquareGOF([]int{1, 2}, []float64{0, 1}); err == nil {
		t.Errorf("observation in zero-probability category should error")
	}
}

func TestKSUniform(t *testing.T) {
	uniformCDF := func(x float64) float64 {
		switch {
		case x < 0:
			return 0
		case x > 1:
			return 1
		}
		return x
	}
	r := rng.New(42)
	sample := make([]float64, 2000)
	for i := range sample {
		sample[i] = r.Float64()
	}
	d, p, err := KS(sample, uniformCDF)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.01 {
		t.Errorf("uniform sample rejected against uniform CDF: D=%v p=%v", d, p)
	}
	// The same sample against a visibly wrong CDF must be rejected.
	squareCDF := func(x float64) float64 { return uniformCDF(x) * uniformCDF(x) }
	_, p, err = KS(sample, squareCDF)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Errorf("uniform sample accepted against x^2 CDF: p=%v", p)
	}
	if _, _, err := KS(nil, uniformCDF); err == nil {
		t.Errorf("empty sample should error")
	}
}

// The exact D statistic for a tiny hand-checked sample.
func TestKSStatisticExact(t *testing.T) {
	cdf := func(x float64) float64 { return x }
	d, _, err := KS([]float64{0.1, 0.2, 0.9}, cdf)
	if err != nil {
		t.Fatal(err)
	}
	// Sorted: 0.1, 0.2, 0.9 against i/3: sup gap is |2/3 - 0.2|.
	want := 2.0/3.0 - 0.2
	if math.Abs(d-want) > 1e-12 {
		t.Errorf("D = %v, want %v", d, want)
	}
}
