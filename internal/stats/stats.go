// Package stats implements the statistical helpers used by the STBPU
// reproduction: coefficient of variation (remap uniformity, C2), Hamming
// distance (avalanche effect, C3), balls-and-bins occupancy analysis,
// harmonic means (SMT throughput per Michaud), and small summary helpers.
package stats

import (
	"errors"
	"math"
	"math/bits"
	"sort"
)

// ErrEmpty is returned by aggregations that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CV returns the coefficient of variation (stddev / mean) of xs. A CV of 0
// means perfectly uniform samples; the remap generator minimizes this for
// both bin occupancy (C2) and per-input avalanche distances (C3).
// CV returns +Inf when the mean is zero but the samples are not.
func CV(xs []float64) float64 {
	m := Mean(xs)
	sd := StdDev(xs)
	if m == 0 {
		if sd == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return sd / m
}

// HarmonicMean returns the harmonic mean of xs, the multi-program
// throughput metric used for the paper's SMT evaluation (Fig. 5, citing
// Michaud's "Demystifying multicore throughput metrics"). It returns an
// error if xs is empty or contains a non-positive value.
func HarmonicMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: harmonic mean requires positive values")
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum, nil
}

// GeoMean returns the geometric mean of xs. Used for normalized-accuracy
// aggregation across workloads.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: geometric mean requires positive values")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// Median returns the median of xs without modifying it.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Hamming64 returns the Hamming distance between two 64-bit words.
func Hamming64(a, b uint64) int { return bits.OnesCount64(a ^ b) }

// BinCounts tallies how many of the provided outputs landed in each of n
// bins. Outputs must already be reduced modulo n by the caller's hash; any
// value >= n is counted modulo n defensively.
func BinCounts(outputs []uint64, n int) []int {
	counts := make([]int, n)
	for _, o := range outputs {
		counts[o%uint64(n)]++
	}
	return counts
}

// BinCV computes the coefficient of variation of bin occupancy for the
// given outputs over n bins — the paper's balls-and-bins uniformity test
// for constraint C2.
func BinCV(outputs []uint64, n int) float64 {
	counts := BinCounts(outputs, n)
	xs := make([]float64, n)
	for i, c := range counts {
		xs[i] = float64(c)
	}
	return CV(xs)
}

// BallsBinsExpectedMax returns the classic Raab–Steger approximation of the
// expected maximum bin load when m balls are thrown uniformly into n bins
// with m >= n log n: m/n + sqrt(2*(m/n)*ln n). The remap generator uses it
// as a sanity bound when judging uniformity.
func BallsBinsExpectedMax(m, n int) float64 {
	if n <= 1 {
		return float64(m)
	}
	avg := float64(m) / float64(n)
	return avg + math.Sqrt(2*avg*math.Log(float64(n)))
}

// ChiSquareUniform returns the chi-square statistic of the observed counts
// against a uniform expectation. Lower is more uniform; for k bins the
// statistic is approximately chi-square distributed with k-1 degrees of
// freedom under uniformity.
func ChiSquareUniform(counts []int) float64 {
	if len(counts) == 0 {
		return 0
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	expected := float64(total) / float64(len(counts))
	if expected == 0 {
		return 0
	}
	stat := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		stat += d * d / expected
	}
	return stat
}

// Summary holds basic descriptive statistics for a sample set.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary for xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Mean = Mean(xs)
	s.StdDev = StdDev(xs)
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs[1:] {
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	return s
}

// Ratio safely divides a by b, returning 0 when b is 0. Prediction-rate
// computations use it so empty categories read as zero rather than NaN.
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
