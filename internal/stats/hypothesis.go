// Hypothesis testing helpers for the workload validation harness:
// chi-square goodness-of-fit with exact p-values (via the regularized
// incomplete gamma function) and the one-sample Kolmogorov-Smirnov
// test. The spec-driven trace generator is property-tested against
// its declared phase structure with these — per-phase tenant shares,
// switch cadence, and interval-distribution shape are accepted or
// rejected at stated confidence levels instead of eyeballed.

package stats

import (
	"errors"
	"math"
	"sort"
)

// gammaP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a), computed by series expansion for x < a+1
// and by continued fraction (modified Lentz) otherwise. Accuracy is
// ~1e-12, far beyond what tolerance tests need.
func gammaP(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 0
	case x < a+1:
		// Series: P(a,x) = e^-x x^a / Γ(a) * Σ x^n / (a(a+1)...(a+n))
		ap := a
		sum := 1 / a
		del := sum
		for n := 0; n < 500; n++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-15 {
				break
			}
		}
		logPrefix := -x + a*math.Log(x) - lgamma(a)
		return sum * math.Exp(logPrefix)
	default:
		return 1 - gammaQCF(a, x)
	}
}

// gammaQCF evaluates Q(a, x) = 1 - P(a, x) by continued fraction,
// valid for x >= a+1.
func gammaQCF(a, x float64) float64 {
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	logPrefix := -x + a*math.Log(x) - lgamma(a)
	return math.Exp(logPrefix) * h
}

// lgamma wraps math.Lgamma, dropping the sign (arguments here are
// always positive).
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// ChiSquarePValue returns P[X >= stat] for a chi-square variable with
// df degrees of freedom: the p-value of an observed chi-square
// statistic. Out-of-range inputs return NaN.
func ChiSquarePValue(stat float64, df int) float64 {
	if df <= 0 || stat < 0 || math.IsNaN(stat) {
		return math.NaN()
	}
	return 1 - gammaP(float64(df)/2, stat/2)
}

// ErrDegenerate is returned when a test's inputs leave no degrees of
// freedom or an empty expectation.
var ErrDegenerate = errors.New("stats: degenerate test input")

// ChiSquareGOF runs a chi-square goodness-of-fit test of observed
// counts against expected probabilities (nil probs means uniform).
// It returns the statistic and its p-value under the chi-square
// approximation with len(counts)-1 degrees of freedom. Categories
// with zero expected probability must have zero observed count.
func ChiSquareGOF(counts []int, probs []float64) (stat, p float64, err error) {
	if len(counts) < 2 {
		return 0, 0, ErrDegenerate
	}
	if probs != nil && len(probs) != len(counts) {
		return 0, 0, errors.New("stats: counts/probs length mismatch")
	}
	total := 0
	for _, c := range counts {
		if c < 0 {
			return 0, 0, errors.New("stats: negative count")
		}
		total += c
	}
	if total == 0 {
		return 0, 0, ErrDegenerate
	}
	df := len(counts) - 1
	for i, c := range counts {
		prob := 1 / float64(len(counts))
		if probs != nil {
			prob = probs[i]
		}
		if !(prob >= 0 && prob <= 1) {
			return 0, 0, errors.New("stats: probability out of [0,1]")
		}
		expected := float64(total) * prob
		if expected == 0 {
			if c != 0 {
				return 0, 0, errors.New("stats: observed count in zero-probability category")
			}
			df-- // empty category carries no information
			continue
		}
		d := float64(c) - expected
		stat += d * d / expected
	}
	if df < 1 {
		return 0, 0, ErrDegenerate
	}
	return stat, ChiSquarePValue(stat, df), nil
}

// KS runs a one-sample Kolmogorov-Smirnov test of the sample against
// a continuous CDF. It returns the D statistic and the asymptotic
// p-value (Stephens' small-sample correction applied). The sample is
// not modified.
func KS(sample []float64, cdf func(float64) float64) (d, p float64, err error) {
	n := len(sample)
	if n == 0 {
		return 0, 0, ErrEmpty
	}
	xs := make([]float64, n)
	copy(xs, sample)
	sort.Float64s(xs)
	fn := float64(n)
	for i, x := range xs {
		f := cdf(x)
		if !(f >= 0 && f <= 1) {
			return 0, 0, errors.New("stats: CDF value out of [0,1]")
		}
		if hi := float64(i+1)/fn - f; hi > d {
			d = hi
		}
		if lo := f - float64(i)/fn; lo > d {
			d = lo
		}
	}
	sqrtN := math.Sqrt(fn)
	lambda := (sqrtN + 0.12 + 0.11/sqrtN) * d
	return d, kolmogorovQ(lambda), nil
}

// kolmogorovQ returns Q_KS(lambda) = 2 Σ_{k>=1} (-1)^{k-1} e^{-2 k²
// λ²}, the asymptotic Kolmogorov survival function.
func kolmogorovQ(lambda float64) float64 {
	if lambda < 1e-8 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	q := 2 * sum
	switch {
	case q < 0:
		return 0
	case q > 1:
		return 1
	}
	return q
}
