package tracestore

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"stbpu/internal/trace"
)

func TestGetReturnsPresetTrace(t *testing.T) {
	s := New(0, nil)
	tr, prof, err := s.Get("505.mcf", 5_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 5_000 {
		t.Fatalf("records = %d, want 5000", len(tr.Records))
	}
	if prof.Name != "505.mcf" {
		t.Fatalf("profile name = %q", prof.Name)
	}
	st := s.Stats()
	if st.Misses != 1 || st.Generations != 1 || st.Hits != 0 {
		t.Errorf("stats after first get = %+v", st)
	}
	if _, _, err := s.Get("505.mcf", 5_000); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.Hits != 1 || st.Generations != 1 {
		t.Errorf("stats after repeat get = %+v", st)
	}
}

func TestUnknownPresetNotCached(t *testing.T) {
	s := New(0, nil)
	if _, _, err := s.Get("no-such-workload", 100); err == nil {
		t.Fatal("expected error for unknown preset")
	}
	st := s.Stats()
	if st.Generations != 0 || st.Bytes != 0 {
		t.Errorf("failed generation leaked into stats: %+v", st)
	}
	// The failed entry must not poison later lookups: a second Get retries.
	if _, _, err := s.Get("no-such-workload", 100); err == nil {
		t.Fatal("expected error on retry")
	}
	if st := s.Stats(); st.Misses != 2 {
		t.Errorf("retry did not re-attempt generation: %+v", st)
	}
}

// synthGen builds tiny traces while counting real generations, so tests
// can assert singleflight and regeneration behavior exactly.
func synthGen(calls *atomic.Uint64) GenFunc {
	return func(name string, records int) (*trace.Trace, trace.Profile, error) {
		calls.Add(1)
		tr := &trace.Trace{Name: name, Records: make([]trace.Record, records)}
		for i := range tr.Records {
			tr.Records[i] = trace.Record{PC: uint64(i)<<2 + uint64(len(name)), Kind: trace.KindCond}
		}
		return tr, trace.Profile{Name: name}, nil
	}
}

func TestConcurrentGetsGenerateOnce(t *testing.T) {
	var calls atomic.Uint64
	s := New(0, synthGen(&calls))

	const goroutines = 32
	var wg sync.WaitGroup
	traces := make([]*trace.Trace, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tr, _, err := s.Get("shared", 1_000)
			if err != nil {
				t.Error(err)
				return
			}
			traces[g] = tr
		}(g)
	}
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Errorf("generator ran %d times for one key under concurrency, want 1", got)
	}
	for g := 1; g < goroutines; g++ {
		if traces[g] != traces[0] {
			t.Fatalf("goroutine %d received a different trace pointer", g)
		}
	}
	st := s.Stats()
	if st.Hits+st.Misses != goroutines {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, goroutines)
	}
	if st.Generations != 1 {
		t.Errorf("generations = %d, want 1", st.Generations)
	}
}

func TestByteBoundEviction(t *testing.T) {
	var calls atomic.Uint64
	const perTrace = 1_000*recordBytes + entryOverheadBytes
	// Room for exactly two resident traces.
	s := New(2*perTrace, synthGen(&calls))

	for _, name := range []string{"a", "b", "c"} {
		if _, _, err := s.Get(name, 1_000); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if s.Len() != 2 {
		t.Errorf("resident traces = %d, want 2", s.Len())
	}
	if st.Bytes > st.MaxBytes {
		t.Errorf("resident bytes %d exceed bound %d", st.Bytes, st.MaxBytes)
	}

	// "a" was least recently used, so it is the one that regenerates.
	calls.Store(0)
	if _, _, err := s.Get("a", 1_000); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Error("evicted trace was not regenerated")
	}
	if _, _, err := s.Get("c", 1_000); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Error("resident trace regenerated after unrelated eviction")
	}
}

func TestLRUOrderRespectsHits(t *testing.T) {
	var calls atomic.Uint64
	const perTrace = 1_000*recordBytes + entryOverheadBytes
	s := New(2*perTrace, synthGen(&calls))

	s.Get("a", 1_000)
	s.Get("b", 1_000)
	s.Get("a", 1_000) // refresh "a": "b" becomes the LRU victim
	s.Get("c", 1_000)

	calls.Store(0)
	s.Get("a", 1_000)
	if calls.Load() != 0 {
		t.Error("recently used trace was evicted")
	}
	s.Get("b", 1_000)
	if calls.Load() != 1 {
		t.Error("LRU victim was not evicted")
	}
}

func TestOversizeEntryDoesNotWedgeStore(t *testing.T) {
	var calls atomic.Uint64
	s := New(1, synthGen(&calls)) // every trace exceeds the budget
	tr, _, err := s.Get("big", 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 10_000 {
		t.Fatal("oversize trace not returned")
	}
	if s.Len() != 0 {
		t.Errorf("oversize entry stayed resident (%d entries)", s.Len())
	}
	if st := s.Stats(); st.Bytes != 0 {
		t.Errorf("resident bytes = %d after evicting everything", st.Bytes)
	}
}

// TestCachedEqualsFresh is the determinism gate for caching: the trace a
// cell reads from the store must be byte-identical to one generated
// directly, and to one regenerated after eviction.
func TestCachedEqualsFresh(t *testing.T) {
	encode := func(tr *trace.Trace) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(tr); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	for _, name := range []string{"505.mcf", "mysql_128con_50s"} {
		t.Run(name, func(t *testing.T) {
			fresh, _, err := PresetGen(name, 8_000)
			if err != nil {
				t.Fatal(err)
			}
			want := encode(fresh)

			s := New(0, nil)
			cached, _, err := s.Get(name, 8_000)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(encode(cached), want) {
				t.Error("cached trace differs from freshly generated")
			}

			// Evict by flooding a tiny store, then regenerate.
			tiny := New(8_000*recordBytes+entryOverheadBytes+1, nil)
			tiny.Get(name, 8_000)
			tiny.Get("519.lbm", 8_000) // evicts name
			regen, _, err := tiny.Get(name, 8_000)
			if err != nil {
				t.Fatal(err)
			}
			if tiny.Stats().Evictions == 0 {
				t.Fatal("flood did not evict — regeneration path untested")
			}
			if !bytes.Equal(encode(regen), want) {
				t.Error("regenerated trace differs from original")
			}
		})
	}
}

func TestConcurrentMixedKeys(t *testing.T) {
	var calls atomic.Uint64
	const perTrace = 500*recordBytes + entryOverheadBytes
	s := New(3*perTrace, synthGen(&calls))

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				name := fmt.Sprintf("w%d", (g+i)%6)
				if _, _, err := s.Get(name, 500); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := s.Stats()
	if st.Bytes > st.MaxBytes {
		t.Errorf("resident bytes %d exceed bound %d", st.Bytes, st.MaxBytes)
	}
	if st.Hits+st.Misses != 16*50 {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, 16*50)
	}
	if calls.Load() != st.Generations {
		t.Errorf("generator calls %d != recorded generations %d", calls.Load(), st.Generations)
	}
}
