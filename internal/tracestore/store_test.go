package tracestore

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"stbpu/internal/trace"
)

func TestGetReturnsPresetTrace(t *testing.T) {
	s := New(0, nil)
	tr, prof, err := s.Get("505.mcf", 5_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 5_000 {
		t.Fatalf("records = %d, want 5000", len(tr.Records))
	}
	if prof.Name != "505.mcf" {
		t.Fatalf("profile name = %q", prof.Name)
	}
	st := s.Stats()
	if st.Misses != 1 || st.Generations != 1 || st.Hits != 0 {
		t.Errorf("stats after first get = %+v", st)
	}
	if _, _, err := s.Get("505.mcf", 5_000); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.Hits != 1 || st.Generations != 1 {
		t.Errorf("stats after repeat get = %+v", st)
	}
}

func TestUnknownPresetNotCached(t *testing.T) {
	s := New(0, nil)
	if _, _, err := s.Get("no-such-workload", 100); err == nil {
		t.Fatal("expected error for unknown preset")
	}
	st := s.Stats()
	if st.Generations != 0 || st.Bytes != 0 {
		t.Errorf("failed generation leaked into stats: %+v", st)
	}
	// The failed entry must not poison later lookups: a second Get retries.
	if _, _, err := s.Get("no-such-workload", 100); err == nil {
		t.Fatal("expected error on retry")
	}
	if st := s.Stats(); st.Misses != 2 {
		t.Errorf("retry did not re-attempt generation: %+v", st)
	}
}

// synthGen builds tiny traces while counting real generations, so tests
// can assert singleflight and regeneration behavior exactly.
func synthGen(calls *atomic.Uint64) GenFunc {
	return func(name string, records int) (*trace.Trace, trace.Profile, error) {
		calls.Add(1)
		tr := &trace.Trace{Name: name, Records: make([]trace.Record, records)}
		for i := range tr.Records {
			tr.Records[i] = trace.Record{PC: uint64(i)<<2 + uint64(len(name)), Kind: trace.KindCond}
		}
		return tr, trace.Profile{Name: name}, nil
	}
}

func TestConcurrentGetsGenerateOnce(t *testing.T) {
	var calls atomic.Uint64
	s := New(0, synthGen(&calls))

	const goroutines = 32
	var wg sync.WaitGroup
	traces := make([]*trace.Trace, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tr, _, err := s.Get("shared", 1_000)
			if err != nil {
				t.Error(err)
				return
			}
			traces[g] = tr
		}(g)
	}
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Errorf("generator ran %d times for one key under concurrency, want 1", got)
	}
	for g := 1; g < goroutines; g++ {
		if traces[g] != traces[0] {
			t.Fatalf("goroutine %d received a different trace pointer", g)
		}
	}
	st := s.Stats()
	if st.Hits+st.Misses != goroutines {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, goroutines)
	}
	if st.Generations != 1 {
		t.Errorf("generations = %d, want 1", st.Generations)
	}
}

// recordCountSize is a SizeOf hook that charges one byte per record,
// making budget arithmetic in eviction tests exact and self-evident.
func recordCountSize(cols *trace.Columns, recs *trace.Trace) int64 {
	return int64(cols.Len())
}

func TestByteBoundEviction(t *testing.T) {
	var calls atomic.Uint64
	const perTrace = 1_000
	// Room for exactly two resident traces.
	s := New(2*perTrace, synthGen(&calls))
	s.SetSizeOf(recordCountSize)

	for _, name := range []string{"a", "b", "c"} {
		if _, _, err := s.Get(name, 1_000); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if s.Len() != 2 {
		t.Errorf("resident traces = %d, want 2", s.Len())
	}
	if st.Bytes > st.MaxBytes {
		t.Errorf("resident bytes %d exceed bound %d", st.Bytes, st.MaxBytes)
	}

	// "a" was least recently used, so it is the one that regenerates.
	calls.Store(0)
	if _, _, err := s.Get("a", 1_000); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Error("evicted trace was not regenerated")
	}
	if _, _, err := s.Get("c", 1_000); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Error("resident trace regenerated after unrelated eviction")
	}
}

func TestLRUOrderRespectsHits(t *testing.T) {
	var calls atomic.Uint64
	const perTrace = 1_000
	s := New(2*perTrace, synthGen(&calls))
	s.SetSizeOf(recordCountSize)

	s.Get("a", 1_000)
	s.Get("b", 1_000)
	s.Get("a", 1_000) // refresh "a": "b" becomes the LRU victim
	s.Get("c", 1_000)

	calls.Store(0)
	s.Get("a", 1_000)
	if calls.Load() != 0 {
		t.Error("recently used trace was evicted")
	}
	s.Get("b", 1_000)
	if calls.Load() != 1 {
		t.Error("LRU victim was not evicted")
	}
}

func TestOversizeEntryDoesNotWedgeStore(t *testing.T) {
	var calls atomic.Uint64
	s := New(1, synthGen(&calls)) // every trace exceeds the budget
	tr, _, err := s.Get("big", 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 10_000 {
		t.Fatal("oversize trace not returned")
	}
	if s.Len() != 0 {
		t.Errorf("oversize entry stayed resident (%d entries)", s.Len())
	}
	if st := s.Stats(); st.Bytes != 0 {
		t.Errorf("resident bytes = %d after evicting everything", st.Bytes)
	}
}

// TestCachedEqualsFresh is the determinism gate for caching: the trace a
// cell reads from the store must be byte-identical to one generated
// directly, and to one regenerated after eviction.
func TestCachedEqualsFresh(t *testing.T) {
	encode := func(tr *trace.Trace) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(tr); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	for _, name := range []string{"505.mcf", "mysql_128con_50s"} {
		t.Run(name, func(t *testing.T) {
			fresh, _, err := PresetGen(name, 8_000)
			if err != nil {
				t.Fatal(err)
			}
			want := encode(fresh)

			s := New(0, nil)
			cached, _, err := s.Get(name, 8_000)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(encode(cached), want) {
				t.Error("cached trace differs from freshly generated")
			}

			// Evict by flooding a tiny store sized to hold exactly one
			// fully-materialized trace, then regenerate.
			tiny := New(ExactSize(trace.FromTrace(fresh), fresh), nil)
			tiny.Get(name, 8_000)
			tiny.Get("519.lbm", 8_000) // evicts name
			regen, _, err := tiny.Get(name, 8_000)
			if err != nil {
				t.Fatal(err)
			}
			if tiny.Stats().Evictions == 0 {
				t.Fatal("flood did not evict — regeneration path untested")
			}
			if !bytes.Equal(encode(regen), want) {
				t.Error("regenerated trace differs from original")
			}
		})
	}
}

func TestConcurrentMixedKeys(t *testing.T) {
	var calls atomic.Uint64
	const perTrace = 500
	s := New(3*perTrace, synthGen(&calls))
	s.SetSizeOf(recordCountSize)

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				name := fmt.Sprintf("w%d", (g+i)%6)
				if _, _, err := s.Get(name, 500); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := s.Stats()
	if st.Bytes > st.MaxBytes {
		t.Errorf("resident bytes %d exceed bound %d", st.Bytes, st.MaxBytes)
	}
	if st.Hits+st.Misses != 16*50 {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, 16*50)
	}
	if calls.Load() != st.Generations {
		t.Errorf("generator calls %d != recorded generations %d", calls.Load(), st.Generations)
	}
}

// TestBudgetRespectedToTheByte pins the SizeOf accounting exactly: with
// a hook charging one byte per record, a budget of exactly two traces
// keeps two resident, and one byte less keeps only one.
func TestBudgetRespectedToTheByte(t *testing.T) {
	var calls atomic.Uint64

	exact := New(2_000, synthGen(&calls))
	exact.SetSizeOf(recordCountSize)
	exact.Get("a", 1_000)
	exact.Get("b", 1_000)
	if st := exact.Stats(); st.Bytes != 2_000 || st.Evictions != 0 {
		t.Errorf("exact-fit budget: bytes=%d evictions=%d, want 2000/0", st.Bytes, st.Evictions)
	}

	under := New(1_999, synthGen(&calls))
	under.SetSizeOf(recordCountSize)
	under.Get("a", 1_000)
	under.Get("b", 1_000)
	st := under.Stats()
	if st.Evictions != 1 || under.Len() != 1 {
		t.Errorf("one-byte-under budget: evictions=%d resident=%d, want 1/1", st.Evictions, under.Len())
	}
	if st.Bytes > st.MaxBytes {
		t.Errorf("resident bytes %d exceed bound %d", st.Bytes, st.MaxBytes)
	}
}

// TestMaterializationRecharges pins the lazy-AoS accounting: a
// GetColumns-only entry is charged for its columns; the first Get that
// needs records grows the charge and can push the store over budget,
// evicting the LRU entry.
func TestMaterializationRecharges(t *testing.T) {
	var calls atomic.Uint64
	s := New(10, synthGen(&calls))
	// Columns cost 1 byte, the materialized record view 100 more.
	s.SetSizeOf(func(cols *trace.Columns, recs *trace.Trace) int64 {
		if recs != nil {
			return 101
		}
		return 1
	})

	if _, _, err := s.GetColumns("a", 100); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.GetColumns("b", 100); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Bytes != 2 || st.Evictions != 0 {
		t.Fatalf("columns-only stats = %+v, want 2 bytes, 0 evictions", st)
	}

	// Materializing "b" raises its charge to 101: over budget, "a" goes.
	if _, _, err := s.Get("b", 100); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Error("materialization did not trigger eviction under byte pressure")
	}
	if s.Len() != 0 { // 101 > 10: the materialized entry itself is oversize
		t.Errorf("resident = %d, want 0 (oversize after materialization)", s.Len())
	}
}

// TestColumnsAndRecordsViewsAgree pins the two Get paths to one
// underlying trace: the AoS view is the row-major projection of the
// columns, and repeated Gets share one materialization.
func TestColumnsAndRecordsViewsAgree(t *testing.T) {
	s := New(0, nil)
	cols, colsProf, err := s.GetColumns("505.mcf", 4_000)
	if err != nil {
		t.Fatal(err)
	}
	tr, trProf, err := s.Get("505.mcf", 4_000)
	if err != nil {
		t.Fatal(err)
	}
	if colsProf != trProf {
		t.Error("profiles diverge between GetColumns and Get")
	}
	if cols.Len() != len(tr.Records) || cols.Name != tr.Name {
		t.Fatalf("views disagree on shape: %d/%q vs %d/%q",
			cols.Len(), cols.Name, len(tr.Records), tr.Name)
	}
	for i := range tr.Records {
		if cols.Record(i) != tr.Records[i] {
			t.Fatalf("record %d diverges between views", i)
		}
	}
	tr2, _, err := s.Get("505.mcf", 4_000)
	if err != nil {
		t.Fatal(err)
	}
	if tr2 != tr {
		t.Error("second Get materialized a fresh record view")
	}
	if st := s.Stats(); st.Generations != 1 {
		t.Errorf("generations = %d, want 1", st.Generations)
	}
}
