// The zero-copy mmap mode of the disk tier: with SetMapped(true), a
// spill is written in the mappable STBT layout (trace format v2) and a
// later miss maps the file and reinterprets its page-aligned sections
// as trace.Columns views in place — a warm start costs page faults, not
// a decode. See doc.go for the package overview and disk.go for the
// decoding tier both modes share.

package tracestore

import (
	"os"
	"runtime"
	"sync/atomic"

	"stbpu/internal/trace"
)

// SetMapped switches the disk tier (SetDir) into zero-copy mode: spills
// are written in the mappable STBT layout and loads mmap v2 files
// instead of decoding them (v1 files still decode, so the two layouts
// coexist in one directory). On platforms without mmap support the mode
// is accepted but degrades to the decoding path — results are
// identical either way; only the warm-start cost differs. Call before
// the first Get.
//
// Mapped residency is accounted separately from the in-memory budget:
// the kernel owns the pages (clean, evictable under its own memory
// pressure), so a mapped entry charges only fixed bookkeeping overhead
// against the -cache-bytes bound — not the mapped bytes, which would
// double-charge page-cache memory — and Stats.BytesMapped reports the
// currently mapped total. Unmapping is tied to the entry's residency
// AND its readers: the region is released only after the entry is
// evicted and no replay still references the columns (a finalizer holds
// the second reference), so shared read-only views never dangle.
func (s *Store) SetMapped(on bool) {
	s.mu.Lock()
	s.mappedMode = on
	s.mu.Unlock()
}

func (s *Store) isMapped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mappedMode
}

// unmapHook, when set, observes each munmap (tests pin eviction/unmap
// ordering with it). Set before any store is used; called with the
// region size just before the unmap.
var unmapHook func(bytes int)

// mapping owns one mmap'd spill region. Two references exist while the
// columns are resident: the store's (dropped at eviction) and a
// finalizer's on the *trace.Columns viewing the region (dropped when no
// reader can reach the columns anymore). The region unmaps when both
// are gone, so eviction never pulls pages out from under a replay.
type mapping struct {
	data  []byte
	store *Store
	refs  atomic.Int32
}

func (m *mapping) release() {
	if m.refs.Add(-1) != 0 {
		return
	}
	m.store.bytesMapped.Add(-int64(len(m.data)))
	if unmapHook != nil {
		unmapHook(len(m.data))
	}
	munmapBytes(m.data)
}

// mapStatus is loadMapped's three-way outcome.
type mapStatus int

const (
	mapOK      mapStatus = iota // zero-copy columns returned
	mapAbsent                   // no mappable file (missing, or a v1 spill): try the decode path
	mapCorrupt                  // unusable v2 file, error counted: regenerate and rewrite
)

// loadMapped tries to satisfy a miss by mapping the spill file in
// place. A v1 spill is not an error — the caller falls back to the
// decoder — but a v2 file that fails layout checks, key match, or
// structural validation is corrupt: counted like the decode path's
// torn files, and the caller regenerates and rewrites rather than
// retrying a decode of the same bytes.
func (s *Store) loadMapped(k Key) (*trace.Columns, *mapping, mapStatus) {
	data, err := mmapFile(s.diskPath(k))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, mapAbsent // loadDisk counts the miss
		}
		s.noteDiskError()
		return nil, nil, mapCorrupt
	}
	if len(data) >= 5 && data[4] != 2 {
		// A spill in another version (v1 delta stream): not mappable,
		// not corrupt. Unmap and decode instead.
		munmapBytes(data)
		return nil, nil, mapAbsent
	}
	cols, err := trace.MapColumns(data)
	if err != nil || cols.Name != k.Name || cols.Len() != k.Records || cols.Validate() != nil {
		munmapBytes(data)
		s.noteDiskError()
		return nil, nil, mapCorrupt
	}
	m := &mapping{data: data, store: s}
	m.refs.Store(2)
	s.bytesMapped.Add(int64(len(data)))
	runtime.SetFinalizer(cols, func(*trace.Columns) { m.release() })
	return cols, m, mapOK
}

// tryDiskLoad is fill's disk probe, mode-aware: mapped mode maps v2
// spills zero-copy, falls back to decoding v1 spills, and treats a
// corrupt v2 file as a decode-path torn file (regenerate + rewrite,
// without re-reading the known-bad bytes).
func (s *Store) tryDiskLoad(k Key) (*trace.Columns, *mapping, bool) {
	if s.isMapped() && mmapSupported {
		cols, m, status := s.loadMapped(k)
		switch status {
		case mapOK:
			return cols, m, true
		case mapCorrupt:
			return nil, nil, false
		}
		// mapAbsent: fall through to the decoder.
	}
	cols, ok := s.loadDisk(k)
	return cols, nil, ok
}
