package tracestore

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"stbpu/internal/trace"
)

// TestDiskTierRoundTrip is the disk tier's core contract: a second
// store sharing the directory decodes the spill instead of
// regenerating, and the decoded trace (and profile) are bit-identical
// to generation.
func TestDiskTierRoundTrip(t *testing.T) {
	dir := t.TempDir()

	first := New(0, nil)
	if err := first.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	want, wantProf, err := first.Get("505.mcf", 3_000)
	if err != nil {
		t.Fatal(err)
	}
	st := first.Stats()
	if st.Generations != 1 || st.DiskMisses != 1 || st.DiskWrites != 1 || st.DiskHits != 0 {
		t.Fatalf("first-store stats = %+v, want 1 generation, 1 disk miss, 1 spill", st)
	}

	second := New(0, nil)
	if err := second.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	got, gotProf, err := second.Get("505.mcf", 3_000)
	if err != nil {
		t.Fatal(err)
	}
	st = second.Stats()
	if st.Generations != 0 || st.DiskHits != 1 {
		t.Fatalf("second-store stats = %+v, want 0 generations, 1 disk hit", st)
	}
	if gotProf != wantProf {
		t.Error("disk-tier profile diverges from generated profile")
	}
	encode := func(tr *trace.Trace) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(tr); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(encode(got), encode(want)) {
		t.Error("disk-tier trace differs from generated trace")
	}
}

// TestDiskTierColumnsPath pins the decode-into-columns path: a disk
// hit through GetColumns yields columns identical to converting the
// generated trace, with no generator run.
func TestDiskTierColumnsPath(t *testing.T) {
	dir := t.TempDir()

	first := New(0, nil)
	if err := first.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	want, _, err := first.GetColumns("519.lbm", 2_000)
	if err != nil {
		t.Fatal(err)
	}

	second := New(0, nil)
	if err := second.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	got, _, err := second.GetColumns("519.lbm", 2_000)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats().Generations != 0 {
		t.Fatal("disk hit still ran the generator")
	}
	if got.Len() != want.Len() || got.Name != want.Name {
		t.Fatalf("shape mismatch: %d/%q vs %d/%q", got.Len(), got.Name, want.Len(), want.Name)
	}
	for i := 0; i < got.Len(); i++ {
		if got.Record(i) != want.Record(i) {
			t.Fatalf("record %d diverges after disk round-trip", i)
		}
	}
}

// TestDiskCorruptSpillFallsBack: a truncated or garbage spill must not
// fail the Get — it regenerates, counts a DiskError, and rewrites the
// file so the next reader hits cleanly.
func TestDiskCorruptSpillFallsBack(t *testing.T) {
	dir := t.TempDir()

	seedStore := New(0, nil)
	if err := seedStore.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, _, err := seedStore.Get("505.mcf", 1_000); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.stbt"))
	if err != nil || len(files) != 1 {
		t.Fatalf("spill files = %v (err %v), want exactly one", files, err)
	}
	if err := os.WriteFile(files[0], []byte("STBT garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	s := New(0, nil)
	if err := s.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	tr, _, err := s.Get("505.mcf", 1_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 1_000 {
		t.Fatalf("records = %d, want 1000", len(tr.Records))
	}
	st := s.Stats()
	if st.DiskErrors == 0 || st.Generations != 1 || st.DiskWrites != 1 {
		t.Fatalf("stats after corrupt spill = %+v, want disk error + regeneration + rewrite", st)
	}

	// The rewritten spill must now serve hits again.
	reread := New(0, nil)
	if err := reread.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, _, err := reread.Get("505.mcf", 1_000); err != nil {
		t.Fatal(err)
	}
	if st := reread.Stats(); st.DiskHits != 1 || st.Generations != 0 {
		t.Fatalf("stats after rewrite = %+v, want a clean disk hit", st)
	}
}

// TestDiskTierRejectsCustomGen: spill files are keyed by (name,
// records) alone, so a store with a custom generator can neither trust
// nor safely produce them — SetDir must refuse outright rather than
// let one generator's bytes be served as another's.
func TestDiskTierRejectsCustomGen(t *testing.T) {
	var calls atomic.Uint64
	s := New(0, synthGen(&calls))
	if err := s.SetDir(t.TempDir()); err == nil {
		t.Fatal("SetDir accepted a custom-generator store")
	}
	// The refused store still works, tier-less.
	if _, _, err := s.Get("w", 100); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.DiskHits+st.DiskMisses+st.DiskWrites != 0 {
		t.Errorf("refused tier still counted disk activity: %+v", st)
	}
}

// TestDiskBitRotDetected: corruption that survives varint framing (a
// flipped flag bit deep in the stream) must still be caught — the
// loader validates structure, counts a DiskError, and regenerates.
func TestDiskBitRotDetected(t *testing.T) {
	dir := t.TempDir()
	seed := New(0, nil)
	if err := seed.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	want, _, err := seed.GetColumns("505.mcf", 1_000)
	if err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.stbt"))
	if err != nil || len(files) != 1 {
		t.Fatalf("spill files = %v (err %v)", files, err)
	}
	// Rewrite the spill with one unconditional branch marked not-taken:
	// decodes cleanly, matches the key's name and length, but violates
	// the trace invariants.
	rotten := &trace.Columns{
		Name:     want.Name,
		PCs:      append([]uint64(nil), want.PCs...),
		Targets:  append([]uint64(nil), want.Targets...),
		Flags:    append([]byte(nil), want.Flags...),
		PIDs:     append([]uint32(nil), want.PIDs...),
		Programs: append([]uint16(nil), want.Programs...),
	}
	poisoned := false
	for i := range rotten.Flags {
		if trace.Kind(rotten.Flags[i]&trace.FlagKindMask) != trace.KindCond {
			rotten.Flags[i] &^= trace.FlagTaken
			poisoned = true
			break
		}
	}
	if !poisoned {
		t.Fatal("trace has no unconditional branch to poison")
	}
	f, err := os.Create(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteColumns(f, rotten); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s := New(0, nil)
	if err := s.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	got, _, err := s.GetColumns("505.mcf", 1_000)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.DiskErrors == 0 || st.Generations != 1 {
		t.Fatalf("stats after bit rot = %+v, want disk error + regeneration", st)
	}
	for i := 0; i < got.Len(); i++ {
		if got.Record(i) != want.Record(i) {
			t.Fatalf("record %d still poisoned after regeneration", i)
		}
	}
}

// TestDiskTierEvictionReloadsFromDisk: after an eviction, the next Get
// reloads the spill instead of regenerating — the disk tier is what
// makes tiny in-memory budgets cheap.
func TestDiskTierEvictionReloadsFromDisk(t *testing.T) {
	dir := t.TempDir()
	s := New(1, nil) // every trace is immediately evicted
	if err := s.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get("505.mcf", 1_000); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get("505.mcf", 1_000); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Generations != 1 {
		t.Errorf("generations = %d, want 1 (second fill should decode the spill)", st.Generations)
	}
	if st.DiskHits != 1 || st.DiskWrites != 1 {
		t.Errorf("disk stats = %+v, want 1 hit after 1 spill", st)
	}
}
