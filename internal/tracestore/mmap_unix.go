//go:build unix

package tracestore

import (
	"fmt"
	"os"
	"syscall"
)

// mmapSupported gates the zero-copy disk tier; on platforms without
// mmap (see mmap_stub.go) mapped mode degrades to the decoding path.
const mmapSupported = true

// mmapFile maps the whole file read-only. The returned slice is
// page-aligned (so 8-byte aligned, as trace.MapColumns requires) and
// stays valid until munmapBytes.
func mmapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size <= 0 || size != int64(int(size)) {
		return nil, fmt.Errorf("tracestore: cannot map %d-byte file %s", size, path)
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapBytes releases a mapping made by mmapFile.
func munmapBytes(data []byte) error {
	return syscall.Munmap(data)
}
