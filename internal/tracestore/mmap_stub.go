//go:build !unix

package tracestore

import "errors"

// mmapSupported gates the zero-copy disk tier; without mmap, mapped
// mode degrades to the decoding path (mmap_unix.go has the real tier).
const mmapSupported = false

func mmapFile(path string) ([]byte, error) {
	return nil, errors.New("tracestore: mmap unsupported on this platform")
}

func munmapBytes(data []byte) error { return nil }
