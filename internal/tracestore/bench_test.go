package tracestore

import (
	"runtime"
	"testing"
)

// BenchmarkWarmStart measures a cold store's first GetColumns against a
// populated disk tier — the cost every fleet worker pays per trace on
// startup. The decode sub-benchmark parses the v1 delta stream; the
// mmap sub-benchmark maps the v2 layout in place, so its allocs/op is a
// small fixed bookkeeping constant with no per-record decode
// allocations (pinned by the bench gate).
func BenchmarkWarmStart(b *testing.B) {
	const workload, records = "505.mcf", 100_000

	run := func(b *testing.B, mapped bool) {
		if mapped && !mmapSupported {
			b.Skip("mmap unsupported on this platform")
		}
		dir := b.TempDir()
		seed := New(0, nil)
		seed.SetMapped(mapped)
		if err := seed.SetDir(dir); err != nil {
			b.Fatal(err)
		}
		if _, _, err := seed.GetColumns(workload, records); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := New(0, nil)
			s.SetMapped(mapped)
			if err := s.SetDir(dir); err != nil {
				b.Fatal(err)
			}
			cols, _, err := s.GetColumns(workload, records)
			if err != nil {
				b.Fatal(err)
			}
			if cols.Len() != records {
				b.Fatalf("warm start returned %d records", cols.Len())
			}
			if s.Stats().Generations != 0 {
				b.Fatal("warm start ran the generator")
			}
			if mapped && i%512 == 511 {
				// Mappings are released by finalizer; nudge the GC so a
				// long benchmark run cannot pile up dead regions against
				// the kernel's mapping-count limit.
				b.StopTimer()
				runtime.GC()
				runtime.GC()
				b.StartTimer()
			}
		}
	}
	b.Run("decode", func(b *testing.B) { run(b, false) })
	b.Run("mmap", func(b *testing.B) { run(b, true) })
}
