// Package tracestore is the cross-run trace cache of the simulation
// layer (docs/ARCHITECTURE.md): a concurrency-safe, byte-bounded LRU of
// generated workload traces with singleflight-deduplicated generation.
// Before this package every scenario run carried its own per-run cache,
// so a full stbpu-suite run regenerated the same (workload, records)
// trace once per scenario; one shared Store amortizes generation across
// the whole run while the byte bound keeps full-scale sweeps from
// holding every trace forever.
//
// # Determinism
//
// Trace generation is a pure function of (name, records), so a cached
// trace is bit-identical to a freshly generated one. Eviction can
// therefore only change *when* a trace is rebuilt, never *what* replays
// — the harness determinism contract (bit-identical results at any
// worker count) holds under any byte budget, including zero.
//
// # Cache locality under distributed backends
//
// The same purity is what makes the store safe to *not* share: when the
// harness runs cells on subprocess workers (harness.ExecBackend), each
// worker process fills its own Store, persisted across batches, and the
// coordinator's store sits idle. A hot trace may then be generated once
// per worker rather than once per run — duplicated wall-clock work, but
// never a result difference, and no trace bytes ever cross the wire.
// Tune the trade-off by keeping workers few and long-lived (they
// amortize generation across batches) rather than many and short-lived.
package tracestore
