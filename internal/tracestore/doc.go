// Package tracestore is the cross-run trace cache of the simulation
// layer (docs/ARCHITECTURE.md): a concurrency-safe, byte-bounded LRU of
// generated workload traces with singleflight-deduplicated generation
// and an optional persistent disk tier. Before this package every
// scenario run carried its own per-run cache, so a full stbpu-suite run
// regenerated the same (workload, records) trace once per scenario; one
// shared Store amortizes generation across the whole run while the byte
// bound keeps full-scale sweeps from holding every trace forever.
//
// # Columnar residency
//
// The stored representation is trace.Columns — the struct-of-arrays
// view the replay fast path (sim.RunColumnsCtx) consumes directly via
// GetColumns. Consumers that need AoS records (the cycle-accurate CPU
// pipeline) call Get, which materializes the record view from the
// stored columns at most once per residency and shares it. Byte
// accounting goes through the SizeOf hook (default ExactSize): entries
// are charged the capacity-exact footprint of what they actually pin —
// the columns, plus the record view once materialized — so the
// configured budget is respected to the byte.
//
// # Determinism
//
// Trace generation is a pure function of (name, records), so a cached
// trace is bit-identical to a freshly generated one, and the columnar
// and record views of an entry are lossless projections of the same
// data. Eviction can therefore only change *when* a trace is rebuilt,
// never *what* replays — the harness determinism contract
// (bit-identical results at any worker count) holds under any byte
// budget, including zero, with or without the disk tier.
//
// # The disk tier
//
// SetDir points the store at a directory where generated traces spill
// as STBT files keyed by (name, records) and are decoded — straight
// into columns, skipping the intermediate []Record — by later runs and
// by exec workers sharing the machine. Writes are atomic (temp file +
// rename), bad files fall back to regeneration, and because generation
// is deterministic a decoded spill is bit-identical to regenerating,
// so the tier changes wall-clock only. The stbpu-suite and stbpu-bench
// front-ends expose it as -trace-dir.
//
// # Cache locality under distributed backends
//
// When the harness runs cells on subprocess workers
// (harness.ExecBackend), each worker process fills its own Store,
// persisted across batches, and the coordinator's store sits idle.
// Without a disk tier a hot trace may then be generated once per
// worker rather than once per run — duplicated wall-clock work, but
// never a result difference, and no trace bytes ever cross the wire.
// A shared -trace-dir collapses that duplication to one generation per
// machine: the first process to generate spills, every other process
// decodes.
package tracestore
