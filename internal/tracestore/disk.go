// The persistent disk tier: generated traces spill as STBT files and
// later runs (and exec workers) decode them back into columns instead
// of regenerating, turning per-process generation cost into a one-time
// cost per machine. See doc.go for the package overview.

package tracestore

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"

	"stbpu/internal/trace"
)

// SetDir enables the persistent trace tier rooted at dir (creating it
// if needed); an empty dir disables the tier. With a tier configured,
// a cache miss first tries to decode a spilled STBT file for the key,
// and a generated trace is spilled (atomic temp-file-plus-rename, so
// concurrent processes sharing the directory never observe a partial
// file) before being admitted. Disk problems never fail a Get: an
// unreadable, corrupt, or mismatched spill counts a DiskError and
// falls back to generation, overwriting the bad file.
//
// The tier is only valid for the default PresetGen/PresetProfile
// pipeline: files are keyed by (name, records) alone, so a store with
// a custom GenFunc could neither trust another process's spills nor
// produce spills safe for default stores sharing the directory —
// SetDir refuses rather than risk serving one generator's bytes as
// another's. Call before the first Get.
func (s *Store) SetDir(dir string) error {
	if dir != "" {
		if !s.presetGen {
			return errors.New("tracestore: the disk tier requires the default preset generator (spills are keyed by (name, records) only)")
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.dir = dir
	s.mu.Unlock()
	return nil
}

func (s *Store) diskDir() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dir
}

// diskPath names the spill file for a key: the sanitized workload name
// (collision-proofed with an FNV tag of the raw name) plus the record
// count, so a directory listing stays human-readable and one directory
// can hold every trace length of every workload.
func (s *Store) diskPath(k Key) string {
	h := fnv.New32a()
	h.Write([]byte(k.Name))
	sanitized := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, k.Name)
	return filepath.Join(s.diskDir(), fmt.Sprintf("%s-%08x@%d.stbt", sanitized, h.Sum32(), k.Records))
}

// loadDisk tries to satisfy a miss from the spill file, decoding
// straight into columns (no intermediate []Record). A decoded trace
// that does not match the key (wrong name or length: a stale or
// foreign file) or that fails structural validation (bit rot that
// survives varint framing — a flipped flag or address bit) is treated
// as corrupt: without the check, a damaged spill would silently break
// the determinism contract for every run sharing the directory. The
// caller counts the hit — a decoded spill it cannot use (no derivable
// profile) is a miss.
func (s *Store) loadDisk(k Key) (*trace.Columns, bool) {
	f, err := os.Open(s.diskPath(k))
	if err != nil {
		s.mu.Lock()
		if os.IsNotExist(err) {
			s.diskMisses++
		} else {
			s.diskErrors++
		}
		s.mu.Unlock()
		return nil, false
	}
	defer f.Close()
	cols, err := trace.ReadColumns(f)
	if err != nil || cols.Name != k.Name || cols.Len() != k.Records || cols.Validate() != nil {
		s.mu.Lock()
		s.diskErrors++
		s.mu.Unlock()
		return nil, false
	}
	return cols, true
}

// spill writes the columns to the tier atomically and durably.
// Failures are best-effort by design — the trace is already resident,
// so a full disk or read-only directory costs only the persistence, not
// the run. Durability is not optional, though: the rename is only
// atomic against concurrent readers, not against power loss, so the
// file is fsynced before the rename (otherwise a crash can publish a
// zero-length or torn STBT under the final name) and the directory is
// fsynced after it (otherwise the rename itself may not survive, and a
// later run pays to re-validate a file that silently reverted).
func (s *Store) spill(k Key, cols *trace.Columns) {
	dir := s.diskDir()
	tmp, err := os.CreateTemp(dir, ".spill-*")
	if err != nil {
		s.noteDiskError()
		return
	}
	// Mapped mode spills the page-aligned v2 layout so the next run can
	// mmap it; otherwise the compact v1 delta stream (~3-4x smaller).
	// Readers accept both, so mixed-mode runs sharing a directory
	// interoperate in either direction.
	write := trace.WriteColumns
	if s.isMapped() && mmapSupported {
		write = trace.WriteColumnsMapped
	}
	if err := write(tmp, cols); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		s.noteDiskError()
		return
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		s.noteDiskError()
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		s.noteDiskError()
		return
	}
	if err := os.Rename(tmp.Name(), s.diskPath(k)); err != nil {
		os.Remove(tmp.Name())
		s.noteDiskError()
		return
	}
	if err := syncDir(dir); err != nil {
		// The file content is durable and the rename visible; only the
		// rename's durability is in doubt. Count it, keep the file.
		s.noteDiskError()
		return
	}
	s.mu.Lock()
	s.diskWrites++
	s.mu.Unlock()
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func (s *Store) noteDiskError() {
	s.mu.Lock()
	s.diskErrors++
	s.mu.Unlock()
}
