// The Store implementation: LRU bookkeeping, singleflight generation,
// and stats (see doc.go for the package overview).

package tracestore

import (
	"container/list"
	"fmt"
	"sync"
	"unsafe"

	"stbpu/internal/trace"
)

// Key identifies one generated trace.
type Key struct {
	// Name is the workload preset name.
	Name string
	// Records is the trace length.
	Records int
}

// String renders the key as the legacy per-run cache did ("name@records").
func (k Key) String() string { return fmt.Sprintf("%s@%d", k.Name, k.Records) }

// GenFunc materializes the trace for a key. It must be deterministic: the
// store may drop and regenerate entries under byte pressure, and replay
// results must not depend on which copy a cell observed.
type GenFunc func(name string, records int) (*trace.Trace, trace.Profile, error)

// PresetGen is the default generator: the named trace preset resized to
// the requested record count.
func PresetGen(name string, records int) (*trace.Trace, trace.Profile, error) {
	p, err := trace.Preset(name)
	if err != nil {
		return nil, trace.Profile{}, err
	}
	p = p.WithRecords(records)
	tr, err := trace.Generate(p)
	if err != nil {
		return nil, trace.Profile{}, err
	}
	return tr, p, nil
}

// DefaultMaxBytes bounds stores whose creator does not choose a budget:
// large enough that a QuickScale suite run never evicts, small enough that
// a full-scale sweep cannot hold hundreds of 250k-record traces at once.
const DefaultMaxBytes = 256 << 20

// recordBytes is the in-memory footprint of one trace record.
const recordBytes = int64(unsafe.Sizeof(trace.Record{}))

// entryOverheadBytes charges each entry for its map/list/struct overhead
// so a pathological many-tiny-traces workload still respects the bound.
const entryOverheadBytes = 256

// Stats is a point-in-time snapshot of store counters. Hits+Misses counts
// Get calls; Generations counts actual synth runs (Misses minus waiters
// that piggybacked on an in-flight generation, plus regenerations after
// eviction — with deduplication it equals the number of distinct keys
// materialized, counting each re-materialization after eviction).
type Stats struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Generations uint64 `json:"generations"`
	Evictions   uint64 `json:"evictions"`
	// Bytes is the current resident size; MaxBytes the configured bound.
	Bytes    int64 `json:"bytes"`
	MaxBytes int64 `json:"max_bytes"`
}

// Store is the shared cache. The zero value is not usable; construct with
// New. All methods are safe for concurrent use.
type Store struct {
	gen      GenFunc
	maxBytes int64

	mu      sync.Mutex
	entries map[Key]*entry
	lru     *list.List // front = most recent; values are *entry
	bytes   int64

	hits, misses, generations, evictions uint64
}

// entry is one cached (or in-flight) trace. The sync.Once gives waiters
// singleflight semantics: the first Get for a key generates, concurrent
// Gets block on the same Once and share the result read-only.
type entry struct {
	key  Key
	once sync.Once
	tr   *trace.Trace
	prof trace.Profile
	err  error

	bytes int64
	elem  *list.Element // LRU position; nil while generating or after eviction
}

// New builds a store bounded to maxBytes of resident trace data
// (maxBytes <= 0 means DefaultMaxBytes) generating through gen
// (nil means PresetGen).
func New(maxBytes int64, gen GenFunc) *Store {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if gen == nil {
		gen = PresetGen
	}
	return &Store{
		gen:      gen,
		maxBytes: maxBytes,
		entries:  map[Key]*entry{},
		lru:      list.New(),
	}
}

// Get returns the trace for (name, records), generating it at most once
// per residency no matter how many cells ask concurrently. The returned
// trace is shared and must be treated as read-only.
func (s *Store) Get(name string, records int) (*trace.Trace, trace.Profile, error) {
	key := Key{Name: name, Records: records}

	s.mu.Lock()
	e, ok := s.entries[key]
	if ok {
		s.hits++
		if e.elem != nil {
			s.lru.MoveToFront(e.elem)
		}
	} else {
		s.misses++
		e = &entry{key: key}
		s.entries[key] = e
	}
	s.mu.Unlock()

	e.once.Do(func() {
		e.tr, e.prof, e.err = s.gen(name, records)

		s.mu.Lock()
		defer s.mu.Unlock()
		if e.err != nil {
			// Failed generation is not cached: waiters on this entry see
			// the error, the next Get retries with a fresh entry.
			delete(s.entries, key)
			return
		}
		s.generations++
		e.bytes = int64(len(e.tr.Records))*recordBytes + entryOverheadBytes
		s.bytes += e.bytes
		e.elem = s.lru.PushFront(e)
		s.evictLocked()
	})
	return e.tr, e.prof, e.err
}

// evictLocked drops least-recently-used entries until the store fits its
// budget. An entry larger than the whole budget is evicted immediately
// after insertion; its caller already holds the pointers it needs.
func (s *Store) evictLocked() {
	for s.bytes > s.maxBytes {
		back := s.lru.Back()
		if back == nil {
			return
		}
		victim := back.Value.(*entry)
		s.lru.Remove(back)
		victim.elem = nil
		delete(s.entries, victim.key)
		s.bytes -= victim.bytes
		s.evictions++
	}
}

// Len reports how many traces are resident.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:        s.hits,
		Misses:      s.misses,
		Generations: s.generations,
		Evictions:   s.evictions,
		Bytes:       s.bytes,
		MaxBytes:    s.maxBytes,
	}
}
