// The Store implementation: LRU bookkeeping, singleflight generation,
// columnar residency with lazy AoS materialization, and stats (see
// doc.go for the package overview; disk.go holds the persistent tier).

package tracestore

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"

	"stbpu/internal/trace"
)

// Key identifies one generated trace.
type Key struct {
	// Name is the workload preset name.
	Name string
	// Records is the trace length.
	Records int
}

// String renders the key as the legacy per-run cache did ("name@records").
func (k Key) String() string { return fmt.Sprintf("%s@%d", k.Name, k.Records) }

// GenFunc materializes the trace for a key. It must be deterministic: the
// store may drop and regenerate entries under byte pressure, and replay
// results must not depend on which copy a cell observed.
type GenFunc func(name string, records int) (*trace.Trace, trace.Profile, error)

// ProfileFunc derives the workload profile for a key without generating
// the trace. The disk tier needs it: a trace decoded from an STBT spill
// carries no profile, so the store re-derives the (cheap, pure-metadata)
// profile instead of regenerating the records.
type ProfileFunc func(name string, records int) (trace.Profile, error)

// PresetProfile is the default ProfileFunc: a registered runtime synth
// (spec-driven workloads, trace.RegisterSynth) when one owns the name,
// else the named preset resized to the requested record count —
// exactly the profile PresetGen returns.
func PresetProfile(name string, records int) (trace.Profile, error) {
	if s, ok := trace.LookupSynth(name); ok {
		return s.Profile(records)
	}
	p, err := trace.Preset(name)
	if err != nil {
		return trace.Profile{}, err
	}
	return p.WithRecords(records), nil
}

// PresetGen is the default generator: a registered runtime synth when
// one owns the name, else the named trace preset resized to the
// requested record count. Synth names embed a content hash (the spec
// layer guarantees it), so the disk tier's (name, records) spill keys
// stay collision-free for synth workloads too.
func PresetGen(name string, records int) (*trace.Trace, trace.Profile, error) {
	if s, ok := trace.LookupSynth(name); ok {
		p, err := s.Profile(records)
		if err != nil {
			return nil, trace.Profile{}, err
		}
		tr, err := s.Generate(records)
		if err != nil {
			return nil, trace.Profile{}, err
		}
		return tr, p, nil
	}
	p, err := trace.Preset(name)
	if err != nil {
		return nil, trace.Profile{}, err
	}
	p = p.WithRecords(records)
	tr, err := trace.Generate(p)
	if err != nil {
		return nil, trace.Profile{}, err
	}
	return tr, p, nil
}

// PresetGenColumns is PresetGen generating straight into the columnar
// storage representation: the byte stream is identical, but the
// intermediate 32-byte-per-record AoS slice and the FromTrace
// conversion pass are skipped. The store's default fill path uses it.
func PresetGenColumns(name string, records int) (*trace.Columns, trace.Profile, error) {
	if s, ok := trace.LookupSynth(name); ok {
		p, err := s.Profile(records)
		if err != nil {
			return nil, trace.Profile{}, err
		}
		if s.GenerateColumns != nil {
			cols, err := s.GenerateColumns(records)
			if err != nil {
				return nil, trace.Profile{}, err
			}
			return cols, p, nil
		}
		tr, err := s.Generate(records)
		if err != nil {
			return nil, trace.Profile{}, err
		}
		return trace.FromTrace(tr), p, nil
	}
	p, err := trace.Preset(name)
	if err != nil {
		return nil, trace.Profile{}, err
	}
	p = p.WithRecords(records)
	cols, err := trace.GenerateColumns(p)
	if err != nil {
		return nil, trace.Profile{}, err
	}
	return cols, p, nil
}

// SizeOf reports the resident footprint in bytes of one stored trace:
// its columnar representation plus, when already materialized, the AoS
// record view (recs is nil until some Get caller asked for records).
// The store charges every entry through this hook, so tests can pin
// byte-exact budgets and alternative deployments can charge for
// overheads this package cannot see.
type SizeOf func(cols *trace.Columns, recs *trace.Trace) int64

// ExactSize is the default SizeOf: the capacity-exact footprint of the
// columns (trace.Columns.SizeBytes) plus the record array when
// materialized, plus fixed per-entry bookkeeping overhead. Unlike the
// pre-columnar estimate it charges the true backing-array capacities,
// so the byte budget is respected to the byte.
func ExactSize(cols *trace.Columns, recs *trace.Trace) int64 {
	n := entryOverheadBytes + cols.SizeBytes()
	if recs != nil {
		n += int64(cap(recs.Records)) * recordBytes
	}
	return n
}

// DefaultMaxBytes bounds stores whose creator does not choose a budget:
// large enough that a QuickScale suite run never evicts, small enough that
// a full-scale sweep cannot hold hundreds of 250k-record traces at once.
const DefaultMaxBytes = 256 << 20

// recordBytes is the in-memory footprint of one AoS trace record.
const recordBytes = int64(unsafe.Sizeof(trace.Record{}))

// entryOverheadBytes charges each entry for its map/list/struct/header
// overhead so a pathological many-tiny-traces workload still respects
// the bound.
const entryOverheadBytes = 256

// Stats is a point-in-time snapshot of store counters. Hits+Misses counts
// Get/GetColumns calls; Generations counts actual synth runs (disk-tier
// loads satisfy a miss without a generation). The Disk* counters are
// zero unless a disk tier is configured (SetDir).
type Stats struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Generations uint64 `json:"generations"`
	Evictions   uint64 `json:"evictions"`
	// DiskHits counts misses satisfied by decoding a spilled STBT file;
	// DiskMisses counts misses that found no usable spill; DiskWrites
	// counts traces spilled; DiskErrors counts unreadable/corrupt spills
	// and failed writes (both fall back to generation, never fail a Get).
	DiskHits   uint64 `json:"disk_hits,omitempty"`
	DiskMisses uint64 `json:"disk_misses,omitempty"`
	DiskWrites uint64 `json:"disk_writes,omitempty"`
	DiskErrors uint64 `json:"disk_errors,omitempty"`
	// MmapHits counts disk hits satisfied zero-copy by mapping a v2
	// spill (a subset of DiskHits); BytesMapped is the total currently
	// mmap'd. Both are zero unless mapped mode is on (SetMapped).
	MmapHits    uint64 `json:"mmap_hits,omitempty"`
	BytesMapped int64  `json:"bytes_mapped,omitempty"`
	// Bytes is the current resident size; MaxBytes the configured bound.
	// Mapped entries charge only their fixed bookkeeping overhead here
	// (the kernel owns their pages — see SetMapped); their footprint is
	// BytesMapped.
	Bytes    int64 `json:"bytes"`
	MaxBytes int64 `json:"max_bytes"`
}

// Store is the shared cache. The zero value is not usable; construct with
// New. All methods are safe for concurrent use.
type Store struct {
	gen      GenFunc
	profile  ProfileFunc
	maxBytes int64
	// presetGen records that gen is the default PresetGen pipeline —
	// the only generator whose spills the disk tier may trust or
	// produce (SetDir enforces it).
	presetGen bool

	mu         sync.Mutex
	sizeOf     SizeOf
	dir        string // disk tier root; "" disables the tier
	mappedMode bool   // zero-copy disk tier (SetMapped)
	entries    map[Key]*entry
	lru        *list.List // front = most recent; values are *entry
	bytes      int64

	hits, misses, generations, evictions         uint64
	diskHits, diskMisses, diskWrites, diskErrors uint64
	mmapHits                                     uint64
	// bytesMapped is atomic, not mu-guarded: mapping releases run from
	// evictLocked (mu held) and from columns finalizers (no lock).
	bytesMapped atomic.Int64
}

// entry is one cached (or in-flight) trace. The sync.Once gives waiters
// singleflight semantics: the first Get for a key fills (disk load or
// generation), concurrent Gets block on the same Once and share the
// result read-only. The columnar view is the canonical residency;
// recOnce materializes the AoS view at most once per residency, on the
// first Get that needs records (re-charging the entry's bytes).
type entry struct {
	key  Key
	once sync.Once
	cols *trace.Columns
	prof trace.Profile
	err  error

	recOnce sync.Once
	recs    *trace.Trace

	// mapped is non-nil when cols are zero-copy views of an mmap'd
	// spill; eviction drops the store's reference to the region.
	mapped *mapping

	bytes int64
	elem  *list.Element // LRU position; nil while generating or after eviction
}

// New builds a store bounded to maxBytes of resident trace data
// (maxBytes <= 0 means DefaultMaxBytes) generating through gen
// (nil means PresetGen, with PresetProfile as the profile deriver).
func New(maxBytes int64, gen GenFunc) *Store {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	presetGen := gen == nil
	if gen == nil {
		gen = PresetGen
	}
	return &Store{
		gen:       gen,
		profile:   PresetProfile,
		maxBytes:  maxBytes,
		presetGen: presetGen,
		sizeOf:    ExactSize,
		entries:   map[Key]*entry{},
		lru:       list.New(),
	}
}

// SetSizeOf installs the byte-accounting hook (nil reverts to
// ExactSize). Call before the first Get; existing entries keep the
// charge they were admitted with.
func (s *Store) SetSizeOf(fn SizeOf) {
	if fn == nil {
		fn = ExactSize
	}
	s.mu.Lock()
	s.sizeOf = fn
	s.mu.Unlock()
}

// Get returns the AoS trace for (name, records), generating it at most
// once per residency no matter how many cells ask concurrently. The
// record view is materialized from the stored columns at most once per
// residency and shared; the returned trace must be treated as
// read-only.
func (s *Store) Get(name string, records int) (*trace.Trace, trace.Profile, error) {
	e := s.entryFor(name, records)
	if e.err != nil {
		return nil, trace.Profile{}, e.err
	}
	return s.recordsOf(e), e.prof, nil
}

// GetColumns returns the columnar trace for (name, records): the
// replay-hot path, which never materializes AoS records. The returned
// columns are shared and must be treated as read-only.
func (s *Store) GetColumns(name string, records int) (*trace.Columns, trace.Profile, error) {
	e := s.entryFor(name, records)
	if e.err != nil {
		return nil, trace.Profile{}, e.err
	}
	return e.cols, e.prof, nil
}

// Prefetch begins materializing (name, records) in the background —
// the dispatch-time hint path: a coordinator about to route cells for
// that trace here calls it so the load overlaps the current batch's
// compute. The entry fills through the same singleflight path
// GetColumns uses, so a later Get joins the in-flight work instead of
// starting cold, and a concurrent Get never duplicates generation.
// Failures are swallowed: a failed fill is uncached, and the real Get
// retries and reports the error.
func (s *Store) Prefetch(name string, records int) {
	go func() { _ = s.entryFor(name, records) }()
}

// entryFor finds or creates the entry and fills it exactly once.
func (s *Store) entryFor(name string, records int) *entry {
	key := Key{Name: name, Records: records}

	s.mu.Lock()
	e, ok := s.entries[key]
	if ok {
		s.hits++
		if e.elem != nil {
			s.lru.MoveToFront(e.elem)
		}
	} else {
		s.misses++
		e = &entry{key: key}
		s.entries[key] = e
	}
	s.mu.Unlock()

	e.once.Do(func() { s.fill(e) })
	return e
}

// fill materializes one entry: disk tier first (when configured), then
// the generator. It runs outside the store lock — generation is the
// expensive part singleflight exists to amortize.
func (s *Store) fill(e *entry) {
	name, records := e.key.Name, e.key.Records
	if s.diskDir() != "" {
		if cols, m, ok := s.tryDiskLoad(e.key); ok {
			if prof, perr := s.profile(name, records); perr == nil {
				e.cols, e.prof, e.mapped = cols, prof, m
				s.mu.Lock()
				s.diskHits++
				if m != nil {
					s.mmapHits++
				}
				s.mu.Unlock()
				s.admit(e, false)
				return
			}
			// A spill whose profile cannot be re-derived (a foreign file
			// squatting on a name the preset table does not know) is
			// useless: fall through, and let generation fail the same way.
			if m != nil {
				m.release() // store's reference; the finalizer drops the other
			}
			s.mu.Lock()
			s.diskMisses++
			s.mu.Unlock()
		}
	}
	// Residency is columnar: the default pipeline generates straight
	// into columns (PresetGenColumns); a custom GenFunc's AoS slice is
	// converted and released. Either way a trace consumed only through
	// GetColumns never pins the 32-byte-per-record row view — Get
	// callers rebuild it lazily, one memcpy-scale pass per residency.
	var cols *trace.Columns
	var prof trace.Profile
	var genErr error
	if s.presetGen {
		cols, prof, genErr = PresetGenColumns(name, records)
	} else {
		var tr *trace.Trace
		tr, prof, genErr = s.gen(name, records)
		if genErr == nil {
			cols = trace.FromTrace(tr)
		}
	}
	if genErr != nil {
		e.err = genErr
		s.mu.Lock()
		// Failed generation is not cached: waiters on this entry see
		// the error, the next Get retries with a fresh entry.
		delete(s.entries, e.key)
		s.mu.Unlock()
		return
	}
	e.cols, e.prof = cols, prof
	if s.diskDir() != "" {
		s.spill(e.key, e.cols)
	}
	s.admit(e, true)
}

// admit charges a filled entry against the budget and inserts it at the
// front of the LRU.
func (s *Store) admit(e *entry, generated bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if generated {
		s.generations++
	}
	e.bytes = s.chargeLocked(e)
	s.bytes += e.bytes
	e.elem = s.lru.PushFront(e)
	s.evictLocked()
}

// chargeLocked is the entry's charge against the in-memory budget. A
// mapped entry's column bytes live in the kernel page cache, already
// bounded by the files on disk — charging them again here would
// double-count and evict the cheapest entries first — so it pays only
// the fixed overhead plus any materialized AoS view (which IS heap).
func (s *Store) chargeLocked(e *entry) int64 {
	if e.mapped == nil {
		return s.sizeOf(e.cols, e.recs)
	}
	n := int64(entryOverheadBytes)
	if e.recs != nil {
		n += int64(cap(e.recs.Records)) * recordBytes
	}
	return n
}

// recordsOf materializes the entry's AoS view at most once per
// residency and re-charges the entry for the added footprint.
func (s *Store) recordsOf(e *entry) *trace.Trace {
	e.recOnce.Do(func() {
		e.recs = e.cols.Trace()
		s.mu.Lock()
		if e.elem != nil {
			grown := s.chargeLocked(e)
			s.bytes += grown - e.bytes
			e.bytes = grown
			s.evictLocked()
		}
		s.mu.Unlock()
	})
	return e.recs
}

// evictLocked drops least-recently-used entries until the store fits its
// budget. An entry larger than the whole budget is evicted immediately
// after insertion; its caller already holds the pointers it needs.
func (s *Store) evictLocked() {
	for s.bytes > s.maxBytes {
		back := s.lru.Back()
		if back == nil {
			return
		}
		victim := back.Value.(*entry)
		s.lru.Remove(back)
		victim.elem = nil
		delete(s.entries, victim.key)
		s.bytes -= victim.bytes
		s.evictions++
		if m := victim.mapped; m != nil {
			// Drop the store's reference to the mapped region. Readers
			// still holding the columns keep it alive through the
			// finalizer reference; the munmap happens only after both
			// are gone, so eviction never invalidates a view in use.
			victim.mapped = nil
			m.release()
		}
	}
}

// Len reports how many traces are resident.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:        s.hits,
		Misses:      s.misses,
		Generations: s.generations,
		Evictions:   s.evictions,
		DiskHits:    s.diskHits,
		DiskMisses:  s.diskMisses,
		DiskWrites:  s.diskWrites,
		DiskErrors:  s.diskErrors,
		MmapHits:    s.mmapHits,
		BytesMapped: s.bytesMapped.Load(),
		Bytes:       s.bytes,
		MaxBytes:    s.maxBytes,
	}
}
