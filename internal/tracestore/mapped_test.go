package tracestore

import (
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"stbpu/internal/trace"
)

// newMapped builds a mapped-mode store over dir, skipping the test on
// platforms without mmap (where mapped mode degrades to decoding and
// these assertions do not hold).
func newMapped(t *testing.T, maxBytes int64, dir string) *Store {
	t.Helper()
	if !mmapSupported {
		t.Skip("mmap unsupported on this platform")
	}
	s := New(maxBytes, nil)
	s.SetMapped(true)
	if err := s.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	return s
}

// seedMappedSpill generates (name, records) through a mapped-mode store
// so dir holds a v2 spill, and returns the generated columns.
func seedMappedSpill(t *testing.T, dir, name string, records int) *trace.Columns {
	t.Helper()
	seed := newMapped(t, 0, dir)
	cols, _, err := seed.GetColumns(name, records)
	if err != nil {
		t.Fatal(err)
	}
	if st := seed.Stats(); st.DiskWrites != 1 {
		t.Fatalf("seed stats = %+v, want one v2 spill", st)
	}
	return cols
}

// spillFile returns the single .stbt file under dir.
func spillFile(t *testing.T, dir string) string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.stbt"))
	if err != nil || len(files) != 1 {
		t.Fatalf("spill files = %v (err %v), want exactly one", files, err)
	}
	return files[0]
}

// TestMappedTierRoundTrip is the zero-copy tier's core contract: a
// second mapped store maps the v2 spill — no generation, no decode —
// and the view is record-identical to the generated trace.
func TestMappedTierRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := seedMappedSpill(t, dir, "505.mcf", 3_000)

	s := newMapped(t, 0, dir)
	got, _, err := s.GetColumns("505.mcf", 3_000)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Generations != 0 || st.DiskHits != 1 || st.MmapHits != 1 {
		t.Fatalf("stats = %+v, want a pure mmap hit", st)
	}
	if st.BytesMapped <= 0 {
		t.Fatalf("bytes_mapped = %d, want > 0 while the entry is resident", st.BytesMapped)
	}
	if got.Len() != want.Len() || got.Name != want.Name {
		t.Fatalf("shape mismatch: %d/%q vs %d/%q", got.Len(), got.Name, want.Len(), want.Name)
	}
	for i := 0; i < got.Len(); i++ {
		if got.Record(i) != want.Record(i) {
			t.Fatalf("record %d diverges through the mapped view", i)
		}
	}
	// AoS materialization from a mapped view still works (it copies).
	tr, _, err := s.Get("505.mcf", 3_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != want.Len() {
		t.Fatalf("AoS view has %d records, want %d", len(tr.Records), want.Len())
	}
	runtime.KeepAlive(got)
}

// TestMappedResidencyCharge pins the accounting rule: a mapped entry's
// column bytes belong to the kernel page cache and must not be charged
// against the in-memory budget — the entry pays only the fixed
// bookkeeping overhead (plus an AoS view if later materialized).
func TestMappedResidencyCharge(t *testing.T) {
	dir := t.TempDir()
	seedMappedSpill(t, dir, "505.mcf", 2_000)

	s := newMapped(t, 0, dir)
	cols, _, err := s.GetColumns("505.mcf", 2_000)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Bytes != entryOverheadBytes {
		t.Fatalf("mapped entry charges %d bytes, want exactly the %d overhead", st.Bytes, entryOverheadBytes)
	}
	// Materializing records adds real heap and must be charged.
	tr, _, err := s.Get("505.mcf", 2_000)
	if err != nil {
		t.Fatal(err)
	}
	want := entryOverheadBytes + int64(cap(tr.Records))*recordBytes
	if st := s.Stats(); st.Bytes != want {
		t.Fatalf("after AoS materialization charge = %d, want %d", st.Bytes, want)
	}
	runtime.KeepAlive(cols)
}

// TestMappedEvictionUnmapOrdering pins the unmap lifecycle: eviction
// alone must NOT unmap (a replay may still hold the columns); the
// region is released only after the last reader drops the view, and
// bytes_mapped returns to zero.
func TestMappedEvictionUnmapOrdering(t *testing.T) {
	var unmaps atomic.Int32
	unmapHook = func(int) { unmaps.Add(1) }
	defer func() { unmapHook = nil }()

	dir := t.TempDir()
	want := seedMappedSpill(t, dir, "505.mcf", 2_000)
	wantFirst, wantLast := want.Record(0), want.Record(want.Len()-1)

	s := newMapped(t, 1, dir) // 1-byte budget: everything evicts at admit
	cols, _, err := s.GetColumns("505.mcf", 2_000)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Evictions != 1 || st.MmapHits != 1 {
		t.Fatalf("stats = %+v, want the mapped entry admitted and evicted", st)
	}
	runtime.GC() // must not collect: we still hold cols
	if n := unmaps.Load(); n != 0 {
		t.Fatalf("region unmapped %d times while a reader still holds the columns", n)
	}
	// The evicted-but-held view stays fully readable.
	if cols.Record(0) != wantFirst || cols.Record(cols.Len()-1) != wantLast {
		t.Fatal("mapped columns unreadable after eviction")
	}
	if st := s.Stats(); st.BytesMapped <= 0 {
		t.Fatalf("bytes_mapped = %d while a reader holds the view", st.BytesMapped)
	}
	runtime.KeepAlive(cols)

	// Drop the last reference; the finalizer releases the region.
	cols = nil
	for i := 0; i < 100 && unmaps.Load() == 0; i++ {
		runtime.GC()
	}
	if n := unmaps.Load(); n != 1 {
		t.Fatalf("unmaps = %d after the last reader dropped the view, want 1", n)
	}
	if st := s.Stats(); st.BytesMapped != 0 {
		t.Fatalf("bytes_mapped = %d after unmap, want 0", st.BytesMapped)
	}
}

// TestMappedCorruptSpillFallsBack extends the torn-file cases to the
// mapped tier: garbage, a mid-section truncation, and bit rot that
// survives the layout checks must all regenerate + rewrite exactly like
// the decode path, and the rewritten v2 file serves clean mmap hits.
func TestMappedCorruptSpillFallsBack(t *testing.T) {
	corruptions := []struct {
		name    string
		corrupt func(t *testing.T, path string, good *trace.Columns)
	}{
		{"garbage", func(t *testing.T, path string, _ *trace.Columns) {
			if err := os.WriteFile(path, []byte("STBT garbage"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"mid-section-truncation", func(t *testing.T, path string, _ *trace.Columns) {
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			// Cut inside the flags section: past the table, mid-data.
			if err := os.Truncate(path, st.Size()*2/3); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit-rot", func(t *testing.T, path string, good *trace.Columns) {
			rotten := &trace.Columns{
				Name:     good.Name,
				PCs:      append([]uint64(nil), good.PCs...),
				Targets:  append([]uint64(nil), good.Targets...),
				Flags:    append([]byte(nil), good.Flags...),
				PIDs:     append([]uint32(nil), good.PIDs...),
				Programs: append([]uint16(nil), good.Programs...),
			}
			poisoned := false
			for i := range rotten.Flags {
				if trace.Kind(rotten.Flags[i]&trace.FlagKindMask) != trace.KindCond {
					rotten.Flags[i] &^= trace.FlagTaken
					poisoned = true
					break
				}
			}
			if !poisoned {
				t.Fatal("trace has no unconditional branch to poison")
			}
			f, err := os.Create(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := trace.WriteColumnsMapped(f, rotten); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			good := seedMappedSpill(t, dir, "505.mcf", 1_000)
			tc.corrupt(t, spillFile(t, dir), good)

			s := newMapped(t, 0, dir)
			got, _, err := s.GetColumns("505.mcf", 1_000)
			if err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			if st.DiskErrors == 0 || st.Generations != 1 || st.DiskWrites != 1 || st.MmapHits != 0 {
				t.Fatalf("stats after corrupt mapped spill = %+v, want disk error + regeneration + rewrite", st)
			}
			for i := 0; i < got.Len(); i++ {
				if got.Record(i) != good.Record(i) {
					t.Fatalf("record %d wrong after regeneration", i)
				}
			}

			reread := newMapped(t, 0, dir)
			if _, _, err := reread.GetColumns("505.mcf", 1_000); err != nil {
				t.Fatal(err)
			}
			if st := reread.Stats(); st.MmapHits != 1 || st.Generations != 0 {
				t.Fatalf("stats after rewrite = %+v, want a clean mmap hit", st)
			}
		})
	}
}

// TestMappedModeInterop pins cross-version compatibility in a shared
// directory: a mapped store decodes a v1 spill (no error, no
// regeneration), and an unmapped store decodes a v2 spill.
func TestMappedModeInterop(t *testing.T) {
	if !mmapSupported {
		t.Skip("mmap unsupported on this platform")
	}
	t.Run("v1-spill-in-mapped-mode", func(t *testing.T) {
		dir := t.TempDir()
		plain := New(0, nil)
		if err := plain.SetDir(dir); err != nil {
			t.Fatal(err)
		}
		if _, _, err := plain.GetColumns("519.lbm", 1_500); err != nil {
			t.Fatal(err)
		}

		s := newMapped(t, 0, dir)
		if _, _, err := s.GetColumns("519.lbm", 1_500); err != nil {
			t.Fatal(err)
		}
		st := s.Stats()
		if st.Generations != 0 || st.DiskHits != 1 || st.MmapHits != 0 || st.DiskErrors != 0 {
			t.Fatalf("stats = %+v, want a decode hit of the v1 spill", st)
		}
	})
	t.Run("v2-spill-in-plain-mode", func(t *testing.T) {
		dir := t.TempDir()
		seedMappedSpill(t, dir, "519.lbm", 1_500)

		plain := New(0, nil)
		if err := plain.SetDir(dir); err != nil {
			t.Fatal(err)
		}
		if _, _, err := plain.GetColumns("519.lbm", 1_500); err != nil {
			t.Fatal(err)
		}
		st := plain.Stats()
		if st.Generations != 0 || st.DiskHits != 1 || st.MmapHits != 0 || st.DiskErrors != 0 {
			t.Fatalf("stats = %+v, want a decode hit of the v2 spill", st)
		}
	})
}

// TestMappedColumnsSharedReadRace hammers one mapped region from many
// readers while the store churns (evicts and re-maps) — run under the
// race detector in CI, it proves shared read-only mapped views need no
// caller-side locking.
func TestMappedColumnsSharedReadRace(t *testing.T) {
	dir := t.TempDir()
	seedMappedSpill(t, dir, "505.mcf", 2_000)

	s := newMapped(t, 1, dir) // evict immediately: every Get re-maps
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				cols, _, err := s.GetColumns("505.mcf", 2_000)
				if err != nil {
					t.Error(err)
					return
				}
				var sum uint64
				for i := 0; i < cols.Len(); i++ {
					sum += cols.PCs[i] ^ cols.Targets[i] ^ uint64(cols.Flags[i])
				}
				if sum == 0 {
					t.Error("implausible zero checksum")
				}
				runtime.KeepAlive(cols)
			}
		}()
	}
	wg.Wait()
}
