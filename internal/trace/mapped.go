// The mappable STBT layout (format version 2): the same logical content
// as the varint-delta v1 stream, but with the five packed column arrays
// stored as page-aligned little-endian sections, so a file can be
// mmap'd and reinterpreted as trace.Columns views with no decode and no
// copy (MapColumns). ReadColumns accepts both versions, so v1 and v2
// spills coexist in one trace directory; the mapped layout trades
// ~3-4x the disk footprint of the delta stream for a warm start that
// costs a page fault instead of a parse.
//
//	magic    [4]byte  "STBT"
//	version  uint8    (2)
//	nameLen  uint16   little-endian, followed by name bytes
//	count    uint64   little-endian record count
//	sections [5]uint64 little-endian file offsets of the PCs, Targets,
//	                  Flags, PIDs, and Programs sections, in that order
//	total    uint64   little-endian total file size in bytes
//	...zero padding...
//	sections, each beginning at a mappedSectionAlign-aligned offset:
//	  PCs      count × uint64 LE
//	  Targets  count × uint64 LE
//	  Flags    count × byte
//	  PIDs     count × uint32 LE
//	  Programs count × uint16 LE
//
// The section offsets are a pure function of (nameLen, count), so a
// reader recomputes them and rejects a file whose stored table (or
// total size) disagrees — the truncation/corruption check that keeps a
// torn spill from mapping as a shorter-than-claimed trace.

package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"unsafe"
)

// mappedSectionAlign is the section alignment of the v2 layout: one
// page, so every section begins page- (and thus element-) aligned in
// any mapping that starts at file offset zero.
const mappedSectionAlign = 4096

// hostLittleEndian reports whether this machine stores multi-byte
// integers little-endian — the precondition for reinterpreting the v2
// sections in place. On big-endian hosts MapColumns refuses and
// callers fall back to the decoding path.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// mappedLayout is the computed geometry of one v2 file.
type mappedLayout struct {
	sections [5]uint64 // PCs, Targets, Flags, PIDs, Programs
	total    uint64
}

// mappedElemSizes are the per-record widths of the five sections.
var mappedElemSizes = [5]uint64{8, 8, 1, 4, 2}

func alignUp(n uint64) uint64 {
	return (n + mappedSectionAlign - 1) &^ uint64(mappedSectionAlign-1)
}

// layoutMapped computes the section table for a (nameLen, count) pair.
// headerEnd = magic(4) + version(1) + nameLen(2) + name + count(8) +
// sections(40) + total(8).
func layoutMapped(nameLen int, count uint64) mappedLayout {
	var l mappedLayout
	off := alignUp(uint64(63 + nameLen))
	for i, w := range mappedElemSizes {
		l.sections[i] = off
		off = alignUp(off + count*w)
	}
	// The file ends with the last section's data, unpadded.
	l.total = l.sections[4] + count*mappedElemSizes[4]
	return l
}

// WriteColumnsMapped encodes the columnar trace to w in the mappable
// STBT layout (version 2). The output decodes to the same trace as
// WriteColumns' v1 stream, and additionally satisfies MapColumns.
func WriteColumnsMapped(w io.Writer, c *Columns) error {
	if len(c.Name) > 0xffff {
		return fmt.Errorf("trace: name too long (%d bytes)", len(c.Name))
	}
	count := uint64(c.Len())
	l := layoutMapped(len(c.Name), count)
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(codecVersionMapped); err != nil {
		return err
	}
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(len(c.Name)))
	if _, err := bw.Write(u16[:]); err != nil {
		return err
	}
	if _, err := bw.WriteString(c.Name); err != nil {
		return err
	}
	var u64 [8]byte
	writeU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(u64[:], v)
		_, err := bw.Write(u64[:])
		return err
	}
	if err := writeU64(count); err != nil {
		return err
	}
	for _, off := range l.sections {
		if err := writeU64(off); err != nil {
			return err
		}
	}
	if err := writeU64(l.total); err != nil {
		return err
	}

	pos := uint64(63 + len(c.Name))
	var zeros [mappedSectionAlign]byte
	padTo := func(off uint64) error {
		for pos < off {
			n := off - pos
			if n > mappedSectionAlign {
				n = mappedSectionAlign
			}
			if _, err := bw.Write(zeros[:n]); err != nil {
				return err
			}
			pos += n
		}
		return nil
	}
	writeSection := func(off uint64, elem uint64, put func(i int)) error {
		if err := padTo(off); err != nil {
			return err
		}
		for i := 0; i < int(count); i++ {
			put(i)
			if _, err := bw.Write(u64[:elem]); err != nil {
				return err
			}
		}
		pos += count * elem
		return nil
	}
	if err := writeSection(l.sections[0], 8, func(i int) { binary.LittleEndian.PutUint64(u64[:], c.PCs[i]) }); err != nil {
		return err
	}
	if err := writeSection(l.sections[1], 8, func(i int) { binary.LittleEndian.PutUint64(u64[:], c.Targets[i]) }); err != nil {
		return err
	}
	if err := writeSection(l.sections[2], 1, func(i int) { u64[0] = c.Flags[i] }); err != nil {
		return err
	}
	if err := writeSection(l.sections[3], 4, func(i int) { binary.LittleEndian.PutUint32(u64[:4], c.PIDs[i]) }); err != nil {
		return err
	}
	if err := writeSection(l.sections[4], 2, func(i int) { binary.LittleEndian.PutUint16(u64[:2], c.Programs[i]) }); err != nil {
		return err
	}
	return bw.Flush()
}

// readColumnsMapped is ReadColumns' v2 branch: a streaming decode of the
// sectioned layout for readers without (or choosing not to use) mmap.
// The magic and version bytes are already consumed. Like the v1 decoder
// it grows the column arrays as data actually arrives, so a corrupt
// header cannot force a giant allocation.
func readColumnsMapped(br *bufio.Reader) (*Columns, error) {
	var u16 [2]byte
	if _, err := io.ReadFull(br, u16[:]); err != nil {
		return nil, err
	}
	name := make([]byte, binary.LittleEndian.Uint16(u16[:]))
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	var u64 [8]byte
	readU64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, u64[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(u64[:]), nil
	}
	count, err := readU64()
	if err != nil {
		return nil, err
	}
	if count > maxRecords {
		return nil, fmt.Errorf("trace: record count %d exceeds limit", count)
	}
	var stored mappedLayout
	for i := range stored.sections {
		if stored.sections[i], err = readU64(); err != nil {
			return nil, err
		}
	}
	if stored.total, err = readU64(); err != nil {
		return nil, err
	}
	if want := layoutMapped(len(name), count); stored != want {
		return nil, fmt.Errorf("trace %q: mapped section table %v does not match layout %v", name, stored, want)
	}

	pos := uint64(63 + len(name))
	skipTo := func(off uint64) error {
		if off < pos {
			return fmt.Errorf("trace %q: mapped section offset %d behind stream position %d", name, off, pos)
		}
		if _, err := io.CopyN(io.Discard, br, int64(off-pos)); err != nil {
			return err
		}
		pos = off
		return nil
	}
	// Read a section in bounded chunks, converting little-endian in
	// place; append growth is driven by bytes actually read.
	const chunkElems = 1 << 14
	buf := make([]byte, chunkElems*8)
	readSection := func(si int, grow func(b []byte)) error {
		if err := skipTo(stored.sections[si]); err != nil {
			return err
		}
		elem := mappedElemSizes[si]
		for left := count; left > 0; {
			n := left
			if n > chunkElems {
				n = chunkElems
			}
			b := buf[:n*elem]
			if _, err := io.ReadFull(br, b); err != nil {
				return fmt.Errorf("trace %q: mapped section %d: %w", name, si, err)
			}
			grow(b)
			left -= n
		}
		pos += count * elem
		return nil
	}
	c := &Columns{Name: string(name)}
	if err := readSection(0, func(b []byte) {
		for i := 0; i < len(b); i += 8 {
			c.PCs = append(c.PCs, binary.LittleEndian.Uint64(b[i:]))
		}
	}); err != nil {
		return nil, err
	}
	if err := readSection(1, func(b []byte) {
		for i := 0; i < len(b); i += 8 {
			c.Targets = append(c.Targets, binary.LittleEndian.Uint64(b[i:]))
		}
	}); err != nil {
		return nil, err
	}
	if err := readSection(2, func(b []byte) {
		c.Flags = append(c.Flags, b...)
	}); err != nil {
		return nil, err
	}
	if err := readSection(3, func(b []byte) {
		for i := 0; i < len(b); i += 4 {
			c.PIDs = append(c.PIDs, binary.LittleEndian.Uint32(b[i:]))
		}
	}); err != nil {
		return nil, err
	}
	if err := readSection(4, func(b []byte) {
		for i := 0; i < len(b); i += 2 {
			c.Programs = append(c.Programs, binary.LittleEndian.Uint16(b[i:]))
		}
	}); err != nil {
		return nil, err
	}
	return c, nil
}

// MapColumns reinterprets data — a complete v2 STBT file, typically an
// mmap'd region starting at file offset zero — as zero-copy Columns
// views over the packed sections. No bytes are decoded or copied except
// the (tiny) name. The returned columns alias data: they are valid
// exactly as long as the mapping is, and the caller owns that lifetime
// (tracestore ties it to cache residency with a finalizer).
//
// MapColumns fails — and the caller should fall back to ReadColumns —
// when the file is not version 2, the host is not little-endian, data
// is not 8-byte aligned, or the header's section table, record count,
// and total size do not agree with both the layout rules and len(data).
// Structural validation of the record contents themselves is the
// caller's job (Columns.Validate), exactly as with the decoding path.
func MapColumns(data []byte) (*Columns, error) {
	if !hostLittleEndian {
		return nil, fmt.Errorf("trace: cannot map columns on a big-endian host")
	}
	if len(data) < 63 {
		return nil, io.ErrUnexpectedEOF
	}
	if [4]byte(data[:4]) != traceMagic {
		return nil, ErrBadMagic
	}
	if data[4] != codecVersionMapped {
		return nil, fmt.Errorf("%w: %d (not mappable)", ErrBadVersion, data[4])
	}
	if uintptr(unsafe.Pointer(&data[0]))%8 != 0 {
		return nil, fmt.Errorf("trace: mapped buffer is not 8-byte aligned")
	}
	nameLen := int(binary.LittleEndian.Uint16(data[5:7]))
	if 63+nameLen > len(data) {
		return nil, io.ErrUnexpectedEOF
	}
	name := string(data[7 : 7+nameLen]) // copied: must outlive the mapping
	off := 7 + nameLen
	count := binary.LittleEndian.Uint64(data[off:])
	if count > maxRecords {
		return nil, fmt.Errorf("trace: record count %d exceeds limit", count)
	}
	var stored mappedLayout
	for i := range stored.sections {
		stored.sections[i] = binary.LittleEndian.Uint64(data[off+8+8*i:])
	}
	stored.total = binary.LittleEndian.Uint64(data[off+48:])
	want := layoutMapped(nameLen, count)
	if stored != want {
		return nil, fmt.Errorf("trace %q: mapped section table does not match layout", name)
	}
	if want.total != uint64(len(data)) {
		return nil, fmt.Errorf("trace %q: mapped file is %d bytes, layout wants %d (truncated?)", name, len(data), want.total)
	}
	c := &Columns{Name: name}
	if count == 0 {
		c.PCs, c.Targets = []uint64{}, []uint64{}
		c.Flags, c.PIDs, c.Programs = []byte{}, []uint32{}, []uint16{}
		return c, nil
	}
	n := int(count)
	c.PCs = unsafe.Slice((*uint64)(unsafe.Pointer(&data[want.sections[0]])), n)
	c.Targets = unsafe.Slice((*uint64)(unsafe.Pointer(&data[want.sections[1]])), n)
	c.Flags = data[want.sections[2] : want.sections[2]+count : want.sections[2]+count]
	c.PIDs = unsafe.Slice((*uint32)(unsafe.Pointer(&data[want.sections[3]])), n)
	c.Programs = unsafe.Slice((*uint16)(unsafe.Pointer(&data[want.sections[4]])), n)
	return c, nil
}
