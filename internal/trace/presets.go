package trace

import (
	"fmt"
	"sort"
)

// This file instantiates one generator profile per paper workload.
//
// Fig. 3 evaluates 23 SPEC CPU 2017 traces plus 12 user/server application
// traces (Apache2 prefork at five concurrency levels, four Chrome browser
// scenarios, four MySQL connection counts, OBS Studio). Figs. 4-6 use 18
// SPEC workloads (plus povray in one SMT pair) in gem5.
//
// The knob values encode each workload's published predictability class:
// branch-heavy integer codes with hard-to-predict control flow (mcf,
// deepsjeng, leela, xz, exchange2) get large hard/correlated fractions;
// regular FP codes (lbm, bwaves, namd, fotonik3d, ...) are near-perfectly
// biased; interpreter/compiler codes (perlbench, gcc, xalancbmk, omnetpp,
// povray) get high indirect-branch fractions and big static footprints.
// Server and interactive workloads add many processes, dense context
// switches and syscall activity, which is what separates the flushing
// protections from STBPU in Fig. 3.

// predictClass buckets SPEC workloads by branch behaviour.
type predictClass int

const (
	classEasy     predictClass = iota // highly biased FP loops
	classMedium                       // mixed integer/FP
	classHard                         // pointer-chasing / search codes
	classIndirect                     // interpreter/compiler heavy indirect use
)

// defaultSPECRecords is the dynamic branch budget per synthetic SPEC trace.
// Experiments scale this with Profile.WithRecords.
const defaultSPECRecords = 400_000

// defaultServerRecords is the budget for server/interactive traces.
const defaultServerRecords = 400_000

func specProfile(name string, class predictClass) Profile {
	p := Profile{
		Name:    name,
		Records: defaultSPECRecords,
		// PT captures run on a live core: the SPEC process shares it
		// with a light background process, timer ticks, and occasional
		// syscalls — the kernel activity the paper's traces include.
		Processes:       2,
		CtxSwitchMean:   12_000,
		SyscallMean:     700,
		KernelBurstMean: 35,
		KernelConds:     1024,
		CallDepthMax:    14,
		LoopPeriodMax:   24,
		ZipfSkew:        1.1,
		RegionExp:       2.2,
		RegionLenMean:   10,
		RegionTripsMean: 12,

		CondFrac:     0.72,
		JumpFrac:     0.08,
		CallFrac:     0.07,
		IndirectFrac: 0.03,

		IndirectTargetsMax: 4,
		IndirectPhaseMean:  8_000,
	}
	switch class {
	case classEasy:
		p.StaticConds = 384
		p.StaticIndirects = 8
		p.StaticCallees = 48
		p.StaticJumps = 48
		p.HardFrac = 0.01
		p.PatternFrac = 0.15
		p.CorrelatedFrac = 0.06
		p.BiasTakenProb = 0.98
	case classMedium:
		p.StaticConds = 2048
		p.StaticIndirects = 48
		p.StaticCallees = 160
		p.StaticJumps = 160
		p.HardFrac = 0.06
		p.PatternFrac = 0.18
		p.CorrelatedFrac = 0.25
		p.BiasTakenProb = 0.92
		p.RegionLenMean = 12
		p.RegionTripsMean = 7
	case classHard:
		p.StaticConds = 3072
		p.StaticIndirects = 32
		p.StaticCallees = 128
		p.StaticJumps = 128
		p.HardFrac = 0.15
		p.PatternFrac = 0.08
		p.CorrelatedFrac = 0.35
		p.BiasTakenProb = 0.85
		p.RegionLenMean = 12
		p.RegionTripsMean = 6
	case classIndirect:
		p.StaticConds = 4096
		p.StaticIndirects = 192
		p.StaticCallees = 320
		p.StaticJumps = 256
		p.HardFrac = 0.08
		p.PatternFrac = 0.12
		p.CorrelatedFrac = 0.28
		p.BiasTakenProb = 0.90
		p.IndirectFrac = 0.08
		p.IndirectTargetsMax = 10
		p.CondFrac = 0.64
		p.RegionLenMean = 14
		p.RegionTripsMean = 5
	}
	return p
}

func serverProfile(name string, processes, ctxSwitch, syscall, burst int, conns int) Profile {
	p := Profile{
		Name:            name,
		Records:         defaultServerRecords,
		Processes:       processes,
		SameProgram:     true,
		SharedTokens:    true,
		CtxSwitchMean:   ctxSwitch,
		SyscallMean:     syscall,
		KernelBurstMean: burst,
		KernelConds:     1536,
		CallDepthMax:    14,
		LoopPeriodMax:   16,
		ZipfSkew:        1.05,
		RegionExp:       1.15,
		RegionLenMean:   18,
		RegionTripsMean: 3,

		StaticConds:     2816 + conns*2,
		StaticIndirects: 96,
		StaticCallees:   256,
		StaticJumps:     192,
		HardFrac:        0.07,
		PatternFrac:     0.10,
		CorrelatedFrac:  0.22,
		BiasTakenProb:   0.91,

		CondFrac:     0.66,
		JumpFrac:     0.08,
		CallFrac:     0.09,
		IndirectFrac: 0.06,

		IndirectTargetsMax: 8,
		IndirectPhaseMean:  4_000,
	}
	return p
}

func interactiveProfile(name string, processes int, shared bool) Profile {
	p := serverProfile(name, processes, 900, 450, 45, 64)
	p.SharedTokens = shared
	p.SameProgram = true // one binary, many renderer/worker processes
	p.StaticConds = 3072
	p.StaticIndirects = 224
	p.IndirectFrac = 0.08
	p.CondFrac = 0.62
	p.IndirectTargetsMax = 12
	p.HardFrac = 0.09
	p.CorrelatedFrac = 0.24
	return p
}

// specClasses maps the 23 Fig.-3 SPEC workloads to behaviour classes.
var specClasses = map[string]predictClass{
	"500.perlbench": classIndirect,
	"502.gcc":       classIndirect,
	"503.bwaves":    classEasy,
	"505.mcf":       classHard,
	"507.cactuBSSN": classEasy,
	"508.namd":      classEasy,
	"510.parest":    classMedium,
	"511.povray":    classMedium,
	"519.lbm":       classEasy,
	"520.omnetpp":   classIndirect,
	"521.wrf":       classEasy,
	"523.xalancbmk": classIndirect,
	"525.x264":      classMedium,
	"526.blender":   classMedium,
	"527.cam4":      classEasy,
	"531.deepsjeng": classHard,
	"538.imagick":   classEasy,
	"541.leela":     classHard,
	"544.nab":       classEasy,
	"548.exchange2": classHard,
	"549.fotonik3d": classEasy,
	"554.roms":      classEasy,
	"557.xz":        classHard,
}

// shortSPEC maps the gem5 evaluation's short names (Figs. 4-6) to the full
// SPEC workload identifiers.
var shortSPEC = map[string]string{
	"fotonik3d": "549.fotonik3d",
	"x264":      "525.x264",
	"exchange2": "548.exchange2",
	"deepsjeng": "531.deepsjeng",
	"roms":      "554.roms",
	"mcf":       "505.mcf",
	"nab":       "544.nab",
	"cam4":      "527.cam4",
	"namd":      "508.namd",
	"xalancbmk": "523.xalancbmk",
	"parest":    "510.parest",
	"bwaves":    "503.bwaves",
	"wrf":       "521.wrf",
	"imagick":   "538.imagick",
	"leela":     "541.leela",
	"blender":   "526.blender",
	"xz":        "557.xz",
	"lbm":       "519.lbm",
	"povray":    "511.povray",
	"cactuBSSN": "507.cactuBSSN",
}

// buildPresets constructs the full preset table once at init.
func buildPresets() map[string]Profile {
	m := make(map[string]Profile)
	for name, class := range specClasses {
		m[name] = specProfile(name, class)
	}
	// Apache2 prefork: worker count grows with the concurrency setting;
	// more workers mean denser context switching and more kernel time.
	apache := []struct {
		name  string
		procs int
		ctx   int
		conns int
	}{
		{"apache2_prefork_c32", 6, 1_300, 32},
		{"apache2_prefork_c64", 8, 1_000, 64},
		{"apache2_prefork_c128", 10, 750, 128},
		{"apache2_prefork_c256", 12, 550, 256},
		{"apache2_prefork_c512", 16, 400, 512},
	}
	for _, a := range apache {
		m[a.name] = serverProfile(a.name, a.procs, a.ctx, 300, 50, a.conns)
	}
	// MySQL: thread-per-connection server, shared binary, heavy syscalls.
	mysql := []struct {
		name  string
		procs int
		ctx   int
	}{
		{"mysql_32con_50s", 6, 1_400},
		{"mysql_64con_50s", 8, 1_000},
		{"mysql_128con_50s", 10, 700},
		{"mysql_256con_50s", 12, 500},
	}
	for _, q := range mysql {
		p := serverProfile(q.name, q.procs, q.ctx, 280, 60, 128)
		p.StaticConds = 3072
		m[q.name] = p
	}
	// Chrome: multi-process browser, JS-heavy scenarios are indirect-
	// branch rich. Single-site scenarios run one program's renderers, so
	// the OS shares one token per program (§IV-A); the mixed-site run
	// (1je_1mo_1sp) keeps per-renderer isolation, showing the cost of
	// forgoing sharing.
	m["chrome-1jetstream"] = interactiveProfile("chrome-1jetstream", 5, true)
	m["chrome-1motionmark"] = interactiveProfile("chrome-1motionmark", 4, true)
	m["chrome-1speedometer"] = interactiveProfile("chrome-1speedometer", 5, true)
	m["chrome-1je_1mo_1sp"] = interactiveProfile("chrome-1je_1mo_1sp", 8, false)
	// OBS Studio: single process, moderate syscall rate (capture/encode).
	obs := specProfile("obsstudio_30s", classMedium)
	obs.Name = "obsstudio_30s"
	obs.Processes = 3
	obs.CtxSwitchMean = 2_200
	obs.SyscallMean = 800
	obs.KernelBurstMean = 40
	obs.KernelConds = 1024
	obs.RegionExp = 1.4
	m["obsstudio_30s"] = obs
	return m
}

var presets = buildPresets()

// Preset returns the profile for a workload name. Both full SPEC names
// ("505.mcf") and the gem5 short names ("mcf") resolve.
func Preset(name string) (Profile, error) {
	if full, ok := shortSPEC[name]; ok {
		p, ok := presets[full]
		if !ok {
			return Profile{}, fmt.Errorf("trace: preset %q maps to missing %q", name, full)
		}
		p.Name = full
		return p, nil
	}
	p, ok := presets[name]
	if !ok {
		return Profile{}, fmt.Errorf("trace: unknown preset %q", name)
	}
	return p, nil
}

// PresetNames returns all preset names, sorted.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Fig3Workloads returns the 35 workload names of Fig. 3 in the paper's
// x-axis order (SPEC numerically, then applications alphabetically).
func Fig3Workloads() []string {
	spec := make([]string, 0, len(specClasses))
	for n := range specClasses {
		spec = append(spec, n)
	}
	sort.Strings(spec)
	apps := []string{
		"apache2_prefork_c128", "apache2_prefork_c256", "apache2_prefork_c32",
		"apache2_prefork_c512", "apache2_prefork_c64",
		"chrome-1je_1mo_1sp", "chrome-1jetstream", "chrome-1motionmark",
		"chrome-1speedometer",
		"mysql_128con_50s", "mysql_256con_50s", "mysql_32con_50s",
		"mysql_64con_50s",
		"obsstudio_30s",
	}
	return append(spec, apps...)
}

// SPEC18 returns the 18 short-named SPEC workloads used in the single-
// workload gem5 evaluation (Fig. 4), in the paper's order.
func SPEC18() []string {
	return []string{
		"fotonik3d", "x264", "exchange2", "deepsjeng", "roms", "mcf",
		"nab", "cam4", "namd", "xalancbmk", "parest", "bwaves", "wrf",
		"imagick", "leela", "blender", "xz", "lbm",
	}
}

// SMTPairs returns the 31 SPEC workload pairs of the paper's Fig. 5 SMT
// evaluation, in figure order.
func SMTPairs() [][2]string {
	return [][2]string{
		{"bwaves", "fotonik3d"}, {"bwaves", "cactuBSSN"}, {"bwaves", "leela"},
		{"bwaves", "cam4"}, {"exchange2", "nab"}, {"bwaves", "wrf"},
		{"leela", "namd"}, {"exchange2", "mcf"}, {"bwaves", "deepsjeng"},
		{"exchange2", "fotonik3d"}, {"deepsjeng", "lbm"}, {"bwaves", "namd"},
		{"bwaves", "lbm"}, {"leela", "mcf"}, {"lbm", "xz"},
		{"fotonik3d", "mcf"}, {"lbm", "namd"}, {"lbm", "mcf"},
		{"exchange2", "leela"}, {"fotonik3d", "lbm"}, {"cam4", "mcf"},
		{"nab", "xz"}, {"exchange2", "namd"}, {"bwaves", "roms"},
		{"mcf", "xz"}, {"exchange2", "lbm"}, {"bwaves", "povray"},
		{"fotonik3d", "leela"}, {"fotonik3d", "namd"}, {"deepsjeng", "xz"},
		{"bwaves", "exchange2"},
	}
}

// SMTPairsExtended returns 42 workload pairs (the Fig. 6 sweep population):
// the Fig. 5 pairs plus additional combinations drawn from the same pool.
func SMTPairsExtended() [][2]string {
	pairs := SMTPairs()
	extra := [][2]string{
		{"x264", "mcf"}, {"x264", "leela"}, {"roms", "deepsjeng"},
		{"wrf", "xz"}, {"imagick", "mcf"}, {"parest", "deepsjeng"},
		{"xalancbmk", "lbm"}, {"blender", "mcf"}, {"nab", "leela"},
		{"cam4", "xz"}, {"namd", "deepsjeng"},
	}
	return append(pairs, extra...)
}
