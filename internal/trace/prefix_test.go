package trace

import (
	"bytes"
	"testing"
)

// TestPresetsArePrefixStable pins the contract the warmup experiment's
// single-pass scheduling builds on: for every preset, the l-record
// trace is byte-for-byte the prefix of any longer trace of the same
// preset. The generator guarantees it structurally — record emission
// consumes RNG draws in stream order and nothing about the budget
// feeds back into the stream — but the experiments layer reads
// per-length results off one cumulative replay, so the property must
// hold for every preset, forever.
//
// Spec-synth workloads (trace/spec) are deliberately NOT prefix-stable:
// they rescale phase boundaries with the record budget. The warmup path
// keeps per-length replay for those.
func TestPresetsArePrefixStable(t *testing.T) {
	const short, long = 3000, 9000
	for _, name := range PresetNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			p, err := Preset(name)
			if err != nil {
				t.Fatal(err)
			}
			a, err := GenerateColumns(p.WithRecords(short))
			if err != nil {
				t.Fatal(err)
			}
			b, err := GenerateColumns(p.WithRecords(long))
			if err != nil {
				t.Fatal(err)
			}
			if a.Len() != short || b.Len() != long {
				t.Fatalf("lengths %d/%d, want %d/%d", a.Len(), b.Len(), short, long)
			}
			pre := b.Slice(0, short)
			if !equalColumns(a, pre) {
				t.Errorf("%s: %d-record trace is not the prefix of the %d-record one", name, short, long)
			}
		})
	}
}

func equalColumns(a, b *Columns) bool {
	if a.Len() != b.Len() {
		return false
	}
	if !bytes.Equal(a.Flags, b.Flags) {
		return false
	}
	for i := range a.PCs {
		if a.PCs[i] != b.PCs[i] || a.Targets[i] != b.Targets[i] ||
			a.PIDs[i] != b.PIDs[i] || a.Programs[i] != b.Programs[i] {
			return false
		}
	}
	return true
}
