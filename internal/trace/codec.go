package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format ("STBT"):
//
//	magic   [4]byte  "STBT"
//	version uint8    (1)
//	nameLen uint16   little-endian, followed by name bytes
//	count   uint64   number of records
//	records          varint-delta encoded, one after another
//
// Each record is encoded as:
//
//	flags   uint8    bits 0-2 kind, bit 3 taken, bit 4 kernel,
//	                 bit 5 samePID (PID/Program omitted when set)
//	pcDelta varint   zig-zag delta from previous PC
//	target  varint   zig-zag delta from PC (targets are near their branch)
//	pid     uvarint  (only when samePID clear)
//	program uvarint  (only when samePID clear)
//
// Delta coding keeps synthetic SPEC-sized traces at ~4-6 bytes/record, an
// order of magnitude under the naive fixed layout, which matters for the
// larger experiment sweeps.
//
// The decoder is written once, against the columnar representation:
// ReadColumns parses straight into packed arrays, and Read is a
// compatibility wrapper that materializes AoS records from the columns.
// Bits 0-4 of the on-disk flag byte are exactly the Columns flag layout
// (PackFlags), so the column decode copies the masked byte verbatim.

var (
	traceMagic = [4]byte{'S', 'T', 'B', 'T'}

	// ErrBadMagic indicates the stream is not an STBT trace.
	ErrBadMagic = errors.New("trace: bad magic")
	// ErrBadVersion indicates an unsupported format version.
	ErrBadVersion = errors.New("trace: unsupported version")
)

const codecVersion = 1

// codecVersionMapped is the mappable layout (see WriteColumnsMapped):
// the same header fields followed by a section-offset table and the
// packed column arrays as page-aligned little-endian sections, so an
// mmap of the whole file yields trace.Columns views with no decode.
const codecVersionMapped = 2

// maxRecords bounds the record count any decoder will accept, so a
// corrupt header cannot drive a giant allocation or mapping.
const maxRecords = 1 << 32

// flagSamePID is the codec-private stream bit: PID/Program bytes are
// omitted because they repeat the previous record's.
const flagSamePID byte = 1 << 5

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Write encodes the trace to w in STBT format.
func Write(w io.Writer, t *Trace) error {
	return encodeSTBT(w, t.Name, len(t.Records), func(i int) (pc, target uint64, flags byte, pid uint32, prog uint16) {
		r := &t.Records[i]
		return r.PC, r.Target, PackFlags(r.Kind, r.Taken, r.Kernel), r.PID, r.Program
	})
}

// WriteColumns encodes the columnar trace to w in STBT format, byte-
// identical to Write of the equivalent AoS trace.
func WriteColumns(w io.Writer, c *Columns) error {
	return encodeSTBT(w, c.Name, c.Len(), func(i int) (pc, target uint64, flags byte, pid uint32, prog uint16) {
		return c.PCs[i], c.Targets[i], c.Flags[i], c.PIDs[i], c.Programs[i]
	})
}

// encodeSTBT is the single encoder implementation; at yields record i's
// fields in either representation.
func encodeSTBT(w io.Writer, name string, count int, at func(i int) (pc, target uint64, flags byte, pid uint32, prog uint16)) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(codecVersion); err != nil {
		return err
	}
	if len(name) > 0xffff {
		return fmt.Errorf("trace: name too long (%d bytes)", len(name))
	}
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(len(name)))
	if _, err := bw.Write(u16[:]); err != nil {
		return err
	}
	if _, err := bw.WriteString(name); err != nil {
		return err
	}
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], uint64(count))
	if _, err := bw.Write(u64[:]); err != nil {
		return err
	}

	var buf [3 * binary.MaxVarintLen64]byte
	prevPC := uint64(0)
	prevPID := uint32(0)
	prevProg := uint16(0)
	first := true
	for i := 0; i < count; i++ {
		pc, target, flags, pid, prog := at(i)
		samePID := !first && pid == prevPID && prog == prevProg
		if samePID {
			flags |= flagSamePID
		}
		n := 0
		buf[n] = flags
		n++
		n += binary.PutUvarint(buf[n:], zigzag(int64(pc)-int64(prevPC)))
		n += binary.PutUvarint(buf[n:], zigzag(int64(target)-int64(pc)))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		if !samePID {
			n = binary.PutUvarint(buf[:], uint64(pid))
			n += binary.PutUvarint(buf[n:], uint64(prog))
			if _, err := bw.Write(buf[:n]); err != nil {
				return err
			}
		}
		prevPC, prevPID, prevProg, first = pc, pid, prog, false
	}
	return bw.Flush()
}

// Read decodes an STBT trace from r as AoS records: a compatibility
// wrapper over the columnar decoder.
func Read(r io.Reader) (*Trace, error) {
	c, err := ReadColumns(r)
	if err != nil {
		return nil, err
	}
	return c.Trace(), nil
}

// ReadColumns decodes an STBT trace from r straight into packed
// columns, with no intermediate []Record allocation — the hot decode
// path of the trace-cache disk tier.
func ReadColumns(r io.Reader) (*Columns, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != traceMagic {
		return nil, ErrBadMagic
	}
	version, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if version == codecVersionMapped {
		return readColumnsMapped(br)
	}
	if version != codecVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	var u16 [2]byte
	if _, err := io.ReadFull(br, u16[:]); err != nil {
		return nil, err
	}
	name := make([]byte, binary.LittleEndian.Uint16(u16[:]))
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	var u64 [8]byte
	if _, err := io.ReadFull(br, u64[:]); err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint64(u64[:])
	if count > maxRecords {
		return nil, fmt.Errorf("trace: record count %d exceeds limit", count)
	}

	// The count field is untrusted until the records actually parse:
	// cap the preallocation and let append grow with real data, so a
	// corrupt header cannot force a huge allocation.
	prealloc := count
	if prealloc > 1<<16 {
		prealloc = 1 << 16
	}
	c := &Columns{
		Name:     string(name),
		PCs:      make([]uint64, 0, prealloc),
		Targets:  make([]uint64, 0, prealloc),
		Flags:    make([]byte, 0, prealloc),
		PIDs:     make([]uint32, 0, prealloc),
		Programs: make([]uint16, 0, prealloc),
	}
	prevPC := uint64(0)
	prevPID := uint32(0)
	prevProg := uint16(0)
	for i := uint64(0); i < count; i++ {
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		kind := Kind(flags & FlagKindMask)
		if kind >= numKinds {
			return nil, fmt.Errorf("trace: record %d: invalid kind %d", i, kind)
		}
		pcDelta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d pc: %w", i, err)
		}
		tgtDelta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d target: %w", i, err)
		}
		pc := uint64(int64(prevPC) + unzigzag(pcDelta))
		target := uint64(int64(pc) + unzigzag(tgtDelta))
		pid, prog := prevPID, prevProg
		if flags&flagSamePID == 0 {
			p64, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: record %d pid: %w", i, err)
			}
			g64, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: record %d program: %w", i, err)
			}
			if p64 > 0xffffffff || g64 > 0xffff {
				return nil, fmt.Errorf("trace: record %d: pid/program out of range", i)
			}
			pid, prog = uint32(p64), uint16(g64)
		}
		c.PCs = append(c.PCs, pc)
		c.Targets = append(c.Targets, target)
		c.Flags = append(c.Flags, flags&flagRecordMask)
		c.PIDs = append(c.PIDs, pid)
		c.Programs = append(c.Programs, prog)
		prevPC, prevPID, prevProg = pc, pid, prog
	}
	return c, nil
}
