package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format ("STBT"):
//
//	magic   [4]byte  "STBT"
//	version uint8    (1)
//	nameLen uint16   little-endian, followed by name bytes
//	count   uint64   number of records
//	records          varint-delta encoded, one after another
//
// Each record is encoded as:
//
//	flags   uint8    bits 0-2 kind, bit 3 taken, bit 4 kernel,
//	                 bit 5 samePID (PID/Program omitted when set)
//	pcDelta varint   zig-zag delta from previous PC
//	target  varint   zig-zag delta from PC (targets are near their branch)
//	pid     uvarint  (only when samePID clear)
//	program uvarint  (only when samePID clear)
//
// Delta coding keeps synthetic SPEC-sized traces at ~4-6 bytes/record, an
// order of magnitude under the naive fixed layout, which matters for the
// larger experiment sweeps.

var (
	traceMagic = [4]byte{'S', 'T', 'B', 'T'}

	// ErrBadMagic indicates the stream is not an STBT trace.
	ErrBadMagic = errors.New("trace: bad magic")
	// ErrBadVersion indicates an unsupported format version.
	ErrBadVersion = errors.New("trace: unsupported version")
)

const codecVersion = 1

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Write encodes the trace to w in STBT format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(codecVersion); err != nil {
		return err
	}
	if len(t.Name) > 0xffff {
		return fmt.Errorf("trace: name too long (%d bytes)", len(t.Name))
	}
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(len(t.Name)))
	if _, err := bw.Write(u16[:]); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], uint64(len(t.Records)))
	if _, err := bw.Write(u64[:]); err != nil {
		return err
	}

	var buf [3 * binary.MaxVarintLen64]byte
	prevPC := uint64(0)
	prevPID := uint32(0)
	prevProg := uint16(0)
	first := true
	for _, r := range t.Records {
		flags := byte(r.Kind)
		if r.Taken {
			flags |= 1 << 3
		}
		if r.Kernel {
			flags |= 1 << 4
		}
		samePID := !first && r.PID == prevPID && r.Program == prevProg
		if samePID {
			flags |= 1 << 5
		}
		n := 0
		buf[n] = flags
		n++
		n += binary.PutUvarint(buf[n:], zigzag(int64(r.PC)-int64(prevPC)))
		n += binary.PutUvarint(buf[n:], zigzag(int64(r.Target)-int64(r.PC)))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		if !samePID {
			n = binary.PutUvarint(buf[:], uint64(r.PID))
			n += binary.PutUvarint(buf[n:], uint64(r.Program))
			if _, err := bw.Write(buf[:n]); err != nil {
				return err
			}
		}
		prevPC, prevPID, prevProg, first = r.PC, r.PID, r.Program, false
	}
	return bw.Flush()
}

// Read decodes an STBT trace from r.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != traceMagic {
		return nil, ErrBadMagic
	}
	version, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if version != codecVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	var u16 [2]byte
	if _, err := io.ReadFull(br, u16[:]); err != nil {
		return nil, err
	}
	name := make([]byte, binary.LittleEndian.Uint16(u16[:]))
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	var u64 [8]byte
	if _, err := io.ReadFull(br, u64[:]); err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint64(u64[:])
	const maxRecords = 1 << 32
	if count > maxRecords {
		return nil, fmt.Errorf("trace: record count %d exceeds limit", count)
	}

	// The count field is untrusted until the records actually parse:
	// cap the preallocation and let append grow with real data, so a
	// corrupt header cannot force a huge allocation.
	prealloc := count
	if prealloc > 1<<16 {
		prealloc = 1 << 16
	}
	t := &Trace{Name: string(name), Records: make([]Record, 0, prealloc)}
	prevPC := uint64(0)
	prevPID := uint32(0)
	prevProg := uint16(0)
	for i := uint64(0); i < count; i++ {
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		kind := Kind(flags & 0x7)
		if kind >= numKinds {
			return nil, fmt.Errorf("trace: record %d: invalid kind %d", i, kind)
		}
		pcDelta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d pc: %w", i, err)
		}
		tgtDelta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d target: %w", i, err)
		}
		rec := Record{
			Kind:   kind,
			Taken:  flags&(1<<3) != 0,
			Kernel: flags&(1<<4) != 0,
		}
		rec.PC = uint64(int64(prevPC) + unzigzag(pcDelta))
		rec.Target = uint64(int64(rec.PC) + unzigzag(tgtDelta))
		if flags&(1<<5) != 0 {
			rec.PID, rec.Program = prevPID, prevProg
		} else {
			pid, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: record %d pid: %w", i, err)
			}
			prog, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: record %d program: %w", i, err)
			}
			if pid > 0xffffffff || prog > 0xffff {
				return nil, fmt.Errorf("trace: record %d: pid/program out of range", i)
			}
			rec.PID, rec.Program = uint32(pid), uint16(prog)
		}
		prevPC, prevPID, prevProg = rec.PC, rec.PID, rec.Program
		t.Records = append(t.Records, rec)
	}
	return t, nil
}
