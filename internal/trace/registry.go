// Runtime workload registry: spec-driven workloads register a Synth
// here under their content-hashed name, and everything that resolves
// workloads by name (tracestore.PresetGen/PresetProfile, and through
// them every backend, the disk/mmap tiers, and trace-major grouping)
// consults the registry before the static preset table. Registration
// is process-local; coordinators forward spec documents to exec
// workers (argv) and remote workers (welcome frame) so both sides
// resolve the same names to the same byte streams.

package trace

import (
	"fmt"
	"sort"
	"sync"
)

// Synth is a dynamically registered workload generator. Both functions
// must be deterministic pure functions of (registered name, records):
// caches regenerate entries under pressure and across processes, and
// replay results must not depend on which copy a cell observed.
type Synth struct {
	// Profile derives the workload's metadata profile (name, record
	// count, process count, token policy) without generating records.
	Profile func(records int) (Profile, error)
	// Generate materializes the trace at the given record budget.
	Generate func(records int) (*Trace, error)
	// GenerateColumns, when non-nil, materializes the same byte stream
	// directly in columnar form; caches prefer it to Generate+FromTrace.
	GenerateColumns func(records int) (*Columns, error)
}

var (
	synthMu sync.RWMutex
	synths  = map[string]Synth{}
)

// RegisterSynth installs a synth under name. Re-registering an existing
// name is allowed and replaces the entry: spec workload names embed a
// content hash, so a name collision implies an identical generator.
// It returns an error if the synth is incomplete or the name would
// shadow a static preset.
func RegisterSynth(name string, s Synth) error {
	if name == "" {
		return fmt.Errorf("trace: RegisterSynth with empty name")
	}
	if s.Profile == nil || s.Generate == nil {
		return fmt.Errorf("trace: RegisterSynth %q: nil Profile or Generate", name)
	}
	if _, err := Preset(name); err == nil {
		return fmt.Errorf("trace: RegisterSynth %q would shadow a preset", name)
	}
	synthMu.Lock()
	defer synthMu.Unlock()
	synths[name] = s
	return nil
}

// LookupSynth returns the registered synth for name, if any.
func LookupSynth(name string) (Synth, bool) {
	synthMu.RLock()
	defer synthMu.RUnlock()
	s, ok := synths[name]
	return s, ok
}

// SynthNames returns all registered synth names, sorted.
func SynthNames() []string {
	synthMu.RLock()
	defer synthMu.RUnlock()
	names := make([]string, 0, len(synths))
	for n := range synths {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
