package spec

// The statistical validation harness: property tests that generated
// traces actually exhibit the statistics their spec declares, measured
// across many independent instance seeds (>= 20 per fixture, the
// acceptance floor). Two rigor tiers:
//
//   - Exact hypothesis tests where the null is exact: with a fixed
//     arrival of mean 1 the generator draws a fresh weight-proportional
//     tenant for every record, so per-record owner counts are iid
//     categorical and chi-square goodness-of-fit p-values apply
//     directly (TestSpecExactTenantChiSquare).
//
//   - Tolerance checks where the null is only asymptotic: record-level
//     tenant shares, visible switch cadence, burst densification, and
//     mix overrides have entry-segment and renewal-approximation bias,
//     so the assertions use tolerances derived from the known segment
//     counts instead of p-values (TestSpecStatisticalValidation).
//
// Every trace instance is deterministic in (spec, seed), so these
// tests cannot flake: a failure means the generator's statistics
// moved, not luck.

import (
	"math"
	"testing"

	"stbpu/internal/stats"
	"stbpu/internal/trace"
)

const validationSeeds = 24

// phaseObs accumulates per-phase observations across seeds.
type phaseObs struct {
	counts    []int // records per tenant
	switches  int   // visible PID changes
	inBurst   int   // visible switches inside burst windows
	outBurst  int
	userConds int       // non-kernel conditional records
	userTotal int       // non-kernel records
	intervals []float64 // visible inter-switch gaps, in records
}

// observe scans one generated trace into per-phase observations.
func observe(t *testing.T, s *Spec, records int, seed uint64, obs []*phaseObs) {
	t.Helper()
	tr, err := s.Generate(records, seed)
	if err != nil {
		t.Fatal(err)
	}
	bounds := s.Boundaries(records)
	for pi := range s.Phases {
		o := obs[pi]
		lo, hi := bounds[pi], bounds[pi+1]
		ph := &s.Phases[pi]
		lastSwitch := -1
		for i := lo; i < hi; i++ {
			rec := tr.Records[i]
			o.counts[int(rec.PID)-1]++
			if !rec.Kernel {
				o.userTotal++
				if rec.Kind == trace.KindCond {
					o.userConds++
				}
			}
			if i > lo && rec.PID != tr.Records[i-1].PID {
				o.switches++
				if lastSwitch >= 0 {
					o.intervals = append(o.intervals, float64(i-lastSwitch))
				}
				lastSwitch = i
				if ph.Burst != nil {
					if (i-lo)%ph.Burst.Period < ph.Burst.Len {
						o.inBurst++
					} else {
						o.outBurst++
					}
				}
			}
		}
	}
}

// expectedVisibleSwitches predicts a phase's visible PID changes.
// Base rate: draws ~ n*rampAvg/mean, each changing the tenant with
// probability 1 - sum(w_i^2). Bursts need an alternating-renewal
// correction, because the load multiplier is sampled at segment start,
// not continuously: an interval drawn outside the window (mean can
// exceed the window length) often skips the window entirely. Per
// period, outside draws ~ (period-len)/meanOut, entries into the
// window ~ len/meanOut, and each entry cascades ~ 1 + (len/2)/meanIn
// further dense draws before escaping.
func expectedVisibleSwitches(s *Spec, pi, n int) float64 {
	ph := &s.Phases[pi]
	rampAvg := 1.0
	if ph.Ramp != nil {
		rampAvg = (ph.Ramp.From + ph.Ramp.To) / 2
	}
	draws := float64(n) * rampAvg / ph.Switch.Mean
	if b := ph.Burst; b != nil {
		meanOut := ph.Switch.Mean / rampAvg
		meanIn := meanOut / b.Factor
		length := float64(b.Len)
		outside := (float64(b.Period) - length) / meanOut
		inside := (length / meanOut) * (1 + length/2/meanIn)
		draws = float64(n) / float64(b.Period) * (outside + inside)
	}
	pChange := 1.0
	for _, w := range s.PhaseWeights(pi) {
		pChange -= w * w
	}
	return draws * pChange
}

// TestSpecStatisticalValidation generates every built-in fixture
// across validationSeeds independent seeds and checks each phase's
// observed statistics against the spec's declared structure.
func TestSpecStatisticalValidation(t *testing.T) {
	mult := 3 // record multiplier: more records -> tighter tolerances
	if testing.Short() {
		mult = 2
	}
	for _, s := range Builtin() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			records := s.TotalRecords() * mult
			bounds := s.Boundaries(records)
			obs := make([]*phaseObs, len(s.Phases))
			for pi := range obs {
				obs[pi] = &phaseObs{counts: make([]int, len(s.Tenants))}
			}
			for seed := uint64(1); seed <= validationSeeds; seed++ {
				observe(t, s, records, seed, obs)
			}

			for pi := range s.Phases {
				ph := &s.Phases[pi]
				o := obs[pi]
				n := bounds[pi+1] - bounds[pi]
				weights := s.PhaseWeights(pi)

				// Tenant record shares: expected share equals the
				// normalized weight (self-draws permitted, so segment
				// owners are iid weight-categorical). Tolerance = the
				// phase-entry segment bias (one segment per seed owned
				// by the previous phase's distribution, ~mean/n of the
				// phase) + 4 sigma of the share estimator, whose
				// effective sample count is the number of scheduling
				// segments, not records (segment lengths have CV ~ 1,
				// hence the factor 2 in the variance).
				total := 0
				for _, c := range o.counts {
					total += c
				}
				segs := float64(validationSeeds*n) / ph.Switch.Mean
				entry := ph.Switch.Mean / float64(n)
				for ti, w := range weights {
					share := float64(o.counts[ti]) / float64(total)
					sigma := math.Sqrt(2 * w * (1 - w) / segs)
					tol := entry + 4*sigma + 0.005
					if math.Abs(share-w) > tol {
						t.Errorf("phase %q tenant %q share %.4f, want %.4f +- %.4f",
							ph.Name, s.Tenants[ti].Name, share, w, tol)
					}
				}

				// Switch cadence: visible switches track the declared
				// arrival mean, ramp, and burst modifiers. The renewal
				// prediction is approximate (interval rounding, load
				// lag), so the band is wide — but still far tighter
				// than any modifier being dropped (a missing burst
				// factor alone shifts the count ~2.8x).
				want := expectedVisibleSwitches(s, pi, n) * validationSeeds
				got := float64(o.switches)
				if got < 0.70*want || got > 1.30*want {
					t.Errorf("phase %q visible switches %d, want ~%.0f (+-30%%)",
						ph.Name, o.switches, want)
				}

				// Distribution moments: the mean visible inter-switch
				// gap is the per-record switch rate inverted. Only
				// meaningful with plenty of gaps per phase window: the
				// final in-progress gap is dropped at the boundary,
				// and dropped gaps are length-biased, so sparse phases
				// (skewed weights -> long dwells, e.g. burst/drain)
				// would read biased-short.
				if len(o.intervals) > 50 && want >= 20*validationSeeds {
					wantGap := float64(n) * float64(validationSeeds) / want
					if m := stats.Mean(o.intervals); math.Abs(m-wantGap) > 0.30*wantGap {
						t.Errorf("phase %q mean switch gap %.0f, want ~%.0f (+-30%%)",
							ph.Name, m, wantGap)
					}
				}

				// Burst densification: switch density inside burst
				// windows must far exceed the density outside.
				if ph.Burst != nil {
					inLen := float64(ph.Burst.Len) / float64(ph.Burst.Period)
					din := float64(o.inBurst) / (float64(n) * inLen)
					dout := float64(o.outBurst) / (float64(n) * (1 - inLen))
					if dout <= 0 || din/dout < 3 {
						t.Errorf("phase %q burst density ratio %.2f, want > 3 (factor %v)",
							ph.Name, din/dout, ph.Burst.Factor)
					}
				}

				// Mix override: the user-mode conditional fraction
				// tracks the declared override.
				if ph.Mix != nil && o.userTotal > 0 {
					frac := float64(o.userConds) / float64(o.userTotal)
					if math.Abs(frac-ph.Mix.Cond) > 0.06 {
						t.Errorf("phase %q cond fraction %.3f, want %.3f +- 0.06",
							ph.Name, frac, ph.Mix.Cond)
					}
				}
			}
		})
	}
}

// TestSpecExactTenantChiSquare runs a real goodness-of-fit hypothesis
// test with an exact null: a fixed arrival of mean 1 redraws the
// tenant weight-proportionally before every record, so every record
// after the first is an iid categorical sample. Per-seed chi-square
// p-values must behave like p-values (no catastrophic rejections, few
// small ones), and the seed-aggregated counts must accept.
func TestSpecExactTenantChiSquare(t *testing.T) {
	s := &Spec{
		Name: "chisq",
		Tenants: []Tenant{
			{Name: "a", Preset: "505.mcf", Weight: 5},
			{Name: "b", Preset: "505.mcf", Weight: 3},
			{Name: "c", Preset: "505.mcf", Weight: 2},
		},
		Phases: []Phase{
			{Name: "p", Records: 20_000, Switch: Arrival{Model: "fixed", Mean: 1}},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	probs := []float64{0.5, 0.3, 0.2}

	agg := make([]int, 3)
	small := 0
	for seed := uint64(1); seed <= validationSeeds; seed++ {
		tr, err := s.Generate(0, seed)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, 3)
		for _, rec := range tr.Records[1:] { // record 0 is the fixed entry tenant
			counts[int(rec.PID)-1]++
			agg[int(rec.PID)-1]++
		}
		stat, p, err := stats.ChiSquareGOF(counts, probs)
		if err != nil {
			t.Fatal(err)
		}
		if p < 1e-6 {
			t.Errorf("seed %d: chi-square catastrophically rejects: stat=%.2f p=%.3g counts=%v",
				seed, stat, p, counts)
		}
		if p < 0.05 {
			small++
		}
	}
	// With 24 true-null tests, P(>6 of them below 0.05) < 1e-4.
	if small > 6 {
		t.Errorf("%d/%d seeds rejected at 0.05 — shares are off, not unlucky", small, validationSeeds)
	}
	stat, p, err := stats.ChiSquareGOF(agg, probs)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Errorf("aggregated counts reject: stat=%.2f p=%.3g counts=%v", stat, p, agg)
	}
}
