// Package spec implements declarative, phase-structured workload
// specifications: JSON documents that compile onto the phased trace
// generator (internal/trace/phased.go). A spec names its tenants (each
// backed by a preset behaviour profile, optionally sharing program
// images) and an ordered list of phases (record budgets, per-tenant
// rate weights, arrival models, mix overrides, drift, ramp and burst
// modifiers). Registered specs become ordinary named workloads: the
// workload name embeds a content hash of the canonical document, so
// the (name, records) tracestore key fully determines the byte stream
// and every cache tier, backend, and resume path applies unchanged.
//
// The module has no YAML dependency, so specs are JSON only; parsing
// is strict (unknown fields are errors) to keep documents portable
// across coordinator and worker processes.
package spec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"sync"

	"stbpu/internal/trace"
)

// WorkloadPrefix starts every spec-derived workload name.
const WorkloadPrefix = "spec:"

// Limits on document shape, enforced before any proportional
// allocation so hostile inputs fail fast instead of ballooning.
const (
	MaxTenants      = 64
	MaxPhases       = 64
	MaxTotalRecords = 1 << 30
)

// Tenant is one scheduled entity of a workload spec.
type Tenant struct {
	// Name labels the tenant; it defaults the image key.
	Name string `json:"name"`
	// Preset names the trace preset supplying the tenant's behaviour
	// profile ("505.mcf", "apache2_prefork_c64", or a gem5 short name).
	Preset string `json:"preset"`
	// Image groups tenants onto shared program images: tenants with
	// equal image keys run the same static code. Empty means the
	// tenant's own name (a distinct image).
	Image string `json:"image,omitempty"`
	// Weight is the tenant's default rate share (phases may override).
	// All-zero weights fall back to RateSkew-shaped Zipf shares.
	Weight float64 `json:"weight,omitempty"`
}

// Arrival is the JSON form of an inter-switch arrival model.
type Arrival struct {
	// Model is one of "fixed", "geometric", "gamma", "weibull".
	Model string `json:"model"`
	// Mean is the mean inter-switch interval in records.
	Mean float64 `json:"mean"`
	// Shape parameterizes gamma/weibull.
	Shape float64 `json:"shape,omitempty"`
}

// Mix is the JSON form of a dynamic branch-mix override.
type Mix struct {
	Cond     float64 `json:"cond"`
	Jump     float64 `json:"jump,omitempty"`
	Call     float64 `json:"call,omitempty"`
	Indirect float64 `json:"indirect,omitempty"`
}

// Ramp linearly sweeps the switch-density multiplier across a phase.
type Ramp struct {
	From float64 `json:"from"`
	To   float64 `json:"to"`
}

// Burst periodically densifies switching: every Period records the
// first Len records switch Factor times denser.
type Burst struct {
	Period int     `json:"period"`
	Len    int     `json:"len"`
	Factor float64 `json:"factor"`
}

// Phase is one phase of a workload spec.
type Phase struct {
	Name    string    `json:"name"`
	Records int       `json:"records"`
	Switch  Arrival   `json:"switch"`
	Weights []float64 `json:"weights,omitempty"`
	Mix     *Mix      `json:"mix,omitempty"`
	Drift   float64   `json:"drift,omitempty"`
	Ramp    *Ramp     `json:"ramp,omitempty"`
	Burst   *Burst    `json:"burst,omitempty"`
}

// Spec is a complete declarative workload description.
type Spec struct {
	// Name labels the workload; the registered workload name is
	// "spec:<name>@<hash>" where hash covers the canonical document.
	Name string `json:"name"`
	// SharedTokens tells STBPU models the OS assigned one secret token
	// per program rather than per process (paper §IV-A).
	SharedTokens bool `json:"shared_tokens,omitempty"`
	// RateSkew shapes default tenant weights as Zipf(rank, RateSkew)
	// when no tenant declares an explicit weight. Zero means equal.
	RateSkew float64  `json:"rate_skew,omitempty"`
	Tenants  []Tenant `json:"tenants"`
	Phases   []Phase  `json:"phases"`
}

// Parse strictly decodes and validates a spec document.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: %v", err)
	}
	// A second document after the first is a malformed input, not
	// trailing whitespace.
	if dec.More() {
		return nil, fmt.Errorf("spec: trailing data after document")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile reads and parses a spec document from disk.
func LoadFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %v", err)
	}
	return Parse(data)
}

func validName(s string) bool {
	if s == "" || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

// Validate checks the document against the schema limits. Every
// numeric comparison is phrased so NaN fails it.
func (s *Spec) Validate() error {
	if !validName(s.Name) {
		return fmt.Errorf("spec: name %q must be 1-64 chars of [A-Za-z0-9._-]", s.Name)
	}
	if len(s.Tenants) < 1 || len(s.Tenants) > MaxTenants {
		return fmt.Errorf("spec %q: %d tenants out of [1, %d]", s.Name, len(s.Tenants), MaxTenants)
	}
	if len(s.Phases) < 1 || len(s.Phases) > MaxPhases {
		return fmt.Errorf("spec %q: %d phases out of [1, %d]", s.Name, len(s.Phases), MaxPhases)
	}
	if !(s.RateSkew >= 0 && s.RateSkew <= 4) {
		return fmt.Errorf("spec %q: rate_skew %v out of [0, 4]", s.Name, s.RateSkew)
	}
	seen := map[string]bool{}
	weightSum := 0.0
	for i := range s.Tenants {
		t := &s.Tenants[i]
		if !validName(t.Name) {
			return fmt.Errorf("spec %q: tenant %d name %q invalid", s.Name, i, t.Name)
		}
		if seen[t.Name] {
			return fmt.Errorf("spec %q: duplicate tenant %q", s.Name, t.Name)
		}
		seen[t.Name] = true
		if _, err := trace.Preset(t.Preset); err != nil {
			return fmt.Errorf("spec %q: tenant %q: %v", s.Name, t.Name, err)
		}
		if t.Image != "" && !validName(t.Image) {
			return fmt.Errorf("spec %q: tenant %q image %q invalid", s.Name, t.Name, t.Image)
		}
		if !(t.Weight >= 0 && t.Weight <= 1e6) {
			return fmt.Errorf("spec %q: tenant %q weight %v out of [0, 1e6]", s.Name, t.Name, t.Weight)
		}
		weightSum += t.Weight
	}
	hasExplicit := weightSum > 0
	for i := range s.Tenants {
		if hasExplicit && !(s.Tenants[i].Weight > 0) {
			return fmt.Errorf("spec %q: tenant %q needs a positive weight (mixing explicit and zero weights is ambiguous)",
				s.Name, s.Tenants[i].Name)
		}
	}
	total := 0
	phaseNames := map[string]bool{}
	for i := range s.Phases {
		ph := &s.Phases[i]
		if !validName(ph.Name) {
			return fmt.Errorf("spec %q: phase %d name %q invalid", s.Name, i, ph.Name)
		}
		if phaseNames[ph.Name] {
			return fmt.Errorf("spec %q: duplicate phase %q", s.Name, ph.Name)
		}
		phaseNames[ph.Name] = true
		if ph.Records < 1 {
			return fmt.Errorf("spec %q: phase %q records %d must be positive", s.Name, ph.Name, ph.Records)
		}
		total += ph.Records
		if total > MaxTotalRecords {
			return fmt.Errorf("spec %q: total records exceed %d", s.Name, MaxTotalRecords)
		}
		// Explicit non-finite scan: JSON cannot encode NaN/Inf, but a
		// programmatically built spec could carry one, and everything
		// downstream (canonical marshal included) assumes finite
		// floats.
		floats := []float64{ph.Switch.Mean, ph.Switch.Shape, ph.Drift}
		floats = append(floats, ph.Weights...)
		if ph.Mix != nil {
			floats = append(floats, ph.Mix.Cond, ph.Mix.Jump, ph.Mix.Call, ph.Mix.Indirect)
		}
		if ph.Ramp != nil {
			floats = append(floats, ph.Ramp.From, ph.Ramp.To)
		}
		if ph.Burst != nil {
			floats = append(floats, ph.Burst.Factor)
		}
		for _, f := range floats {
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return fmt.Errorf("spec %q: phase %q: non-finite parameter %v", s.Name, ph.Name, f)
			}
		}
	}
	// Compile-level checks (arrivals, weights, mixes, ramps, bursts)
	// run on the trace-level representation so the two layers cannot
	// drift apart. The placeholder name avoids hashing an unvalidated
	// document.
	pp, err := s.phasedNamed("validate", 0)
	if err != nil {
		return err
	}
	return pp.Validate()
}

// arrivalKind maps the JSON model name to the trace-level kind.
func arrivalKind(model string) (trace.ArrivalKind, error) {
	switch model {
	case "geometric", "":
		return trace.ArrivalGeometric, nil
	case "fixed":
		return trace.ArrivalFixed, nil
	case "gamma":
		return trace.ArrivalGamma, nil
	case "weibull":
		return trace.ArrivalWeibull, nil
	}
	return 0, fmt.Errorf("unknown arrival model %q", model)
}

// DefaultWeights returns the spec's tenant rate shares outside any
// phase override: explicit weights when any tenant sets one, else
// Zipf(rank, RateSkew) shares (equal when RateSkew is zero). The
// result is normalized to sum to 1.
func (s *Spec) DefaultWeights() []float64 {
	w := make([]float64, len(s.Tenants))
	explicit := false
	for i := range s.Tenants {
		if s.Tenants[i].Weight > 0 {
			explicit = true
		}
	}
	sum := 0.0
	for i := range s.Tenants {
		if explicit {
			w[i] = s.Tenants[i].Weight
		} else {
			w[i] = 1 / math.Pow(float64(i+1), s.RateSkew)
		}
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// PhaseWeights returns phase pi's normalized tenant rate shares.
func (s *Spec) PhaseWeights(pi int) []float64 {
	ph := &s.Phases[pi]
	if len(ph.Weights) != len(s.Tenants) {
		return s.DefaultWeights()
	}
	w := make([]float64, len(ph.Weights))
	sum := 0.0
	for i, v := range ph.Weights {
		w[i] = v
		sum += v
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// phased compiles the spec to the trace-level phased profile, using
// the content-hashed workload name (which seeds generation). Record
// rescaling happens at generation time (trace.GeneratePhased).
func (s *Spec) phased(seed uint64) (trace.PhasedProfile, error) {
	return s.phasedNamed(s.WorkloadName(), seed)
}

// phasedNamed is phased with an explicit trace name; Validate uses a
// placeholder so compilation checks never hash an unvalidated spec.
func (s *Spec) phasedNamed(name string, seed uint64) (trace.PhasedProfile, error) {
	pp := trace.PhasedProfile{Name: name, Seed: seed}
	imageIdx := map[string]int{}
	for i := range s.Tenants {
		t := &s.Tenants[i]
		prof, err := trace.Preset(t.Preset)
		if err != nil {
			return trace.PhasedProfile{}, fmt.Errorf("spec %q: tenant %q: %v", s.Name, t.Name, err)
		}
		imageKey := t.Image
		if imageKey == "" {
			imageKey = t.Name
		}
		idx, ok := imageIdx[imageKey]
		if !ok {
			idx = len(imageIdx)
			imageIdx[imageKey] = idx
		}
		pp.Tenants = append(pp.Tenants, trace.TenantSpec{Name: t.Name, Profile: prof, Image: idx})
	}
	defaults := s.DefaultWeights()
	for i := range s.Phases {
		ph := &s.Phases[i]
		kind, err := arrivalKind(ph.Switch.Model)
		if err != nil {
			return trace.PhasedProfile{}, fmt.Errorf("spec %q: phase %q: %v", s.Name, ph.Name, err)
		}
		def := trace.PhaseDef{
			Name:    ph.Name,
			Records: ph.Records,
			Switch:  trace.Arrival{Kind: kind, Mean: ph.Switch.Mean, Shape: ph.Switch.Shape},
			Drift:   ph.Drift,
		}
		if len(ph.Weights) != 0 {
			if len(ph.Weights) != len(s.Tenants) {
				return trace.PhasedProfile{}, fmt.Errorf("spec %q: phase %q: %d weights for %d tenants",
					s.Name, ph.Name, len(ph.Weights), len(s.Tenants))
			}
			def.Weights = append([]float64(nil), ph.Weights...)
		} else {
			def.Weights = append([]float64(nil), defaults...)
		}
		if ph.Mix != nil {
			def.Mix = &trace.DynMix{Cond: ph.Mix.Cond, Jump: ph.Mix.Jump, Call: ph.Mix.Call, Indirect: ph.Mix.Indirect}
		}
		if ph.Ramp != nil {
			def.RampFrom, def.RampTo = ph.Ramp.From, ph.Ramp.To
		}
		if ph.Burst != nil {
			def.Burst = &trace.BurstDef{Period: ph.Burst.Period, Len: ph.Burst.Len, Factor: ph.Burst.Factor}
		}
		pp.Phases = append(pp.Phases, def)
	}
	return pp, nil
}

// Canonical returns the canonical serialization: the Go struct
// marshaled with fixed field order. Parse(Canonical()) reproduces an
// identical document, which the fuzz harness enforces.
func (s *Spec) Canonical() []byte {
	data, err := json.Marshal(s)
	if err != nil {
		// Spec structs contain only marshalable fields; Validate has
		// already rejected NaN/Inf values, the one marshal error class.
		panic(fmt.Sprintf("spec: canonical marshal: %v", err))
	}
	return data
}

// Hash returns the content hash of the canonical document (first 8
// bytes of SHA-256, hex).
func (s *Spec) Hash() string {
	sum := sha256.Sum256(s.Canonical())
	return hex.EncodeToString(sum[:8])
}

// WorkloadName returns the registered workload name. It embeds the
// content hash, so two specs share a name only when they are
// byte-identical in canonical form — the property that makes the
// (name, records) tracestore key safe across processes and disk
// spills.
func (s *Spec) WorkloadName() string {
	return WorkloadPrefix + s.Name + "@" + s.Hash()
}

// TotalRecords sums the phase budgets.
func (s *Spec) TotalRecords() int {
	total := 0
	for i := range s.Phases {
		total += s.Phases[i].Records
	}
	return total
}

// Boundaries rescales the phases onto a records budget (see
// trace.PhaseBoundaries); records <= 0 uses the spec's own total.
func (s *Spec) Boundaries(records int) []int {
	if records <= 0 {
		records = s.TotalRecords()
	}
	pp, err := s.phasedNamed("boundaries", 0)
	if err != nil {
		return make([]int, len(s.Phases)+1)
	}
	return trace.PhaseBoundaries(pp.Phases, records)
}

// Profile returns the workload's metadata profile: what a cache tier
// needs to describe a decoded spill (name, record budget, process
// count, token policy) without regenerating records. The static-set
// fields are placeholders that keep the profile Validate-clean.
func (s *Spec) Profile(records int) trace.Profile {
	if records <= 0 {
		records = s.TotalRecords()
	}
	return trace.Profile{
		Name:         s.WorkloadName(),
		Records:      records,
		Processes:    len(s.Tenants),
		SharedTokens: s.SharedTokens,
		StaticConds:  1,
	}
}

// Generate materializes the spec's trace at the given record budget
// (<= 0 means the spec total) and instance seed (0 is the canonical
// stream the tracestore caches).
func (s *Spec) Generate(records int, seed uint64) (*trace.Trace, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	pp, err := s.phased(seed)
	if err != nil {
		return nil, err
	}
	return trace.GeneratePhased(pp, records)
}

// GenerateColumns is Generate in the columnar replay representation
// (the form caches store), skipping the intermediate AoS slice.
func (s *Spec) GenerateColumns(records int, seed uint64) (*trace.Columns, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	pp, err := s.phased(seed)
	if err != nil {
		return nil, err
	}
	return trace.GeneratePhasedColumns(pp, records)
}

var (
	regMu      sync.RWMutex
	registered = map[string]*Spec{}
)

// Register validates the spec and installs it as a named workload:
// into the package registry (Lookup/Names) and into the trace synth
// registry, which tracestore's default generator consults, making the
// workload resolvable by every backend and cache tier in this
// process. Registering the same document twice is a no-op; the
// content-hashed name makes collisions between different documents
// impossible.
func Register(s *Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	name := s.WorkloadName()
	regMu.Lock()
	if _, ok := registered[name]; ok {
		regMu.Unlock()
		return nil
	}
	cp := *s
	registered[name] = &cp
	regMu.Unlock()
	return trace.RegisterSynth(name, trace.Synth{
		Profile: func(records int) (trace.Profile, error) {
			return cp.Profile(records), nil
		},
		Generate: func(records int) (*trace.Trace, error) {
			return cp.Generate(records, 0)
		},
		GenerateColumns: func(records int) (*trace.Columns, error) {
			return cp.GenerateColumns(records, 0)
		},
	})
}

// Lookup returns the registered spec for a workload name.
func Lookup(name string) (*Spec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registered[name]
	return s, ok
}

// Names returns all registered spec workload names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registered))
	for n := range registered {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// IsSpecWorkload reports whether a workload name is spec-derived.
func IsSpecWorkload(name string) bool {
	return strings.HasPrefix(name, WorkloadPrefix)
}
