package spec

import "fmt"

// Builtin returns the built-in workload spec fixtures — the "normal /
// sweep / burst" trio of serverless trace synthesizers, recast as
// branch-record phase structures. They are both the default scenario
// population of the suite's workloads family and the fixtures the
// statistical validation harness measures across many seeds.
func Builtin() []*Spec {
	steady := &Spec{
		Name:     "steady",
		RateSkew: 1.0,
		Tenants: []Tenant{
			{Name: "web", Preset: "apache2_prefork_c64"},
			{Name: "db", Preset: "mysql_64con_50s"},
			{Name: "batch", Preset: "505.mcf"},
		},
		Phases: []Phase{
			{Name: "steady", Records: 30_000,
				Switch: Arrival{Model: "geometric", Mean: 1500}},
		},
	}
	ramp := &Spec{
		Name: "ramp",
		Tenants: []Tenant{
			{Name: "web", Preset: "apache2_prefork_c128", Weight: 3},
			{Name: "db", Preset: "mysql_128con_50s", Weight: 2},
			{Name: "batch", Preset: "557.xz", Weight: 1},
		},
		Phases: []Phase{
			{Name: "warm", Records: 10_000,
				Switch: Arrival{Model: "fixed", Mean: 2500}},
			{Name: "ramp", Records: 20_000,
				Switch: Arrival{Model: "gamma", Mean: 2000, Shape: 2},
				Ramp:   &Ramp{From: 1, To: 6}},
			{Name: "peak", Records: 10_000,
				Switch:  Arrival{Model: "gamma", Mean: 350, Shape: 2},
				Weights: []float64{5, 3, 1},
				Drift:   0.01},
		},
	}
	burst := &Spec{
		Name:         "burst",
		SharedTokens: true,
		Tenants: []Tenant{
			{Name: "worker1", Preset: "apache2_prefork_c256", Image: "httpd", Weight: 3},
			{Name: "worker2", Preset: "apache2_prefork_c256", Image: "httpd", Weight: 3},
			{Name: "browser", Preset: "chrome-1jetstream", Weight: 2},
		},
		Phases: []Phase{
			{Name: "calm", Records: 15_000,
				Switch: Arrival{Model: "weibull", Mean: 1800, Shape: 1.5}},
			{Name: "bursty", Records: 25_000,
				Switch: Arrival{Model: "geometric", Mean: 1500},
				Burst:  &Burst{Period: 5000, Len: 1000, Factor: 10},
				Drift:  0.02,
				Mix:    &Mix{Cond: 0.58, Jump: 0.08, Call: 0.09, Indirect: 0.10}},
			{Name: "drain", Records: 10_000,
				Switch:  Arrival{Model: "fixed", Mean: 2200},
				Weights: []float64{1, 1, 6}},
		},
	}
	return []*Spec{steady, ramp, burst}
}

// RegisterBuiltin installs the built-in fixtures (idempotent). A
// fixture failing validation is a programming error, so it panics.
func RegisterBuiltin() {
	for _, s := range Builtin() {
		if err := Register(s); err != nil {
			panic(fmt.Sprintf("spec: builtin %q: %v", s.Name, err))
		}
	}
}
