package spec

import (
	"math"
	"strings"
	"testing"

	"stbpu/internal/trace"
)

// validDoc is a well-formed document exercising most optional fields.
const validDoc = `{
  "name": "unit",
  "shared_tokens": true,
  "tenants": [
    {"name": "a", "preset": "apache2_prefork_c64", "image": "httpd", "weight": 2},
    {"name": "b", "preset": "apache2_prefork_c64", "image": "httpd", "weight": 1},
    {"name": "c", "preset": "505.mcf", "weight": 1}
  ],
  "phases": [
    {"name": "p0", "records": 4000, "switch": {"model": "weibull", "mean": 900, "shape": 1.5}},
    {"name": "p1", "records": 4000, "switch": {"model": "fixed", "mean": 1100},
     "weights": [1, 1, 4], "drift": 0.05,
     "mix": {"cond": 0.6, "jump": 0.1, "call": 0.08, "indirect": 0.08},
     "ramp": {"from": 1, "to": 3},
     "burst": {"period": 1000, "len": 200, "factor": 5}}
  ]
}`

func TestParseRoundTrip(t *testing.T) {
	s, err := Parse([]byte(validDoc))
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse(s.Canonical())
	if err != nil {
		t.Fatalf("canonical form does not re-parse: %v", err)
	}
	if string(s.Canonical()) != string(again.Canonical()) {
		t.Error("canonical serialization is not a fixed point")
	}
	if s.Hash() != again.Hash() {
		t.Error("hash changed across round trip")
	}
	if want := WorkloadPrefix + "unit@" + s.Hash(); s.WorkloadName() != want {
		t.Errorf("workload name %q, want %q", s.WorkloadName(), want)
	}
	if !IsSpecWorkload(s.WorkloadName()) || IsSpecWorkload("505.mcf") {
		t.Error("IsSpecWorkload misclassifies")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"unknown field", `{"name":"x","bogus":1,"tenants":[{"name":"t","preset":"505.mcf"}],"phases":[{"name":"p","records":100,"switch":{"mean":10}}]}`},
		{"trailing document", validDoc + `{"name":"again"}`},
		{"not json", `{{{`},
		{"empty name", `{"name":"","tenants":[{"name":"t","preset":"505.mcf"}],"phases":[{"name":"p","records":100,"switch":{"mean":10}}]}`},
		{"bad name chars", `{"name":"sp ace","tenants":[{"name":"t","preset":"505.mcf"}],"phases":[{"name":"p","records":100,"switch":{"mean":10}}]}`},
		{"no tenants", `{"name":"x","tenants":[],"phases":[{"name":"p","records":100,"switch":{"mean":10}}]}`},
		{"unknown preset", `{"name":"x","tenants":[{"name":"t","preset":"nope"}],"phases":[{"name":"p","records":100,"switch":{"mean":10}}]}`},
		{"duplicate tenant", `{"name":"x","tenants":[{"name":"t","preset":"505.mcf"},{"name":"t","preset":"505.mcf"}],"phases":[{"name":"p","records":100,"switch":{"mean":10}}]}`},
		{"zero-record phase", `{"name":"x","tenants":[{"name":"t","preset":"505.mcf"}],"phases":[{"name":"p","records":0,"switch":{"mean":10}}]}`},
		{"negative records", `{"name":"x","tenants":[{"name":"t","preset":"505.mcf"}],"phases":[{"name":"p","records":-5,"switch":{"mean":10}}]}`},
		{"negative weight", `{"name":"x","tenants":[{"name":"t","preset":"505.mcf","weight":-1}],"phases":[{"name":"p","records":100,"switch":{"mean":10}}]}`},
		{"duplicate phase", `{"name":"x","tenants":[{"name":"t","preset":"505.mcf"}],"phases":[{"name":"p","records":100,"switch":{"mean":10}},{"name":"p","records":100,"switch":{"mean":10}}]}`},
		{"unknown arrival", `{"name":"x","tenants":[{"name":"t","preset":"505.mcf"}],"phases":[{"name":"p","records":100,"switch":{"model":"pareto","mean":10}}]}`},
		{"arrival mean zero", `{"name":"x","tenants":[{"name":"t","preset":"505.mcf"}],"phases":[{"name":"p","records":100,"switch":{"mean":0}}]}`},
		{"weight arity", `{"name":"x","tenants":[{"name":"t","preset":"505.mcf"}],"phases":[{"name":"p","records":100,"switch":{"mean":10},"weights":[1,2]}]}`},
		{"drift past half", `{"name":"x","tenants":[{"name":"t","preset":"505.mcf"}],"phases":[{"name":"p","records":100,"switch":{"mean":10},"drift":0.9}]}`},
		{"burst factor absurd", `{"name":"x","tenants":[{"name":"t","preset":"505.mcf"}],"phases":[{"name":"p","records":100,"switch":{"mean":10},"burst":{"period":10,"len":2,"factor":9999}}]}`},
		{"mixed explicit and zero weights", `{"name":"x","tenants":[{"name":"t","preset":"505.mcf","weight":1},{"name":"u","preset":"505.mcf"}],"phases":[{"name":"p","records":100,"switch":{"mean":10}}]}`},
	}
	for _, tc := range cases {
		if _, err := Parse([]byte(tc.doc)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestValidateRejectsHostileValues covers the inputs JSON cannot
// express but a programmatic caller can: non-finite floats and shape
// limits, which must error (never panic or balloon).
func TestValidateRejectsHostileValues(t *testing.T) {
	base := func() *Spec {
		s, err := Parse([]byte(validDoc))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"nan tenant weight", func(s *Spec) { s.Tenants[0].Weight = math.NaN() }},
		{"inf phase weight", func(s *Spec) { s.Phases[1].Weights[0] = math.Inf(1) }},
		{"nan drift", func(s *Spec) { s.Phases[0].Drift = math.NaN() }},
		{"nan arrival mean", func(s *Spec) { s.Phases[0].Switch.Mean = math.NaN() }},
		{"nan rate skew", func(s *Spec) { s.RateSkew = math.NaN() }},
		{"nan mix", func(s *Spec) { s.Phases[1].Mix.Cond = math.NaN() }},
		{"inf ramp", func(s *Spec) { s.Phases[1].Ramp.To = math.Inf(1) }},
		{"nan burst factor", func(s *Spec) { s.Phases[1].Burst.Factor = math.NaN() }},
		{"absurd tenant count", func(s *Spec) {
			s.Tenants = s.Tenants[:1]
			for i := 0; i < MaxTenants+1; i++ {
				tn := s.Tenants[0]
				tn.Name = tn.Name + "-" + strings.Repeat("x", i%8) // distinct-ish names
				s.Tenants = append(s.Tenants, tn)
			}
		}},
		{"absurd record total", func(s *Spec) { s.Phases[0].Records = MaxTotalRecords }},
	}
	for _, tc := range cases {
		s := base()
		tc.mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestDefaultWeights(t *testing.T) {
	s, err := Parse([]byte(validDoc))
	if err != nil {
		t.Fatal(err)
	}
	w := s.DefaultWeights()
	if len(w) != 3 || math.Abs(w[0]-0.5) > 1e-12 || math.Abs(w[1]-0.25) > 1e-12 {
		t.Errorf("explicit weights not normalized: %v", w)
	}
	// No explicit weights: Zipf(rank, skew).
	z := &Spec{Name: "z", RateSkew: 1,
		Tenants: []Tenant{{Name: "a", Preset: "505.mcf"}, {Name: "b", Preset: "505.mcf"}},
		Phases:  []Phase{{Name: "p", Records: 100, Switch: Arrival{Mean: 10}}}}
	if err := z.Validate(); err != nil {
		t.Fatal(err)
	}
	zw := z.DefaultWeights()
	if math.Abs(zw[0]-2.0/3.0) > 1e-12 || math.Abs(zw[1]-1.0/3.0) > 1e-12 {
		t.Errorf("zipf weights wrong: %v", zw)
	}
	// Phase override normalizes too.
	pw := s.PhaseWeights(1)
	if math.Abs(pw[2]-4.0/6.0) > 1e-12 {
		t.Errorf("phase weights wrong: %v", pw)
	}
}

func TestBoundariesAndTotals(t *testing.T) {
	s, err := Parse([]byte(validDoc))
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalRecords() != 8000 {
		t.Errorf("total %d", s.TotalRecords())
	}
	b := s.Boundaries(0)
	if len(b) != 3 || b[0] != 0 || b[1] != 4000 || b[2] != 8000 {
		t.Errorf("own-total boundaries %v", b)
	}
	b = s.Boundaries(1000)
	if b[2] != 1000 || b[1] != 500 {
		t.Errorf("rescaled boundaries %v", b)
	}
}

func TestRegisterResolvesThroughSynthRegistry(t *testing.T) {
	s, err := Parse([]byte(validDoc))
	if err != nil {
		t.Fatal(err)
	}
	if err := Register(s); err != nil {
		t.Fatal(err)
	}
	if err := Register(s); err != nil {
		t.Fatalf("re-register not idempotent: %v", err)
	}
	name := s.WorkloadName()
	if got, ok := Lookup(name); !ok || got.Name != s.Name {
		t.Fatalf("Lookup(%q) = %v, %v", name, got, ok)
	}
	found := false
	for _, n := range Names() {
		if n == name {
			found = true
		}
	}
	if !found {
		t.Errorf("Names() missing %q", name)
	}
	// The trace synth registry is what tracestore consults.
	synth, ok := trace.LookupSynth(name)
	if !ok {
		t.Fatalf("LookupSynth(%q) missed", name)
	}
	prof, err := synth.Profile(0)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Name != name || prof.Records != 8000 || !prof.SharedTokens {
		t.Errorf("synth profile %+v", prof)
	}
	tr, err := synth.Generate(2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 2000 || tr.Name != name {
		t.Errorf("synth trace %q with %d records", tr.Name, len(tr.Records))
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("synth trace invalid: %v", err)
	}
}

func TestGenerateDeterministicAcrossCalls(t *testing.T) {
	s, err := Parse([]byte(validDoc))
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Generate(3000, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Generate(3000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatal("lengths differ")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	c, err := s.Generate(3000, 99)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Records {
		if a.Records[i] != c.Records[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("distinct seeds generated identical traces")
	}
}

func TestBuiltinFixturesRegisterAndGenerate(t *testing.T) {
	RegisterBuiltin()
	RegisterBuiltin() // idempotent
	for _, s := range Builtin() {
		if _, ok := Lookup(s.WorkloadName()); !ok {
			t.Errorf("builtin %q not registered", s.Name)
		}
		tr, err := s.Generate(5000, 0)
		if err != nil {
			t.Errorf("builtin %q: %v", s.Name, err)
			continue
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("builtin %q trace invalid: %v", s.Name, err)
		}
	}
}
