package spec

import (
	"strings"
	"testing"
)

// FuzzSpecRoundTrip is the parser's robustness and stability gate.
// For arbitrary input bytes, Parse must either reject with an error —
// never panic, hang, or balloon (the schema limits bound every
// allocation) — or yield a document whose canonical serialization is a
// fixed point: parse → serialize → parse reproduces the identical
// canonical bytes, hash, and workload name. Accepted documents must
// also actually generate: a validated spec that cannot build its trace
// would poison every cache tier keyed on its name.
func FuzzSpecRoundTrip(f *testing.F) {
	for _, s := range Builtin() {
		f.Add(s.Canonical())
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","tenants":[{"name":"t","preset":"505.mcf"}],"phases":[{"name":"p","records":100,"switch":{"mean":10}}]}`))
	f.Add([]byte(`{"name":"x","tenants":[],"phases":[]}`))
	f.Add([]byte(`{"name":"x","tenants":[{"name":"t","preset":"505.mcf","weight":-1}],"phases":[{"name":"p","records":0,"switch":{"mean":1e400}}]}`))
	f.Add([]byte(`{"name":"x","rate_skew":9,"tenants":[{"name":"t","preset":"nope"}],"phases":[{"name":"p","records":-1,"switch":{"model":"gamma","mean":10}}]}`))
	f.Add([]byte(strings.Repeat(`[`, 1000)))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		canon := s.Canonical()
		again, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\n%s", err, canon)
		}
		canon2 := again.Canonical()
		if string(canon) != string(canon2) {
			t.Fatalf("canonicalization unstable:\n%s\n%s", canon, canon2)
		}
		if s.Hash() != again.Hash() || s.WorkloadName() != again.WorkloadName() {
			t.Fatal("hash or workload name changed across round trip")
		}
		// Schema limits must hold on anything Validate accepted.
		if len(s.Tenants) > MaxTenants || len(s.Phases) > MaxPhases || s.TotalRecords() > MaxTotalRecords {
			t.Fatalf("limits violated: %d tenants, %d phases, %d records",
				len(s.Tenants), len(s.Phases), s.TotalRecords())
		}
		// Accepted specs must generate a structurally valid trace at a
		// small budget (bounded work regardless of the spec's own total).
		tr, err := s.Generate(512, 1)
		if err != nil {
			t.Fatalf("validated spec failed to generate: %v\n%s", err, canon)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("generated trace invalid: %v", err)
		}
	})
}
