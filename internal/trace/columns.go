// Columns: the struct-of-arrays view of a branch trace, the storage and
// replay representation of the columnar pipeline (docs/ARCHITECTURE.md,
// "Trace dataflow"). Replay touches PC/Target/Flags on every record but
// PID/Program only on entity switches, so packing the hot fields into
// dense arrays keeps the replay loop's memory traffic to the bytes it
// actually reads, where a []Record stream drags the full 32-byte struct
// through the cache per record.

package trace

import "fmt"

// Flag bits of one packed per-record flag byte. The layout is shared
// with the STBT codec's record flags (codec.go), so decoding a trace
// into columns copies the flag byte after masking the codec-private
// bits.
const (
	// FlagKindMask extracts the branch Kind from a flag byte.
	FlagKindMask byte = 0x07
	// FlagTaken is set for taken branches.
	FlagTaken byte = 1 << 3
	// FlagKernel is set for records executed in supervisor mode.
	FlagKernel byte = 1 << 4

	// flagRecordMask keeps the bits PackFlags produces; the STBT codec
	// uses higher bits for stream-local state (samePID) that must never
	// leak into stored columns.
	flagRecordMask = FlagKindMask | FlagTaken | FlagKernel
)

// PackFlags packs a record's kind, direction, and mode into one flag
// byte (the Columns.Flags element for that record).
func PackFlags(k Kind, taken, kernel bool) byte {
	f := byte(k)
	if taken {
		f |= FlagTaken
	}
	if kernel {
		f |= FlagKernel
	}
	return f
}

// Columns is a branch trace in struct-of-arrays form: parallel packed
// arrays indexed by record position. PCs, Targets, and Flags are the
// replay-hot columns; PIDs and Programs are the rarely-touched entity
// side arrays (read only on entity switches and by flushing models).
// All six columns always have equal length. A Columns is immutable
// once built and safe to share read-only across cells, exactly like a
// cached *Trace.
type Columns struct {
	// Name is the workload name (preset name for synthetic traces).
	Name string
	// PCs holds the 48-bit branch virtual addresses.
	PCs []uint64
	// Targets holds the resolved targets (fall-through for not-taken
	// conditionals).
	Targets []uint64
	// Flags packs kind/taken/kernel per record (see PackFlags).
	Flags []byte
	// PIDs holds the per-record software entity.
	PIDs []uint32
	// Programs holds the per-record binary identity.
	Programs []uint16

	// parent keeps the Columns a Slice view was cut from reachable.
	// mmap-backed columns (tracestore.SetMapped) unmap their region via
	// a finalizer on the original *Columns; a view that outlived it
	// would read unmapped memory, so every view pins its source.
	parent *Columns
}

// Len reports the number of records.
func (c *Columns) Len() int { return len(c.PCs) }

// Kind extracts record i's branch class.
func (c *Columns) Kind(i int) Kind { return Kind(c.Flags[i] & FlagKindMask) }

// Taken reports record i's resolved direction.
func (c *Columns) Taken(i int) bool { return c.Flags[i]&FlagTaken != 0 }

// Kernel reports whether record i executed in supervisor mode.
func (c *Columns) Kernel(i int) bool { return c.Flags[i]&FlagKernel != 0 }

// Slice returns a read-only view of rows [lo, hi) sharing the backing
// arrays. The view retains a reference to c (see the parent field), so
// slicing an mmap-backed trace is safe; like c itself, the view must be
// treated as immutable. Slice panics when the bounds are out of range,
// matching built-in slice semantics. Views are cheap cursors for phase
// replay — do not store them in byte-budgeted caches, where SizeBytes
// would charge the full backing arrays again.
func (c *Columns) Slice(lo, hi int) *Columns {
	if lo < 0 || hi < lo || hi > c.Len() {
		panic(fmt.Sprintf("trace: Slice bounds [%d:%d) out of range for %d records", lo, hi, c.Len()))
	}
	root := c
	if c.parent != nil {
		root = c.parent // re-slicing a view pins the original owner
	}
	return &Columns{
		Name:     c.Name,
		PCs:      c.PCs[lo:hi:hi],
		Targets:  c.Targets[lo:hi:hi],
		Flags:    c.Flags[lo:hi:hi],
		PIDs:     c.PIDs[lo:hi:hi],
		Programs: c.Programs[lo:hi:hi],
		parent:   root,
	}
}

// Record materializes row i as an AoS Record.
func (c *Columns) Record(i int) Record {
	f := c.Flags[i]
	return Record{
		PC:      c.PCs[i],
		Target:  c.Targets[i],
		PID:     c.PIDs[i],
		Program: c.Programs[i],
		Kind:    Kind(f & FlagKindMask),
		Taken:   f&FlagTaken != 0,
		Kernel:  f&FlagKernel != 0,
	}
}

// FromRecords converts an AoS record slice to columns. The conversion
// is lossless: ToRecords of the result reproduces recs exactly.
func FromRecords(name string, recs []Record) *Columns {
	c := &Columns{
		Name:     name,
		PCs:      make([]uint64, len(recs)),
		Targets:  make([]uint64, len(recs)),
		Flags:    make([]byte, len(recs)),
		PIDs:     make([]uint32, len(recs)),
		Programs: make([]uint16, len(recs)),
	}
	for i := range recs {
		r := &recs[i]
		c.PCs[i] = r.PC
		c.Targets[i] = r.Target
		c.Flags[i] = PackFlags(r.Kind, r.Taken, r.Kernel)
		c.PIDs[i] = r.PID
		c.Programs[i] = r.Program
	}
	return c
}

// FromTrace converts a materialized trace to columns.
func FromTrace(t *Trace) *Columns { return FromRecords(t.Name, t.Records) }

// AppendRecords appends rows [lo,hi) to dst as AoS records and returns
// the extended slice. Replay fallbacks use it to feed chunk-sized
// record batches to models that predate the columnar interface without
// materializing the whole trace.
func (c *Columns) AppendRecords(dst []Record, lo, hi int) []Record {
	for i := lo; i < hi; i++ {
		dst = append(dst, c.Record(i))
	}
	return dst
}

// ToRecords materializes the whole trace as AoS records.
func (c *Columns) ToRecords() []Record {
	return c.AppendRecords(make([]Record, 0, c.Len()), 0, c.Len())
}

// Trace materializes the columns as a Trace (fresh record slice each
// call; callers that need the AoS view repeatedly should cache it, as
// tracestore does).
func (c *Columns) Trace() *Trace { return &Trace{Name: c.Name, Records: c.ToRecords()} }

// SizeBytes reports the exact resident footprint of the columns: the
// capacity of every backing array times its element width, plus the
// name bytes. Byte-budgeted caches use it to charge stored traces for
// what they actually pin in memory.
func (c *Columns) SizeBytes() int64 {
	return int64(cap(c.PCs))*8 +
		int64(cap(c.Targets))*8 +
		int64(cap(c.Flags)) +
		int64(cap(c.PIDs))*4 +
		int64(cap(c.Programs))*2 +
		int64(len(c.Name))
}

// Validate checks the structural invariants Trace.Validate checks,
// plus the columnar ones: equal column lengths and no codec-private
// flag bits.
func (c *Columns) Validate() error {
	n := len(c.PCs)
	if len(c.Targets) != n || len(c.Flags) != n || len(c.PIDs) != n || len(c.Programs) != n {
		return fmt.Errorf("trace %q: ragged columns (%d/%d/%d/%d/%d)",
			c.Name, n, len(c.Targets), len(c.Flags), len(c.PIDs), len(c.Programs))
	}
	for i := 0; i < n; i++ {
		if c.Flags[i]&^flagRecordMask != 0 {
			return fmt.Errorf("trace %q record %d: stray flag bits %#x", c.Name, i, c.Flags[i])
		}
		if c.PCs[i]&^VAMask != 0 {
			return fmt.Errorf("trace %q record %d: PC %#x exceeds 48 bits", c.Name, i, c.PCs[i])
		}
		if c.Targets[i]&^VAMask != 0 {
			return fmt.Errorf("trace %q record %d: target %#x exceeds 48 bits", c.Name, i, c.Targets[i])
		}
		k := Kind(c.Flags[i] & FlagKindMask)
		if k >= numKinds {
			return fmt.Errorf("trace %q record %d: invalid kind %d", c.Name, i, uint8(k))
		}
		if k != KindCond && c.Flags[i]&FlagTaken == 0 {
			return fmt.Errorf("trace %q record %d: unconditional %v marked not-taken", c.Name, i, k)
		}
	}
	return nil
}
