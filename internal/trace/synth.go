package trace

import (
	"fmt"
	"math"
	"math/bits"

	"stbpu/internal/rng"
)

// Profile parameterizes the synthetic workload generator. Every field has a
// physical interpretation documented inline; presets.go instantiates one per
// paper workload.
type Profile struct {
	// Name seeds the generator and labels the trace.
	Name string
	// Records is the number of dynamic branch records to emit.
	Records int

	// Processes is the number of software entities interleaved in the
	// trace. SPEC workloads use 1 (plus kernel activity); servers more.
	Processes int
	// SameProgram marks all processes as instances of one binary (prefork
	// servers, browser renderers): they share static branch sets and may
	// share a secret token under STBPU's selective-sharing policy.
	SameProgram bool
	// SharedTokens tells STBPU-model simulations that the OS assigned one
	// ST per program rather than per process (paper §IV-A).
	SharedTokens bool
	// CtxSwitchMean is the mean number of branches between context
	// switches (0 disables switching). Timer-tick reschedules for SPEC,
	// much denser for servers.
	CtxSwitchMean int
	// SyscallMean is the mean number of user branches between kernel
	// entries; KernelBurstMean is the mean kernel branches per entry.
	SyscallMean     int
	KernelBurstMean int

	// Static working-set sizes (per program).
	StaticConds     int
	StaticIndirects int
	StaticCallees   int
	StaticJumps     int
	KernelConds     int

	// Conditional behaviour mixture. Fractions of the static conditional
	// set; the remainder is plain biased branches.
	HardFrac       float64 // near-random (p in [0.5, 0.7]): mcf, deepsjeng
	PatternFrac    float64 // fixed-period loop branches
	CorrelatedFrac float64 // outcome depends on global history (TAGE food)
	// BiasTakenProb is the skew of the plain biased branches.
	BiasTakenProb float64
	// LoopPeriodMax bounds loop periods (min 2).
	LoopPeriodMax int

	// Indirect branch behaviour.
	IndirectTargetsMax int // fan-out per static indirect branch (min 1)
	IndirectPhaseMean  int // uses before an indirect's mapping drifts

	// CallDepthMax bounds the modelled call stack (RSB pressure comes
	// from depths beyond the 16-entry hardware stack).
	CallDepthMax int

	// HistDepIndirectFrac is the fraction of static indirect branches
	// whose target depends on recent branch outcomes (polymorphic,
	// BHB-predictable at best); the rest are monomorphic with occasional
	// phase drift, as most real indirect call sites are. Zero means the
	// default 0.3.
	HistDepIndirectFrac float64

	// Dynamic mix: probabilities of emitting each class per step.
	// Returns are emitted to unwind the call stack and are implied by
	// CallFrac. The remainder after all fractions is conditional.
	CondFrac     float64
	JumpFrac     float64
	CallFrac     float64
	IndirectFrac float64

	// ZipfSkew sets code locality: the exponent of the Zipf distribution
	// over static branch sites (higher = tighter hot set).
	ZipfSkew float64

	// RegionExp shapes region selection: the next region is
	// int(u^RegionExp · n) for uniform u, so higher values concentrate
	// execution in hot regions (compute-bound loops) while values near 1
	// spread it across the code footprint (servers, browsers). Zero
	// means the default 2.
	RegionExp float64
	// RegionLenMean is the mean slot count of a region (zero = 10).
	RegionLenMean int
	// RegionTripsMean is the mean number of times a region repeats
	// before execution hops elsewhere (zero = 12). Low values model
	// request-processing code that rarely loops; they raise the distinct
	// branch footprint per time window and thus the cost of flushes.
	RegionTripsMean int
}

// Validate checks the profile for generator-breaking parameter errors.
func (p *Profile) Validate() error {
	if p.Records <= 0 {
		return fmt.Errorf("profile %q: Records must be positive", p.Name)
	}
	if p.Processes <= 0 {
		return fmt.Errorf("profile %q: Processes must be positive", p.Name)
	}
	if p.StaticConds <= 0 {
		return fmt.Errorf("profile %q: StaticConds must be positive", p.Name)
	}
	// All comparisons are phrased so that NaN fails them: a NaN fraction
	// would silently poison every downstream probability draw.
	for _, f := range []float64{p.CondFrac, p.JumpFrac, p.CallFrac, p.IndirectFrac} {
		if !(f >= 0 && f <= 1) {
			return fmt.Errorf("profile %q: dynamic-mix fraction %v out of [0,1]", p.Name, f)
		}
	}
	sum := p.CondFrac + p.JumpFrac + p.CallFrac + p.IndirectFrac
	if !(sum <= 1.0001) {
		return fmt.Errorf("profile %q: dynamic mix sums to %v > 1", p.Name, sum)
	}
	for _, f := range []float64{p.HardFrac, p.PatternFrac, p.CorrelatedFrac, p.BiasTakenProb} {
		if !(f >= 0 && f <= 1) {
			return fmt.Errorf("profile %q: fraction %v out of [0,1]", p.Name, f)
		}
	}
	if !(p.HardFrac+p.PatternFrac+p.CorrelatedFrac <= 1.0001) {
		return fmt.Errorf("profile %q: behaviour mixture exceeds 1", p.Name)
	}
	for _, f := range []float64{p.ZipfSkew, p.RegionExp, p.HistDepIndirectFrac} {
		if !(f >= 0) || math.IsInf(f, 1) {
			return fmt.Errorf("profile %q: shape parameter %v out of range", p.Name, f)
		}
	}
	return nil
}

// WithRecords returns a copy of the profile with the record budget replaced;
// experiment harnesses use it to scale runs up or down uniformly.
func (p Profile) WithRecords(n int) Profile {
	p.Records = n
	return p
}

// condKind tags the behaviour model of a static conditional branch.
type condKind uint8

const (
	condBiased condKind = iota
	condLoop
	condCorrelated
	condHard
)

// staticCond is one conditional branch site with its behaviour model.
type staticCond struct {
	pc      uint64
	target  uint64
	kind    condKind
	p       float64 // bias (condBiased, condHard)
	period  int     // condLoop
	taps    uint64  // condCorrelated: parity(ghist&taps)
	flip    bool    // condCorrelated: invert parity
	noise   float64 // condCorrelated: disobedience probability
	counter int     // condLoop: per-site iteration counter
}

// staticIndirect is one indirect jump site with its target set and a phase
// that drifts to force re-learning.
type staticIndirect struct {
	pc      uint64
	targets []uint64
	salt    uint64
	phase   int
	uses    int
	drift   int  // uses until next phase bump
	histDep bool // polymorphic: target keyed by recent outcomes
}

// slot is one position in a region's fixed branch sequence.
type slot struct {
	kind slotKind
	idx  int // index into the program's static arrays
}

type slotKind uint8

const (
	slotCond slotKind = iota
	slotJump
	slotCall
	slotRet
	slotIndirect
)

// region is a fixed mini-sequence of branch sites (a loop body / hot
// trace). Execution repeats a region for several trips before moving on,
// which makes global-history patterns recur — the structure table-based
// history predictors (gshare, TAGE) exploit in real programs.
type region struct {
	seq []slot
}

// program holds the static code layout of one binary.
type program struct {
	conds     []staticCond
	indirects []staticIndirect
	callees   []uint64     // callee entry points
	callSites []uint64     // call instruction addresses
	jumps     []staticCond // unconditional: reuse pc/target fields
	regions   []region
}

// frame is one call-stack entry: where to return to and which callee is
// executing (so the matching return instruction gets a plausible PC).
type frame struct {
	ret    uint64
	callee uint64
}

// procState is the per-process dynamic state.
type procState struct {
	callStack []frame
	prog      int
	region    int
	pos       int
	trips     int
	// kernel-side cursor (kernel bursts resume where this process left
	// off in supervisor code).
	kregion, kpos, ktrips int
}

// Generator produces synthetic traces from a profile. Construct with
// NewGenerator; a Generator is single-goroutine.
type Generator struct {
	p        Profile
	r        *rng.Rand
	programs []*program
	kernel   *program
	procs    []procState
	ghist    uint64 // global outcome history driving correlated behaviour
	// flipProb inverts a conditional's resolved outcome with this
	// probability before it is recorded or pushed to history — the
	// phase-spec "misprediction drift" knob (phased.go). Zero for flat
	// profiles, so preset streams are unchanged.
	flipProb float64
}

// progBase returns the text base address of program i. Bases are 2^37 apart
// so that distinct programs overlap in the low 32 bits — reproducing the
// BTB address-truncation aliasing the paper exploits (§II-B).
func progBase(i int) uint64 {
	return (0x0000_0000_0040_0000 + uint64(i)*0x20_0000_0000) & VAMask
}

// kernelBase is the supervisor text base (high canonical half, truncated to
// the modelled 48 bits).
const kernelBase = uint64(0xffff_8000_0000) & VAMask

// NewGenerator validates the profile and builds the static code layout.
func NewGenerator(p Profile) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{p: p, r: rng.NewFromString(p.Name)}

	numProgs := p.Processes
	if p.SameProgram {
		numProgs = 1
	}
	for i := 0; i < numProgs; i++ {
		g.programs = append(g.programs, g.buildProgram(progBase(i)))
	}
	if p.KernelConds > 0 {
		kp := p
		kp.StaticConds = p.KernelConds
		kp.StaticIndirects = max(1, p.KernelConds/16)
		kp.StaticCallees = max(1, p.KernelConds/8)
		kp.StaticJumps = max(1, p.KernelConds/8)
		kg := &Generator{p: kp, r: g.r}
		g.kernel = kg.buildProgram(kernelBase)
	}
	g.procs = make([]procState, p.Processes)
	for i := range g.procs {
		if p.SameProgram {
			g.procs[i].prog = 0
		} else {
			g.procs[i].prog = i
		}
	}
	return g, nil
}

// buildProgram lays out static branch sites for one binary starting at base.
func (g *Generator) buildProgram(base uint64) *program {
	p := &g.p
	prog := &program{}
	// Sites are spread over a footprint proportional to the working set,
	// 16-byte spaced, and unique: two static branches never share an
	// address (rejection-sampled).
	footprint := uint64(max(p.StaticConds*128, 1<<17))
	nIndirects := max(p.StaticIndirects, 1)
	nCallees := max(p.StaticCallees, 1)
	nJumps := max(p.StaticJumps, 1)
	used := make(map[uint64]struct{}, p.StaticConds+nIndirects+2*nCallees+2*nJumps)
	site := func() uint64 {
		for {
			a := (base + (g.r.Uint64n(footprint) &^ 0xf)) & VAMask
			if _, dup := used[a]; !dup {
				used[a] = struct{}{}
				return a
			}
		}
	}
	prog.conds = make([]staticCond, 0, p.StaticConds)
	for i := 0; i < p.StaticConds; i++ {
		sc := staticCond{pc: site()}
		sc.target = (sc.pc + 8 + g.r.Uint64n(1<<12)&^0x3) & VAMask
		u := g.r.Float64()
		switch {
		case u < p.HardFrac:
			sc.kind = condHard
			sc.p = 0.5 + g.r.Float64()*0.2
		case u < p.HardFrac+p.PatternFrac:
			sc.kind = condLoop
			sc.period = 2 + g.r.Intn(max(p.LoopPeriodMax-1, 1))
		case u < p.HardFrac+p.PatternFrac+p.CorrelatedFrac:
			sc.kind = condCorrelated
			// Real correlated branches depend on 1-3 specific recent
			// outcomes; wide parities would be unlearnable noise.
			for k := 1 + g.r.Intn(3); k > 0; k-- {
				sc.taps |= 1 << uint(g.r.Intn(12))
			}
			sc.flip = g.r.Bool(0.5)
			sc.noise = 0.02
		default:
			sc.kind = condBiased
			sc.p = p.BiasTakenProb
			if g.r.Bool(0.35) { // some branches biased the other way
				sc.p = 1 - sc.p
			}
		}
		prog.conds = append(prog.conds, sc)
	}
	histDepFrac := p.HistDepIndirectFrac
	if histDepFrac == 0 {
		histDepFrac = 0.3
	}
	prog.indirects = make([]staticIndirect, 0, nIndirects)
	for i := 0; i < nIndirects; i++ {
		si := staticIndirect{pc: site(), salt: g.r.Uint64(), histDep: g.r.Bool(histDepFrac)}
		fanout := 1 + g.r.Intn(max(p.IndirectTargetsMax, 1))
		si.targets = make([]uint64, 0, fanout)
		for j := 0; j < fanout; j++ {
			si.targets = append(si.targets, site())
		}
		si.drift = g.drift()
		prog.indirects = append(prog.indirects, si)
	}
	// Direct call sites have one fixed callee each, like real code.
	prog.callees = make([]uint64, 0, nCallees)
	prog.callSites = make([]uint64, 0, nCallees)
	for i := 0; i < nCallees; i++ {
		prog.callees = append(prog.callees, site())
		prog.callSites = append(prog.callSites, site())
	}
	prog.jumps = make([]staticCond, 0, nJumps)
	for i := 0; i < nJumps; i++ {
		pc := site()
		prog.jumps = append(prog.jumps, staticCond{pc: pc, target: site()})
	}
	g.buildRegions(prog)
	return prog
}

// buildRegions carves the static sites into fixed loop bodies. Site
// selection is Zipf-skewed so hot regions share hot branches, giving the
// trace realistic code locality.
func (g *Generator) buildRegions(prog *program) {
	p := &g.p
	nRegions := max(4, p.StaticConds/8)
	condZipf := rng.NewZipf(g.r, len(prog.conds), p.ZipfSkew)
	indZipf := rng.NewZipf(g.r, len(prog.indirects), p.ZipfSkew)
	// Slot-kind mixture from the dynamic mix fractions; rets mirror calls
	// so the stack stays balanced.
	total := p.CondFrac + p.JumpFrac + 2*p.CallFrac + p.IndirectFrac
	lenMean := p.RegionLenMean
	if lenMean == 0 {
		lenMean = 10
	}
	prog.regions = make([]region, 0, nRegions)
	for i := 0; i < nRegions; i++ {
		length := max(3, lenMean/2) + g.r.Intn(lenMean)
		seq := make([]slot, 0, length)
		for j := 0; j < length; j++ {
			u := g.r.Float64() * total
			switch {
			case u < p.CondFrac:
				seq = append(seq, slot{kind: slotCond, idx: condZipf.Next() % len(prog.conds)})
			case u < p.CondFrac+p.JumpFrac:
				seq = append(seq, slot{kind: slotJump, idx: g.r.Intn(len(prog.jumps))})
			case u < p.CondFrac+p.JumpFrac+p.CallFrac:
				seq = append(seq, slot{kind: slotCall, idx: g.r.Intn(len(prog.callSites))})
			case u < p.CondFrac+p.JumpFrac+2*p.CallFrac:
				seq = append(seq, slot{kind: slotRet})
			default:
				seq = append(seq, slot{kind: slotIndirect, idx: indZipf.Next() % len(prog.indirects)})
			}
		}
		prog.regions = append(prog.regions, region{seq: seq})
	}
}

func (g *Generator) drift() int {
	if g.p.IndirectPhaseMean <= 0 {
		return 1 << 30 // effectively never
	}
	return 1 + g.r.Geometric(1/float64(g.p.IndirectPhaseMean), g.p.IndirectPhaseMean*8)
}

// interval samples the branches-until-next-event for a mean; 0 mean means
// the event never fires.
func (g *Generator) interval(mean int) int {
	if mean <= 0 {
		return 1 << 30
	}
	// Exponential-ish via geometric with p = 1/mean.
	return g.r.Geometric(1/float64(mean), mean*8)
}

// Generate materializes the full trace as AoS records. The stream is
// produced columnar (GenerateColumns) and converted, so both views are
// always byte-identical.
func (g *Generator) Generate() *Trace {
	return g.GenerateColumns().Trace()
}

// GenerateColumns materializes the trace directly in the columnar
// replay representation. This is the storage format every consumer
// (tracestore, the disk/mmap tiers, trace-major replay) actually wants,
// so generating into it skips the intermediate 32-byte-per-record AoS
// slice and the conversion pass it used to pay.
func (g *Generator) GenerateColumns() *Columns {
	p := &g.p
	c := &Columns{
		Name:     p.Name,
		PCs:      make([]uint64, 0, p.Records),
		Targets:  make([]uint64, 0, p.Records),
		Flags:    make([]byte, 0, p.Records),
		PIDs:     make([]uint32, 0, p.Records),
		Programs: make([]uint16, 0, p.Records),
	}

	cur := 0 // current process index
	untilCtx := g.interval(p.CtxSwitchMean)
	untilSys := g.interval(p.SyscallMean)
	kernelLeft := 0

	for len(c.PCs) < p.Records {
		proc := &g.procs[cur]
		inKernel := kernelLeft > 0 && g.kernel != nil
		prog := g.programs[proc.prog]
		if inKernel {
			prog = g.kernel
			kernelLeft--
		}

		rec := g.step(prog, proc, inKernel)
		program := uint16(proc.prog)
		if inKernel {
			program = 0xffff // kernel entity
		}
		c.PCs = append(c.PCs, rec.PC)
		c.Targets = append(c.Targets, rec.Target)
		c.Flags = append(c.Flags, PackFlags(rec.Kind, rec.Taken, inKernel))
		c.PIDs = append(c.PIDs, uint32(cur+1))
		c.Programs = append(c.Programs, program)

		untilCtx--
		untilSys--
		if untilSys <= 0 && p.KernelBurstMean > 0 {
			kernelLeft = g.r.Geometric(1/float64(p.KernelBurstMean), p.KernelBurstMean*8)
			untilSys = g.interval(p.SyscallMean)
		}
		if untilCtx <= 0 && p.Processes > 1 {
			cur = (cur + 1 + g.r.Intn(p.Processes-1)) % p.Processes
			untilCtx = g.interval(p.CtxSwitchMean)
		}
	}
	return c
}

// step emits one branch record for the given program/process, advancing
// the process's region cursor. Execution loops over a region's fixed slot
// sequence for several trips, then Zipf-hops to another region.
func (g *Generator) step(prog *program, proc *procState, kernel bool) Record {
	p := &g.p
	region, pos, trips := &proc.region, &proc.pos, &proc.trips
	if kernel {
		region, pos, trips = &proc.kregion, &proc.kpos, &proc.ktrips
	}
	if *region >= len(prog.regions) {
		*region %= len(prog.regions)
	}
	seq := prog.regions[*region].seq
	if *pos >= len(seq) {
		*pos = 0
		*trips--
		if *trips <= 0 {
			// Hop to a new region; hotter (lower-numbered) regions are
			// favoured via a power-law draw shaped by RegionExp.
			exp := g.p.RegionExp
			if exp == 0 {
				exp = 2
			}
			u := math.Pow(g.r.Float64(), exp)
			*region = int(u * float64(len(prog.regions)))
			if *region >= len(prog.regions) {
				*region = len(prog.regions) - 1
			}
			tm := g.p.RegionTripsMean
			if tm == 0 {
				tm = 12
			}
			*trips = 1 + g.r.Geometric(1/float64(tm), tm*12)
			seq = prog.regions[*region].seq
		}
	}
	s := seq[*pos]
	*pos++

	depth := len(proc.callStack)
	switch {
	case depth >= p.CallDepthMax && depth > 0:
		return g.stepReturn(proc)
	case s.kind == slotCond:
		return g.stepCond(prog, s.idx)
	case s.kind == slotJump:
		j := &prog.jumps[s.idx%len(prog.jumps)]
		return Record{PC: j.pc, Target: j.target, Kind: KindDirectJump, Taken: true}
	case s.kind == slotIndirect:
		return g.stepIndirect(prog, proc, s.idx)
	case s.kind == slotCall:
		return g.stepCall(prog, proc, s.idx)
	case depth > 0:
		return g.stepReturn(proc)
	default:
		return g.stepCond(prog, s.idx)
	}
}

func (g *Generator) stepCond(prog *program, idx int) Record {
	sc := &prog.conds[idx%len(prog.conds)]
	taken := false
	switch sc.kind {
	case condBiased, condHard:
		taken = g.r.Bool(sc.p)
	case condLoop:
		sc.counter++
		taken = sc.counter%sc.period != 0
	case condCorrelated:
		taken = bits.OnesCount64(g.ghist&sc.taps)%2 == 1
		if sc.flip {
			taken = !taken
		}
		if g.r.Bool(sc.noise) {
			taken = !taken
		}
	}
	if g.flipProb > 0 && g.r.Bool(g.flipProb) {
		// Drift is a ground-truth change, not a predictor artifact: the
		// flipped direction is what the program "did", so it feeds global
		// history and the record's resolved target alike.
		taken = !taken
	}
	g.pushOutcome(taken)
	rec := Record{PC: sc.pc, Kind: KindCond, Taken: taken}
	if taken {
		rec.Target = sc.target
	} else {
		rec.Target = rec.FallThrough()
	}
	return rec
}

func (g *Generator) stepIndirect(prog *program, proc *procState, idx int) Record {
	si := &prog.indirects[idx%len(prog.indirects)]
	si.uses++
	if si.uses >= si.drift {
		si.uses = 0
		si.phase++
		si.drift = g.drift()
	}
	// Monomorphic sites take one target per phase (re-learned after each
	// drift); polymorphic sites key the target off recent global outcome
	// history, which only context-tagged (BHB mode-two) prediction can
	// follow.
	var target uint64
	if si.histDep {
		h := (g.ghist&0xff ^ si.salt) * 0x9e3779b97f4a7c15
		target = si.targets[(int(h>>56)+si.phase)%len(si.targets)]
	} else {
		target = si.targets[si.phase%len(si.targets)]
	}
	kind := KindIndirectJump
	if si.salt&1 == 1 {
		kind = KindIndirectCall
		// Indirect calls push a return address like direct calls do, so
		// call/return pairing stays LIFO for the RSB model.
		proc.callStack = append(proc.callStack, frame{ret: (si.pc + 4) & VAMask, callee: target})
	}
	return Record{PC: si.pc, Target: target, Kind: kind, Taken: true}
}

func (g *Generator) stepCall(prog *program, proc *procState, idx int) Record {
	i := idx % len(prog.callSites)
	pc := prog.callSites[i]
	target := prog.callees[i%len(prog.callees)]
	proc.callStack = append(proc.callStack, frame{ret: (pc + 4) & VAMask, callee: target})
	return Record{PC: pc, Target: target, Kind: KindDirectCall, Taken: true}
}

func (g *Generator) stepReturn(proc *procState) Record {
	f := proc.callStack[len(proc.callStack)-1]
	proc.callStack = proc.callStack[:len(proc.callStack)-1]
	// The return instruction sits at the end of the executing callee.
	pc := (f.callee + 0x3c) & VAMask
	return Record{PC: pc, Target: f.ret, Kind: KindReturn, Taken: true}
}

// pushOutcome records a conditional outcome in the generator's global
// history. Only conditional branches contribute, mirroring what a GHR-based
// predictor can observe, so correlated branches are learnable in principle.
func (g *Generator) pushOutcome(taken bool) {
	g.ghist <<= 1
	if taken {
		g.ghist |= 1
	}
}

// Generate builds the trace for a profile in one call.
func Generate(p Profile) (*Trace, error) {
	g, err := NewGenerator(p)
	if err != nil {
		return nil, err
	}
	return g.Generate(), nil
}

// GenerateColumns builds the columnar trace for a profile in one call.
func GenerateColumns(p Profile) (*Columns, error) {
	g, err := NewGenerator(p)
	if err != nil {
		return nil, err
	}
	return g.GenerateColumns(), nil
}
