package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"stbpu/internal/rng"
)

func testProfile(name string, records int) Profile {
	p, err := Preset(name)
	if err != nil {
		panic(err)
	}
	return p.WithRecords(records)
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindCond:         "cond",
		KindDirectJump:   "jmp",
		KindDirectCall:   "call",
		KindIndirectJump: "ijmp",
		KindIndirectCall: "icall",
		KindReturn:       "ret",
		Kind(99):         "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindPredicates(t *testing.T) {
	if !KindReturn.IsIndirect() || !KindIndirectJump.IsIndirect() || !KindIndirectCall.IsIndirect() {
		t.Error("indirect kinds misclassified")
	}
	if KindCond.IsIndirect() || KindDirectJump.IsIndirect() || KindDirectCall.IsIndirect() {
		t.Error("direct kinds misclassified as indirect")
	}
	if !KindDirectCall.IsCall() || !KindIndirectCall.IsCall() {
		t.Error("calls misclassified")
	}
	if KindReturn.IsCall() || KindCond.IsCall() {
		t.Error("non-calls misclassified as calls")
	}
}

func TestFallThrough(t *testing.T) {
	r := Record{PC: 0x1000}
	if got := r.FallThrough(); got != 0x1004 {
		t.Errorf("FallThrough = %#x, want 0x1004", got)
	}
	// Wraps within 48 bits.
	r = Record{PC: VAMask - 1}
	if got := r.FallThrough(); got != 2 {
		t.Errorf("FallThrough at VA boundary = %#x, want 2", got)
	}
}

func TestGenerateValidates(t *testing.T) {
	for _, name := range []string{"505.mcf", "519.lbm", "apache2_prefork_c128", "chrome-1jetstream"} {
		tr, err := Generate(testProfile(name, 20_000))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tr.Records) < 20_000 {
			t.Fatalf("%s: got %d records", name, len(tr.Records))
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(testProfile("505.mcf", 5_000))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testProfile("505.mcf", 5_000))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a.Records[i], b.Records[i])
		}
	}
}

func TestGenerateDiffersAcrossWorkloads(t *testing.T) {
	a, _ := Generate(testProfile("505.mcf", 2_000))
	b, _ := Generate(testProfile("541.leela", 2_000))
	same := 0
	for i := range a.Records {
		if a.Records[i] == b.Records[i] {
			same++
		}
	}
	if same > len(a.Records)/2 {
		t.Errorf("different workloads produced %d/%d identical records", same, len(a.Records))
	}
}

func TestCallReturnPairing(t *testing.T) {
	tr, err := Generate(testProfile("502.gcc", 50_000))
	if err != nil {
		t.Fatal(err)
	}
	// Per process, returns must target the address pushed by the matching
	// call (LIFO), which is what makes the RSB model meaningful.
	stacks := make(map[uint32][]uint64)
	checked := 0
	for _, r := range tr.Records {
		key := r.PID
		switch {
		case r.Kind.IsCall():
			stacks[key] = append(stacks[key], r.FallThrough())
		case r.Kind == KindReturn:
			st := stacks[key]
			if len(st) == 0 {
				t.Fatalf("return with empty call stack for pid %d", key)
			}
			want := st[len(st)-1]
			stacks[key] = st[:len(st)-1]
			if r.Target != want {
				t.Fatalf("return target %#x, want %#x", r.Target, want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("trace contained no returns")
	}
}

func TestServerTraceHasSystemActivity(t *testing.T) {
	tr, err := Generate(testProfile("mysql_128con_50s", 60_000))
	if err != nil {
		t.Fatal(err)
	}
	s := tr.ComputeStats()
	if s.ContextSwitches < 10 {
		t.Errorf("server trace has only %d context switches", s.ContextSwitches)
	}
	if s.KernelRecords == 0 {
		t.Error("server trace has no kernel records")
	}
	if s.Processes < 2 {
		t.Errorf("server trace has %d processes", s.Processes)
	}
}

func TestSPECTraceIsComputeBound(t *testing.T) {
	tr, err := Generate(testProfile("519.lbm", 60_000))
	if err != nil {
		t.Fatal(err)
	}
	s := tr.ComputeStats()
	// SPEC traces are captured on a live core: a light background process
	// and timer ticks appear, but switching stays orders of magnitude
	// rarer than on server traces.
	if s.ContextSwitches > 50 {
		t.Errorf("SPEC trace has %d context switches; expected rare reschedules", s.ContextSwitches)
	}
	frac := float64(s.KernelRecords) / float64(s.Total)
	if frac > 0.05 {
		t.Errorf("SPEC kernel fraction %v too high", frac)
	}
	condTakenFrac := float64(s.TakenConds) / float64(s.Conds)
	if condTakenFrac < 0.55 {
		t.Errorf("lbm taken fraction %v; expected biased-taken workload", condTakenFrac)
	}
}

func TestEasyVsHardClassSeparation(t *testing.T) {
	// A static bimodal predictor should do far better on lbm than mcf.
	// This validates that the class knobs actually change predictability.
	predict := func(name string) float64 {
		tr, err := Generate(testProfile(name, 50_000))
		if err != nil {
			t.Fatal(err)
		}
		counters := make(map[uint64]int8)
		correct, total := 0, 0
		for _, r := range tr.Records {
			if r.Kind != KindCond {
				continue
			}
			c := counters[r.PC]
			pred := c >= 2
			if pred == r.Taken {
				correct++
			}
			if r.Taken && c < 3 {
				counters[r.PC] = c + 1
			} else if !r.Taken && c > 0 {
				counters[r.PC] = c - 1
			}
			total++
		}
		return float64(correct) / float64(total)
	}
	easy := predict("519.lbm")
	hard := predict("505.mcf")
	if easy < hard+0.05 {
		t.Errorf("lbm accuracy %.3f not clearly above mcf %.3f", easy, hard)
	}
	if easy < 0.9 {
		t.Errorf("lbm bimodal accuracy %.3f, want > 0.9", easy)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	bad := []Trace{
		{Name: "pc", Records: []Record{{PC: 1 << 50, Kind: KindCond}}},
		{Name: "target", Records: []Record{{Target: 1 << 49, Kind: KindCond}}},
		{Name: "nt-jmp", Records: []Record{{Kind: KindDirectJump, Taken: false}}},
		{Name: "kind", Records: []Record{{Kind: Kind(9), Taken: true}}},
	}
	for _, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("Validate(%s) accepted invalid trace", tr.Name)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	tr, err := Generate(testProfile("520.omnetpp", 10_000))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name {
		t.Errorf("name %q, want %q", got.Name, tr.Name)
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatalf("count %d, want %d", len(got.Records), len(tr.Records))
	}
	for i := range tr.Records {
		if got.Records[i] != tr.Records[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got.Records[i], tr.Records[i])
		}
	}
}

func TestCodecCompression(t *testing.T) {
	tr, err := Generate(testProfile("503.bwaves", 50_000))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	perRecord := float64(buf.Len()) / float64(len(tr.Records))
	if perRecord > 12 {
		t.Errorf("codec uses %.1f bytes/record, want <= 12", perRecord)
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not a trace at all")); err == nil {
		t.Error("expected error for bad magic")
	}
	if _, err := Read(bytes.NewReader([]byte{'S', 'T', 'B', 'T', 99})); err == nil {
		t.Error("expected error for bad version")
	}
	// Truncated stream after a valid header.
	var buf bytes.Buffer
	if err := Write(&buf, &Trace{Name: "x", Records: []Record{{PC: 4, Target: 8, Kind: KindCond}}}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-1]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("expected error for truncated stream")
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	// Property: arbitrary well-formed records survive the codec.
	f := func(seed uint64, n uint8) bool {
		r := rng.New(seed)
		recs := make([]Record, int(n)%64+1)
		for i := range recs {
			recs[i] = Record{
				PC:      r.Uint64() & VAMask,
				Target:  r.Uint64() & VAMask,
				PID:     r.Uint32() % 8,
				Program: uint16(r.Uint32() % 4),
				Kind:    Kind(r.Intn(int(numKinds))),
				Kernel:  r.Bool(0.2),
			}
			recs[i].Taken = recs[i].Kind != KindCond || r.Bool(0.5)
		}
		tr := &Trace{Name: "prop", Records: recs}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got.Records) != len(recs) {
			return false
		}
		for i := range recs {
			if got.Records[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPresetLookup(t *testing.T) {
	if _, err := Preset("505.mcf"); err != nil {
		t.Error(err)
	}
	// Short names resolve to the full profile.
	p, err := Preset("mcf")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "505.mcf" {
		t.Errorf("short name resolved to %q", p.Name)
	}
	if _, err := Preset("nonexistent"); err == nil {
		t.Error("expected error for unknown preset")
	}
}

func TestFig3WorkloadsComplete(t *testing.T) {
	names := Fig3Workloads()
	if len(names) != 37 {
		t.Errorf("Fig3Workloads returned %d names, want 37 (23 SPEC + 14 apps)", len(names))
	}
	for _, n := range names {
		p, err := Preset(n)
		if err != nil {
			t.Errorf("Fig. 3 workload %q has no preset: %v", n, err)
			continue
		}
		if err := p.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", n, err)
		}
	}
}

func TestSPEC18AndPairsResolve(t *testing.T) {
	if len(SPEC18()) != 18 {
		t.Errorf("SPEC18 returned %d names", len(SPEC18()))
	}
	for _, n := range SPEC18() {
		if _, err := Preset(n); err != nil {
			t.Errorf("SPEC18 workload %q: %v", n, err)
		}
	}
	pairs := SMTPairs()
	if len(pairs) != 31 {
		t.Errorf("SMTPairs returned %d pairs, want 31", len(pairs))
	}
	for _, pr := range append(pairs, SMTPairsExtended()...) {
		for _, n := range pr {
			if _, err := Preset(n); err != nil {
				t.Errorf("pair workload %q: %v", n, err)
			}
		}
	}
	if len(SMTPairsExtended()) != 42 {
		t.Errorf("SMTPairsExtended returned %d pairs, want 42", len(SMTPairsExtended()))
	}
}

func TestProfileValidate(t *testing.T) {
	good, _ := Preset("505.mcf")
	if err := good.Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
	bad := good
	bad.Records = 0
	if err := bad.Validate(); err == nil {
		t.Error("Records=0 accepted")
	}
	bad = good
	bad.CondFrac = 0.9
	bad.IndirectFrac = 0.5
	if err := bad.Validate(); err == nil {
		t.Error("over-unity mix accepted")
	}
	bad = good
	bad.HardFrac = 0.8
	bad.PatternFrac = 0.8
	if err := bad.Validate(); err == nil {
		t.Error("over-unity behaviour mixture accepted")
	}
	bad = good
	bad.BiasTakenProb = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range fraction accepted")
	}
}

func BenchmarkGenerate(b *testing.B) {
	// The production path: caches generate straight into columns
	// (tracestore.PresetGenColumns), never through the AoS slice.
	p := testProfile("505.mcf", 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateColumns(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecWrite(b *testing.B) {
	tr, err := Generate(testProfile("505.mcf", 100_000))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr, err := Generate(testProfile("520.omnetpp", 3_000))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, tr.Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatalf("count %d, want %d", len(got.Records), len(tr.Records))
	}
	for i := range tr.Records {
		if got.Records[i] != tr.Records[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got.Records[i], tr.Records[i])
		}
	}
}

func TestCSVRejectsMalformed(t *testing.T) {
	cases := []string{
		"zzzz,1000,cond,1,1,0,0\n",          // bad pc
		"1000,zzzz,cond,1,1,0,0\n",          // bad target
		"1000,1004,frobnicate,1,1,0,0\n",    // bad kind
		"1000,1004,cond,1,notanumber,0,0\n", // bad pid
		"1000,1004,cond,1,1,999999,0\n",     // program overflow
		"1000,1004,cond,1\n",                // short row
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c), "bad"); err == nil {
			t.Errorf("case %d: malformed CSV accepted", i)
		}
	}
}

func FuzzCodecRead(f *testing.F) {
	tr, err := Generate(testProfile("505.mcf", 200))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("STBT"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Read must never panic on arbitrary input; if it succeeds, the
		// decoded trace must survive re-encoding.
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, got); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
	})
}
