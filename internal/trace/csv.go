package trace

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV interchange format, one record per line:
//
//	pc,target,kind,taken,pid,program,kernel
//
// Addresses are hex without the 0x prefix; kind uses the Kind mnemonics
// (cond/jmp/call/ijmp/icall/ret); booleans are 0/1. The format exists so
// traces can be produced or consumed by external tools (e.g. converted
// from real Intel PT dumps) without the binary STBT codec.

var kindByName = map[string]Kind{
	"cond": KindCond, "jmp": KindDirectJump, "call": KindDirectCall,
	"ijmp": KindIndirectJump, "icall": KindIndirectCall, "ret": KindReturn,
}

// WriteCSV encodes the trace records as CSV (no header row).
func WriteCSV(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	for i, r := range t.Records {
		taken, kernel := '0', '0'
		if r.Taken {
			taken = '1'
		}
		if r.Kernel {
			kernel = '1'
		}
		if _, err := fmt.Fprintf(bw, "%x,%x,%s,%c,%d,%d,%c\n",
			r.PC, r.Target, r.Kind, taken, r.PID, r.Program, kernel); err != nil {
			return fmt.Errorf("trace: csv record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadCSV decodes records from CSV produced by WriteCSV (or an external
// converter). The trace name must be supplied by the caller.
func ReadCSV(r io.Reader, name string) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 7
	cr.ReuseRecord = true
	t := &Trace{Name: name}
	line := 0
	for {
		fields, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: %w", line+1, err)
		}
		line++
		pc, err := strconv.ParseUint(fields[0], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d pc: %w", line, err)
		}
		target, err := strconv.ParseUint(fields[1], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d target: %w", line, err)
		}
		kind, ok := kindByName[fields[2]]
		if !ok {
			return nil, fmt.Errorf("trace: csv line %d: unknown kind %q", line, fields[2])
		}
		pid, err := strconv.ParseUint(fields[4], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d pid: %w", line, err)
		}
		prog, err := strconv.ParseUint(fields[5], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d program: %w", line, err)
		}
		rec := Record{
			PC:      pc & VAMask,
			Target:  target & VAMask,
			Kind:    kind,
			Taken:   fields[3] == "1",
			PID:     uint32(pid),
			Program: uint16(prog),
			Kernel:  fields[6] == "1",
		}
		t.Records = append(t.Records, rec)
	}
	return t, nil
}
