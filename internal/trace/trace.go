// Package trace models branch-instruction traces: the input to every BPU
// simulation in this repository.
//
// The paper collects traces with Intel Processor Trace on a live machine
// (SPEC CPU 2017, Apache2, Chrome, MySQL, OBS Studio) including all
// OS/library code, context switches, mode switches, and interrupts. That
// hardware and those binaries are not available here, so this package
// provides the substitution documented in DESIGN.md: a parameterized
// synthetic branch-trace generator (synth.go) with named presets
// (presets.go) tuned to reproduce each workload's predictability class and
// system-call/context-switch behaviour, plus a compact binary codec
// (codec.go) so traces can be stored and replayed like PT dumps.
// Traces exist in two lossless representations: []Record (AoS, this
// file) and Columns (SoA, columns.go) — the replay fast path and the
// trace cache consume the columnar form, and the STBT decoder parses
// straight into it (docs/ARCHITECTURE.md, "Trace dataflow").
package trace

import "fmt"

// Kind enumerates the branch instruction types distinguished by the BPU
// (paper §II-A): direct jumps/calls, conditional branches, indirect
// jumps/calls, and returns.
type Kind uint8

const (
	// KindCond is a conditional direct branch (jcc).
	KindCond Kind = iota
	// KindDirectJump is an unconditional direct jump (jmp imm).
	KindDirectJump
	// KindDirectCall is a direct call (call imm).
	KindDirectCall
	// KindIndirectJump is an indirect jump (jmp reg/mem).
	KindIndirectJump
	// KindIndirectCall is an indirect call (call reg/mem).
	KindIndirectCall
	// KindReturn is a return instruction (ret).
	KindReturn

	numKinds = 6
)

// String returns the mnemonic class of the branch kind.
func (k Kind) String() string {
	switch k {
	case KindCond:
		return "cond"
	case KindDirectJump:
		return "jmp"
	case KindDirectCall:
		return "call"
	case KindIndirectJump:
		return "ijmp"
	case KindIndirectCall:
		return "icall"
	case KindReturn:
		return "ret"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsIndirect reports whether the branch target comes from a register or
// memory (including returns), i.e. the target must be predicted rather than
// decoded from the instruction bytes.
func (k Kind) IsIndirect() bool {
	return k == KindIndirectJump || k == KindIndirectCall || k == KindReturn
}

// IsCall reports whether the branch pushes a return address.
func (k Kind) IsCall() bool { return k == KindDirectCall || k == KindIndirectCall }

// VAMask keeps the canonical 48 bits of a virtual address, the width the
// paper's remapping functions consume (Table II uses 48-bit source fields).
const VAMask = (uint64(1) << 48) - 1

// Record is one retired branch instruction: the unit of trace replay.
type Record struct {
	// PC is the 48-bit virtual address of the branch instruction.
	PC uint64
	// Target is the actual resolved target. For a not-taken conditional
	// branch it is the fall-through address.
	Target uint64
	// PID identifies the software entity (process). STBPU assigns secret
	// tokens per entity; microcode protections flush on PID change.
	PID uint32
	// Program identifies the binary the entity executes. Entities of the
	// same program may be given a shared token by the OS (paper §IV-A,
	// selective history sharing for pre-forked servers).
	Program uint16
	// Kind is the branch class.
	Kind Kind
	// Taken is the resolved direction; always true for unconditional
	// branches.
	Taken bool
	// Kernel is true while executing in supervisor mode (syscalls,
	// interrupts). Mode switches trigger flushes under IBRS-style
	// protections.
	Kernel bool
}

// FallThrough returns the address of the instruction after the branch,
// assuming the fixed 4-byte branch encoding the generator emits. Predictor
// models use it for not-taken conditional targets and return addresses.
func (r Record) FallThrough() uint64 { return (r.PC + 4) & VAMask }

// Trace is a materialized branch trace plus identifying metadata.
type Trace struct {
	// Name is the workload name (preset name for synthetic traces).
	Name string
	// Records are the retired branches in program order.
	Records []Record
}

// Stats summarizes the composition of a trace; used by tests and the trace
// inspection CLI to validate workload shape.
type Stats struct {
	Total           int
	ByKind          [numKinds]int
	TakenConds      int
	Conds           int
	KernelRecords   int
	ContextSwitches int
	ModeSwitches    int
	Processes       int
}

// ComputeStats scans the trace once and tallies composition counters.
func (t *Trace) ComputeStats() Stats {
	var s Stats
	s.Total = len(t.Records)
	pids := make(map[uint32]struct{})
	for i, r := range t.Records {
		s.ByKind[r.Kind]++
		if r.Kind == KindCond {
			s.Conds++
			if r.Taken {
				s.TakenConds++
			}
		}
		if r.Kernel {
			s.KernelRecords++
		}
		pids[r.PID] = struct{}{}
		if i > 0 {
			prev := t.Records[i-1]
			if prev.PID != r.PID {
				s.ContextSwitches++
			}
			if prev.Kernel != r.Kernel {
				s.ModeSwitches++
			}
		}
	}
	s.Processes = len(pids)
	return s
}

// Validate checks structural invariants of the trace: addresses are
// canonical 48-bit, unconditional branches are taken, returns and calls are
// well-typed. It returns the first violation found.
func (t *Trace) Validate() error {
	for i, r := range t.Records {
		if r.PC&^VAMask != 0 {
			return fmt.Errorf("trace %q record %d: PC %#x exceeds 48 bits", t.Name, i, r.PC)
		}
		if r.Target&^VAMask != 0 {
			return fmt.Errorf("trace %q record %d: target %#x exceeds 48 bits", t.Name, i, r.Target)
		}
		if r.Kind != KindCond && !r.Taken {
			return fmt.Errorf("trace %q record %d: unconditional %v marked not-taken", t.Name, i, r.Kind)
		}
		if r.Kind >= numKinds {
			return fmt.Errorf("trace %q record %d: invalid kind %d", t.Name, i, uint8(r.Kind))
		}
	}
	return nil
}
