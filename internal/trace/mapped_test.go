package trace

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"
	"unsafe"
)

// alignedCopy returns an 8-byte-aligned copy of b, as mmap would hand
// back (page-aligned) but without needing a real mapping in tests.
func alignedCopy(b []byte) []byte {
	buf := make([]byte, len(b)+8)
	off := 0
	for uintptr(unsafe.Pointer(&buf[off]))%8 != 0 {
		off++
	}
	out := buf[off : off+len(b) : off+len(b)]
	copy(out, b)
	return out
}

// encodeMapped is the test helper: records → v2 bytes.
func encodeMapped(t *testing.T, name string, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteColumnsMapped(&buf, FromRecords(name, recs)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMappedRoundTripProperty pins the v2 layout's two decode paths:
// ReadColumns (stream) and MapColumns (zero-copy) both reproduce the
// original records exactly, for randomized record sets including the
// empty trace.
func TestMappedRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(3_000)
		if trial == 0 {
			n = 0 // force the empty-trace case
		}
		recs := randomRecords(rng, n)
		data := encodeMapped(t, "mapped-prop", recs)

		decoded, err := ReadColumns(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("trial %d: ReadColumns: %v", trial, err)
		}
		mapped, err := MapColumns(alignedCopy(data))
		if err != nil {
			t.Fatalf("trial %d: MapColumns: %v", trial, err)
		}
		for _, c := range []*Columns{decoded, mapped} {
			if c.Name != "mapped-prop" || c.Len() != len(recs) {
				t.Fatalf("trial %d: shape %q/%d", trial, c.Name, c.Len())
			}
			if err := c.Validate(); err != nil && n > 0 {
				t.Fatalf("trial %d: %v", trial, err)
			}
			back := c.ToRecords()
			for i := range recs {
				if back[i] != recs[i] {
					t.Fatalf("trial %d record %d: %+v != %+v", trial, i, back[i], recs[i])
				}
			}
		}
	}
}

// TestMapColumnsIsZeroCopy proves the mapped view aliases the backing
// buffer: flipping a byte inside the PCs section is visible through the
// columns without re-mapping.
func TestMapColumnsIsZeroCopy(t *testing.T) {
	recs := randomRecords(rand.New(rand.NewSource(3)), 100)
	data := alignedCopy(encodeMapped(t, "alias", recs))
	cols, err := MapColumns(data)
	if err != nil {
		t.Fatal(err)
	}
	l := layoutMapped(len("alias"), uint64(len(recs)))
	before := cols.PCs[0]
	data[l.sections[0]] ^= 0xff
	if cols.PCs[0] == before {
		t.Fatal("mapped columns did not alias the buffer (a copy was made)")
	}
}

// TestMappedSectionAlignment checks every section starts page-aligned —
// the property that makes the arrays directly mappable.
func TestMappedSectionAlignment(t *testing.T) {
	for _, n := range []int{0, 1, 4095, 4096, 4097, 10_000} {
		recs := randomRecords(rand.New(rand.NewSource(int64(n))), n)
		data := encodeMapped(t, "align", recs)
		l := layoutMapped(len("align"), uint64(n))
		if got := uint64(len(data)); got != l.total {
			t.Fatalf("n=%d: file is %d bytes, layout says %d", n, got, l.total)
		}
		for i, off := range l.sections {
			if off%mappedSectionAlign != 0 {
				t.Fatalf("n=%d: section %d at unaligned offset %d", n, i, off)
			}
		}
	}
}

// TestMapColumnsRejectsCorruption walks the failure arms: short buffer,
// bad magic, wrong version, truncated tail, mid-section truncation, and
// a doctored section table.
func TestMapColumnsRejectsCorruption(t *testing.T) {
	recs := randomRecords(rand.New(rand.NewSource(9)), 2_000)
	good := encodeMapped(t, "corrupt", recs)
	l := layoutMapped(len("corrupt"), uint64(len(recs)))

	cases := []struct {
		name string
		data []byte
	}{
		{"short", good[:16]},
		{"bad-magic", append([]byte("NOPE"), good[4:]...)},
		{"v1-stream", func() []byte {
			var buf bytes.Buffer
			if err := WriteColumns(&buf, FromRecords("corrupt", recs)); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}()},
		{"truncated-tail", good[:len(good)-100]},
		{"truncated-mid-section", good[:l.sections[2]+50]},
		{"doctored-table", func() []byte {
			b := append([]byte(nil), good...)
			off := 7 + len("corrupt") + 8 // first section-table slot
			binary.LittleEndian.PutUint64(b[off:], l.sections[0]+8)
			return b
		}()},
		{"doctored-count", func() []byte {
			b := append([]byte(nil), good...)
			binary.LittleEndian.PutUint64(b[7+len("corrupt"):], uint64(len(recs)-1))
			return b
		}()},
	}
	for _, tc := range cases {
		if _, err := MapColumns(alignedCopy(tc.data)); err == nil {
			t.Errorf("%s: MapColumns accepted corrupt input", tc.name)
		}
		// The stream decoder must reject the same corruption (except the
		// v1 stream, which it legitimately decodes).
		if tc.name == "v1-stream" {
			continue
		}
		if _, err := ReadColumns(bytes.NewReader(tc.data)); err == nil {
			t.Errorf("%s: ReadColumns accepted corrupt input", tc.name)
		}
	}
}

// TestMapColumnsRejectsMisaligned pins the 8-byte base alignment guard.
func TestMapColumnsRejectsMisaligned(t *testing.T) {
	data := alignedCopy(encodeMapped(t, "align", randomRecords(rand.New(rand.NewSource(1)), 10)))
	buf := make([]byte, len(data)+8)
	off := 0
	for uintptr(unsafe.Pointer(&buf[off]))%8 != 1 {
		off++
	}
	odd := buf[off : off+len(data)]
	copy(odd, data)
	if _, err := MapColumns(odd); err == nil || !strings.Contains(err.Error(), "aligned") {
		t.Fatalf("misaligned buffer: got %v, want alignment error", err)
	}
}
