package trace

import (
	"bytes"
	"testing"
)

// FuzzRead hammers the STBT decoder with arbitrary bytes: error or valid
// trace, never a panic.
func FuzzRead(f *testing.F) {
	tr := &Trace{Name: "seed"}
	for i := 0; i < 100; i++ {
		tr.Records = append(tr.Records, Record{
			PC: uint64(i) * 16, Target: uint64(i)*16 + 64,
			Kind: Kind(i % 6), Taken: true, PID: uint32(i % 4),
		})
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:8])
	f.Add([]byte("STBT"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err == nil && got == nil {
			t.Fatal("nil trace with nil error")
		}
	})
}

// FuzzCSVRead does the same for the CSV codec.
func FuzzCSVRead(f *testing.F) {
	f.Add([]byte("pc,target,kind,taken,pid,program,kernel\n40,80,cond,1,1,0,0\n"))
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadCSV(bytes.NewReader(data), "fuzz")
		if err == nil && got == nil {
			t.Fatal("nil trace with nil error")
		}
	})
}
