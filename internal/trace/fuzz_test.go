package trace

import (
	"bytes"
	"testing"
)

// FuzzRead hammers the STBT decoders with arbitrary bytes: error or
// valid trace, never a panic — and whenever arbitrary bytes do decode,
// the decode-into-columns path must be stable under re-encoding
// (decode → WriteColumns → decode is the identity).
func FuzzRead(f *testing.F) {
	tr := &Trace{Name: "seed"}
	for i := 0; i < 100; i++ {
		tr.Records = append(tr.Records, Record{
			PC: uint64(i) * 16, Target: uint64(i)*16 + 64,
			Kind: Kind(i % 6), Taken: true, PID: uint32(i % 4),
		})
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:8])
	f.Add([]byte("STBT"))
	f.Add([]byte{})
	// Columns-specific seed: kernel records and PID churn exercise the
	// flag masking and samePID reconstruction in the columnar decoder.
	churn := &Trace{Name: "churn"}
	for i := 0; i < 64; i++ {
		churn.Records = append(churn.Records, Record{
			PC: uint64(i) * 4, Target: uint64(i)*4 + 4,
			Kind: KindCond, Taken: i%3 == 0, Kernel: i%2 == 0,
			PID: uint32(i % 7), Program: uint16(i % 5),
		})
	}
	buf.Reset()
	if err := Write(&buf, churn); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), buf.Bytes()...))

	f.Fuzz(func(t *testing.T, data []byte) {
		cols, err := ReadColumns(bytes.NewReader(data))
		if err != nil {
			return
		}
		if cols == nil {
			t.Fatal("nil columns with nil error")
		}
		// Whatever decoded must re-encode and decode back identically.
		var out bytes.Buffer
		if err := WriteColumns(&out, cols); err != nil {
			t.Fatalf("re-encode of decoded columns failed: %v", err)
		}
		again, err := ReadColumns(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Len() != cols.Len() || again.Name != cols.Name {
			t.Fatalf("re-decode shape %q/%d != %q/%d", again.Name, again.Len(), cols.Name, cols.Len())
		}
		for i := 0; i < cols.Len(); i++ {
			if again.Record(i) != cols.Record(i) {
				t.Fatalf("record %d unstable under re-encode", i)
			}
		}
		// The AoS wrapper sees exactly the columnar decode.
		rt, err := Read(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("Read failed where ReadColumns succeeded: %v", err)
		}
		if len(rt.Records) != cols.Len() {
			t.Fatalf("Read len %d != ReadColumns len %d", len(rt.Records), cols.Len())
		}
	})
}

// FuzzCSVRead does the same for the CSV codec.
func FuzzCSVRead(f *testing.F) {
	f.Add([]byte("pc,target,kind,taken,pid,program,kernel\n40,80,cond,1,1,0,0\n"))
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadCSV(bytes.NewReader(data), "fuzz")
		if err == nil && got == nil {
			t.Fatal("nil trace with nil error")
		}
	})
}
