package trace

import (
	"bytes"
	"math/rand"
	"testing"
)

// randomRecords builds structurally valid records with adversarial
// variety: kind mix, PID/program churn, kernel bursts, extreme address
// deltas.
func randomRecords(rng *rand.Rand, n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		k := Kind(rng.Intn(int(numKinds)))
		r := Record{
			PC:      rng.Uint64() & VAMask,
			Target:  rng.Uint64() & VAMask,
			Kind:    k,
			Taken:   true,
			PID:     uint32(rng.Intn(5)),
			Program: uint16(rng.Intn(3)),
			Kernel:  rng.Intn(4) == 0,
		}
		if k == KindCond {
			r.Taken = rng.Intn(2) == 0
		}
		recs[i] = r
	}
	return recs
}

// TestColumnsRoundTripProperty is the lossless-conversion property
// test: for randomized record sets, Records → Columns → Records is the
// identity, and the columnar view answers every per-row accessor
// identically to the source records.
func TestColumnsRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		recs := randomRecords(rng, rng.Intn(2_000))
		cols := FromRecords("prop", recs)
		if err := cols.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if cols.Len() != len(recs) {
			t.Fatalf("trial %d: len %d != %d", trial, cols.Len(), len(recs))
		}
		back := cols.ToRecords()
		for i := range recs {
			if back[i] != recs[i] {
				t.Fatalf("trial %d record %d: round trip %+v != %+v", trial, i, back[i], recs[i])
			}
			if cols.Record(i) != recs[i] {
				t.Fatalf("trial %d record %d: Record() diverges", trial, i)
			}
			if cols.Kind(i) != recs[i].Kind || cols.Taken(i) != recs[i].Taken || cols.Kernel(i) != recs[i].Kernel {
				t.Fatalf("trial %d record %d: flag accessors diverge", trial, i)
			}
		}
	}
}

// TestSTBTColumnsRoundTrip pins the codec contract of the columnar
// paths: WriteColumns emits bytes identical to Write, and
// STBT → ReadColumns → ToRecords reproduces the original records
// (the decode-into-columns path is lossless end to end).
func TestSTBTColumnsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		recs := randomRecords(rng, 1+rng.Intn(3_000))
		tr := &Trace{Name: "stbt-prop", Records: recs}
		cols := FromTrace(tr)

		var aos, soa bytes.Buffer
		if err := Write(&aos, tr); err != nil {
			t.Fatal(err)
		}
		if err := WriteColumns(&soa, cols); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(aos.Bytes(), soa.Bytes()) {
			t.Fatalf("trial %d: WriteColumns bytes diverge from Write", trial)
		}

		decoded, err := ReadColumns(bytes.NewReader(aos.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if decoded.Name != tr.Name || decoded.Len() != len(recs) {
			t.Fatalf("trial %d: decoded shape %q/%d", trial, decoded.Name, decoded.Len())
		}
		back := decoded.ToRecords()
		for i := range recs {
			if back[i] != recs[i] {
				t.Fatalf("trial %d record %d: STBT round trip %+v != %+v", trial, i, back[i], recs[i])
			}
		}
	}
}

// TestColumnsValidateCatchesCorruption exercises each Validate arm.
func TestColumnsValidateCatchesCorruption(t *testing.T) {
	good := func() *Columns {
		return FromRecords("v", []Record{
			{PC: 0x1000, Target: 0x2000, Kind: KindCond, Taken: false},
			{PC: 0x2000, Target: 0x3000, Kind: KindDirectJump, Taken: true},
		})
	}
	cases := []struct {
		name   string
		break_ func(*Columns)
	}{
		{"ragged", func(c *Columns) { c.PIDs = c.PIDs[:1] }},
		{"stray-flag-bits", func(c *Columns) { c.Flags[0] |= 1 << 6 }},
		{"wide-pc", func(c *Columns) { c.PCs[0] = 1 << 50 }},
		{"wide-target", func(c *Columns) { c.Targets[1] = 1 << 60 }},
		{"bad-kind", func(c *Columns) { c.Flags[1] = 7 | FlagTaken }},
		{"untaken-unconditional", func(c *Columns) { c.Flags[1] &^= FlagTaken }},
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("valid columns rejected: %v", err)
	}
	for _, tc := range cases {
		c := good()
		tc.break_(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: corruption not detected", tc.name)
		}
	}
}

// TestAppendRecordsWindows pins the chunked fallback materializer.
func TestAppendRecordsWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	recs := randomRecords(rng, 100)
	cols := FromRecords("w", recs)
	got := cols.AppendRecords(nil, 10, 35)
	if len(got) != 25 {
		t.Fatalf("window len = %d", len(got))
	}
	for i, r := range got {
		if r != recs[10+i] {
			t.Fatalf("window record %d diverges", i)
		}
	}
	// Reuse must not leak prior contents.
	got = cols.AppendRecords(got[:0], 99, 100)
	if len(got) != 1 || got[0] != recs[99] {
		t.Fatal("scratch reuse corrupted the window")
	}
}

// TestColumnsSizeBytesExact pins the exact-footprint arithmetic the
// tracestore byte budget relies on.
func TestColumnsSizeBytesExact(t *testing.T) {
	cols := FromRecords("abcd", make([]Record, 100))
	want := int64(100*(8+8+1+4+2) + 4)
	if got := cols.SizeBytes(); got != want {
		t.Errorf("SizeBytes = %d, want %d", got, want)
	}
}

// TestColumnsSliceViews pins the zero-copy window contract: a slice
// answers accessors like the equivalent record subrange, re-slicing
// composes, and out-of-range bounds panic rather than alias.
func TestColumnsSliceViews(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	recs := randomRecords(rng, 500)
	cols := FromRecords("slice", recs)

	s := cols.Slice(100, 400)
	if s.Len() != 300 {
		t.Fatalf("slice len %d", s.Len())
	}
	for i := 0; i < s.Len(); i++ {
		if s.Record(i) != recs[100+i] {
			t.Fatalf("slice record %d diverges", i)
		}
	}
	// Re-slicing a view windows the view, not the root.
	ss := s.Slice(50, 60)
	for i := 0; i < ss.Len(); i++ {
		if ss.Record(i) != recs[150+i] {
			t.Fatalf("re-slice record %d diverges", i)
		}
	}
	// Empty and full windows are legal.
	if cols.Slice(0, 0).Len() != 0 || cols.Slice(0, 500).Len() != 500 {
		t.Error("degenerate windows mis-sized")
	}
	for _, bad := range [][2]int{{-1, 10}, {10, 501}, {20, 10}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Slice(%d, %d) did not panic", bad[0], bad[1])
				}
			}()
			cols.Slice(bad[0], bad[1])
		}()
	}
}
