// Phase-structured workload synthesis: the engine beneath the
// declarative spec layer (internal/trace/spec). A phased workload is a
// set of tenants (processes with their own behaviour profiles, mapped
// onto shared or distinct program images) scheduled through an ordered
// list of phases. Each phase fixes the tenant rate weights, the
// inter-context-switch arrival process (fixed, geometric, Gamma, or
// Weibull), an optional dynamic branch-mix override, a misprediction
// drift probability, and optional ramp/burst load modifiers — the
// normal/sweep/burst trio of serverless trace synthesizers, recast in
// branch records instead of RPS.
//
// Generation is a pure function of (PhasedProfile, Seed): one rng
// stream drives construction and emission in a fixed order, so the
// same profile yields byte-identical traces in every process. That is
// the property that lets spec workloads flow through the tracestore,
// the disk/mmap tiers, resume journals, and remote fleets unchanged.

package trace

import (
	"fmt"
	"math"

	"stbpu/internal/rng"
)

// ArrivalKind selects the inter-context-switch interval distribution.
type ArrivalKind uint8

const (
	// ArrivalGeometric is the flat generator's default: geometric
	// intervals (discrete exponential), memoryless switching.
	ArrivalGeometric ArrivalKind = iota
	// ArrivalFixed switches on a strict period (timer-tick scheduling).
	ArrivalFixed
	// ArrivalGamma draws Gamma(shape, mean/shape) intervals; shape < 1
	// gives burstier-than-Poisson cadence, shape > 1 more regular.
	ArrivalGamma
	// ArrivalWeibull draws Weibull intervals with the given shape,
	// scaled so the mean matches; heavy-tailed for shape < 1.
	ArrivalWeibull
)

// String names the arrival kind (spec serialization uses these).
func (k ArrivalKind) String() string {
	switch k {
	case ArrivalGeometric:
		return "geometric"
	case ArrivalFixed:
		return "fixed"
	case ArrivalGamma:
		return "gamma"
	case ArrivalWeibull:
		return "weibull"
	}
	return fmt.Sprintf("ArrivalKind(%d)", uint8(k))
}

// Arrival is an inter-context-switch interval model.
type Arrival struct {
	Kind ArrivalKind
	// Mean is the mean interval in records (>= 1).
	Mean float64
	// Shape parameterizes Gamma/Weibull; ignored for fixed/geometric.
	Shape float64
}

func (a Arrival) validate() error {
	if !(a.Mean >= 1 && a.Mean <= 1e9) {
		return fmt.Errorf("arrival mean %v out of [1, 1e9]", a.Mean)
	}
	switch a.Kind {
	case ArrivalGeometric, ArrivalFixed:
	case ArrivalGamma, ArrivalWeibull:
		if !(a.Shape > 0 && a.Shape <= 100) {
			return fmt.Errorf("arrival shape %v out of (0, 100]", a.Shape)
		}
	default:
		return fmt.Errorf("unknown arrival kind %d", a.Kind)
	}
	return nil
}

// sampleFloat draws one raw (unscaled, unrounded) interval.
func (a Arrival) sampleFloat(r *rng.Rand) float64 {
	switch a.Kind {
	case ArrivalFixed:
		return a.Mean
	case ArrivalGamma:
		return a.Mean / a.Shape * gammaSample(r, a.Shape)
	case ArrivalWeibull:
		scale := a.Mean / math.Gamma(1+1/a.Shape)
		return scale * math.Pow(-math.Log1p(-r.Float64()), 1/a.Shape)
	default: // geometric
		return float64(geometricSample(r, a.Mean))
	}
}

// geometricSample mirrors Generator.interval: geometric with p = 1/mean,
// capped at 8x the mean like the flat generator's event intervals.
func geometricSample(r *rng.Rand, mean float64) int {
	m := int(mean + 0.5)
	if m <= 1 {
		return 1
	}
	return r.Geometric(1/float64(m), m*8)
}

// normalSample draws a standard normal via Box-Muller (deterministic:
// two uniforms from the stream per sample).
func normalSample(r *rng.Rand) float64 {
	u1 := 1 - r.Float64() // (0, 1]: keep Log finite
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// gammaSample draws Gamma(shape, 1) via Marsaglia-Tsang squeeze
// (shape >= 1) with the standard power boost for shape < 1.
func gammaSample(r *rng.Rand, shape float64) float64 {
	if shape < 1 {
		u := 1 - r.Float64()
		return gammaSample(r, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := normalSample(r)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// DynMix overrides the dynamic branch-class mixture for one phase.
// Fractions must be non-negative with Cond > 0 and a sum <= 1; the
// remainder after Cond+Jump+2*Call+Indirect is conditional, exactly as
// in Profile.
type DynMix struct {
	Cond, Jump, Call, Indirect float64
}

func (m DynMix) validate() error {
	for _, f := range []float64{m.Cond, m.Jump, m.Call, m.Indirect} {
		if !(f >= 0 && f <= 1) {
			return fmt.Errorf("mix fraction %v out of [0,1]", f)
		}
	}
	if !(m.Cond > 0) {
		return fmt.Errorf("mix needs a positive conditional fraction")
	}
	if !(m.Cond+m.Jump+m.Call+m.Indirect <= 1.0001) {
		return fmt.Errorf("mix sums past 1")
	}
	return nil
}

// BurstDef periodically densifies context switching within a phase:
// every Period records, switching runs Factor times denser for the
// first Len records of the window.
type BurstDef struct {
	Period int
	Len    int
	Factor float64
}

func (b BurstDef) validate() error {
	if b.Period < 2 {
		return fmt.Errorf("burst period %d < 2", b.Period)
	}
	if b.Len < 1 || b.Len > b.Period {
		return fmt.Errorf("burst len %d out of [1, period]", b.Len)
	}
	if !(b.Factor >= 1 && b.Factor <= 1000) {
		return fmt.Errorf("burst factor %v out of [1, 1000]", b.Factor)
	}
	return nil
}

// TenantSpec is one scheduled entity of a phased workload.
type TenantSpec struct {
	// Name labels the tenant (diagnostics only).
	Name string
	// Profile supplies the tenant's behaviour knobs (static working
	// set, conditional mixture, kernel activity). Records, Processes,
	// and SameProgram are ignored: a tenant is exactly one process.
	Profile Profile
	// Image is the program-image index. Tenants sharing an index run
	// the same static code (prefork workers); the first tenant with a
	// given index defines the image's layout.
	Image int
}

// PhaseDef is one phase of a phased workload.
type PhaseDef struct {
	// Name labels the phase (result tables key on it).
	Name string
	// Records is the phase's share of the trace, rescaled
	// proportionally when a run requests a different total budget.
	Records int
	// Weights are per-tenant scheduling weights (len == tenants). On
	// each context switch the next tenant is drawn weight-proportional,
	// so a tenant's expected record share within the phase equals its
	// normalized weight.
	Weights []float64
	// Switch is the inter-context-switch arrival model.
	Switch Arrival
	// Mix optionally replaces the dynamic branch mixture for this
	// phase (regions are rebuilt per image with the new slot mix).
	Mix *DynMix
	// Drift flips each conditional outcome with this probability,
	// modelling phase-local behavioural noise (mispredictions rise
	// with it regardless of predictor).
	Drift float64
	// RampFrom/RampTo linearly scale switch density across the phase
	// (vhive "sweep"): the sampled interval is divided by the current
	// load multiplier. Both zero means flat (multiplier 1).
	RampFrom, RampTo float64
	// Burst optionally adds periodic switch-density bursts.
	Burst *BurstDef
}

func (ph *PhaseDef) validate(tenants int) error {
	if ph.Records <= 0 {
		return fmt.Errorf("phase %q: Records must be positive", ph.Name)
	}
	if len(ph.Weights) != 0 && len(ph.Weights) != tenants {
		return fmt.Errorf("phase %q: %d weights for %d tenants", ph.Name, len(ph.Weights), tenants)
	}
	sum := 0.0
	for _, w := range ph.Weights {
		if !(w >= 0 && w < math.Inf(1)) {
			return fmt.Errorf("phase %q: weight %v out of range", ph.Name, w)
		}
		sum += w
	}
	if len(ph.Weights) != 0 && !(sum > 0) {
		return fmt.Errorf("phase %q: weights sum to zero", ph.Name)
	}
	if err := ph.Switch.validate(); err != nil {
		return fmt.Errorf("phase %q: %v", ph.Name, err)
	}
	if ph.Mix != nil {
		if err := ph.Mix.validate(); err != nil {
			return fmt.Errorf("phase %q: %v", ph.Name, err)
		}
	}
	if !(ph.Drift >= 0 && ph.Drift <= 0.5) {
		return fmt.Errorf("phase %q: drift %v out of [0, 0.5]", ph.Name, ph.Drift)
	}
	if (ph.RampFrom == 0) != (ph.RampTo == 0) {
		return fmt.Errorf("phase %q: ramp endpoints must both be set or both zero", ph.Name)
	}
	if ph.RampFrom != 0 {
		for _, v := range []float64{ph.RampFrom, ph.RampTo} {
			if !(v > 0 && v <= 1000) {
				return fmt.Errorf("phase %q: ramp multiplier %v out of (0, 1000]", ph.Name, v)
			}
		}
	}
	if ph.Burst != nil {
		if err := ph.Burst.validate(); err != nil {
			return fmt.Errorf("phase %q: %v", ph.Name, err)
		}
	}
	return nil
}

// PhasedProfile parameterizes a phase-structured multi-tenant workload.
type PhasedProfile struct {
	// Name seeds the generator and labels the trace.
	Name string
	// Seed is mixed into the name-derived rng state so validation
	// harnesses can draw many independent trace instances of one
	// profile. Zero is the canonical stream used by the tracestore.
	Seed    uint64
	Tenants []TenantSpec
	Phases  []PhaseDef
}

// Validate checks the phased profile for generator-breaking errors.
func (pp *PhasedProfile) Validate() error {
	if pp.Name == "" {
		return fmt.Errorf("phased profile: empty name")
	}
	if len(pp.Tenants) < 1 || len(pp.Tenants) > 64 {
		return fmt.Errorf("phased profile %q: %d tenants out of [1, 64]", pp.Name, len(pp.Tenants))
	}
	if len(pp.Phases) < 1 || len(pp.Phases) > 64 {
		return fmt.Errorf("phased profile %q: %d phases out of [1, 64]", pp.Name, len(pp.Phases))
	}
	for i := range pp.Tenants {
		t := &pp.Tenants[i]
		if t.Image < 0 || t.Image >= len(pp.Tenants) {
			return fmt.Errorf("phased profile %q: tenant %d image %d out of range", pp.Name, i, t.Image)
		}
		prof := t.Profile
		prof.Records = 1 // tenant profiles carry no record budget
		prof.Processes = 1
		if err := prof.Validate(); err != nil {
			return fmt.Errorf("phased profile %q: tenant %d: %v", pp.Name, i, err)
		}
	}
	total := 0
	for i := range pp.Phases {
		if err := pp.Phases[i].validate(len(pp.Tenants)); err != nil {
			return fmt.Errorf("phased profile %q: %v", pp.Name, err)
		}
		total += pp.Phases[i].Records
		if total > 1<<30 {
			return fmt.Errorf("phased profile %q: total records exceed 2^30", pp.Name)
		}
	}
	return nil
}

// TotalRecords sums the phases' record budgets.
func (pp *PhasedProfile) TotalRecords() int {
	total := 0
	for i := range pp.Phases {
		total += pp.Phases[i].Records
	}
	return total
}

// PhaseBoundaries rescales the phases proportionally onto a records
// budget and returns len(phases)+1 cumulative boundaries: phase i
// spans [b[i], b[i+1]). Rounding is cumulative so the boundaries are
// monotone and b[len] == records exactly; a tiny budget can leave a
// phase with zero records.
func PhaseBoundaries(phases []PhaseDef, records int) []int {
	total := 0
	for i := range phases {
		total += phases[i].Records
	}
	b := make([]int, len(phases)+1)
	if total <= 0 || records <= 0 {
		return b
	}
	cum := 0
	for i := range phases {
		cum += phases[i].Records
		b[i+1] = int(math.Round(float64(records) * float64(cum) / float64(total)))
	}
	b[len(phases)] = records
	return b
}

// PhasedGenerator produces phase-structured traces. Construct with
// NewPhasedGenerator; a PhasedGenerator is single-goroutine and
// single-shot (Generate consumes it).
type PhasedGenerator struct {
	pp      PhasedProfile
	records int
	core    *Generator // stepping machinery: shared rng, ghist, call stacks
	images  []*program
	// baseRegions[image] is the region set built with the owning
	// tenant's own mix; regions[phase][image] holds per-phase
	// overrides (nil for phases without a mix override).
	baseRegions [][]region
	regions     [][][]region
}

// phasedSeed derives the rng seed: FNV-1a of the name, mixed with the
// instance seed so distinct seeds give independent streams.
func phasedSeed(name string, seed uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	if seed != 0 {
		s := seed
		h ^= rng.SplitMix64(&s)
	}
	return h
}

// NewPhasedGenerator validates the profile and builds the static code
// layout (images, kernel, per-phase regions) for a records-record run.
func NewPhasedGenerator(pp PhasedProfile, records int) (*PhasedGenerator, error) {
	if err := pp.Validate(); err != nil {
		return nil, err
	}
	if records <= 0 {
		records = pp.TotalRecords()
	}
	g := &PhasedGenerator{pp: pp, records: records}
	g.core = &Generator{r: rng.New(phasedSeed(pp.Name, pp.Seed))}

	// Image i's layout comes from the first tenant using image i.
	imageOwner := map[int]int{}
	maxImage := 0
	for ti := range pp.Tenants {
		img := pp.Tenants[ti].Image
		if _, ok := imageOwner[img]; !ok {
			imageOwner[img] = ti
		}
		if img > maxImage {
			maxImage = img
		}
	}
	g.images = make([]*program, maxImage+1)
	kernelConds := 0
	for img := 0; img <= maxImage; img++ {
		owner, ok := imageOwner[img]
		if !ok {
			return nil, fmt.Errorf("phased profile %q: image %d has no tenant", pp.Name, img)
		}
		g.core.p = pp.Tenants[owner].Profile
		g.images[img] = g.core.buildProgram(progBase(img))
		g.baseRegions = append(g.baseRegions, g.images[img].regions)
		if kc := pp.Tenants[owner].Profile.KernelConds; kc > kernelConds {
			kernelConds = kc
		}
	}
	if kernelConds > 0 {
		kp := pp.Tenants[imageOwner[0]].Profile
		kp.StaticConds = kernelConds
		kp.StaticIndirects = max(1, kernelConds/16)
		kp.StaticCallees = max(1, kernelConds/8)
		kp.StaticJumps = max(1, kernelConds/8)
		g.core.p = kp
		g.core.kernel = g.core.buildProgram(kernelBase)
	}

	// Per-phase region sets for phases that override the dynamic mix.
	// Built in (phase, image) order so rng consumption is fixed.
	g.regions = make([][][]region, len(pp.Phases))
	for pi := range pp.Phases {
		mix := pp.Phases[pi].Mix
		if mix == nil {
			continue
		}
		g.regions[pi] = make([][]region, len(g.images))
		for img := range g.images {
			p := pp.Tenants[imageOwner[img]].Profile
			p.CondFrac, p.JumpFrac = mix.Cond, mix.Jump
			p.CallFrac, p.IndirectFrac = mix.Call, mix.Indirect
			g.core.p = p
			tmp := *g.images[img]
			tmp.regions = nil
			g.core.buildRegions(&tmp)
			g.regions[pi][img] = tmp.regions
		}
	}

	g.core.procs = make([]procState, len(pp.Tenants))
	for ti := range g.core.procs {
		g.core.procs[ti].prog = pp.Tenants[ti].Image
	}
	return g, nil
}

// weightsOf returns the phase's effective cumulative tenant weights.
func (g *PhasedGenerator) weightsOf(ph *PhaseDef) []float64 {
	n := len(g.pp.Tenants)
	cum := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		w := 1.0
		if len(ph.Weights) == n {
			w = ph.Weights[i]
		}
		sum += w
		cum[i] = sum
	}
	for i := range cum {
		cum[i] /= sum
	}
	return cum
}

// loadAt returns the switch-density multiplier at phase offset i of n.
func loadAt(ph *PhaseDef, i, n int) float64 {
	load := 1.0
	if ph.RampFrom != 0 && n > 1 {
		load = ph.RampFrom + (ph.RampTo-ph.RampFrom)*float64(i)/float64(n-1)
	}
	if ph.Burst != nil && i%ph.Burst.Period < ph.Burst.Len {
		load *= ph.Burst.Factor
	}
	return load
}

// Generate materializes the full phase-structured trace as AoS records.
// The stream is produced columnar (GenerateColumns) and converted, so
// both views are always byte-identical.
func (g *PhasedGenerator) Generate() *Trace {
	return g.GenerateColumns().Trace()
}

// GenerateColumns materializes the phase-structured trace directly in
// the columnar replay representation, skipping the intermediate AoS
// slice exactly like Generator.GenerateColumns.
func (g *PhasedGenerator) GenerateColumns() *Columns {
	c := &Columns{
		Name:     g.pp.Name,
		PCs:      make([]uint64, 0, g.records),
		Targets:  make([]uint64, 0, g.records),
		Flags:    make([]byte, 0, g.records),
		PIDs:     make([]uint32, 0, g.records),
		Programs: make([]uint16, 0, g.records),
	}
	core := g.core
	bounds := PhaseBoundaries(g.pp.Phases, g.records)

	cur := 0 // current tenant
	core.p = g.pp.Tenants[cur].Profile
	untilSys := core.interval(core.p.SyscallMean)
	kernelLeft := 0

	for pi := range g.pp.Phases {
		ph := &g.pp.Phases[pi]
		n := bounds[pi+1] - bounds[pi]
		if n <= 0 {
			continue
		}
		// Install this phase's regions (base regions when no override).
		for img, prog := range g.images {
			if g.regions[pi] != nil {
				prog.regions = g.regions[pi][img]
			} else {
				prog.regions = g.baseRegions[img]
			}
		}
		core.flipProb = ph.Drift
		cum := g.weightsOf(ph)
		nextSwitch := g.switchInterval(ph, 0, n)

		for i := 0; i < n; i++ {
			proc := &core.procs[cur]
			inKernel := kernelLeft > 0 && core.kernel != nil
			prog := g.images[proc.prog]
			if inKernel {
				prog = core.kernel
				kernelLeft--
			}

			rec := core.step(prog, proc, inKernel)
			program := uint16(proc.prog)
			if inKernel {
				program = 0xffff
			}
			c.PCs = append(c.PCs, rec.PC)
			c.Targets = append(c.Targets, rec.Target)
			c.Flags = append(c.Flags, PackFlags(rec.Kind, rec.Taken, inKernel))
			c.PIDs = append(c.PIDs, uint32(cur+1))
			c.Programs = append(c.Programs, program)

			untilSys--
			if untilSys <= 0 && core.p.KernelBurstMean > 0 {
				kernelLeft = core.r.Geometric(1/float64(core.p.KernelBurstMean), core.p.KernelBurstMean*8)
				untilSys = core.interval(core.p.SyscallMean)
			}
			nextSwitch--
			if nextSwitch <= 0 {
				if len(g.pp.Tenants) > 1 {
					// Weight-proportional draw over all tenants; a
					// self-draw is a no-op switch, which keeps each
					// tenant's expected record share exactly at its
					// normalized weight (renewal argument: segment
					// owner is iid and independent of segment length).
					u := core.r.Float64()
					next := 0
					for next < len(cum)-1 && cum[next] < u {
						next++
					}
					if next != cur {
						cur = next
						core.p = g.pp.Tenants[cur].Profile
					}
				}
				nextSwitch = g.switchInterval(ph, i+1, n)
			}
		}
		// Phase boundaries reset the mix, not the tenants: regions for
		// the next phase are installed above; cursors, call stacks, and
		// kernel state carry across so control flow stays continuous.
	}
	return c
}

// switchInterval samples the records until the next context switch at
// phase offset i, compressing the raw arrival draw by the local load.
func (g *PhasedGenerator) switchInterval(ph *PhaseDef, i, n int) int {
	raw := ph.Switch.sampleFloat(g.core.r)
	load := loadAt(ph, i, n)
	iv := int(raw/load + 0.5)
	if iv < 1 {
		iv = 1
	}
	return iv
}

// GeneratePhased builds a phase-structured trace in one call, rescaled
// to records (<= 0 means the profile's own total).
func GeneratePhased(pp PhasedProfile, records int) (*Trace, error) {
	g, err := NewPhasedGenerator(pp, records)
	if err != nil {
		return nil, err
	}
	return g.Generate(), nil
}

// GeneratePhasedColumns is GeneratePhased in the columnar replay
// representation, skipping the intermediate AoS slice.
func GeneratePhasedColumns(pp PhasedProfile, records int) (*Columns, error) {
	g, err := NewPhasedGenerator(pp, records)
	if err != nil {
		return nil, err
	}
	return g.GenerateColumns(), nil
}
