package trace

import (
	"bytes"
	"math"
	"testing"

	"stbpu/internal/rng"
	"stbpu/internal/stats"
)

// phasedFixture is a small two-tenant, two-phase profile exercising
// weights, a mix override, drift, and a burst modifier.
func phasedFixture() PhasedProfile {
	web, _ := Preset("apache2_prefork_c64")
	db, _ := Preset("mysql_64con_50s")
	return PhasedProfile{
		Name: "phased-test",
		Tenants: []TenantSpec{
			{Name: "web", Profile: web, Image: 0},
			{Name: "db", Profile: db, Image: 1},
		},
		Phases: []PhaseDef{
			{Name: "a", Records: 6000, Weights: []float64{2, 1},
				Switch: Arrival{Kind: ArrivalGeometric, Mean: 800}},
			{Name: "b", Records: 6000, Weights: []float64{1, 3},
				Switch: Arrival{Kind: ArrivalGamma, Mean: 500, Shape: 2},
				Mix:    &DynMix{Cond: 0.6, Jump: 0.1, Call: 0.08, Indirect: 0.08},
				Drift:  0.02,
				Burst:  &BurstDef{Period: 2000, Len: 500, Factor: 6}},
		},
	}
}

func TestPhasedGenerateDeterministic(t *testing.T) {
	pp := phasedFixture()
	a, err := GeneratePhased(pp, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GeneratePhased(pp, 0)
	if err != nil {
		t.Fatal(err)
	}
	var ab, bb bytes.Buffer
	if err := Write(&ab, a); err != nil {
		t.Fatal(err)
	}
	if err := Write(&bb, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		t.Error("same profile generated different bytes")
	}
	if err := a.Validate(); err != nil {
		t.Errorf("generated trace invalid: %v", err)
	}
	if len(a.Records) != pp.TotalRecords() {
		t.Errorf("generated %d records, want %d", len(a.Records), pp.TotalRecords())
	}

	seeded := pp
	seeded.Seed = 7
	c, err := GeneratePhased(seeded, 0)
	if err != nil {
		t.Fatal(err)
	}
	var cb bytes.Buffer
	if err := Write(&cb, c); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ab.Bytes(), cb.Bytes()) {
		t.Error("distinct instance seeds produced identical traces")
	}
}

func TestPhasedRescalesToBudget(t *testing.T) {
	tr, err := GeneratePhased(phasedFixture(), 3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 3000 {
		t.Errorf("rescaled trace has %d records, want 3000", len(tr.Records))
	}
}

func TestPhaseBoundariesProperties(t *testing.T) {
	phases := []PhaseDef{{Records: 3}, {Records: 5}, {Records: 2}}
	for _, records := range []int{1, 2, 7, 10, 100, 99999} {
		b := PhaseBoundaries(phases, records)
		if len(b) != len(phases)+1 {
			t.Fatalf("records=%d: %d boundaries", records, len(b))
		}
		if b[0] != 0 || b[len(b)-1] != records {
			t.Errorf("records=%d: endpoints %v", records, b)
		}
		for i := 1; i < len(b); i++ {
			if b[i] < b[i-1] {
				t.Errorf("records=%d: non-monotone %v", records, b)
			}
		}
	}
	// Proportionality at a clean multiple.
	b := PhaseBoundaries(phases, 100)
	if b[1] != 30 || b[2] != 80 {
		t.Errorf("proportional split wrong: %v", b)
	}
}

func TestPhasedValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*PhasedProfile)
	}{
		{"zero-record phase", func(pp *PhasedProfile) { pp.Phases[0].Records = 0 }},
		{"image out of range", func(pp *PhasedProfile) { pp.Tenants[0].Image = 9 }},
		{"arrival mean below 1", func(pp *PhasedProfile) { pp.Phases[0].Switch.Mean = 0.2 }},
		{"nan arrival mean", func(pp *PhasedProfile) { pp.Phases[0].Switch.Mean = math.NaN() }},
		{"gamma without shape", func(pp *PhasedProfile) {
			pp.Phases[0].Switch = Arrival{Kind: ArrivalGamma, Mean: 100}
		}},
		{"negative weight", func(pp *PhasedProfile) { pp.Phases[0].Weights = []float64{1, -1} }},
		{"nan weight", func(pp *PhasedProfile) { pp.Phases[0].Weights = []float64{1, math.NaN()} }},
		{"all-zero weights", func(pp *PhasedProfile) { pp.Phases[0].Weights = []float64{0, 0} }},
		{"weight arity", func(pp *PhasedProfile) { pp.Phases[0].Weights = []float64{1, 2, 3} }},
		{"one-sided ramp", func(pp *PhasedProfile) { pp.Phases[0].RampFrom = 2 }},
		{"drift past half", func(pp *PhasedProfile) { pp.Phases[0].Drift = 0.6 }},
		{"burst len past period", func(pp *PhasedProfile) {
			pp.Phases[0].Burst = &BurstDef{Period: 10, Len: 20, Factor: 2}
		}},
		{"mix without cond", func(pp *PhasedProfile) {
			pp.Phases[0].Mix = &DynMix{Jump: 0.5}
		}},
		{"nan mix", func(pp *PhasedProfile) {
			pp.Phases[0].Mix = &DynMix{Cond: math.NaN()}
		}},
		{"no phases", func(pp *PhasedProfile) { pp.Phases = nil }},
		{"no tenants", func(pp *PhasedProfile) { pp.Tenants = nil }},
	}
	for _, tc := range cases {
		pp := phasedFixture()
		tc.mutate(&pp)
		if err := pp.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestArrivalSamplerDistributions KS-tests the Gamma and Weibull
// samplers against their analytic CDFs — the null is exact here, so a
// real p-value threshold applies (the stream is deterministic, so this
// cannot flake; a failure means the sampler, not luck, changed).
func TestArrivalSamplerDistributions(t *testing.T) {
	const n = 3000
	draw := func(a Arrival) []float64 {
		r := rng.New(0x5eed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = a.sampleFloat(r)
		}
		return xs
	}

	// Gamma(shape 2, scale mean/2) = Erlang-2: F(x) = 1-(1+x/θ)e^{-x/θ}.
	gamma := draw(Arrival{Kind: ArrivalGamma, Mean: 1000, Shape: 2})
	theta := 500.0
	d, p, err := stats.KS(gamma, func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return 1 - (1+x/theta)*math.Exp(-x/theta)
	})
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.01 {
		t.Errorf("gamma sampler rejected: D=%.4f p=%.4g", d, p)
	}

	// Weibull(shape k, scale λ = mean/Γ(1+1/k)).
	k := 1.5
	weibull := draw(Arrival{Kind: ArrivalWeibull, Mean: 1000, Shape: k})
	lambda := 1000 / math.Gamma(1+1/k)
	d, p, err = stats.KS(weibull, func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return 1 - math.Exp(-math.Pow(x/lambda, k))
	})
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.01 {
		t.Errorf("weibull sampler rejected: D=%.4f p=%.4g", d, p)
	}

	// Fixed is degenerate at the mean; geometric matches its mean to a
	// few percent (discrete, capped at 8x mean like the flat generator).
	for _, x := range draw(Arrival{Kind: ArrivalFixed, Mean: 1234}) {
		if x != 1234 {
			t.Fatalf("fixed arrival drew %v", x)
		}
	}
	geo := draw(Arrival{Kind: ArrivalGeometric, Mean: 700})
	if m := stats.Mean(geo); math.Abs(m-700) > 0.05*700 {
		t.Errorf("geometric sampler mean %v, want ~700", m)
	}
	// Sampler means for the continuous families, while we are here.
	if m := stats.Mean(gamma); math.Abs(m-1000) > 0.05*1000 {
		t.Errorf("gamma sampler mean %v, want ~1000", m)
	}
	if m := stats.Mean(weibull); math.Abs(m-1000) > 0.05*1000 {
		t.Errorf("weibull sampler mean %v, want ~1000", m)
	}
}

// TestProfileWithRecordsProperty pins WithRecords as a pure field
// update across edge budgets: only Records may change, and validity is
// exactly "n >= 1" for an otherwise-valid profile.
func TestProfileWithRecordsProperty(t *testing.T) {
	base, _ := Preset("apache2_prefork_c64")
	for _, n := range []int{0, 1, 2, 7, 1 << 20} {
		p := base.WithRecords(n)
		if p.Records != n {
			t.Fatalf("WithRecords(%d).Records = %d", n, p.Records)
		}
		p.Records = base.Records
		if p != base {
			t.Fatalf("WithRecords(%d) mutated another field", n)
		}
		pn := base.WithRecords(n)
		err := pn.Validate()
		if n >= 1 && err != nil {
			t.Errorf("WithRecords(%d) invalid: %v", n, err)
		}
		if n < 1 && err == nil {
			t.Errorf("WithRecords(%d) accepted", n)
		}
	}
}

// TestProfileEdgeGeneration drives Generate through degenerate but
// legal profiles: a single process with no switching at all, and
// switch cadences at both extremes.
func TestProfileEdgeGeneration(t *testing.T) {
	base, _ := Preset("505.mcf")

	single := base.WithRecords(2000)
	single.Processes = 1
	single.CtxSwitchMean = 0 // switching disabled
	tr, err := Generate(single)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	s := tr.ComputeStats()
	if s.Processes != 1 || s.ContextSwitches != 0 {
		t.Errorf("single-process trace: %d procs, %d switches", s.Processes, s.ContextSwitches)
	}

	// Extreme cadences: switch (almost) every record, and switch far
	// less often than the trace is long.
	for _, mean := range []int{1, 1 << 30} {
		p := base.WithRecords(2000)
		p.Processes = 3
		p.CtxSwitchMean = mean
		tr, err := Generate(p)
		if err != nil {
			t.Fatalf("CtxSwitchMean=%d: %v", mean, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("CtxSwitchMean=%d: %v", mean, err)
		}
	}
}

func BenchmarkPhasedGenerate(b *testing.B) {
	// The production path: caches generate straight into columns
	// (tracestore.PresetGenColumns), never through the AoS slice.
	pp := phasedFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GeneratePhasedColumns(pp, 0); err != nil {
			b.Fatal(err)
		}
	}
}
