package pt

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"stbpu/internal/trace"
)

func genPreset(t *testing.T, name string, n int) *trace.Trace {
	t.Helper()
	prof, err := trace.Preset(name)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Generate(prof.WithRecords(n))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func roundTrip(t *testing.T, tr *trace.Trace) (Stats, *trace.Trace) {
	t.Helper()
	var buf bytes.Buffer
	st, err := Encode(&buf, tr)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return st, got
}

func recordsEqual(t *testing.T, want, got *trace.Trace) {
	t.Helper()
	if want.Name != got.Name {
		t.Fatalf("name: got %q, want %q", got.Name, want.Name)
	}
	if len(want.Records) != len(got.Records) {
		t.Fatalf("record count: got %d, want %d", len(got.Records), len(want.Records))
	}
	for i := range want.Records {
		if want.Records[i] != got.Records[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got.Records[i], want.Records[i])
		}
	}
}

func TestRoundTripPresets(t *testing.T) {
	for _, name := range []string{"505.mcf", "apache2_prefork_c128", "chrome-1speedometer"} {
		t.Run(name, func(t *testing.T) {
			tr := genPreset(t, name, 20_000)
			_, got := roundTrip(t, tr)
			recordsEqual(t, tr, got)
		})
	}
}

func TestRoundTripEmptyTrace(t *testing.T) {
	tr := &trace.Trace{Name: "empty"}
	st, got := roundTrip(t, tr)
	if len(got.Records) != 0 || got.Name != "empty" {
		t.Fatalf("empty trace corrupted: %+v", got)
	}
	if st.Records != 0 {
		t.Errorf("stats.Records = %d, want 0", st.Records)
	}
}

func TestRoundTripSingleRecordPerKind(t *testing.T) {
	for k := trace.KindCond; k <= trace.KindReturn; k++ {
		rec := trace.Record{PC: 0x40_1000, Kind: k, Taken: true, Target: 0x40_2000, PID: 3}
		if k == trace.KindCond {
			rec.Taken = false
			rec.Target = rec.FallThrough()
		}
		tr := &trace.Trace{Name: "one", Records: []trace.Record{rec}}
		_, got := roundTrip(t, tr)
		recordsEqual(t, tr, got)
	}
}

// randomTrace builds an adversarial record stream: arbitrary interleaving
// of processes and modes, nondeterministic control flow (the same flow
// address leads to different branches), and re-trained conditional
// targets — everything the edge-learning protocol must survive.
func randomTrace(seed int64, n int) *trace.Trace {
	r := rand.New(rand.NewSource(seed))
	tr := &trace.Trace{Name: "random"}
	for i := 0; i < n; i++ {
		rec := trace.Record{
			PC:      r.Uint64() & trace.VAMask,
			Kind:    trace.Kind(r.Intn(6)),
			PID:     uint32(1 + r.Intn(3)),
			Program: uint16(r.Intn(2)),
			Kernel:  r.Intn(5) == 0,
		}
		rec.Taken = true
		if rec.Kind == trace.KindCond && r.Intn(2) == 0 {
			rec.Taken = false
		}
		if rec.Taken {
			rec.Target = r.Uint64() & trace.VAMask
		} else {
			rec.Target = rec.FallThrough()
		}
		tr.Records = append(tr.Records, rec)
	}
	return tr
}

func TestRoundTripAdversarialRandom(t *testing.T) {
	check := func(seed int64) bool {
		tr := randomTrace(seed, 500)
		var buf bytes.Buffer
		if _, err := Encode(&buf, tr); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		if len(got.Records) != len(tr.Records) {
			return false
		}
		for i := range tr.Records {
			if tr.Records[i] != got.Records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRoundTripRetrainedConditionalTarget(t *testing.T) {
	// The same conditional branch from the same flow address changes its
	// taken target mid-stream (synthetic traces do this; real code via
	// self-modification). The encoder must re-teach the edge.
	mk := func(target uint64) trace.Record {
		return trace.Record{PC: 0x40_1000, Kind: trace.KindCond, Taken: true,
			Target: target, PID: 1}
	}
	tr := &trace.Trace{Name: "retrain", Records: []trace.Record{
		mk(0x40_2000), mk(0x40_2000), mk(0x40_3000), mk(0x40_3000), mk(0x40_2000),
	}}
	// Each record's flow lands at its target; force the flow back by
	// interleaving a jump to a fixed address so the edge key repeats.
	var recs []trace.Record
	for _, rec := range tr.Records {
		recs = append(recs,
			trace.Record{PC: 0x40_0ff0, Kind: trace.KindDirectJump, Taken: true,
				Target: 0x40_1000, PID: 1},
			rec)
	}
	tr.Records = recs
	_, got := roundTrip(t, tr)
	recordsEqual(t, tr, got)
}

func TestStatsDensity(t *testing.T) {
	tr := genPreset(t, "505.mcf", 50_000)
	st, _ := roundTrip(t, tr)
	if st.Records != len(tr.Records) {
		t.Errorf("stats.Records = %d, want %d", st.Records, len(tr.Records))
	}
	// Steady-state density: once the edge table warms up, conditional
	// and direct branches cost ~1 bit. SPEC-like traces must land far
	// below the naive ~20-byte fixed layout.
	if bpr := st.BytesPerRecord(); bpr > 4 {
		t.Errorf("bytes/record = %.2f, want <= 4 for a loopy workload", bpr)
	}
	// Every conditional and direct branch carries exactly one TNT tick.
	ticks := 0
	for _, rec := range tr.Records {
		if !rec.Kind.IsIndirect() {
			ticks++
		}
	}
	if st.TNTBits != ticks {
		t.Errorf("TNT bits = %d, want %d (one per non-indirect record)", st.TNTBits, ticks)
	}
	if st.PSBPackets == 0 {
		t.Error("expected periodic PSB sync packets in a 50k-record stream")
	}
}

func TestTIPCompressionKicksIn(t *testing.T) {
	// Indirect branches bouncing between nearby targets should use
	// compressed TIP payloads: total bytes must be well under 7 bytes
	// per TIP packet.
	tr := &trace.Trace{Name: "tip"}
	for i := 0; i < 1000; i++ {
		tr.Records = append(tr.Records, trace.Record{
			PC:     0x40_1000,
			Kind:   trace.KindIndirectJump,
			Taken:  true,
			Target: 0x40_2000 + uint64(i%4)*0x10,
			PID:    1,
		})
	}
	var buf bytes.Buffer
	st, err := Encode(&buf, tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.TIPPackets != 1000 {
		t.Fatalf("TIP packets = %d, want 1000", st.TIPPackets)
	}
	// Near-identical targets compress to 2-byte payloads + 1-byte
	// headers; allow generous slack for the BIP warmup.
	if st.Bytes > 4*1000 {
		t.Errorf("stream is %d bytes for 1000 compressed TIPs, want < 4000", st.Bytes)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recordsEqual(t, tr, got)
}

func TestDecodeBadMagic(t *testing.T) {
	_, err := Decode(bytes.NewReader([]byte("NOPE....")))
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("got %v, want ErrBadMagic", err)
	}
}

func TestDecodeBadVersion(t *testing.T) {
	raw := append(append([]byte{}, streamMagic[:]...), 99, 0, 0)
	_, err := Decode(bytes.NewReader(raw))
	if !errors.Is(err, ErrBadVersion) {
		t.Errorf("got %v, want ErrBadVersion", err)
	}
}

func TestDecodeTruncation(t *testing.T) {
	tr := genPreset(t, "541.leela", 5_000)
	var buf bytes.Buffer
	if _, err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Truncating at any prefix must produce an error, never a panic and
	// never a silently short trace.
	for _, cut := range []int{len(full) - 1, len(full) / 2, 8, 5} {
		_, err := Decode(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Errorf("truncation at %d bytes decoded without error", cut)
		}
	}
}

func TestDecodeCorruptionNeverPanics(t *testing.T) {
	tr := genPreset(t, "541.leela", 2_000)
	var buf bytes.Buffer
	if _, err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		corrupt := make([]byte, len(full))
		copy(corrupt, full)
		pos := 7 + r.Intn(len(corrupt)-7) // keep the header valid
		corrupt[pos] ^= byte(1 + r.Intn(255))
		got, err := Decode(bytes.NewReader(corrupt))
		if err != nil {
			continue // detected — good
		}
		// A flip that survives decoding must still yield a well-formed
		// trace (the flip may have landed in a payload byte, changing
		// values but not structure).
		if got == nil {
			t.Fatalf("trial %d: nil trace with nil error", trial)
		}
	}
}

func TestDecoderStreamingAPI(t *testing.T) {
	tr := genPreset(t, "505.mcf", 3_000)
	var buf bytes.Buffer
	if _, err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != tr.Name {
		t.Errorf("Name() = %q, want %q", d.Name(), tr.Name)
	}
	for !d.done {
		if err := d.step(); err != nil {
			if err == io.EOF {
				t.Fatal("unexpected EOF before EOT")
			}
			t.Fatal(err)
		}
	}
	if len(d.records) != len(tr.Records) {
		t.Fatalf("streamed %d records, want %d", len(d.records), len(tr.Records))
	}
}

func TestEncoderNameTooLong(t *testing.T) {
	_, err := NewEncoder(io.Discard, string(make([]byte, 70_000)))
	if err == nil {
		t.Error("expected an error for an oversized name")
	}
}

func TestZigzagRoundTrip(t *testing.T) {
	check := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	prof, err := trace.Preset("505.mcf")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := trace.Generate(prof.WithRecords(50_000))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := Encode(io.Discard, tr)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(st.BytesPerRecord(), "bytes/record")
	}
	b.SetBytes(int64(len(tr.Records)))
}

func BenchmarkDecode(b *testing.B) {
	prof, err := trace.Preset("505.mcf")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := trace.Generate(prof.WithRecords(50_000))
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Encode(&buf, tr); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(tr.Records)))
}
