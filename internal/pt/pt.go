// Package pt implements an Intel Processor Trace–style packet codec for
// branch traces: the trace-collection substrate of §VII ("we utilize the
// Intel processor trace (PT) technology to collect large amounts of branch
// instruction traces").
//
// Real PT hardware emits a highly compressed packet stream — conditional
// outcomes ride in TNT packets at one bit per branch, indirect targets in
// TIP packets with last-IP compression, and context/mode switches in
// PIP/MODE packets — and the software decoder reconstructs full control
// flow by walking the program image from each flow address to the next
// branch instruction. No program images exist for this repository's
// synthetic workloads, so the image is substituted (DESIGN.md §2) by a BIP
// ("branch IP") packet that teaches the decoder the control-flow edge the
// first time a flow address is seen; both sides keep identical edge tables
// and the steady state matches real PT: hot loops cost one TNT bit per
// branch and zero bytes per direct branch target.
//
// Two deliberate deviations from real PT, both documented where they
// matter: (1) every record consumes an ordering tick (a TNT bit or a TIP
// packet) so that cross-process interleaving — which the simulator's
// flush/re-randomization models depend on — survives the round trip; real
// PT needs no tick for unconditional direct branches because it traces one
// logical processor at a time. (2) Packet framing uses a uniform
// type-byte + varint layout instead of PT's irregular bit-level headers;
// the packet *vocabulary* and compression structure are preserved, the
// exact bit patterns are not.
package pt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"stbpu/internal/trace"
)

// Packet types.
const (
	pktPSB  = 1 // stream-boundary sync marker
	pktPIP  = 2 // process context: PID + program
	pktMODE = 3 // execution mode: kernel flag
	pktTNT  = 4 // taken/not-taken bits (and direct-branch ticks)
	pktTIP  = 5 // target IP for indirect branches/returns
	pktBIP  = 6 // branch IP: teaches one control-flow edge
	pktEOT  = 7 // end of trace + record count
)

// Header bit layout: low 3 bits = packet type. TIP uses bits 3-4 for the
// IP-compression level; BIP uses bits 3-5 for the branch kind and bit 6
// for "static target present".
const (
	pktTypeMask = 0x07

	tipLevelShift = 3
	tipLevelMask  = 0x03

	bipKindShift = 3
	bipKindMask  = 0x07
	bipHasStatic = 0x40
)

// psbInterval is how many records separate PSB sync markers.
const psbInterval = 4096

// tntFlushBits caps how many ticks accumulate before a TNT packet is
// forced out (a full 8-byte payload).
const tntFlushBits = 64

var (
	streamMagic = [4]byte{'S', 'T', 'P', 'T'}
	psbPattern  = [3]byte{'P', 'S', 'B'}
)

const streamVersion = 1

// Errors returned by the decoder.
var (
	// ErrBadMagic indicates the stream is not an STPT packet stream.
	ErrBadMagic = errors.New("pt: bad magic")
	// ErrBadVersion indicates an unsupported format version.
	ErrBadVersion = errors.New("pt: unsupported version")
	// ErrDesync indicates packet-level corruption: the decoder's edge
	// table and the packet stream disagree.
	ErrDesync = errors.New("pt: decoder desynchronized")
	// ErrTruncated indicates the stream ended without an EOT packet.
	ErrTruncated = errors.New("pt: truncated stream")
)

// Stats reports the composition of an encoded stream.
type Stats struct {
	Records int
	Bytes   int

	PSBPackets  int
	PIPPackets  int
	MODEPackets int
	TNTPackets  int
	TIPPackets  int
	BIPPackets  int

	// TNTBits counts ordering ticks carried in TNT packets.
	TNTBits int
}

// BytesPerRecord is the headline density metric (real PT streams run at a
// fraction of a byte per branch in steady state).
func (s Stats) BytesPerRecord() float64 {
	if s.Records == 0 {
		return 0
	}
	return float64(s.Bytes) / float64(s.Records)
}

// edge is one learned control-flow edge: the branch reached from a flow
// address, with its statically known target when the kind has one.
type edge struct {
	pc        uint64
	kind      trace.Kind
	target    uint64 // static (taken) target for cond/direct kinds
	hasStatic bool
}

// staticKind reports whether the branch kind carries an immediate target
// that the edge table can learn (conditional and direct branches).
func staticKind(k trace.Kind) bool {
	switch k {
	case trace.KindCond, trace.KindDirectJump, trace.KindDirectCall:
		return true
	default:
		return false
	}
}

// entState is the per-software-entity flow state, mirrored exactly by the
// encoder and the decoder.
type entState struct {
	flow     uint64
	haveFlow bool
	edges    map[uint64]edge
}

func newEntState() *entState { return &entState{edges: make(map[uint64]edge)} }

// entityID folds PID and privilege mode, matching how the BPU models
// separate software entities.
func entityID(pid uint32, kernel bool) uint64 {
	id := uint64(pid)
	if kernel {
		id |= 1 << 63
	}
	return id
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// countingWriter tracks emitted bytes for Stats.
type countingWriter struct {
	w *bufio.Writer
	n int
}

func (c *countingWriter) WriteByte(b byte) error {
	c.n++
	return c.w.WriteByte(b)
}

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += len(p)
	return c.w.Write(p)
}

func (c *countingWriter) writeUvarint(v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := c.Write(buf[:n])
	return err
}

// Encoder turns a record stream into an STPT packet stream.
type Encoder struct {
	w   *countingWriter
	err error

	states map[uint64]*entState

	curPID     uint32
	curProgram uint16
	curKernel  bool
	started    bool

	lastIP uint64 // TIP compression reference

	tntBits  []bool
	sincePSB int

	stats Stats
}

// NewEncoder writes the stream header for a trace with the given name and
// returns an encoder ready for records.
func NewEncoder(w io.Writer, name string) (*Encoder, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	if _, err := cw.Write(streamMagic[:]); err != nil {
		return nil, err
	}
	if err := cw.WriteByte(streamVersion); err != nil {
		return nil, err
	}
	if len(name) > 0xffff {
		return nil, fmt.Errorf("pt: name too long (%d bytes)", len(name))
	}
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(len(name)))
	if _, err := cw.Write(u16[:]); err != nil {
		return nil, err
	}
	if _, err := cw.Write([]byte(name)); err != nil {
		return nil, err
	}
	return &Encoder{w: cw, states: make(map[uint64]*entState)}, nil
}

func (e *Encoder) state(id uint64) *entState {
	st, ok := e.states[id]
	if !ok {
		st = newEntState()
		e.states[id] = st
	}
	return st
}

// flushTNT emits buffered ticks as one TNT packet. It must run before any
// other packet type so the decoder can apply bits strictly in order.
func (e *Encoder) flushTNT() {
	if e.err != nil || len(e.tntBits) == 0 {
		return
	}
	n := len(e.tntBits)
	payload := make([]byte, (n+7)/8)
	for i, bit := range e.tntBits {
		if bit {
			payload[i/8] |= 1 << (i % 8)
		}
	}
	e.emitByte(pktTNT)
	e.emitByte(byte(n - 1)) // 1..64 encoded as 0..63
	e.emitBytes(payload)
	e.stats.TNTPackets++
	e.stats.TNTBits += n
	e.tntBits = e.tntBits[:0]
}

func (e *Encoder) emitByte(b byte) {
	if e.err == nil {
		e.err = e.w.WriteByte(b)
	}
}

func (e *Encoder) emitBytes(p []byte) {
	if e.err == nil {
		_, e.err = e.w.Write(p)
	}
}

func (e *Encoder) emitUvarint(v uint64) {
	if e.err == nil {
		e.err = e.w.writeUvarint(v)
	}
}

// emitTIP writes a TIP packet with last-IP compression: reuse the high 32
// or 16 bits of the previous target when they match.
func (e *Encoder) emitTIP(target uint64) {
	e.flushTNT()
	level, bytes := 0, 6
	switch {
	case target>>16 == e.lastIP>>16:
		level, bytes = 1, 2
	case target>>32 == e.lastIP>>32:
		level, bytes = 2, 4
	}
	e.emitByte(byte(pktTIP | level<<tipLevelShift))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], target)
	e.emitBytes(buf[:bytes])
	e.lastIP = target
	e.stats.TIPPackets++
}

// emitBIP teaches one control-flow edge: the branch kind, its PC as a
// delta from the current flow address, and the static target when known.
func (e *Encoder) emitBIP(flowRef uint64, ed edge) {
	e.flushTNT()
	hdr := byte(pktBIP | int(ed.kind)<<bipKindShift)
	if ed.hasStatic {
		hdr |= bipHasStatic
	}
	e.emitByte(hdr)
	e.emitUvarint(zigzag(int64(ed.pc - flowRef)))
	if ed.hasStatic {
		e.emitUvarint(zigzag(int64(ed.target - ed.pc)))
	}
	e.stats.BIPPackets++
}

// Encode writes one record.
func (e *Encoder) Encode(rec trace.Record) error {
	if e.err != nil {
		return e.err
	}

	// Context packets on entity change (and for the first record).
	if !e.started || rec.PID != e.curPID || rec.Program != e.curProgram {
		e.flushTNT()
		e.emitByte(pktPIP)
		e.emitUvarint(uint64(rec.PID))
		e.emitUvarint(uint64(rec.Program))
		e.curPID, e.curProgram = rec.PID, rec.Program
		e.stats.PIPPackets++
		if !e.started {
			// Establish the mode explicitly once.
			e.emitMODE(rec.Kernel)
		}
	}
	if rec.Kernel != e.curKernel {
		e.emitMODE(rec.Kernel)
	}
	e.started = true

	st := e.state(entityID(rec.PID, rec.Kernel))
	flowRef := uint64(0)
	if st.haveFlow {
		flowRef = st.flow
	}

	// Does the learned edge table already predict this branch?
	want := edge{pc: rec.PC, kind: rec.Kind}
	if staticKind(rec.Kind) && rec.Taken {
		want.target, want.hasStatic = rec.Target, true
	}
	known, ok := st.edges[flowRef]
	match := ok && st.haveFlow && known.pc == want.pc && known.kind == want.kind
	if match && want.hasStatic {
		match = known.hasStatic && known.target == want.target
	}
	if !match {
		e.emitBIP(flowRef, want)
		st.edges[flowRef] = want
	}

	// The ordering tick.
	switch {
	case rec.Kind == trace.KindCond:
		e.tntBits = append(e.tntBits, rec.Taken)
	case rec.Kind.IsIndirect():
		e.emitTIP(rec.Target)
	default:
		e.tntBits = append(e.tntBits, true)
	}
	if len(e.tntBits) >= tntFlushBits {
		e.flushTNT()
	}

	// Advance the flow address.
	if rec.Taken {
		st.flow = rec.Target
	} else {
		st.flow = rec.FallThrough()
	}
	st.haveFlow = true

	e.stats.Records++
	e.sincePSB++
	if e.sincePSB >= psbInterval {
		e.flushTNT()
		e.emitByte(pktPSB)
		e.emitBytes(psbPattern[:])
		e.stats.PSBPackets++
		e.sincePSB = 0
	}
	return e.err
}

func (e *Encoder) emitMODE(kernel bool) {
	e.flushTNT()
	e.emitByte(pktMODE)
	var flags byte
	if kernel {
		flags = 1
	}
	e.emitByte(flags)
	e.curKernel = kernel
	e.stats.MODEPackets++
}

// Close flushes pending ticks, writes the EOT packet, and returns the
// stream statistics.
func (e *Encoder) Close() (Stats, error) {
	if e.err != nil {
		return Stats{}, e.err
	}
	e.flushTNT()
	e.emitByte(pktEOT)
	e.emitUvarint(uint64(e.stats.Records))
	if e.err == nil {
		e.err = e.w.w.Flush()
	}
	e.stats.Bytes = e.w.n
	return e.stats, e.err
}

// Encode writes a whole trace as an STPT stream and returns its stats.
func Encode(w io.Writer, t *trace.Trace) (Stats, error) {
	enc, err := NewEncoder(w, t.Name)
	if err != nil {
		return Stats{}, err
	}
	for _, rec := range t.Records {
		if err := enc.Encode(rec); err != nil {
			return Stats{}, err
		}
	}
	return enc.Close()
}
