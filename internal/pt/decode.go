package pt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"stbpu/internal/trace"
)

// Decoder reconstructs a record stream from STPT packets. It mirrors the
// encoder's per-entity edge tables exactly: a record is emitted only when
// its ordering tick arrives (a TNT bit for conditional/direct branches, a
// TIP packet for indirect ones), and BIP packets teach edges the table
// does not know yet.
type Decoder struct {
	r    *bufio.Reader
	name string

	states map[uint64]*entState

	curPID     uint32
	curProgram uint16
	curKernel  bool

	lastIP uint64

	tntBits []bool
	tntPos  int

	// override holds the edge taught by a BIP packet, to be consumed by
	// the next record instead of the table entry.
	override    *edge
	overrideRef uint64

	records []trace.Record
	done    bool
	count   uint64
}

// NewDecoder reads the stream header and prepares to decode packets.
func NewDecoder(r io.Reader) (*Decoder, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if magic != streamMagic {
		return nil, ErrBadMagic
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if ver != streamVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadVersion, ver)
	}
	var u16 [2]byte
	if _, err := io.ReadFull(br, u16[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	name := make([]byte, binary.LittleEndian.Uint16(u16[:]))
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return &Decoder{
		r:      br,
		name:   string(name),
		states: make(map[uint64]*entState),
	}, nil
}

// Name returns the trace name carried in the stream header.
func (d *Decoder) Name() string { return d.name }

func (d *Decoder) state(id uint64) *entState {
	st, ok := d.states[id]
	if !ok {
		st = newEntState()
		d.states[id] = st
	}
	return st
}

func (d *Decoder) tntPending() bool { return d.tntPos < len(d.tntBits) }

func (d *Decoder) nextTNT() bool {
	b := d.tntBits[d.tntPos]
	d.tntPos++
	return b
}

// resolveTickRecords emits every record whose tick is already buffered:
// table-predicted (or BIP-overridden) conditional and direct branches.
// It stops at an indirect branch (needs a TIP packet) or an unknown edge
// (needs a BIP packet).
func (d *Decoder) resolveTickRecords() error {
	for {
		st := d.state(entityID(d.curPID, d.curKernel))
		flowRef := uint64(0)
		if st.haveFlow {
			flowRef = st.flow
		}

		var ed edge
		switch {
		case d.override != nil:
			if d.overrideRef != flowRef {
				return fmt.Errorf("%w: BIP flow reference %#x, decoder at %#x",
					ErrDesync, d.overrideRef, flowRef)
			}
			ed = *d.override
		default:
			var ok bool
			ed, ok = st.edges[flowRef]
			if !ok || !st.haveFlow {
				return nil // need a BIP packet
			}
		}

		if ed.kind.IsIndirect() {
			return nil // need a TIP packet
		}
		if !d.tntPending() {
			return nil // need more TNT bits
		}
		bit := d.nextTNT()
		d.override = nil
		st.edges[flowRef] = ed

		rec := trace.Record{
			PC:      ed.pc,
			Kind:    ed.kind,
			PID:     d.curPID,
			Program: d.curProgram,
			Kernel:  d.curKernel,
		}
		switch ed.kind {
		case trace.KindCond:
			rec.Taken = bit
			if bit {
				if !ed.hasStatic {
					return fmt.Errorf("%w: taken conditional at %#x with no learned target",
						ErrDesync, ed.pc)
				}
				rec.Target = ed.target
			} else {
				rec.Target = rec.FallThrough()
			}
		default: // direct jump/call
			if !bit {
				return fmt.Errorf("%w: direct branch at %#x with a not-taken tick",
					ErrDesync, ed.pc)
			}
			rec.Taken = true
			rec.Target = ed.target
		}
		d.emit(rec, st)
	}
}

func (d *Decoder) emit(rec trace.Record, st *entState) {
	d.records = append(d.records, rec)
	if rec.Taken {
		st.flow = rec.Target
	} else {
		st.flow = rec.FallThrough()
	}
	st.haveFlow = true
}

// resolveTIP completes the pending indirect branch with the TIP target.
func (d *Decoder) resolveTIP(target uint64) error {
	st := d.state(entityID(d.curPID, d.curKernel))
	flowRef := uint64(0)
	if st.haveFlow {
		flowRef = st.flow
	}
	var ed edge
	switch {
	case d.override != nil:
		if d.overrideRef != flowRef {
			return fmt.Errorf("%w: BIP flow reference %#x, decoder at %#x",
				ErrDesync, d.overrideRef, flowRef)
		}
		ed = *d.override
	default:
		var ok bool
		ed, ok = st.edges[flowRef]
		if !ok || !st.haveFlow {
			return fmt.Errorf("%w: TIP with no pending branch", ErrDesync)
		}
	}
	if !ed.kind.IsIndirect() {
		return fmt.Errorf("%w: TIP for non-indirect branch at %#x", ErrDesync, ed.pc)
	}
	d.override = nil
	st.edges[flowRef] = ed
	d.emit(trace.Record{
		PC:      ed.pc,
		Target:  target,
		Kind:    ed.kind,
		Taken:   true,
		PID:     d.curPID,
		Program: d.curProgram,
		Kernel:  d.curKernel,
	}, st)
	return nil
}

// contextBarrier enforces the encoder's flush discipline: a context or
// end-of-trace packet may only arrive when every buffered tick has been
// consumed and no branch is half-resolved.
func (d *Decoder) contextBarrier(kind string) error {
	if d.tntPending() || d.override != nil {
		return fmt.Errorf("%w: %s packet with pending ticks", ErrDesync, kind)
	}
	return nil
}

func (d *Decoder) readUvarint() (uint64, error) {
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return v, nil
}

// step processes one packet. io.EOF from the header read is returned
// as-is so Decode can distinguish truncation from completion.
func (d *Decoder) step() error {
	hdr, err := d.r.ReadByte()
	if err != nil {
		return err
	}
	switch hdr & pktTypeMask {
	case pktPSB:
		var pat [3]byte
		if _, err := io.ReadFull(d.r, pat[:]); err != nil {
			return fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		if pat != psbPattern {
			return fmt.Errorf("%w: corrupt PSB pattern", ErrDesync)
		}
		return nil

	case pktPIP:
		if err := d.contextBarrier("PIP"); err != nil {
			return err
		}
		pid, err := d.readUvarint()
		if err != nil {
			return err
		}
		prog, err := d.readUvarint()
		if err != nil {
			return err
		}
		if pid > 0xffffffff || prog > 0xffff {
			return fmt.Errorf("%w: PIP fields out of range", ErrDesync)
		}
		d.curPID, d.curProgram = uint32(pid), uint16(prog)
		return nil

	case pktMODE:
		if err := d.contextBarrier("MODE"); err != nil {
			return err
		}
		flags, err := d.r.ReadByte()
		if err != nil {
			return fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		if flags > 1 {
			return fmt.Errorf("%w: MODE flags %#x", ErrDesync, flags)
		}
		d.curKernel = flags == 1
		return nil

	case pktTNT:
		nb, err := d.r.ReadByte()
		if err != nil {
			return fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		n := int(nb) + 1
		payload := make([]byte, (n+7)/8)
		if _, err := io.ReadFull(d.r, payload); err != nil {
			return fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		// Compact the consumed prefix before appending.
		if d.tntPos > 0 {
			d.tntBits = d.tntBits[:copy(d.tntBits, d.tntBits[d.tntPos:])]
			d.tntPos = 0
		}
		for i := 0; i < n; i++ {
			d.tntBits = append(d.tntBits, payload[i/8]&(1<<(i%8)) != 0)
		}
		return d.resolveTickRecords()

	case pktTIP:
		level := int(hdr>>tipLevelShift) & tipLevelMask
		var nbytes int
		switch level {
		case 0:
			nbytes = 6
		case 1:
			nbytes = 2
		case 2:
			nbytes = 4
		default:
			return fmt.Errorf("%w: TIP compression level %d", ErrDesync, level)
		}
		var buf [8]byte
		if _, err := io.ReadFull(d.r, buf[:nbytes]); err != nil {
			return fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		target := binary.LittleEndian.Uint64(buf[:])
		switch level {
		case 1:
			target |= d.lastIP >> 16 << 16
		case 2:
			target |= d.lastIP >> 32 << 32
		}
		d.lastIP = target
		return d.resolveTIP(target)

	case pktBIP:
		if d.override != nil {
			return fmt.Errorf("%w: consecutive BIP packets", ErrDesync)
		}
		kind := trace.Kind(hdr >> bipKindShift & bipKindMask)
		if kind > trace.KindReturn {
			return fmt.Errorf("%w: BIP kind %d", ErrDesync, int(kind))
		}
		st := d.state(entityID(d.curPID, d.curKernel))
		flowRef := uint64(0)
		if st.haveFlow {
			flowRef = st.flow
		}
		pcd, err := d.readUvarint()
		if err != nil {
			return err
		}
		ed := edge{pc: flowRef + uint64(unzigzag(pcd)), kind: kind}
		if hdr&bipHasStatic != 0 {
			if !staticKind(kind) {
				return fmt.Errorf("%w: static target on %v BIP", ErrDesync, kind)
			}
			td, err := d.readUvarint()
			if err != nil {
				return err
			}
			ed.target, ed.hasStatic = ed.pc+uint64(unzigzag(td)), true
		}
		d.override, d.overrideRef = &ed, flowRef
		return d.resolveTickRecords()

	case pktEOT:
		if err := d.contextBarrier("EOT"); err != nil {
			return err
		}
		count, err := d.readUvarint()
		if err != nil {
			return err
		}
		d.count, d.done = count, true
		return nil

	default:
		return fmt.Errorf("%w: unknown packet type %d", ErrDesync, hdr&pktTypeMask)
	}
}

// Decode reads an entire STPT stream and reconstructs the trace.
func Decode(r io.Reader) (*trace.Trace, error) {
	d, err := NewDecoder(r)
	if err != nil {
		return nil, err
	}
	for !d.done {
		if err := d.step(); err != nil {
			if err == io.EOF {
				return nil, ErrTruncated
			}
			return nil, err
		}
	}
	if uint64(len(d.records)) != d.count {
		return nil, fmt.Errorf("%w: EOT count %d, decoded %d records",
			ErrDesync, d.count, len(d.records))
	}
	return &trace.Trace{Name: d.name, Records: d.records}, nil
}
