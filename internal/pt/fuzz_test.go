package pt

import (
	"bytes"
	"testing"

	"stbpu/internal/trace"
)

// FuzzDecode hammers the packet decoder with arbitrary byte streams: it
// must always return an error or a well-formed trace, never panic or
// hang. (go test runs the seed corpus; `go test -fuzz=FuzzDecode` explores.)
func FuzzDecode(f *testing.F) {
	// Seed with a valid stream and a few mutations thereof.
	tr := &trace.Trace{Name: "seed"}
	for i := 0; i < 200; i++ {
		kind := trace.Kind(i % 6)
		rec := trace.Record{
			PC:     0x40_0000 + uint64(i)*8,
			Kind:   kind,
			Taken:  true,
			Target: 0x41_0000 + uint64(i%7)*0x40,
			PID:    uint32(1 + i%3),
			Kernel: i%11 == 0,
		}
		if kind == trace.KindCond && i%2 == 0 {
			rec.Taken = false
			rec.Target = rec.FallThrough()
		}
		tr.Records = append(tr.Records, rec)
	}
	var buf bytes.Buffer
	if _, err := Encode(&buf, tr); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("STPT"))
	f.Add([]byte{})
	trunc := make([]byte, len(valid))
	copy(trunc, valid)
	trunc[10] ^= 0xff
	f.Add(trunc)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(bytes.NewReader(data))
		if err == nil && got == nil {
			t.Fatal("nil trace with nil error")
		}
	})
}

// FuzzRoundTrip drives the encoder with structured random records and
// checks the decode inverts it exactly.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint16(50))
	f.Add(uint64(0xdead), uint16(200))
	f.Fuzz(func(t *testing.T, seed uint64, n uint16) {
		tr := randomTrace(int64(seed), int(n%512))
		var buf bytes.Buffer
		if _, err := Encode(&buf, tr); err != nil {
			t.Fatal(err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Records) != len(tr.Records) {
			t.Fatalf("decoded %d records, want %d", len(got.Records), len(tr.Records))
		}
		for i := range tr.Records {
			if tr.Records[i] != got.Records[i] {
				t.Fatalf("record %d: got %+v want %+v", i, got.Records[i], tr.Records[i])
			}
		}
	})
}
