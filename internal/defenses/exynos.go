package defenses

import (
	"stbpu/internal/bpu"
	"stbpu/internal/rng"
	"stbpu/internal/trace"
)

// Exynos models the branch-target encryption shipped in the Samsung
// Exynos CPU (Grayson et al., ISCA 2020, as characterized in §VIII): the
// targets of *indirect* branches and returns stored in the BPU are XORed
// with a key produced by hashing process- and machine-specific inputs.
// The goal is narrow — stopping Spectre-v2-style target injection — and
// the design deliberately leaves the rest of the BPU untouched:
//
//   - direct-branch BTB entries are stored in the clear,
//   - the directional predictor keeps deterministic legacy indexing, so
//     PHT side channels (BranchScope, Table I PHT rows) are unaffected,
//   - the key is *derived*, never re-randomized, so there is no response
//     to an attacker grinding collisions (§VIII: "other forms of branch
//     collisions may still result in side channel leakage").
type Exynos struct {
	unit *bpu.Unit
	m    *exynosMapper
	sw   switchDetector

	machineSecret uint64
}

// exynosMapper keeps legacy indexing and applies target encryption only
// while the branch being processed is indirect (the Step method sets
// indirect per record, mirroring how the hardware scopes the XOR to the
// indirect-predictor path).
type exynosMapper struct {
	bpu.LegacyMapper
	key      uint32
	indirect bool
}

var _ bpu.Mapper = (*exynosMapper)(nil)

// EncryptTarget implements bpu.Mapper: XOR with the derived key on the
// indirect path only.
func (m *exynosMapper) EncryptTarget(t uint32) uint32 {
	if m.indirect {
		return t ^ m.key
	}
	return t
}

// DecryptTarget implements bpu.Mapper.
func (m *exynosMapper) DecryptTarget(t uint32) uint32 {
	if m.indirect {
		return t ^ m.key
	}
	return t
}

// NewExynos builds an Exynos-style protected baseline BPU.
func NewExynos(opt Options) *Exynos {
	opt = opt.withDefaults()
	e := &Exynos{
		m:             &exynosMapper{},
		machineSecret: rng.New(opt.Seed).Uint64(),
	}
	e.unit = bpu.NewUnit(bpu.UnitConfig{Mapper: e.m})
	return e
}

// Name implements Model.
func (e *Exynos) Name() string { return KindExynos.String() }

// Unit exposes the underlying BPU for attack drivers.
func (e *Exynos) Unit() *bpu.Unit { return e.unit }

// deriveKey hashes the machine secret with the entity identity — the
// "number of process and machine-specific inputs" of §VIII. It is a pure
// function: the same process always derives the same key, which is
// exactly the property the comparison tests exploit (no re-randomization
// pressure against brute force).
func (e *Exynos) deriveKey(entity uint64) uint32 {
	s := e.machineSecret ^ entity
	return uint32(rng.SplitMix64(&s) >> 32)
}

// Step implements Model.
func (e *Exynos) Step(rec trace.Record) (bpu.Prediction, bpu.Events) {
	e.sw.observe(rec)
	e.m.key = e.deriveKey(entityKey(rec))
	e.m.indirect = rec.Kind.IsIndirect()
	pred := e.unit.Predict(rec.PC, rec.Kind)
	return pred, e.unit.Update(rec, pred)
}
