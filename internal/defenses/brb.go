package defenses

import (
	"stbpu/internal/bpu"
	"stbpu/internal/trace"
)

// BRB models the branch retention buffer of Vougioukas et al. (HPCA 2019):
// instead of flushing the directional predictor on a context switch, the
// outgoing process's predictor state is saved into a retention buffer and
// the incoming process's state is restored. Each process therefore sees a
// private directional predictor, which stops cross-process PHT collision
// attacks (BranchScope-class, Table I PHT rows) and preserves per-process
// direction history.
//
// What BRB does NOT protect (and the security tests demonstrate): the BTB
// and RSB stay shared with deterministic legacy mappings, so BTB
// reuse/eviction attacks, Spectre-v2 target injection, SpectreRSB, and
// same-address-space trojans all remain viable.
type BRB struct {
	unit *bpu.Unit
	dir  *bpu.SKLCond
	sw   switchDetector

	slots map[uint64]*brbSlot
	// lru orders retained entities, most recent last.
	lru      []uint64
	capacity int

	// Saves, Restores, ColdRestores, Discards count retention traffic for
	// the experiment reports.
	Saves        uint64
	Restores     uint64
	ColdRestores uint64
	Discards     uint64
}

type brbSlot struct {
	state bpu.DirState
}

// NewBRB builds a BRB-protected baseline BPU.
func NewBRB(opt Options) *BRB {
	opt = opt.withDefaults()
	dir := bpu.NewSKLCond(bpu.LegacyMapper{})
	return &BRB{
		unit:     bpu.NewUnit(bpu.UnitConfig{Direction: dir}),
		dir:      dir,
		slots:    make(map[uint64]*brbSlot),
		capacity: opt.RetentionSlots,
	}
}

// Name implements Model.
func (b *BRB) Name() string { return KindBRB.String() }

// Unit exposes the underlying BPU for attack drivers.
func (b *BRB) Unit() *bpu.Unit { return b.unit }

// RetainedEntities reports how many process contexts are currently held.
func (b *BRB) RetainedEntities() int { return len(b.slots) }

// Step implements Model.
func (b *BRB) Step(rec trace.Record) (bpu.Prediction, bpu.Events) {
	if prev, switched := b.sw.observe(rec); switched {
		b.save(prev)
		b.restore(entityKey(rec))
	}
	pred := b.unit.Predict(rec.PC, rec.Kind)
	return pred, b.unit.Update(rec, pred)
}

// save snapshots the outgoing entity's directional state, evicting the
// least recently used slot if the retention buffer is full.
func (b *BRB) save(key uint64) {
	slot, ok := b.slots[key]
	if !ok {
		if len(b.slots) >= b.capacity {
			victim := b.lru[0]
			b.lru = b.lru[1:]
			delete(b.slots, victim)
			b.Discards++
		}
		slot = &brbSlot{}
		b.slots[key] = slot
	}
	b.touch(key)
	slot.state = b.dir.Snapshot()
	b.Saves++
}

// restore installs the incoming entity's state, or a cold predictor if the
// entity has no retained slot.
func (b *BRB) restore(key uint64) {
	slot, ok := b.slots[key]
	if !ok {
		b.dir.Restore(bpu.DirState{})
		b.ColdRestores++
		return
	}
	b.touch(key)
	b.dir.Restore(slot.state)
	b.Restores++
}

// touch moves key to the most-recent end of the LRU order, appending it if
// absent.
func (b *BRB) touch(key uint64) {
	for i, k := range b.lru {
		if k == key {
			b.lru = append(b.lru[:i], b.lru[i+1:]...)
			break
		}
	}
	b.lru = append(b.lru, key)
}
