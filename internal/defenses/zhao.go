package defenses

import (
	"stbpu/internal/bpu"
	"stbpu/internal/rng"
	"stbpu/internal/trace"
)

// Zhao models the lightweight isolation mechanism of Zhao et al. (DAC
// 2021): branch indexes and stored contents are XORed with thread-private
// random numbers, and those numbers are re-generated on every context and
// mode switch.
//
// Two properties distinguish it from STBPU, and both are demonstrated by
// the tests:
//
//  1. Because the random numbers are discarded at each switch, the incoming
//     process can never reach its previously accumulated history — the
//     retention benefit of per-entity tokens is lost, and accuracy on
//     switch-heavy workloads degrades toward the flushing models.
//  2. Within one process between switches the masking is a *constant* XOR,
//     so collisions between two branches in the same address space are
//     preserved exactly (XOR masking is linear: H(a⊕m)=H(a)⊕H(m) for the
//     folded legacy hash). Same-address-space transient-execution attacks
//     (§III, transient trojans) therefore still work, which is the
//     paper's §VIII criticism.
type Zhao struct {
	unit *bpu.Unit
	mask *zhaoMask
	sw   switchDetector
	rand *rng.Rand

	// Regens counts mask re-generations (context/mode switches).
	Regens uint64
}

// zhaoMask is the thread-private random state applied as XOR pre-masking
// of every index computation and XOR encryption of stored contents. It
// deliberately reuses the *legacy* truncated fold underneath — Zhao et
// al. add masking on top of conventional indexing rather than replacing it
// with wide keyed functions, which is what keeps the scheme linear.
type zhaoMask struct {
	bpu.LegacyMapper
	idxMask     uint64
	contentMask uint32
}

var _ bpu.Mapper = (*zhaoMask)(nil)

// BTBIndex implements bpu.Mapper with pre-masked legacy indexing.
func (m *zhaoMask) BTBIndex(pc uint64) (set, tag, offs uint32) {
	return m.LegacyMapper.BTBIndex(pc ^ m.idxMask)
}

// BTBTagBHB implements bpu.Mapper.
func (m *zhaoMask) BTBTagBHB(bhb uint64) uint32 {
	return m.LegacyMapper.BTBTagBHB(bhb ^ m.idxMask)
}

// PHT1 implements bpu.Mapper.
func (m *zhaoMask) PHT1(pc uint64) uint32 {
	return m.LegacyMapper.PHT1(pc ^ m.idxMask)
}

// PHT2 implements bpu.Mapper.
func (m *zhaoMask) PHT2(pc uint64, ghr uint64) uint32 {
	return m.LegacyMapper.PHT2(pc^m.idxMask, ghr)
}

// EncryptTarget implements bpu.Mapper.
func (m *zhaoMask) EncryptTarget(t uint32) uint32 { return t ^ m.contentMask }

// DecryptTarget implements bpu.Mapper.
func (m *zhaoMask) DecryptTarget(t uint32) uint32 { return t ^ m.contentMask }

// NewZhao builds a Zhao-DAC21-protected baseline BPU.
func NewZhao(opt Options) *Zhao {
	opt = opt.withDefaults()
	z := &Zhao{
		mask: &zhaoMask{},
		rand: rng.New(opt.Seed),
	}
	z.unit = bpu.NewUnit(bpu.UnitConfig{Mapper: z.mask})
	z.regen()
	return z
}

// Name implements Model.
func (z *Zhao) Name() string { return KindZhao.String() }

// Unit exposes the underlying BPU for attack drivers.
func (z *Zhao) Unit() *bpu.Unit { return z.unit }

// regen draws fresh thread-private random numbers.
func (z *Zhao) regen() {
	z.mask.idxMask = z.rand.Uint64() & trace.VAMask
	z.mask.contentMask = z.rand.Uint32()
	z.Regens++
}

// Step implements Model.
func (z *Zhao) Step(rec trace.Record) (bpu.Prediction, bpu.Events) {
	if _, switched := z.sw.observe(rec); switched {
		z.regen()
	}
	pred := z.unit.Predict(rec.PC, rec.Kind)
	return pred, z.unit.Update(rec, pred)
}
