package defenses

import (
	"stbpu/internal/bpu"
	"stbpu/internal/remap"
	"stbpu/internal/rng"
	"stbpu/internal/trace"
)

// BSUP models two-level encryption (Lee, Ishii, Sunwoo, TACO 2020): the
// branch PC is encrypted before indexing any predictor structure (level
// one) and the stored entry contents are encrypted (level two). Keys are
// held per software context, restored on context switches, and retired
// after a fixed lifetime of retired branches, at which point the context
// gets a fresh key and its accumulated history becomes unreachable.
//
// Relative to STBPU: the re-key trigger is a *time* budget (branch count),
// not an *event* budget, so an attacker fast enough to finish inside one
// key epoch is not disturbed — there is no misprediction/eviction
// monitoring. And because the design assumes a single key register per
// physical core, two SMT threads cannot hold different keys; the SMT
// evaluation treats BSUP as sharing one key, which removes its
// cross-thread isolation exactly as §VIII notes ("unsuitable for SMT
// processors").
type BSUP struct {
	unit *bpu.Unit
	key  *bsupKey
	sw   switchDetector

	keys    map[uint64]bsupEpochKey
	rand    *rng.Rand
	life    uint64
	retired uint64

	// Rekeys counts lifetime-expiry re-keys; CtxRestores counts key
	// restores on context switches.
	Rekeys      uint64
	CtxRestores uint64

	// smtShared, when set, makes every entity resolve to one shared key:
	// the single-key-register limitation in SMT mode.
	smtShared bool
}

type bsupEpochKey struct {
	psi uint32
	phi uint32
	// bornAt is the retired-branch timestamp of key creation.
	bornAt uint64
}

// bsupKey adapts the active key to the bpu.Mapper interface through the
// keyed remap backend: level one (PC encryption before indexing) is the
// keyed remapping of every index/tag computation; level two is the stored
// target encryption.
type bsupKey struct {
	funcs remap.Funcs
	psi   uint32
	phi   uint32
}

var _ bpu.Mapper = (*bsupKey)(nil)

// BTBIndex implements bpu.Mapper.
func (k *bsupKey) BTBIndex(pc uint64) (set, tag, offs uint32) { return k.funcs.R1(k.psi, pc) }

// BTBTagBHB implements bpu.Mapper.
func (k *bsupKey) BTBTagBHB(bhb uint64) uint32 { return k.funcs.R2(k.psi, bhb) }

// PHT1 implements bpu.Mapper.
func (k *bsupKey) PHT1(pc uint64) uint32 { return k.funcs.R3(k.psi, pc) }

// PHT2 implements bpu.Mapper.
func (k *bsupKey) PHT2(pc uint64, ghr uint64) uint32 { return k.funcs.R4(k.psi, uint16(ghr), pc) }

// EncryptTarget implements bpu.Mapper (level-two encryption).
func (k *bsupKey) EncryptTarget(t uint32) uint32 { return t ^ k.phi }

// DecryptTarget implements bpu.Mapper.
func (k *bsupKey) DecryptTarget(t uint32) uint32 { return t ^ k.phi }

// NewBSUP builds a BSUP-protected baseline BPU.
func NewBSUP(opt Options) *BSUP {
	opt = opt.withDefaults()
	key := &bsupKey{funcs: remap.NewMixer()}
	b := &BSUP{
		unit: bpu.NewUnit(bpu.UnitConfig{Mapper: key}),
		key:  key,
		keys: make(map[uint64]bsupEpochKey),
		rand: rng.New(opt.Seed),
		life: opt.KeyLifetime,
	}
	b.install(b.freshKey())
	return b
}

// Name implements Model.
func (b *BSUP) Name() string { return KindBSUP.String() }

// Unit exposes the underlying BPU for attack drivers.
func (b *BSUP) Unit() *bpu.Unit { return b.unit }

// SetSMTShared switches the model into single-key-register mode: all
// entities share one key, as a physical core running two hardware threads
// would be forced to.
func (b *BSUP) SetSMTShared(on bool) { b.smtShared = on }

func (b *BSUP) freshKey() bsupEpochKey {
	return bsupEpochKey{psi: b.rand.Uint32(), phi: b.rand.Uint32(), bornAt: b.retired}
}

func (b *BSUP) install(k bsupEpochKey) {
	b.key.psi, b.key.phi = k.psi, k.phi
}

func (b *BSUP) keyFor(entity uint64) bsupEpochKey {
	if b.smtShared {
		entity = 0
	}
	k, ok := b.keys[entity]
	if !ok || b.retired-k.bornAt >= b.life {
		if ok {
			b.Rekeys++
		}
		k = b.freshKey()
		b.keys[entity] = k
	}
	return k
}

// Step implements Model.
func (b *BSUP) Step(rec trace.Record) (bpu.Prediction, bpu.Events) {
	entity := entityKey(rec)
	if b.smtShared {
		entity = 0
	}
	if _, switched := b.sw.observe(rec); switched {
		b.install(b.keyFor(entity))
		b.CtxRestores++
	} else {
		// Lifetime expiry re-keys the live context too.
		if k, ok := b.keys[entity]; ok && b.retired-k.bornAt >= b.life {
			b.install(b.keyFor(entity))
		} else if !ok {
			b.install(b.keyFor(entity))
		}
	}
	b.retired++
	pred := b.unit.Predict(rec.PC, rec.Kind)
	return pred, b.unit.Update(rec, pred)
}
