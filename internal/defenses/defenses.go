// Package defenses implements the related-work secure-BPU designs the
// paper compares against in §VIII, as trace-driven models compatible with
// the simulator's Model interface:
//
//	BRB    — Vougioukas et al., HPCA 2019: a branch retention buffer that
//	         saves/restores the entire directional-predictor state per
//	         process instead of flushing it. Mitigates cross-process PHT
//	         collision attacks (BranchScope); leaves the BTB and RSB
//	         shared and deterministic.
//	BSUP   — Lee, Ishii, Sunwoo, TACO 2020: two-level encryption. The PC
//	         is encrypted before indexing (level 1) and stored entries are
//	         encrypted (level 2) with per-context keys that are re-keyed
//	         periodically (a key lifetime) and on context switches. A
//	         single key register per core makes it unsuitable for SMT.
//	Zhao   — Zhao et al., DAC 2021: lightweight isolation. Branch indexes
//	         and contents are XORed with thread-private random numbers
//	         that are re-generated on every context and mode switch.
//	         Within one process the mapping stays deterministic, so
//	         same-address-space attacks (transient trojans, §III) remain.
//	Exynos — Grayson et al., ISCA 2020: the Samsung Exynos BPU encrypts
//	         only stored indirect-branch and return targets with a key
//	         derived by hashing process- and machine-specific inputs; no
//	         re-randomization and no protection for the directional side.
//
// These models exist so the evaluation can compare STBPU's security and
// accuracy retention against its published alternatives on equal footing:
// same baseline structures (internal/bpu), same traces, same attack
// drivers (internal/attacks). Each model documents which Table I attack
// classes it stops and which it leaves open; internal/defenses tests and
// the defense-matrix experiment verify those claims executably.
package defenses

import (
	"fmt"

	"stbpu/internal/bpu"
	"stbpu/internal/trace"
)

// Kind enumerates the related-work defense models.
type Kind int

const (
	// KindBRB is the branch retention buffer (HPCA 2019).
	KindBRB Kind = iota
	// KindBSUP is two-level encryption (TACO 2020).
	KindBSUP
	// KindZhao is lightweight XOR isolation (DAC 2021).
	KindZhao
	// KindExynos is the Samsung Exynos target-encryption scheme (ISCA 2020).
	KindExynos
)

// String names the defense as in §VIII.
func (k Kind) String() string {
	switch k {
	case KindBRB:
		return "BRB"
	case KindBSUP:
		return "BSUP"
	case KindZhao:
		return "Zhao-DAC21"
	case KindExynos:
		return "Exynos-XOR"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds returns all defense kinds in presentation order.
func Kinds() []Kind { return []Kind{KindBRB, KindBSUP, KindZhao, KindExynos} }

// Model is the common shape of every defense in this package. It matches
// sim.Model structurally, so defenses drop into the trace simulator, the
// CPU model, and the attack drivers without an adapter.
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// Step predicts and resolves one retired branch.
	Step(rec trace.Record) (bpu.Prediction, bpu.Events)
}

// Options carries the shared construction knobs.
type Options struct {
	// Seed fixes the key/mask PRNG stream. Zero selects a fixed default
	// so runs are reproducible by default.
	Seed uint64
	// RetentionSlots bounds how many process contexts BRB retains
	// (default 8, the paper's SRAM-budget argument).
	RetentionSlots int
	// KeyLifetime is BSUP's periodic re-key interval in retired branches
	// (default 64k, mirroring the paper's epoch-counter sizing).
	KeyLifetime uint64
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 0xdef_0001
	}
	if o.RetentionSlots == 0 {
		o.RetentionSlots = 8
	}
	if o.KeyLifetime == 0 {
		o.KeyLifetime = 64 << 10
	}
	return o
}

// New constructs a defense model.
func New(kind Kind, opt Options) Model {
	opt = opt.withDefaults()
	switch kind {
	case KindBRB:
		return NewBRB(opt)
	case KindBSUP:
		return NewBSUP(opt)
	case KindZhao:
		return NewZhao(opt)
	case KindExynos:
		return NewExynos(opt)
	default:
		panic(fmt.Sprintf("defenses: unknown kind %d", int(kind)))
	}
}

// entityKey folds the privilege mode into the process identity: the kernel
// is its own software entity for every defense here, matching how each
// published design separates privilege levels.
func entityKey(rec trace.Record) uint64 {
	k := uint64(rec.PID)
	if rec.Kernel {
		k |= 1 << 63
	}
	return k
}

// switchDetector tracks entity changes across Step calls. All four models
// act on context/mode switches; this keeps the edge detection in one
// place.
type switchDetector struct {
	cur     uint64
	started bool
}

// observe returns (previousKey, switched) for the record's entity.
func (d *switchDetector) observe(rec trace.Record) (prev uint64, switched bool) {
	key := entityKey(rec)
	prev, switched = d.cur, d.started && key != d.cur
	d.cur = key
	if !d.started {
		d.started = true
	}
	return prev, switched
}

// Current returns the active entity key.
func (d *switchDetector) Current() uint64 { return d.cur }
