package defenses_test

// The defense-vs-attack matrix: each related-work design is driven by the
// same attack drivers used against the baseline and STBPU (Table I
// surface), and the outcomes must match the security claims in §VIII.
//
//	attack                     BRB   BSUP  Zhao  Exynos  baseline STBPU
//	btb-reuse-side-channel     open  stop  stop  open    open     stop
//	branchscope (PHT reuse)    stop  stop  stop  open    open     stop
//	spectre-v2 (injection)     open  stop  stop  stop    open     stop
//	same-address-space trojan  open  stop* open  open    open     stop
//
// (*within one BSUP key epoch the scan budget here is too small; BSUP's
// real weakness — no event-driven re-keying — is asserted separately.)

import (
	"testing"

	"stbpu/internal/attacks"
	"stbpu/internal/defenses"
)

// probeBudget bounds the blind scans. Generous enough that deterministic
// attacks succeed instantly and randomized defenses would need orders of
// magnitude more.
const probeBudget = 512

func defenseTarget(k defenses.Kind) *attacks.Target {
	return &attacks.Target{
		Model: defenses.New(k, defenses.Options{Seed: 0x5ec}),
		Name:  k.String(),
	}
}

func TestMatrixBTBReuse(t *testing.T) {
	want := map[defenses.Kind]bool{
		defenses.KindBRB:    true,  // BTB shared + deterministic
		defenses.KindBSUP:   false, // per-context keyed indexing
		defenses.KindZhao:   false, // cross-process masks differ
		defenses.KindExynos: true,  // direct targets in the clear
	}
	for k, wantSuccess := range want {
		res := attacks.BTBReuseSideChannel(defenseTarget(k), probeBudget)
		if res.Succeeded != wantSuccess {
			t.Errorf("%v: btb-reuse succeeded=%v, want %v (trials=%d)",
				k, res.Succeeded, wantSuccess, res.Trials)
		}
	}
}

func TestMatrixBranchScope(t *testing.T) {
	// The discriminative BranchScope observation is one-sided: seeing a
	// taken first-probe prediction proves a collision with the victim's
	// trained counter (a "not-taken" conclusion is indistinguishable from
	// never having collided). A usable side channel must also be
	// *repeatable* — a randomized defense can lose a single run to a
	// lucky blind collision (~2 trained counters in 2^14), so the defense
	// leaks iff the secret is recovered in at least 3 of 4 independent
	// runs.
	leaks := func(k defenses.Kind) bool {
		wins := 0
		for i := uint64(0); i < 4; i++ {
			tgt := &attacks.Target{
				Model: defenses.New(k, defenses.Options{Seed: 0x5ec + i}),
				Name:  k.String(),
			}
			res := attacks.BranchScope(tgt, true, probeBudget)
			if res.Succeeded && res.Leak == "taken" {
				wins++
			}
		}
		return wins >= 3
	}
	want := map[defenses.Kind]bool{
		defenses.KindBRB:    false, // per-process PHT retention isolates
		defenses.KindBSUP:   false, // keyed PHT indexing
		defenses.KindZhao:   false, // masks regenerate across switches
		defenses.KindExynos: true,  // PHT untouched
	}
	for k, wantLeak := range want {
		if got := leaks(k); got != wantLeak {
			t.Errorf("%v: branchscope leaks=%v, want %v", k, got, wantLeak)
		}
	}
}

func TestMatrixSpectreV2(t *testing.T) {
	want := map[defenses.Kind]bool{
		defenses.KindBRB:    true,  // BTB untouched: first-try injection
		defenses.KindBSUP:   false, // keyed index + encrypted target
		defenses.KindZhao:   false, // masks differ across processes
		defenses.KindExynos: false, // the one attack Exynos targets
	}
	for k, wantSuccess := range want {
		res := attacks.SpectreV2(defenseTarget(k), probeBudget)
		if res.Succeeded != wantSuccess {
			t.Errorf("%v: spectre-v2 succeeded=%v, want %v (trials=%d)",
				k, res.Succeeded, wantSuccess, res.Trials)
		}
	}
}

func TestMatrixSameAddressSpace(t *testing.T) {
	want := map[defenses.Kind]bool{
		defenses.KindBRB:    true, // truncated legacy BTB mapping
		defenses.KindBSUP:   false,
		defenses.KindZhao:   true, // XOR masking is linear: aliases survive
		defenses.KindExynos: true, // direct branches unprotected
	}
	for k, wantSuccess := range want {
		res := attacks.SameAddressSpaceCollision(defenseTarget(k), probeBudget)
		if res.Succeeded != wantSuccess {
			t.Errorf("%v: same-address-space succeeded=%v, want %v (trials=%d)",
				k, res.Succeeded, wantSuccess, res.Trials)
		}
	}
}

func TestBSUPHasNoEventDrivenResponse(t *testing.T) {
	// BSUP's structural gap vs STBPU: grinding attack events does not
	// accelerate re-keying. An attacker generating thousands of
	// mispredictions inside one key epoch sees zero re-keys, while STBPU
	// with the paper's thresholds would have re-randomized.
	m := defenses.NewBSUP(defenses.Options{Seed: 0x5ec, KeyLifetime: 1 << 20})
	tgt := &attacks.Target{Model: m, Name: m.Name()}
	res := attacks.SpectreV2(tgt, 2048)
	if res.Succeeded {
		t.Fatal("spectre-v2 unexpectedly succeeded inside one epoch")
	}
	if res.AttackerMispredicts == 0 {
		t.Fatal("attack generated no monitored events; the comparison is vacuous")
	}
	if m.Rekeys != 0 {
		t.Errorf("BSUP re-keyed %d times under attack events; expected 0 (time-based only)", m.Rekeys)
	}
}

func TestSTBPURerandomizesUnderSameAttack(t *testing.T) {
	// Counterpart to the BSUP test: the same attack pressure on STBPU
	// with aggressive thresholds triggers re-randomization.
	tgt := attacks.NewSTBPUTarget(nil)
	res := attacks.SpectreV2(tgt, 2048)
	if res.Succeeded {
		t.Fatal("spectre-v2 unexpectedly succeeded against STBPU")
	}
	if res.Rerandomizations == 0 {
		t.Skip("default thresholds not reached within this budget (expected at full-scale thresholds)")
	}
}

func TestMatrixAgainstReferenceModels(t *testing.T) {
	// Sanity anchors for the matrix: the baseline is open to everything;
	// STBPU stops everything within the same budget.
	base := attacks.NewBaselineTarget()
	if res := attacks.BTBReuseSideChannel(base, probeBudget); !res.Succeeded {
		t.Error("baseline: btb-reuse should succeed")
	}
	if res := attacks.SameAddressSpaceCollision(attacks.NewBaselineTarget(), probeBudget); !res.Succeeded {
		t.Error("baseline: same-address-space should succeed")
	}
	st := attacks.NewSTBPUTarget(nil)
	if res := attacks.BTBReuseSideChannel(st, probeBudget); res.Succeeded {
		t.Error("STBPU: btb-reuse should fail within the budget")
	}
	if res := attacks.SameAddressSpaceCollision(attacks.NewSTBPUTarget(nil), probeBudget); res.Succeeded {
		t.Error("STBPU: same-address-space should fail within the budget")
	}
}
