package defenses

import (
	"testing"
	"testing/quick"

	"stbpu/internal/bpu"
	"stbpu/internal/trace"
)

func condAt(pc uint64, taken bool, pid uint32, kernel bool) trace.Record {
	rec := trace.Record{PC: pc & trace.VAMask, Kind: trace.KindCond, Taken: taken, PID: pid, Kernel: kernel}
	if taken {
		rec.Target = (pc + 0x40) & trace.VAMask
	} else {
		rec.Target = rec.FallThrough()
	}
	return rec
}

func jmpAt(pc, target uint64, pid uint32) trace.Record {
	return trace.Record{PC: pc & trace.VAMask, Target: target & trace.VAMask,
		Kind: trace.KindDirectJump, Taken: true, PID: pid}
}

func ijmpAt(pc, target uint64, pid uint32) trace.Record {
	return trace.Record{PC: pc & trace.VAMask, Target: target & trace.VAMask,
		Kind: trace.KindIndirectJump, Taken: true, PID: pid}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindBRB:    "BRB",
		KindBSUP:   "BSUP",
		KindZhao:   "Zhao-DAC21",
		KindExynos: "Exynos-XOR",
		Kind(99):   "Kind(99)",
	}
	for k, s := range want {
		if got := k.String(); got != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, s)
		}
	}
}

func TestNewBuildsEveryKind(t *testing.T) {
	for _, k := range Kinds() {
		m := New(k, Options{})
		if m.Name() != k.String() {
			t.Errorf("New(%v).Name() = %q, want %q", k, m.Name(), k.String())
		}
		// Every model must survive a mixed stream without panicking.
		for i := 0; i < 100; i++ {
			rec := condAt(0x40_0000+uint64(i)*4, i%3 == 0, uint32(1+i%2), i%7 == 0)
			m.Step(rec)
		}
	}
}

func TestNewUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with unknown kind did not panic")
		}
	}()
	New(Kind(42), Options{})
}

func TestSwitchDetector(t *testing.T) {
	var d switchDetector
	if _, sw := d.observe(condAt(0, true, 1, false)); sw {
		t.Error("first observation reported a switch")
	}
	if _, sw := d.observe(condAt(0, true, 1, false)); sw {
		t.Error("same entity reported a switch")
	}
	prev, sw := d.observe(condAt(0, true, 2, false))
	if !sw {
		t.Error("PID change not reported as a switch")
	}
	if prev != entityKey(condAt(0, true, 1, false)) {
		t.Errorf("previous key = %#x, want key of PID 1", prev)
	}
	if _, sw := d.observe(condAt(0, true, 2, true)); !sw {
		t.Error("mode switch (kernel entry) not reported as a switch")
	}
	if d.Current() != entityKey(condAt(0, true, 2, true)) {
		t.Error("Current() does not track the live entity")
	}
}

func TestEntityKeySeparatesKernel(t *testing.T) {
	user := entityKey(trace.Record{PID: 7})
	kern := entityKey(trace.Record{PID: 7, Kernel: true})
	if user == kern {
		t.Error("kernel mode does not separate the entity key")
	}
}

// --- BRB -------------------------------------------------------------------

func TestBRBRetainsDirectionStateAcrossSwitches(t *testing.T) {
	b := NewBRB(Options{})
	pc := uint64(0x40_1000)

	// Process 1 trains a strongly-taken branch.
	for i := 0; i < 8; i++ {
		b.Step(condAt(pc, true, 1, false))
	}
	// Process 2 runs long enough to perturb a cold predictor.
	for i := 0; i < 64; i++ {
		b.Step(condAt(pc+uint64(i)*4, false, 2, false))
	}
	// Back to process 1: its first prediction must still be taken —
	// retained, not flushed.
	pred, ev := b.Step(condAt(pc, true, 1, false))
	if !pred.Taken {
		t.Error("BRB lost retained direction state after a context switch")
	}
	if !ev.DirCorrect {
		t.Error("retained state did not predict correctly")
	}
	if b.Saves == 0 || b.Restores == 0 {
		t.Errorf("retention traffic not accounted: saves=%d restores=%d", b.Saves, b.Restores)
	}
}

func TestBRBColdRestoreForNewProcess(t *testing.T) {
	b := NewBRB(Options{})
	pc := uint64(0x40_2000)
	for i := 0; i < 8; i++ {
		b.Step(condAt(pc, true, 1, false))
	}
	// A brand-new process must see a cold predictor at the same address:
	// per-process isolation of the directional state.
	pred, _ := b.Step(condAt(pc, true, 9, false))
	if pred.Taken {
		t.Error("new process observed another process's trained counter")
	}
	if b.ColdRestores == 0 {
		t.Error("cold restore not accounted")
	}
}

func TestBRBLRUEviction(t *testing.T) {
	b := NewBRB(Options{RetentionSlots: 2})
	pc := uint64(0x40_3000)

	// Train process 1, then cycle through enough processes to evict it.
	for i := 0; i < 8; i++ {
		b.Step(condAt(pc, true, 1, false))
	}
	for pid := uint32(2); pid <= 4; pid++ {
		for i := 0; i < 4; i++ {
			b.Step(condAt(pc+uint64(pid)*0x100, false, pid, false))
		}
	}
	if b.RetainedEntities() > 2 {
		t.Errorf("retention buffer holds %d entities, capacity 2", b.RetainedEntities())
	}
	if b.Discards == 0 {
		t.Error("LRU eviction not accounted")
	}
	// Process 1's slot was discarded: it must come back cold.
	pred, _ := b.Step(condAt(pc, true, 1, false))
	if pred.Taken {
		t.Error("discarded slot still produced a trained prediction")
	}
}

func TestBRBDoesNotProtectBTB(t *testing.T) {
	// The retention buffer covers only the directional predictor: a BTB
	// entry placed by process 1 is visible to process 2 at an aliasing
	// address (deterministic legacy mapping). This is the documented gap.
	b := NewBRB(Options{})
	vPC, vTgt := uint64(0x40_4000), uint64(0x40_4800)
	for i := 0; i < 4; i++ {
		b.Step(jmpAt(vPC, vTgt, 1))
	}
	pred, _ := b.Step(jmpAt(vPC, vPC+0x40, 2))
	if !pred.TargetValid || uint32(pred.Target) != uint32(vTgt) {
		t.Error("expected cross-process BTB reuse on BRB (it protects only the PHT)")
	}
}

// --- BSUP ------------------------------------------------------------------

func TestBSUPIsolatesProcessesByKey(t *testing.T) {
	b := NewBSUP(Options{Seed: 7})
	vPC, vTgt := uint64(0x40_5000), uint64(0x40_5800)
	for i := 0; i < 4; i++ {
		b.Step(jmpAt(vPC, vTgt, 1))
	}
	// Process 2 probing the same virtual address must not see process
	// 1's entry (different level-one key → different index/tag).
	pred, _ := b.Step(jmpAt(vPC, vPC+0x40, 2))
	if pred.TargetValid && uint32(pred.Target) == uint32(vTgt) {
		t.Error("BSUP leaked a BTB entry across differently-keyed processes")
	}
}

func TestBSUPRetainsOwnHistoryAcrossSwitches(t *testing.T) {
	b := NewBSUP(Options{Seed: 7})
	vPC, vTgt := uint64(0x40_6000), uint64(0x40_6800)
	for i := 0; i < 4; i++ {
		b.Step(jmpAt(vPC, vTgt, 1))
	}
	b.Step(jmpAt(vPC+0x100, vPC+0x140, 2)) // context switch away
	// Process 1's key is restored on switch-back; its entry is reachable
	// again (within the key lifetime).
	pred, _ := b.Step(jmpAt(vPC, vTgt, 1))
	if !pred.TargetValid || uint32(pred.Target) != uint32(vTgt) {
		t.Error("BSUP lost own history across a context switch within the key lifetime")
	}
	if b.CtxRestores == 0 {
		t.Error("context key restores not accounted")
	}
}

func TestBSUPLifetimeRekeyInvalidatesHistory(t *testing.T) {
	b := NewBSUP(Options{Seed: 7, KeyLifetime: 32})
	vPC, vTgt := uint64(0x40_7000), uint64(0x40_7800)
	for i := 0; i < 4; i++ {
		b.Step(jmpAt(vPC, vTgt, 1))
	}
	// Burn through the key lifetime within the same process.
	for i := 0; i < 40; i++ {
		b.Step(condAt(vPC+0x1000+uint64(i)*4, false, 1, false))
	}
	if b.Rekeys == 0 {
		t.Fatal("key lifetime expiry did not re-key")
	}
	pred, _ := b.Step(jmpAt(vPC, vTgt, 1))
	if pred.TargetValid && uint32(pred.Target) == uint32(vTgt) {
		t.Error("entry still reachable after a lifetime re-key")
	}
}

func TestBSUPSMTSharedKeyRemovesIsolation(t *testing.T) {
	b := NewBSUP(Options{Seed: 7})
	b.SetSMTShared(true)
	vPC, vTgt := uint64(0x40_8000), uint64(0x40_8800)
	for i := 0; i < 4; i++ {
		b.Step(jmpAt(vPC, vTgt, 1))
	}
	// With one key register shared by both hardware threads, thread 2
	// resolves the same index/tag and reuses thread 1's entry: the §VIII
	// SMT limitation.
	pred, _ := b.Step(jmpAt(vPC, vPC+0x40, 2))
	if !pred.TargetValid || uint32(pred.Target) != uint32(vTgt) {
		t.Error("expected cross-thread reuse under the shared SMT key")
	}
}

// --- Zhao ------------------------------------------------------------------

func TestZhaoIsolatesAcrossSwitches(t *testing.T) {
	z := NewZhao(Options{Seed: 11})
	vPC, vTgt := uint64(0x40_9000), uint64(0x40_9800)
	for i := 0; i < 4; i++ {
		z.Step(jmpAt(vPC, vTgt, 1))
	}
	pred, _ := z.Step(jmpAt(vPC, vPC+0x40, 2))
	if pred.TargetValid && uint32(pred.Target) == uint32(vTgt) {
		t.Error("Zhao leaked a BTB entry across a mask regeneration")
	}
	if z.Regens < 2 { // one at construction, one at the switch
		t.Errorf("Regens = %d, want >= 2", z.Regens)
	}
}

func TestZhaoLosesOwnHistoryAcrossSwitches(t *testing.T) {
	// The §VIII criticism: masks are re-generated, not per-entity
	// restored, so switching away and back destroys own history.
	z := NewZhao(Options{Seed: 11})
	vPC, vTgt := uint64(0x40_a000), uint64(0x40_a800)
	for i := 0; i < 4; i++ {
		z.Step(jmpAt(vPC, vTgt, 1))
	}
	z.Step(jmpAt(vPC+0x100, vPC+0x140, 2))
	pred, _ := z.Step(jmpAt(vPC, vTgt, 1))
	if pred.TargetValid && uint32(pred.Target) == uint32(vTgt) {
		t.Error("Zhao retained history across a switch; the design regenerates masks")
	}
}

func TestZhaoXORMaskingIsLinear(t *testing.T) {
	// For any mask, two addresses that collide under the legacy fold
	// still collide under the masked fold: XOR masking cannot separate
	// same-address-space aliases. This is the executable form of the
	// linearity argument.
	legacy := bpu.LegacyMapper{}
	check := func(pcLow uint32, aliasBits uint16, mask uint64) bool {
		pc := uint64(pcLow) | 0x40_0000
		alias := pc + uint64(aliasBits)<<32 // same low 32 bits
		s1, t1, o1 := legacy.BTBIndex(pc)
		s2, t2, o2 := legacy.BTBIndex(alias)
		if s1 != s2 || t1 != t2 || o1 != o2 {
			return true // not a legacy collision; nothing to check
		}
		m := &zhaoMask{idxMask: mask & trace.VAMask}
		ms1, mt1, mo1 := m.BTBIndex(pc)
		ms2, mt2, mo2 := m.BTBIndex(alias)
		return ms1 == ms2 && mt1 == mt2 && mo1 == mo2
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestZhaoContentMaskRoundTrip(t *testing.T) {
	check := func(target uint32, mask uint32) bool {
		m := &zhaoMask{contentMask: mask}
		return m.DecryptTarget(m.EncryptTarget(target)) == target
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// --- Exynos ----------------------------------------------------------------

func TestExynosKeyIsDeterministicPerEntity(t *testing.T) {
	e := NewExynos(Options{Seed: 13})
	k1 := e.deriveKey(entityKey(trace.Record{PID: 1}))
	k2 := e.deriveKey(entityKey(trace.Record{PID: 2}))
	if k1 == k2 {
		t.Error("distinct entities derived the same key")
	}
	if k1 != e.deriveKey(entityKey(trace.Record{PID: 1})) {
		t.Error("key derivation is not deterministic")
	}
}

func TestExynosMachinesDeriveDifferentKeys(t *testing.T) {
	a := NewExynos(Options{Seed: 13})
	b := NewExynos(Options{Seed: 14})
	if a.deriveKey(1) == b.deriveKey(1) {
		t.Error("different machine secrets derived the same process key")
	}
}

func TestExynosEncryptsIndirectTargetsOnly(t *testing.T) {
	e := NewExynos(Options{Seed: 13})
	vPC, vTgt := uint64(0x40_b000), uint64(0x40_b800)

	// Indirect branch target is protected: another process reading the
	// same entry decrypts with its own key and sees garbage.
	for i := 0; i < 4; i++ {
		e.Step(ijmpAt(vPC, vTgt, 1))
	}
	pred, _ := e.Step(ijmpAt(vPC, vPC+0x40, 2))
	if pred.TargetValid && uint32(pred.Target) == uint32(vTgt) {
		t.Error("Exynos leaked an indirect target across processes")
	}

	// Direct branch target is stored in the clear: cross-process reuse
	// still works (the documented gap).
	dPC, dTgt := uint64(0x40_c000), uint64(0x40_c800)
	for i := 0; i < 4; i++ {
		e.Step(jmpAt(dPC, dTgt, 1))
	}
	pred, _ = e.Step(jmpAt(dPC, dPC+0x40, 2))
	if !pred.TargetValid || uint32(pred.Target) != uint32(dTgt) {
		t.Error("expected cross-process reuse of a direct-branch entry on Exynos")
	}
}

func TestExynosDoesNotProtectPHT(t *testing.T) {
	e := NewExynos(Options{Seed: 13})
	pc := uint64(0x40_d000)
	for i := 0; i < 8; i++ {
		e.Step(condAt(pc, true, 1, false))
	}
	pred, _ := e.Step(condAt(pc, true, 2, false))
	if !pred.Taken {
		t.Error("expected the attacker to observe the victim's trained PHT counter on Exynos")
	}
}

// --- cross-model accuracy sanity -------------------------------------------

func TestDefensesPredictWellSingleProcess(t *testing.T) {
	// Every defense must still be a functioning predictor: a strongly
	// biased branch within one process should reach high accuracy.
	for _, k := range Kinds() {
		m := New(k, Options{})
		pc := uint64(0x41_0000)
		correct := 0
		const n = 200
		for i := 0; i < n; i++ {
			_, ev := m.Step(condAt(pc, true, 1, false))
			if ev.DirCorrect {
				correct++
			}
		}
		if correct < n*9/10 {
			t.Errorf("%v: only %d/%d correct on a trivially biased branch", k, correct, n)
		}
	}
}
