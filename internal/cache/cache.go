// Package cache implements the set-associative cache hierarchy of the
// paper's gem5 configuration (Table IV): 32KB 8-way L1I/L1D, 256KB 4-way
// L2, 4MB 16-way LLC. The CPU model (internal/cpu) charges memory access
// latencies through it.
package cache

import "fmt"

// Config sizes one cache level.
type Config struct {
	// Name labels the level ("L1D"...).
	Name string
	// SizeBytes is the total capacity.
	SizeBytes int
	// Ways is the associativity.
	Ways int
	// LineBytes is the block size (64 throughout).
	LineBytes int
	// HitLatency is the access latency in cycles.
	HitLatency int
}

// Sets returns the derived set count.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

// Cache is one level with LRU replacement. The zero value is not usable;
// construct with New.
type Cache struct {
	cfg   Config
	sets  int
	shift uint
	tags  []uint64 // sets × ways; 0 = invalid (tag stored +1)
	lru   []uint32
	clock uint32

	// Hits and Misses count accesses since construction.
	Hits, Misses uint64
}

// New builds a cache level. It panics on a non-power-of-two geometry.
func New(cfg Config) *Cache {
	sets := cfg.Sets()
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a positive power of two", cfg.Name, sets))
	}
	shift := uint(0)
	for l := cfg.LineBytes; l > 1; l >>= 1 {
		shift++
	}
	return &Cache{
		cfg:   cfg,
		sets:  sets,
		shift: shift,
		tags:  make([]uint64, sets*cfg.Ways),
		lru:   make([]uint32, sets*cfg.Ways),
	}
}

// Config returns the level configuration.
func (c *Cache) Config() Config { return c.cfg }

// Access looks up (and fills on miss) the line containing addr, returning
// whether it hit.
func (c *Cache) Access(addr uint64) bool {
	line := addr >> c.shift
	set := int(line) & (c.sets - 1)
	base := set * c.cfg.Ways
	tag := line + 1 // +1 so tag 0 means invalid
	c.clock++
	victim, victimLRU := base, c.lru[base]
	for i := base; i < base+c.cfg.Ways; i++ {
		if c.tags[i] == tag {
			c.lru[i] = c.clock
			c.Hits++
			return true
		}
		if c.lru[i] < victimLRU {
			victim, victimLRU = i, c.lru[i]
		}
	}
	c.tags[victim] = tag
	c.lru[victim] = c.clock
	c.Misses++
	return false
}

// Flush invalidates all lines.
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = 0
		c.lru[i] = 0
	}
}

// Hierarchy is the three-level hierarchy of Table IV plus memory.
type Hierarchy struct {
	L1I, L1D, L2, LLC *Cache
	// MemLatency is the DRAM access cost in cycles.
	MemLatency int
}

// TableIVHierarchy builds the paper's gem5 cache configuration.
func TableIVHierarchy() *Hierarchy {
	return &Hierarchy{
		L1I:        New(Config{Name: "L1I", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64, HitLatency: 2}),
		L1D:        New(Config{Name: "L1D", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64, HitLatency: 4}),
		L2:         New(Config{Name: "L2", SizeBytes: 256 << 10, Ways: 4, LineBytes: 64, HitLatency: 12}),
		LLC:        New(Config{Name: "LLC", SizeBytes: 4 << 20, Ways: 16, LineBytes: 64, HitLatency: 40}),
		MemLatency: 200,
	}
}

// AccessData charges a data access through L1D→L2→LLC→memory and returns
// its latency in cycles.
func (h *Hierarchy) AccessData(addr uint64) int {
	if h.L1D.Access(addr) {
		return h.L1D.cfg.HitLatency
	}
	if h.L2.Access(addr) {
		return h.L2.cfg.HitLatency
	}
	if h.LLC.Access(addr) {
		return h.LLC.cfg.HitLatency
	}
	return h.MemLatency
}

// AccessInstr charges an instruction fetch through L1I→L2→LLC→memory.
func (h *Hierarchy) AccessInstr(addr uint64) int {
	if h.L1I.Access(addr) {
		return h.L1I.cfg.HitLatency
	}
	if h.L2.Access(addr) {
		return h.L2.cfg.HitLatency
	}
	if h.LLC.Access(addr) {
		return h.LLC.cfg.HitLatency
	}
	return h.MemLatency
}
