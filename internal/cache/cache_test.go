package cache

import (
	"testing"

	"stbpu/internal/rng"
)

func TestConfigSets(t *testing.T) {
	c := Config{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64}
	if got := c.Sets(); got != 64 {
		t.Errorf("Sets = %d, want 64", got)
	}
}

func TestHitAfterFill(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 1 << 10, Ways: 2, LineBytes: 64, HitLatency: 4})
	if c.Access(0x1000) {
		t.Error("cold access should miss")
	}
	if !c.Access(0x1000) {
		t.Error("second access should hit")
	}
	if !c.Access(0x1038) {
		t.Error("same-line access should hit")
	}
	if c.Access(0x1040) {
		t.Error("next line should miss")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, line 64, 8 sets: addresses 0, 512, 1024 map to set 0.
	c := New(Config{Name: "t", SizeBytes: 1 << 10, Ways: 2, LineBytes: 64})
	c.Access(0)
	c.Access(512)
	c.Access(0) // refresh 0; 512 is now LRU
	c.Access(1024)
	if !c.Access(0) {
		t.Error("MRU line evicted")
	}
	if c.Access(512) {
		t.Error("LRU line should have been evicted")
	}
}

func TestFlush(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 1 << 10, Ways: 2, LineBytes: 64})
	c.Access(0x40)
	c.Flush()
	if c.Access(0x40) {
		t.Error("flush left a line behind")
	}
}

func TestPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{SizeBytes: 1000, Ways: 3, LineBytes: 64}) // non-power-of-two sets
}

func TestHierarchyLatencies(t *testing.T) {
	h := TableIVHierarchy()
	addr := uint64(0x10000)
	// Cold: full miss to memory.
	if lat := h.AccessData(addr); lat != h.MemLatency {
		t.Errorf("cold data access latency %d, want %d", lat, h.MemLatency)
	}
	// Warm: L1 hit.
	if lat := h.AccessData(addr); lat != h.L1D.Config().HitLatency {
		t.Errorf("warm data access latency %d", lat)
	}
	if lat := h.AccessInstr(0x40400000); lat != h.MemLatency {
		t.Errorf("cold instr access latency %d", lat)
	}
	if lat := h.AccessInstr(0x40400000); lat != h.L1I.Config().HitLatency {
		t.Errorf("warm instr access latency %d", lat)
	}
}

func TestL2CatchesL1Evictions(t *testing.T) {
	h := TableIVHierarchy()
	// Touch a working set larger than L1D (32KB) but well within L2.
	const lines = 1024 // 64KB
	for i := 0; i < lines; i++ {
		h.AccessData(uint64(i * 64))
	}
	l2Before := h.L2.Hits
	for i := 0; i < lines; i++ {
		h.AccessData(uint64(i * 64))
	}
	if h.L2.Hits == l2Before {
		t.Error("L2 should absorb L1 capacity misses")
	}
}

func TestWorkingSetFitsGivesHighHitRate(t *testing.T) {
	h := TableIVHierarchy()
	r := rng.New(3)
	const footprint = 16 << 10 // fits in L1D
	for i := 0; i < 50_000; i++ {
		h.AccessData(r.Uint64() % footprint)
	}
	rate := float64(h.L1D.Hits) / float64(h.L1D.Hits+h.L1D.Misses)
	if rate < 0.95 {
		t.Errorf("L1D hit rate %.3f for resident working set", rate)
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	h := TableIVHierarchy()
	r := rng.New(1)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = r.Uint64() % (8 << 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.AccessData(addrs[i%len(addrs)])
	}
}
