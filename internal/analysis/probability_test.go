package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSuccessProbabilityAnchors(t *testing.T) {
	// By construction P(C) = 0.5 for any complexity C.
	for _, c := range []float64{10, 1e3, 6.9e8} {
		if got := SuccessProbability(c, c); math.Abs(got-0.5) > 1e-6 {
			t.Errorf("P(C=%g at budget C) = %g, want 0.5", c, got)
		}
	}
	if SuccessProbability(0, 100) != 0 {
		t.Error("zero budget should have zero success probability")
	}
	if SuccessProbability(100, 0) != 0 {
		t.Error("non-positive complexity should yield 0, not NaN")
	}
}

func TestSuccessProbabilityMonotoneInEvents(t *testing.T) {
	check := func(a, b uint32) bool {
		lo, hi := float64(a%100_000), float64(b%100_000)
		if lo > hi {
			lo, hi = hi, lo
		}
		const c = 50_000
		return SuccessProbability(lo, c) <= SuccessProbability(hi, c)+1e-12
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestEpochSuccessProbability(t *testing.T) {
	// r = 1 means the attacker gets its full 50%-budget per epoch.
	if got := EpochSuccessProbability(1); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("P_epoch(r=1) = %g, want 0.5", got)
	}
	// The paper's r = 0.05 bounds per-epoch success to ~3.4%.
	if got := EpochSuccessProbability(0.05); got < 0.03 || got > 0.04 {
		t.Errorf("P_epoch(r=0.05) = %g, want ≈0.034", got)
	}
	if EpochSuccessProbability(0) != 0 {
		t.Error("r=0 should give zero epoch success")
	}
	// Monotone in r.
	check := func(a, b uint16) bool {
		lo, hi := float64(a)/65535, float64(b)/65535
		if lo > hi {
			lo, hi = hi, lo
		}
		return EpochSuccessProbability(lo) <= EpochSuccessProbability(hi)+1e-12
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestMultiEpochSuccess(t *testing.T) {
	pe := EpochSuccessProbability(0.05)
	one := MultiEpochSuccessProbability(0.05, 1)
	if math.Abs(one-pe) > 1e-12 {
		t.Errorf("k=1 multi-epoch = %g, want P_epoch %g", one, pe)
	}
	// Independence: 2 epochs = 1-(1-p)^2.
	two := MultiEpochSuccessProbability(0.05, 2)
	want := 1 - (1-pe)*(1-pe)
	if math.Abs(two-want) > 1e-12 {
		t.Errorf("k=2 multi-epoch = %g, want %g", two, want)
	}
	if MultiEpochSuccessProbability(0.05, 0) != 0 {
		t.Error("k=0 should be 0")
	}
	// Monotone in k.
	if MultiEpochSuccessProbability(0.05, 10) >= MultiEpochSuccessProbability(0.05, 100) {
		t.Error("multi-epoch success must grow with epochs")
	}
}

func TestExpectedEventsToSuccess(t *testing.T) {
	// For small r the expected cost approaches C/ln2 ≈ 1.44C — i.e.
	// re-randomization caps the attacker's progress at a constant-factor
	// premium regardless of r, while bounding per-epoch success by r.
	const c = 1e6
	got := ExpectedEventsToSuccess(0.001, c)
	want := c / math.Ln2
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("E[events] at small r = %g, want ≈ %g", got, want)
	}
	if !math.IsInf(ExpectedEventsToSuccess(0, c), 1) {
		t.Error("r=0 should make success unreachable (infinite expected cost)")
	}
	// The expected cost is never below the unprotected 50% point's cost.
	for _, r := range []float64{0.01, 0.05, 0.5, 1} {
		if ExpectedEventsToSuccess(r, c) < c {
			t.Errorf("E[events] at r=%g below unprotected complexity", r)
		}
	}
}

func TestBirthdayCollisionProb(t *testing.T) {
	// Classic anchor: 23 people, 365 days ≈ 50%.
	if got := BirthdayCollisionProb(23, 365); got < 0.48 || got < 0 || got > 0.55 {
		t.Errorf("birthday(23, 365) = %g, want ≈0.5", got)
	}
	if BirthdayCollisionProb(1, 365) != 0 {
		t.Error("a single item cannot collide")
	}
	check := func(a, b uint16) bool {
		lo, hi := float64(a%1000), float64(b%1000)
		if lo > hi {
			lo, hi = hi, lo
		}
		p1, p2 := BirthdayCollisionProb(lo, 4096), BirthdayCollisionProb(hi, 4096)
		return p1 >= 0 && p2 <= 1 && p1 <= p2+1e-12
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestDoSEvictionProb(t *testing.T) {
	btb := SkylakeBTB()
	if DoSEvictionProb(btb, 0) != 0 {
		t.Error("zero sprays, zero eviction probability")
	}
	// The inverse must round-trip.
	for _, target := range []float64{0.1, 0.5, 0.9} {
		sprays := DoSSpraysForProb(btb, target)
		if got := DoSEvictionProb(btb, sprays); math.Abs(got-target) > 1e-9 {
			t.Errorf("round trip at %g: %g", target, got)
		}
	}
	// Blindly evicting a specific entry with 50% needs the victim's set
	// to fill: λ must reach the Poisson median of W, i.e. ≈ I·(W−1/3)
	// sprays — substantially more than the memoryless I·W·ln2 estimate.
	got := DoSSpraysForProb(btb, 0.5)
	approx := btb.Sets * (btb.Ways - 1.0/3)
	if math.Abs(got-approx)/approx > 0.05 {
		t.Errorf("sprays for 50%% = %g, want ≈ %g (Poisson median)", got, approx)
	}
	if !math.IsInf(DoSSpraysForProb(btb, 1), 1) {
		t.Error("certain eviction needs unbounded sprays")
	}
	// Monotone in spray count.
	check := func(a, b uint32) bool {
		lo, hi := float64(a%1_000_000), float64(b%1_000_000)
		if lo > hi {
			lo, hi = hi, lo
		}
		return DoSEvictionProb(btb, lo) <= DoSEvictionProb(btb, hi)+1e-12
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestGammaSweep(t *testing.T) {
	rs := []float64{0.05, 0.005, 5e-4, 5e-5}
	rows := GammaSweep(rs)
	if len(rows) != len(rs) {
		t.Fatalf("rows = %d", len(rows))
	}
	// The paper's r=0.05 thresholds (§VII-A): 4.15e4 and 2.65e4.
	if math.Abs(rows[0].MispThreshold-4.15e4)/4.15e4 > 0.02 {
		t.Errorf("misp threshold at r=0.05 = %g, want ≈4.15e4", rows[0].MispThreshold)
	}
	if math.Abs(rows[0].EvictThreshold-2.65e4)/2.65e4 > 0.02 {
		t.Errorf("evict threshold at r=0.05 = %g, want ≈2.65e4", rows[0].EvictThreshold)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].EpochSuccess >= rows[i-1].EpochSuccess {
			t.Error("lowering r must lower per-epoch success")
		}
		if rows[i].MispThreshold >= rows[i-1].MispThreshold {
			t.Error("lowering r must lower thresholds")
		}
	}
	// Epochs-to-50% must scale ≈ 1/r: three orders of magnitude more
	// wall-clock (and observable re-randomizations) at r=5e-5 than at
	// r=0.05.
	ratio := rows[3].EpochsFor50 / rows[0].EpochsFor50
	if ratio < 500 || ratio > 2000 {
		t.Errorf("epochs-to-50%% ratio across 1000x r = %g, want ≈1000", ratio)
	}
	// Boundary behaviour of the inverse.
	if !math.IsInf(EpochsForProbability(0, 0.5), 1) {
		t.Error("r=0 should need infinite epochs")
	}
	if !math.IsInf(EpochsForProbability(0.05, 1), 1) {
		t.Error("certainty should need infinite epochs")
	}
	if EpochsForProbability(0.05, 0) != 0 {
		t.Error("zero target needs zero epochs")
	}
}
