package analysis

// probability.go extends the closed-form analysis with the probabilistic
// side of §VI/§VII-A: how attack success probability accumulates with
// spent events, what a re-randomization threshold Γ = r·C buys per token
// epoch, and the DoS eviction-pressure model of §VI-A.6. These are the
// curves behind the paper's claim that r = 0.05 "offers strong security
// guarantees with a low impact on performance".

import "math"

// SuccessProbability is the chance an attack with 50%-complexity C
// succeeds within the given event budget. Attack trials are independent
// Bernoulli events, so P(n) = 1 − (1 − p)ⁿ with p chosen such that
// P(C) = 0.5, i.e. p = 1 − 2^(−1/C).
func SuccessProbability(events, c float64) float64 {
	if c <= 0 || events <= 0 {
		return 0
	}
	p := 1 - math.Exp2(-1/c)
	return -math.Expm1(float64(events) * math.Log1p(-p))
}

// EpochSuccessProbability is the attack success probability within one
// token epoch when the threshold is Γ = r·C: the attacker is cut off
// after r·C events, so P = 1 − 2^(−r). For the paper's r = 0.05 this is
// ≈ 3.4%: no attack reaches a coin-flip chance before its partial
// knowledge is destroyed.
func EpochSuccessProbability(r float64) float64 {
	if r <= 0 {
		return 0
	}
	return -math.Expm1(r * math.Log(0.5))
}

// MultiEpochSuccessProbability is the chance at least one of k epochs
// succeeds. Epochs are independent — re-randomization resets the
// attacker's knowledge, so probability does NOT accumulate within the
// search space, only across independent retries:
// P(k) = 1 − (1 − P_epoch)ᵏ.
func MultiEpochSuccessProbability(r float64, epochs int) float64 {
	if epochs <= 0 {
		return 0
	}
	pe := EpochSuccessProbability(r)
	return -math.Expm1(float64(epochs) * math.Log1p(-pe))
}

// ExpectedEventsToSuccess is the expected total monitored events an
// attacker spends before its first success under re-randomization with
// threshold Γ = r·C: each epoch costs Γ events and succeeds with
// probability P_epoch, a geometric process costing Γ / P_epoch → C/ln2 ≈
// 1.44·C as r → 0. Re-randomization therefore does not merely delay the
// attack — it removes the attacker's ability to make *progress*: the
// expected event cost stays a constant factor above the unprotected
// search no matter how small r is, while per-epoch success stays bounded
// by ≈ r·ln2 and every epoch boundary is an observable re-randomization
// the OS can alert on.
func ExpectedEventsToSuccess(r, c float64) float64 {
	pe := EpochSuccessProbability(r)
	if pe <= 0 {
		return math.Inf(1)
	}
	return r * c / pe
}

// BirthdayCollisionProb is the probability that n uniformly mapped items
// include at least one pairwise collision in a space of the given size —
// the bound the paper uses for self-collisions inside the attacker's
// probe set SB.
func BirthdayCollisionProb(n float64, space float64) float64 {
	if space <= 0 || n <= 1 {
		return 0
	}
	// 1 − exp(−n(n−1)/(2·space)), the standard approximation.
	return -math.Expm1(-n * (n - 1) / (2 * space))
}

// DoSEvictionProb is the §VI-A.6 eviction-based DoS model for a
// set-associative LRU structure: a blind spray of n branches evicts a
// specific victim entry only once the victim's set has filled — the
// victim (oldest in its set) falls to the W-th spray insert landing
// there. Spray placement over I sets is uniform under keyed remapping,
// so the count in the victim's set is ≈ Poisson(n/I) and
// P(evicted) = P(X ≥ W) = 1 − CDF_Poisson(W−1; n/I).
//
// (The memoryless 1 − (1−1/(I·W))ⁿ form over-estimates markedly: most
// sprays land in non-full sets and evict nothing. The set-associative
// form below matches the measured behaviour of the simulated BTB —
// validated in internal/attacks TestDoSEvictionProbMatchesAnalysis.)
func DoSEvictionProb(p StructParams, sprays float64) float64 {
	if sprays <= 0 {
		return 0
	}
	lambda := sprays / p.Sets
	w := int(p.Ways)
	// P(X <= w-1) for X ~ Poisson(lambda), computed in log space for
	// numerical stability at large lambda.
	cdf := 0.0
	logTerm := -lambda // log of e^-λ λ^0 / 0!
	for k := 0; k < w; k++ {
		if k > 0 {
			logTerm += math.Log(lambda) - math.Log(float64(k))
		}
		cdf += math.Exp(logTerm)
	}
	if cdf > 1 {
		cdf = 1
	}
	return 1 - cdf
}

// DoSSpraysForProb inverts DoSEvictionProb numerically: the blind-spray
// budget needed to evict a specific victim entry with probability target.
func DoSSpraysForProb(p StructParams, target float64) float64 {
	if target <= 0 {
		return 0
	}
	if target >= 1 {
		return math.Inf(1)
	}
	lo, hi := 0.0, p.Sets*p.Ways
	for DoSEvictionProb(p, hi) < target {
		hi *= 2
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if DoSEvictionProb(p, mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// GammaSweepRow is one row of the threshold sweep: the security side of
// Fig. 6 (the performance side is measured by experiments.RunFig6).
type GammaSweepRow struct {
	// R is the attack difficulty factor.
	R float64
	// MispThreshold and EvictThreshold are Γ = r·C for the two counters.
	MispThreshold, EvictThreshold float64
	// EpochSuccess is the per-epoch attack success probability.
	EpochSuccess float64
	// EpochsFor50 is the number of token epochs an attacker must grind
	// through for a 50% overall chance — the attack's wall-clock scale,
	// growing as 1/r while the total *event* cost stays ≈ C/ln2.
	EpochsFor50 float64
}

// GammaSweep evaluates the security consequences of lowering r — the
// quantitative argument for §VII-B3's "thresholds can be safely reduced".
func GammaSweep(rs []float64) []GammaSweepRow {
	rows := make([]GammaSweepRow, 0, len(rs))
	for _, r := range rs {
		m, e := Thresholds(r)
		rows = append(rows, GammaSweepRow{
			R:              r,
			MispThreshold:  m,
			EvictThreshold: e,
			EpochSuccess:   EpochSuccessProbability(r),
			EpochsFor50:    EpochsForProbability(r, 0.5),
		})
	}
	return rows
}

// EpochsForProbability is the number of independent token epochs needed
// for the attacker's overall success probability to reach target.
func EpochsForProbability(r, target float64) float64 {
	pe := EpochSuccessProbability(r)
	if pe <= 0 {
		return math.Inf(1)
	}
	if target >= 1 {
		return math.Inf(1)
	}
	if target <= 0 {
		return 0
	}
	return math.Log1p(-target) / math.Log1p(-pe)
}
