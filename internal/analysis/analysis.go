// Package analysis implements the closed-form security analysis of §VI:
// the event complexities an attacker must pay to mount each collision-based
// attack against STBPU, and the re-randomization thresholds Γ = r·C derived
// from them (§VI-A.5, §VII-A).
//
// Parameter glossary (Table III): I — sets, W — ways, T — tag entropy,
// O — offset entropy, Ω — stored-target entropy, ψ/φ — token halves.
package analysis

import (
	"math"
)

// StructParams describe one STBPU structure for the analysis.
type StructParams struct {
	// Sets (I) and Ways (W).
	Sets, Ways float64
	// TagEntropy (T) and OffsetEntropy (O) are entry match entropies
	// (2^bits).
	TagEntropy, OffsetEntropy float64
	// TargetEntropy (Ω) is the stored-target entropy (2^bits).
	TargetEntropy float64
}

// SkylakeBTB returns the paper's STBTB parameters: 512 sets × 8 ways,
// 8-bit tags, 5-bit offsets, 32-bit stored targets.
func SkylakeBTB() StructParams {
	return StructParams{
		Sets: 512, Ways: 8,
		TagEntropy:    math.Exp2(8),
		OffsetEntropy: math.Exp2(5),
		TargetEntropy: math.Exp2(32),
	}
}

// SkylakePHT returns the STPHT parameters: 2^14 direct-mapped counters,
// no tags (PHT entries are never evicted).
func SkylakePHT() StructParams {
	return StructParams{Sets: math.Exp2(14), Ways: 1, TagEntropy: 1, OffsetEntropy: 1}
}

// ReuseBTBMispredictions evaluates Eq. (2): the mispredictions incurred
// while growing a conflict-free branch set SB of size n = I·T·O/2 (50%
// collision probability with a static victim branch) by pairwise testing.
func ReuseBTBMispredictions(p StructParams) float64 {
	n := p.Sets * p.TagEntropy * p.OffsetEntropy / 2
	return n * (n + 1) / 2 / (math.Sqrt(math.Pi/2*p.Sets) * math.Sqrt(math.Pi/2*p.TagEntropy*p.OffsetEntropy))
}

// ReuseBTBEvictions evaluates Eq. (2)'s eviction term: E ≈ I·T·O/2 − I·W.
// Growing SB far beyond BTB capacity constantly evicts entries.
func ReuseBTBEvictions(p StructParams) float64 {
	return p.Sets*p.TagEntropy*p.OffsetEntropy/2 - p.Sets*p.Ways
}

// ReusePHTMispredictions is the PHT variant of Eq. (2). The PHT has no
// tags or evictions, so the attacker must pairwise-test a full-table
// branch population (n = I): M = n(n+1)/2 / sqrt(π/2·I). At Skylake sizes
// this reproduces the paper's ≈8.38e5 (§VI-A.5) — the cheapest known
// attack, hence the basis of the misprediction threshold.
func ReusePHTMispredictions(p StructParams) float64 {
	n := p.Sets
	return n * (n + 1) / 2 / math.Sqrt(math.Pi/2*p.Sets)
}

// NaiveEvictionSetProb evaluates Eq. (3): the probability of randomly
// guessing W branches that share one STBTB set.
func NaiveEvictionSetProb(p StructParams) float64 {
	return 1 / math.Pow(p.Sets, p.Ways-1)
}

// GEMEvictions evaluates Eq. (4): evictions generated while constructing
// eviction sets with the group-elimination method for attack success rate
// P. At P = 0.5 and Skylake sizes this reproduces ≈5.3e5.
func GEMEvictions(p StructParams, successP float64) float64 {
	return successP * p.Sets * (successP*p.Sets*p.Ways + (p.Ways+1)*(1-1/math.E)*3)
}

// TargetInjectionMispredictions is the §VI-A.1 brute-force bound for
// Spectre-v2 / SpectreRSB style target injection: the victim's decrypted
// target is τV = φa ⊕ τA ⊕ φv, so hitting a gadget at G requires on
// average Ω/2 attempts, each costing a misprediction.
func TargetInjectionMispredictions(p StructParams) float64 {
	return p.TargetEntropy / 2
}

// Complexity is one row of the §VI-A.5 summary.
type Complexity struct {
	// Attack names the attack class.
	Attack string
	// Metric is the monitored event ("mispredictions" or "evictions").
	Metric string
	// Events is the expected event count for 50% attack success.
	Events float64
}

// SectionVI returns the paper's headline complexity numbers at Skylake
// sizes: BTB reuse ≈6.9e8 MISP and ≈2^21 evictions, PHT reuse ≈8.38e5
// MISP, BTB eviction-based ≈5.3e5 evictions, Spectre v2/RSB ≈2^31 MISP.
func SectionVI() []Complexity {
	btb, pht := SkylakeBTB(), SkylakePHT()
	return []Complexity{
		{"BTB reuse side channel", "mispredictions", ReuseBTBMispredictions(btb)},
		{"BTB reuse side channel", "evictions", ReuseBTBEvictions(btb)},
		{"PHT reuse side channel (BranchScope)", "mispredictions", ReusePHTMispredictions(pht)},
		{"BTB eviction side channel (GEM)", "evictions", GEMEvictions(btb, 0.5)},
		{"Spectre v2 / SpectreRSB target injection", "mispredictions", TargetInjectionMispredictions(btb)},
	}
}

// MinComplexities returns the cheapest misprediction-counted and
// eviction-counted attacks — the C values thresholds derive from.
func MinComplexities() (misp, evict float64) {
	misp, evict = math.Inf(1), math.Inf(1)
	for _, c := range SectionVI() {
		switch c.Metric {
		case "mispredictions":
			misp = math.Min(misp, c.Events)
		case "evictions":
			evict = math.Min(evict, c.Events)
		}
	}
	return misp, evict
}

// Thresholds evaluates Γ = r·C for both monitors (§VII-A): r=0.05 gives
// ≈4.15e4 mispredictions and ≈2.65e4 evictions.
func Thresholds(r float64) (misp, evict float64) {
	m, e := MinComplexities()
	return r * m, r * e
}

// ExpectedProbesToCollision returns the expected number of distinct probe
// addresses needed before one collides with a static victim entry:
// 1/P(A⇒V) = I·T·O (§VI-A.2). Attack simulations compare measured trial
// counts against it.
func ExpectedProbesToCollision(p StructParams) float64 {
	return p.Sets * p.TagEntropy * p.OffsetEntropy
}
