package analysis

import (
	"math"
	"testing"
)

// within reports |got/want - 1| <= tol.
func within(got, want, tol float64) bool {
	return math.Abs(got/want-1) <= tol
}

func TestReuseBTBMispredictionsMatchesPaper(t *testing.T) {
	// §VI-A.5: ≈ 6.9e8 mispredictions.
	got := ReuseBTBMispredictions(SkylakeBTB())
	if !within(got, 6.9e8, 0.02) {
		t.Errorf("BTB reuse mispredictions = %.3g, paper says 6.9e8", got)
	}
}

func TestReuseBTBEvictionsMatchesPaper(t *testing.T) {
	// §VI-A.5: ≈ 2^21 evictions.
	got := ReuseBTBEvictions(SkylakeBTB())
	if !within(got, math.Exp2(21), 0.01) {
		t.Errorf("BTB reuse evictions = %.3g, paper says 2^21 ≈ %.3g", got, math.Exp2(21))
	}
}

func TestReusePHTMispredictionsMatchesPaper(t *testing.T) {
	// §VI-A.5: ≈ 8.38e5 mispredictions.
	got := ReusePHTMispredictions(SkylakePHT())
	if !within(got, 8.38e5, 0.01) {
		t.Errorf("PHT reuse mispredictions = %.3g, paper says 8.38e5", got)
	}
}

func TestGEMEvictionsMatchesPaper(t *testing.T) {
	// §VI-A.5: ≈ 5.3e5 evictions at P = 0.5.
	got := GEMEvictions(SkylakeBTB(), 0.5)
	if !within(got, 5.3e5, 0.01) {
		t.Errorf("GEM evictions = %.3g, paper says 5.3e5", got)
	}
}

func TestTargetInjectionMatchesPaper(t *testing.T) {
	// §VI-A.5: ≈ 2^31 mispredictions.
	got := TargetInjectionMispredictions(SkylakeBTB())
	if got != math.Exp2(31) {
		t.Errorf("target injection = %.3g, want 2^31", got)
	}
}

func TestNaiveEvictionSetProb(t *testing.T) {
	// Eq. (3): 1/I^(W-1) — astronomically small at Skylake sizes.
	got := NaiveEvictionSetProb(SkylakeBTB())
	want := 1 / math.Pow(512, 7)
	if got != want {
		t.Errorf("naive eviction probability = %g, want %g", got, want)
	}
	if got > 1e-18 {
		t.Errorf("naive eviction probability implausibly large: %g", got)
	}
}

func TestThresholdsAtPaperR(t *testing.T) {
	// §VII-A: r = 0.05 → 4.15e4 mispredictions, 2.65e4 evictions.
	misp, evict := Thresholds(0.05)
	if !within(misp, 4.15e4, 0.02) {
		t.Errorf("misp threshold = %.4g, paper says 4.15e4", misp)
	}
	if !within(evict, 2.65e4, 0.01) {
		t.Errorf("evict threshold = %.4g, paper says 2.65e4", evict)
	}
	// r = 0.1 doubles the budgets.
	misp2, evict2 := Thresholds(0.1)
	if !within(misp2, 2*misp, 1e-9) || !within(evict2, 2*evict, 1e-9) {
		t.Error("thresholds not linear in r")
	}
}

func TestMinComplexitiesAreTheCheapestAttacks(t *testing.T) {
	misp, evict := MinComplexities()
	if !within(misp, 8.38e5, 0.01) {
		t.Errorf("cheapest misprediction attack = %.3g, want PHT reuse 8.38e5", misp)
	}
	if !within(evict, 5.3e5, 0.01) {
		t.Errorf("cheapest eviction attack = %.3g, want GEM 5.3e5", evict)
	}
}

func TestSectionVIComplete(t *testing.T) {
	rows := SectionVI()
	if len(rows) != 5 {
		t.Fatalf("SectionVI has %d rows, want 5", len(rows))
	}
	for _, r := range rows {
		if r.Events <= 0 || math.IsNaN(r.Events) || math.IsInf(r.Events, 0) {
			t.Errorf("%s/%s: bad value %v", r.Attack, r.Metric, r.Events)
		}
	}
}

func TestExpectedProbesToCollision(t *testing.T) {
	// I·T·O = 512 · 256 · 32 = 2^22.
	got := ExpectedProbesToCollision(SkylakeBTB())
	if got != math.Exp2(22) {
		t.Errorf("expected probes = %g, want 2^22", got)
	}
}

func TestComplexityOrdering(t *testing.T) {
	// The security argument's shape: brute-force target injection must be
	// by far the most expensive; PHT reuse the cheapest misprediction
	// attack.
	btb := SkylakeBTB()
	if TargetInjectionMispredictions(btb) < ReuseBTBMispredictions(btb) {
		t.Error("target injection should cost more than BTB reuse")
	}
	if ReusePHTMispredictions(SkylakePHT()) > ReuseBTBMispredictions(btb) {
		t.Error("PHT reuse should be cheaper than BTB reuse")
	}
}
