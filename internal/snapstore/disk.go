// The persistent disk tier: checkpoints spill as checksummed .snap
// files, so later runs (and exec workers sharing the directory) restore
// warm predictor state instead of replaying the prefix. The format is a
// magic header, the payload length, an FNV-64a digest, and the payload;
// the digest turns any torn or bit-rotted spill into a counted miss
// instead of corrupt state handed to a decoder.

package snapstore

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
)

// SetDir enables the persistent checkpoint tier rooted at dir (creating
// it if needed); an empty dir disables the tier. Spills are atomic
// (temp-file-plus-rename) and durable (file fsynced before the rename,
// directory fsynced after), exactly like the trace tier — concurrent
// processes sharing the directory never observe a partial file, and a
// crash cannot publish a torn one.
func (s *Store) SetDir(dir string) error {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.dir = dir
	s.mu.Unlock()
	return nil
}

// snapMagic heads every spill file.
var snapMagic = []byte("STBS1\n")

// diskPath names the spill file for a key: the sanitized workload name
// for human readability, an FNV tag over the full (model, workload) pair
// for collision-proofing, and the records+offset coordinates.
func (s *Store) diskPath(k Key) string {
	h := fnv.New64a()
	h.Write([]byte(k.Model))
	h.Write([]byte{0})
	h.Write([]byte(k.Workload))
	s.mu.Lock()
	dir := s.dir
	s.mu.Unlock()
	return filepath.Join(dir, fmt.Sprintf("%s-%016x@%d+%d.snap", sanitizeWorkload(k.Workload), h.Sum64(), k.Records, k.Offset))
}

// sanitizeWorkload maps a workload name onto the filename-safe alphabet
// spill names use. The output contains no glob metacharacters, so it is
// safe to embed in a Prefetch pattern.
func sanitizeWorkload(workload string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, workload)
}

// prefetchBudgetBytes bounds how much spill data one Prefetch pulls
// into the page cache.
const prefetchBudgetBytes = 256 << 20

// Prefetch warms the disk tier for a workload's checkpoints in the
// background — the dispatch-time hint path. Full Keys cannot be
// reconstructed at dispatch time (they embed the model fingerprint the
// coordinator does not track), so prefetch works at the file level:
// every spill whose name carries the workload is read once and
// discarded, leaving the bytes hot in the OS page cache for the
// loadDisk that follows. Advisory: errors are swallowed and state is
// untouched, so results can never depend on it.
func (s *Store) Prefetch(workload string) {
	s.mu.Lock()
	dir := s.dir
	s.mu.Unlock()
	if dir == "" {
		return
	}
	go func() {
		matches, err := filepath.Glob(filepath.Join(dir, sanitizeWorkload(workload)+"-*.snap"))
		if err != nil {
			return
		}
		var total int64
		for _, m := range matches {
			st, err := os.Stat(m)
			if err != nil {
				continue
			}
			if total += st.Size(); total > prefetchBudgetBytes {
				return
			}
			_, _ = os.ReadFile(m)
		}
	}()
}

// loadDisk tries to satisfy a miss from a spill file. A missing file is
// a disk miss; a short, oversized, or checksum-failing file is a disk
// error — both read as a plain miss to the caller, which falls back to
// replay (and a subsequent Put overwrites the bad file).
func (s *Store) loadDisk(k Key) ([]byte, bool) {
	raw, err := os.ReadFile(s.diskPath(k))
	if err != nil {
		s.mu.Lock()
		if os.IsNotExist(err) {
			s.diskMisses++
		} else {
			s.diskErrors++
		}
		s.mu.Unlock()
		return nil, false
	}
	header := len(snapMagic) + 16
	if len(raw) < header || string(raw[:len(snapMagic)]) != string(snapMagic) {
		s.noteDiskError()
		return nil, false
	}
	n := binary.LittleEndian.Uint64(raw[len(snapMagic):])
	sum := binary.LittleEndian.Uint64(raw[len(snapMagic)+8:])
	payload := raw[header:]
	if uint64(len(payload)) != n {
		s.noteDiskError()
		return nil, false
	}
	h := fnv.New64a()
	h.Write(payload)
	if h.Sum64() != sum {
		s.noteDiskError()
		return nil, false
	}
	s.mu.Lock()
	s.diskHits++
	s.mu.Unlock()
	return payload, true
}

// spill writes the checkpoint to the tier atomically and durably.
// Failures are best-effort: the snapshot is already resident, so a full
// disk costs only the persistence, not the run.
func (s *Store) spill(k Key, data []byte) {
	s.mu.Lock()
	dir := s.dir
	s.mu.Unlock()
	tmp, err := os.CreateTemp(dir, ".snap-*")
	if err != nil {
		s.noteDiskError()
		return
	}
	var header [16]byte
	binary.LittleEndian.PutUint64(header[:8], uint64(len(data)))
	h := fnv.New64a()
	h.Write(data)
	binary.LittleEndian.PutUint64(header[8:], h.Sum64())
	_, err = tmp.Write(snapMagic)
	if err == nil {
		_, err = tmp.Write(header[:])
	}
	if err == nil {
		_, err = tmp.Write(data)
	}
	if err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		s.noteDiskError()
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		s.noteDiskError()
		return
	}
	if err := os.Rename(tmp.Name(), s.diskPath(k)); err != nil {
		os.Remove(tmp.Name())
		s.noteDiskError()
		return
	}
	if err := syncDir(dir); err != nil {
		// Content durable, rename visible; only the rename's durability
		// is in doubt. Count it, keep the file.
		s.noteDiskError()
		return
	}
	s.mu.Lock()
	s.diskWrites++
	s.mu.Unlock()
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func (s *Store) noteDiskError() {
	s.mu.Lock()
	s.diskErrors++
	s.mu.Unlock()
}
