package snapstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func key(model string, off int) Key {
	return Key{Model: model, Workload: "wl", Records: 10_000, Offset: off}
}

func TestGetPutRoundTrip(t *testing.T) {
	s := New(1 << 20)
	if _, ok := s.Get(key("m", 100)); ok {
		t.Fatal("empty store returned a hit")
	}
	data := []byte("predictor state")
	s.Put(key("m", 100), data)
	got, ok := s.Get(key("m", 100))
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	// The key is exact: a different offset, records total, workload, or
	// model fingerprint must all miss.
	for _, k := range []Key{
		key("m", 101),
		{Model: "m", Workload: "wl", Records: 20_000, Offset: 100},
		{Model: "m", Workload: "other", Records: 10_000, Offset: 100},
		key("other", 100),
	} {
		if _, ok := s.Get(k); ok {
			t.Errorf("key %+v unexpectedly hit", k)
		}
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 5 || st.Puts != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUEvictionRespectsByteBudget(t *testing.T) {
	const payload = 1000
	budget := int64(3 * (payload + entryOverheadBytes))
	s := New(budget)
	for i := 0; i < 10; i++ {
		s.Put(key("m", i), make([]byte, payload))
	}
	if n := s.Len(); n != 3 {
		t.Fatalf("resident entries = %d, want 3", n)
	}
	if st := s.Stats(); st.Bytes > budget || st.Evictions != 7 {
		t.Fatalf("stats = %+v (budget %d)", st, budget)
	}
	// LRU order: the latest three survive, and touching one protects it
	// from the next eviction round.
	if _, ok := s.Get(key("m", 7)); !ok {
		t.Fatal("entry 7 should be resident")
	}
	s.Put(key("m", 10), make([]byte, payload))
	s.Put(key("m", 11), make([]byte, payload))
	if _, ok := s.Get(key("m", 7)); !ok {
		t.Error("recently touched entry evicted before colder ones")
	}
	if _, ok := s.Get(key("m", 8)); ok {
		t.Error("cold entry survived past the budget")
	}
}

func TestPutReplaceRefreshes(t *testing.T) {
	s := New(1 << 20)
	s.Put(key("m", 0), make([]byte, 100))
	s.Put(key("m", 0), make([]byte, 300))
	if n := s.Len(); n != 1 {
		t.Fatalf("replace grew the store to %d entries", n)
	}
	want := int64(300 + entryOverheadBytes)
	if st := s.Stats(); st.Bytes != want {
		t.Errorf("bytes = %d after replace, want %d", st.Bytes, want)
	}
}

func TestDiskTierRoundTrip(t *testing.T) {
	dir := t.TempDir()
	a := New(1 << 20)
	if err := a.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	data := []byte("warm state bytes")
	a.Put(key("m", 500), data)
	if st := a.Stats(); st.DiskWrites != 1 {
		t.Fatalf("spill not recorded: %+v", st)
	}

	// A second store sharing the directory (another process in real
	// life) restores the checkpoint from disk and promotes it.
	b := New(1 << 20)
	if err := b.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	got, ok := b.Get(key("m", 500))
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("disk-tier Get = %q, %v", got, ok)
	}
	if st := b.Stats(); st.DiskHits != 1 || st.Misses != 1 {
		t.Fatalf("disk hit not counted: %+v", st)
	}
	// Promoted: the next Get is a memory hit.
	if _, ok := b.Get(key("m", 500)); !ok {
		t.Fatal("promoted entry missing")
	}
	if st := b.Stats(); st.Hits != 1 {
		t.Fatalf("promotion not effective: %+v", st)
	}
	if _, ok := b.Get(key("m", 501)); ok {
		t.Fatal("absent key hit")
	}
	if st := b.Stats(); st.DiskMisses != 1 {
		t.Fatalf("disk miss not counted: %+v", st)
	}
}

func TestDiskTierRejectsCorruptSpills(t *testing.T) {
	dir := t.TempDir()
	s := New(1 << 20)
	if err := s.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	s.Put(key("m", 7), []byte("good bytes"))
	names, err := filepath.Glob(filepath.Join(dir, "*.snap"))
	if err != nil || len(names) != 1 {
		t.Fatalf("spill files = %v (%v)", names, err)
	}
	raw, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}

	corruptions := map[string][]byte{
		"empty":        {},
		"short-header": raw[:len(snapMagic)+3],
		"bad-magic":    append([]byte("NOTIT\n"), raw[len(snapMagic):]...),
		"flipped-payload": func() []byte {
			c := append([]byte(nil), raw...)
			c[len(c)-1] ^= 0xff
			return c
		}(),
		"bad-length": func() []byte {
			c := append([]byte(nil), raw...)
			binary.LittleEndian.PutUint64(c[len(snapMagic):], 1<<40)
			return c
		}(),
	}
	for name, bad := range corruptions {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(names[0], bad, 0o644); err != nil {
				t.Fatal(err)
			}
			fresh := New(1 << 20)
			if err := fresh.SetDir(dir); err != nil {
				t.Fatal(err)
			}
			if _, ok := fresh.Get(key("m", 7)); ok {
				t.Fatal("corrupt spill served as a hit")
			}
			if st := fresh.Stats(); st.DiskErrors != 1 {
				t.Errorf("corruption not counted as disk error: %+v", st)
			}
			// A subsequent Put overwrites the bad file and heals the tier.
			fresh.Put(key("m", 7), []byte("good bytes"))
			again := New(1 << 20)
			if err := again.SetDir(dir); err != nil {
				t.Fatal(err)
			}
			if got, ok := again.Get(key("m", 7)); !ok || string(got) != "good bytes" {
				t.Fatalf("healed spill unreadable: %q, %v", got, ok)
			}
		})
	}
}

// TestEvictionUnderConcurrentForks drives a deliberately tiny store
// from many goroutines that checkpoint and restore overlapping keys —
// the shape of a trace-major group forking models while the LRU churns.
// Run under -race this pins the locking discipline; in any mode it pins
// that concurrent eviction never serves torn or foreign bytes.
func TestEvictionUnderConcurrentForks(t *testing.T) {
	const payload = 512
	s := New(4 * (payload + entryOverheadBytes))
	stamp := func(model string, off, gen int) []byte {
		data := make([]byte, payload)
		copy(data, fmt.Sprintf("%s@%d#%d", model, off, gen))
		return data
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			model := fmt.Sprintf("model-%d", w%4)
			for gen := 0; gen < 200; gen++ {
				off := (w*37 + gen*13) % 9
				// Fills are deterministic per key: generation is not part
				// of the payload check below, only (model, offset) is.
				s.Put(key(model, off), stamp(model, off, 0))
				if data, ok := s.Get(key(model, off%7)); ok {
					wantPrefix := fmt.Sprintf("%s@%d#", model, off%7)
					if !bytes.HasPrefix(data, []byte(wantPrefix)) {
						t.Errorf("Get(%s,%d) returned foreign bytes %q", model, off%7, data[:32])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if st := s.Stats(); st.Evictions == 0 {
		t.Errorf("tiny store never evicted: %+v", st)
	}
}
