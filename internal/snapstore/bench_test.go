// Benchmarks contrasting the two ways to produce per-phase
// measurements: quadratic prefix replay (every phase re-warms from
// record zero) versus the snapshot tier (one warm pass, checkpoint at
// boundaries, restore instead of replay). They run in an external test
// package because the store itself must stay below internal/sim in the
// dependency order — only the benchmark needs live models.

package snapstore_test

import (
	"context"
	"testing"

	"stbpu/internal/sim"
	"stbpu/internal/snapstore"
	"stbpu/internal/trace"
)

// phaseFixture is an 8-phase view over a switch-heavy preset trace
// (the tier's acceptance shape asks for >= 4 phases; suite spec
// workloads run 20k-60k records).
func phaseFixture(b *testing.B) (*trace.Columns, sim.Options, []int) {
	b.Helper()
	const records = 48_000
	p, err := trace.Preset("mysql_128con_50s")
	if err != nil {
		b.Fatal(err)
	}
	cols, err := trace.GenerateColumns(p.WithRecords(records))
	if err != nil {
		b.Fatal(err)
	}
	bounds := make([]int, 0, 9)
	for o := 0; o <= records; o += records / 8 {
		bounds = append(bounds, o)
	}
	return cols, sim.Options{SharedTokens: p.SharedTokens, Seed: 7}, bounds
}

func BenchmarkPhaseWarmup(b *testing.B) {
	cols, opt, bounds := phaseFixture(b)
	ctx := context.Background()
	records := cols.Len()

	// The pre-snapshot path: every phase cell builds a cold model and
	// replays the full prefix before measuring its own records —
	// quadratic in the phase count.
	b.Run("replay", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for pi := 0; pi+1 < len(bounds); pi++ {
				m := sim.New(sim.KindSTBPU, opt)
				if bounds[pi] > 0 {
					if _, err := sim.RunColumnsCtx(ctx, m, cols.Slice(0, bounds[pi])); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := sim.RunColumnsCtx(ctx, m, cols.Slice(bounds[pi], bounds[pi+1])); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	// The snapshot tier: each phase restores the boundary checkpoint
	// (encode/decode round trip included in the cost) and replays only
	// its own records, checkpointing the next boundary — linear total.
	b.Run("fork", func(b *testing.B) {
		b.ReportAllocs()
		fp := sim.Fingerprint(sim.KindSTBPU, opt)
		for i := 0; i < b.N; i++ {
			snaps := snapstore.New(0)
			for pi := 0; pi+1 < len(bounds); pi++ {
				lo, hi := bounds[pi], bounds[pi+1]
				m := sim.New(sim.KindSTBPU, opt).(sim.Snapshotter)
				if lo > 0 {
					k := snapstore.Key{Model: fp, Workload: cols.Name, Records: records, Offset: lo}
					data, ok := snaps.Get(k)
					if !ok {
						b.Fatalf("missing checkpoint at %d", lo)
					}
					if err := m.DecodeState(data); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := sim.RunColumnsCtx(ctx, m, cols.Slice(lo, hi)); err != nil {
					b.Fatal(err)
				}
				if hi < records {
					k := snapstore.Key{Model: fp, Workload: cols.Name, Records: records, Offset: hi}
					snaps.Put(k, m.EncodeState())
				}
			}
		}
	})
}
