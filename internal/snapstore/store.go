// Package snapstore is the warm-state checkpoint store behind the
// snapshot tier: encoded predictor state (sim.Snapshotter bytes), keyed
// by model fingerprint, workload, trace length, and record offset, held
// in a byte-bounded LRU with an optional persistent disk tier.
//
// The store holds bytes, not live models — it sits below internal/sim in
// the dependency order, so the replay scheduler can hand snapshots to
// exec workers and remote fleets exactly as it ships traces. Keys carry
// the full trace length as well as the offset because phased workloads
// rescale their phase boundaries with the record budget: the prefix
// [0,k) of an n-record phased trace is NOT the prefix of an m-record one
// (plain presets are prefix-stable, but the key must be safe for every
// workload).
//
// Everything is safe for concurrent use. Like tracestore, disk problems
// never fail a lookup: an unreadable or corrupt spill counts an error
// and reads as a miss, and the caller falls back to replay.
package snapstore

import (
	"container/list"
	"sync"
)

// Key identifies one checkpoint.
type Key struct {
	// Model is the model-configuration fingerprint (sim.Fingerprint):
	// snapshots are interchangeable only between identically configured
	// models, seed included.
	Model string
	// Workload is the workload name (spec names embed a content hash).
	Workload string
	// Records is the full trace length the snapshot was captured from.
	Records int
	// Offset is how many records were replayed before capture.
	Offset int
}

// DefaultMaxBytes bounds stores whose creator does not choose a budget.
// Encoded model state is a few hundred KB at worst (the 64KB TAGE-SC-L
// lineup), so the default comfortably holds every phase boundary of a
// full suite run.
const DefaultMaxBytes = 128 << 20

// entryOverheadBytes charges each entry for map/list/header overhead so
// a many-tiny-snapshots workload still respects the bound.
const entryOverheadBytes = 192

// Stats is a point-in-time snapshot of store counters.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Puts      uint64 `json:"puts"`
	Evictions uint64 `json:"evictions"`
	// DiskHits counts misses satisfied by a spilled checkpoint file;
	// DiskMisses counts misses that found no usable spill; DiskWrites
	// counts checkpoints spilled; DiskErrors counts unreadable/corrupt
	// spills and failed writes (all fall back gracefully, never failing
	// a lookup).
	DiskHits   uint64 `json:"disk_hits,omitempty"`
	DiskMisses uint64 `json:"disk_misses,omitempty"`
	DiskWrites uint64 `json:"disk_writes,omitempty"`
	DiskErrors uint64 `json:"disk_errors,omitempty"`
	// Bytes is the current resident size; MaxBytes the configured bound.
	Bytes    int64 `json:"bytes"`
	MaxBytes int64 `json:"max_bytes"`
}

// Store is the checkpoint cache. The zero value is not usable; construct
// with New. All methods are safe for concurrent use.
type Store struct {
	maxBytes int64

	mu      sync.Mutex
	dir     string // disk tier root; "" disables the tier
	entries map[Key]*list.Element
	lru     *list.List // front = most recent; values are *entry
	bytes   int64

	hits, misses, puts, evictions                uint64
	diskHits, diskMisses, diskWrites, diskErrors uint64
}

type entry struct {
	key  Key
	data []byte
}

// New builds a store bounded to maxBytes of resident checkpoint data
// (maxBytes <= 0 means DefaultMaxBytes).
func New(maxBytes int64) *Store {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Store{
		maxBytes: maxBytes,
		entries:  map[Key]*list.Element{},
		lru:      list.New(),
	}
}

// Get returns the checkpoint for k, consulting memory first and then the
// disk tier (promoting a disk hit into memory). The returned bytes are
// shared and must be treated as read-only.
func (s *Store) Get(k Key) ([]byte, bool) {
	s.mu.Lock()
	if el, ok := s.entries[k]; ok {
		s.hits++
		s.lru.MoveToFront(el)
		data := el.Value.(*entry).data
		s.mu.Unlock()
		return data, true
	}
	s.misses++
	dir := s.dir
	s.mu.Unlock()

	if dir == "" {
		return nil, false
	}
	data, ok := s.loadDisk(k)
	if !ok {
		return nil, false
	}
	s.insert(k, data)
	return data, true
}

// Put stores a checkpoint, spilling it to the disk tier when one is
// configured. The store keeps a reference to data; callers must not
// mutate it afterwards.
func (s *Store) Put(k Key, data []byte) {
	s.mu.Lock()
	s.puts++
	dir := s.dir
	s.mu.Unlock()
	s.insert(k, data)
	if dir != "" {
		s.spill(k, data)
	}
}

// insert admits (or refreshes) an in-memory entry and evicts past the
// budget.
func (s *Store) insert(k Key, data []byte) {
	charge := int64(len(data)) + entryOverheadBytes
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[k]; ok {
		// Deterministic fills make replacement a no-op byte-wise, but
		// refresh the slice anyway and re-charge in case a caller uses
		// custom keys.
		e := el.Value.(*entry)
		s.bytes += charge - (int64(len(e.data)) + entryOverheadBytes)
		e.data = data
		s.lru.MoveToFront(el)
	} else {
		s.entries[k] = s.lru.PushFront(&entry{key: k, data: data})
		s.bytes += charge
	}
	for s.bytes > s.maxBytes {
		back := s.lru.Back()
		if back == nil {
			return
		}
		victim := back.Value.(*entry)
		s.lru.Remove(back)
		delete(s.entries, victim.key)
		s.bytes -= int64(len(victim.data)) + entryOverheadBytes
		s.evictions++
	}
}

// Len reports how many checkpoints are resident in memory.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:       s.hits,
		Misses:     s.misses,
		Puts:       s.puts,
		Evictions:  s.evictions,
		DiskHits:   s.diskHits,
		DiskMisses: s.diskMisses,
		DiskWrites: s.diskWrites,
		DiskErrors: s.diskErrors,
		Bytes:      s.bytes,
		MaxBytes:   s.maxBytes,
	}
}
