package bpu

// PHT is a table of 2-bit saturating counters: the base direction
// predictor. Counter states run from 0 (strongly not-taken) to 3 (strongly
// taken). PHT entries are never evicted (Table I: "PHT entries are not
// evicted") — a colliding branch reuses and retrains the counter instead.
type PHT struct {
	counters []uint8
}

// NewPHT allocates a table with n counters, initialized weakly not-taken.
func NewPHT(n int) *PHT {
	if n <= 0 {
		panic("bpu: PHT size must be positive")
	}
	c := make([]uint8, n)
	for i := range c {
		c[i] = 1 // weakly not-taken
	}
	return &PHT{counters: c}
}

// Size returns the counter count.
func (p *PHT) Size() int { return len(p.counters) }

// Snapshot copies the full counter state. BRB-style defenses retain a
// per-process copy of the directional predictor across context switches.
func (p *PHT) Snapshot() []uint8 {
	out := make([]uint8, len(p.counters))
	copy(out, p.counters)
	return out
}

// Restore overwrites the counter state from a snapshot taken on a table of
// the same size. A nil snapshot resets to the initial weakly-not-taken
// state (a process with no retained history starts cold).
func (p *PHT) Restore(snap []uint8) {
	if snap == nil {
		p.Flush()
		return
	}
	if len(snap) != len(p.counters) {
		panic("bpu: PHT snapshot size mismatch")
	}
	copy(p.counters, snap)
}

// Predict returns the direction for the given index.
func (p *PHT) Predict(idx uint32) bool {
	return p.counters[int(idx)%len(p.counters)] >= 2
}

// Counter exposes the raw state (attack models read it to emulate
// BranchScope-style state probing).
func (p *PHT) Counter(idx uint32) uint8 {
	return p.counters[int(idx)%len(p.counters)]
}

// Update trains the counter toward the outcome.
func (p *PHT) Update(idx uint32, taken bool) {
	i := int(idx) % len(p.counters)
	c := p.counters[i]
	if taken {
		if c < 3 {
			p.counters[i] = c + 1
		}
	} else if c > 0 {
		p.counters[i] = c - 1
	}
}

// Flush resets every counter to the weakly not-taken state.
func (p *PHT) Flush() {
	for i := range p.counters {
		p.counters[i] = 1
	}
}
