package bpu

// DirectionPredictor is the pluggable conditional-direction component of a
// Unit. Implementations: SKLCond (this package), tage.Predictor, and
// perceptron.Predictor, plus their ST-protected wrappers in internal/core.
//
// Contract: Update must be called with the same pc immediately after the
// Predict it resolves (the hardware pipeline guarantees this ordering per
// logical branch; the trace simulator preserves it). Implementations may
// stash lookup state between the two calls.
type DirectionPredictor interface {
	// Predict returns the predicted direction for a conditional branch.
	Predict(pc uint64) bool
	// Update trains the predictor with the resolved outcome.
	Update(pc uint64, taken bool)
	// Flush clears all predictor state (flushing protections).
	Flush()
}

// Keyed is implemented by direction predictors whose index computations are
// keyed by the STBPU secret token ψ. Re-randomizing the token effectively
// invalidates accumulated state without touching other entities' history.
type Keyed interface {
	// SetKey installs the ψ half of the active secret token.
	SetKey(psi uint32)
}

// SKLCond is the baseline hybrid conditional predictor (§II-A): a single
// 16k-entry PHT of 2-bit counters addressed in two modes — 1-level (address
// only) and 2-level gshare (address ⊕ GHR) — with a per-branch chooser that
// learns which mode predicts better, as in the reverse-engineered Intel
// behaviour the paper generalizes.
type SKLCond struct {
	mapper  Mapper
	pht     *PHT
	chooser *PHT // 2-bit agree counters: >=2 means "use 2-level"
	hist    History

	// last lookup state, consumed by Update.
	lastIdx1, lastIdx2 uint32
	lastChoice         uint32
}

// NewSKLCond builds the baseline conditional predictor over a mapper.
func NewSKLCond(m Mapper) *SKLCond {
	return &SKLCond{
		mapper:  m,
		pht:     NewPHT(PHTSize),
		chooser: NewPHT(PHTSize / 4),
	}
}

var _ DirectionPredictor = (*SKLCond)(nil)

// Predict implements DirectionPredictor.
func (s *SKLCond) Predict(pc uint64) bool {
	s.lastIdx1 = s.mapper.PHT1(pc)
	s.lastIdx2 = s.mapper.PHT2(pc, s.hist.GHR)
	s.lastChoice = s.lastIdx1 % uint32(s.chooser.Size())
	if s.chooser.Predict(s.lastChoice) {
		return s.pht.Predict(s.lastIdx2)
	}
	return s.pht.Predict(s.lastIdx1)
}

// Update implements DirectionPredictor.
func (s *SKLCond) Update(pc uint64, taken bool) {
	p1 := s.pht.Predict(s.lastIdx1)
	p2 := s.pht.Predict(s.lastIdx2)
	// Train the chooser only when the modes disagree.
	if p1 != p2 {
		s.chooser.Update(s.lastChoice, p2 == taken)
	}
	s.pht.Update(s.lastIdx1, taken)
	if s.lastIdx2 != s.lastIdx1 {
		s.pht.Update(s.lastIdx2, taken)
	}
	s.hist.PushOutcome(taken)
}

// Flush implements DirectionPredictor.
func (s *SKLCond) Flush() {
	s.pht.Flush()
	s.chooser.Flush()
	s.hist.Reset()
}

// PHTRef exposes the underlying table for attack models (BranchScope reads
// counter state through timing; the simulation reads it directly).
func (s *SKLCond) PHTRef() *PHT { return s.pht }

// Mapper returns the active mapper (attack drivers need the index
// functions to reason about collisions).
func (s *SKLCond) Mapper() Mapper { return s.mapper }

// SetMapper swaps the mapper; the ST wrapper uses this on token
// re-randomization so new lookups use the new ψ.
func (s *SKLCond) SetMapper(m Mapper) { s.mapper = m }

// DirState is a full snapshot of the conditional-predictor state: the PHT
// counters, the chooser counters, and the history registers. BRB-style
// defenses (internal/defenses) save and restore one per software entity
// across context switches. The zero value represents a cold predictor.
type DirState struct {
	// PHT is the 2-bit counter table contents; nil means cold.
	PHT []uint8
	// Chooser is the mode-chooser table contents; nil means cold.
	Chooser []uint8
	// Hist is the history-register state at switch-out time.
	Hist History
}

// Snapshot captures the complete direction-predictor state.
func (s *SKLCond) Snapshot() DirState {
	return DirState{
		PHT:     s.pht.Snapshot(),
		Chooser: s.chooser.Snapshot(),
		Hist:    s.hist,
	}
}

// Restore installs a previously captured state; the zero value resets the
// predictor to cold (a process with no retained history).
func (s *SKLCond) Restore(st DirState) {
	s.pht.Restore(st.PHT)
	s.chooser.Restore(st.Chooser)
	s.hist = st.Hist
}
