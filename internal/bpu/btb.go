package bpu

// btbEntry is one BTB way. The baseline stores a compressed tag, a 5-bit
// offset, and the low 32 bits of the target. In full-tag (conservative)
// mode the entry additionally keeps the complete branch address, which
// doubles entry size and halves capacity for the same hardware budget
// (§VII-B1).
type btbEntry struct {
	valid  bool
	tag    uint32
	offs   uint32
	target uint32 // possibly encrypted, per the active Mapper
	fullPC uint64 // conservative mode only
	lru    uint32 // larger = more recently used
}

// BTBConfig sizes a branch target buffer.
type BTBConfig struct {
	// Sets and Ways give the geometry (baseline 512×8).
	Sets, Ways int
	// FullTags enables the conservative model: entries store the full
	// 48-bit branch address and hit only on exact matches.
	FullTags bool
}

// BaselineBTBConfig is the Skylake-style 4096-entry, 8-way geometry.
func BaselineBTBConfig() BTBConfig { return BTBConfig{Sets: BTBSets, Ways: BTBWays} }

// ConservativeBTBConfig halves capacity to pay for full 48-bit tags.
func ConservativeBTBConfig() BTBConfig {
	return BTBConfig{Sets: BTBSets / 2, Ways: BTBWays, FullTags: true}
}

// BTB is a set-associative branch target buffer with LRU replacement.
type BTB struct {
	cfg     BTBConfig
	entries []btbEntry // sets × ways, row-major
	clock   uint32
	// Evictions counts valid entries displaced by inserts since the last
	// ResetCounters — the event STBPU's threshold MSRs monitor.
	Evictions uint64
}

// NewBTB allocates a BTB with the given geometry.
func NewBTB(cfg BTBConfig) *BTB {
	if cfg.Sets <= 0 || cfg.Ways <= 0 {
		panic("bpu: BTB geometry must be positive")
	}
	return &BTB{cfg: cfg, entries: make([]btbEntry, cfg.Sets*cfg.Ways)}
}

// Config returns the geometry.
func (b *BTB) Config() BTBConfig { return b.cfg }

// Sets returns the set count (needed by attack drivers and analysis).
func (b *BTB) Sets() int { return b.cfg.Sets }

// Ways returns the associativity.
func (b *BTB) Ways() int { return b.cfg.Ways }

func (b *BTB) set(i uint32) []btbEntry {
	i %= uint32(b.cfg.Sets)
	return b.entries[int(i)*b.cfg.Ways : (int(i)+1)*b.cfg.Ways]
}

// Lookup finds the stored (possibly encrypted) target for the given
// set/tag/offset. fullPC is consulted only in FullTags mode. A hit
// refreshes LRU state.
func (b *BTB) Lookup(set, tag, offs uint32, fullPC uint64) (target uint32, hit bool) {
	ways := b.set(set)
	for i := range ways {
		e := &ways[i]
		if !e.valid || e.tag != tag || e.offs != offs {
			continue
		}
		if b.cfg.FullTags && e.fullPC != fullPC {
			continue
		}
		b.clock++
		e.lru = b.clock
		return e.target, true
	}
	return 0, false
}

// Insert stores a target for set/tag/offset, replacing the LRU way if the
// set is full. It reports whether a valid entry was evicted (a different
// branch's entry was displaced).
func (b *BTB) Insert(set, tag, offs uint32, fullPC uint64, target uint32) (evicted bool) {
	ways := b.set(set)
	b.clock++
	// Update in place on tag match.
	for i := range ways {
		e := &ways[i]
		if e.valid && e.tag == tag && e.offs == offs && (!b.cfg.FullTags || e.fullPC == fullPC) {
			e.target = target
			e.lru = b.clock
			return false
		}
	}
	// Fill an invalid way if any.
	victim := -1
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		// Evict LRU.
		victim = 0
		for i := 1; i < len(ways); i++ {
			if ways[i].lru < ways[victim].lru {
				victim = i
			}
		}
		evicted = true
		b.Evictions++
	}
	ways[victim] = btbEntry{valid: true, tag: tag, offs: offs, target: target, fullPC: fullPC, lru: b.clock}
	return evicted
}

// Flush invalidates every entry (IBPB-style barrier).
func (b *BTB) Flush() {
	for i := range b.entries {
		b.entries[i] = btbEntry{}
	}
}

// ResetCounters zeroes the eviction counter.
func (b *BTB) ResetCounters() { b.Evictions = 0 }

// Occupancy returns the number of valid entries (used by tests and the
// attack drivers to verify priming).
func (b *BTB) Occupancy() int {
	n := 0
	for i := range b.entries {
		if b.entries[i].valid {
			n++
		}
	}
	return n
}
