package bpu

// Counters accumulates resolution events across a batch of retired
// branches. Batched replay paths fold each branch's outcome into one
// shared accumulator instead of returning an Events struct per record,
// which keeps the hot loop free of per-record result copies.
type Counters struct {
	// Mispredicts counts overall effective mispredictions (OAE numerator).
	Mispredicts uint64
	// Conds and DirCorrect count conditional branches and correct
	// directions among them.
	Conds      uint64
	DirCorrect uint64
	// TargetKnown and TargetCorrect count branches whose target needed
	// prediction and correct targets among them.
	TargetKnown   uint64
	TargetCorrect uint64
	// Evictions counts BTB insertions that displaced a valid entry.
	Evictions uint64
	// BTBMisses counts taken branches that missed every target structure.
	BTBMisses uint64
}

// Note folds one branch resolution into the counters.
func (c *Counters) Note(ev Events) {
	if ev.Mispredict {
		c.Mispredicts++
	}
	if ev.IsCond {
		c.Conds++
		if ev.DirCorrect {
			c.DirCorrect++
		}
	}
	if ev.TargetKnown {
		c.TargetKnown++
		if ev.TargetCorrect {
			c.TargetCorrect++
		}
	}
	if ev.BTBEviction {
		c.Evictions++
	}
	if ev.BTBMiss {
		c.BTBMisses++
	}
}
