package bpu

// RSB is the fixed-depth hardware return stack (§II-A): calls push the
// low 32 bits of the return address, returns pop. Overflow silently
// overwrites the oldest entry (circular); underflow reports !ok and the
// caller falls back to the indirect predictor.
type RSB struct {
	entries []uint32
	top     int // index of next push slot
	depth   int // live entries, ≤ len(entries)
	// Underflows counts pops from an empty stack since the last Flush.
	Underflows uint64
}

// NewRSB allocates a return stack with the given capacity.
func NewRSB(capacity int) *RSB {
	if capacity <= 0 {
		panic("bpu: RSB capacity must be positive")
	}
	return &RSB{entries: make([]uint32, capacity)}
}

// Capacity returns the hardware depth.
func (r *RSB) Capacity() int { return len(r.entries) }

// Depth returns the current live entry count.
func (r *RSB) Depth() int { return r.depth }

// Push stores a (possibly encrypted) 32-bit return address.
func (r *RSB) Push(v uint32) {
	r.entries[r.top] = v
	r.top = (r.top + 1) % len(r.entries)
	if r.depth < len(r.entries) {
		r.depth++
	}
}

// Pop removes and returns the most recent entry. ok is false on
// underflow — the case where returns are predicted via the BTB's mode-two
// path instead.
func (r *RSB) Pop() (v uint32, ok bool) {
	if r.depth == 0 {
		r.Underflows++
		return 0, false
	}
	r.top = (r.top - 1 + len(r.entries)) % len(r.entries)
	r.depth--
	return r.entries[r.top], true
}

// Peek returns the entry that the next Pop would yield without removing
// it (attack models use it to inspect poisoned state).
func (r *RSB) Peek() (v uint32, ok bool) {
	if r.depth == 0 {
		return 0, false
	}
	return r.entries[(r.top-1+len(r.entries))%len(r.entries)], true
}

// Flush empties the stack.
func (r *RSB) Flush() {
	r.top, r.depth = 0, 0
	r.Underflows = 0
}
