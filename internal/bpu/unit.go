package bpu

import "stbpu/internal/trace"

// Prediction is the BPU's answer for one branch before resolution.
type Prediction struct {
	// Taken is the predicted direction (always true for unconditional
	// branches).
	Taken bool
	// Target is the predicted 48-bit target, valid when TargetValid.
	Target uint64
	// TargetValid reports whether any target structure hit (BTB or RSB).
	TargetValid bool
	// FromRSB marks return predictions served by the return stack.
	FromRSB bool
	// FromMode2 marks BTB hits via the BHB-tagged indirect path.
	FromMode2 bool
}

// Events reports what happened when a branch resolved — the inputs to OAE
// accounting, IPC modelling, and STBPU's threshold monitoring.
type Events struct {
	// IsCond marks conditional branches (direction accounting).
	IsCond bool
	// DirCorrect is the direction outcome for conditional branches.
	DirCorrect bool
	// TargetKnown marks branches whose taken target needed prediction
	// (all taken branches).
	TargetKnown bool
	// TargetCorrect is the target outcome among TargetKnown branches.
	TargetCorrect bool
	// Mispredict is the overall effective outcome: wrong direction or
	// wrong/missing target of a taken branch (OAE counts a branch correct
	// only if every necessary prediction was correct, §VII-B1).
	Mispredict bool
	// BTBEviction reports that updating the BTB displaced a valid entry.
	BTBEviction bool
	// BTBMiss reports that the lookup missed every target structure.
	BTBMiss bool
}

// IndirectPredictor is an optional dedicated indirect-target predictor
// (e.g. ITTAGE) consulted ahead of the BTB's mode-two path for indirect
// branches and return-stack underflows. It trades with the Unit in the
// same currency as the BTB: 32-bit stored targets that the Mapper has
// already encrypted, so an ST-protected Unit automatically extends φ
// encryption to it.
//
// Contract: UpdateTarget must follow the PredictTarget it resolves, with
// the same pc (the DirectionPredictor ordering rule).
type IndirectPredictor interface {
	// PredictTarget returns the stored 32-bit target for the branch, if
	// any table hits.
	PredictTarget(pc uint64) (stored uint32, ok bool)
	// UpdateTarget trains the predictor with the resolved stored target.
	UpdateTarget(pc uint64, stored uint32)
	// OnBranch advances the predictor's private path history with one
	// retired branch (every branch, taken or not — outcome history is
	// part of the context indirect targets correlate with).
	OnBranch(pc, target uint64, taken bool)
	// Flush clears all predictor state.
	Flush()
}

// Unit is a complete branch prediction unit: target structures, return
// stack, history registers, and a pluggable direction predictor, all
// addressed through a Mapper.
type Unit struct {
	mapper   Mapper
	dir      DirectionPredictor
	btb      *BTB
	rsb      *RSB
	indirect IndirectPredictor // optional
	hist     History
}

// UnitConfig assembles a Unit.
type UnitConfig struct {
	// Mapper addresses the structures; nil means LegacyMapper.
	Mapper Mapper
	// Direction is the conditional predictor; nil means a baseline
	// SKLCond over the same mapper.
	Direction DirectionPredictor
	// BTB geometry; zero means BaselineBTBConfig.
	BTB BTBConfig
	// RSBDepth; zero means the 16-entry baseline.
	RSBDepth int
	// Indirect optionally adds a dedicated indirect-target predictor
	// consulted ahead of the BTB mode-two path.
	Indirect IndirectPredictor
}

// NewUnit builds a BPU from the configuration.
func NewUnit(cfg UnitConfig) *Unit {
	m := cfg.Mapper
	if m == nil {
		m = LegacyMapper{}
	}
	d := cfg.Direction
	if d == nil {
		d = NewSKLCond(m)
	}
	b := cfg.BTB
	if b.Sets == 0 {
		b = BaselineBTBConfig()
	}
	depth := cfg.RSBDepth
	if depth == 0 {
		depth = RSBDepth
	}
	return &Unit{
		mapper:   m,
		dir:      d,
		btb:      NewBTB(b),
		rsb:      NewRSB(depth),
		indirect: cfg.Indirect,
	}
}

// Mapper returns the active mapper.
func (u *Unit) Mapper() Mapper { return u.mapper }

// SetMapper swaps the mapper for all future lookups (token
// re-randomization). Existing entries become unreachable garbage, exactly
// as in hardware.
func (u *Unit) SetMapper(m Mapper) {
	u.mapper = m
	if s, ok := u.dir.(*SKLCond); ok {
		s.SetMapper(m)
	}
}

// Direction returns the conditional predictor.
func (u *Unit) Direction() DirectionPredictor { return u.dir }

// BTB returns the branch target buffer.
func (u *Unit) BTB() *BTB { return u.btb }

// RSB returns the return stack.
func (u *Unit) RSB() *RSB { return u.rsb }

// HistoryRef returns a pointer to the live history registers.
func (u *Unit) HistoryRef() *History { return &u.hist }

// Indirect returns the dedicated indirect predictor, or nil.
func (u *Unit) Indirect() IndirectPredictor { return u.indirect }

// Flush clears all structures (IBPB-style barrier). The direction
// predictor and history registers are reset too.
func (u *Unit) Flush() {
	u.btb.Flush()
	u.rsb.Flush()
	u.hist.Reset()
	u.dir.Flush()
	if u.indirect != nil {
		u.indirect.Flush()
	}
}

// lookupTarget consults the target structures for one branch.
func (u *Unit) lookupTarget(pc uint64, kind trace.Kind) (target uint64, valid, fromRSB, fromMode2 bool) {
	set, tag, offs := u.mapper.BTBIndex(pc)
	if kind == trace.KindReturn {
		if stored, ok := u.rsb.Pop(); ok {
			return ReconstructTarget(pc, u.mapper.DecryptTarget(stored)), true, true, false
		}
		// Underflow: fall back to the indirect predictor (mode two).
		if u.indirect != nil {
			if stored, ok := u.indirect.PredictTarget(pc); ok {
				return ReconstructTarget(pc, u.mapper.DecryptTarget(stored)), true, false, true
			}
		}
		if stored, ok := u.btb.Lookup(set, u.mapper.BTBTagBHB(u.hist.BHB), offs, pc); ok {
			return ReconstructTarget(pc, u.mapper.DecryptTarget(stored)), true, false, true
		}
		return 0, false, false, false
	}
	if kind.IsIndirect() {
		// Dedicated indirect predictor first, then mode two
		// (context-sensitive targets), then mode one.
		if u.indirect != nil {
			if stored, ok := u.indirect.PredictTarget(pc); ok {
				return ReconstructTarget(pc, u.mapper.DecryptTarget(stored)), true, false, true
			}
		}
		if stored, ok := u.btb.Lookup(set, u.mapper.BTBTagBHB(u.hist.BHB), offs, pc); ok {
			return ReconstructTarget(pc, u.mapper.DecryptTarget(stored)), true, false, true
		}
	}
	if stored, ok := u.btb.Lookup(set, tag, offs, pc); ok {
		return ReconstructTarget(pc, u.mapper.DecryptTarget(stored)), true, false, false
	}
	return 0, false, false, false
}

// Predict produces the BPU's prediction for a branch at pc.
func (u *Unit) Predict(pc uint64, kind trace.Kind) Prediction {
	var p Prediction
	switch kind {
	case trace.KindCond:
		p.Taken = u.dir.Predict(pc)
		p.Target, p.TargetValid, p.FromRSB, p.FromMode2 = u.lookupTarget(pc, kind)
	default:
		p.Taken = true
		p.Target, p.TargetValid, p.FromRSB, p.FromMode2 = u.lookupTarget(pc, kind)
	}
	return p
}

// Update resolves a branch: trains every structure with the actual
// outcome and reports the resulting events. pred must be the Prediction
// returned for this record.
func (u *Unit) Update(rec trace.Record, pred Prediction) Events {
	var ev Events
	set, tag, offs := u.mapper.BTBIndex(rec.PC)

	if rec.Kind == trace.KindCond {
		ev.IsCond = true
		ev.DirCorrect = pred.Taken == rec.Taken
		u.dir.Update(rec.PC, rec.Taken)
	}

	if rec.Taken {
		ev.TargetKnown = true
		ev.TargetCorrect = pred.TargetValid && pred.Target == rec.Target
		enc := u.mapper.EncryptTarget(uint32(rec.Target))
		switch {
		case rec.Kind == trace.KindReturn:
			// Returns train the BTB only on the underflow path.
			if !pred.FromRSB && !ev.TargetCorrect {
				ev.BTBEviction = u.btb.Insert(set, u.mapper.BTBTagBHB(u.hist.BHB), offs, rec.PC, enc)
			}
		case rec.Kind.IsIndirect():
			if u.indirect != nil {
				u.indirect.UpdateTarget(rec.PC, enc)
			}
			if !ev.TargetCorrect {
				// The mode-one entry tracks the last target. If it existed
				// but pointed elsewhere, the branch is polymorphic: also
				// allocate a context-tagged mode-two entry so the target
				// can be predicted from the BHB next time this context
				// recurs.
				stored, had := u.btb.Lookup(set, tag, offs, rec.PC)
				ev.BTBEviction = u.btb.Insert(set, tag, offs, rec.PC, enc)
				if had && stored != enc {
					if u.btb.Insert(set, u.mapper.BTBTagBHB(u.hist.BHB), offs, rec.PC, enc) {
						ev.BTBEviction = true
					}
				}
			}
		default:
			if !ev.TargetCorrect {
				ev.BTBEviction = u.btb.Insert(set, tag, offs, rec.PC, enc)
			}
		}
	}

	// Calls push the return address. The BHB advances only on taken
	// direct branches and calls (§II-A: "when a direct branch (or a call)
	// is executed, its virtual address is folded ... into BHB"), so
	// returns and indirect jumps do not disturb the context their own
	// mode-two entries were tagged with.
	if rec.Kind.IsCall() {
		u.rsb.Push(u.mapper.EncryptTarget(uint32(rec.FallThrough())))
	}
	if rec.Taken && rec.Kind != trace.KindReturn && rec.Kind != trace.KindIndirectJump {
		u.hist.PushBranch(rec.PC, rec.Target)
	}
	// The dedicated indirect predictor keeps its own path history,
	// advanced by every retired branch: indirect targets correlate with
	// both the path and the outcome sequence leading to them.
	if u.indirect != nil {
		u.indirect.OnBranch(rec.PC, rec.Target, rec.Taken)
	}

	ev.BTBMiss = rec.Taken && !pred.TargetValid
	dirWrong := ev.IsCond && !ev.DirCorrect
	targetWrong := ev.TargetKnown && !ev.TargetCorrect
	// A not-taken prediction for an actually not-taken conditional needs
	// no target; a taken (or unconditional) branch needs a correct target.
	ev.Mispredict = dirWrong || (targetWrong && (rec.Kind != trace.KindCond || rec.Taken))
	return ev
}
