package bpu

import (
	"testing"
	"testing/quick"

	"stbpu/internal/rng"
	"stbpu/internal/trace"
)

func TestHistoryGHR(t *testing.T) {
	var h History
	h.PushOutcome(true)
	h.PushOutcome(false)
	h.PushOutcome(true)
	if h.GHR != 0b101 {
		t.Errorf("GHR = %b, want 101", h.GHR)
	}
	for i := 0; i < 100; i++ {
		h.PushOutcome(true)
	}
	if h.GHR >= 1<<GHRBits {
		t.Errorf("GHR exceeded width: %#x", h.GHR)
	}
}

func TestHistoryBHB(t *testing.T) {
	var h History
	h.PushBranch(0x401000, 0x402000)
	if h.BHB == 0 {
		t.Error("BHB did not change")
	}
	if h.BHB >= 1<<BHBBits {
		t.Errorf("BHB exceeded width: %#x", h.BHB)
	}
	prev := h.BHB
	h.PushBranch(0x401000, 0x402000)
	if h.BHB == prev {
		t.Error("BHB must mix with prior state")
	}
	h.Reset()
	if h.GHR != 0 || h.BHB != 0 {
		t.Error("Reset did not clear history")
	}
}

func TestBHBDistinguishesPaths(t *testing.T) {
	// Different branch sequences must yield different BHB values — the
	// property that lets mode-two store context-dependent targets.
	var a, b History
	a.PushBranch(0x1000, 0x2000)
	a.PushBranch(0x3000, 0x4000)
	b.PushBranch(0x3000, 0x4000)
	b.PushBranch(0x1000, 0x2000)
	if a.BHB == b.BHB {
		t.Error("BHB ignores branch order")
	}
}

func TestLegacyMapperTruncation(t *testing.T) {
	// The baseline only uses the low 32 address bits: two branches 2^32
	// apart collide completely — the aliasing Table I attacks exploit.
	m := LegacyMapper{}
	pc := uint64(0x00007f0012345678)
	alias := pc + (1 << 32)
	s1, t1, o1 := m.BTBIndex(pc)
	s2, t2, o2 := m.BTBIndex(alias)
	if s1 != s2 || t1 != t2 || o1 != o2 {
		t.Error("legacy mapper should collide on 2^32 aliases")
	}
	if i1, i2 := m.PHT1(pc), m.PHT1(alias); i1 != i2 {
		t.Errorf("PHT1 should collide: %d vs %d", i1, i2)
	}
}

func TestLegacyMapperRanges(t *testing.T) {
	m := LegacyMapper{}
	r := rng.New(5)
	for i := 0; i < 1000; i++ {
		pc := r.Uint64() & trace.VAMask
		set, tag, offs := m.BTBIndex(pc)
		if set >= BTBSets || tag >= 1<<BTBTagBits || offs >= 1<<BTBOffsetBits {
			t.Fatalf("BTBIndex out of range: %d %d %d", set, tag, offs)
		}
		if m.PHT1(pc) >= PHTSize || m.PHT2(pc, r.Uint64()) >= PHTSize {
			t.Fatal("PHT index out of range")
		}
		if m.BTBTagBHB(r.Uint64()) >= 1<<BTBTagBits {
			t.Fatal("BHB tag out of range")
		}
	}
}

func TestReconstructTarget(t *testing.T) {
	pc := uint64(0x00007f0012345678)
	target := uint64(0x00007f00aabbccdd)
	if got := ReconstructTarget(pc, uint32(target)); got != target {
		t.Errorf("ReconstructTarget = %#x, want %#x", got, target)
	}
	// Targets in a different 4GiB region reconstruct incorrectly — a real
	// limitation of the 32-bit entry the paper models (function 5).
	far := uint64(0x00007f1200000000)
	if got := ReconstructTarget(pc, uint32(far)); got == far {
		t.Error("cross-4GiB target should not reconstruct")
	}
}

func TestBTBInsertLookup(t *testing.T) {
	b := NewBTB(BaselineBTBConfig())
	if b.Insert(5, 10, 3, 0x1000, 0xdeadbeef) {
		t.Error("insert into empty set reported eviction")
	}
	got, hit := b.Lookup(5, 10, 3, 0x1000)
	if !hit || got != 0xdeadbeef {
		t.Fatalf("Lookup = %#x,%v", got, hit)
	}
	// Different offset must miss.
	if _, hit := b.Lookup(5, 10, 4, 0x1000); hit {
		t.Error("offset mismatch should miss")
	}
	// Overwrite in place.
	if b.Insert(5, 10, 3, 0x1000, 0xcafe) {
		t.Error("overwrite reported eviction")
	}
	if got, _ := b.Lookup(5, 10, 3, 0x1000); got != 0xcafe {
		t.Errorf("overwrite lost: %#x", got)
	}
}

func TestBTBEvictionLRU(t *testing.T) {
	b := NewBTB(BTBConfig{Sets: 4, Ways: 2})
	b.Insert(1, 1, 0, 0, 100)
	b.Insert(1, 2, 0, 0, 200)
	// Touch tag 1 so tag 2 is LRU.
	b.Lookup(1, 1, 0, 0)
	if !b.Insert(1, 3, 0, 0, 300) {
		t.Error("full-set insert should evict")
	}
	if b.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", b.Evictions)
	}
	if _, hit := b.Lookup(1, 2, 0, 0); hit {
		t.Error("LRU entry (tag 2) should have been evicted")
	}
	if _, hit := b.Lookup(1, 1, 0, 0); !hit {
		t.Error("MRU entry (tag 1) should survive")
	}
	b.ResetCounters()
	if b.Evictions != 0 {
		t.Error("ResetCounters failed")
	}
}

func TestBTBFullTags(t *testing.T) {
	b := NewBTB(ConservativeBTBConfig())
	pc := uint64(0x00007f0012345678)
	alias := pc + (1 << 32)
	// Same compressed fields, different full PC.
	b.Insert(9, 7, 1, pc, 111)
	if _, hit := b.Lookup(9, 7, 1, alias); hit {
		t.Error("full-tag BTB must reject aliased PC")
	}
	if _, hit := b.Lookup(9, 7, 1, pc); !hit {
		t.Error("full-tag BTB must hit exact PC")
	}
}

func TestBTBFlushAndOccupancy(t *testing.T) {
	b := NewBTB(BTBConfig{Sets: 8, Ways: 2})
	for i := uint32(0); i < 8; i++ {
		b.Insert(i, i, 0, 0, i)
	}
	if got := b.Occupancy(); got != 8 {
		t.Errorf("Occupancy = %d, want 8", got)
	}
	b.Flush()
	if got := b.Occupancy(); got != 0 {
		t.Errorf("Occupancy after flush = %d", got)
	}
}

func TestBTBSetWrap(t *testing.T) {
	b := NewBTB(BTBConfig{Sets: 4, Ways: 1})
	b.Insert(7, 1, 0, 0, 42) // set 7 wraps to 3
	if got, hit := b.Lookup(3, 1, 0, 0); !hit || got != 42 {
		t.Error("set index should wrap modulo set count")
	}
}

func TestBTBPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBTB(BTBConfig{Sets: 0, Ways: 1})
}

func TestPHTSaturation(t *testing.T) {
	p := NewPHT(16)
	if p.Predict(3) {
		t.Error("initial state should predict not-taken")
	}
	for i := 0; i < 10; i++ {
		p.Update(3, true)
	}
	if !p.Predict(3) || p.Counter(3) != 3 {
		t.Error("counter did not saturate taken")
	}
	p.Update(3, false)
	if !p.Predict(3) {
		t.Error("one not-taken should not flip a saturated counter")
	}
	p.Update(3, false)
	if p.Predict(3) {
		t.Error("two not-taken should flip to not-taken")
	}
	for i := 0; i < 10; i++ {
		p.Update(3, false)
	}
	if p.Counter(3) != 0 {
		t.Error("counter did not saturate not-taken")
	}
	p.Flush()
	if p.Counter(3) != 1 {
		t.Error("flush should reset to weakly not-taken")
	}
}

func TestPHTIndexWraps(t *testing.T) {
	p := NewPHT(8)
	p.Update(9, true)
	p.Update(9, true)
	if !p.Predict(1) {
		t.Error("index should wrap modulo size")
	}
}

func TestRSBPushPop(t *testing.T) {
	r := NewRSB(4)
	r.Push(1)
	r.Push(2)
	if v, ok := r.Peek(); !ok || v != 2 {
		t.Errorf("Peek = %d,%v", v, ok)
	}
	if v, ok := r.Pop(); !ok || v != 2 {
		t.Errorf("Pop = %d,%v", v, ok)
	}
	if v, ok := r.Pop(); !ok || v != 1 {
		t.Errorf("Pop = %d,%v", v, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Error("underflow should report !ok")
	}
	if r.Underflows != 1 {
		t.Errorf("Underflows = %d", r.Underflows)
	}
}

func TestRSBOverflowWraps(t *testing.T) {
	r := NewRSB(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if v, _ := r.Pop(); v != 3 {
		t.Errorf("Pop = %d, want 3", v)
	}
	if v, _ := r.Pop(); v != 2 {
		t.Errorf("Pop = %d, want 2", v)
	}
	if _, ok := r.Pop(); ok {
		t.Error("oldest entry should have been lost to overflow")
	}
}

func TestRSBLIFOProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		rsb := NewRSB(16)
		var model []uint32
		n := int(nRaw)%40 + 1
		for i := 0; i < n; i++ {
			if r.Bool(0.6) || len(model) == 0 {
				v := r.Uint32()
				rsb.Push(v)
				model = append(model, v)
				if len(model) > 16 {
					model = model[1:] // hardware loses the oldest
				}
			} else {
				v, ok := rsb.Pop()
				want := model[len(model)-1]
				model = model[:len(model)-1]
				if !ok || v != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSKLCondLearnsBias(t *testing.T) {
	s := NewSKLCond(LegacyMapper{})
	pc := uint64(0x401000)
	correct := 0
	for i := 0; i < 200; i++ {
		if s.Predict(pc) == true {
			correct++
		}
		s.Update(pc, true)
	}
	if correct < 190 {
		t.Errorf("biased branch: %d/200 correct", correct)
	}
}

func TestSKLCondLearnsPattern(t *testing.T) {
	// Alternating pattern: bimodal alone oscillates (~50%); the gshare
	// mode with chooser must learn it nearly perfectly.
	s := NewSKLCond(LegacyMapper{})
	pc := uint64(0x402000)
	correct := 0
	const n = 2000
	for i := 0; i < n; i++ {
		taken := i%2 == 0
		if s.Predict(pc) == taken {
			correct++
		}
		s.Update(pc, taken)
	}
	if float64(correct)/n < 0.9 {
		t.Errorf("alternating pattern: %d/%d correct, want >= 90%%", correct, n)
	}
}

func TestSKLCondFlush(t *testing.T) {
	s := NewSKLCond(LegacyMapper{})
	pc := uint64(0x403000)
	for i := 0; i < 100; i++ {
		s.Predict(pc)
		s.Update(pc, true)
	}
	s.Flush()
	if s.Predict(pc) {
		t.Error("flushed predictor should fall back to default not-taken")
	}
}

// runTrace drives a Unit over records and returns (mispredicts, total).
func runTrace(u *Unit, recs []trace.Record) (misp, total int) {
	for _, rec := range recs {
		pred := u.Predict(rec.PC, rec.Kind)
		ev := u.Update(rec, pred)
		if ev.Mispredict {
			misp++
		}
		total++
	}
	return misp, total
}

func TestUnitDirectJumpLearned(t *testing.T) {
	u := NewUnit(UnitConfig{})
	rec := trace.Record{PC: 0x401000, Target: 0x401800, Kind: trace.KindDirectJump, Taken: true}
	// First encounter misses BTB; afterwards the target is cached.
	pred := u.Predict(rec.PC, rec.Kind)
	if pred.TargetValid {
		t.Error("cold BTB should miss")
	}
	u.Update(rec, pred)
	pred = u.Predict(rec.PC, rec.Kind)
	if !pred.TargetValid || pred.Target != rec.Target {
		t.Errorf("warm BTB prediction = %+v", pred)
	}
}

func TestUnitReturnViaRSB(t *testing.T) {
	u := NewUnit(UnitConfig{})
	call := trace.Record{PC: 0x401000, Target: 0x405000, Kind: trace.KindDirectCall, Taken: true}
	u.Update(call, u.Predict(call.PC, call.Kind))
	ret := trace.Record{PC: 0x40503c, Target: call.FallThrough(), Kind: trace.KindReturn, Taken: true}
	pred := u.Predict(ret.PC, ret.Kind)
	if !pred.FromRSB || !pred.TargetValid || pred.Target != ret.Target {
		t.Errorf("return prediction = %+v, want RSB hit to %#x", pred, ret.Target)
	}
}

func TestUnitRSBUnderflowFallsBack(t *testing.T) {
	u := NewUnit(UnitConfig{})
	ret := trace.Record{PC: 0x40503c, Target: 0x401004, Kind: trace.KindReturn, Taken: true}
	pred := u.Predict(ret.PC, ret.Kind)
	if pred.FromRSB {
		t.Error("empty RSB cannot serve a return")
	}
	u.Update(ret, pred) // trains mode-two BTB
	if u.RSB().Underflows == 0 {
		t.Error("underflow not counted")
	}
	pred = u.Predict(ret.PC, ret.Kind)
	if !pred.TargetValid || !pred.FromMode2 {
		t.Errorf("underflow fallback should hit mode-two BTB: %+v", pred)
	}
}

func TestUnitIndirectContextTargets(t *testing.T) {
	// An indirect branch alternating targets based on preceding branch
	// context: mode-two (BHB-tagged) entries must learn both targets.
	u := NewUnit(UnitConfig{})
	lead1 := trace.Record{PC: 0x401000, Target: 0x401100, Kind: trace.KindDirectJump, Taken: true}
	lead2 := trace.Record{PC: 0x402000, Target: 0x402100, Kind: trace.KindDirectJump, Taken: true}
	ind := func(target uint64) trace.Record {
		return trace.Record{PC: 0x403000, Target: target, Kind: trace.KindIndirectJump, Taken: true}
	}
	correct := 0
	const rounds = 200
	for i := 0; i < rounds; i++ {
		var lead trace.Record
		var target uint64
		if i%2 == 0 {
			lead, target = lead1, 0x404000
		} else {
			lead, target = lead2, 0x405000
		}
		u.Update(lead, u.Predict(lead.PC, lead.Kind))
		rec := ind(target)
		pred := u.Predict(rec.PC, rec.Kind)
		if pred.TargetValid && pred.Target == target {
			correct++
		}
		u.Update(rec, pred)
	}
	if correct < rounds*3/4 {
		t.Errorf("context-dependent indirect: %d/%d correct", correct, rounds)
	}
}

func TestUnitConditionalAccuracy(t *testing.T) {
	u := NewUnit(UnitConfig{})
	recs := make([]trace.Record, 0, 4000)
	for i := 0; i < 2000; i++ {
		taken := true // strongly biased branch
		rec := trace.Record{PC: 0x401000, Kind: trace.KindCond, Taken: taken}
		if taken {
			rec.Target = 0x401040
		} else {
			rec.Target = rec.FallThrough()
		}
		recs = append(recs, rec)
	}
	misp, total := runTrace(u, recs)
	if rate := float64(misp) / float64(total); rate > 0.02 {
		t.Errorf("biased conditional mispredict rate %.3f", rate)
	}
}

func TestUnitFlush(t *testing.T) {
	u := NewUnit(UnitConfig{})
	rec := trace.Record{PC: 0x401000, Target: 0x401800, Kind: trace.KindDirectJump, Taken: true}
	u.Update(rec, u.Predict(rec.PC, rec.Kind))
	u.Flush()
	if pred := u.Predict(rec.PC, rec.Kind); pred.TargetValid {
		t.Error("flush left BTB state behind")
	}
	if u.HistoryRef().BHB != 0 {
		t.Error("flush left history behind")
	}
}

func TestUnitNotTakenCondIsNotMispredict(t *testing.T) {
	u := NewUnit(UnitConfig{})
	rec := trace.Record{PC: 0x401000, Kind: trace.KindCond, Taken: false}
	rec.Target = rec.FallThrough()
	// Predictor starts weakly not-taken: direction correct, no target
	// needed, so the branch must count as correctly predicted.
	pred := u.Predict(rec.PC, rec.Kind)
	ev := u.Update(rec, pred)
	if ev.Mispredict {
		t.Errorf("not-taken conditional wrongly counted as mispredict: %+v", ev)
	}
}

func TestUnitEventAccounting(t *testing.T) {
	u := NewUnit(UnitConfig{})
	rec := trace.Record{PC: 0x401000, Target: 0x401800, Kind: trace.KindDirectJump, Taken: true}
	pred := u.Predict(rec.PC, rec.Kind)
	ev := u.Update(rec, pred)
	if !ev.Mispredict || !ev.BTBMiss || ev.TargetCorrect {
		t.Errorf("cold unconditional events = %+v", ev)
	}
	pred = u.Predict(rec.PC, rec.Kind)
	ev = u.Update(rec, pred)
	if ev.Mispredict || !ev.TargetCorrect {
		t.Errorf("warm unconditional events = %+v", ev)
	}
}

func TestUnitOnSyntheticWorkload(t *testing.T) {
	p, err := trace.Preset("519.lbm")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Generate(p.WithRecords(60_000))
	if err != nil {
		t.Fatal(err)
	}
	u := NewUnit(UnitConfig{})
	misp, total := runTrace(u, tr.Records)
	acc := 1 - float64(misp)/float64(total)
	if acc < 0.85 {
		t.Errorf("baseline accuracy on lbm = %.3f, want >= 0.85", acc)
	}
}

func BenchmarkUnitPredictUpdate(b *testing.B) {
	p, err := trace.Preset("505.mcf")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := trace.Generate(p.WithRecords(100_000))
	if err != nil {
		b.Fatal(err)
	}
	u := NewUnit(UnitConfig{})
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec := tr.Records[i%len(tr.Records)]
		u.Update(rec, u.Predict(rec.PC, rec.Kind))
	}
}
