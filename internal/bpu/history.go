// Package bpu implements the baseline branch prediction unit of §II-A: the
// Skylake-style model derived from the reverse-engineering literature that
// STBPU is built on. It provides the shared structures (BTB, PHT, RSB, GHR,
// BHB), the hybrid conditional predictor ("SKLCond"), and a composed Unit
// that predicts and updates from trace records.
//
// All structures take their index/tag computations from a Mapper, so the
// same hardware model serves both the legacy truncated-address baseline
// (LegacyMapper) and the STBPU keyed remapping (internal/core).
package bpu

// GHRBits is the global history register width used by the 2-level PHT
// mode (the paper's baseline hashes an 18-bit GHR; STBPU consumes 16 of
// them per Table II).
const GHRBits = 18

// BHBBits is the branch history buffer width (58 bits, per the Spectre
// reverse engineering the paper builds on).
const BHBBits = 58

// bhbMask keeps the canonical BHB width.
const bhbMask = (uint64(1) << BHBBits) - 1

// History holds the BPU shift registers: the taken/not-taken global
// history (GHR) used for conditional prediction and the branch history
// buffer (BHB) accumulating branch context for indirect prediction.
type History struct {
	// GHR is the global taken/not-taken shift register (low GHRBits used).
	GHR uint64
	// BHB is the 58-bit branch context register.
	BHB uint64
}

// PushOutcome shifts a conditional outcome into the GHR.
func (h *History) PushOutcome(taken bool) {
	h.GHR <<= 1
	if taken {
		h.GHR |= 1
	}
	h.GHR &= (1 << GHRBits) - 1
}

// PushBranch folds a taken branch's source and target addresses into the
// BHB (§II-A: "when a direct branch is executed, its virtual address is
// folded using XOR and mixed with the current state of BHB").
func (h *History) PushBranch(pc, target uint64) {
	fold := (pc ^ (pc >> 7) ^ (target << 3) ^ (target >> 13)) & 0x3f
	h.BHB = ((h.BHB << 2) ^ fold) & bhbMask
}

// Reset clears both registers (used by flushing protections).
func (h *History) Reset() { h.GHR, h.BHB = 0, 0 }
