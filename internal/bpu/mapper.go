package bpu

// Mapper computes the index/tag/offset fields used to address BPU
// structures, and the (de)obfuscation of stored targets. The baseline
// hardware uses fast deterministic compression of truncated addresses
// (LegacyMapper); STBPU substitutes keyed remapping functions and XOR
// target encryption (internal/core.STMapper).
type Mapper interface {
	// BTBIndex computes the mode-one BTB set/tag/offset from the branch
	// virtual address.
	BTBIndex(pc uint64) (set, tag, offs uint32)
	// BTBTagBHB computes the mode-two tag from the BHB (indirect
	// branches and RSB-underflow returns).
	BTBTagBHB(bhb uint64) uint32
	// PHT1 computes the 1-level PHT index from the address alone.
	PHT1(pc uint64) uint32
	// PHT2 computes the 2-level PHT index from address and GHR.
	PHT2(pc uint64, ghr uint64) uint32
	// EncryptTarget obfuscates a 32-bit target before it is stored in
	// BTB/RSB; DecryptTarget reverses it at prediction time (the paper's
	// function 5 applies φ before widening to 48 bits).
	EncryptTarget(t uint32) uint32
	DecryptTarget(t uint32) uint32
}

// Geometry of the baseline structures (Intel Skylake per §II-A).
const (
	// BTBSets × BTBWays = 4096 entries.
	BTBSets = 512
	BTBWays = 8
	// BTBTagBits/BTBOffsetBits are the compressed entry fields.
	BTBTagBits    = 8
	BTBOffsetBits = 5
	// PHTSize is the 16k-entry pattern history table.
	PHTSize = 1 << 14
	// RSBDepth is the 16-entry hardware return stack.
	RSBDepth = 16
)

// LegacyMapper is the unprotected baseline: deterministic folds of the low
// 30-32 address bits, exactly the property (shared structures + truncated
// addresses) that enables the collision attacks of Table I.
type LegacyMapper struct{}

var _ Mapper = LegacyMapper{}

// BTBIndex implements Mapper. Only bits [4:32) of the address participate,
// so addresses equal modulo 2^32 collide (same-address-space attacks), and
// distinct higher-half addresses with equal low bits collide cross-process.
func (LegacyMapper) BTBIndex(pc uint64) (set, tag, offs uint32) {
	set = uint32(pc>>5) & (BTBSets - 1)
	tag = uint32((pc>>14)^(pc>>22)) & (1<<BTBTagBits - 1)
	offs = uint32(pc) & (1<<BTBOffsetBits - 1)
	return set, tag, offs
}

// BTBTagBHB implements Mapper: the 58-bit BHB folds to the 8-bit mode-two
// tag by XOR of byte-wide chunks.
func (LegacyMapper) BTBTagBHB(bhb uint64) uint32 {
	t := bhb ^ (bhb >> 8) ^ (bhb >> 16) ^ (bhb >> 24) ^ (bhb >> 32) ^ (bhb >> 40) ^ (bhb >> 48) ^ (bhb >> 56)
	return uint32(t) & (1<<BTBTagBits - 1)
}

// PHT1 implements Mapper: simple 1-level addressing from the branch
// address.
func (LegacyMapper) PHT1(pc uint64) uint32 {
	return uint32(pc>>2) & (PHTSize - 1)
}

// PHT2 implements Mapper: gshare-style hash of the address with the GHR.
func (LegacyMapper) PHT2(pc uint64, ghr uint64) uint32 {
	g := (ghr ^ (ghr >> 14)) & (PHTSize - 1)
	return (uint32(pc>>2) ^ uint32(g)) & (PHTSize - 1)
}

// EncryptTarget implements Mapper: the baseline stores raw targets.
func (LegacyMapper) EncryptTarget(t uint32) uint32 { return t }

// DecryptTarget implements Mapper.
func (LegacyMapper) DecryptTarget(t uint32) uint32 { return t }

// ReconstructTarget widens a stored 32-bit target to a 48-bit virtual
// address using the upper 16 bits of the branch's own address (the paper's
// function 5).
func ReconstructTarget(pc uint64, stored uint32) uint64 {
	return (pc & 0xffff_0000_0000) | uint64(stored)
}
