package bpu

// Snapshot support for the warm-state checkpoint tier (internal/snapstore,
// sim.Snapshotter): every Unit component can be deep-cloned for forking
// and round-tripped through the deterministic snap codec. Lookup stash
// fields (SKLCond's last* indices) are dead between records — Update
// always directly follows its Predict — so clones and decoded snapshots
// reset them to zero, giving every capture of the same logical state an
// identical canonical encoding.

import "stbpu/internal/snap"

// Clone returns a deep copy of the BTB, including LRU clock and the
// eviction counter (STBPU's threshold monitoring must continue
// seamlessly from a fork).
func (b *BTB) Clone() *BTB {
	nb := &BTB{cfg: b.cfg, clock: b.clock, Evictions: b.Evictions}
	nb.entries = append([]btbEntry(nil), b.entries...)
	return nb
}

// EncodeState appends the BTB's mutable state to w.
func (b *BTB) EncodeState(w *snap.Writer) {
	w.Len(len(b.entries))
	for i := range b.entries {
		e := &b.entries[i]
		w.Bool(e.valid)
		w.U32(e.tag)
		w.U32(e.offs)
		w.U32(e.target)
		w.U64(e.fullPC)
		w.U32(e.lru)
	}
	w.U32(b.clock)
	w.U64(b.Evictions)
}

// DecodeState restores state encoded by EncodeState; the geometry must
// match the live table.
func (b *BTB) DecodeState(r *snap.Reader) {
	r.LenExact(len(b.entries))
	for i := range b.entries {
		e := &b.entries[i]
		e.valid = r.Bool()
		e.tag = r.U32()
		e.offs = r.U32()
		e.target = r.U32()
		e.fullPC = r.U64()
		e.lru = r.U32()
	}
	b.clock = r.U32()
	b.Evictions = r.U64()
}

// Clone returns a deep copy of the return stack.
func (r *RSB) Clone() *RSB {
	nr := &RSB{top: r.top, depth: r.depth, Underflows: r.Underflows}
	nr.entries = append([]uint32(nil), r.entries...)
	return nr
}

// EncodeState appends the RSB's mutable state to w.
func (r *RSB) EncodeState(w *snap.Writer) {
	w.U32s(r.entries)
	w.Int(r.top)
	w.Int(r.depth)
	w.U64(r.Underflows)
}

// DecodeState restores state encoded by EncodeState.
func (r *RSB) DecodeState(sr *snap.Reader) {
	sr.U32sInto(r.entries)
	r.top = sr.Int()
	r.depth = sr.Int()
	if sr.Err() == nil && (r.top < 0 || r.top >= len(r.entries) || r.depth < 0 || r.depth > len(r.entries)) {
		r.top, r.depth = 0, 0
	}
	r.Underflows = sr.U64()
}

// EncodeState appends the history registers to w.
func (h *History) EncodeState(w *snap.Writer) {
	w.U64(h.GHR)
	w.U64(h.BHB)
}

// DecodeState restores the history registers.
func (h *History) DecodeState(r *snap.Reader) {
	h.GHR = r.U64()
	h.BHB = r.U64()
}

// encodeTo appends the counter table to w.
func (p *PHT) encodeTo(w *snap.Writer) { w.U8s(p.counters) }

// decodeFrom restores the counter table; sizes must match.
func (p *PHT) decodeFrom(r *snap.Reader) { r.U8sInto(p.counters) }

// CloneWith returns a deep copy of the predictor addressed through m
// (forks re-point keyed mappers at the fork's own key state). The
// lookup stash is reset: it is dead between records.
func (s *SKLCond) CloneWith(m Mapper) *SKLCond {
	ns := NewSKLCond(m)
	copy(ns.pht.counters, s.pht.counters)
	copy(ns.chooser.counters, s.chooser.counters)
	ns.hist = s.hist
	return ns
}

// EncodeState appends the predictor's mutable state to w.
func (s *SKLCond) EncodeState(w *snap.Writer) {
	s.pht.encodeTo(w)
	s.chooser.encodeTo(w)
	s.hist.EncodeState(w)
}

// DecodeState restores state encoded by EncodeState, resetting the
// lookup stash.
func (s *SKLCond) DecodeState(r *snap.Reader) {
	s.pht.decodeFrom(r)
	s.chooser.decodeFrom(r)
	s.hist.DecodeState(r)
	s.lastIdx1, s.lastIdx2, s.lastChoice = 0, 0, 0
}

// Clone returns a deep copy of the Unit built from already-cloned
// components: the caller supplies the fork's mapper, direction
// predictor, and indirect predictor (nil when the unit has none), since
// their cloning is owned by whoever wired the originals together.
func (u *Unit) Clone(m Mapper, dir DirectionPredictor, indirect IndirectPredictor) *Unit {
	return &Unit{
		mapper:   m,
		dir:      dir,
		btb:      u.btb.Clone(),
		rsb:      u.rsb.Clone(),
		indirect: indirect,
		hist:     u.hist,
	}
}

// EncodeState appends the Unit's own mutable state (BTB, RSB, history)
// to w. The direction and indirect predictors encode themselves — they
// are owned by the model that wired them in.
func (u *Unit) EncodeState(w *snap.Writer) {
	u.btb.EncodeState(w)
	u.rsb.EncodeState(w)
	u.hist.EncodeState(w)
}

// DecodeState restores state encoded by EncodeState.
func (u *Unit) DecodeState(r *snap.Reader) {
	u.btb.DecodeState(r)
	u.rsb.DecodeState(r)
	u.hist.DecodeState(r)
}
