package core

import (
	"testing"

	"stbpu/internal/bpu"
	"stbpu/internal/token"
	"stbpu/internal/trace"
)

// runModel drives a model over a trace, returning 1 - mispredict rate.
func runModel(m *Model, recs []trace.Record) float64 {
	misp := 0
	for _, rec := range recs {
		if _, ev := m.Step(rec); ev.Mispredict {
			misp++
		}
	}
	return 1 - float64(misp)/float64(len(recs))
}

// runUnit drives a bare unit the same way.
func runUnit(u *bpu.Unit, recs []trace.Record) float64 {
	misp := 0
	for _, rec := range recs {
		pred := u.Predict(rec.PC, rec.Kind)
		if ev := u.Update(rec, pred); ev.Mispredict {
			misp++
		}
	}
	return 1 - float64(misp)/float64(len(recs))
}

func genTrace(t *testing.T, name string, n int) *trace.Trace {
	t.Helper()
	p, err := trace.Preset(name)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Generate(p.WithRecords(n))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestDirKindString(t *testing.T) {
	want := map[DirKind]string{
		DirSKLCond:    "SKLCond",
		DirTAGE8:      "TAGE_SC_L_8KB",
		DirTAGE64:     "TAGE_SC_L_64KB",
		DirPerceptron: "PerceptronBP",
	}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), w)
		}
	}
	m := NewModel(ModelConfig{Dir: DirTAGE64})
	if m.Name() != "ST_TAGE_SC_L_64KB" {
		t.Errorf("model name %q", m.Name())
	}
}

func TestSTAccuracyNearUnprotected(t *testing.T) {
	// The paper's core performance claim: ST models lose ~1-2% accuracy
	// versus their unprotected twins (Figs. 3-4).
	tr := genTrace(t, "519.lbm", 80_000)
	for _, dir := range []DirKind{DirSKLCond, DirTAGE8, DirPerceptron} {
		st := NewModel(ModelConfig{Dir: dir})
		base := NewUnprotectedUnit(dir)
		stAcc := runModel(st, tr.Records)
		baseAcc := runUnit(base, tr.Records)
		if stAcc < baseAcc-0.03 {
			t.Errorf("%v: ST accuracy %.3f vs unprotected %.3f (gap > 3pp)", dir, stAcc, baseAcc)
		}
	}
}

func TestTokensIsolateEntities(t *testing.T) {
	// Two entities executing the same code must not share predictor
	// state: identical addresses map to different entries under distinct
	// tokens. We verify via the BTB: train PID 1 on a jump, then the same
	// jump from PID 2 must miss.
	m := NewModel(ModelConfig{Dir: DirSKLCond})
	rec := trace.Record{PC: 0x401000, Target: 0x401800, Kind: trace.KindDirectJump, Taken: true, PID: 1}
	m.Step(rec) // trains entity 1
	pred, _ := m.Step(rec)
	if !pred.TargetValid {
		t.Fatal("entity 1 should hit its own entry")
	}
	rec2 := rec
	rec2.PID = 2
	pred, _ = m.Step(rec2)
	if pred.TargetValid && pred.Target == rec.Target {
		t.Error("entity 2 reused entity 1's BTB entry: tokens do not isolate")
	}
}

func TestSharedTokensAllowReuse(t *testing.T) {
	// With OS-level token sharing (prefork servers), same-program
	// processes share BPU state deliberately.
	m := NewModel(ModelConfig{Dir: DirSKLCond, SharedTokens: true})
	rec := trace.Record{PC: 0x401000, Target: 0x401800, Kind: trace.KindDirectJump, Taken: true, PID: 1, Program: 7}
	m.Step(rec)
	rec2 := rec
	rec2.PID = 2 // same Program
	pred, _ := m.Step(rec2)
	if !pred.TargetValid || pred.Target != rec.Target {
		t.Error("shared-token processes should reuse history")
	}
}

func TestKernelIsSeparateEntity(t *testing.T) {
	m := NewModel(ModelConfig{Dir: DirSKLCond})
	user := trace.Record{PC: 0x401000, Target: 0x401800, Kind: trace.KindDirectJump, Taken: true, PID: 1}
	kern := user
	kern.Kernel = true
	if EntityKey(user, false) == EntityKey(kern, false) {
		t.Fatal("kernel and user share an entity key")
	}
	m.Step(user)
	pred, _ := m.Step(kern)
	if pred.TargetValid && pred.Target == user.Target {
		t.Error("kernel reused user BTB state")
	}
}

func TestRerandomizationOnThreshold(t *testing.T) {
	th := token.Thresholds{Mispredictions: 50, Evictions: 1 << 40}
	m := NewModel(ModelConfig{Dir: DirSKLCond, Thresholds: &th})
	before := func() token.ST {
		// Force token load for entity 1.
		m.Step(trace.Record{PC: 0x1000, Kind: trace.KindCond, Taken: false, Target: 0x1004, PID: 1})
		return m.CurrentToken()
	}()
	// Hard-to-predict stream drives mispredictions past the threshold.
	for i := 0; i < 400; i++ {
		taken := i%2 == 0 && i%3 == 0
		rec := trace.Record{PC: uint64(0x2000 + (i%37)*16), Kind: trace.KindCond, Taken: taken, PID: 1}
		if taken {
			rec.Target = rec.PC + 64
		} else {
			rec.Target = rec.FallThrough()
		}
		m.Step(rec)
	}
	if m.Rerandomizations() == 0 {
		t.Fatal("no re-randomization despite misprediction storm")
	}
	if m.CurrentToken() == before {
		t.Error("token unchanged after re-randomization")
	}
}

func TestRerandomizationInvalidatesOwnHistory(t *testing.T) {
	m := NewModel(ModelConfig{Dir: DirSKLCond})
	rec := trace.Record{PC: 0x401000, Target: 0x401800, Kind: trace.KindDirectJump, Taken: true, PID: 1}
	m.Step(rec)
	if pred, _ := m.Step(rec); !pred.TargetValid {
		t.Fatal("warm entry should hit")
	}
	m.TokenManager().Rerandomize(EntityKey(rec, false))
	// Force a token reload by touching another entity first.
	m.Step(trace.Record{PC: 0x9000, Kind: trace.KindCond, Target: 0x9004, PID: 2})
	pred, _ := m.Step(rec)
	if pred.TargetValid && pred.Target == rec.Target {
		t.Error("re-randomization did not invalidate the entity's history")
	}
}

func TestRerandomizationPreservesOtherEntities(t *testing.T) {
	// The key difference from flushing (§IV-A): re-randomizing one
	// process's ST keeps other processes' history intact.
	m := NewModel(ModelConfig{Dir: DirSKLCond})
	rec1 := trace.Record{PC: 0x401000, Target: 0x401800, Kind: trace.KindDirectJump, Taken: true, PID: 1}
	rec2 := trace.Record{PC: 0x501000, Target: 0x501800, Kind: trace.KindDirectJump, Taken: true, PID: 2}
	m.Step(rec1)
	m.Step(rec2)
	m.TokenManager().Rerandomize(EntityKey(rec1, false))
	pred, _ := m.Step(rec2)
	if !pred.TargetValid || pred.Target != rec2.Target {
		t.Error("re-randomizing entity 1 destroyed entity 2's history")
	}
}

func TestTargetEncryptionDiffersAcrossTokens(t *testing.T) {
	// Directly check the φ-XOR property: the same stored word decrypts
	// differently under different tokens.
	a := &keyState{funcs: nil, phi: 0x1234_5678}
	b := &keyState{funcs: nil, phi: 0x9abc_def0}
	stored := a.EncryptTarget(0x00401800)
	if got := a.DecryptTarget(stored); got != 0x00401800 {
		t.Fatalf("self-decryption failed: %#x", got)
	}
	if got := b.DecryptTarget(stored); got == 0x00401800 {
		t.Error("cross-token decryption should yield garbage")
	}
}

func TestSeparateTageRegisterDefaultsByModel(t *testing.T) {
	tageModel := NewModel(ModelConfig{Dir: DirTAGE64})
	if !tageModel.separateTage {
		t.Error("TAGE model should default to a separate register")
	}
	skl := NewModel(ModelConfig{Dir: DirSKLCond})
	if skl.separateTage {
		t.Error("SKLCond model should not have a TAGE register")
	}
	off := false
	ablated := NewModel(ModelConfig{Dir: DirTAGE64, SeparateTageRegister: &off})
	if ablated.separateTage {
		t.Error("ablation flag ignored")
	}
}

func TestModelDeterminism(t *testing.T) {
	tr := genTrace(t, "505.mcf", 20_000)
	a := runModel(NewModel(ModelConfig{Dir: DirTAGE8, Seed: 5}), tr.Records)
	b := runModel(NewModel(ModelConfig{Dir: DirTAGE8, Seed: 5}), tr.Records)
	if a != b {
		t.Errorf("same seed, different accuracy: %v vs %v", a, b)
	}
}

func TestAggressiveThresholdsDegradeGracefully(t *testing.T) {
	// Fig. 6: extreme r keeps re-randomizing, destroying training, but
	// the model must still run and accuracy should drop, not collapse to
	// zero.
	tr := genTrace(t, "519.lbm", 40_000)
	tiny := token.Thresholds{Mispredictions: 20, Evictions: 20}
	aggressive := runModel(NewModel(ModelConfig{Dir: DirSKLCond, Thresholds: &tiny}), tr.Records)
	relaxed := runModel(NewModel(ModelConfig{Dir: DirSKLCond}), tr.Records)
	if aggressive >= relaxed {
		t.Errorf("aggressive thresholds should cost accuracy: %.3f vs %.3f", aggressive, relaxed)
	}
	if aggressive < 0.5 {
		t.Errorf("aggressive accuracy %.3f suspiciously low", aggressive)
	}
}

func BenchmarkSTModelStep(b *testing.B) {
	p, err := trace.Preset("505.mcf")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := trace.Generate(p.WithRecords(100_000))
	if err != nil {
		b.Fatal(err)
	}
	m := NewModel(ModelConfig{Dir: DirSKLCond})
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Step(tr.Records[i%len(tr.Records)])
	}
}
