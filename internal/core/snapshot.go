package core

// Snapshot support for the warm-state checkpoint tier (sim.Snapshotter):
// a Model can be deep-forked and round-tripped through the deterministic
// snap codec. The fork rebuilds the shared keyState and re-points every
// keyed component (BTB mapper, TAGE/ITTAGE hashers, perceptron index) at
// the new instance, so the fork and the original never alias mutable
// state — token re-randomization in one cannot re-key the other.

import (
	"stbpu/internal/bpu"
	"stbpu/internal/ittage"
	"stbpu/internal/snap"
)

// Fork returns a deep copy of the model with independent state: forked
// token manager (including PRNG stream position), forked predictor
// structures, and a fresh keyState carrying the live ψ/φ.
func (m *Model) Fork() *Model {
	nk := &keyState{funcs: m.key.funcs, psi: m.key.psi, phi: m.key.phi}
	nm := &Model{
		name:         m.name,
		key:          nk,
		mgr:          m.mgr.Clone(),
		dir:          m.dir,
		sharedTokens: m.sharedTokens,
		separateTage: m.separateTage,
		lastTageMisp: m.lastTageMisp,
		curKey:       m.curKey,
		haveKey:      m.haveKey,
	}
	var dir bpu.DirectionPredictor
	switch {
	case m.tagePred != nil:
		nm.tagePred = m.tagePred.CloneWith(nk)
		dir = nm.tagePred
	case m.percPred != nil:
		nm.percPred = m.percPred.CloneWith(nk.PerceptronIndex)
		dir = nm.percPred
	default:
		dir = m.unit.Direction().(*bpu.SKLCond).CloneWith(nk)
	}
	var ind bpu.IndirectPredictor
	if it, ok := m.unit.Indirect().(*ittage.Predictor); ok {
		ind = it.CloneWith(nk)
	}
	nm.unit = m.unit.Clone(nk, dir, ind)
	return nm
}

// EncodeState appends the model's complete mutable state to w: the live
// token (ψ/φ), the BPU structures, the direction and indirect
// predictors, the token manager, and the entity-switch registers.
func (m *Model) EncodeState(w *snap.Writer) {
	w.U32(m.key.psi)
	w.U32(m.key.phi)
	m.unit.EncodeState(w)
	switch {
	case m.tagePred != nil:
		m.tagePred.EncodeState(w)
	case m.percPred != nil:
		m.percPred.EncodeState(w)
	default:
		m.unit.Direction().(*bpu.SKLCond).EncodeState(w)
	}
	it, hasIT := m.unit.Indirect().(*ittage.Predictor)
	w.Bool(hasIT)
	if hasIT {
		it.EncodeState(w)
	}
	m.mgr.EncodeState(w)
	w.U64(m.curKey)
	w.Bool(m.haveKey)
	w.U64(m.lastTageMisp)
}

// DecodeState restores state encoded by EncodeState onto a model built
// from the same ModelConfig. Structural mismatches latch an error on r
// and leave the model in an unspecified state the caller must discard.
func (m *Model) DecodeState(r *snap.Reader) {
	m.key.psi = r.U32()
	m.key.phi = r.U32()
	m.unit.DecodeState(r)
	switch {
	case m.tagePred != nil:
		m.tagePred.DecodeState(r)
	case m.percPred != nil:
		m.percPred.DecodeState(r)
	default:
		m.unit.Direction().(*bpu.SKLCond).DecodeState(r)
	}
	it, hasIT := m.unit.Indirect().(*ittage.Predictor)
	if r.Bool() != hasIT {
		r.Fail("core: indirect-predictor marker does not match model config")
		return
	}
	if hasIT {
		it.DecodeState(r)
	}
	m.mgr.DecodeState(r)
	m.curKey = r.U64()
	m.haveKey = r.Bool()
	m.lastTageMisp = r.U64()
}
