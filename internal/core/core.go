// Package core implements the paper's contribution: the Secret-Token
// Branch Prediction Unit (STBPU, §IV). It wires keyed remapping functions
// (internal/remap) and XOR target encryption into the baseline BPU
// structures (internal/bpu) and the advanced predictors (internal/tage,
// internal/perceptron), and drives secret-token re-randomization from
// misprediction/eviction monitoring (internal/token).
//
// Four protected models mirror the paper's evaluation: ST_SKLCond,
// ST_TAGE_SC_L_8KB, ST_TAGE_SC_L_64KB, and ST_PerceptronBP, each paired
// with an unprotected twin built from the same components.
package core

import (
	"fmt"

	"stbpu/internal/bpu"
	"stbpu/internal/ittage"
	"stbpu/internal/perceptron"
	"stbpu/internal/remap"
	"stbpu/internal/tage"
	"stbpu/internal/token"
	"stbpu/internal/trace"
)

// DirKind selects the conditional direction predictor of a model.
type DirKind int

const (
	// DirSKLCond is the baseline Skylake-style hybrid (§II-A).
	DirSKLCond DirKind = iota
	// DirTAGE8 is TAGE-SC-L 8KB.
	DirTAGE8
	// DirTAGE64 is TAGE-SC-L 64KB.
	DirTAGE64
	// DirPerceptron is PerceptronBP.
	DirPerceptron
)

// String names the predictor as the paper's figures do.
func (d DirKind) String() string {
	switch d {
	case DirSKLCond:
		return "SKLCond"
	case DirTAGE8:
		return "TAGE_SC_L_8KB"
	case DirTAGE64:
		return "TAGE_SC_L_64KB"
	case DirPerceptron:
		return "PerceptronBP"
	default:
		return fmt.Sprintf("DirKind(%d)", int(d))
	}
}

// keyState holds the live ψ/φ of the hardware thread's current entity and
// implements every index interface the structures consume. A single
// pointer is shared by the BTB mapper, the TAGE hasher and the perceptron
// index, so loading a new token re-keys the whole BPU at once — no state
// is flushed, prior entries simply become unreachable under the new
// mapping (§IV-A).
type keyState struct {
	funcs remap.Funcs
	psi   uint32
	phi   uint32
}

var (
	_ bpu.Mapper  = (*keyState)(nil)
	_ tage.Hasher = (*keyState)(nil)
)

// BTBIndex implements bpu.Mapper via R1.
func (k *keyState) BTBIndex(pc uint64) (set, tag, offs uint32) {
	return k.funcs.R1(k.psi, pc)
}

// BTBTagBHB implements bpu.Mapper via R2.
func (k *keyState) BTBTagBHB(bhb uint64) uint32 { return k.funcs.R2(k.psi, bhb) }

// PHT1 implements bpu.Mapper via R3.
func (k *keyState) PHT1(pc uint64) uint32 { return k.funcs.R3(k.psi, pc) }

// PHT2 implements bpu.Mapper via R4.
func (k *keyState) PHT2(pc uint64, ghr uint64) uint32 {
	return k.funcs.R4(k.psi, uint16(ghr), pc)
}

// EncryptTarget implements bpu.Mapper: stored targets are XORed with φ, so
// a cross-token hit decrypts to a random address and stalls malicious
// speculation (§IV-B).
func (k *keyState) EncryptTarget(t uint32) uint32 { return t ^ k.phi }

// DecryptTarget implements bpu.Mapper.
func (k *keyState) DecryptTarget(t uint32) uint32 { return t ^ k.phi }

// BankIndexTag implements tage.Hasher via Rt, folding the bank number into
// the history input so banks are independently keyed.
func (k *keyState) BankIndexTag(pc uint64, fIdx, fTag uint64, bank int, indexBits, tagBits uint) (idx, tag uint32) {
	hist := fIdx ^ fTag<<13 ^ uint64(bank)<<27
	return k.funcs.Rt(k.psi, pc, hist, indexBits, tagBits)
}

// TableIndex implements tage.Hasher via R3 with the fold mixed into the
// address bits.
func (k *keyState) TableIndex(pc uint64, fold uint64, bits uint) uint32 {
	return k.funcs.R3(k.psi, pc^(fold<<3)) & (1<<bits - 1)
}

// PerceptronIndex is the Rp-keyed perceptron row hash.
func (k *keyState) PerceptronIndex(pc uint64) uint32 {
	return k.funcs.Rp(k.psi, pc)
}

// ITIndexTag implements ittage.Hasher via Rt with a bank-separated
// history fold, so an ST-protected ITTAGE keys every bank independently
// (the same construction BankIndexTag uses for TAGE).
func (k *keyState) ITIndexTag(pc uint64, fold uint64, bank int, indexBits, tagBits uint) (idx, tag uint32) {
	return k.funcs.Rt(k.psi, pc, fold^uint64(bank)<<29, indexBits, tagBits)
}

// EntityKey derives the token-table key for a trace record: the kernel is
// one entity; user processes key by PID, or by program when the OS opted
// into selective token sharing (pre-forked servers, §IV-A).
func EntityKey(rec trace.Record, sharedTokens bool) uint64 {
	if rec.Kernel {
		return kernelKey
	}
	if sharedTokens {
		return programKey | uint64(rec.Program)
	}
	return uint64(rec.PID)
}

// kernelKey and programKey are the EntityKey namespaces: the kernel is
// one entity, and shared-token mode keys by program.
const (
	kernelKey  = uint64(1) << 63
	programKey = uint64(1) << 62
)

// ModelConfig assembles an STBPU model.
type ModelConfig struct {
	// Dir picks the direction predictor.
	Dir DirKind
	// Funcs is the remapping backend; nil means the fast Mixer.
	Funcs remap.Funcs
	// Thresholds are the re-randomization budgets; the zero value means
	// token.Derive(token.DefaultR).
	Thresholds *token.Thresholds
	// SharedTokens keys tokens by program instead of PID (OS policy for
	// same-binary process groups).
	SharedTokens bool
	// SeparateTageRegister keeps the dedicated TAGE misprediction
	// register (on by default for TAGE models; the ablation bench turns
	// it off).
	SeparateTageRegister *bool
	// IndirectITTAGE attaches a dedicated ITTAGE indirect-target
	// predictor (keyed by the same token) ahead of the BTB mode-two
	// path.
	IndirectITTAGE bool
	// Seed fixes the token PRNG stream.
	Seed uint64
}

// Model is a complete STBPU: a BPU unit keyed by per-entity secret tokens
// with automatic re-randomization. It is the "Step" interface the
// trace-driven simulator and the CPU model both consume.
type Model struct {
	name string
	unit *bpu.Unit
	key  *keyState
	mgr  *token.Manager
	dir  DirKind

	tagePred *tage.Predictor // non-nil for TAGE models
	percPred *perceptron.Predictor

	sharedTokens bool
	separateTage bool
	lastTageMisp uint64

	curKey  uint64
	haveKey bool
}

// NewModel builds an ST-protected model.
func NewModel(cfg ModelConfig) *Model {
	funcs := cfg.Funcs
	if funcs == nil {
		funcs = remap.NewMixer()
	}
	th := token.Derive(token.DefaultR)
	if cfg.Thresholds != nil {
		th = *cfg.Thresholds
	}
	separate := cfg.Dir == DirTAGE8 || cfg.Dir == DirTAGE64
	if cfg.SeparateTageRegister != nil {
		separate = *cfg.SeparateTageRegister
	}
	if !separate {
		th.TageMispredictions = 0
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x57_0001
	}

	m := &Model{
		name:         "ST_" + cfg.Dir.String(),
		key:          &keyState{funcs: funcs},
		mgr:          token.NewManager(seed, th),
		dir:          cfg.Dir,
		sharedTokens: cfg.SharedTokens,
		separateTage: separate,
	}
	var dir bpu.DirectionPredictor
	switch cfg.Dir {
	case DirTAGE8:
		tcfg := tage.Config8KB()
		tcfg.Hasher = m.key
		m.tagePred = tage.New(tcfg)
		dir = m.tagePred
	case DirTAGE64:
		tcfg := tage.Config64KB()
		tcfg.Hasher = m.key
		m.tagePred = tage.New(tcfg)
		dir = m.tagePred
	case DirPerceptron:
		pcfg := perceptron.DefaultConfig()
		pcfg.Index = m.key.PerceptronIndex
		m.percPred = perceptron.New(pcfg)
		dir = m.percPred
	default:
		dir = bpu.NewSKLCond(m.key)
	}
	ucfg := bpu.UnitConfig{Mapper: m.key, Direction: dir}
	if cfg.IndirectITTAGE {
		icfg := ittage.DefaultConfig()
		icfg.Hasher = m.key
		ind, err := ittage.New(icfg)
		if err != nil {
			panic(err) // DefaultConfig is always valid
		}
		ucfg.Indirect = ind
		m.name += "+ITTAGE"
	}
	m.unit = bpu.NewUnit(ucfg)
	return m
}

// NewUnprotectedUnit builds the unprotected twin of an ST model: same
// structures and predictor, legacy deterministic mappings, no tokens.
func NewUnprotectedUnit(dir DirKind) *bpu.Unit {
	return bpu.NewUnit(bpu.UnitConfig{Direction: unprotectedDir(dir)})
}

// NewUnprotectedUnitITTAGE is the unprotected twin with a legacy-hashed
// ITTAGE attached, for the indirect-prediction extension comparison.
func NewUnprotectedUnitITTAGE(dir DirKind) *bpu.Unit {
	ind, err := ittage.New(ittage.DefaultConfig())
	if err != nil {
		panic(err) // DefaultConfig is always valid
	}
	return bpu.NewUnit(bpu.UnitConfig{Direction: unprotectedDir(dir), Indirect: ind})
}

func unprotectedDir(dir DirKind) bpu.DirectionPredictor {
	switch dir {
	case DirTAGE8:
		return tage.New(tage.Config8KB())
	case DirTAGE64:
		return tage.New(tage.Config64KB())
	case DirPerceptron:
		return perceptron.New(perceptron.DefaultConfig())
	default:
		return nil // NewUnit defaults to SKLCond over the legacy mapper
	}
}

// Name returns the model name ("ST_TAGE_SC_L_64KB", ...).
func (m *Model) Name() string { return m.name }

// Unit exposes the underlying BPU (attack drivers need structure access).
func (m *Model) Unit() *bpu.Unit { return m.unit }

// TokenManager exposes token state for experiments and attacks.
func (m *Model) TokenManager() *token.Manager { return m.mgr }

// CurrentToken returns the live ψ/φ (tests and the security analysis use
// it as the omniscient observer; attackers cannot, per the threat model).
func (m *Model) CurrentToken() token.ST { return token.ST{Psi: m.key.psi, Phi: m.key.phi} }

// loadToken installs an entity's token into the hardware thread register.
func (m *Model) loadToken(key uint64) {
	st := m.mgr.TokenFor(key)
	m.key.psi, m.key.phi = st.Psi, st.Phi
	m.curKey, m.haveKey = key, true
}

// applyST installs a re-randomized token for the current entity.
func (m *Model) applyST(st token.ST) {
	m.key.psi, m.key.phi = st.Psi, st.Phi
}

// Step processes one retired branch: token switch on entity change,
// predict, update, and threshold monitoring. It returns the prediction
// made and the resolution events.
func (m *Model) Step(rec trace.Record) (bpu.Prediction, bpu.Events) {
	key := EntityKey(rec, m.sharedTokens)
	if !m.haveKey || key != m.curKey {
		m.loadToken(key)
	}

	pred := m.unit.Predict(rec.PC, rec.Kind)
	ev := m.unit.Update(rec, pred)

	// Threshold monitoring. TAGE models route tagged-bank mispredictions
	// to their dedicated register (§VII-B2).
	if ev.Mispredict {
		viaTage := false
		if m.tagePred != nil && m.separateTage {
			if tm := m.tagePred.TageMispredicts; tm != m.lastTageMisp {
				m.lastTageMisp = tm
				viaTage = true
			}
		}
		var st token.ST
		var rerand bool
		if viaTage {
			st, rerand = m.mgr.OnTageMisprediction(key)
		} else {
			st, rerand = m.mgr.OnMisprediction(key)
		}
		if rerand {
			m.applyST(st)
		}
	} else if m.tagePred != nil {
		m.lastTageMisp = m.tagePred.TageMispredicts
	}
	if ev.BTBEviction {
		if st, rerand := m.mgr.OnEviction(key); rerand {
			m.applyST(st)
		}
	}
	return pred, ev
}

// StepBatch processes a slice of retired branches, folding resolution
// events into acc in-model — the batched replay path of sim.RunCtx. Each
// record goes through exactly the Step sequence, so batched and per-record
// replay are bit-identical.
func (m *Model) StepBatch(recs []trace.Record, acc *bpu.Counters) {
	for i := range recs {
		_, ev := m.Step(recs[i])
		acc.Note(ev)
	}
}

// StepColumns processes rows [lo,hi) of a columnar trace — the
// struct-of-arrays twin of StepBatch, and the suite's hot replay loop.
// It is Step's body with the record fields loaded from the packed
// arrays: the entity key comes straight from the flag/PID/program
// columns (branchless flag extraction, no 32-byte struct assembly, no
// unused Prediction return), and only the fields Update reads are
// materialized. Every row goes through exactly the Step sequence —
// token switch, predict, update, threshold monitoring — so columnar
// and batched replay are bit-identical (pinned by the sim package's
// columnar-vs-batched test).
func (m *Model) StepColumns(cols *trace.Columns, lo, hi int, acc *bpu.Counters) {
	pcs, targets, flags := cols.PCs, cols.Targets, cols.Flags
	pids, progs := cols.PIDs, cols.Programs
	for i := lo; i < hi; i++ {
		f := flags[i]
		var key uint64
		switch {
		case f&trace.FlagKernel != 0:
			key = kernelKey
		case m.sharedTokens:
			key = programKey | uint64(progs[i])
		default:
			key = uint64(pids[i])
		}
		if !m.haveKey || key != m.curKey {
			m.loadToken(key)
		}

		kind := trace.Kind(f & trace.FlagKindMask)
		pred := m.unit.Predict(pcs[i], kind)
		ev := m.unit.Update(trace.Record{
			PC:     pcs[i],
			Target: targets[i],
			Kind:   kind,
			Taken:  f&trace.FlagTaken != 0,
		}, pred)

		// Threshold monitoring, exactly as in Step.
		if ev.Mispredict {
			viaTage := false
			if m.tagePred != nil && m.separateTage {
				if tm := m.tagePred.TageMispredicts; tm != m.lastTageMisp {
					m.lastTageMisp = tm
					viaTage = true
				}
			}
			var st token.ST
			var rerand bool
			if viaTage {
				st, rerand = m.mgr.OnTageMisprediction(key)
			} else {
				st, rerand = m.mgr.OnMisprediction(key)
			}
			if rerand {
				m.applyST(st)
			}
		} else if m.tagePred != nil {
			m.lastTageMisp = m.tagePred.TageMispredicts
		}
		if ev.BTBEviction {
			if st, rerand := m.mgr.OnEviction(key); rerand {
				m.applyST(st)
			}
		}
		acc.Note(ev)
	}
}

// Rerandomizations reports total token re-randomizations so far.
func (m *Model) Rerandomizations() uint64 { return m.mgr.Stats().Total() }
