// Package snap implements the deterministic binary codec predictor
// snapshots are written in (sim.Snapshotter's EncodeState/DecodeState).
// The format is deliberately primitive: fixed-width little-endian
// integers and length-prefixed sequences appended in struct-field
// order, with no framing, compression, or reflection. Determinism is
// the contract — encoding the same model state twice must yield the
// same bytes in every process, because snapstore keys content-address
// checkpoints and distributed workers must agree on them — so nothing
// here depends on map iteration order or platform word size (callers
// sort map keys before writing them).
//
// A Reader never panics on truncated or corrupt input: it latches an
// error and returns zero values, and the caller checks Err() once at
// the end. Decoders built on it therefore reject damaged snapshots
// cleanly, which is what lets the disk tier fall back to replay when a
// spilled checkpoint is unreadable.
package snap

import (
	"encoding/binary"
	"fmt"
	"math"
)

// maxSliceLen bounds a decoded length prefix so corrupt input cannot
// trigger a giant allocation. Predictor tables are at most a few MiB;
// 1<<28 elements is far beyond any real snapshot.
const maxSliceLen = 1 << 28

// Writer appends values to a growing byte buffer. The zero value is
// ready to use; Bytes returns the accumulated encoding.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with capacity preallocated for n bytes.
func NewWriter(n int) *Writer {
	return &Writer{buf: make([]byte, 0, n)}
}

// Bytes returns the accumulated encoding.
func (w *Writer) Bytes() []byte { return w.buf }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a bool as one byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// I8 appends one int8.
func (w *Writer) I8(v int8) { w.U8(uint8(v)) }

// U16 appends a little-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }

// I16 appends a little-endian int16.
func (w *Writer) I16(v int16) { w.U16(uint16(v)) }

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// I32 appends a little-endian int32.
func (w *Writer) I32(v int32) { w.U32(uint32(v)) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// Int appends an int as a little-endian int64, so the encoding is
// identical on 32- and 64-bit platforms.
func (w *Writer) Int(v int) { w.U64(uint64(int64(v))) }

// F64 appends a float64 as its IEEE-754 bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Len appends a sequence length prefix.
func (w *Writer) Len(n int) { w.U32(uint32(n)) }

// Bytes8 appends a length-prefixed byte slice.
func (w *Writer) Bytes8(v []byte) {
	w.Len(len(v))
	w.buf = append(w.buf, v...)
}

// U8s appends a length-prefixed []uint8.
func (w *Writer) U8s(v []uint8) { w.Bytes8(v) }

// I8s appends a length-prefixed []int8.
func (w *Writer) I8s(v []int8) {
	w.Len(len(v))
	for _, x := range v {
		w.I8(x)
	}
}

// I16s appends a length-prefixed []int16.
func (w *Writer) I16s(v []int16) {
	w.Len(len(v))
	for _, x := range v {
		w.I16(x)
	}
}

// U32s appends a length-prefixed []uint32.
func (w *Writer) U32s(v []uint32) {
	w.Len(len(v))
	for _, x := range v {
		w.U32(x)
	}
}

// I32s appends a length-prefixed []int32.
func (w *Writer) I32s(v []int32) {
	w.Len(len(v))
	for _, x := range v {
		w.I32(x)
	}
}

// U64s appends a length-prefixed []uint64.
func (w *Writer) U64s(v []uint64) {
	w.Len(len(v))
	for _, x := range v {
		w.U64(x)
	}
}

// Reader consumes a snapshot encoding. On any malformed read it
// latches an error and every subsequent read returns the zero value;
// check Err once after the final field.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a reader over data.
func NewReader(data []byte) *Reader { return &Reader{buf: data} }

// Err returns the first error the reader encountered, if any.
func (r *Reader) Err() error { return r.err }

// Done returns Err, or an error if trailing bytes remain — a snapshot
// must be consumed exactly.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("snap: %d trailing bytes after decode", len(r.buf)-r.off)
	}
	return nil
}

// Fail lets a decoder latch a domain-level error (a structural
// mismatch the codec itself cannot see, like a config marker that
// disagrees with the decoding model).
func (r *Reader) Fail(format string, args ...any) { r.fail(format, args...) }

// fail latches the reader's first error.
func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("snap: "+format, args...)
	}
}

// take returns the next n bytes, or nil after latching a truncation
// error.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.buf)-r.off < n {
		r.fail("truncated: need %d bytes at offset %d of %d", n, r.off, len(r.buf))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a bool, rejecting any byte but 0 or 1.
func (r *Reader) Bool() bool {
	switch v := r.U8(); v {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("invalid bool byte %d", v)
		return false
	}
}

// I8 reads one int8.
func (r *Reader) I8() int8 { return int8(r.U8()) }

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// I16 reads a little-endian int16.
func (r *Reader) I16() int16 { return int16(r.U16()) }

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// I32 reads a little-endian int32.
func (r *Reader) I32() int32 { return int32(r.U32()) }

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Int reads an int encoded by Writer.Int.
func (r *Reader) Int() int { return int(int64(r.U64())) }

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Len reads a sequence length prefix, bounding it against corrupt
// input.
func (r *Reader) Len() int {
	n := r.U32()
	if n > maxSliceLen {
		r.fail("length prefix %d exceeds bound %d", n, maxSliceLen)
		return 0
	}
	return int(n)
}

// LenExact reads a length prefix and rejects any value but want; table
// geometries are configuration-derived, so a decoded snapshot must
// match the live model's shape exactly.
func (r *Reader) LenExact(want int) int {
	n := r.Len()
	if r.err == nil && n != want {
		r.fail("length %d, want %d", n, want)
		return 0
	}
	return n
}

// Bytes8 reads a length-prefixed byte slice (always a fresh copy).
func (r *Reader) Bytes8() []byte {
	n := r.Len()
	b := r.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// U8sInto reads a length-prefixed []uint8 into dst, requiring the
// encoded length to match len(dst).
func (r *Reader) U8sInto(dst []uint8) {
	r.LenExact(len(dst))
	b := r.take(len(dst))
	if b != nil {
		copy(dst, b)
	}
}

// I8sInto reads a length-prefixed []int8 into dst.
func (r *Reader) I8sInto(dst []int8) {
	r.LenExact(len(dst))
	for i := range dst {
		dst[i] = r.I8()
	}
}

// I16sInto reads a length-prefixed []int16 into dst.
func (r *Reader) I16sInto(dst []int16) {
	r.LenExact(len(dst))
	for i := range dst {
		dst[i] = r.I16()
	}
}

// U32sInto reads a length-prefixed []uint32 into dst.
func (r *Reader) U32sInto(dst []uint32) {
	r.LenExact(len(dst))
	for i := range dst {
		dst[i] = r.U32()
	}
}

// I32sInto reads a length-prefixed []int32 into dst.
func (r *Reader) I32sInto(dst []int32) {
	r.LenExact(len(dst))
	for i := range dst {
		dst[i] = r.I32()
	}
}

// U64sInto reads a length-prefixed []uint64 into dst.
func (r *Reader) U64sInto(dst []uint64) {
	r.LenExact(len(dst))
	for i := range dst {
		dst[i] = r.U64()
	}
}
