// Package ittage implements an ITTAGE-style indirect-target predictor
// (Seznec's ITTAGE, the indirect-branch member of the TAGE family): a set
// of tagged tables indexed by hashes of the branch address and
// geometrically increasing path-history lengths. The longest-history
// matching table provides the target; allocation on mispredictions moves
// polymorphic branches into longer-history tables until their context
// disambiguates.
//
// The paper's §IV argues STBPU "can be applied to other branch predictor
// configurations and designs" because it only changes how structures are
// *addressed* and how stored data is *represented*. This package is the
// executable form of that claim for indirect prediction: the Hasher
// interface keys every index/tag computation with ψ (mirroring Rt for
// TAGE), and stored targets arrive already φ-encrypted from the Unit, so
// the ST wrapper needs no ITTAGE-specific logic at all.
package ittage

import (
	"fmt"
	"math"
	"math/bits"

	"stbpu/internal/bpu"
)

// Hasher computes keyed table indexes and tags. The default (nil) is the
// deterministic legacy fold an unprotected core would use; the ST wrapper
// installs a ψ-keyed implementation.
type Hasher interface {
	// ITIndexTag folds the branch address and the bank's folded path
	// history into an index and tag of the given widths.
	ITIndexTag(pc uint64, fold uint64, bank int, indexBits, tagBits uint) (idx, tag uint32)
}

// legacyHasher is the unkeyed baseline fold.
type legacyHasher struct{}

func (legacyHasher) ITIndexTag(pc uint64, fold uint64, bank int, indexBits, tagBits uint) (idx, tag uint32) {
	h := pc ^ pc>>13 ^ fold*0x9e3779b97f4a7c15 ^ uint64(bank)*0xbf58476d1ce4e5b9
	h ^= h >> 29
	idx = uint32(h) & (1<<indexBits - 1)
	tag = uint32(h>>32) & (1<<tagBits - 1)
	return idx, tag
}

// Config sizes the predictor.
type Config struct {
	// Banks is the number of tagged tables (default 4).
	Banks int
	// MinHist and MaxHist bound the geometric history lengths
	// (defaults 4 and 64).
	MinHist, MaxHist int
	// IndexBits and TagBits size each bank (defaults 9 and 8: 512
	// entries per bank, comparable to one BTB way's budget).
	IndexBits, TagBits uint
	// Hasher keys the index/tag computations; nil means the legacy fold.
	Hasher Hasher
}

// DefaultConfig returns the 4-bank, 512-entry/bank geometry.
func DefaultConfig() Config {
	return Config{Banks: 4, MinHist: 4, MaxHist: 64, IndexBits: 9, TagBits: 8}
}

// Validate rejects degenerate geometries.
func (c Config) Validate() error {
	if c.Banks <= 0 || c.Banks > 16 {
		return fmt.Errorf("ittage: banks %d out of range", c.Banks)
	}
	if c.MinHist <= 0 || c.MaxHist < c.MinHist {
		return fmt.Errorf("ittage: history range [%d,%d] invalid", c.MinHist, c.MaxHist)
	}
	if c.IndexBits == 0 || c.IndexBits > 16 || c.TagBits == 0 || c.TagBits > 16 {
		return fmt.Errorf("ittage: index/tag widths %d/%d out of range", c.IndexBits, c.TagBits)
	}
	return nil
}

type entry struct {
	valid  bool
	tag    uint32
	target uint32 // stored (already encrypted) 32-bit target
	conf   uint8  // 0..3 confidence
	useful uint8  // 0..3 usefulness (allocation victim selection)
}

// Predictor is one ITTAGE instance. Not safe for concurrent use (single
// hardware owner, like every structure in this repository).
type Predictor struct {
	cfg    Config
	hasher Hasher
	banks  [][]entry
	lens   []int // history length per bank

	// path history ring: one 8-bit path signature per retired taken
	// branch (real ITTAGE keeps a few address/target bits per branch —
	// a single bit cannot distinguish same-alignment paths).
	hist    []uint8
	histPos int

	// folds[b] is fold(lens[b]) maintained incrementally: OnBranch rotates
	// the dropping signature out and the new one in, so PredictTarget reads
	// a precomputed value instead of re-walking lens[b] ring slots per
	// bank per lookup. rotNew[b] is the constant rotation the newest
	// signature carries in a lens[b]-deep fold: 5*(lens[b]-1) mod 64.
	folds  []uint64
	rotNew []int

	// lookup state consumed by UpdateTarget.
	lastPC       uint64
	lastProvider int // bank of the providing entry, -1 = none
	lastIdx      []uint32
	lastTag      []uint32
	lastStored   uint32

	// Stats.
	Hits, Misses, Allocations uint64
}

// New builds a predictor; the zero-value Config fields take defaults.
func New(cfg Config) (*Predictor, error) {
	if cfg.Banks == 0 {
		cfg = DefaultConfig()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := cfg.Hasher
	if h == nil {
		h = legacyHasher{}
	}
	p := &Predictor{
		cfg:     cfg,
		hasher:  h,
		banks:   make([][]entry, cfg.Banks),
		lens:    make([]int, cfg.Banks),
		hist:    make([]uint8, cfg.MaxHist),
		lastIdx: make([]uint32, cfg.Banks),
		lastTag: make([]uint32, cfg.Banks),
	}
	for b := range p.banks {
		p.banks[b] = make([]entry, 1<<cfg.IndexBits)
		// Geometric history lengths from MinHist to MaxHist.
		if cfg.Banks == 1 {
			p.lens[b] = cfg.MinHist
			continue
		}
		ratio := float64(cfg.MaxHist) / float64(cfg.MinHist)
		exp := float64(b) / float64(cfg.Banks-1)
		p.lens[b] = int(float64(cfg.MinHist)*math.Pow(ratio, exp) + 0.5)
	}
	p.folds = make([]uint64, cfg.Banks)
	p.rotNew = make([]int, cfg.Banks)
	for b, l := range p.lens {
		p.rotNew[b] = (5 * (l - 1)) % 64
	}
	return p, nil
}

// SetHasher swaps the index hasher (token re-randomization in ST mode,
// and fork re-pointing in the snapshot tier). Existing entries become
// unreachable garbage under the new key, exactly as in hardware.
func (p *Predictor) SetHasher(h Hasher) {
	if h == nil {
		h = legacyHasher{}
	}
	p.hasher = h
}

// Lens exposes the per-bank history lengths (tests verify the geometric
// series).
func (p *Predictor) Lens() []int {
	out := make([]int, len(p.lens))
	copy(out, p.lens)
	return out
}

// fold compresses the most recent n history signatures into a 64-bit
// value (rotate-and-xor, the TAGE circular-shift-register idiom). The hot
// path reads the incrementally maintained p.folds instead; this recompute
// form remains as the reference the incremental test checks against.
func (p *Predictor) fold(n int) uint64 {
	var f uint64
	for i := 0; i < n; i++ {
		sig := p.hist[(p.histPos-1-i+len(p.hist)*2)%len(p.hist)]
		f = (f<<5 | f>>59) ^ uint64(sig)
	}
	return f
}

var _ bpu.IndirectPredictor = (*Predictor)(nil)

// PredictTarget implements bpu.IndirectPredictor: longest matching bank
// wins.
func (p *Predictor) PredictTarget(pc uint64) (uint32, bool) {
	p.lastPC = pc
	p.lastProvider = -1
	for b := p.cfg.Banks - 1; b >= 0; b-- {
		idx, tag := p.hasher.ITIndexTag(pc, p.folds[b], b, p.cfg.IndexBits, p.cfg.TagBits)
		p.lastIdx[b], p.lastTag[b] = idx, tag
		if p.lastProvider < 0 {
			e := &p.banks[b][idx]
			if e.valid && e.tag == tag {
				p.lastProvider = b
				p.lastStored = e.target
			}
		}
	}
	if p.lastProvider < 0 {
		p.Misses++
		return 0, false
	}
	p.Hits++
	return p.lastStored, true
}

// UpdateTarget implements bpu.IndirectPredictor: trains the provider and
// allocates a longer-history entry on a target change.
func (p *Predictor) UpdateTarget(pc uint64, stored uint32) {
	if pc != p.lastPC {
		// Out-of-contract call (e.g. predictor attached mid-stream):
		// recompute lookup state.
		p.PredictTarget(pc)
	}
	correct := p.lastProvider >= 0 && p.lastStored == stored

	if p.lastProvider >= 0 {
		e := &p.banks[p.lastProvider][p.lastIdx[p.lastProvider]]
		if correct {
			if e.conf < 3 {
				e.conf++
			}
			if e.useful < 3 {
				e.useful++
			}
			return
		}
		// Wrong target: lose confidence; replace once exhausted.
		if e.conf > 0 {
			e.conf--
		} else {
			e.target = stored
			e.conf = 1
		}
	}

	// Allocate in a bank with longer history than the provider, stealing
	// the least-useful entry (ITTAGE's usefulness policy).
	from := p.lastProvider + 1
	if from >= p.cfg.Banks {
		return
	}
	best, bestUseful := -1, uint8(255)
	for b := from; b < p.cfg.Banks; b++ {
		e := &p.banks[b][p.lastIdx[b]]
		if !e.valid {
			best, bestUseful = b, 0
			break
		}
		if e.useful < bestUseful {
			best, bestUseful = b, e.useful
		}
	}
	if best < 0 {
		return
	}
	victim := &p.banks[best][p.lastIdx[best]]
	if victim.valid && victim.useful > 0 {
		// Protected victim: decay usefulness instead of stealing (the
		// global decay of real ITTAGE, applied locally).
		victim.useful--
		return
	}
	*victim = entry{valid: true, tag: p.lastTag[best], target: stored, conf: 1}
	p.Allocations++
}

// OnBranch implements bpu.IndirectPredictor: push one path signature
// derived from the branch, its target, and its outcome. Each bank's fold
// advances incrementally — rotate the signature dropping out of its window
// away, rotate the whole fold down one step, and mix the new signature in
// at the window head — which keeps every p.folds[b] equal to what
// fold(p.lens[b]) would recompute from the ring.
func (p *Predictor) OnBranch(pc, target uint64, taken bool) {
	h := pc ^ target>>2 ^ pc>>11
	h ^= h >> 17
	sig := uint8(h^h>>8) << 1
	if taken {
		sig |= 1
	}
	n := len(p.hist)
	for b, l := range p.lens {
		out := uint64(p.hist[(p.histPos-l+2*n)%n])
		f := bits.RotateLeft64(p.folds[b]^out, -5)
		p.folds[b] = f ^ bits.RotateLeft64(uint64(sig), p.rotNew[b])
	}
	p.hist[p.histPos] = sig
	p.histPos = (p.histPos + 1) % n
}

// Flush implements bpu.IndirectPredictor.
func (p *Predictor) Flush() {
	for b := range p.banks {
		for i := range p.banks[b] {
			p.banks[b][i] = entry{}
		}
	}
	for i := range p.hist {
		p.hist[i] = 0
	}
	for b := range p.folds {
		p.folds[b] = 0
	}
	p.histPos = 0
	p.lastProvider = -1
}

// HitRate reports the fraction of lookups served by a tagged bank.
func (p *Predictor) HitRate() float64 {
	total := p.Hits + p.Misses
	if total == 0 {
		return 0
	}
	return float64(p.Hits) / float64(total)
}
