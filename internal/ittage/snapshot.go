package ittage

// Snapshot support for the warm-state checkpoint tier (sim.Snapshotter):
// deep forks and a deterministic binary state round-trip. The lookup
// stash (lastPC/lastProvider/lastIdx/lastTag/lastStored) is dead between
// records — UpdateTarget always directly follows its PredictTarget — so
// clones and decoded snapshots reset it to a canonical value.

import "stbpu/internal/snap"

// CloneWith returns a deep copy of the predictor addressed through h
// (forks re-point keyed hashers at the fork's own key state; pass nil
// to keep the original's hasher).
func (p *Predictor) CloneWith(h Hasher) *Predictor {
	if h == nil {
		h = p.hasher
	}
	cfg := p.cfg
	cfg.Hasher = h
	np, err := New(cfg)
	if err != nil {
		// p was constructed from this configuration, so it revalidates.
		panic("ittage: clone of invalid config: " + err.Error())
	}
	for b := range p.banks {
		copy(np.banks[b], p.banks[b])
	}
	copy(np.hist, p.hist)
	np.histPos = p.histPos
	copy(np.folds, p.folds)
	np.Hits, np.Misses, np.Allocations = p.Hits, p.Misses, p.Allocations
	np.lastProvider = -1
	return np
}

// EncodeState appends the predictor's mutable state to w.
func (p *Predictor) EncodeState(w *snap.Writer) {
	w.Len(len(p.banks))
	for b := range p.banks {
		w.Len(len(p.banks[b]))
		for i := range p.banks[b] {
			e := &p.banks[b][i]
			w.Bool(e.valid)
			w.U32(e.tag)
			w.U32(e.target)
			w.U8(e.conf)
			w.U8(e.useful)
		}
	}
	w.U8s(p.hist)
	w.Int(p.histPos)
	w.U64s(p.folds)
	w.U64(p.Hits)
	w.U64(p.Misses)
	w.U64(p.Allocations)
}

// DecodeState restores state encoded by EncodeState onto a predictor of
// the same configuration, resetting the lookup stash. Geometry
// mismatches latch an error on r.
func (p *Predictor) DecodeState(r *snap.Reader) {
	r.LenExact(len(p.banks))
	for b := range p.banks {
		r.LenExact(len(p.banks[b]))
		for i := range p.banks[b] {
			e := &p.banks[b][i]
			e.valid = r.Bool()
			e.tag = r.U32()
			e.target = r.U32()
			e.conf = r.U8()
			e.useful = r.U8()
		}
	}
	r.U8sInto(p.hist)
	p.histPos = r.Int()
	if r.Err() == nil && (p.histPos < 0 || p.histPos >= len(p.hist)) {
		p.histPos = 0
	}
	r.U64sInto(p.folds)
	p.Hits = r.U64()
	p.Misses = r.U64()
	p.Allocations = r.U64()
	p.lastPC, p.lastProvider, p.lastStored = 0, -1, 0
}
