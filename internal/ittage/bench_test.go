package ittage

import (
	"testing"

	"stbpu/internal/rng"
)

const benchMask = 1<<14 - 1

// benchStream emits an indirect-heavy branch mix: polymorphic call sites
// whose targets correlate with recent path history.
func benchStream() (pcs, targets []uint64, taken []bool) {
	pcs = make([]uint64, benchMask+1)
	targets = make([]uint64, benchMask+1)
	taken = make([]bool, benchMask+1)
	s := uint64(0x17a6e)
	for i := range pcs {
		r := rng.SplitMix64(&s)
		pcs[i] = 0x400000 + (r%64)<<3
		targets[i] = 0x600000 + (r>>6%8)<<4 + pcs[i]%3<<8
		taken[i] = r>>20&3 != 0
	}
	return pcs, targets, taken
}

func benchPredictor(b *testing.B) (*Predictor, []uint64, []uint64, []bool) {
	b.Helper()
	p, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	pcs, targets, taken := benchStream()
	for i := range pcs {
		p.PredictTarget(pcs[i])
		p.UpdateTarget(pcs[i], uint32(targets[i]))
		p.OnBranch(pcs[i], targets[i], taken[i])
	}
	return p, pcs, targets, taken
}

func BenchmarkPredict(b *testing.B) {
	p, pcs, targets, taken := benchPredictor(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.PredictTarget(pcs[i&benchMask])
		p.OnBranch(pcs[i&benchMask], targets[i&benchMask], taken[i&benchMask])
	}
}

// BenchmarkUpdate measures the full lookup/train/history cycle one
// retired indirect branch costs.
func BenchmarkUpdate(b *testing.B) {
	p, pcs, targets, taken := benchPredictor(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.PredictTarget(pcs[i&benchMask])
		p.UpdateTarget(pcs[i&benchMask], uint32(targets[i&benchMask]))
		p.OnBranch(pcs[i&benchMask], targets[i&benchMask], taken[i&benchMask])
	}
}

// TestIncrementalFoldMatchesRecompute pins the optimization contract: the
// incrementally maintained per-bank folds must equal a from-scratch
// recompute of the ring at every step, including after a flush.
func TestIncrementalFoldMatchesRecompute(t *testing.T) {
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := uint64(42)
	check := func(step int) {
		t.Helper()
		for b, l := range p.lens {
			if got, want := p.folds[b], p.fold(l); got != want {
				t.Fatalf("step %d bank %d: incremental fold %#x != recomputed %#x", step, b, got, want)
			}
		}
	}
	for i := 0; i < 500; i++ {
		r := rng.SplitMix64(&s)
		p.OnBranch(r&0xffff, r>>16&0xffff, r>>32&1 == 1)
		check(i)
		if i == 250 {
			p.Flush()
			check(i)
		}
	}
}
