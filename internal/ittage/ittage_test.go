package ittage

import (
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cfg Config) *Predictor {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Banks: -1, MinHist: 4, MaxHist: 64, IndexBits: 9, TagBits: 8},
		{Banks: 99, MinHist: 4, MaxHist: 64, IndexBits: 9, TagBits: 8},
		{Banks: 4, MinHist: 0, MaxHist: 64, IndexBits: 9, TagBits: 8},
		{Banks: 4, MinHist: 64, MaxHist: 4, IndexBits: 9, TagBits: 8},
		{Banks: 4, MinHist: 4, MaxHist: 64, IndexBits: 0, TagBits: 8},
		{Banks: 4, MinHist: 4, MaxHist: 64, IndexBits: 9, TagBits: 32},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	// Zero value takes defaults.
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Lens()); got != DefaultConfig().Banks {
		t.Errorf("zero config banks = %d", got)
	}
}

func TestGeometricHistoryLengths(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	lens := p.Lens()
	if lens[0] != 4 || lens[len(lens)-1] != 64 {
		t.Errorf("lens = %v, want endpoints 4 and 64", lens)
	}
	for i := 1; i < len(lens); i++ {
		if lens[i] <= lens[i-1] {
			t.Errorf("lens = %v not strictly increasing", lens)
		}
	}
}

func TestMonomorphicBranchLearned(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	const pc, target = 0x40_1000, uint32(0xbeef_0000)
	for i := 0; i < 8; i++ {
		p.PredictTarget(pc)
		p.UpdateTarget(pc, target)
		p.OnBranch(pc, uint64(target), true)
	}
	got, ok := p.PredictTarget(pc)
	if !ok || got != target {
		t.Fatalf("monomorphic branch not learned: got %#x ok=%v", got, ok)
	}
}

func TestPolymorphicBranchDisambiguatedByContext(t *testing.T) {
	// A branch whose target depends on the preceding path: ITTAGE's
	// raison d'être. The BTB mode-one entry would thrash; tagged
	// history banks separate the two contexts.
	p := mustNew(t, DefaultConfig())
	const pc = 0x40_2000
	ctxA := []uint64{0x10_0000, 0x10_0040, 0x10_0080}
	ctxB := []uint64{0x20_0000, 0x20_0040, 0x20_0080}
	targetOf := map[bool]uint32{true: 0xaaaa_0000, false: 0xbbbb_0000}

	run := func(useA bool) (uint32, bool) {
		ctx := ctxB
		if useA {
			ctx = ctxA
		}
		for _, cpc := range ctx {
			p.OnBranch(cpc, cpc+0x40, true)
		}
		got, ok := p.PredictTarget(pc)
		p.UpdateTarget(pc, targetOf[useA])
		p.OnBranch(pc, uint64(targetOf[useA]), true)
		return got, ok
	}

	// Interleave the two contexts; after warmup the predictor must
	// track both.
	for i := 0; i < 40; i++ {
		run(i%2 == 0)
	}
	correct := 0
	for i := 0; i < 40; i++ {
		useA := i%2 == 0
		got, ok := run(useA)
		if ok && got == targetOf[useA] {
			correct++
		}
	}
	if correct < 30 {
		t.Errorf("context-dependent targets: %d/40 correct, want >= 30", correct)
	}
	if p.Allocations == 0 {
		t.Error("no allocations recorded for a polymorphic branch")
	}
}

func TestFlushClearsState(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	const pc, target = 0x40_3000, uint32(0x1234_5678)
	for i := 0; i < 8; i++ {
		p.PredictTarget(pc)
		p.UpdateTarget(pc, target)
		p.OnBranch(pc, uint64(target), true)
	}
	p.Flush()
	if _, ok := p.PredictTarget(pc); ok {
		t.Error("entry survived Flush")
	}
}

// hasherFunc adapts a function to the Hasher interface.
type hasherFunc func(pc uint64, fold uint64, bank int, indexBits, tagBits uint) (uint32, uint32)

func (f hasherFunc) ITIndexTag(pc uint64, fold uint64, bank int, indexBits, tagBits uint) (idx, tag uint32) {
	return f(pc, fold, bank, indexBits, tagBits)
}

func TestKeyedHasherSeparatesKeys(t *testing.T) {
	// Two keys must produce substantially different (index, tag)
	// mappings across a PC sample — the isolation property the ST
	// wrapper relies on. Model a key as a pre-hash salt.
	mk := func(salt uint64) Hasher {
		return hasherFunc(func(pc uint64, fold uint64, bank int, indexBits, tagBits uint) (uint32, uint32) {
			return legacyHasher{}.ITIndexTag(pc^salt*0x9e3779b97f4a7c15, fold, bank, indexBits, tagBits)
		})
	}
	check := func(s1, s2 uint64) bool {
		if s1 == s2 {
			return true
		}
		a, b := mk(s1), mk(s2)
		differ := 0
		const sample = 64
		for i := 0; i < sample; i++ {
			pc := 0x40_0000 + uint64(i)*4
			ia, ta := a.ITIndexTag(pc, 0, 0, 9, 8)
			ib, tb := b.ITIndexTag(pc, 0, 0, 9, 8)
			if ia != ib || ta != tb {
				differ++
			}
		}
		// With 9+8 output bits, two keys coinciding on most of 64 PCs
		// would indicate broken keying.
		return differ > sample/2
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestOutOfContractUpdateRecovers(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	// UpdateTarget without a preceding PredictTarget for that pc must
	// not corrupt state.
	p.UpdateTarget(0x40_4000, 0xdead_0000)
	for i := 0; i < 4; i++ {
		p.PredictTarget(0x40_4000)
		p.UpdateTarget(0x40_4000, 0xdead_0000)
	}
	got, ok := p.PredictTarget(0x40_4000)
	if !ok || got != 0xdead_0000 {
		t.Errorf("recovery failed: got %#x ok=%v", got, ok)
	}
}

func TestHitRateAccounting(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	if p.HitRate() != 0 {
		t.Error("empty predictor should report zero hit rate")
	}
	p.PredictTarget(0x40_5000) // miss
	p.UpdateTarget(0x40_5000, 1)
	p.PredictTarget(0x40_5000)
	if p.Hits+p.Misses < 2 {
		t.Error("lookup accounting missing")
	}
}

func TestFoldStability(t *testing.T) {
	// The fold of n bits must depend only on the last n history pushes.
	p := mustNew(t, DefaultConfig())
	for i := 0; i < 200; i++ {
		p.OnBranch(uint64(i)*64, uint64(i)*64+32, true)
	}
	f1 := p.fold(16)
	q := mustNew(t, DefaultConfig())
	for i := 0; i < 400; i++ {
		q.OnBranch(0xdead, 0xbeef, true) // different prefix
	}
	for i := 200 - 16; i < 200; i++ {
		q.OnBranch(uint64(i)*64, uint64(i)*64+32, true) // same last 16
	}
	if f2 := q.fold(16); f1 != f2 {
		t.Errorf("fold(16) depends on history beyond the last 16 entries: %#x vs %#x", f1, f2)
	}
}
