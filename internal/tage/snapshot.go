package tage

// Snapshot support for the warm-state checkpoint tier: deep forks and a
// deterministic binary state round-trip (see sim.Snapshotter). The
// lookup stash is dead between records (Update always directly follows
// its Predict), so CloneWith and DecodeState reset it — every capture
// of the same logical state encodes to identical bytes.

import "stbpu/internal/snap"

// CloneWith returns a deep copy of the predictor addressed through h
// (forks re-point keyed hashers at the fork's own key state; pass nil
// to keep the original's hasher).
func (p *Predictor) CloneWith(h Hasher) *Predictor {
	if h == nil {
		h = p.hasher
	}
	cfg := p.cfg
	cfg.Hasher = h
	np := New(cfg)
	np.copyStateFrom(p)
	return np
}

// copyStateFrom overwrites np's mutable state with p's. Both must share
// a configuration (geometry is config-derived).
func (np *Predictor) copyStateFrom(p *Predictor) {
	copy(np.bimodal, p.bimodal)
	for b := range p.banks {
		copy(np.banks[b], p.banks[b])
	}
	np.hist = p.hist
	np.histPos, np.histLen = p.histPos, p.histLen
	for i := range p.fIdx {
		np.fIdx[i].val = p.fIdx[i].val
		np.fTag[i].val = p.fTag[i].val
		np.fTag2[i].val = p.fTag2[i].val
	}
	copy(np.oldPos, p.oldPos)
	copy(np.scOldPos, p.scOldPos)
	np.useAltOnNA = p.useAltOnNA
	copy(np.loops, p.loops)
	for i := range p.scTables {
		copy(np.scTables[i], p.scTables[i])
	}
	for i := range p.scFolds {
		np.scFolds[i].val = p.scFolds[i].val
	}
	np.TageMispredicts = p.TageMispredicts
}

// EncodeState appends the predictor's mutable state to w.
func (p *Predictor) EncodeState(w *snap.Writer) {
	w.I8s(p.bimodal)
	w.Len(len(p.banks))
	for b := range p.banks {
		w.Len(len(p.banks[b]))
		for i := range p.banks[b] {
			e := &p.banks[b][i]
			w.Bool(e.valid)
			w.U32(e.tag)
			w.I8(e.ctr)
			w.U8(e.useful)
		}
	}
	w.U8s(p.hist[:])
	w.Int(p.histPos)
	w.Int(p.histLen)
	for i := range p.fIdx {
		w.U64(p.fIdx[i].val)
		w.U64(p.fTag[i].val)
		w.U64(p.fTag2[i].val)
	}
	w.I32s(p.oldPos)
	w.I32s(p.scOldPos)
	w.I8(p.useAltOnNA)
	w.Len(len(p.loops))
	for i := range p.loops {
		e := &p.loops[i]
		w.U32(e.tag)
		w.U16(e.tripCount)
		w.U16(e.currentIt)
		w.U8(e.confidence)
		w.U8(e.age)
	}
	w.Len(len(p.scTables))
	for i := range p.scTables {
		w.I8s(p.scTables[i])
	}
	for i := range p.scFolds {
		w.U64(p.scFolds[i].val)
	}
	w.U64(p.TageMispredicts)
}

// DecodeState restores state encoded by EncodeState onto a predictor of
// the same configuration, resetting the lookup stash. Geometry
// mismatches latch an error on r.
func (p *Predictor) DecodeState(r *snap.Reader) {
	r.I8sInto(p.bimodal)
	r.LenExact(len(p.banks))
	for b := range p.banks {
		r.LenExact(len(p.banks[b]))
		for i := range p.banks[b] {
			e := &p.banks[b][i]
			e.valid = r.Bool()
			e.tag = r.U32()
			e.ctr = r.I8()
			e.useful = r.U8()
		}
	}
	r.U8sInto(p.hist[:])
	p.histPos = r.Int()
	p.histLen = r.Int()
	if r.Err() == nil && (p.histPos < 0 || p.histPos >= maxHistoryBits || p.histLen < 0 || p.histLen > maxHistoryBits) {
		p.histPos, p.histLen = 0, 0
	}
	for i := range p.fIdx {
		p.fIdx[i].val = r.U64()
		p.fTag[i].val = r.U64()
		p.fTag2[i].val = r.U64()
	}
	r.I32sInto(p.oldPos)
	r.I32sInto(p.scOldPos)
	// Corrupt positions would index outside the ring; re-derive them
	// from histPos rather than panic (the disk tier falls back to
	// replay on a decode error, but a wild index must never crash).
	for _, pos := range append(append([]int32(nil), p.oldPos...), p.scOldPos...) {
		if pos < 0 || pos >= maxHistoryBits {
			p.resetOldPositions()
			break
		}
	}
	p.useAltOnNA = r.I8()
	r.LenExact(len(p.loops))
	for i := range p.loops {
		e := &p.loops[i]
		e.tag = r.U32()
		e.tripCount = r.U16()
		e.currentIt = r.U16()
		e.confidence = r.U8()
		e.age = r.U8()
	}
	r.LenExact(len(p.scTables))
	for i := range p.scTables {
		r.I8sInto(p.scTables[i])
	}
	for i := range p.scFolds {
		p.scFolds[i].val = r.U64()
	}
	p.TageMispredicts = r.U64()
	p.last = lookup{tags: p.last.tags, idxs: p.last.idxs, scIdxs: p.last.scIdxs}
}
