// Package tage implements the TAGE-SC-L conditional branch predictor
// (Seznec, CBP 2016) in the two configurations the paper evaluates in gem5
// (§VII-B2): an 8KB and a 64KB variant. The implementation covers the
// TAgged GEometric base predictor, the loop predictor (L), and a
// GEHL-style statistical corrector (SC).
//
// Index and tag computations flow through a Hasher so the STBPU wrapper
// (internal/core) can substitute the keyed Rt remapping function without
// touching prediction logic — the property STBPU relies on to stay
// predictor-agnostic (§II-A).
package tage

import (
	"fmt"

	"stbpu/internal/bpu"
)

// Hasher computes table indices and tags. LegacyHasher reproduces the
// standard TAGE folded-history hash; the ST wrapper substitutes keyed
// remapping.
type Hasher interface {
	// BankIndexTag maps (pc, folded histories, bank) to an index and tag
	// of the requested widths.
	BankIndexTag(pc uint64, fIdx, fTag uint64, bank int, indexBits, tagBits uint) (idx, tag uint32)
	// TableIndex maps pc (optionally mixed with folded history) to an
	// index for the untagged side structures (bimodal, SC, loop).
	TableIndex(pc uint64, fold uint64, bits uint) uint32
}

// LegacyHasher is the unprotected deterministic hash of standard TAGE.
type LegacyHasher struct{}

var _ Hasher = LegacyHasher{}

// BankIndexTag implements Hasher.
func (LegacyHasher) BankIndexTag(pc uint64, fIdx, fTag uint64, bank int, indexBits, tagBits uint) (idx, tag uint32) {
	h := pc ^ (pc >> (indexBits - uint(bank)&7)) ^ fIdx
	idx = uint32(h) & (1<<indexBits - 1)
	t := pc ^ fTag ^ (fTag << 1)
	tag = uint32(t) & (1<<tagBits - 1)
	return idx, tag
}

// TableIndex implements Hasher.
func (LegacyHasher) TableIndex(pc uint64, fold uint64, bits uint) uint32 {
	return uint32((pc>>2)^fold) & (1<<bits - 1)
}

// Config sizes a TAGE-SC-L instance.
type Config struct {
	// Name labels the model in reports ("TAGE_SC_L_8KB"...).
	Name string
	// HistLens are the geometric history lengths, one per tagged bank.
	HistLens []int
	// IndexBits/TagBits size the tagged banks (Table II: 10/8 for the
	// 8KB configuration, 13/12 for 64KB).
	IndexBits, TagBits uint
	// BimodalBits sizes the base predictor.
	BimodalBits uint
	// UseSC enables the statistical corrector.
	UseSC bool
	// UseLoop enables the loop predictor.
	UseLoop bool
	// Hasher is the index computation; nil means LegacyHasher.
	Hasher Hasher
}

// Config8KB is the small TAGE-SC-L of the paper's evaluation.
func Config8KB() Config {
	return Config{
		Name:        "TAGE_SC_L_8KB",
		HistLens:    []int{5, 13, 34, 88},
		IndexBits:   10,
		TagBits:     8,
		BimodalBits: 12,
		UseSC:       true,
		UseLoop:     true,
	}
}

// Config64KB is the large TAGE-SC-L of the paper's evaluation.
func Config64KB() Config {
	return Config{
		Name:        "TAGE_SC_L_64KB",
		HistLens:    []int{4, 9, 19, 42, 91, 199, 435},
		IndexBits:   13,
		TagBits:     12,
		BimodalBits: 13,
		UseSC:       true,
		UseLoop:     true,
	}
}

// entry is one tagged-bank slot: a 3-bit signed counter, tag, and 2-bit
// usefulness.
type entry struct {
	valid  bool
	tag    uint32
	ctr    int8 // -4..3, taken when >= 0
	useful uint8
}

// folded maintains a history register folded to a fixed width, updated
// incrementally as outcomes shift in and out (standard TAGE hardware).
// outShift and mask are fixed per register, precomputed at construction so
// the per-branch update is pure shift/xor work.
type folded struct {
	val      uint64
	compLen  uint   // folded width
	outShift uint   // origLen % compLen
	mask     uint64 // 1<<compLen - 1
}

func newFolded(origLen, compLen uint) folded {
	return folded{compLen: compLen, outShift: origLen % compLen, mask: 1<<compLen - 1}
}

// update shifts newBit in and oldBit (the outcome origLen steps ago) out.
func (f *folded) update(newBit, oldBit uint64) {
	f.val = (f.val << 1) | newBit
	f.val ^= oldBit << f.outShift
	f.val ^= f.val >> f.compLen
	f.val &= f.mask
}

func (f *folded) reset() { f.val = 0 }

// maxHistoryBits bounds the outcome ring buffer.
const maxHistoryBits = 1024

// loopEntry tracks one loop branch: its trip count and confidence.
type loopEntry struct {
	tag        uint32
	tripCount  uint16
	currentIt  uint16
	confidence uint8
	age        uint8
}

// scTableBits sizes each statistical-corrector table.
const scTableBits = 10

// Predictor is a TAGE-SC-L instance. It implements bpu.DirectionPredictor
// with the stash-between-Predict-and-Update contract.
type Predictor struct {
	cfg    Config
	hasher Hasher

	bimodal []int8 // 2-bit counters as -2..1, taken when >= 0
	banks   [][]entry

	// Global outcome history ring plus folded registers per bank.
	hist    [maxHistoryBits]uint8
	histPos int
	histLen int
	fIdx    []folded
	fTag    []folded
	fTag2   []folded
	// oldPos[i] is the ring index of the outcome HistLens[i] steps back,
	// advanced in lockstep with histPos so pushHistory never normalizes a
	// negative position. scOldPos is the same for the SC history lengths.
	oldPos   []int32
	scOldPos []int32

	useAltOnNA int8 // -8..7: prefer altpred for newly allocated entries

	// Loop predictor.
	loops []loopEntry

	// Statistical corrector: GEHL tables of 6-bit signed counters over
	// short folded histories.
	scTables [][]int8
	scLens   []int
	scFolds  []folded
	scThresh int

	// TageMispredicts counts wrong final predictions in which TAGE's
	// tagged banks provided the prediction — the event the ST models
	// monitor with a dedicated threshold register (§VII-B2).
	TageMispredicts uint64

	// lookup stash (Predict fills, Update consumes).
	last lookup
}

type lookup struct {
	pc        uint64
	provider  int // bank index, -1 = bimodal
	altBank   int // -1 = bimodal
	provIdx   uint32
	altIdx    uint32
	bimIdx    uint32
	tags      []uint32
	idxs      []uint32
	tagePred  bool
	altPred   bool
	finalPred bool
	usedLoop  bool
	loopPred  bool
	loopIdx   int
	scSum     int
	scIdxs    []uint32
	weakProv  bool
}

var _ bpu.DirectionPredictor = (*Predictor)(nil)

// New builds a predictor from the configuration.
func New(cfg Config) *Predictor {
	if len(cfg.HistLens) == 0 {
		panic("tage: config needs at least one tagged bank")
	}
	h := cfg.Hasher
	if h == nil {
		h = LegacyHasher{}
	}
	p := &Predictor{cfg: cfg, hasher: h}
	p.bimodal = make([]int8, 1<<cfg.BimodalBits)
	for i := range p.bimodal {
		p.bimodal[i] = -1 // weakly not-taken
	}
	p.banks = make([][]entry, len(cfg.HistLens))
	for i := range p.banks {
		p.banks[i] = make([]entry, 1<<cfg.IndexBits)
	}
	for _, l := range cfg.HistLens {
		if l >= maxHistoryBits {
			panic(fmt.Sprintf("tage: history length %d exceeds %d", l, maxHistoryBits))
		}
		p.fIdx = append(p.fIdx, newFolded(uint(l), cfg.IndexBits))
		p.fTag = append(p.fTag, newFolded(uint(l), cfg.TagBits))
		p.fTag2 = append(p.fTag2, newFolded(uint(l), cfg.TagBits-1))
	}
	p.oldPos = make([]int32, len(cfg.HistLens))
	if cfg.UseLoop {
		p.loops = make([]loopEntry, 64)
	}
	if cfg.UseSC {
		p.scLens = []int{0, 5, 14, 32}
		p.scTables = make([][]int8, len(p.scLens))
		for i := range p.scTables {
			p.scTables[i] = make([]int8, 1<<scTableBits)
		}
		for _, l := range p.scLens {
			p.scFolds = append(p.scFolds, newFolded(uint(max(l, 1)), scTableBits))
		}
		p.scThresh = 6
	}
	p.scOldPos = make([]int32, len(p.scLens))
	p.resetOldPositions()
	p.last.tags = make([]uint32, len(cfg.HistLens))
	p.last.idxs = make([]uint32, len(cfg.HistLens))
	p.last.scIdxs = make([]uint32, len(p.scTables))
	return p
}

// Config returns the instance configuration.
func (p *Predictor) Config() Config { return p.cfg }

// SetHasher swaps the index hasher (token re-randomization in ST mode).
func (p *Predictor) SetHasher(h Hasher) { p.hasher = h }

// Predict implements bpu.DirectionPredictor.
func (p *Predictor) Predict(pc uint64) bool {
	l := &p.last
	l.pc = pc
	l.provider, l.altBank = -1, -1
	l.usedLoop = false

	l.bimIdx = p.hasher.TableIndex(pc, 0, p.cfg.BimodalBits)
	bimPred := p.bimodal[l.bimIdx] >= 0

	// Tagged lookups, longest history wins. One pass computes every bank's
	// index/tag (Update's allocation needs them all) and picks the provider
	// and alternate as it goes.
	for b := len(p.banks) - 1; b >= 0; b-- {
		idx, tag := p.hasher.BankIndexTag(pc, p.fIdx[b].val, p.fTag[b].val^(p.fTag2[b].val<<1), b, p.cfg.IndexBits, p.cfg.TagBits)
		l.idxs[b], l.tags[b] = idx, tag
		if e := &p.banks[b][idx]; e.valid && e.tag == tag {
			if l.provider < 0 {
				l.provider = b
				l.provIdx = idx
			} else if l.altBank < 0 {
				l.altBank = b
				l.altIdx = idx
			}
		}
	}

	if l.altBank >= 0 {
		l.altPred = p.banks[l.altBank][l.altIdx].ctr >= 0
	} else {
		l.altPred = bimPred
	}
	if l.provider >= 0 {
		e := &p.banks[l.provider][l.provIdx]
		l.tagePred = e.ctr >= 0
		// Newly allocated (weak, not yet useful) entries may be worse
		// than the alternate prediction.
		l.weakProv = (e.ctr == 0 || e.ctr == -1) && e.useful == 0
		if l.weakProv && p.useAltOnNA >= 0 {
			l.tagePred = l.altPred
		}
	} else {
		l.tagePred = bimPred
		l.altPred = bimPred
	}
	l.finalPred = l.tagePred

	// Statistical corrector: revert low-confidence TAGE predictions when
	// the perceptron-style sum disagrees strongly.
	if p.cfg.UseSC {
		sum := 0
		for i := range p.scTables {
			idx := p.hasher.TableIndex(pc, p.scFolds[i].val, scTableBits)
			l.scIdxs[i] = idx
			sum += int(p.scTables[i][idx])
		}
		if l.tagePred {
			sum += p.scThresh / 2
		} else {
			sum -= p.scThresh / 2
		}
		l.scSum = sum
		scPred := sum >= 0
		if scPred != l.tagePred && absInt(sum) > p.scThresh {
			l.finalPred = scPred
		}
	}

	// Loop predictor overrides with high confidence.
	if p.cfg.UseLoop {
		if idx, e := p.loopLookup(pc); e != nil && e.confidence >= 3 && e.tripCount > 0 {
			l.usedLoop = true
			l.loopIdx = idx
			l.loopPred = e.currentIt+1 != e.tripCount
			l.finalPred = l.loopPred
		}
	}
	return l.finalPred
}

// Update implements bpu.DirectionPredictor.
func (p *Predictor) Update(pc uint64, taken bool) {
	l := &p.last
	if l.pc != pc {
		// Contract violation or flush between predict/update: fall back
		// to a fresh lookup so training still happens.
		p.Predict(pc)
	}
	mispredicted := l.finalPred != taken
	if mispredicted && l.provider >= 0 {
		p.TageMispredicts++
	}

	// Loop predictor training.
	if p.cfg.UseLoop {
		p.loopUpdate(pc, taken)
	}

	// Statistical corrector training: on mispredict or weak sum.
	if p.cfg.UseSC && (mispredicted || absInt(l.scSum) <= p.scThresh) {
		for i := range p.scTables {
			c := p.scTables[i][l.scIdxs[i]]
			if taken && c < 31 {
				p.scTables[i][l.scIdxs[i]] = c + 1
			} else if !taken && c > -32 {
				p.scTables[i][l.scIdxs[i]] = c - 1
			}
		}
	}

	// useAltOnNA bookkeeping.
	if l.provider >= 0 && l.weakProv {
		e := &p.banks[l.provider][l.provIdx]
		tageWasRight := (e.ctr >= 0) == taken
		altWasRight := l.altPred == taken
		if tageWasRight != altWasRight {
			if altWasRight {
				if p.useAltOnNA < 7 {
					p.useAltOnNA++
				}
			} else if p.useAltOnNA > -8 {
				p.useAltOnNA--
			}
		}
	}

	// Provider update.
	if l.provider >= 0 {
		e := &p.banks[l.provider][l.provIdx]
		updateCtr(&e.ctr, taken)
		// Usefulness trains only when provider and alternate disagreed:
		// the provider is useful exactly when it beat the alternate.
		if l.tagePred != l.altPred {
			if l.tagePred == taken && e.useful < 3 {
				e.useful++
			} else if l.tagePred != taken && e.useful > 0 {
				e.useful--
			}
		}
	} else {
		// Bimodal update.
		c := &p.bimodal[l.bimIdx]
		if taken && *c < 1 {
			*c++
		} else if !taken && *c > -2 {
			*c--
		}
	}

	// Allocation on TAGE mispredict: claim an entry in a longer bank.
	tageWrong := l.tagePred != taken
	if tageWrong && l.provider < len(p.banks)-1 {
		allocated := false
		for b := l.provider + 1; b < len(p.banks); b++ {
			e := &p.banks[b][l.idxs[b]]
			if !e.valid || e.useful == 0 {
				*e = entry{valid: true, tag: l.tags[b], ctr: ctrInit(taken)}
				allocated = true
				break
			}
		}
		if !allocated {
			// Decay usefulness so future allocations succeed.
			for b := l.provider + 1; b < len(p.banks); b++ {
				e := &p.banks[b][l.idxs[b]]
				if e.useful > 0 {
					e.useful--
				}
			}
		}
	}

	p.pushHistory(taken)
}

// Flush implements bpu.DirectionPredictor.
func (p *Predictor) Flush() {
	for i := range p.bimodal {
		p.bimodal[i] = -1
	}
	for b := range p.banks {
		for i := range p.banks[b] {
			p.banks[b][i] = entry{}
		}
	}
	for i := range p.fIdx {
		p.fIdx[i].reset()
		p.fTag[i].reset()
		p.fTag2[i].reset()
	}
	for i := range p.scFolds {
		p.scFolds[i].reset()
	}
	for i := range p.scTables {
		for j := range p.scTables[i] {
			p.scTables[i][j] = 0
		}
	}
	for i := range p.loops {
		p.loops[i] = loopEntry{}
	}
	p.hist = [maxHistoryBits]uint8{}
	p.histPos, p.histLen = 0, 0
	p.resetOldPositions()
	p.useAltOnNA = 0
	p.last = lookup{
		tags:   p.last.tags,
		idxs:   p.last.idxs,
		scIdxs: p.last.scIdxs,
	}
}

// resetOldPositions re-derives every old-outcome ring index from histPos
// (construction and flush; steady state advances them incrementally).
func (p *Predictor) resetOldPositions() {
	for i, l := range p.cfg.HistLens {
		p.oldPos[i] = int32((p.histPos - l + maxHistoryBits) % maxHistoryBits)
	}
	for i, l := range p.scLens {
		p.scOldPos[i] = int32((p.histPos - l + maxHistoryBits) % maxHistoryBits)
	}
}

// pushHistory shifts an outcome into the ring and all folded registers.
// The outgoing-outcome positions are maintained incrementally (one
// compare-and-wrap per bank) instead of re-normalized with loops and
// modulo arithmetic on every retired branch.
func (p *Predictor) pushHistory(taken bool) {
	bit := uint64(0)
	if taken {
		bit = 1
	}
	p.hist[p.histPos] = uint8(bit)
	for i := range p.fIdx {
		ob := uint64(p.hist[p.oldPos[i]])
		p.fIdx[i].update(bit, ob)
		p.fTag[i].update(bit, ob)
		p.fTag2[i].update(bit, ob)
		if p.oldPos[i]++; p.oldPos[i] == maxHistoryBits {
			p.oldPos[i] = 0
		}
	}
	for i, l := range p.scLens {
		if l > 0 {
			p.scFolds[i].update(bit, uint64(p.hist[p.scOldPos[i]]))
		}
		if p.scOldPos[i]++; p.scOldPos[i] == maxHistoryBits {
			p.scOldPos[i] = 0
		}
	}
	p.histPos++
	if p.histPos == maxHistoryBits {
		p.histPos = 0
	}
	if p.histLen < maxHistoryBits {
		p.histLen++
	}
}

func (p *Predictor) loopLookup(pc uint64) (int, *loopEntry) {
	idx := int(p.hasher.TableIndex(pc, 0, 6))
	tag := uint32(pc>>8) & 0x3fff
	e := &p.loops[idx]
	if e.age > 0 && e.tag == tag {
		return idx, e
	}
	return idx, nil
}

func (p *Predictor) loopUpdate(pc uint64, taken bool) {
	idx := int(p.hasher.TableIndex(pc, 0, 6))
	tag := uint32(pc>>8) & 0x3fff
	e := &p.loops[idx]
	if e.age == 0 || e.tag != tag {
		// Allocate on a not-taken outcome (potential loop exit).
		if !taken {
			if e.age == 0 {
				*e = loopEntry{tag: tag, age: 1}
			} else if e.age > 0 {
				e.age--
			}
		}
		return
	}
	if taken {
		e.currentIt++
		if e.currentIt == 0xffff {
			*e = loopEntry{}
		}
		return
	}
	// Loop exit observed.
	iters := e.currentIt + 1
	switch {
	case e.tripCount == 0:
		e.tripCount = iters
		e.confidence = 1
	case e.tripCount == iters:
		if e.confidence < 7 {
			e.confidence++
		}
		if e.age < 7 {
			e.age++
		}
	default:
		e.tripCount = iters
		e.confidence = 0
		if e.age > 0 {
			e.age--
		}
	}
	e.currentIt = 0
}

func updateCtr(c *int8, taken bool) {
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > -4 {
		*c--
	}
}

func ctrInit(taken bool) int8 {
	if taken {
		return 0
	}
	return -1
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
