package tage

import (
	"testing"

	"stbpu/internal/rng"
	"stbpu/internal/trace"
)

// train runs pattern(i) through the predictor and returns accuracy over the
// last half (post-warmup).
func train(p *Predictor, n int, pattern func(i int) (pc uint64, taken bool)) float64 {
	correct, counted := 0, 0
	for i := 0; i < n; i++ {
		pc, taken := pattern(i)
		pred := p.Predict(pc)
		if i >= n/2 {
			counted++
			if pred == taken {
				correct++
			}
		}
		p.Update(pc, taken)
	}
	return float64(correct) / float64(counted)
}

func TestFoldedRegister(t *testing.T) {
	f := newFolded(10, 4)
	// Push 10 ones then 10 zeros: after the zeros have fully displaced the
	// ones the register must return to its all-zero state.
	for i := 0; i < 10; i++ {
		f.update(1, 0)
	}
	if f.val == 0 {
		t.Error("folded register ignored history")
	}
	hist := []uint64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	for i := 0; i < 10; i++ {
		f.update(0, hist[0])
		hist = append(hist[1:], 0)
	}
	if f.val != 0 {
		t.Errorf("folded register did not return to zero: %#x", f.val)
	}
	if f.val >= 1<<f.compLen {
		t.Error("folded register exceeded width")
	}
}

func TestBiasedBranch(t *testing.T) {
	p := New(Config8KB())
	acc := train(p, 2000, func(i int) (uint64, bool) { return 0x401000, true })
	if acc < 0.99 {
		t.Errorf("biased accuracy %.3f", acc)
	}
}

func TestAlternatingPattern(t *testing.T) {
	p := New(Config8KB())
	acc := train(p, 2000, func(i int) (uint64, bool) { return 0x402000, i%2 == 0 })
	if acc < 0.95 {
		t.Errorf("alternating accuracy %.3f", acc)
	}
}

func TestLongPeriodLoop(t *testing.T) {
	// Period-40 loop: beyond SKLCond's GHR window; TAGE's long histories
	// (or the loop predictor) must capture it.
	p := New(Config64KB())
	acc := train(p, 8000, func(i int) (uint64, bool) { return 0x403000, i%40 != 39 })
	if acc < 0.95 {
		t.Errorf("period-40 loop accuracy %.3f", acc)
	}
}

func TestLoopPredictorDisabled(t *testing.T) {
	cfg := Config64KB()
	cfg.UseLoop = false
	p := New(cfg)
	// Must still work (accuracy may be lower on exact trip counts).
	acc := train(p, 8000, func(i int) (uint64, bool) { return 0x403000, i%8 != 7 })
	if acc < 0.80 {
		t.Errorf("no-loop accuracy %.3f", acc)
	}
}

func TestCorrelatedBranches(t *testing.T) {
	// Branch B's outcome equals branch A's previous outcome: pure history
	// correlation that a bimodal counter cannot learn.
	p := New(Config8KB())
	r := rng.New(9)
	lastA := false
	correct, counted := 0, 0
	const n = 6000
	for i := 0; i < n; i++ {
		a := r.Bool(0.5)
		p.Predict(0x500000)
		p.Update(0x500000, a)
		lastA = a
		pred := p.Predict(0x500100)
		taken := lastA
		if i > n/2 {
			counted++
			if pred == taken {
				correct++
			}
		}
		p.Update(0x500100, taken)
	}
	acc := float64(correct) / float64(counted)
	if acc < 0.9 {
		t.Errorf("correlated accuracy %.3f, want >= 0.9", acc)
	}
}

func TestBeatsBimodalOnHistoryPatterns(t *testing.T) {
	// Same workload through TAGE and a plain 2-bit counter: TAGE must win
	// decisively on history-driven branches.
	p := New(Config8KB())
	counters := map[uint64]int8{}
	r := rng.New(17)
	var ghist uint64
	tageCorrect, bimCorrect, total := 0, 0, 0
	const n = 8000
	for i := 0; i < n; i++ {
		pc := uint64(0x600000 + (i%4)*0x40)
		taken := (ghist>>1&1)^(ghist>>3&1) == 1
		if r.Bool(0.02) {
			taken = !taken
		}
		if p.Predict(pc) == taken {
			tageCorrect++
		}
		p.Update(pc, taken)
		c := counters[pc]
		if (c >= 0) == taken {
			bimCorrect++
		}
		if taken && c < 1 {
			counters[pc] = c + 1
		} else if !taken && c > -2 {
			counters[pc] = c - 1
		}
		ghist = ghist<<1 | b2u(taken)
		total++
	}
	tageAcc := float64(tageCorrect) / float64(total)
	bimAcc := float64(bimCorrect) / float64(total)
	if tageAcc < bimAcc+0.2 {
		t.Errorf("TAGE %.3f vs bimodal %.3f: expected clear win", tageAcc, bimAcc)
	}
}

func TestFlushClearsState(t *testing.T) {
	p := New(Config8KB())
	train(p, 1000, func(i int) (uint64, bool) { return 0x401000, true })
	p.Flush()
	if p.Predict(0x401000) {
		t.Error("flushed predictor should default to not-taken")
	}
	if p.TageMispredicts != 0 {
		// Flush does not reset the MSR-style counter; the token layer
		// owns it. Just document the behaviour.
		t.Log("TageMispredicts preserved across Flush (counter is MSR-owned)")
	}
}

func TestUpdateWithoutPredictRecovers(t *testing.T) {
	p := New(Config8KB())
	// Violating the stash contract must not corrupt state.
	p.Update(0x1234, true)
	p.Predict(0x1234)
}

func TestConfigsDiffer(t *testing.T) {
	small, large := Config8KB(), Config64KB()
	if len(small.HistLens) >= len(large.HistLens) {
		t.Error("64KB config should have more banks")
	}
	if small.IndexBits != 10 || small.TagBits != 8 {
		t.Errorf("8KB geometry %d/%d, want 10/8 (Table II)", small.IndexBits, small.TagBits)
	}
	if large.IndexBits != 13 || large.TagBits != 12 {
		t.Errorf("64KB geometry %d/%d, want 13/12 (Table II)", large.IndexBits, large.TagBits)
	}
}

func TestPanicsOnEmptyConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{})
}

func Test64KBBeats8KBOnWideWorkload(t *testing.T) {
	// Many static branches with varied correlation: the larger tables
	// should hold more context.
	run := func(cfg Config) float64 {
		p := New(cfg)
		r := rng.New(33)
		var ghist uint64
		correct, total := 0, 0
		const n = 30000
		for i := 0; i < n; i++ {
			pc := uint64(0x400000 + r.Intn(512)*16)
			tap := pc >> 4 & 7
			taken := ghist>>tap&1 == 1
			pred := p.Predict(pc)
			if i > n/2 {
				total++
				if pred == taken {
					correct++
				}
			}
			p.Update(pc, taken)
			ghist = ghist<<1 | b2u(taken)
		}
		return float64(correct) / float64(total)
	}
	small := run(Config8KB())
	large := run(Config64KB())
	if large < small-0.02 {
		t.Errorf("64KB (%.3f) should not lose to 8KB (%.3f)", large, small)
	}
}

func TestOnSyntheticTrace(t *testing.T) {
	p, err := trace.Preset("505.mcf")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Generate(p.WithRecords(120_000))
	if err != nil {
		t.Fatal(err)
	}
	pred := New(Config64KB())
	correct, total := 0, 0
	for _, rec := range tr.Records {
		if rec.Kind != trace.KindCond {
			continue
		}
		if pred.Predict(rec.PC) == rec.Taken {
			correct++
		}
		pred.Update(rec.PC, rec.Taken)
		total++
	}
	acc := float64(correct) / float64(total)
	// mcf is the hard class: a large fraction of its branches are
	// near-random by construction, and the live-system trace interleaves
	// a background process plus kernel bursts.
	if acc < 0.68 {
		t.Errorf("TAGE on mcf conditionals = %.3f", acc)
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func BenchmarkPredictUpdate64KB(b *testing.B) {
	p := New(Config64KB())
	r := rng.New(1)
	pcs := make([]uint64, 1024)
	for i := range pcs {
		pcs[i] = 0x400000 + uint64(r.Intn(4096))*16
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := pcs[i%len(pcs)]
		taken := p.Predict(pc)
		p.Update(pc, !taken == (i%7 == 0))
	}
}
