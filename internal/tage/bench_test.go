package tage

import (
	"testing"

	"stbpu/internal/rng"
)

// benchStream builds a deterministic PC/outcome stream with loopy,
// history-correlated behavior so the tagged banks, SC, and loop predictor
// all see realistic work.
func benchStream(n int) (pcs []uint64, taken []bool) {
	pcs = make([]uint64, n)
	taken = make([]bool, n)
	s := uint64(0xbadc0de)
	for i := range pcs {
		r := rng.SplitMix64(&s)
		pcs[i] = 0x400000 + (r%512)<<2
		// Mix of biased, history-correlated, and loop-like outcomes.
		switch pcs[i] % 3 {
		case 0:
			taken[i] = r>>8&7 != 0 // strongly taken
		case 1:
			taken[i] = i%7 != 6 // 7-iteration loop shape
		default:
			taken[i] = r>>16&1 == 1
		}
	}
	return pcs, taken
}

const benchMask = 1<<14 - 1

func benchPredictor(b *testing.B, cfg Config) (*Predictor, []uint64, []bool) {
	b.Helper()
	p := New(cfg)
	pcs, taken := benchStream(benchMask + 1)
	for i := 0; i < benchMask+1; i++ {
		p.Predict(pcs[i])
		p.Update(pcs[i], taken[i])
	}
	return p, pcs, taken
}

func BenchmarkPredict(b *testing.B) {
	for _, cfg := range []Config{Config8KB(), Config64KB()} {
		b.Run(cfg.Name, func(b *testing.B) {
			p, pcs, _ := benchPredictor(b, cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Predict(pcs[i&benchMask])
			}
		})
	}
}

// BenchmarkUpdate measures the full predict/update pair — Update consumes
// the lookup Predict stashes, so the pair is the unit the replay loop pays
// per conditional branch.
func BenchmarkUpdate(b *testing.B) {
	for _, cfg := range []Config{Config8KB(), Config64KB()} {
		b.Run(cfg.Name, func(b *testing.B) {
			p, pcs, taken := benchPredictor(b, cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Predict(pcs[i&benchMask])
				p.Update(pcs[i&benchMask], taken[i&benchMask])
			}
		})
	}
}
