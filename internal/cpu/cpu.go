// Package cpu is the cycle-level out-of-order CPU model substituting for
// the paper's gem5 DerivO3CPU evaluation (Table IV; see DESIGN.md for the
// substitution argument). It implements an interval-style timing model
// (Genbrugge/Eyerman/Eeckhout): sustained dispatch at core width,
// punctuated by miss events — branch mispredictions (front-end redirect +
// refill), BTB misses (fetch bubbles), and long-latency cache misses
// (partially hidden by the reorder buffer).
//
// What matters for Figs. 4-6 is that the model couples prediction quality
// to IPC the same way gem5's pipeline does: every extra misprediction
// costs a squash window, so the ST-vs-unprotected IPC delta tracks the
// prediction-rate delta.
package cpu

import (
	"context"

	"stbpu/internal/bpu"
	"stbpu/internal/cache"
	"stbpu/internal/sim"
	"stbpu/internal/stats"
	"stbpu/internal/trace"
)

// Config parameterizes the core (defaults per Table IV).
type Config struct {
	// Width is the issue/dispatch width (8).
	Width int
	// ROB is the reorder buffer depth (192).
	ROB int
	// IQ, LQ, SQ are queue sizes (64/32/32); they bound the overlap
	// window for load misses.
	IQ, LQ, SQ int
	// MispredictPenalty is the front-end redirect + refill cost.
	MispredictPenalty int
	// BTBMissPenalty is the fetch bubble for a taken branch without a
	// target.
	BTBMissPenalty int

	// InstrPerBranch is the mean non-branch instructions per branch
	// record (workload dependent; ~5 for SPEC int).
	InstrPerBranch int
	// LoadFrac is the fraction of non-branch instructions that access
	// memory.
	LoadFrac float64
	// DataFootprint is the synthesized data working-set size in bytes.
	DataFootprint uint64
}

// TableIVConfig returns the paper's gem5 core configuration.
func TableIVConfig() Config {
	return Config{
		Width:             8,
		ROB:               192,
		IQ:                64,
		LQ:                32,
		SQ:                32,
		MispredictPenalty: 16,
		BTBMissPenalty:    8,
		InstrPerBranch:    5,
		LoadFrac:          0.3,
		DataFootprint:     8 << 20,
	}
}

// Result is one core-simulation outcome.
type Result struct {
	Workload     string
	Model        string
	Instructions uint64
	Cycles       uint64
	Branch       sim.Result
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	return stats.Ratio(r.Instructions, r.Cycles)
}

// Core is a single simulated OoO core.
type Core struct {
	cfg Config
	mem *cache.Hierarchy
	bpu sim.Model
}

// New builds a core around a BPU model with a fresh Table IV cache
// hierarchy.
func New(cfg Config, bpuModel sim.Model) *Core {
	return &Core{cfg: cfg, mem: cache.TableIVHierarchy(), bpu: bpuModel}
}

// Hierarchy exposes the cache hierarchy (tests inspect hit rates).
func (c *Core) Hierarchy() *cache.Hierarchy { return c.mem }

// loadAddr synthesizes a data address for load l of a block with realistic
// locality: ~90% of accesses fall in a hot 64KB region, ~9% in a warm 1MB
// region, and the rest sweep the full footprint — giving the L1/L2/LLC hit
// rates real SPEC workloads exhibit.
func (c *Core) loadAddr(h uint64, l int) uint64 {
	return loadAddr(c.cfg.DataFootprint, h, l)
}

// loadAddr is the shared address synthesizer used by both timing engines.
func loadAddr(footprint, h uint64, l int) uint64 {
	x := h>>8 ^ uint64(l)*0x2545f4914f6cdd1d
	x ^= x >> 31
	x *= 0x9e3779b97f4a7c15
	region := uint64(64 << 10)
	switch sel := (x >> 56) % 100; {
	case sel >= 99:
		region = footprint
	case sel >= 90:
		region = 1 << 20
	}
	if region > footprint {
		region = footprint
	}
	return (x % region) &^ 0x3f
}

// recHash derives deterministic per-record variation (instruction count,
// load addresses) from the record itself, so protected and unprotected
// models see the *identical* instruction stream.
func recHash(rec trace.Record, i int) uint64 {
	h := rec.PC ^ uint64(i)*0x9e3779b97f4a7c15 ^ rec.Target<<1
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 29
	return h
}

// Run executes a trace through the core and returns timing + branch
// statistics.
func (c *Core) Run(tr *trace.Trace) Result {
	res, _ := c.RunCtx(context.Background(), tr)
	return res
}

// runCheckInterval is how many records the timing loops execute between
// context checks (mirrors sim.RunCtx).
const runCheckInterval = 8192

// RunCtx is Run with cancellation: it aborts with ctx.Err() when the
// context is canceled mid-trace.
func (c *Core) RunCtx(ctx context.Context, tr *trace.Trace) (Result, error) {
	res := Result{Workload: tr.Name, Model: c.bpu.Name()}
	var cycles, instrs uint64
	robOverlap := uint64(c.cfg.ROB / c.cfg.Width)

	for i, rec := range tr.Records {
		if i%runCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		h := recHash(rec, i)
		block := 1 + int(h%uint64(2*c.cfg.InstrPerBranch)) // mean ≈ IPB
		instrs += uint64(block) + 1                        // block + the branch

		// Dispatch the block at core width.
		cycles += uint64((block + c.cfg.Width - 1) / c.cfg.Width)

		// Instruction fetch misses stall the front end.
		il := c.mem.AccessInstr(rec.PC)
		if il > 4 {
			cycles += uint64(il) / 2 // partially pipelined fetch
		}

		// Loads: long-latency misses are hidden up to the ROB fill time;
		// consecutive misses in the same block overlap (MLP 2).
		nLoads := int(float64(block) * c.cfg.LoadFrac)
		pendingStall := uint64(0)
		for l := 0; l < nLoads; l++ {
			lat := uint64(c.mem.AccessData(c.loadAddr(h, l)))
			if lat > robOverlap {
				pendingStall += (lat - robOverlap) / 2 // MLP overlap
			}
		}
		cycles += pendingStall

		// The branch itself.
		_, ev := c.bpu.Step(rec)
		accountBranch(&res.Branch, ev)
		if ev.Mispredict {
			cycles += uint64(c.cfg.MispredictPenalty)
		} else if ev.BTBMiss {
			cycles += uint64(c.cfg.BTBMissPenalty)
		}
	}
	res.Branch.Model = c.bpu.Name()
	res.Branch.Workload = tr.Name
	res.Branch.Records = len(tr.Records)
	res.Instructions = instrs
	res.Cycles = cycles
	return res, nil
}

// SMTResult is a two-thread co-run outcome.
type SMTResult struct {
	Workloads [2]string
	Model     string
	// PerThread are the per-thread timing results.
	PerThread [2]Result
	// Cycles is the shared-core total.
	Cycles uint64
}

// HarmonicMeanIPC is the throughput metric of Fig. 5 (Michaud): the
// harmonic mean of per-thread IPCs.
func (r SMTResult) HarmonicMeanIPC() float64 {
	hm, err := stats.HarmonicMean([]float64{r.PerThread[0].IPC(), r.PerThread[1].IPC()})
	if err != nil {
		return 0
	}
	return hm
}

// RunSMT co-runs two traces on one core in SMT mode: records interleave
// round-robin (ICOUNT-style fairness), the BPU and caches are shared, and
// both threads accumulate cycles on the shared clock.
func (c *Core) RunSMT(a, b *trace.Trace) SMTResult {
	res, _ := c.RunSMTCtx(context.Background(), a, b)
	return res
}

// RunSMTCtx is RunSMT with cancellation: it aborts with ctx.Err() when the
// context is canceled mid-co-run.
func (c *Core) RunSMTCtx(ctx context.Context, a, b *trace.Trace) (SMTResult, error) {
	res := SMTResult{Workloads: [2]string{a.Name, b.Name}, Model: c.bpu.Name()}
	res.PerThread[0] = Result{Workload: a.Name, Model: c.bpu.Name()}
	res.PerThread[1] = Result{Workload: b.Name, Model: c.bpu.Name()}
	robOverlap := uint64(c.cfg.ROB / c.cfg.Width / 2) // window shared by threads

	traces := [2]*trace.Trace{a, b}
	idx := [2]int{}
	var cycles, rounds uint64
	for idx[0] < len(a.Records) || idx[1] < len(b.Records) {
		if rounds%runCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return SMTResult{}, err
			}
		}
		rounds++
		for t := 0; t < 2; t++ {
			tr := traces[t]
			if idx[t] >= len(tr.Records) {
				continue
			}
			rec := tr.Records[idx[t]]
			// SMT threads must not collide in the token table: offset
			// thread 1's PIDs into a disjoint range.
			if t == 1 {
				rec.PID += 1 << 16
				rec.Program += 1 << 12
			}
			i := idx[t]
			idx[t]++

			h := recHash(rec, i)
			block := 1 + int(h%uint64(2*c.cfg.InstrPerBranch))
			th := &res.PerThread[t]
			th.Instructions += uint64(block) + 1

			cycles += uint64((block + c.cfg.Width - 1) / c.cfg.Width)
			il := c.mem.AccessInstr(rec.PC)
			if il > 4 {
				cycles += uint64(il) / 2
			}
			nLoads := int(float64(block) * c.cfg.LoadFrac)
			for l := 0; l < nLoads; l++ {
				lat := uint64(c.mem.AccessData(c.loadAddr(h, l)))
				if lat > robOverlap {
					cycles += (lat - robOverlap) / 2
				}
			}
			_, ev := c.bpu.Step(rec)
			accountBranch(&th.Branch, ev)
			if ev.Mispredict {
				cycles += uint64(c.cfg.MispredictPenalty)
			} else if ev.BTBMiss {
				cycles += uint64(c.cfg.BTBMissPenalty)
			}
		}
	}
	res.Cycles = cycles
	res.PerThread[0].Cycles = cycles
	res.PerThread[1].Cycles = cycles
	res.PerThread[0].Branch.Records = len(a.Records)
	res.PerThread[1].Branch.Records = len(b.Records)
	return res, nil
}

// accountBranch mirrors sim.Run's event accounting for one record.
func accountBranch(r *sim.Result, ev bpu.Events) {
	if ev.Mispredict {
		r.Mispredicts++
	}
	if ev.IsCond {
		r.Conds++
		if ev.DirCorrect {
			r.DirCorrect++
		}
	}
	if ev.TargetKnown {
		r.TargetKnown++
		if ev.TargetCorrect {
			r.TargetCorrect++
		}
	}
	if ev.BTBEviction {
		r.Evictions++
	}
	if ev.BTBMiss {
		r.BTBMisses++
	}
}
