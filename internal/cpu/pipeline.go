package cpu

// pipeline.go is the stage-driven engine: an explicit out-of-order
// pipeline with a reorder buffer, issue queue, load/store queues,
// functional-unit ports, and a decoupled front end. It complements the
// interval model in cpu.go: the interval model charges a *fixed* penalty
// per misprediction, while here the penalty emerges from the machine state
// — a branch that depends on a missing load resolves late, holds the
// front end longer, and costs more, exactly the coupling gem5's
// DerivO3CPU exhibits. The ablation bench compares both engines.
//
// It is trace-driven: wrong-path execution is not simulated (records are
// the correct path); a misprediction instead blocks the front end from
// the fetch of the mispredicted branch until its resolution plus a
// redirect penalty, the standard trace-driven approximation.

import (
	"fmt"

	"stbpu/internal/cache"
	"stbpu/internal/sim"
	"stbpu/internal/trace"
)

// opKind classifies micro-ops.
type opKind uint8

const (
	opALU opKind = iota
	opLoad
	opStore
	opBranch
)

// uop is one in-flight micro-op.
type uop struct {
	kind opKind
	seq  uint64
	// deps are producer sequence numbers; ^uint64(0) means none.
	deps [2]uint64
	// addr is the data address for loads/stores.
	addr uint64
	// lat is the execution latency once issued (loads resolve it against
	// the cache at issue time).
	lat uint64

	thread int

	// branch bookkeeping
	isBranch   bool
	mispredict bool
	btbMiss    bool

	issued     bool
	done       bool
	doneCycle  uint64
	fetchCycle uint64
}

const noDep = ^uint64(0)

// PipelineConfig extends the core Config with stage-model parameters.
type PipelineConfig struct {
	Config
	// FetchQueue is the decoupled fetch buffer depth (default 2×Width).
	FetchQueue int
	// RedirectPenalty is the post-resolution front-end redirect cost
	// (default 3; the bulk of a misprediction's cost is the resolution
	// delay itself).
	RedirectPenalty int
	// ALUPorts, LoadPorts, StorePorts, BranchPorts bound per-cycle issue
	// by kind (defaults 4/2/1/1).
	ALUPorts, LoadPorts, StorePorts, BranchPorts int
	// DepChance4 is the per-op chance in quarters (0..4) that an op
	// depends on its predecessor, steering dependency-chain depth
	// (default 2 ≈ 50%).
	DepChance4 int
}

// DefaultPipelineConfig returns the Table IV core as a pipeline model.
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{
		Config:          TableIVConfig(),
		FetchQueue:      16,
		RedirectPenalty: 3,
		ALUPorts:        4,
		LoadPorts:       2,
		StorePorts:      1,
		BranchPorts:     1,
		DepChance4:      2,
	}
}

// Validate rejects degenerate geometries.
func (c PipelineConfig) Validate() error {
	if c.Width <= 0 || c.ROB <= 0 || c.IQ <= 0 || c.LQ <= 0 || c.SQ <= 0 {
		return fmt.Errorf("cpu: non-positive structure size in %+v", c.Config)
	}
	if c.FetchQueue <= 0 {
		return fmt.Errorf("cpu: non-positive fetch queue %d", c.FetchQueue)
	}
	if c.ALUPorts <= 0 || c.LoadPorts <= 0 || c.StorePorts <= 0 || c.BranchPorts <= 0 {
		return fmt.Errorf("cpu: non-positive port count")
	}
	return nil
}

// PipelineStats reports where cycles went.
type PipelineStats struct {
	Cycles       uint64
	Instructions uint64

	FetchStallCycles    uint64 // front end blocked on redirect/icache
	DispatchStallCycles uint64 // ROB/IQ/LQ/SQ full
	Squashes            uint64
	// ResolveLatencySum / Squashes is the mean misprediction resolution
	// delay (fetch-to-execute of the mispredicted branch).
	ResolveLatencySum uint64
}

// IPC returns instructions per cycle.
func (s PipelineStats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// MeanResolveLatency is the average misprediction resolution delay.
func (s PipelineStats) MeanResolveLatency() float64 {
	if s.Squashes == 0 {
		return 0
	}
	return float64(s.ResolveLatencySum) / float64(s.Squashes)
}

// opStream turns a record stream into the deterministic µop sequence both
// engines share: `block` ALU/load ops followed by the branch op. The
// expansion depends only on the record and its index, so protected and
// unprotected models compare on identical instruction streams.
type opStream struct {
	cfg    *PipelineConfig
	core   *PipelineCore
	trace  *trace.Trace
	thread int

	idx     int    // next record
	pending []uop  // ops of the current record not yet emitted
	seq     uint64 // per-thread op sequence
}

func (s *opStream) exhausted() bool { return s.idx >= len(s.trace.Records) && len(s.pending) == 0 }

// refill expands the next record into pending µops.
func (s *opStream) refill() {
	if len(s.pending) > 0 || s.idx >= len(s.trace.Records) {
		return
	}
	rec := s.trace.Records[s.idx]
	if s.thread == 1 {
		// SMT thread separation in the shared token table.
		rec.PID += 1 << 16
		rec.Program += 1 << 12
	}
	i := s.idx
	s.idx++

	h := recHash(rec, i)
	block := 1 + int(h%uint64(2*s.cfg.InstrPerBranch))
	nLoads := int(float64(block) * s.cfg.LoadFrac)

	// Front-end events for this record: icache access now (fetch time),
	// prediction via the BPU model.
	il := s.core.mem.AccessInstr(rec.PC)
	if il > 4 {
		s.core.icacheStall += uint64(il) / 2
	}
	_, ev := s.core.bpu.Step(rec)
	accountBranch(&s.core.branch[s.thread], ev)

	ops := make([]uop, 0, block+1)
	for j := 0; j < block; j++ {
		op := uop{kind: opALU, lat: 1, thread: s.thread, deps: [2]uint64{noDep, noDep}}
		if j < nLoads {
			op.kind = opLoad
			op.addr = loadAddr(s.cfg.DataFootprint, h, j)
		} else if j == nLoads && h>>16%8 == 0 {
			op.kind = opStore
			op.addr = loadAddr(s.cfg.DataFootprint, h, j)
			op.lat = 1
		}
		// Dependency chain: with probability DepChance4/4 an op depends
		// on its predecessor, deterministically from the hash.
		if j > 0 && int(h>>(8+j*2)%4) < s.cfg.DepChance4 {
			op.deps[0] = s.seq + uint64(j) - 1
		}
		ops = append(ops, op)
	}
	br := uop{
		kind:       opBranch,
		lat:        1,
		thread:     s.thread,
		isBranch:   true,
		mispredict: ev.Mispredict,
		btbMiss:    ev.BTBMiss,
		deps:       [2]uint64{noDep, noDep},
	}
	// A conditional branch consumes the last produced value: its
	// resolution waits for the dependency chain (load-dependent branches
	// resolve late — the fidelity the stage model adds).
	if block > 0 {
		br.deps[0] = s.seq + uint64(block) - 1
	}
	ops = append(ops, br)

	for j := range ops {
		ops[j].seq = s.seq
		s.seq++
	}
	s.pending = ops
}

// next pops one µop; ok is false when the stream is drained.
func (s *opStream) next() (uop, bool) {
	s.refill()
	if len(s.pending) == 0 {
		return uop{}, false
	}
	op := s.pending[0]
	s.pending = s.pending[1:]
	return op, true
}

// FetchPolicy selects the fetching thread each cycle in SMT mode.
type FetchPolicy int

const (
	// PolicyRoundRobin alternates threads cycle by cycle.
	PolicyRoundRobin FetchPolicy = iota
	// PolicyICount fetches for the thread with fewer in-flight µops
	// (Tullsen's ICOUNT), starving stalled threads of front-end slots.
	PolicyICount
)

// String names the policy.
func (p FetchPolicy) String() string {
	switch p {
	case PolicyRoundRobin:
		return "round-robin"
	case PolicyICount:
		return "icount"
	default:
		return fmt.Sprintf("FetchPolicy(%d)", int(p))
	}
}

// PipelineCore is the stage-driven engine.
type PipelineCore struct {
	cfg PipelineConfig
	mem *cache.Hierarchy
	bpu sim.Model

	// architectural queues
	rob   []*uop // in order; head = oldest
	iq    []*uop // unissued ops
	lq    int
	sq    int
	fetch []*uop

	streams  []*opStream
	policy   FetchPolicy
	inflight [2]int

	cycle       uint64
	icacheStall uint64 // accumulated at fetch by opStream

	// front-end blocking: a mispredicted branch stalls fetch from its
	// dispatch until resolution + redirect.
	fetchBlockedBy *uop
	fetchStallTill uint64

	// lastCommitted[t] is the newest retired sequence number of thread t
	// plus one; commit is in order, so every seq below it has completed.
	lastCommitted [2]uint64

	stats  [2]PipelineStats
	branch [2]sim.Result
}

// NewPipeline builds a stage-driven core around a BPU model.
func NewPipeline(cfg PipelineConfig, bpuModel sim.Model) (*PipelineCore, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &PipelineCore{
		cfg:    cfg,
		mem:    cache.TableIVHierarchy(),
		bpu:    bpuModel,
		policy: PolicyICount,
	}, nil
}

// SetFetchPolicy selects the SMT fetch policy (default ICOUNT).
func (p *PipelineCore) SetFetchPolicy(f FetchPolicy) { p.policy = f }

// Run executes one trace and returns its pipeline statistics.
func (p *PipelineCore) Run(tr *trace.Trace) PipelineStats {
	p.streams = []*opStream{{cfg: &p.cfg, core: p, trace: tr}}
	p.simulate()
	st := p.stats[0]
	st.Cycles = p.cycle
	return st
}

// BranchResult exposes the per-thread branch accounting of the last run.
func (p *PipelineCore) BranchResult(thread int) sim.Result {
	r := p.branch[thread]
	r.Model = p.bpu.Name()
	return r
}

// RunSMT co-runs two traces; the returned stats share the Cycles field.
func (p *PipelineCore) RunSMT(a, b *trace.Trace) [2]PipelineStats {
	p.streams = []*opStream{
		{cfg: &p.cfg, core: p, trace: a, thread: 0},
		{cfg: &p.cfg, core: p, trace: b, thread: 1},
	}
	p.simulate()
	out := [2]PipelineStats{p.stats[0], p.stats[1]}
	out[0].Cycles = p.cycle
	out[1].Cycles = p.cycle
	return out
}

func (p *PipelineCore) drained() bool {
	for _, s := range p.streams {
		if !s.exhausted() {
			return false
		}
	}
	return len(p.rob) == 0 && len(p.fetch) == 0
}

// simulate runs the cycle loop: commit → writeback → issue → dispatch →
// fetch (reverse stage order so a µop moves one stage per cycle).
func (p *PipelineCore) simulate() {
	p.rob = p.rob[:0]
	p.iq = p.iq[:0]
	p.fetch = p.fetch[:0]
	p.lq, p.sq = 0, 0
	p.cycle = 0
	p.inflight = [2]int{}
	p.stats = [2]PipelineStats{}
	p.branch = [2]sim.Result{}
	p.fetchBlockedBy = nil
	p.fetchStallTill = 0
	p.lastCommitted = [2]uint64{}

	const safetyCap = 1 << 28 // defensive bound against scheduling bugs
	for !p.drained() {
		p.commitStage()
		p.writebackStage()
		p.issueStage()
		p.dispatchStage()
		p.fetchStage()
		p.cycle++
		if p.cycle > safetyCap {
			panic("cpu: pipeline failed to drain (scheduling deadlock)")
		}
	}
}

// commitStage retires completed µops in order, freeing LQ/SQ slots.
func (p *PipelineCore) commitStage() {
	n := 0
	for len(p.rob) > 0 && n < p.cfg.Width {
		op := p.rob[0]
		if !op.done {
			break
		}
		switch op.kind {
		case opLoad:
			p.lq--
		case opStore:
			p.sq--
		}
		p.inflight[op.thread]--
		p.stats[op.thread].Instructions++
		p.lastCommitted[op.thread] = op.seq + 1
		p.rob = p.rob[1:]
		n++
	}
}

// writebackStage completes µops whose latency elapsed; a resolving
// mispredicted branch unblocks the front end after the redirect penalty.
func (p *PipelineCore) writebackStage() {
	for _, op := range p.rob {
		if op.issued && !op.done && op.doneCycle <= p.cycle {
			op.done = true
			if op.isBranch && op == p.fetchBlockedBy {
				p.fetchBlockedBy = nil
				p.fetchStallTill = p.cycle + uint64(p.cfg.RedirectPenalty)
				p.stats[op.thread].Squashes++
				p.stats[op.thread].ResolveLatencySum += p.cycle - op.fetchCycle
			}
		}
	}
}

// ready reports whether every producer of op has completed: either
// retired (seq below the in-order commit horizon) or done in the ROB.
func (p *PipelineCore) ready(op *uop, doneBySeq map[uint64]bool) bool {
	for _, d := range op.deps {
		if d == noDep {
			continue
		}
		if d < p.lastCommitted[op.thread] {
			continue
		}
		if !doneBySeq[d<<1|uint64(op.thread)] {
			return false
		}
	}
	return true
}

// issueStage picks ready µops from the issue queue within port limits.
func (p *PipelineCore) issueStage() {
	if len(p.iq) == 0 {
		return
	}
	// Completion lookup for dependency checks.
	doneBySeq := make(map[uint64]bool, len(p.rob))
	for _, op := range p.rob {
		if op.done {
			doneBySeq[op.seq<<1|uint64(op.thread)] = true
		}
	}
	ports := map[opKind]int{
		opALU:    p.cfg.ALUPorts,
		opLoad:   p.cfg.LoadPorts,
		opStore:  p.cfg.StorePorts,
		opBranch: p.cfg.BranchPorts,
	}
	issued, kept := 0, p.iq[:0]
	for _, op := range p.iq {
		if issued >= p.cfg.Width || ports[op.kind] == 0 || !p.ready(op, doneBySeq) {
			kept = append(kept, op)
			continue
		}
		ports[op.kind]--
		issued++
		op.issued = true
		lat := op.lat
		if op.kind == opLoad {
			lat = uint64(p.mem.AccessData(op.addr))
		}
		op.doneCycle = p.cycle + lat
	}
	p.iq = kept
}

// dispatchStage moves µops from the fetch buffer into the ROB/IQ,
// stalling on any full structure.
func (p *PipelineCore) dispatchStage() {
	n := 0
	for len(p.fetch) > 0 && n < p.cfg.Width {
		op := p.fetch[0]
		if len(p.rob) >= p.cfg.ROB || len(p.iq) >= p.cfg.IQ ||
			(op.kind == opLoad && p.lq >= p.cfg.LQ) ||
			(op.kind == opStore && p.sq >= p.cfg.SQ) {
			p.stats[op.thread].DispatchStallCycles++
			return
		}
		switch op.kind {
		case opLoad:
			p.lq++
		case opStore:
			p.sq++
		}
		p.rob = append(p.rob, op)
		p.iq = append(p.iq, op)
		p.fetch = p.fetch[1:]
		n++
	}
}

// pickThread applies the SMT fetch policy.
func (p *PipelineCore) pickThread() *opStream {
	live := make([]*opStream, 0, 2)
	for _, s := range p.streams {
		if !s.exhausted() {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	if p.policy == PolicyRoundRobin {
		return live[int(p.cycle)%2]
	}
	if p.inflight[live[0].thread] <= p.inflight[live[1].thread] {
		return live[0]
	}
	return live[1]
}

// fetchStage fills the fetch buffer unless the front end is blocked by an
// unresolved misprediction, a redirect, or an icache refill.
func (p *PipelineCore) fetchStage() {
	if p.fetchBlockedBy != nil {
		p.chargeFetchStall()
		return
	}
	if p.icacheStall > 0 {
		p.icacheStall--
		p.chargeFetchStall()
		return
	}
	if p.cycle < p.fetchStallTill {
		p.chargeFetchStall()
		return
	}
	s := p.pickThread()
	if s == nil {
		return
	}
	for n := 0; n < p.cfg.Width && len(p.fetch) < p.cfg.FetchQueue; n++ {
		op, ok := s.next()
		if !ok {
			return
		}
		op.fetchCycle = p.cycle
		fetched := &op
		p.fetch = append(p.fetch, fetched)
		p.inflight[op.thread]++
		if op.isBranch {
			if op.mispredict {
				p.fetchBlockedBy = fetched
				return
			}
			if op.btbMiss {
				p.fetchStallTill = p.cycle + uint64(p.cfg.BTBMissPenalty)
				return
			}
		}
	}
}

// chargeFetchStall attributes a blocked front-end cycle to the thread
// that owns the blockage (thread 0 when indeterminate).
func (p *PipelineCore) chargeFetchStall() {
	th := 0
	if p.fetchBlockedBy != nil {
		th = p.fetchBlockedBy.thread
	}
	p.stats[th].FetchStallCycles++
}
