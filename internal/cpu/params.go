package cpu

import "strings"

// Per-workload core parameters: instruction mix and memory footprint vary
// enormously across SPEC 2017 (mcf chases pointers through hundreds of MB;
// exchange2 is register-resident), and the IPC baseline each ST model is
// normalized against should reflect that. Values follow the published
// characterization literature: instructions-per-branch from the
// branch-density profiles, footprints from the SPEC working-set studies.

// workloadParams overrides part of a Config for a named workload.
type workloadParams struct {
	InstrPerBranch int
	LoadFrac       float64
	DataFootprint  uint64
}

var paramsByWorkload = map[string]workloadParams{
	// Memory-bound pointer chasers.
	"505.mcf":       {InstrPerBranch: 4, LoadFrac: 0.38, DataFootprint: 512 << 20},
	"520.omnetpp":   {InstrPerBranch: 5, LoadFrac: 0.34, DataFootprint: 256 << 20},
	"523.xalancbmk": {InstrPerBranch: 5, LoadFrac: 0.33, DataFootprint: 128 << 20},
	// Branch-dense integer codes with modest footprints.
	"531.deepsjeng": {InstrPerBranch: 4, LoadFrac: 0.28, DataFootprint: 8 << 20},
	"541.leela":     {InstrPerBranch: 4, LoadFrac: 0.27, DataFootprint: 16 << 20},
	"548.exchange2": {InstrPerBranch: 4, LoadFrac: 0.18, DataFootprint: 1 << 20},
	"557.xz":        {InstrPerBranch: 5, LoadFrac: 0.30, DataFootprint: 64 << 20},
	"500.perlbench": {InstrPerBranch: 5, LoadFrac: 0.32, DataFootprint: 32 << 20},
	"502.gcc":       {InstrPerBranch: 5, LoadFrac: 0.31, DataFootprint: 64 << 20},
	"525.x264":      {InstrPerBranch: 7, LoadFrac: 0.30, DataFootprint: 32 << 20},
	// FP/streaming codes: long basic blocks, large but regular data.
	"503.bwaves":    {InstrPerBranch: 12, LoadFrac: 0.36, DataFootprint: 384 << 20},
	"507.cactuBSSN": {InstrPerBranch: 11, LoadFrac: 0.35, DataFootprint: 256 << 20},
	"508.namd":      {InstrPerBranch: 10, LoadFrac: 0.30, DataFootprint: 32 << 20},
	"510.parest":    {InstrPerBranch: 8, LoadFrac: 0.32, DataFootprint: 128 << 20},
	"511.povray":    {InstrPerBranch: 6, LoadFrac: 0.29, DataFootprint: 4 << 20},
	"519.lbm":       {InstrPerBranch: 14, LoadFrac: 0.38, DataFootprint: 384 << 20},
	"521.wrf":       {InstrPerBranch: 9, LoadFrac: 0.33, DataFootprint: 128 << 20},
	"526.blender":   {InstrPerBranch: 7, LoadFrac: 0.30, DataFootprint: 64 << 20},
	"527.cam4":      {InstrPerBranch: 9, LoadFrac: 0.32, DataFootprint: 64 << 20},
	"538.imagick":   {InstrPerBranch: 10, LoadFrac: 0.28, DataFootprint: 16 << 20},
	"544.nab":       {InstrPerBranch: 9, LoadFrac: 0.29, DataFootprint: 16 << 20},
	"549.fotonik3d": {InstrPerBranch: 11, LoadFrac: 0.36, DataFootprint: 256 << 20},
	"554.roms":      {InstrPerBranch: 11, LoadFrac: 0.35, DataFootprint: 128 << 20},
}

// shortNames mirrors trace's short-name aliases so ConfigFor accepts both.
var shortNames = map[string]string{
	"fotonik3d": "549.fotonik3d", "x264": "525.x264", "exchange2": "548.exchange2",
	"deepsjeng": "531.deepsjeng", "roms": "554.roms", "mcf": "505.mcf",
	"nab": "544.nab", "cam4": "527.cam4", "namd": "508.namd",
	"xalancbmk": "523.xalancbmk", "parest": "510.parest", "bwaves": "503.bwaves",
	"wrf": "521.wrf", "imagick": "538.imagick", "leela": "541.leela",
	"blender": "526.blender", "xz": "557.xz", "lbm": "519.lbm",
	"povray": "511.povray", "cactuBSSN": "507.cactuBSSN",
}

// ConfigFor returns the Table IV core configuration specialized with the
// named workload's instruction mix and data footprint. Unknown names get
// the generic defaults (server workloads use a mid-size footprint).
func ConfigFor(workload string) Config {
	cfg := TableIVConfig()
	name := workload
	if full, ok := shortNames[name]; ok {
		name = full
	}
	p, ok := paramsByWorkload[name]
	if !ok {
		if strings.Contains(workload, "mysql") || strings.Contains(workload, "apache") ||
			strings.Contains(workload, "chrome") {
			cfg.InstrPerBranch = 5
			cfg.LoadFrac = 0.33
			cfg.DataFootprint = 128 << 20
		}
		return cfg
	}
	cfg.InstrPerBranch = p.InstrPerBranch
	cfg.LoadFrac = p.LoadFrac
	cfg.DataFootprint = p.DataFootprint
	return cfg
}
