package cpu

import (
	"math"
	"testing"

	"stbpu/internal/core"
	"stbpu/internal/sim"
	"stbpu/internal/trace"
)

func genTrace(t testing.TB, name string, n int) *trace.Trace {
	t.Helper()
	p, err := trace.Preset(name)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Generate(p.WithRecords(n))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func baselineModel(dir core.DirKind) sim.Model {
	return &sim.UnitModel{ModelName: "base_" + dir.String(), Unit: core.NewUnprotectedUnit(dir)}
}

func stModel(dir core.DirKind) sim.Model {
	return &sim.STBPUModel{Inner: core.NewModel(core.ModelConfig{Dir: dir})}
}

func TestTableIVConfig(t *testing.T) {
	cfg := TableIVConfig()
	if cfg.Width != 8 || cfg.ROB != 192 || cfg.IQ != 64 || cfg.LQ != 32 || cfg.SQ != 32 {
		t.Errorf("Table IV core parameters wrong: %+v", cfg)
	}
}

func TestIPCInPlausibleRange(t *testing.T) {
	tr := genTrace(t, "519.lbm", 30_000)
	c := New(TableIVConfig(), baselineModel(core.DirSKLCond))
	res := c.Run(tr)
	if res.Instructions == 0 || res.Cycles == 0 {
		t.Fatal("empty result")
	}
	ipc := res.IPC()
	if ipc < 0.3 || ipc > float64(TableIVConfig().Width) {
		t.Errorf("IPC = %.2f out of plausible range", ipc)
	}
}

func TestWorsePredictionLowersIPC(t *testing.T) {
	// The coupling Figs. 4-6 rely on: a model with more mispredictions
	// must yield lower IPC on the same instruction stream.
	tr := genTrace(t, "505.mcf", 40_000)
	good := New(TableIVConfig(), baselineModel(core.DirTAGE64)).Run(tr)
	// A deliberately bad predictor: flush on every context switch AND
	// kernel entry with a halved BTB (ucode-1 semantics).
	bad := New(TableIVConfig(), sim.New(sim.KindUcode1, sim.Options{})).Run(tr)
	if good.Branch.Mispredicts >= bad.Branch.Mispredicts {
		t.Skipf("flushing model did not mispredict more on this trace (%d vs %d)",
			good.Branch.Mispredicts, bad.Branch.Mispredicts)
	}
	if good.IPC() <= bad.IPC() {
		t.Errorf("better prediction should raise IPC: good %.3f bad %.3f", good.IPC(), bad.IPC())
	}
}

func TestIdenticalStreamAcrossModels(t *testing.T) {
	// ST and unprotected runs must see the same instruction counts —
	// otherwise IPC comparisons are meaningless.
	tr := genTrace(t, "525.x264", 20_000)
	a := New(TableIVConfig(), baselineModel(core.DirSKLCond)).Run(tr)
	b := New(TableIVConfig(), stModel(core.DirSKLCond)).Run(tr)
	if a.Instructions != b.Instructions {
		t.Errorf("instruction streams diverged: %d vs %d", a.Instructions, b.Instructions)
	}
}

func TestSTIPCWithinFourPercent(t *testing.T) {
	// Fig. 4 claim: <4% average IPC reduction for ST models.
	tr := genTrace(t, "549.fotonik3d", 40_000)
	base := New(TableIVConfig(), baselineModel(core.DirTAGE8)).Run(tr)
	st := New(TableIVConfig(), stModel(core.DirTAGE8)).Run(tr)
	norm := st.IPC() / base.IPC()
	if norm < 0.93 {
		t.Errorf("ST_TAGE8 normalized IPC %.3f, want >= 0.93", norm)
	}
}

func TestSMTSharedCore(t *testing.T) {
	a := genTrace(t, "503.bwaves", 20_000)
	b := genTrace(t, "541.leela", 20_000)
	c := New(TableIVConfig(), baselineModel(core.DirTAGE8))
	res := c.RunSMT(a, b)
	if res.PerThread[0].Instructions == 0 || res.PerThread[1].Instructions == 0 {
		t.Fatal("SMT thread starved")
	}
	if res.PerThread[0].Cycles != res.PerThread[1].Cycles {
		t.Error("SMT threads must share the cycle clock")
	}
	hm := res.HarmonicMeanIPC()
	if hm <= 0 || math.IsInf(hm, 0) {
		t.Errorf("harmonic mean IPC = %v", hm)
	}
	// Co-running halves per-thread throughput versus solo, roughly.
	solo := New(TableIVConfig(), baselineModel(core.DirTAGE8)).Run(a)
	if res.PerThread[0].IPC() > solo.IPC() {
		t.Error("SMT thread exceeded solo IPC on a shared core")
	}
}

func TestSMTThreadsAreDistinctEntities(t *testing.T) {
	// With STBPU, the two SMT threads must receive different tokens even
	// when their traces carry overlapping PIDs.
	a := genTrace(t, "503.bwaves", 5_000)
	c := New(TableIVConfig(), stModel(core.DirSKLCond))
	res := c.RunSMT(a, a) // same trace on both threads
	if res.PerThread[0].Branch.Mispredicts == 0 {
		t.Error("no branch activity recorded")
	}
}

func TestSMTMoreRerandomizations(t *testing.T) {
	// §VII-B2: SMT mode triggers more frequent re-randomizations because
	// two threads share the monitored structures. Compare ST_SKLCond
	// re-randomizations: SMT co-run vs the two workloads run solo.
	a := genTrace(t, "505.mcf", 30_000)
	b := genTrace(t, "531.deepsjeng", 30_000)

	solo1 := core.NewModel(core.ModelConfig{Dir: core.DirSKLCond})
	New(TableIVConfig(), &sim.STBPUModel{Inner: solo1}).Run(a)
	solo2 := core.NewModel(core.ModelConfig{Dir: core.DirSKLCond})
	New(TableIVConfig(), &sim.STBPUModel{Inner: solo2}).Run(b)

	smt := core.NewModel(core.ModelConfig{Dir: core.DirSKLCond})
	New(TableIVConfig(), &sim.STBPUModel{Inner: smt}).RunSMT(a, b)

	soloTotal := solo1.Rerandomizations() + solo2.Rerandomizations()
	if smt.Rerandomizations() < soloTotal {
		t.Logf("SMT rerands %d vs solo total %d (informational: depends on interleaving)",
			smt.Rerandomizations(), soloTotal)
	}
}

func BenchmarkCoreRun(b *testing.B) {
	tr := genTrace(b, "505.mcf", 50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(TableIVConfig(), baselineModel(core.DirSKLCond)).Run(tr)
	}
}

func TestConfigForWorkloads(t *testing.T) {
	generic := TableIVConfig()
	mcf := ConfigFor("mcf")
	if mcf.DataFootprint <= generic.DataFootprint {
		t.Error("mcf should have a large memory footprint")
	}
	if mcf != ConfigFor("505.mcf") {
		t.Error("short and full names should resolve identically")
	}
	lbm := ConfigFor("519.lbm")
	if lbm.InstrPerBranch <= mcf.InstrPerBranch {
		t.Error("FP streaming code should have longer basic blocks than mcf")
	}
	server := ConfigFor("mysql_128con_50s")
	if server.DataFootprint == generic.DataFootprint {
		t.Error("server workloads should get the server footprint")
	}
	if unknown := ConfigFor("no-such-workload"); unknown != generic {
		t.Error("unknown workloads should keep Table IV defaults")
	}
	// Core parameters are never altered by workload specialization.
	if mcf.Width != generic.Width || mcf.ROB != generic.ROB {
		t.Error("workload params must not change core geometry")
	}
}

func TestMemoryBoundWorkloadHasLowerIPC(t *testing.T) {
	trM := genTrace(t, "505.mcf", 20_000)
	trX := genTrace(t, "548.exchange2", 20_000)
	mcf := New(ConfigFor("505.mcf"), baselineModel(core.DirTAGE64)).Run(trM)
	exch := New(ConfigFor("548.exchange2"), baselineModel(core.DirTAGE64)).Run(trX)
	if mcf.IPC() >= exch.IPC() {
		t.Errorf("mcf IPC %.3f should be below exchange2 %.3f (memory-bound)", mcf.IPC(), exch.IPC())
	}
}
