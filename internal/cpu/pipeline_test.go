package cpu

import (
	"testing"

	"stbpu/internal/core"
	"stbpu/internal/sim"
	"stbpu/internal/trace"
)

func pipelineTrace(t testing.TB, name string, n int) *trace.Trace {
	t.Helper()
	prof, err := trace.Preset(name)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Generate(prof.WithRecords(n))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func newPipeline(t testing.TB, cfg PipelineConfig) *PipelineCore {
	t.Helper()
	p, err := NewPipeline(cfg, &sim.UnitModel{
		ModelName: "baseline",
		Unit:      core.NewUnprotectedUnit(core.DirSKLCond),
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPipelineConfigValidate(t *testing.T) {
	if err := DefaultPipelineConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultPipelineConfig()
	bad.ROB = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero ROB accepted")
	}
	bad = DefaultPipelineConfig()
	bad.FetchQueue = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero fetch queue accepted")
	}
	bad = DefaultPipelineConfig()
	bad.LoadPorts = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero load ports accepted")
	}
	if _, err := NewPipeline(bad, nil); err == nil {
		t.Error("NewPipeline accepted an invalid config")
	}
}

func TestPipelineIPCBounds(t *testing.T) {
	tr := pipelineTrace(t, "505.mcf", 10_000)
	p := newPipeline(t, DefaultPipelineConfig())
	st := p.Run(tr)
	if st.Instructions == 0 || st.Cycles == 0 {
		t.Fatalf("empty run: %+v", st)
	}
	if ipc := st.IPC(); ipc <= 0 || ipc > float64(DefaultPipelineConfig().Width) {
		t.Errorf("IPC = %.2f, want in (0, width]", ipc)
	}
}

func TestPipelineDeterminism(t *testing.T) {
	tr := pipelineTrace(t, "541.leela", 5_000)
	a := newPipeline(t, DefaultPipelineConfig()).Run(tr)
	b := newPipeline(t, DefaultPipelineConfig()).Run(tr)
	if a != b {
		t.Errorf("two identical runs disagree:\n%+v\n%+v", a, b)
	}
}

func TestPipelineROBBoundsILP(t *testing.T) {
	tr := pipelineTrace(t, "505.mcf", 8_000)
	big := DefaultPipelineConfig()
	small := DefaultPipelineConfig()
	small.ROB = 8
	small.IQ = 8
	ipcBig := newPipeline(t, big).Run(tr).IPC()
	ipcSmall := newPipeline(t, small).Run(tr).IPC()
	if ipcSmall >= ipcBig {
		t.Errorf("ROB 8 IPC %.3f >= ROB 192 IPC %.3f; structural stalls not modeled", ipcSmall, ipcBig)
	}
}

func TestPipelineLQPressure(t *testing.T) {
	tr := pipelineTrace(t, "505.mcf", 8_000)
	cfg := DefaultPipelineConfig()
	cfg.LoadFrac = 0.6
	tight := cfg
	tight.LQ = 2
	ipcWide := newPipeline(t, cfg).Run(tr).IPC()
	ipcTight := newPipeline(t, tight).Run(tr).IPC()
	if ipcTight >= ipcWide {
		t.Errorf("LQ 2 IPC %.3f >= LQ 32 IPC %.3f; LQ occupancy not modeled", ipcTight, ipcWide)
	}
}

func TestPipelinePortContention(t *testing.T) {
	tr := pipelineTrace(t, "505.mcf", 8_000)
	wide := DefaultPipelineConfig()
	narrow := DefaultPipelineConfig()
	narrow.ALUPorts = 1
	narrow.LoadPorts = 1
	ipcWide := newPipeline(t, wide).Run(tr).IPC()
	ipcNarrow := newPipeline(t, narrow).Run(tr).IPC()
	if ipcNarrow >= ipcWide {
		t.Errorf("1-port IPC %.3f >= 4-port IPC %.3f; FU contention not modeled", ipcNarrow, ipcWide)
	}
}

func TestPipelineMispredictionsCostCycles(t *testing.T) {
	// A highly predictable workload must beat a hard-to-predict one on
	// the same core, and the squash accounting must be populated.
	easy := pipelineTrace(t, "519.lbm", 8_000) // highly biased preset
	hard := pipelineTrace(t, "505.mcf", 8_000) // hard-to-predict preset
	stEasy := newPipeline(t, DefaultPipelineConfig()).Run(easy)
	stHard := newPipeline(t, DefaultPipelineConfig()).Run(hard)
	if stHard.Squashes == 0 {
		t.Fatal("no squashes recorded on a branchy workload")
	}
	if stEasy.IPC() <= stHard.IPC() {
		t.Errorf("easy IPC %.3f <= hard IPC %.3f", stEasy.IPC(), stHard.IPC())
	}
	if stHard.MeanResolveLatency() <= 0 {
		t.Error("resolve latency not measured")
	}
	if stHard.FetchStallCycles == 0 {
		t.Error("misprediction fetch stalls not accounted")
	}
}

func TestPipelineResolveLatencyGrowsWithDependencyDepth(t *testing.T) {
	// Deep dependency chains delay branch resolution — the emergent
	// penalty the fixed-cost interval model cannot express.
	tr := pipelineTrace(t, "531.deepsjeng", 8_000)
	shallow := DefaultPipelineConfig()
	shallow.DepChance4 = 0
	deep := DefaultPipelineConfig()
	deep.DepChance4 = 4
	latShallow := newPipeline(t, shallow).Run(tr).MeanResolveLatency()
	latDeep := newPipeline(t, deep).Run(tr).MeanResolveLatency()
	if latDeep <= latShallow {
		t.Errorf("deep-chain resolve latency %.2f <= shallow %.2f", latDeep, latShallow)
	}
}

func TestPipelineSMTSharesTheCore(t *testing.T) {
	a := pipelineTrace(t, "505.mcf", 5_000)
	b := pipelineTrace(t, "541.leela", 5_000)
	p := newPipeline(t, DefaultPipelineConfig())
	st := p.RunSMT(a, b)
	if st[0].Cycles != st[1].Cycles {
		t.Fatal("SMT threads must share the cycle count")
	}
	if st[0].Instructions == 0 || st[1].Instructions == 0 {
		t.Fatal("a thread retired nothing")
	}
	// Co-running must not exceed single-thread combined throughput on a
	// shared 8-wide core; each thread must also run slower than alone.
	alone := newPipeline(t, DefaultPipelineConfig()).Run(a)
	if st[0].IPC() > alone.IPC()*1.05 {
		t.Errorf("thread 0 SMT IPC %.3f exceeds solo IPC %.3f", st[0].IPC(), alone.IPC())
	}
}

func TestPipelineFetchPolicies(t *testing.T) {
	// ICOUNT should not lose to round-robin on an asymmetric pair: it
	// steers fetch away from the stalled (miss-heavy) thread.
	a := pipelineTrace(t, "505.mcf", 5_000) // miss-heavy
	b := pipelineTrace(t, "519.lbm", 5_000) // clean
	total := func(policy FetchPolicy) float64 {
		p := newPipeline(t, DefaultPipelineConfig())
		p.SetFetchPolicy(policy)
		st := p.RunSMT(a, b)
		return st[0].IPC() + st[1].IPC()
	}
	rr := total(PolicyRoundRobin)
	ic := total(PolicyICount)
	if ic < rr*0.95 {
		t.Errorf("ICOUNT throughput %.3f markedly below round-robin %.3f", ic, rr)
	}
	if PolicyICount.String() != "icount" || PolicyRoundRobin.String() != "round-robin" {
		t.Error("FetchPolicy names wrong")
	}
}

func TestPipelineAgreesWithIntervalModel(t *testing.T) {
	// Cross-validation: the two engines must rank workloads the same way
	// and produce IPCs within a small factor of each other.
	for _, name := range []string{"519.lbm", "505.mcf"} {
		tr := pipelineTrace(t, name, 8_000)
		pipe := newPipeline(t, DefaultPipelineConfig()).Run(tr)
		interval := New(TableIVConfig(), &sim.UnitModel{
			ModelName: "baseline",
			Unit:      core.NewUnprotectedUnit(core.DirSKLCond),
		}).Run(tr)
		ratio := pipe.IPC() / interval.IPC()
		if ratio < 0.3 || ratio > 3 {
			t.Errorf("%s: pipeline IPC %.3f vs interval IPC %.3f (ratio %.2f)",
				name, pipe.IPC(), interval.IPC(), ratio)
		}
	}
}

func TestPipelineBranchAccounting(t *testing.T) {
	tr := pipelineTrace(t, "505.mcf", 5_000)
	p := newPipeline(t, DefaultPipelineConfig())
	p.Run(tr)
	br := p.BranchResult(0)
	if br.Conds == 0 || br.Mispredicts == 0 {
		t.Fatalf("branch accounting empty: %+v", br)
	}
	if br.Model != "baseline" {
		t.Errorf("model name = %q", br.Model)
	}
}

func BenchmarkPipelineEngine(b *testing.B) {
	tr := pipelineTrace(b, "505.mcf", 20_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := newPipeline(b, DefaultPipelineConfig()).Run(tr)
		b.ReportMetric(st.IPC(), "ipc")
	}
	b.SetBytes(int64(len(tr.Records)))
}

func TestPipelineInstructionConservation(t *testing.T) {
	// Every µop the stream produces must retire exactly once: the
	// pipeline may stall and squash, but this trace-driven model never
	// drops or duplicates correct-path work.
	tr := pipelineTrace(t, "505.mcf", 6_000)
	cfg := DefaultPipelineConfig()
	p := newPipeline(t, cfg)
	st := p.Run(tr)

	var want uint64
	for i, rec := range tr.Records {
		h := recHash(rec, i)
		block := 1 + int(h%uint64(2*cfg.InstrPerBranch))
		want += uint64(block) + 1
	}
	if st.Instructions != want {
		t.Errorf("retired %d instructions, stream produced %d", st.Instructions, want)
	}
}

func TestPipelineSMTDeterminism(t *testing.T) {
	a := pipelineTrace(t, "505.mcf", 4_000)
	b := pipelineTrace(t, "541.leela", 4_000)
	r1 := newPipeline(t, DefaultPipelineConfig()).RunSMT(a, b)
	r2 := newPipeline(t, DefaultPipelineConfig()).RunSMT(a, b)
	if r1 != r2 {
		t.Errorf("SMT runs diverge:\n%+v\n%+v", r1, r2)
	}
}

func TestPipelineSMTConservation(t *testing.T) {
	a := pipelineTrace(t, "505.mcf", 4_000)
	b := pipelineTrace(t, "541.leela", 4_000)
	cfg := DefaultPipelineConfig()
	st := newPipeline(t, cfg).RunSMT(a, b)
	count := func(tr0 *trace.Trace, thread int) uint64 {
		var want uint64
		for i, rec := range tr0.Records {
			if thread == 1 {
				rec.PID += 1 << 16
				rec.Program += 1 << 12
			}
			h := recHash(rec, i)
			want += 1 + uint64(1+int(h%uint64(2*cfg.InstrPerBranch)))
		}
		return want
	}
	if st[0].Instructions != count(a, 0) {
		t.Errorf("thread 0 retired %d, want %d", st[0].Instructions, count(a, 0))
	}
	if st[1].Instructions != count(b, 1) {
		t.Errorf("thread 1 retired %d, want %d", st[1].Instructions, count(b, 1))
	}
}
