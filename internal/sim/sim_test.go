package sim

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"stbpu/internal/bpu"
	"stbpu/internal/core"
	"stbpu/internal/token"
	"stbpu/internal/trace"
)

func genTrace(t testing.TB, name string, n int) (*trace.Trace, trace.Profile) {
	t.Helper()
	p, err := trace.Preset(name)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Generate(p.WithRecords(n))
	if err != nil {
		t.Fatal(err)
	}
	return tr, p
}

func runKind(t testing.TB, kind ModelKind, name string, n int) Result {
	tr, p := genTrace(t, name, n)
	m := New(kind, Options{SharedTokens: p.SharedTokens, Seed: 1})
	return Run(m, tr)
}

func TestModelKindStrings(t *testing.T) {
	for _, k := range Fig3Kinds() {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
	if len(Fig3Kinds()) != 5 {
		t.Errorf("Fig3Kinds has %d models, want 5", len(Fig3Kinds()))
	}
}

func TestBaselineAccuracySane(t *testing.T) {
	res := runKind(t, KindBaseline, "519.lbm", 60_000)
	if oae := res.OAE(); oae < 0.85 || oae > 1 {
		t.Errorf("baseline OAE on lbm = %.3f", oae)
	}
	if res.Conds == 0 || res.TargetKnown == 0 {
		t.Error("event accounting empty")
	}
	if res.DirectionRate() < 0.85 || res.TargetRate() < 0.85 {
		t.Errorf("component rates too low: dir %.3f target %.3f",
			res.DirectionRate(), res.TargetRate())
	}
}

func TestSTBPUNearBaseline(t *testing.T) {
	// Fig. 3 core claim: STBPU within ~2pp of baseline per workload.
	for _, wl := range []string{"519.lbm", "505.mcf", "apache2_prefork_c128"} {
		base := runKind(t, KindBaseline, wl, 60_000)
		st := runKind(t, KindSTBPU, wl, 60_000)
		if st.OAE() < base.OAE()-0.03 {
			t.Errorf("%s: STBPU OAE %.3f vs baseline %.3f", wl, st.OAE(), base.OAE())
		}
	}
}

func TestFlushingHurtsServerWorkloads(t *testing.T) {
	// Fig. 3 shape: the microcode models lose heavily on context-switch
	// rich workloads, far more than STBPU does.
	base := runKind(t, KindBaseline, "mysql_128con_50s", 80_000)
	u2 := runKind(t, KindUcode2, "mysql_128con_50s", 80_000)
	st := runKind(t, KindSTBPU, "mysql_128con_50s", 80_000)
	if u2.OAE() > base.OAE()-0.02 {
		t.Errorf("ucode2 should lose clearly on mysql: %.3f vs base %.3f", u2.OAE(), base.OAE())
	}
	if st.OAE() < u2.OAE() {
		t.Errorf("STBPU (%.3f) should beat ucode2 (%.3f) on mysql", st.OAE(), u2.OAE())
	}
	if u2.Flushes == 0 {
		t.Error("flushing model recorded no flushes on a server trace")
	}
}

func TestUcode1WorseThanUcode2(t *testing.T) {
	// STIBP partitioning costs extra capacity on top of flushing.
	u1 := runKind(t, KindUcode1, "apache2_prefork_c256", 80_000)
	u2 := runKind(t, KindUcode2, "apache2_prefork_c256", 80_000)
	if u1.OAE() > u2.OAE()+0.01 {
		t.Errorf("ucode1 (%.3f) should not beat ucode2 (%.3f)", u1.OAE(), u2.OAE())
	}
}

func TestConservativeBetween(t *testing.T) {
	// Conservative avoids flushing but pays capacity and sharing: it
	// should sit between the microcode models and STBPU on server loads.
	cons := runKind(t, KindConservative, "apache2_prefork_c128", 80_000)
	u2 := runKind(t, KindUcode2, "apache2_prefork_c128", 80_000)
	st := runKind(t, KindSTBPU, "apache2_prefork_c128", 80_000)
	if cons.OAE() < u2.OAE()-0.01 {
		t.Errorf("conservative (%.3f) should beat flushing ucode2 (%.3f)", cons.OAE(), u2.OAE())
	}
	if cons.OAE() > st.OAE()+0.01 {
		t.Errorf("conservative (%.3f) should not beat STBPU (%.3f)", cons.OAE(), st.OAE())
	}
}

func TestConservativeIsolatesEntities(t *testing.T) {
	m := New(KindConservative, Options{})
	rec := trace.Record{PC: 0x401000, Target: 0x401800, Kind: trace.KindDirectJump, Taken: true, PID: 1}
	m.Step(rec)
	m.Step(rec) // warm for PID 1
	rec2 := rec
	rec2.PID = 2
	pred, _ := m.Step(rec2)
	if pred.TargetValid && pred.Target == rec.Target {
		t.Error("conservative model allowed cross-entity BTB reuse")
	}
}

func TestSTBPUWithDifferentPredictors(t *testing.T) {
	tr, p := genTrace(t, "505.mcf", 30_000)
	for _, dir := range []core.DirKind{core.DirSKLCond, core.DirTAGE8, core.DirTAGE64, core.DirPerceptron} {
		m := New(KindSTBPU, Options{SharedTokens: p.SharedTokens, Dir: dir})
		res := Run(m, tr)
		if res.OAE() < 0.6 {
			t.Errorf("ST_%v OAE = %.3f", dir, res.OAE())
		}
	}
}

func TestResultCounters(t *testing.T) {
	res := runKind(t, KindBaseline, "mysql_64con_50s", 40_000)
	if res.CtxSwitches == 0 || res.ModeSwitches == 0 {
		t.Errorf("server trace counters: ctx=%d mode=%d", res.CtxSwitches, res.ModeSwitches)
	}
	if res.Records != 40_000 {
		t.Errorf("records = %d", res.Records)
	}
}

func TestSTBPURecordsRerandomizations(t *testing.T) {
	// With aggressive thresholds, re-randomizations must appear in the
	// result.
	tr, p := genTrace(t, "505.mcf", 40_000)
	th := tokenThresholds(100, 100)
	m := New(KindSTBPU, Options{SharedTokens: p.SharedTokens, Thresholds: &th})
	res := Run(m, tr)
	if res.Rerandomizations == 0 {
		t.Error("aggressive thresholds produced no re-randomizations")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := runKind(t, KindSTBPU, "505.mcf", 20_000)
	b := runKind(t, KindSTBPU, "505.mcf", 20_000)
	if a.Mispredicts != b.Mispredicts || a.Evictions != b.Evictions {
		t.Error("simulation not deterministic")
	}
}

func BenchmarkRunBaseline(b *testing.B) {
	tr, _ := genTrace(b, "505.mcf", 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(New(KindBaseline, Options{}), tr)
	}
}

func BenchmarkRunSTBPU(b *testing.B) {
	tr, p := genTrace(b, "505.mcf", 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(New(KindSTBPU, Options{SharedTokens: p.SharedTokens}), tr)
	}
}

// BenchmarkReplayPath compares the three replay paths on the same model
// and trace: the columnar StepColumns fast path (what the suite runs),
// the batched AoS StepBatch path, and the per-record Step shim — the
// wins the columnar and batching refactors must keep showing.
func BenchmarkReplayPath(b *testing.B) {
	tr, p := genTrace(b, "505.mcf", 100_000)
	cols := trace.FromTrace(tr)
	for _, bc := range []struct {
		name string
		mk   func() Model
	}{
		{"baseline", func() Model { return New(KindBaseline, Options{}) }},
		{"stbpu", func() Model { return New(KindSTBPU, Options{SharedTokens: p.SharedTokens}) }},
	} {
		b.Run(bc.name+"/columns", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunColumnsCtx(context.Background(), bc.mk(), cols); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(bc.name+"/batched", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunCtx(context.Background(), bc.mk(), tr); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(bc.name+"/step", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunCtx(context.Background(), stepOnly{bc.mk()}, tr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSTBTDecode compares the two STBT decode paths on a 100k
// 505.mcf trace: straight into columns (the disk-tier hot path) vs the
// AoS wrapper that also materializes records.
func BenchmarkSTBTDecode(b *testing.B) {
	tr, _ := genTrace(b, "505.mcf", 100_000)
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.Run("columns", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := trace.ReadColumns(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("records", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := trace.Read(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// tokenThresholds builds a threshold config for tests.
func tokenThresholds(misp, evict uint64) (th token.Thresholds) {
	th.Mispredictions = misp
	th.Evictions = evict
	return th
}

// stepOnly hides a model's BatchModel implementation so RunCtx takes the
// per-record Step shim; Finalize is forwarded so run-scoped counters still
// land in the Result.
type stepOnly struct{ m Model }

func (s stepOnly) Name() string                                       { return s.m.Name() }
func (s stepOnly) Step(rec trace.Record) (bpu.Prediction, bpu.Events) { return s.m.Step(rec) }
func (s stepOnly) Finalize(res *Result) {
	if f, ok := s.m.(Finalizer); ok {
		f.Finalize(res)
	}
}

func TestBatchedPathMatchesStepShim(t *testing.T) {
	tr, prof := genTrace(t, "mysql_128con_50s", 30_000)
	for _, kind := range Fig3Kinds() {
		opt := Options{SharedTokens: prof.SharedTokens, Seed: 11}
		batched, err := RunCtx(context.Background(), New(kind, opt), tr)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := New(kind, opt).(BatchModel); !ok {
			t.Errorf("%v does not implement BatchModel", kind)
		}
		stepped, err := RunCtx(context.Background(), stepOnly{New(kind, opt)}, tr)
		if err != nil {
			t.Fatal(err)
		}
		if batched != stepped {
			t.Errorf("%v: batched %+v != stepped %+v", kind, batched, stepped)
		}
	}
}

func TestFinalizerReportsRunScopedCounters(t *testing.T) {
	tr, prof := genTrace(t, "mysql_128con_50s", 40_000)
	fl, err := RunCtx(context.Background(), New(KindUcode2, Options{SharedTokens: prof.SharedTokens}), tr)
	if err != nil {
		t.Fatal(err)
	}
	if fl.Flushes == 0 {
		t.Error("FlushModel.Finalize reported no flushes on a server trace")
	}
	th := tokenThresholds(100, 100)
	st, err := RunCtx(context.Background(),
		New(KindSTBPU, Options{SharedTokens: prof.SharedTokens, Thresholds: &th}), tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rerandomizations == 0 {
		t.Error("STBPUModel.Finalize reported no re-randomizations under aggressive thresholds")
	}
}

// cancelingBatcher cancels the run's context from inside StepBatch, so the
// test can pin down where the batched path observes cancellation.
type cancelingBatcher struct {
	m       Model
	cancel  context.CancelFunc
	batches int
}

func (c *cancelingBatcher) Name() string                                       { return c.m.Name() }
func (c *cancelingBatcher) Step(rec trace.Record) (bpu.Prediction, bpu.Events) { return c.m.Step(rec) }
func (c *cancelingBatcher) StepBatch(recs []trace.Record, acc *Counters) {
	c.m.(BatchModel).StepBatch(recs, acc)
	c.batches++
	c.cancel()
}

func TestRunCtxCancellationOnBatchedPath(t *testing.T) {
	tr, prof := genTrace(t, "505.mcf", 4*runCheckInterval)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cb := &cancelingBatcher{m: New(KindBaseline, Options{SharedTokens: prof.SharedTokens}), cancel: cancel}
	if _, err := RunCtx(ctx, cb, tr); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Cancellation lands at the next chunk boundary: exactly one batch ran.
	if cb.batches != 1 {
		t.Errorf("batches after cancel = %d, want 1", cb.batches)
	}
}

func TestRunCtxCanceledMidReplay(t *testing.T) {
	tr, prof := genTrace(t, "505.mcf", 100_000)
	m := New(KindSTBPU, Options{SharedTokens: prof.SharedTokens, Seed: 7})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCtx(ctx, m, tr); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx on canceled ctx: err = %v, want context.Canceled", err)
	}

	// An uncanceled context must reproduce Run exactly.
	m2 := New(KindSTBPU, Options{SharedTokens: prof.SharedTokens, Seed: 7})
	got, err := RunCtx(context.Background(), m2, tr)
	if err != nil {
		t.Fatal(err)
	}
	m3 := New(KindSTBPU, Options{SharedTokens: prof.SharedTokens, Seed: 7})
	if want := Run(m3, tr); got != want {
		t.Error("RunCtx and Run diverge on the same model/trace")
	}
}

// batchOnly hides a model's ColumnModel implementation (keeping
// StepBatch) so RunColumnsCtx takes the scratch-buffer fallback that
// feeds chunk-sized record batches to pre-columnar batched models.
type batchOnly struct{ m Model }

func (b batchOnly) Name() string                                       { return b.m.Name() }
func (b batchOnly) Step(rec trace.Record) (bpu.Prediction, bpu.Events) { return b.m.Step(rec) }
func (b batchOnly) StepBatch(recs []trace.Record, acc *Counters) {
	b.m.(BatchModel).StepBatch(recs, acc)
}
func (b batchOnly) Finalize(res *Result) {
	if f, ok := b.m.(Finalizer); ok {
		f.Finalize(res)
	}
}

// TestColumnarPathMatchesBatched pins the tentpole determinism
// contract: replaying the struct-of-arrays view through StepColumns —
// and through both fallbacks for models that predate it — is
// bit-identical to the batched AoS path for every Fig. 3 model.
func TestColumnarPathMatchesBatched(t *testing.T) {
	tr, prof := genTrace(t, "mysql_128con_50s", 30_000)
	cols := trace.FromTrace(tr)
	for _, kind := range Fig3Kinds() {
		opt := Options{SharedTokens: prof.SharedTokens, Seed: 11}
		want, err := RunCtx(context.Background(), New(kind, opt), tr)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := New(kind, opt).(ColumnModel); !ok {
			t.Errorf("%v does not implement ColumnModel", kind)
		}
		columnar, err := RunColumnsCtx(context.Background(), New(kind, opt), cols)
		if err != nil {
			t.Fatal(err)
		}
		if columnar != want {
			t.Errorf("%v: columnar %+v != batched %+v", kind, columnar, want)
		}
		viaBatch, err := RunColumnsCtx(context.Background(), batchOnly{New(kind, opt)}, cols)
		if err != nil {
			t.Fatal(err)
		}
		if viaBatch != want {
			t.Errorf("%v: batch-fallback %+v != batched %+v", kind, viaBatch, want)
		}
		viaStep, err := RunColumnsCtx(context.Background(), stepOnly{New(kind, opt)}, cols)
		if err != nil {
			t.Fatal(err)
		}
		if viaStep != want {
			t.Errorf("%v: step-fallback %+v != batched %+v", kind, viaStep, want)
		}
	}
}

// TestRunColumnsCanceled pins cancellation behavior on the columnar
// path: an already-canceled context aborts before any stepping, and an
// uncanceled run reproduces RunColumns exactly.
func TestRunColumnsCanceled(t *testing.T) {
	tr, prof := genTrace(t, "505.mcf", 40_000)
	cols := trace.FromTrace(tr)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := New(KindSTBPU, Options{SharedTokens: prof.SharedTokens, Seed: 7})
	if _, err := RunColumnsCtx(ctx, m, cols); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	got, err := RunColumnsCtx(context.Background(),
		New(KindSTBPU, Options{SharedTokens: prof.SharedTokens, Seed: 7}), cols)
	if err != nil {
		t.Fatal(err)
	}
	want := RunColumns(New(KindSTBPU, Options{SharedTokens: prof.SharedTokens, Seed: 7}), cols)
	if got != want {
		t.Error("RunColumnsCtx and RunColumns diverge on the same model/trace")
	}
}
