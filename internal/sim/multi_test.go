package sim

import (
	"context"
	"errors"
	"testing"

	"stbpu/internal/trace"
)

// TestRunColumnsMultiMatchesSequential is the trace-major determinism
// property: one RunColumnsMulti pass over a shared trace must produce,
// per model, results bit-identical to running that model alone through
// RunColumnsCtx — across every Fig. 3 kind and every dispatch tier
// (ColumnModel, the BatchModel scratch fallback, the per-record Step
// shim), with distinct seeds proving per-model state never bleeds.
func TestRunColumnsMultiMatchesSequential(t *testing.T) {
	tr, prof := genTrace(t, "mysql_128con_50s", 30_000)
	cols := trace.FromTrace(tr)

	// A heterogeneous fleet: every kind as its columnar self, plus the
	// batch-only and step-only fallbacks of a couple of kinds, each with
	// its own seed.
	type spec struct {
		name string
		mk   func() Model
	}
	var specs []spec
	for i, kind := range Fig3Kinds() {
		kind, seed := kind, uint64(11+i)
		specs = append(specs, spec{
			name: kind.String(),
			mk: func() Model {
				return New(kind, Options{SharedTokens: prof.SharedTokens, Seed: seed})
			},
		})
	}
	specs = append(specs,
		spec{"batch-only-stbpu", func() Model {
			return batchOnly{New(KindSTBPU, Options{SharedTokens: prof.SharedTokens, Seed: 29})}
		}},
		spec{"step-only-baseline", func() Model {
			return stepOnly{New(KindBaseline, Options{SharedTokens: prof.SharedTokens, Seed: 31})}
		}},
	)

	models := make([]Model, len(specs))
	for i, sp := range specs {
		models[i] = sp.mk()
	}
	got, err := RunColumnsMulti(context.Background(), models, cols)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(specs) {
		t.Fatalf("got %d results for %d models", len(got), len(specs))
	}
	for i, sp := range specs {
		want, err := RunColumnsCtx(context.Background(), sp.mk(), cols)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Errorf("%s: multi %+v != sequential %+v", sp.name, got[i], want)
		}
	}
}

// TestRunColumnsMultiEdgeCases pins the degenerate shapes: no models,
// one model (the RunColumnsCtx delegation), and the empty trace.
func TestRunColumnsMultiEdgeCases(t *testing.T) {
	tr, prof := genTrace(t, "505.mcf", 5_000)
	cols := trace.FromTrace(tr)

	res, err := RunColumnsMulti(context.Background(), nil, cols)
	if err != nil || res != nil {
		t.Fatalf("no models: got %v, %v", res, err)
	}

	one, err := RunColumnsMulti(context.Background(),
		[]Model{New(KindSTBPU, Options{SharedTokens: prof.SharedTokens, Seed: 7})}, cols)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunColumnsCtx(context.Background(),
		New(KindSTBPU, Options{SharedTokens: prof.SharedTokens, Seed: 7}), cols)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0] != want {
		t.Fatalf("single model: %+v != %+v", one, want)
	}

	empty := trace.FromRecords("empty", nil)
	res, err = RunColumnsMulti(context.Background(),
		[]Model{New(KindBaseline, Options{}), New(KindSTBPU, Options{})}, empty)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Records != 0 || r.Conds != 0 {
			t.Fatalf("empty trace produced %+v", r)
		}
	}
}

// TestRunColumnsMultiCancellation: an already-canceled context aborts
// before stepping, and a cancel raised inside one model's first chunk is
// observed at the chunk barrier — every model has stepped the same
// number of chunks when the run aborts.
func TestRunColumnsMultiCancellation(t *testing.T) {
	tr, prof := genTrace(t, "505.mcf", 4*runCheckInterval)
	cols := trace.FromTrace(tr)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	models := []Model{
		New(KindBaseline, Options{SharedTokens: prof.SharedTokens}),
		New(KindSTBPU, Options{SharedTokens: prof.SharedTokens}),
	}
	if _, err := RunColumnsMulti(ctx, models, cols); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled: err = %v, want context.Canceled", err)
	}

	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	cb := &cancelingBatcher{m: New(KindBaseline, Options{SharedTokens: prof.SharedTokens}), cancel: cancel}
	models = []Model{cb, New(KindSTBPU, Options{SharedTokens: prof.SharedTokens})}
	if _, err := RunColumnsMulti(ctx, models, cols); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: err = %v, want context.Canceled", err)
	}
	if cb.batches != 1 {
		t.Errorf("batches after cancel = %d, want 1 (cancel lands at the chunk barrier)", cb.batches)
	}
}

// BenchmarkReplayMulti is the trace-major headline number: one pass
// feeding 4 models (the acceptance bar is ≥1.5× over 4 sequential
// columnar replays, which model-major measures on the same fleet).
func BenchmarkReplayMulti(b *testing.B) {
	tr, p := genTrace(b, "505.mcf", 100_000)
	cols := trace.FromTrace(tr)
	kinds := Fig3Kinds()[:4]
	fleet := func() []Model {
		models := make([]Model, len(kinds))
		for i, kind := range kinds {
			models[i] = New(kind, Options{SharedTokens: p.SharedTokens, Seed: uint64(i)})
		}
		return models
	}
	b.Run("trace-major", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := RunColumnsMulti(context.Background(), fleet(), cols); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("model-major", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, m := range fleet() {
				if _, err := RunColumnsCtx(context.Background(), m, cols); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
