package sim

// The snapshot tier's determinism contract, pinned as properties: for
// every model in the lineup (and every direction predictor STBPU can
// carry), forking or encode/decode-restoring a model at a record
// boundary and measuring onward is bit-identical to prefix replay, and
// the parent is not perturbed by either operation. The fuzz harness
// additionally guarantees a decoder fed arbitrary bytes fails with an
// error, never a panic or silent corruption.

import (
	"bytes"
	"context"
	"testing"

	"stbpu/internal/core"
	"stbpu/internal/trace"
)

// snapConfigs enumerates every model configuration the suite can run:
// the Fig. 3 lineup plus STBPU under each alternative direction
// predictor.
func snapConfigs() []struct {
	name string
	kind ModelKind
	opt  Options
} {
	var cfgs []struct {
		name string
		kind ModelKind
		opt  Options
	}
	for _, k := range Fig3Kinds() {
		cfgs = append(cfgs, struct {
			name string
			kind ModelKind
			opt  Options
		}{k.String(), k, Options{Seed: 7}})
	}
	for _, dir := range []core.DirKind{core.DirSKLCond, core.DirTAGE8, core.DirTAGE64, core.DirPerceptron} {
		cfgs = append(cfgs, struct {
			name string
			kind ModelKind
			opt  Options
		}{"stbpu/" + dir.String(), KindSTBPU, Options{Seed: 7, Dir: dir}})
	}
	return cfgs
}

// snapCols builds the shared switch-heavy test trace once per package
// test run.
func snapCols(t testing.TB) (*trace.Columns, trace.Profile) {
	t.Helper()
	p, err := trace.Preset("mysql_128con_50s")
	if err != nil {
		t.Fatal(err)
	}
	p = p.WithRecords(9000)
	cols, err := trace.GenerateColumns(p)
	if err != nil {
		t.Fatal(err)
	}
	return cols, p
}

// replaySegment runs m over cols[lo:hi) and returns the windowed
// result.
func replaySegment(t testing.TB, m Model, cols *trace.Columns, lo, hi int) Result {
	t.Helper()
	res, err := RunColumnsCtx(context.Background(), m, cols.Slice(lo, hi))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestForkAtBoundaryMatchesPrefixReplay(t *testing.T) {
	cols, prof := snapCols(t)
	n := cols.Len()
	boundary := n / 3
	for _, cfg := range snapConfigs() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			opt := cfg.opt
			opt.SharedTokens = prof.SharedTokens

			// Reference: one model, chunked prefix replay (chunked
			// incremental replay is bit-identical to a single pass —
			// pinned by the sim package's own tests).
			ref := New(cfg.kind, opt)
			replaySegment(t, ref, cols, 0, boundary)
			want := replaySegment(t, ref, cols, boundary, n)

			// Candidate: replay the prefix, fork at the boundary, and
			// measure the tail on the fork AND on the parent.
			parent := New(cfg.kind, opt)
			snapper, ok := parent.(Snapshotter)
			if !ok {
				t.Fatalf("%T does not implement Snapshotter", parent)
			}
			replaySegment(t, parent, cols, 0, boundary)
			fork := snapper.Fork()
			if got := replaySegment(t, fork, cols, boundary, n); got != want {
				t.Errorf("forked tail result diverges:\n got %+v\nwant %+v", got, want)
			}
			if got := replaySegment(t, parent, cols, boundary, n); got != want {
				t.Errorf("parent tail result perturbed by Fork:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

func TestEncodeDecodeRestoreMatchesPrefixReplay(t *testing.T) {
	cols, prof := snapCols(t)
	n := cols.Len()
	boundary := n / 2
	for _, cfg := range snapConfigs() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			opt := cfg.opt
			opt.SharedTokens = prof.SharedTokens

			warm := New(cfg.kind, opt).(Snapshotter)
			replaySegment(t, warm, cols, 0, boundary)
			state := warm.EncodeState()

			// The encoding is a deterministic pure function of model
			// state: re-encoding yields the same bytes.
			if again := warm.EncodeState(); !bytes.Equal(state, again) {
				t.Fatal("EncodeState is not deterministic")
			}

			restored := New(cfg.kind, opt).(Snapshotter)
			if err := restored.DecodeState(state); err != nil {
				t.Fatalf("DecodeState: %v", err)
			}
			want := replaySegment(t, warm, cols, boundary, n)
			if got := replaySegment(t, restored, cols, boundary, n); got != want {
				t.Errorf("restored tail result diverges:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

func TestDecodeStateRejectsForeignModelState(t *testing.T) {
	cols, prof := snapCols(t)
	opt := Options{Seed: 7, SharedTokens: prof.SharedTokens}
	warm := New(KindBaseline, opt).(Snapshotter)
	replaySegment(t, warm, cols, 0, 2000)
	state := warm.EncodeState()
	// An STBPU model fed baseline-model bytes must error out, not
	// half-restore: the store keys checkpoints by model fingerprint,
	// but a corrupt or mis-keyed entry must still fail safe.
	other := New(KindSTBPU, opt).(Snapshotter)
	if err := other.DecodeState(state); err == nil {
		t.Error("DecodeState accepted another model's state bytes")
	}
	if err := warm.DecodeState(nil); err == nil {
		t.Error("DecodeState accepted empty state")
	}
}

// FuzzSnapshotRoundTrip drives every model's decoder with arbitrary
// bytes (must error, never panic) and cross-checks that a valid
// encoding — possibly of a different configuration — either restores
// cleanly or is rejected whole.
func FuzzSnapshotRoundTrip(f *testing.F) {
	cols, prof := snapCols(f)
	cfgs := snapConfigs()
	// Seed the corpus with each configuration's real encoding at a few
	// prefix depths.
	for ci, cfg := range cfgs {
		opt := cfg.opt
		opt.SharedTokens = prof.SharedTokens
		m := New(cfg.kind, opt).(Snapshotter)
		replaySegment(f, m, cols, 0, 1500)
		f.Add(uint8(ci), m.EncodeState())
	}
	f.Add(uint8(0), []byte{})
	f.Add(uint8(3), []byte{0xff, 0x00, 0x41})

	f.Fuzz(func(t *testing.T, ci uint8, data []byte) {
		cfg := cfgs[int(ci)%len(cfgs)]
		opt := cfg.opt
		opt.SharedTokens = prof.SharedTokens
		m := New(cfg.kind, opt).(Snapshotter)
		if err := m.DecodeState(data); err != nil {
			return // rejected whole: fine
		}
		// Accepted state must be internally consistent: the model can
		// encode again and the round trip is stable from here on.
		state := m.EncodeState()
		m2 := New(cfg.kind, opt).(Snapshotter)
		if err := m2.DecodeState(state); err != nil {
			t.Fatalf("re-decode of a just-encoded state failed: %v", err)
		}
		if !bytes.Equal(state, m2.EncodeState()) {
			t.Fatal("encode/decode/encode is not a fixed point")
		}
	})
}
