// Package sim is the trace-driven BPU simulator of §VII-B1 — the
// simulation layer of docs/ARCHITECTURE.md, between the predictor
// packages (internal/bpu, internal/tage, internal/perceptron,
// internal/ittage, internal/core) and the experiment harness
// (internal/harness, internal/experiments). It replays branch traces
// through protection models and reports OAE (overall effective
// accuracy), direction/target prediction rates, and the event counts
// the security analysis consumes.
//
// Five models reproduce Fig. 3:
//
//	Baseline      — unprotected Skylake-style BPU
//	µcode-1       — IBPB+IBRS+STIBP: flush on context switches and kernel
//	                entry, structures halved by STIBP partitioning
//	µcode-2       — IBPB+IBRS: flush on context switches and kernel entry
//	Conservative  — full 48-bit addresses end-to-end (halved BTB capacity),
//	                per-entity PHT separation, no flushing
//	STBPU         — secret-token remapping + encryption + re-randomization
//
// # Replay engine
//
// The hot path is columnar: RunColumnsCtx replays a trace.Columns
// (struct-of-arrays) view in 8192-record chunks through the
// ColumnModel fast path (StepColumns iterates the packed arrays with
// branchless flag extraction, accumulating events in-model via
// bpu.Counters). RunCtx serves AoS record slices through the
// BatchModel path; Step remains as a compatibility shim for models
// that only implement Model, and RunColumnsCtx materializes records
// for pre-columnar models, so every model replays on every path with
// bit-identical results (pinned by tests). Run-scoped counters surface
// through the optional Finalizer interface. Replay is deterministic
// for a fixed (trace, model, seed), which is what lets the harness
// distribute cells across processes — see docs/ARCHITECTURE.md
// "The determinism contract" and "Trace dataflow".
package sim
