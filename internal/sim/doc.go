// Package sim is the trace-driven BPU simulator of §VII-B1 — the
// simulation layer of docs/ARCHITECTURE.md, between the predictor
// packages (internal/bpu, internal/tage, internal/perceptron,
// internal/ittage, internal/core) and the experiment harness
// (internal/harness, internal/experiments). It replays branch traces
// through protection models and reports OAE (overall effective
// accuracy), direction/target prediction rates, and the event counts
// the security analysis consumes.
//
// Five models reproduce Fig. 3:
//
//	Baseline      — unprotected Skylake-style BPU
//	µcode-1       — IBPB+IBRS+STIBP: flush on context switches and kernel
//	                entry, structures halved by STIBP partitioning
//	µcode-2       — IBPB+IBRS: flush on context switches and kernel entry
//	Conservative  — full 48-bit addresses end-to-end (halved BTB capacity),
//	                per-entity PHT separation, no flushing
//	STBPU         — secret-token remapping + encryption + re-randomization
//
// # Replay engine
//
// RunCtx replays in 8192-record chunks through the BatchModel fast path
// (StepBatch accumulates events in-model via bpu.Counters); Step remains
// as a compatibility shim for models that only implement Model.
// Run-scoped counters surface through the optional Finalizer interface.
// Replay is deterministic for a fixed (trace, model, seed), which is
// what lets the harness distribute cells across processes — see
// docs/ARCHITECTURE.md "The determinism contract".
package sim
