// Snapshot support: the Snapshotter capability every Fig. 3 model
// implements, plus the model fingerprint the snapstore keys checkpoints
// by. A Snapshotter can deep-fork its complete predictor state (phase
// measurements branch from a shared warm prefix instead of replaying it)
// and round-trip that state through a deterministic binary encoding (the
// store's cache and disk tiers hold bytes, not live models). Models that
// do not implement Snapshotter still work everywhere — the scheduler
// falls back to prefix replay for them.

package sim

import (
	"fmt"

	"stbpu/internal/bpu"
	"stbpu/internal/ittage"
	"stbpu/internal/perceptron"
	"stbpu/internal/snap"
	"stbpu/internal/tage"
)

// Snapshotter is the warm-state checkpoint capability. The contract is
// bit-identity: replaying records [k,n) on Fork()'s result — or on a
// fresh model of the same configuration after DecodeState(EncodeState())
// — produces exactly the Counters that replaying them on the original
// would have, provided the original had replayed records [0,k). Encoding
// is canonical: two models in the same logical state encode to the same
// bytes (lookup-stash fields that are dead at record boundaries are
// reset on fork and decode).
type Snapshotter interface {
	Model
	// Fork returns a deep copy sharing no mutable state with the
	// receiver.
	Fork() Model
	// EncodeState serializes the model's complete mutable state.
	EncodeState() []byte
	// DecodeState restores state captured by EncodeState on a model of
	// the same configuration. On error the model state is unspecified
	// and the caller must discard it.
	DecodeState(data []byte) error
}

// Fingerprint identifies a model configuration for snapstore keying: two
// (kind, opt) pairs with equal fingerprints build models whose snapshots
// are interchangeable. The seed is part of the fingerprint because the
// token PRNG stream is part of the state.
func Fingerprint(kind ModelKind, opt Options) string {
	th := "default"
	if opt.Thresholds != nil {
		t := *opt.Thresholds
		th = fmt.Sprintf("%d/%d/%d", t.Mispredictions, t.Evictions, t.TageMispredictions)
	}
	return fmt.Sprintf("%s|dir=%s|shared=%t|th=%s|seed=%#x", kind, opt.Dir, opt.SharedTokens, th, opt.Seed)
}

// cloneDirection deep-copies a unit's direction predictor for a fork.
// Unprotected predictors keep their legacy hashers (stateless, shareable);
// a nil dir means the unit built its own SKLCond over m, the fork's
// mapper.
func cloneDirection(dir bpu.DirectionPredictor, m bpu.Mapper) bpu.DirectionPredictor {
	switch d := dir.(type) {
	case nil:
		return nil
	case *bpu.SKLCond:
		return d.CloneWith(m)
	case *tage.Predictor:
		return d.CloneWith(nil)
	case *perceptron.Predictor:
		return d.CloneWith(nil)
	default:
		panic(fmt.Sprintf("sim: cannot fork direction predictor %T", dir))
	}
}

// encodeDirection serializes a unit's direction predictor. A nil dir is
// unreachable: NewUnit materializes the default SKLCond at construction.
func encodeDirection(dir bpu.DirectionPredictor, w *snap.Writer) {
	switch d := dir.(type) {
	case *bpu.SKLCond:
		d.EncodeState(w)
	case *tage.Predictor:
		d.EncodeState(w)
	case *perceptron.Predictor:
		d.EncodeState(w)
	default:
		panic(fmt.Sprintf("sim: cannot encode direction predictor %T", dir))
	}
}

// decodeDirection restores a direction predictor encoded by
// encodeDirection.
func decodeDirection(dir bpu.DirectionPredictor, r *snap.Reader) {
	switch d := dir.(type) {
	case *bpu.SKLCond:
		d.DecodeState(r)
	case *tage.Predictor:
		d.DecodeState(r)
	case *perceptron.Predictor:
		d.DecodeState(r)
	default:
		r.Fail("sim: cannot decode direction predictor %T", dir)
	}
}

// forkUnit deep-copies a unit for a fork addressed through mapper (pass
// the original's mapper when it is stateless and shareable).
func forkUnit(u *bpu.Unit, mapper bpu.Mapper) *bpu.Unit {
	dir := cloneDirection(u.Direction(), mapper)
	var ind bpu.IndirectPredictor
	if it, ok := u.Indirect().(*ittage.Predictor); ok {
		ind = it.CloneWith(nil)
	} else if u.Indirect() != nil {
		panic(fmt.Sprintf("sim: cannot fork indirect predictor %T", u.Indirect()))
	}
	return u.Clone(mapper, dir, ind)
}

// encodeUnit serializes a unit's structures, direction predictor, and
// (when present) indirect predictor.
func encodeUnit(u *bpu.Unit, w *snap.Writer) {
	u.EncodeState(w)
	encodeDirection(u.Direction(), w)
	it, hasIT := u.Indirect().(*ittage.Predictor)
	w.Bool(hasIT)
	if hasIT {
		it.EncodeState(w)
	}
}

// decodeUnit restores a unit encoded by encodeUnit.
func decodeUnit(u *bpu.Unit, r *snap.Reader) {
	u.DecodeState(r)
	decodeDirection(u.Direction(), r)
	it, hasIT := u.Indirect().(*ittage.Predictor)
	if r.Bool() != hasIT {
		r.Fail("sim: indirect-predictor marker does not match model config")
		return
	}
	if hasIT {
		it.DecodeState(r)
	}
}

// Fork implements Snapshotter. The conservative model's entity mapper is
// per-fork (its salt is dead at record boundaries but the pointer must
// not be shared); the baseline's legacy mapper is stateless and shared.
func (m *UnitModel) Fork() Model {
	nm := &UnitModel{ModelName: m.ModelName}
	mapper := m.Unit.Mapper()
	if m.entity != nil {
		nm.entity = &entityMapper{}
		mapper = nm.entity
	}
	nm.Unit = forkUnit(m.Unit, mapper)
	return nm
}

// EncodeState implements Snapshotter. The conservative model's entity
// salt is not state: setEntity overwrites it before every predict, so at
// a record boundary it is dead and forks/decodes start it at zero.
func (m *UnitModel) EncodeState() []byte {
	w := snap.NewWriter(4096)
	encodeUnit(m.Unit, w)
	return w.Bytes()
}

// DecodeState implements Snapshotter.
func (m *UnitModel) DecodeState(data []byte) error {
	r := snap.NewReader(data)
	decodeUnit(m.Unit, r)
	if m.entity != nil {
		m.entity.salt = 0
	}
	return r.Done()
}

// Fork implements Snapshotter.
func (m *FlushModel) Fork() Model {
	nm := &FlushModel{
		OnCtxSwitch:   m.OnCtxSwitch,
		OnKernelEntry: m.OnKernelEntry,
		flushes:       m.flushes,
		prevPID:       m.prevPID,
		prevKernel:    m.prevKernel,
		started:       m.started,
	}
	nm.UnitModel = *m.UnitModel.Fork().(*UnitModel)
	return nm
}

// EncodeState implements Snapshotter: the unit state plus the flush
// policy's switch-tracking registers and barrier count.
func (m *FlushModel) EncodeState() []byte {
	w := snap.NewWriter(4096)
	encodeUnit(m.Unit, w)
	w.U64(m.flushes)
	w.U32(m.prevPID)
	w.Bool(m.prevKernel)
	w.Bool(m.started)
	return w.Bytes()
}

// DecodeState implements Snapshotter.
func (m *FlushModel) DecodeState(data []byte) error {
	r := snap.NewReader(data)
	decodeUnit(m.Unit, r)
	m.flushes = r.U64()
	m.prevPID = r.U32()
	m.prevKernel = r.Bool()
	m.started = r.Bool()
	if m.entity != nil {
		m.entity.salt = 0
	}
	return r.Done()
}

// Fork implements Snapshotter.
func (m *STBPUModel) Fork() Model { return &STBPUModel{Inner: m.Inner.Fork()} }

// EncodeState implements Snapshotter.
func (m *STBPUModel) EncodeState() []byte {
	w := snap.NewWriter(1 << 16)
	m.Inner.EncodeState(w)
	return w.Bytes()
}

// DecodeState implements Snapshotter.
func (m *STBPUModel) DecodeState(data []byte) error {
	r := snap.NewReader(data)
	m.Inner.DecodeState(r)
	return r.Done()
}

// Compile-time capability checks: every Fig. 3 model forks.
var (
	_ Snapshotter = (*UnitModel)(nil)
	_ Snapshotter = (*FlushModel)(nil)
	_ Snapshotter = (*STBPUModel)(nil)
)
