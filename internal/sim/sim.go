// Models, the replay loop, and Result accounting (see doc.go for the
// package overview).

package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"stbpu/internal/bpu"
	"stbpu/internal/core"
	"stbpu/internal/stats"
	"stbpu/internal/token"
	"stbpu/internal/trace"
)

// Model processes trace records and reports prediction events.
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// Step predicts and resolves one retired branch.
	Step(rec trace.Record) (bpu.Prediction, bpu.Events)
}

// Counters is the batched event accumulator (see bpu.Counters).
type Counters = bpu.Counters

// BatchModel is the batched stepping fast path: StepBatch replays a slice
// of retired branches and folds their resolution events into acc, with no
// per-record interface dispatch or Events returns. RunCtx uses it when a
// model implements it and falls back to per-record Step otherwise, so
// external models keep working unchanged.
type BatchModel interface {
	StepBatch(recs []trace.Record, acc *Counters)
}

// ColumnModel is the columnar stepping fast path: StepColumns replays
// rows [lo,hi) of a struct-of-arrays trace, folding resolution events
// into acc. Implementations iterate the packed arrays directly —
// branchless flag extraction, no per-record struct copy from the trace
// stream — and must be bit-identical to stepping the equivalent
// records through StepBatch/Step. RunColumnsCtx uses it when a model
// implements it and falls back to materializing chunk-sized record
// batches otherwise, so external models keep working unchanged.
type ColumnModel interface {
	StepColumns(cols *trace.Columns, lo, hi int, acc *Counters)
}

// Finalizer lets a model report run-scoped counters (re-randomizations,
// flushes, ...) into the Result after replay finishes. RunCtx calls it
// once at the end of a completed run, so new models can extend Result
// accounting without editing this package.
type Finalizer interface {
	Finalize(res *Result)
}

// Result aggregates one simulation run.
type Result struct {
	Model    string
	Workload string

	Records     int
	Mispredicts uint64

	Conds      uint64
	DirCorrect uint64

	TargetKnown   uint64
	TargetCorrect uint64

	Evictions uint64
	BTBMisses uint64

	CtxSwitches  uint64
	ModeSwitches uint64

	// Rerandomizations is nonzero only for STBPU models.
	Rerandomizations uint64
	// Flushes is nonzero only for flushing models.
	Flushes uint64
}

// OAE is the overall effective accuracy (§VII-B1): a branch counts as
// correct only if every necessary prediction (direction and target) was
// correct.
func (r Result) OAE() float64 {
	return 1 - stats.Ratio(r.Mispredicts, uint64(r.Records))
}

// DirectionRate is the fraction of conditional branches whose direction
// was predicted correctly.
func (r Result) DirectionRate() float64 { return stats.Ratio(r.DirCorrect, r.Conds) }

// TargetRate is the fraction of taken branches whose target was predicted
// correctly.
func (r Result) TargetRate() float64 { return stats.Ratio(r.TargetCorrect, r.TargetKnown) }

// Run replays a trace through a model.
func Run(m Model, tr *trace.Trace) Result {
	res, _ := RunCtx(context.Background(), m, tr)
	return res
}

// runCheckInterval is how many records RunCtx replays between context
// checks: coarse enough to cost nothing, fine enough that cancellation
// lands within a fraction of a millisecond.
const runCheckInterval = 8192

// RunCtx replays a trace through a model, aborting with ctx.Err() when the
// context is canceled mid-replay. Replay proceeds in runCheckInterval-sized
// chunks through the model's StepBatch fast path (falling back to the Step
// shim for models that don't implement BatchModel), with one cancellation
// check between chunks — the check before the first chunk is the single
// up-front one, never repeated at record zero.
func RunCtx(ctx context.Context, m Model, tr *trace.Trace) (Result, error) {
	res := Result{Model: m.Name(), Workload: tr.Name, Records: len(tr.Records)}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	recs := tr.Records
	bm, batched := m.(BatchModel)
	var acc Counters
	for start := 0; start < len(recs); start += runCheckInterval {
		if start > 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		end := start + runCheckInterval
		if end > len(recs) {
			end = len(recs)
		}
		// Context/mode switch accounting is model-independent: compare
		// each record against its predecessor across chunk boundaries.
		from := start
		if from == 0 {
			from = 1
		}
		for i := from; i < end; i++ {
			if recs[i].PID != recs[i-1].PID {
				res.CtxSwitches++
			}
			if recs[i].Kernel != recs[i-1].Kernel {
				res.ModeSwitches++
			}
		}
		if batched {
			bm.StepBatch(recs[start:end], &acc)
		} else {
			for i := start; i < end; i++ {
				_, ev := m.Step(recs[i])
				acc.Note(ev)
			}
		}
	}
	res.Mispredicts = acc.Mispredicts
	res.Conds, res.DirCorrect = acc.Conds, acc.DirCorrect
	res.TargetKnown, res.TargetCorrect = acc.TargetKnown, acc.TargetCorrect
	res.Evictions, res.BTBMisses = acc.Evictions, acc.BTBMisses
	if f, ok := m.(Finalizer); ok {
		f.Finalize(&res)
	}
	return res, nil
}

// RunColumns replays a columnar trace through a model.
func RunColumns(m Model, cols *trace.Columns) Result {
	res, _ := RunColumnsCtx(context.Background(), m, cols)
	return res
}

// RunColumnsCtx replays a struct-of-arrays trace through a model — the
// columnar twin of RunCtx, and the suite's hot replay path. Chunking,
// cancellation, and context/mode-switch accounting match RunCtx
// exactly; the switch accounting reads only the PID column and the
// kernel flag bit, so the model-independent scan never touches the
// other columns. Models implementing ColumnModel step the packed
// arrays in place; BatchModel-only models receive chunk-sized record
// batches materialized into one reused scratch buffer; bare Models
// step materialized records one at a time. All three paths are
// bit-identical (pinned by tests).
func RunColumnsCtx(ctx context.Context, m Model, cols *trace.Columns) (Result, error) {
	// The columns may be a zero-copy view of an mmap'd STBT spill whose
	// mapping is released by a finalizer on cols; the packed slices alone
	// do not keep cols (and thus the mapping) alive, so pin it for the
	// whole replay.
	defer runtime.KeepAlive(cols)
	n := cols.Len()
	res := Result{Model: m.Name(), Workload: cols.Name, Records: n}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	cm, columnar := m.(ColumnModel)
	bm, batched := m.(BatchModel)
	var scratch []trace.Record
	if !columnar && batched {
		scratch = make([]trace.Record, 0, runCheckInterval)
	}
	var acc Counters
	pids, flags := cols.PIDs, cols.Flags
	for start := 0; start < n; start += runCheckInterval {
		if start > 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		end := start + runCheckInterval
		if end > n {
			end = n
		}
		from := start
		if from == 0 {
			from = 1
		}
		for i := from; i < end; i++ {
			if pids[i] != pids[i-1] {
				res.CtxSwitches++
			}
			if (flags[i]^flags[i-1])&trace.FlagKernel != 0 {
				res.ModeSwitches++
			}
		}
		switch {
		case columnar:
			cm.StepColumns(cols, start, end, &acc)
		case batched:
			scratch = cols.AppendRecords(scratch[:0], start, end)
			bm.StepBatch(scratch, &acc)
		default:
			for i := start; i < end; i++ {
				_, ev := m.Step(cols.Record(i))
				acc.Note(ev)
			}
		}
	}
	res.Mispredicts = acc.Mispredicts
	res.Conds, res.DirCorrect = acc.Conds, acc.DirCorrect
	res.TargetKnown, res.TargetCorrect = acc.TargetKnown, acc.TargetCorrect
	res.Evictions, res.BTBMisses = acc.Evictions, acc.BTBMisses
	if f, ok := m.(Finalizer); ok {
		f.Finalize(&res)
	}
	return res, nil
}

// multiState is one model's private replay state inside RunColumnsMulti:
// the resolved fast-path interfaces, the per-model scratch buffer for the
// batched fallback, and the per-model event accumulator. Everything in it
// is touched by exactly one goroutine per chunk, so models never share
// mutable state.
type multiState struct {
	m        Model
	cm       ColumnModel
	bm       BatchModel
	columnar bool
	batched  bool
	scratch  []trace.Record
	acc      Counters
}

// step replays rows [start,end) through this model, dispatching exactly
// like RunColumnsCtx's per-chunk switch.
func (st *multiState) step(cols *trace.Columns, start, end int) {
	switch {
	case st.columnar:
		st.cm.StepColumns(cols, start, end, &st.acc)
	case st.batched:
		st.scratch = cols.AppendRecords(st.scratch[:0], start, end)
		st.bm.StepBatch(st.scratch, &st.acc)
	default:
		for i := start; i < end; i++ {
			_, ev := st.m.Step(cols.Record(i))
			st.acc.Note(ev)
		}
	}
}

// RunColumnsMulti replays one resident columnar trace through N models in
// a single pass — the trace-major twin of RunColumnsCtx. The trace is
// chunked exactly as RunColumnsCtx chunks it (runCheckInterval records,
// one cancellation check between chunks), the model-independent
// context/mode-switch scan runs once per chunk instead of once per model,
// and then every model steps the chunk concurrently (one goroutine per
// model, joined before the next chunk) so the hot slice of the packed
// arrays is read N times while it is still in cache and the models'
// predictor work overlaps across cores. Per-model state never crosses a
// goroutine, so results[i] is bit-identical to RunColumnsCtx(ctx,
// models[i], cols) — the determinism contract the trace-major scheduler
// relies on, pinned by TestRunColumnsMultiMatchesSequential. A single
// model delegates to RunColumnsCtx outright.
func RunColumnsMulti(ctx context.Context, models []Model, cols *trace.Columns) ([]Result, error) {
	if len(models) == 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, nil
	}
	if len(models) == 1 {
		res, err := RunColumnsCtx(ctx, models[0], cols)
		if err != nil {
			return nil, err
		}
		return []Result{res}, nil
	}
	defer runtime.KeepAlive(cols) // see RunColumnsCtx: mmap'd views
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := cols.Len()
	results := make([]Result, len(models))
	states := make([]multiState, len(models))
	for i, m := range models {
		results[i] = Result{Model: m.Name(), Workload: cols.Name, Records: n}
		st := &states[i]
		st.m = m
		st.cm, st.columnar = m.(ColumnModel)
		st.bm, st.batched = m.(BatchModel)
		if !st.columnar && st.batched {
			st.scratch = make([]trace.Record, 0, runCheckInterval)
		}
	}
	var ctxSwitches, modeSwitches uint64
	pids, flags := cols.PIDs, cols.Flags
	// One persistent worker goroutine per model, spawned once and fed
	// chunk ranges over a buffered channel — spawning len(states)
	// goroutines (each with a fresh closure) per chunk dominated the
	// trace-major allocation profile. The channel send happens-before
	// the worker's receive and wg.Done happens-before wg.Wait returns,
	// so each chunk's per-model state is still touched by exactly one
	// goroutine at a time.
	var wg sync.WaitGroup
	work := make([]chan [2]int, len(states))
	for i := range states {
		work[i] = make(chan [2]int, 1)
		go func(st *multiState, ch <-chan [2]int) {
			for rng := range ch {
				st.step(cols, rng[0], rng[1])
				wg.Done()
			}
		}(&states[i], work[i])
	}
	defer func() {
		for i := range work {
			close(work[i])
		}
	}()
	for start := 0; start < n; start += runCheckInterval {
		if start > 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		end := start + runCheckInterval
		if end > n {
			end = n
		}
		from := start
		if from == 0 {
			from = 1
		}
		for i := from; i < end; i++ {
			if pids[i] != pids[i-1] {
				ctxSwitches++
			}
			if (flags[i]^flags[i-1])&trace.FlagKernel != 0 {
				modeSwitches++
			}
		}
		wg.Add(len(states))
		for i := range work {
			work[i] <- [2]int{start, end}
		}
		wg.Wait()
	}
	for i := range states {
		st := &states[i]
		res := &results[i]
		res.CtxSwitches, res.ModeSwitches = ctxSwitches, modeSwitches
		res.Mispredicts = st.acc.Mispredicts
		res.Conds, res.DirCorrect = st.acc.Conds, st.acc.DirCorrect
		res.TargetKnown, res.TargetCorrect = st.acc.TargetKnown, st.acc.TargetCorrect
		res.Evictions, res.BTBMisses = st.acc.Evictions, st.acc.BTBMisses
		if f, ok := st.m.(Finalizer); ok {
			f.Finalize(res)
		}
	}
	return results, nil
}

// ---------------------------------------------------------------------------
// Model implementations.

// ModelKind enumerates the Fig. 3 protection models.
type ModelKind int

const (
	// KindBaseline is the unprotected BPU.
	KindBaseline ModelKind = iota
	// KindUcode1 models IBPB+IBRS+STIBP microcode protection.
	KindUcode1
	// KindUcode2 models IBPB+IBRS microcode protection.
	KindUcode2
	// KindConservative models the full-address, reduced-capacity design.
	KindConservative
	// KindSTBPU is the paper's design.
	KindSTBPU
)

// String names the model as in Fig. 3.
func (k ModelKind) String() string {
	switch k {
	case KindBaseline:
		return "baseline"
	case KindUcode1:
		return "ucode-protection-1"
	case KindUcode2:
		return "ucode-protection-2"
	case KindConservative:
		return "conservative"
	case KindSTBPU:
		return "STBPU"
	default:
		return fmt.Sprintf("ModelKind(%d)", int(k))
	}
}

// Fig3Kinds returns the five models in the paper's comparison order.
func Fig3Kinds() []ModelKind {
	return []ModelKind{KindBaseline, KindUcode1, KindUcode2, KindConservative, KindSTBPU}
}

// Options carries per-run knobs shared by the factory.
type Options struct {
	// SharedTokens enables STBPU selective token sharing (from the
	// workload profile).
	SharedTokens bool
	// Thresholds overrides the STBPU re-randomization budgets.
	Thresholds *token.Thresholds
	// Dir selects the direction predictor for baseline/STBPU models
	// (default SKLCond, matching the Fig. 3 trace simulator).
	Dir core.DirKind
	// Seed fixes stochastic state (token stream).
	Seed uint64
}

// New constructs a protection model.
func New(kind ModelKind, opt Options) Model {
	switch kind {
	case KindBaseline:
		return &UnitModel{ModelName: kind.String(), Unit: core.NewUnprotectedUnit(opt.Dir)}
	case KindUcode1:
		// STIBP partitions the BPU between hardware threads: halved BTB
		// and PHT capacity for each; flush on context and mode switches.
		u := bpu.NewUnit(bpu.UnitConfig{
			Direction: nil, // SKLCond over legacy mapper
			BTB:       bpu.BTBConfig{Sets: bpu.BTBSets / 2, Ways: bpu.BTBWays},
		})
		return &FlushModel{
			UnitModel:     UnitModel{ModelName: kind.String(), Unit: u},
			OnCtxSwitch:   true,
			OnKernelEntry: true,
		}
	case KindUcode2:
		return &FlushModel{
			UnitModel:     UnitModel{ModelName: kind.String(), Unit: core.NewUnprotectedUnit(opt.Dir)},
			OnCtxSwitch:   true,
			OnKernelEntry: true,
		}
	case KindConservative:
		m := &entityMapper{}
		u := bpu.NewUnit(bpu.UnitConfig{
			Mapper: m,
			BTB:    bpu.ConservativeBTBConfig(),
		})
		return &UnitModel{ModelName: kind.String(), Unit: u, entity: m}
	case KindSTBPU:
		return &STBPUModel{Inner: core.NewModel(core.ModelConfig{
			Dir:          opt.Dir,
			SharedTokens: opt.SharedTokens,
			Thresholds:   opt.Thresholds,
			Seed:         opt.Seed,
		})}
	default:
		panic(fmt.Sprintf("sim: unknown model kind %d", kind))
	}
}

// UnitModel adapts a bare bpu.Unit to the Model interface.
type UnitModel struct {
	ModelName string
	Unit      *bpu.Unit
	entity    *entityMapper // conservative model only
}

// Name implements Model.
func (m *UnitModel) Name() string { return m.ModelName }

// Step implements Model.
func (m *UnitModel) Step(rec trace.Record) (bpu.Prediction, bpu.Events) {
	if m.entity != nil {
		m.entity.setEntity(rec)
	}
	pred := m.Unit.Predict(rec.PC, rec.Kind)
	return pred, m.Unit.Update(rec, pred)
}

// StepBatch implements BatchModel: the same predict/update sequence as
// Step, with direct method calls and accumulator folding in the loop.
func (m *UnitModel) StepBatch(recs []trace.Record, acc *Counters) {
	u := m.Unit
	for i := range recs {
		if m.entity != nil {
			m.entity.setEntity(recs[i])
		}
		pred := u.Predict(recs[i].PC, recs[i].Kind)
		acc.Note(u.Update(recs[i], pred))
	}
}

// StepColumns implements ColumnModel: the Step predict/update sequence
// driven off the packed arrays. Only the PC/Target/Flags columns are
// loaded per record (Update never reads the entity fields); the PID
// and kernel-mode side columns are consulted solely for the
// conservative model's entity salt.
func (m *UnitModel) StepColumns(cols *trace.Columns, lo, hi int, acc *Counters) {
	u := m.Unit
	pcs, targets, flags := cols.PCs, cols.Targets, cols.Flags
	for i := lo; i < hi; i++ {
		f := flags[i]
		rec := trace.Record{
			PC:     pcs[i],
			Target: targets[i],
			Kind:   trace.Kind(f & trace.FlagKindMask),
			Taken:  f&trace.FlagTaken != 0,
		}
		if m.entity != nil {
			rec.PID = cols.PIDs[i]
			rec.Kernel = f&trace.FlagKernel != 0
			m.entity.setEntity(rec)
		}
		pred := u.Predict(rec.PC, rec.Kind)
		acc.Note(u.Update(rec, pred))
	}
}

// FlushModel wraps a UnitModel with microcode-style flushing.
type FlushModel struct {
	UnitModel
	OnCtxSwitch   bool
	OnKernelEntry bool

	flushes    uint64
	prevPID    uint32
	prevKernel bool
	started    bool
}

// Step implements Model.
func (m *FlushModel) Step(rec trace.Record) (bpu.Prediction, bpu.Events) {
	m.maybeFlush(rec)
	return m.UnitModel.Step(rec)
}

// maybeFlush applies the microcode barrier policy for one record.
func (m *FlushModel) maybeFlush(rec trace.Record) {
	if m.started {
		if m.OnCtxSwitch && rec.PID != m.prevPID {
			m.Unit.Flush()
			m.flushes++
		}
		if m.OnKernelEntry && rec.Kernel && !m.prevKernel {
			m.Unit.Flush()
			m.flushes++
		}
	}
	m.prevPID, m.prevKernel, m.started = rec.PID, rec.Kernel, true
}

// StepBatch implements BatchModel, shadowing the embedded UnitModel fast
// path so the flush policy still runs per record.
func (m *FlushModel) StepBatch(recs []trace.Record, acc *Counters) {
	u := m.Unit
	for i := range recs {
		m.maybeFlush(recs[i])
		if m.entity != nil {
			m.entity.setEntity(recs[i])
		}
		pred := u.Predict(recs[i].PC, recs[i].Kind)
		acc.Note(u.Update(recs[i], pred))
	}
}

// StepColumns implements ColumnModel, shadowing the embedded UnitModel
// fast path. The flush policy reads the entity columns per record, so
// unlike the plain UnitModel path the PID/kernel side arrays stay hot.
func (m *FlushModel) StepColumns(cols *trace.Columns, lo, hi int, acc *Counters) {
	u := m.Unit
	pcs, targets, flags := cols.PCs, cols.Targets, cols.Flags
	for i := lo; i < hi; i++ {
		f := flags[i]
		rec := trace.Record{
			PC:     pcs[i],
			Target: targets[i],
			PID:    cols.PIDs[i],
			Kind:   trace.Kind(f & trace.FlagKindMask),
			Taken:  f&trace.FlagTaken != 0,
			Kernel: f&trace.FlagKernel != 0,
		}
		m.maybeFlush(rec)
		if m.entity != nil {
			m.entity.setEntity(rec)
		}
		pred := u.Predict(rec.PC, rec.Kind)
		acc.Note(u.Update(rec, pred))
	}
}

// Finalize implements Finalizer: flushing models report their barrier
// count into the run result.
func (m *FlushModel) Finalize(res *Result) { res.Flushes = m.flushes }

// STBPUModel adapts core.Model to the Model interface.
type STBPUModel struct {
	Inner *core.Model
}

// Name implements Model.
func (m *STBPUModel) Name() string { return m.Inner.Name() }

// Step implements Model.
func (m *STBPUModel) Step(rec trace.Record) (bpu.Prediction, bpu.Events) {
	return m.Inner.Step(rec)
}

// StepBatch implements BatchModel by delegating to the core model's
// batched path.
func (m *STBPUModel) StepBatch(recs []trace.Record, acc *Counters) {
	m.Inner.StepBatch(recs, acc)
}

// StepColumns implements ColumnModel by delegating to the core model's
// columnar path.
func (m *STBPUModel) StepColumns(cols *trace.Columns, lo, hi int, acc *Counters) {
	m.Inner.StepColumns(cols, lo, hi, acc)
}

// Finalize implements Finalizer: STBPU models report their
// re-randomization count into the run result.
func (m *STBPUModel) Finalize(res *Result) {
	res.Rerandomizations = m.Inner.Rerandomizations()
}

// entityMapper is the conservative model's addressing: legacy folds salted
// with the software entity, so distinct entities never collide in the PHT
// (the BTB side is handled by full 48-bit tags). This is the "more
// structural BPU changes" alternative of §VII-B1.
type entityMapper struct {
	bpu.LegacyMapper
	salt uint64
}

func (m *entityMapper) setEntity(rec trace.Record) {
	if rec.Kernel {
		m.salt = 0xffff_0000_0000
		return
	}
	m.salt = uint64(rec.PID) << 20
}

// conservativePHTMask halves the effective PHT: storing enough address
// bits to rule out cross-branch collisions costs the same hardware budget
// the BTB pays, so half the counters go to tags.
const conservativePHTMask = bpu.PHTSize/2 - 1

// PHT1 overrides the legacy index with entity salting and halved capacity.
func (m *entityMapper) PHT1(pc uint64) uint32 {
	return m.LegacyMapper.PHT1(pc^m.salt) & conservativePHTMask
}

// PHT2 overrides the legacy index with entity salting and halved capacity.
func (m *entityMapper) PHT2(pc uint64, ghr uint64) uint32 {
	return m.LegacyMapper.PHT2(pc^m.salt, ghr) & conservativePHTMask
}

// BTBIndex salts the set/tag/offset computation with the entity, so two
// entities at the same virtual address (same binary mapped in two
// processes) index different entries — the ASID-style isolation a
// deliberately conservative design would enforce. The full 48-bit tag then
// removes the remaining compressed-tag false hits.
func (m *entityMapper) BTBIndex(pc uint64) (set, tag, offs uint32) {
	return m.LegacyMapper.BTBIndex(pc ^ m.salt ^ m.salt<<13)
}
