package attacks

// Target-injection attacks (§VI-A.1): Spectre v2 (BTB) and SpectreRSB.
// The attacker plants a malicious target so the victim speculatively
// executes a gadget. Under STBPU the stored target is φ-encrypted, so even
// a colliding entry decrypts to a random address for the victim: the
// attacker must brute-force τA over the 2^32 target space (≈2^31 expected
// attempts, each a monitored misprediction).

// SpectreV2 tries to make the victim's indirect branch predict the gadget
// address. maxAttempts bounds the brute force over attacker-supplied
// targets.
func SpectreV2(t *Target, maxAttempts int) Result {
	res := Result{Attack: "spectre-v2", Model: t.Name}

	vPC := victimBase + 0x7000
	legit := victimBase + 0x7400

	for attempt := 0; attempt < maxAttempts; attempt++ {
		res.Trials++
		// The attacker trains an aliasing indirect branch with a chosen
		// target. On the baseline, τA = gadget works on the first try;
		// the brute force varies τA to search for the value that
		// decrypts to the gadget under the victim's φ.
		tau := gadgetAddr + uint64(attempt)<<12
		atk := ijmp(vPC, tau, AttackerPID)
		_, ev := t.step(atk)
		t.step(atk) // reinforce
		if ev.Mispredict {
			res.AttackerMispredicts++
		}
		if ev.BTBEviction {
			res.Evictions++
		}

		// Victim executes its indirect branch; the *prediction* is what
		// the CPU would speculatively fetch.
		pred, vev := t.step(ijmp(vPC, legit, VictimPID))
		_ = vev
		if pred.TargetValid && pred.Target == gadgetAddr {
			res.Succeeded = true
			res.Leak = "victim speculatively executes gadget"
			break
		}
	}
	res.Rerandomizations = t.Rerandomizations()
	return res
}

// SpectreRSB poisons the shared return stack: the attacker pushes return
// addresses pointing at the gadget, then the victim's return consumes one.
func SpectreRSB(t *Target, maxAttempts int) Result {
	res := Result{Attack: "spectre-rsb", Model: t.Name}

	vFn := victimBase + 0x8000

	for attempt := 0; attempt < maxAttempts; attempt++ {
		res.Trials++
		// Attacker call pushes a poisoned return address. In hardware
		// this is done by manipulating its own stack before yielding
		// (call gadget; pop). We model the net effect: an RSB entry
		// whose stored value the attacker chose.
		poison := gadgetAddr + uint64(attempt)<<12
		t.step(callRec(poison-4, attackerBase+0x9000, AttackerPID))
		// The attacker's call pushed (poison-4)+4 = poison.

		// Victim returns without a matching call: it consumes the
		// attacker's RSB entry.
		pred, ev := t.step(retRec(vFn+0x3c, vFn+0x100, VictimPID))
		if ev.Mispredict {
			// The victim mispredicts, but the monitored entity for the
			// attack budget is the attacker's training activity; count
			// the attacker-visible event from its own next probe.
			res.AttackerMispredicts++
		}
		if pred.FromRSB && pred.TargetValid && pred.Target == gadgetAddr {
			res.Succeeded = true
			res.Leak = "victim return speculates into gadget"
			break
		}
	}
	res.Rerandomizations = t.Rerandomizations()
	return res
}

// DoSEviction measures the §VI-A.6 denial-of-service scenario: the
// attacker tries to keep evicting the BTB entry of a victim's hot branch.
// It returns the victim's target-misprediction count over `rounds`
// iterations; the baseline attacker targets the exact set, the STBPU
// attacker must spray blindly with the same per-round effort.
func DoSEviction(t *Target, rounds, sprayPerRound int) Result {
	res := Result{Attack: "dos-eviction", Model: t.Name}

	vPC := victimBase + 0x9000
	victim := jmp(vPC, vPC+0x300, VictimPID)
	t.step(victim) // warm

	victimMisses := 0
	for round := 0; round < rounds; round++ {
		res.Trials++
		for i := 0; i < sprayPerRound; i++ {
			var pc uint64
			if t.Name == "baseline" {
				// Same set as the victim, distinct tags.
				pc = attackerBase + (vPC & 0x3fe0) + uint64(i+1)<<14
			} else {
				// Blind spray.
				pc = attackerBase + uint64(round*sprayPerRound+i)*32
			}
			_, ev := t.step(jmp(pc, pc+0x40, AttackerPID))
			if ev.BTBEviction {
				res.Evictions++
			}
			if ev.Mispredict {
				res.AttackerMispredicts++
			}
		}
		pred, _ := t.step(victim)
		if !pred.TargetValid {
			victimMisses++
		}
	}
	res.Succeeded = victimMisses > rounds/2
	if res.Succeeded {
		res.Leak = "victim slowed by chronic BTB eviction"
	}
	res.Rerandomizations = t.Rerandomizations()
	return res
}
