package attacks

import (
	"math"
	"testing"

	"stbpu/internal/analysis"
	"stbpu/internal/trace"
)

// TestDoSEvictionProbMatchesAnalysis validates the §VI-A.6 closed form
// empirically: blindly spraying n branches into an ST-keyed BTB evicts a
// specific victim entry with probability ≈ 1 − (1 − 1/(I·W))ⁿ.
func TestDoSEvictionProbMatchesAnalysis(t *testing.T) {
	btb := analysis.SkylakeBTB()
	// Spray budget sized for ≈50% eviction probability.
	sprays := int(analysis.DoSSpraysForProb(btb, 0.5))

	const trials = 60
	evicted := 0
	for trial := 0; trial < trials; trial++ {
		tgt := NewSTBPUTarget(nil)
		vPC := victimBase + 0x1_0000 + uint64(trial)*0x40
		victim := jmp(vPC, vPC+0x300, VictimPID)
		tgt.step(victim)
		tgt.step(victim) // warm: second execution hits

		base := attackerBase + uint64(trial)<<24
		for i := 0; i < sprays; i++ {
			pc := base + uint64(i)*32
			tgt.step(jmp(pc, pc+0x40, AttackerPID))
		}

		pred, _ := tgt.step(victim)
		if !pred.TargetValid {
			evicted++
		}
	}
	got := float64(evicted) / trials
	want := 0.5
	// Binomial noise at n=60: σ ≈ 0.065; allow 3σ.
	if math.Abs(got-want) > 0.20 {
		t.Errorf("measured blind-spray eviction probability %.3f, analytic %.2f (sprays=%d)",
			got, want, sprays)
	}
}

// TestDoSBlindSprayWeakerThanTargeted contrasts the two §VI-A.6 regimes:
// on the baseline the attacker targets the victim's exact set and starves
// it with W+ inserts; under STBPU the same per-round effort leaves the
// victim mostly unharmed.
func TestDoSBlindSprayWeakerThanTargeted(t *testing.T) {
	const rounds, perRound = 40, 16
	run := func(tgt *Target) int {
		vPC := victimBase + 0x2_0000
		victim := jmp(vPC, vPC+0x300, VictimPID)
		tgt.step(victim)
		misses := 0
		for round := 0; round < rounds; round++ {
			for i := 0; i < perRound; i++ {
				var pc uint64
				if tgt.Name == "baseline" {
					pc = attackerBase + (vPC & 0x3fe0) + uint64(i+1)<<14
				} else {
					pc = attackerBase + uint64(round*perRound+i)*32
				}
				tgt.step(jmp(pc, pc+0x40, AttackerPID))
			}
			if pred, _ := tgt.step(victim); !pred.TargetValid {
				misses++
			}
		}
		return misses
	}
	baseMisses := run(NewBaselineTarget())
	stMisses := run(NewSTBPUTarget(nil))
	if baseMisses < rounds*3/4 {
		t.Errorf("targeted DoS on baseline starved the victim only %d/%d rounds", baseMisses, rounds)
	}
	if stMisses >= baseMisses/2 {
		t.Errorf("blind spray on STBPU starved the victim %d/%d rounds (baseline %d)",
			stMisses, rounds, baseMisses)
	}
}

// TestRSBOverflowOutOfScope pins the paper's honesty point: RSB capacity
// attacks are not collision-based and STBPU does not claim to stop them
// (Table I EB-AE RSB row / §VI-A.6).
func TestRSBOverflowOutOfScope(t *testing.T) {
	base := RSBOverflowDoS(NewBaselineTarget(), 32)
	st := RSBOverflowDoS(NewSTBPUTarget(nil), 32)
	if !base.Succeeded || !st.Succeeded {
		t.Errorf("RSB overflow should succeed on both models (capacity, not collisions): base=%v st=%v",
			base.Succeeded, st.Succeeded)
	}
}

// TestVictimEntryUndisturbedBySpray is the isolation counterpoint: the
// victim's own entry keeps predicting correctly while the attacker sprays
// a *small* budget (far below the 50% blind-eviction point).
func TestVictimEntryUndisturbedBySpray(t *testing.T) {
	tgt := NewSTBPUTarget(nil)
	vPC := victimBase + 0x3_0000
	victim := jmp(vPC, vPC+0x300, VictimPID)
	tgt.step(victim)

	hits := 0
	const rounds = 50
	for round := 0; round < rounds; round++ {
		for i := 0; i < 4; i++ {
			pc := attackerBase + uint64(round*4+i)*32
			tgt.step(jmp(pc, pc+0x40, AttackerPID))
		}
		pred, _ := tgt.step(victim)
		if pred.TargetValid && pred.Target == (vPC+0x300)&trace.VAMask {
			hits++
		}
	}
	if hits < rounds*9/10 {
		t.Errorf("victim hit its own entry only %d/%d rounds under light spray", hits, rounds)
	}
}
