package attacks

import (
	"testing"

	"stbpu/internal/bpu"
	"stbpu/internal/core"
	"stbpu/internal/token"
)

// Table I coverage: every reuse/eviction × home/away cell has a driver
// exercised below against both the baseline and STBPU.

func TestBTBReuseBaselineLeaksImmediately(t *testing.T) {
	res := BTBReuseSideChannel(NewBaselineTarget(), 1000)
	if !res.Succeeded {
		t.Fatal("baseline BTB reuse side channel should succeed")
	}
	if res.Trials != 1 {
		t.Errorf("baseline collision should be deterministic (1 trial), got %d", res.Trials)
	}
}

func TestBTBReuseSTBPUBlocked(t *testing.T) {
	res := BTBReuseSideChannel(NewSTBPUTarget(nil), 100_000)
	if res.Succeeded {
		t.Fatalf("STBPU leaked within %d probes (expected P≈2^-22 per probe)", res.Trials)
	}
	if res.AttackerMispredicts < uint64(res.Trials)/2 {
		t.Errorf("attack should burn mispredictions: %d over %d trials",
			res.AttackerMispredicts, res.Trials)
	}
	// The probing spree must have tripped the threshold monitors well
	// before the analytic 50% point (2^21 probes).
	if res.Rerandomizations == 0 {
		t.Error("no re-randomization despite a 100k-probe scan")
	}
}

func TestBranchScopeBaselineReadsDirection(t *testing.T) {
	for _, secret := range []bool{true, false} {
		res := BranchScope(NewBaselineTarget(), secret, 1000)
		if !res.Succeeded {
			t.Errorf("baseline BranchScope failed for secret=%v", secret)
		}
		want := "not-taken"
		if secret {
			want = "taken"
		}
		if res.Leak != want {
			t.Errorf("leak = %q, want %q", res.Leak, want)
		}
		if secret && res.Trials != 1 {
			t.Errorf("baseline alias should read the counter in 1 trial, got %d", res.Trials)
		}
	}
}

func TestBranchScopeSTBPUNotDeterministic(t *testing.T) {
	// Under STBPU the one-shot aliasing read is gone: the attacker needs
	// a blind scan (and a reliable channel needs the full §VI SB
	// construction costing ~8.38e5 monitored events).
	res := BranchScope(NewSTBPUTarget(nil), true, 50_000)
	if res.Trials <= 10 {
		t.Errorf("STBPU BranchScope read a counter in %d trials; the one-shot aliasing read should be gone", res.Trials)
	}
}

func TestSameAddressSpaceBaselineCollides(t *testing.T) {
	res := SameAddressSpaceCollision(NewBaselineTarget(), 16)
	if !res.Succeeded || res.Trials != 1 {
		t.Errorf("baseline 2^32-alias should collide on trial 1: %+v", res)
	}
}

func TestSameAddressSpaceSTBPUBlocked(t *testing.T) {
	res := SameAddressSpaceCollision(NewSTBPUTarget(nil), 20_000)
	if res.Succeeded {
		t.Errorf("STBPU allowed a same-address-space alias collision in %d trials", res.Trials)
	}
}

func TestSpectreV2BaselineInjects(t *testing.T) {
	res := SpectreV2(NewBaselineTarget(), 10)
	if !res.Succeeded || res.Trials != 1 {
		t.Errorf("baseline Spectre v2 should inject on trial 1: %+v", res)
	}
}

func TestSpectreV2STBPUStalled(t *testing.T) {
	res := SpectreV2(NewSTBPUTarget(nil), 20_000)
	if res.Succeeded {
		t.Errorf("STBPU victim speculated into the gadget after %d trials (Ω=2^32 should make this ~impossible)", res.Trials)
	}
}

func TestSpectreRSBBaselineInjects(t *testing.T) {
	res := SpectreRSB(NewBaselineTarget(), 10)
	if !res.Succeeded || res.Trials != 1 {
		t.Errorf("baseline SpectreRSB should inject on trial 1: %+v", res)
	}
}

func TestSpectreRSBSTBPUStalled(t *testing.T) {
	res := SpectreRSB(NewSTBPUTarget(nil), 20_000)
	if res.Succeeded {
		t.Errorf("STBPU return speculation reached the gadget after %d trials", res.Trials)
	}
}

func TestGEMWorksOnDeterministicMapping(t *testing.T) {
	// Validate the GEM implementation itself: on the baseline's
	// deterministic mapping it must reduce a pool to a true eviction set
	// of about `ways` members, all in the probe's set.
	target := NewBaselineTarget()
	pool := make([]uint64, 4096)
	for i := range pool {
		pool[i] = attackerBase + uint64(i)*32
	}
	probe := attackerBase + 0x7fff000
	var res Result
	set := BuildEvictionSetGEM(target, probe, pool, 8, &res)
	if set == nil {
		t.Fatal("GEM found no eviction set on the baseline")
	}
	if len(set) > 12 {
		t.Errorf("GEM set size %d, want ≈8", len(set))
	}
	m := bpu.LegacyMapper{}
	wantSet, _, _ := m.BTBIndex(probe)
	same := 0
	for _, pc := range set {
		if s, _, _ := m.BTBIndex(pc); s == wantSet {
			same++
		}
	}
	if same < 8 {
		t.Errorf("only %d/%d GEM members share the probe's set", same, len(set))
	}
}

func TestGEMWorksOnStaticRandomizedMapping(t *testing.T) {
	// The Qureshi/Purnal insight the paper leans on: randomization alone
	// (STBPU with monitors disabled) does NOT stop GEM — the mapping is
	// random but static, so group elimination still converges.
	disabled := token.Thresholds{}
	target := NewSTBPUTarget(&disabled)
	pool := make([]uint64, 8192)
	for i := range pool {
		pool[i] = attackerBase + uint64(i)*32
	}
	probe := attackerBase + 0x7fff000
	var res Result
	set := BuildEvictionSetGEM(target, probe, pool, 8, &res)
	if set == nil {
		t.Skip("pool did not evict probe under this token (unlucky draw)")
	}
	if len(set) > 24 {
		t.Errorf("GEM failed to reduce on static randomized mapping: %d members", len(set))
	}
}

func TestGEMDefeatedByRerandomization(t *testing.T) {
	// With the monitors on, the eviction budget (Γ_e = 26,500 at r=0.05)
	// is spent long before GEM converges; re-randomization invalidates
	// partial progress and the returned set (if any) is not a stable
	// eviction set.
	target := NewSTBPUTarget(nil)
	pool := make([]uint64, 8192)
	for i := range pool {
		pool[i] = attackerBase + uint64(i)*32
	}
	probe := attackerBase + 0x7fff000
	var res Result
	set := BuildEvictionSetGEM(target, probe, pool, 8, &res)
	if target.Rerandomizations() == 0 {
		t.Fatal("GEM ran without tripping the eviction threshold")
	}
	// The full attack needs ~I/2 primed sets (§VI-A.4). One set already
	// costs a sizeable slice of the eviction budget, so covering 256 sets
	// guarantees many re-randomizations — each wiping every set built so
	// far. Check the cost arithmetic actually enforces that.
	th := token.Derive(token.DefaultR)
	if res.Evictions*256 < 4*th.Evictions {
		t.Errorf("one GEM set cost only %d evictions; the threshold would never trip over a full attack", res.Evictions)
	}
	if set != nil {
		// Direct invalidation check: after the attacker's next
		// re-randomization the set loses its discrimination against a
		// random control set of the same size.
		key := core.EntityKey(jmp(probe, probe+0x40, AttackerPID), false)
		target.st.TokenManager().Rerandomize(key)
		// Force the model to reload the (new) token.
		target.step(jmp(victimBase, victimBase+0x40, VictimPID))

		control := make([]uint64, len(set))
		for i := range control {
			control[i] = attackerBase + 0x40_0000 + uint64(i)*4096
		}
		var verify Result
		gemEv, ctlEv := 0, 0
		for i := 0; i < 6; i++ {
			if evictionTest(target, probe, set, &verify) {
				gemEv++
			}
			if evictionTest(target, probe, control, &verify) {
				ctlEv++
			}
		}
		if gemEv-ctlEv >= 4 {
			t.Errorf("GEM set survived re-randomization (%d vs control %d)", gemEv, ctlEv)
		}
	}
}

func TestEvictionSetAttackBaseline(t *testing.T) {
	res := EvictionSetAttack(NewBaselineTarget(), 0)
	if !res.Succeeded {
		t.Errorf("baseline eviction side channel should detect the victim: %+v", res)
	}
}

func TestRSBOverflowBothModels(t *testing.T) {
	// RSB overflow is a capacity attack: STBPU cannot eliminate it (the
	// RSB stays shared, §VI-A.6) but the poisoned entries decrypt to
	// garbage rather than attacker-chosen addresses.
	base := RSBOverflowDoS(NewBaselineTarget(), 32)
	if !base.Succeeded {
		t.Error("baseline RSB overflow should force victim mispredictions")
	}
	st := RSBOverflowDoS(NewSTBPUTarget(nil), 32)
	if !st.Succeeded {
		t.Error("STBPU cannot prevent capacity-based RSB overflow (expected mispredictions)")
	}
}

func TestDoSBaselineTargetedVsSTBPUBlind(t *testing.T) {
	base := DoSEviction(NewBaselineTarget(), 50, 16)
	if !base.Succeeded {
		t.Error("baseline targeted DoS should chronically evict the victim")
	}
	st := DoSEviction(NewSTBPUTarget(nil), 50, 16)
	if st.Succeeded {
		t.Error("STBPU blind spray should not reliably evict the victim's entry")
	}
}

func TestAttackResultsCarryEventCounts(t *testing.T) {
	res := BTBReuseSideChannel(NewSTBPUTarget(nil), 5_000)
	if res.AttackerMispredicts == 0 {
		t.Error("probing must generate monitored mispredictions")
	}
	if res.Evictions == 0 {
		t.Error("probing must generate monitored evictions")
	}
}
