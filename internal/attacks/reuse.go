package attacks

// Reuse-based attacks (Table I, columns RB-HE and RB-AE): the attacker
// detects that a BTB/PHT entry placed by the victim is reused by one of
// the attacker's own branches, leaking the victim's branch addresses,
// targets, or directions.

// BTBReuseSideChannel mounts the RB-HE BTB attack: the victim executes a
// direct jump at vPC; the attacker probes fresh branch addresses and
// watches for a first-execution BTB hit (an entry it never created — a
// collision with the victim).
//
// On the baseline the deterministic truncated mapping lets the attacker
// probe the victim's own virtual address from its own address space and
// collide immediately. Under STBPU the attacker must scan blindly;
// maxProbes bounds the scan.
func BTBReuseSideChannel(t *Target, maxProbes int) Result {
	res := Result{Attack: "btb-reuse-side-channel", Model: t.Name}

	vPC := victimBase + 0x100
	vTarget := victimBase + 0x900
	victim := jmp(vPC, vTarget, VictimPID)
	// Victim trains its entry.
	for i := 0; i < 4; i++ {
		t.step(victim)
	}

	// The attacker's best deterministic guess first (works on baseline:
	// same low-32 address bits from its own address space), then a blind
	// scan of fresh addresses.
	for probe := 0; probe < maxProbes; probe++ {
		res.Trials++
		pc := vPC + uint64(probe)*16 // probe 0 aliases vPC exactly
		rec := jmp(pc, pc+0x40, AttackerPID)
		pred, ev := t.step(rec)
		if ev.Mispredict {
			res.AttackerMispredicts++
		}
		if ev.BTBEviction {
			res.Evictions++
		}
		// First execution of this attacker branch: a valid target whose
		// stored 32 bits match the victim's means verified entry reuse.
		// (Self-collisions with the attacker's own earlier probes and —
		// under STBPU — cross-token hits that decrypt to garbage do not
		// count: the attacker checks the leaked target value, exactly as
		// the side channel would redirect its execution there.)
		if pred.TargetValid && uint32(pred.Target) == uint32(vTarget) {
			res.Succeeded = true
			res.Leak = "victim branch target recovered"
			break
		}
	}
	res.Rerandomizations = t.Rerandomizations()
	return res
}

// PHTDirection is what BranchScope recovers.
type PHTDirection bool

// BranchScope mounts the RB-HE PHT attack (§II-B, [21]): the victim
// repeatedly executes a secret-dependent conditional branch; the attacker
// finds a PHT-colliding branch and reads the counter state through its own
// first prediction.
//
// secretTaken is the victim's secret-dependent direction; the attack
// succeeds if the attacker's leak matches it. maxProbes bounds the scan.
func BranchScope(t *Target, secretTaken bool, maxProbes int) Result {
	res := Result{Attack: "branchscope", Model: t.Name}

	vPC := victimBase + 0x2000
	// Victim's secret-dependent branch, strongly trained.
	for i := 0; i < 8; i++ {
		t.step(condRec(vPC, secretTaken, VictimPID))
	}

	for probe := 0; probe < maxProbes; probe++ {
		res.Trials++
		// Probe 0 aliases the victim's address exactly (works on the
		// baseline's entity-blind PHT indexing); later probes scan.
		pc := vPC + uint64(probe)*4
		rec := condRec(pc, false, AttackerPID)
		pred, ev := t.step(rec)
		if ev.Mispredict {
			res.AttackerMispredicts++
		}
		// A fresh PHT counter predicts not-taken (weak init). A taken
		// prediction on first execution reveals a trained counter —
		// collision with the victim's strongly-taken state.
		if pred.Taken {
			res.Succeeded = true
			res.Leak = "taken"
			break
		}
		// Keep the victim's counter trained between probes (the victim
		// keeps running in the background).
		if probe%16 == 15 {
			t.step(condRec(vPC, secretTaken, VictimPID))
		}
	}
	if !res.Succeeded && maxProbes > 0 {
		// No taken prediction observed: attacker concludes not-taken.
		// That is only a *correct* leak if the victim's secret really is
		// not-taken AND a collision existed; for a scan that never
		// collided it is a guess. Report it as the attacker would.
		res.Leak = "not-taken"
		res.Succeeded = !secretTaken && t.Name == "baseline"
	}
	res.Rerandomizations = t.Rerandomizations()
	return res
}

// SameAddressSpaceCollision mounts the §VI-A.3 transient-trojan scenario:
// attacker-controlled code inside the victim's own address space (one
// entity, one token) crafts a branch whose address aliases a victim branch
// under the truncated legacy mapping (vPC + 2^32). φ-encryption cannot
// help here — both branches decrypt with the same token — so everything
// rests on the full-48-bit keyed remapping.
func SameAddressSpaceCollision(t *Target, maxProbes int) Result {
	res := Result{Attack: "same-address-space", Model: t.Name}

	vPC := victimBase + 0x3000
	vTarget := victimBase + 0x3800
	// Victim part of the process executes its branch.
	for i := 0; i < 4; i++ {
		t.step(jmp(vPC, vTarget, VictimPID))
	}

	for probe := 0; probe < maxProbes; probe++ {
		res.Trials++
		// The classic alias: same low 32 bits, different high bits —
		// same process (same PID!), legal in a 48-bit address space.
		pc := vPC + (uint64(probe)+1)<<32
		rec := jmp(pc, pc+0x40, VictimPID)
		pred, ev := t.step(rec)
		if ev.Mispredict {
			res.AttackerMispredicts++
		}
		if ev.BTBEviction {
			res.Evictions++
		}
		if pred.TargetValid && uint32(pred.Target) == uint32(vTarget) {
			// The trojan branch inherited the victim branch's target
			// (compared on the stored 32 bits; the upper bits come from
			// the alias's own address): controlled same-address-space
			// collision achieved.
			res.Succeeded = true
			res.Leak = "alias collision with in-process branch"
			break
		}
	}
	res.Rerandomizations = t.Rerandomizations()
	return res
}
