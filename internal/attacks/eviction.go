package attacks

import "stbpu/internal/trace"

// Eviction-based attacks (Table I, columns EB-HE and EB-AE): the attacker
// primes BTB sets with its own branches and detects the victim's execution
// by observing which of its entries got displaced.

// evictionTest reports whether executing the candidate set evicts branch
// x's entry — the attacker-side primitive GEM is built on. All branches
// belong to the attacker; observation is x's re-execution misprediction.
func evictionTest(t *Target, x uint64, set []uint64, res *Result) bool {
	// Install x.
	recX := jmp(x, x+0x40, AttackerPID)
	_, ev := t.step(recX)
	if ev.Mispredict {
		res.AttackerMispredicts++
	}
	if ev.BTBEviction {
		res.Evictions++
	}
	// Touch every candidate.
	for _, pc := range set {
		_, ev := t.step(jmp(pc, pc+0x40, AttackerPID))
		if ev.Mispredict {
			res.AttackerMispredicts++
		}
		if ev.BTBEviction {
			res.Evictions++
		}
	}
	// Re-probe x: a target miss means it was evicted.
	pred, ev := t.step(recX)
	if ev.Mispredict {
		res.AttackerMispredicts++
	}
	if ev.BTBEviction {
		res.Evictions++
	}
	return !pred.TargetValid
}

// BuildEvictionSetGEM runs the group-elimination method (GEM, [59]) to
// reduce a candidate pool to a minimal eviction set for probe branch x:
// repeatedly split the candidates into ways+1 groups and drop any group
// whose removal preserves the eviction property. Returns the reduced set
// (nil if the pool never evicted x within the budget).
func BuildEvictionSetGEM(t *Target, x uint64, pool []uint64, ways int, res *Result) []uint64 {
	cand := make([]uint64, len(pool))
	copy(cand, pool)
	if !evictionTest(t, x, cand, res) {
		return nil
	}
	for len(cand) > ways && res.Trials < 1_000_000 {
		res.Trials++
		groups := ways + 1
		reduced := false
		for g := 0; g < groups && len(cand) > ways; g++ {
			// Even split into exactly ways+1 groups (sizes differ by at
			// most one): with only `ways` conflicting members, the
			// pigeonhole principle guarantees one group is removable.
			lo := g * len(cand) / groups
			hi := (g + 1) * len(cand) / groups
			if lo == hi {
				continue
			}
			trial := make([]uint64, 0, len(cand)-(hi-lo))
			trial = append(trial, cand[:lo]...)
			trial = append(trial, cand[hi:]...)
			if evictionTest(t, x, trial, res) {
				cand = trial
				reduced = true
				break
			}
		}
		if !reduced {
			break
		}
	}
	return cand
}

// EvictionSetAttack mounts the EB attack: construct an eviction set, prime
// it, run the victim, and detect the victim's branch execution through a
// displaced attacker entry.
//
// On the baseline the set index is a pure function of the address, so the
// attacker writes down ways same-set addresses directly. Under STBPU it
// must run GEM over a large pool, paying evictions that the threshold
// monitor counts; and any set it finds dies with the next
// re-randomization.
func EvictionSetAttack(t *Target, poolSize int) Result {
	res := Result{Attack: "btb-eviction-side-channel", Model: t.Name}

	vPC := victimBase + 0x5000
	victim := jmp(vPC, vPC+0x200, VictimPID)

	var evictionSet []uint64
	if t.Name == "baseline" {
		// Deterministic construction: same set bits (pc>>5), different
		// tag bits (pc>>14).
		for i := 0; i < 8; i++ {
			evictionSet = append(evictionSet, attackerBase+(vPC&0x3fe0)+uint64(i+1)<<14)
		}
	} else {
		// Blind pool → GEM.
		pool := make([]uint64, poolSize)
		for i := range pool {
			pool[i] = attackerBase + uint64(i)*32
		}
		probe := attackerBase + 0x7fff000
		evictionSet = BuildEvictionSetGEM(t, probe, pool, 8, &res)
		if evictionSet == nil {
			res.Rerandomizations = t.Rerandomizations()
			return res
		}
		// Note: the GEM set evicts the attacker's own probe; targeting
		// the *victim's* set additionally requires covering I/2 sets
		// (§VI-A.4). We test whether this one primed set detects the
		// victim at all.
	}

	// Prime: install all eviction-set entries.
	for _, pc := range evictionSet {
		_, ev := t.step(jmp(pc, pc+0x40, AttackerPID))
		if ev.Mispredict {
			res.AttackerMispredicts++
		}
		if ev.BTBEviction {
			res.Evictions++
		}
	}
	// Victim runs.
	t.step(victim)
	// Probe: any primed entry missing ⇒ the victim hit this set.
	for _, pc := range evictionSet {
		res.Trials++
		pred, ev := t.step(jmp(pc, pc+0x40, AttackerPID))
		if ev.Mispredict {
			res.AttackerMispredicts++
		}
		if ev.BTBEviction {
			res.Evictions++
		}
		if !pred.TargetValid {
			res.Succeeded = true
			res.Leak = "victim execution detected via eviction"
			break
		}
	}
	res.Rerandomizations = t.Rerandomizations()
	return res
}

// RSBOverflowDoS mounts the EB-AE RSB attack: the attacker overflows the
// shared return stack with its own calls so the victim's returns fall back
// to static prediction (Table I). Success is measured as victim return
// mispredictions caused.
func RSBOverflowDoS(t *Target, depth int) Result {
	res := Result{Attack: "rsb-overflow", Model: t.Name}

	// Victim builds a healthy call stack.
	vCall := victimBase + 0x6000
	vFn := victimBase + 0x6800
	for i := 0; i < 4; i++ {
		t.step(callRec(vCall+uint64(i)*8, vFn+uint64(i)*0x100, VictimPID))
	}
	// Attacker floods the RSB.
	for i := 0; i < depth; i++ {
		res.Trials++
		t.step(callRec(attackerBase+uint64(i)*8, attackerBase+0x8000+uint64(i)*0x40, AttackerPID))
	}
	// Victim unwinds; with the RSB overflowed its return addresses are
	// gone (or, under STBPU, decrypt to garbage).
	misp := 0
	for i := 3; i >= 0; i-- {
		ret := retRec(vFn+uint64(i)*0x100+0x3c, vCall+uint64(i)*8+4, VictimPID)
		_, ev := t.step(ret)
		if ev.Mispredict {
			misp++
		}
	}
	res.Succeeded = misp > 0
	if res.Succeeded {
		res.Leak = "victim returns forced to mispredict"
	}
	res.Rerandomizations = t.Rerandomizations()
	return res
}

var _ = trace.KindReturn // keep the import for the record helpers' types
