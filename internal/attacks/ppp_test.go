package attacks

import (
	"testing"

	"stbpu/internal/bpu"
	"stbpu/internal/token"
)

func TestPPPWorksOnDeterministicMapping(t *testing.T) {
	target := NewBaselineTarget()
	pool := make([]uint64, 4096)
	for i := range pool {
		pool[i] = attackerBase + uint64(i)*32
	}
	probe := attackerBase + 0x7fff000
	var res Result
	set := BuildEvictionSetPPP(target, probe, pool, 8, 32, &res)
	if set == nil {
		t.Fatal("PPP found no eviction set on the baseline")
	}
	m := bpu.LegacyMapper{}
	wantSet, _, _ := m.BTBIndex(probe)
	same := 0
	for _, pc := range set {
		if s, _, _ := m.BTBIndex(pc); s == wantSet {
			same++
		}
	}
	if same < len(set)*3/4 {
		t.Errorf("only %d/%d PPP members share the probe's set", same, len(set))
	}
}

func TestPPPLessEfficientThanGEMUnderSTBPU(t *testing.T) {
	// §VI-A.4: "the attacker uses GEM because bottom-up strategies like
	// PPP become less efficient without a partitioned randomized
	// structure". Compare monitored event budgets on STBPU with monitors
	// disabled (static randomized mapping, the setting where both can in
	// principle converge).
	pool := make([]uint64, 8192)
	for i := range pool {
		pool[i] = attackerBase + uint64(i)*32
	}
	probe := attackerBase + 0x7fff000
	disabled := token.Thresholds{}

	var gemRes Result
	gemSet := BuildEvictionSetGEM(NewSTBPUTarget(&disabled), probe, pool, 8, &gemRes)

	var pppRes Result
	pppSet := BuildEvictionSetPPP(NewSTBPUTarget(&disabled), probe, pool, 8, 64, &pppRes)

	if gemSet == nil {
		t.Skip("GEM did not converge under this token draw")
	}
	t.Logf("GEM: evictions=%d misp=%d; PPP: evictions=%d misp=%d found=%v",
		gemRes.Evictions, gemRes.AttackerMispredicts,
		pppRes.Evictions, pppRes.AttackerMispredicts, pppSet != nil)
	if pppSet != nil && pppRes.AttackerMispredicts < gemRes.AttackerMispredicts/2 {
		t.Errorf("PPP unexpectedly cheaper than GEM: %d vs %d mispredictions",
			pppRes.AttackerMispredicts, gemRes.AttackerMispredicts)
	}
}

func TestPPPDefeatedByRerandomization(t *testing.T) {
	target := NewSTBPUTarget(nil) // monitors on, r = 0.05 thresholds
	pool := make([]uint64, 8192)
	for i := range pool {
		pool[i] = attackerBase + uint64(i)*32
	}
	probe := attackerBase + 0x7fff000
	var res Result
	BuildEvictionSetPPP(target, probe, pool, 8, 48, &res)
	if target.Rerandomizations() == 0 {
		t.Error("PPP's prune churn should trip the eviction threshold")
	}
}

func TestPHTAwayEffect(t *testing.T) {
	base := PHTAwayEffect(NewBaselineTarget(), 100)
	if !base.Succeeded || base.Trials != 1 {
		t.Errorf("baseline PHT away-effect should plant state on trial 1: %+v", base)
	}
	st := PHTAwayEffect(NewSTBPUTarget(nil), 200)
	if st.Succeeded && st.Trials == 1 {
		t.Error("STBPU should not allow deterministic PHT state planting")
	}
}

func TestBTBAwayEffect(t *testing.T) {
	base := BTBAwayEffect(NewBaselineTarget(), 100)
	if !base.Succeeded || base.Trials != 1 {
		t.Errorf("baseline BTB away-effect should succeed on trial 1: %+v", base)
	}
	st := BTBAwayEffect(NewSTBPUTarget(nil), 20_000)
	if st.Succeeded {
		t.Errorf("STBPU victim consumed an attacker-planted target after %d trials", st.Trials)
	}
}

func TestRSBReuseHomeEffect(t *testing.T) {
	base := RSBReuseHomeEffect(NewBaselineTarget())
	if !base.Succeeded {
		t.Error("baseline RSB reuse should leak the victim call site")
	}
	st := RSBReuseHomeEffect(NewSTBPUTarget(nil))
	if st.Succeeded {
		t.Error("STBPU RSB entries should decrypt to garbage for the attacker")
	}
}
