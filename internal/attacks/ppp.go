package attacks

// PPP implements the Prime+Prune+Probe eviction-set construction (Purnal
// et al., S&P 2021), the bottom-up alternative to GEM. The paper argues
// (§VI-A.4) that PPP is less efficient than GEM against STBPU because the
// BTB is not a partitioned randomized structure: PPP's pruning step relies
// on a stable, self-consistent mapping, which STBPU's re-randomization
// keeps destroying, and its incremental accumulation wastes accesses when
// candidate sets must be rebuilt from scratch.
//
// Algorithm:
//
//	prime:  access a candidate set C (install all entries)
//	prune:  re-access C repeatedly, dropping members that miss (they were
//	        evicted by set conflicts inside C) until C is self-consistent
//	probe:  access the target x, then re-access C; the members that now
//	        miss are congruent with x — accumulate them
//
// BuildEvictionSetPPP returns the accumulated congruent set once it can
// evict x (size ≥ ways), or nil if the budget is exhausted first.
func BuildEvictionSetPPP(t *Target, x uint64, pool []uint64, ways, maxRounds int, res *Result) []uint64 {
	touch := func(pc uint64) (hit bool) {
		pred, ev := t.step(jmp(pc, pc+0x40, AttackerPID))
		if ev.Mispredict {
			res.AttackerMispredicts++
		}
		if ev.BTBEviction {
			res.Evictions++
		}
		return pred.TargetValid
	}

	var congruent []uint64
	poolPos := 0
	// The prime set must be large enough to pressure every BTB set past
	// its associativity, or priming causes no evictions at all; PPP
	// papers size it near the structure's capacity.
	batch := 4096
	if batch > len(pool) {
		batch = len(pool)
	}

	for round := 0; round < maxRounds; round++ {
		res.Trials++
		// Take the next candidate batch.
		if poolPos >= len(pool) {
			poolPos = 0
		}
		end := poolPos + batch
		if end > len(pool) {
			end = len(pool)
		}
		cand := append([]uint64(nil), pool[poolPos:end]...)
		poolPos = end

		// Prime.
		for _, pc := range cand {
			touch(pc)
		}
		// Prune to self-consistency (bounded passes).
		for pass := 0; pass < 8; pass++ {
			var kept []uint64
			evictedAny := false
			for _, pc := range cand {
				if touch(pc) {
					kept = append(kept, pc)
				} else {
					evictedAny = true
					touch(pc) // reinstall for the next pass
				}
			}
			cand = kept
			if !evictedAny {
				break
			}
		}
		// Probe: install x, then find which candidates x displaced.
		touch(x)
		for _, pc := range cand {
			if !touch(pc) {
				congruent = append(congruent, pc)
			}
		}
		// Enough congruent members to evict x?
		if len(congruent) >= ways {
			set := append([]uint64(nil), congruent[len(congruent)-ways:]...)
			if evictionTest(t, x, set, res) {
				return set
			}
		}
	}
	return nil
}
