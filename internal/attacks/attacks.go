// Package attacks implements the collision-based BPU attack surface of
// Table I as executable attack drivers, run against both the unprotected
// baseline and STBPU. Each driver plays an attacker entity and a victim
// entity through a sim.Model, observing only what the threat model allows:
// the attacker sees its *own* predictions and mispredictions (the software
// proxy for timing measurements) and never reads tokens or table state.
//
// The drivers return event counts (mispredictions, evictions, trials) that
// the tests and the experiment harness compare against the closed-form
// complexities of internal/analysis — the paper's §VI argument, validated
// empirically at feasible scales.
package attacks

import (
	"stbpu/internal/bpu"
	"stbpu/internal/core"
	"stbpu/internal/sim"
	"stbpu/internal/token"
	"stbpu/internal/trace"
)

// Entity IDs for the two parties. The victim may also be the kernel
// (Kernel/VMM-as-victim scenario); drivers take a flag where relevant.
const (
	AttackerPID uint32 = 1
	VictimPID   uint32 = 2
)

// Result reports one attack run.
type Result struct {
	// Attack names the driver; Model names the defense under attack.
	Attack string
	Model  string
	// Succeeded reports whether the adversarial effect was achieved
	// within the budget.
	Succeeded bool
	// Trials is the number of attack iterations consumed.
	Trials int
	// AttackerMispredicts and Evictions are the monitored events the
	// attack generated (what STBPU's thresholds count).
	AttackerMispredicts uint64
	Evictions           uint64
	// Rerandomizations observed on STBPU targets (0 on baseline).
	Rerandomizations uint64
	// Leak carries attack-specific recovered information (e.g. the
	// victim's branch direction) for verification.
	Leak string
}

// Target bundles the model under attack with introspection hooks the
// drivers use for bookkeeping (never for the attack decision itself).
type Target struct {
	// Model is the BPU under attack.
	Model sim.Model
	// Name labels the defense.
	Name string
	// st is non-nil for STBPU targets.
	st *core.Model
}

// NewBaselineTarget builds an unprotected Skylake-style BPU target.
func NewBaselineTarget() *Target {
	return &Target{
		Model: &sim.UnitModel{ModelName: "baseline", Unit: core.NewUnprotectedUnit(core.DirSKLCond)},
		Name:  "baseline",
	}
}

// NewSTBPUTarget builds an STBPU target with the given re-randomization
// thresholds (nil means the paper's r=0.05 defaults) and the historical
// fixed token seed.
func NewSTBPUTarget(th *token.Thresholds) *Target {
	return NewSTBPUTargetSeeded(th, 0xa77ac4)
}

// NewSTBPUTargetSeeded is NewSTBPUTarget with an explicit token-stream
// seed, for harness-driven runs whose seeds derive from a root seed.
func NewSTBPUTargetSeeded(th *token.Thresholds, seed uint64) *Target {
	m := core.NewModel(core.ModelConfig{Dir: core.DirSKLCond, Thresholds: th, Seed: seed})
	return &Target{Model: &sim.STBPUModel{Inner: m}, Name: "STBPU", st: m}
}

// Rerandomizations reports token re-randomizations so far (0 on baseline).
func (t *Target) Rerandomizations() uint64 {
	if t.st == nil {
		return 0
	}
	return t.st.Rerandomizations()
}

// step runs one record and returns the prediction/events pair.
func (t *Target) step(rec trace.Record) (bpu.Prediction, bpu.Events) {
	return t.Model.Step(rec)
}

// ---------------------------------------------------------------------------
// Record crafting helpers.

func jmp(pc, target uint64, pid uint32) trace.Record {
	return trace.Record{PC: pc & trace.VAMask, Target: target & trace.VAMask,
		Kind: trace.KindDirectJump, Taken: true, PID: pid}
}

func ijmp(pc, target uint64, pid uint32) trace.Record {
	return trace.Record{PC: pc & trace.VAMask, Target: target & trace.VAMask,
		Kind: trace.KindIndirectJump, Taken: true, PID: pid}
}

func condRec(pc uint64, taken bool, pid uint32) trace.Record {
	rec := trace.Record{PC: pc & trace.VAMask, Kind: trace.KindCond, Taken: taken, PID: pid}
	if taken {
		rec.Target = (pc + 0x40) & trace.VAMask
	} else {
		rec.Target = rec.FallThrough()
	}
	return rec
}

func callRec(pc, target uint64, pid uint32) trace.Record {
	return trace.Record{PC: pc & trace.VAMask, Target: target & trace.VAMask,
		Kind: trace.KindDirectCall, Taken: true, PID: pid}
}

func retRec(pc, target uint64, pid uint32) trace.Record {
	return trace.Record{PC: pc & trace.VAMask, Target: target & trace.VAMask,
		Kind: trace.KindReturn, Taken: true, PID: pid}
}

// Address pools: attacker code lives in its own region; aliasing addresses
// are crafted per attack.
const (
	attackerBase = uint64(0x0000_1100_0000)
	victimBase   = uint64(0x0000_2200_0000)
	gadgetAddr   = uint64(0x0000_2200_4000) // in victim's space
)
