package attacks

// Covert channels through the BPU (§I, [20]): a trojan (sender) and a spy
// (receiver) in different processes communicate through PHT collision
// state, bypassing all software isolation. The channel works exactly like
// the BranchScope side channel, but both ends cooperate, which makes it
// the cleanest way to *quantify* isolation: the measured bit-error rate
// gives the channel capacity directly (1 - H2(p) bits per symbol through
// a binary symmetric channel). STBPU's keyed PHT indexing drives the
// error rate to ~50%, i.e. capacity to ~0.

import (
	"math"

	"stbpu/internal/rng"
)

// CovertResult reports one covert-channel transmission.
type CovertResult struct {
	Model string
	// BitsSent is the message length.
	BitsSent int
	// BitErrors counts receiver bits that differ from the sent bits.
	BitErrors int
	// RecordsUsed is the total branch records both parties executed: the
	// time cost of the transmission.
	RecordsUsed int
	// Rerandomizations observed on STBPU targets.
	Rerandomizations uint64
}

// ErrorRate is the fraction of flipped bits.
func (r CovertResult) ErrorRate() float64 {
	if r.BitsSent == 0 {
		return 0
	}
	return float64(r.BitErrors) / float64(r.BitsSent)
}

// CapacityPerSymbol is the binary-symmetric-channel capacity 1 - H2(p) in
// bits per transmitted symbol.
func (r CovertResult) CapacityPerSymbol() float64 {
	p := r.ErrorRate()
	if p <= 0 || p >= 1 {
		return 1
	}
	h := -p*math.Log2(p) - (1-p)*math.Log2(1-p)
	return 1 - h
}

// BandwidthBitsPerKRecord is capacity normalized by execution cost:
// usable bits per thousand branch records.
func (r CovertResult) BandwidthBitsPerKRecord() float64 {
	if r.RecordsUsed == 0 {
		return 0
	}
	return r.CapacityPerSymbol() * float64(r.BitsSent) / float64(r.RecordsUsed) * 1000
}

// PHTCovertChannel transmits nbits pseudo-random bits from a sender
// process to a receiver process through PHT collisions.
//
// Protocol per bit: both parties derive the symbol's branch address from
// a shared seed (entry hopping — a fresh PHT/chooser entry per symbol
// avoids the mode-chooser drift that plagues single-entry channels); the
// sender strongly trains that branch toward the bit value; the receiver
// executes a colliding branch once and reads the first prediction as the
// bit. On the baseline the receiver's probe deterministically aliases the
// sender's entry and the channel is nearly noiseless; under STBPU the two
// processes index disjoint (keyed) entries and the reads come back
// uncorrelated.
func PHTCovertChannel(t *Target, nbits int, seed uint64) CovertResult {
	res := CovertResult{Model: t.Name, BitsSent: nbits}
	r := rng.New(seed)

	const trainReps = 6

	for i := 0; i < nbits; i++ {
		// Shared hop sequence: the symbol's agreed branch address.
		sendPC := victimBase + 0xd000 + r.Uint64n(16384)*4
		bit := r.Bool(0.5)

		// Sender (plays the victim entity) drives the counter hard
		// toward the bit value.
		for rep := 0; rep < trainReps; rep++ {
			t.step(condRec(sendPC, bit, VictimPID))
			res.RecordsUsed++
		}

		// Receiver probes once; its first prediction of the aliasing
		// branch reads the shared counter.
		pred, _ := t.step(condRec(sendPC, false, AttackerPID))
		res.RecordsUsed++
		if pred.Taken != bit {
			res.BitErrors++
		}
	}
	res.Rerandomizations = t.Rerandomizations()
	return res
}

// BlueThunder mounts the 2-level directional-predictor attack of Huo et
// al. [26]: where BranchScope reads the 1-level (address-indexed) PHT
// entry, BlueThunder targets the pattern-history path. The victim's
// secret sits at a specific global-history context; the attacker
// synchronizes the shared GHR by replaying the victim's outcome pattern
// with its own branches, then probes an aliasing branch. Because the
// victim's pattern is unpredictable to the 1-level mode, the shared
// chooser entry is trained toward the 2-level mode, so the attacker's
// probe reads PHT2[hash(pc, GHR)] — the secret.
//
// Under STBPU the PHT2 remap R4 keys both the address and the history
// fold, so the attacker's probe lands on an unrelated entry.
func BlueThunder(t *Target, secretTaken bool, rounds int) Result {
	res := Result{Attack: "bluethunder", Model: t.Name}

	vPC := victimBase + 0xe000
	// The victim's preamble: a fixed outcome pattern that establishes
	// the GHR context g* at which the secret-dependent branch executes.
	preamble := []bool{true, false, true, true, false, false, true, false}
	preamblePCs := func(base uint64) []uint64 {
		pcs := make([]uint64, len(preamble))
		for i := range pcs {
			pcs[i] = base + uint64(i)*0x10
		}
		return pcs
	}

	// Victim training: preamble then secret. The alternation makes the
	// 1-level entry useless and trains the chooser toward 2-level.
	vpcs := preamblePCs(victimBase + 0xe100)
	for round := 0; round < rounds; round++ {
		for i, taken := range preamble {
			t.step(condRec(vpcs[i], taken, VictimPID))
		}
		t.step(condRec(vPC, secretTaken, VictimPID))
		// A contrasting context: same branch, different history, other
		// direction — the 1-level counter oscillates, the 2-level
		// entries separate.
		for i, taken := range preamble {
			t.step(condRec(vpcs[i], !taken, VictimPID))
		}
		t.step(condRec(vPC, !secretTaken, VictimPID))
	}

	// Attacker: replay the victim's preamble outcome pattern with its
	// own branches (the GHR records outcomes, not addresses), then probe
	// the aliasing branch once at context g*.
	apcs := preamblePCs(attackerBase + 0xe900)
	for i, taken := range preamble {
		_, ev := t.step(condRec(apcs[i], taken, AttackerPID))
		if ev.Mispredict {
			res.AttackerMispredicts++
		}
		res.Trials++
	}
	pred, _ := t.step(condRec(vPC, false, AttackerPID))
	res.Trials++

	res.Leak = "not-taken"
	if pred.Taken {
		res.Leak = "taken"
	}
	res.Succeeded = pred.Taken == secretTaken
	res.Rerandomizations = t.Rerandomizations()
	return res
}

// DoSReuse mounts the second §VI-A.6 denial-of-service scenario: the
// attacker fills the BTB with bogus targets for the victim's hot indirect
// branch, hoping the victim speculates to a wrong address every iteration
// and pays the recovery cost. It returns the victim's misprediction count
// over `rounds` executions of its hot branch.
//
// On the baseline the attacker plants the entry at the victim's own
// (deterministically mapped) slot. Under STBPU the plant lands in an
// unrelated keyed slot — and even a chance collision decrypts to garbage
// under the victim's φ, which the victim discards as an invalid target.
func DoSReuse(t *Target, rounds int) Result {
	res := Result{Attack: "dos-reuse", Model: t.Name}

	vPC := victimBase + 0xf000
	legit := victimBase + 0xf400

	victimMisp := 0
	for round := 0; round < rounds; round++ {
		res.Trials++
		// Attacker re-plants a bogus target for the victim's branch
		// address (reachable from its own space on the baseline's
		// truncated mapping).
		bogus := attackerBase + 0xf800 + uint64(round)*0x40
		_, ev := t.step(ijmp(vPC, bogus, AttackerPID))
		if ev.Mispredict {
			res.AttackerMispredicts++
		}
		if ev.BTBEviction {
			res.Evictions++
		}

		// Victim executes its hot branch toward the legitimate target.
		_, vev := t.step(ijmp(vPC, legit, VictimPID))
		if vev.Mispredict {
			victimMisp++
		}
	}
	// The DoS "succeeds" if the attacker keeps the victim's branch
	// mispredicting in most rounds (chronic slowdown).
	res.Succeeded = victimMisp > rounds*3/4
	if res.Succeeded {
		res.Leak = "victim slowed by chronic target poisoning"
	}
	res.Rerandomizations = t.Rerandomizations()
	return res
}
