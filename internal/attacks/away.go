package attacks

// Away-effect reuse attacks (Table I, column RB-AE): the adversarial
// effect lands in the *victim's* execution — the attacker plants predictor
// state and the victim consumes it.

// PHTAwayEffect mounts the RB-AE PHT attack: the attacker trains a
// colliding counter to not-taken so the victim's taken branch mispredicts
// and speculatively executes its fall-through (Table I: "V speculatively
// executes s + 1"). Success: the attacker's planted state flips the
// victim's first prediction.
func PHTAwayEffect(t *Target, maxProbes int) Result {
	res := Result{Attack: "pht-away-effect", Model: t.Name}

	vPC := victimBase + 0xa000

	for probe := 0; probe < maxProbes; probe++ {
		res.Trials++
		// The attacker saturates an (aliasing, on baseline) counter to
		// strongly taken. Probe 0 aliases the victim address exactly.
		pc := vPC + uint64(probe)*4
		for i := 0; i < 4; i++ {
			_, ev := t.step(condRec(pc, true, AttackerPID))
			if ev.Mispredict {
				res.AttackerMispredicts++
			}
		}
		// A fresh victim branch that is actually not-taken: with an
		// unbiased PHT it predicts not-taken (init weakly not-taken);
		// if it predicts taken, the attacker's planted state controls
		// the victim's speculation.
		vRec := condRec(vPC, false, VictimPID)
		pred, _ := t.step(vRec)
		if pred.Taken {
			res.Succeeded = true
			res.Leak = "victim mispredicts along attacker-chosen path"
			break
		}
	}
	res.Rerandomizations = t.Rerandomizations()
	return res
}

// BTBAwayEffect mounts the RB-AE BTB attack: the attacker installs a
// target for an alias of the victim's *direct* branch; the victim's first
// execution then speculates to the attacker's stored (possibly decrypted-
// to-garbage) target instead of falling through un-predicted.
func BTBAwayEffect(t *Target, maxProbes int) Result {
	res := Result{Attack: "btb-away-effect", Model: t.Name}

	vPC := victimBase + 0xb000
	planted := attackerBase + 0xb800

	for probe := 0; probe < maxProbes; probe++ {
		res.Trials++
		pc := vPC + uint64(probe)*16
		atk := jmp(pc, planted, AttackerPID)
		_, ev := t.step(atk)
		if ev.Mispredict {
			res.AttackerMispredicts++
		}
		if ev.BTBEviction {
			res.Evictions++
		}
		// Victim executes its own (fresh) branch at vPC.
		vRec := jmp(vPC, victimBase+0xb400, VictimPID)
		pred, _ := t.step(vRec)
		if pred.TargetValid && uint32(pred.Target) == uint32(planted) {
			res.Succeeded = true
			res.Leak = "victim speculates to attacker-planted target"
			break
		}
	}
	res.Rerandomizations = t.Rerandomizations()
	return res
}

// RSBReuseHomeEffect mounts the RB-HE RSB attack of Table I: the victim's
// call pushes a return address; the attacker's return consumes it and
// observes the misprediction, learning the victim's call-site address
// (low 32 bits).
func RSBReuseHomeEffect(t *Target) Result {
	res := Result{Attack: "rsb-reuse-home", Model: t.Name}

	vCall := victimBase + 0xc000
	t.step(callRec(vCall, victimBase+0xc800, VictimPID))

	// The attacker returns without having called; the RSB serves the
	// victim's pushed (possibly encrypted) address.
	res.Trials = 1
	pred, _ := t.step(retRec(attackerBase+0xc03c, attackerBase+0xc040, AttackerPID))
	if pred.FromRSB && uint32(pred.Target) == uint32(vCall+4) {
		res.Succeeded = true
		res.Leak = "victim call-site address recovered from RSB"
	}
	res.Rerandomizations = t.Rerandomizations()
	return res
}
