package attacks

import (
	"testing"

	"stbpu/internal/core"
	"stbpu/internal/sim"
	"stbpu/internal/token"
)

func TestPHTCovertChannelBaseline(t *testing.T) {
	res := PHTCovertChannel(NewBaselineTarget(), 256, 0xc0ffee)
	if res.BitsSent != 256 {
		t.Fatalf("BitsSent = %d", res.BitsSent)
	}
	// The baseline channel is nearly noiseless: deterministic aliasing,
	// strong training.
	if er := res.ErrorRate(); er > 0.05 {
		t.Errorf("baseline covert error rate = %.3f, want <= 0.05", er)
	}
	if cap := res.CapacityPerSymbol(); cap < 0.7 {
		t.Errorf("baseline capacity = %.3f bits/symbol, want >= 0.7", cap)
	}
	if res.BandwidthBitsPerKRecord() <= 0 {
		t.Error("baseline bandwidth should be positive")
	}
}

func TestPHTCovertChannelSTBPU(t *testing.T) {
	res := PHTCovertChannel(NewSTBPUTarget(nil), 256, 0xc0ffee)
	// Under keyed indexing the receiver reads its own cold counters:
	// the channel degrades to coin flips.
	if er := res.ErrorRate(); er < 0.3 {
		t.Errorf("STBPU covert error rate = %.3f, want >= 0.3 (≈0.5)", er)
	}
	if cap := res.CapacityPerSymbol(); cap > 0.2 {
		t.Errorf("STBPU capacity = %.3f bits/symbol, want <= 0.2", cap)
	}
}

func TestPHTCovertChannelCapacityMath(t *testing.T) {
	r := CovertResult{BitsSent: 100, BitErrors: 0}
	if c := r.CapacityPerSymbol(); c != 1 {
		t.Errorf("capacity at p=0 is %.3f, want 1", c)
	}
	r.BitErrors = 50
	if c := r.CapacityPerSymbol(); c > 1e-9 {
		t.Errorf("capacity at p=0.5 is %g, want ~0", c)
	}
	r.BitErrors = 100
	// p=1 is a perfect (inverted) channel.
	if c := r.CapacityPerSymbol(); c != 1 {
		t.Errorf("capacity at p=1 is %.3f, want 1", c)
	}
	empty := CovertResult{}
	if empty.ErrorRate() != 0 || empty.BandwidthBitsPerKRecord() != 0 {
		t.Error("zero-value CovertResult should report zeros")
	}
}

func TestBlueThunderBaselineRecoversSecret(t *testing.T) {
	for _, secret := range []bool{true, false} {
		res := BlueThunder(NewBaselineTarget(), secret, 16)
		if !res.Succeeded {
			t.Errorf("baseline BlueThunder failed to recover secret=%v (leak %q)", secret, res.Leak)
		}
	}
}

func TestBlueThunderSTBPUUnreliable(t *testing.T) {
	// Against keyed 2-level indexing the probe reads an unrelated entry;
	// requiring both secret values to be recovered across seeds must
	// fail (a single run can guess right with ~50%).
	wins := 0
	for i := 0; i < 4; i++ {
		both := true
		for _, secret := range []bool{true, false} {
			tgt := NewSTBPUTarget(nil)
			if res := BlueThunder(tgt, secret, 16); !res.Succeeded {
				both = false
			}
		}
		if both {
			wins++
		}
	}
	if wins >= 3 {
		t.Errorf("BlueThunder reliably recovers secrets against STBPU (%d/4)", wins)
	}
}

func TestDoSReuseBaselineVsSTBPU(t *testing.T) {
	base := DoSReuse(NewBaselineTarget(), 64)
	if !base.Succeeded {
		t.Error("baseline DoS-reuse should keep the victim mispredicting")
	}
	st := DoSReuse(NewSTBPUTarget(nil), 64)
	if st.Succeeded {
		t.Error("STBPU DoS-reuse should not achieve chronic poisoning")
	}
}

func TestCovertChannelRerandomizationPressure(t *testing.T) {
	// With aggressive thresholds, sustained covert signalling itself
	// trips re-randomization: the channel cannot even be kept open
	// quietly. (Each probe misprediction decrements the counter.)
	th := token.Thresholds{Mispredictions: 64, Evictions: 64}
	res := PHTCovertChannel(NewSTBPUTarget(&th), 512, 1)
	if res.Rerandomizations == 0 {
		t.Error("expected re-randomizations under sustained covert traffic")
	}
}

// newAdvancedTarget builds an ST target over an advanced direction
// predictor (TAGE / Perceptron), for the §VI-A.2 hybrid-predictor
// argument.
func newAdvancedTarget(dir core.DirKind, seed uint64) *Target {
	m := core.NewModel(core.ModelConfig{Dir: dir, Seed: seed})
	return &Target{Model: &sim.STBPUModel{Inner: m}, Name: "ST_" + dir.String()}
}

func TestBranchScopeAgainstAdvancedPredictors(t *testing.T) {
	// §VI-A.2: with keyed remapping on both the base and the complex
	// directional components, "little information is gained by an
	// attacker observing mispredictions from both". A usable channel
	// must recover the secret for BOTH values (a predictor that defaults
	// to "taken" on fresh state — the perceptron — fools the one-sided
	// read but not the paired criterion).
	for _, dir := range []core.DirKind{core.DirTAGE8, core.DirTAGE64, core.DirPerceptron} {
		wins := 0
		for i := uint64(0); i < 4; i++ {
			both := true
			for _, secret := range []bool{true, false} {
				res := BranchScope(newAdvancedTarget(dir, 0xbead+i), secret, 256)
				want := "not-taken"
				if secret {
					want = "taken"
				}
				if res.Leak != want {
					both = false
				}
			}
			if both {
				wins++
			}
		}
		if wins >= 3 {
			t.Errorf("%v: BranchScope repeatably leaks (%d/4)", dir, wins)
		}
	}
}

func TestBlueThunderAgainstAdvancedPredictors(t *testing.T) {
	for _, dir := range []core.DirKind{core.DirTAGE64, core.DirPerceptron} {
		wins := 0
		for i := uint64(0); i < 4; i++ {
			both := true
			for _, secret := range []bool{true, false} {
				tgt := newAdvancedTarget(dir, 0xfade+i)
				if res := BlueThunder(tgt, secret, 16); !res.Succeeded {
					both = false
				}
			}
			if both {
				wins++
			}
		}
		if wins >= 3 {
			t.Errorf("%v: BlueThunder repeatably recovers both secrets (%d/4)", dir, wins)
		}
	}
}

func TestCovertChannelAgainstAdvancedPredictors(t *testing.T) {
	for _, dir := range []core.DirKind{core.DirTAGE64, core.DirPerceptron} {
		res := PHTCovertChannel(newAdvancedTarget(dir, 0xcafe), 256, 0xfeed)
		if cap := res.CapacityPerSymbol(); cap > 0.2 {
			t.Errorf("%v: covert capacity %.3f bits/symbol, want ~0", dir, cap)
		}
	}
}
