package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownVector(t *testing.T) {
	// Reference values for SplitMix64 seeded with 0 (from the reference
	// C implementation by Sebastiano Vigna).
	state := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
	}
	for i, w := range want {
		if got := SplitMix64(&state); got != w {
			t.Fatalf("SplitMix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %#x vs %#x", i, av, bv)
		}
	}
}

func TestNewFromStringStable(t *testing.T) {
	a := NewFromString("500.perlbench")
	b := NewFromString("500.perlbench")
	c := NewFromString("502.gcc")
	if a.Uint64() != b.Uint64() {
		t.Error("same name must give identical streams")
	}
	a2 := NewFromString("500.perlbench")
	if a2.Uint64() == c.Uint64() {
		t.Error("different names should give different streams")
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(7)
	for _, n := range []uint64{1, 2, 3, 10, 1 << 20, 1<<63 + 12345} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(99)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(3)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestUint64nUniformityProperty(t *testing.T) {
	// Property: for arbitrary seed and modulus, all outputs are in range.
	f := func(seed uint64, modRaw uint64) bool {
		mod := modRaw%1000 + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			if r.Uint64n(mod) >= mod {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(11)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("Shuffle produced duplicate: %v", xs)
		}
		seen[v] = true
	}
}

func TestGeometricBounds(t *testing.T) {
	r := New(123)
	for i := 0; i < 1000; i++ {
		v := r.Geometric(0.5, 16)
		if v < 1 || v > 16 {
			t.Fatalf("Geometric out of bounds: %d", v)
		}
	}
	// Degenerate p returns 1.
	if v := r.Geometric(0, 16); v != 1 {
		t.Errorf("Geometric(0) = %d, want 1", v)
	}
	if v := r.Geometric(1, 16); v != 1 {
		t.Errorf("Geometric(1) = %d, want 1", v)
	}
}

func TestGeometricMean(t *testing.T) {
	// Mean of Geometric(p) (uncapped) is 1/p; with a generous cap the
	// sample mean should be close to 2 for p = 0.5.
	r := New(77)
	sum := 0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += r.Geometric(0.5, 1000)
	}
	mean := float64(sum) / n
	if math.Abs(mean-2.0) > 0.05 {
		t.Errorf("Geometric(0.5) mean = %v, want ~2", mean)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(9)
	z := NewZipf(r, 100, 1.2)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("Zipf not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
	if counts[0] == 0 || counts[99] < 0 {
		t.Error("Zipf produced impossible counts")
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	NewZipf(New(1), 0, 1.0)
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkUint64n(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64n(4096)
	}
	_ = sink
}
