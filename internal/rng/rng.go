// Package rng provides the deterministic pseudo-random number generators
// used throughout the STBPU reproduction.
//
// The paper assumes secret tokens are fetched from a low-latency in-chip
// hardware PRNG (Intel DRNG). For a reproducible simulation we substitute
// SplitMix64 (for seeding) and xoshiro256** (for streams). Both are
// well-studied, pass BigCrush, and are trivially stdlib-only.
//
// Every stochastic component in this repository (workload generators,
// token re-randomization, attack drivers) draws from an explicitly seeded
// *rng.Rand so that experiments are bit-reproducible run to run.
package rng

import (
	"math"
	"math/bits"
)

// SplitMix64 advances the given state and returns the next value of the
// SplitMix64 sequence. It is used to expand small seeds into full
// generator state and as the token-generation primitive.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a deterministic xoshiro256** generator. The zero value is not
// valid; construct with New or NewFromString.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from a single 64-bit seed via SplitMix64,
// as recommended by the xoshiro authors.
func New(seed uint64) *Rand {
	var r Rand
	sm := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&sm)
	}
	// xoshiro must not be seeded with all-zero state; SplitMix64 cannot
	// produce four consecutive zeros, so no check is required.
	return &r
}

// NewFromString seeds a generator from an arbitrary string (e.g. a workload
// name) using FNV-1a, so each named workload gets a stable stream.
func NewFromString(name string) *Rand {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return New(h)
}

// State returns the generator's full internal state, for deterministic
// checkpointing. SetState(State()) on a fresh Rand reproduces the exact
// stream position.
func (r *Rand) State() [4]uint64 { return r.s }

// SetState restores a state previously captured with State. An all-zero
// state is invalid for xoshiro256** (the stream would be constant), so
// it is replaced with New(0)'s state; State never returns all zeros, so
// round-trips are unaffected.
func (r *Rand) SetState(s [4]uint64) {
	if s == ([4]uint64{}) {
		*r = *New(0)
		return
	}
	r.s = s
}

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// Uint32 returns a uniform 32-bit value.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with zero n")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the elements indexed 0..n-1 using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Geometric returns a sample from a geometric distribution with success
// probability p (support {1, 2, ...}), clamped to max. It is used to model
// run lengths (loop trip counts, burst sizes) in workload synthesis.
func (r *Rand) Geometric(p float64, max int) int {
	if p <= 0 || p >= 1 {
		return 1
	}
	n := 1
	for n < max && !r.Bool(p) {
		n++
	}
	return n
}

// Zipf returns a sample in [0, n) from a Zipf-like distribution with
// exponent s, using inverse-CDF over a precomputed table is avoided to keep
// the generator allocation-free: instead we use rejection with the standard
// Zipf envelope. For the small n used in workload synthesis this is fast.
type Zipf struct {
	n    int
	cdf  []float64
	rand *Rand
}

// NewZipf builds a Zipf sampler over ranks [0, n) with exponent s > 0.
// Lower ranks are more likely. NewZipf panics if n <= 0.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf called with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{n: n, cdf: cdf, rand: r}
}

// Next returns the next Zipf-distributed rank.
func (z *Zipf) Next() int {
	u := z.rand.Float64()
	// Binary search the CDF.
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
