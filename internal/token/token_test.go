package token

import (
	"testing"
	"testing/quick"
)

func TestDeriveThresholds(t *testing.T) {
	th := Derive(0.05)
	if th.Mispredictions != 41_900 {
		t.Errorf("misp threshold = %d, want 41900 (paper §VII-A)", th.Mispredictions)
	}
	if th.Evictions != 26_500 {
		t.Errorf("evict threshold = %d, want 26500 (paper §VII-A)", th.Evictions)
	}
	th = Derive(0.1)
	if th.Mispredictions != 83_800 || th.Evictions != 53_000 {
		t.Errorf("r=0.1 thresholds = %+v", th)
	}
	if got := Derive(0); got != (Thresholds{}) {
		t.Errorf("Derive(0) = %+v, want zero (disabled)", got)
	}
}

func TestTokenUniquenessPerEntity(t *testing.T) {
	m := NewManager(1, Derive(0.05))
	a := m.TokenFor(1)
	b := m.TokenFor(2)
	if a == b {
		t.Error("distinct entities got identical tokens")
	}
	if got := m.TokenFor(1); got != a {
		t.Error("token not stable across lookups")
	}
	if m.Stats().TokensIssued != 2 {
		t.Errorf("TokensIssued = %d", m.Stats().TokensIssued)
	}
}

func TestTokenNonZeroHalves(t *testing.T) {
	// ψ and φ should essentially never both be zero; check a population.
	m := NewManager(7, Derive(0.05))
	zero := 0
	for k := uint64(0); k < 1000; k++ {
		st := m.TokenFor(k)
		if st.Psi == 0 && st.Phi == 0 {
			zero++
		}
	}
	if zero > 0 {
		t.Errorf("%d all-zero tokens in 1000", zero)
	}
}

func TestShareToken(t *testing.T) {
	m := NewManager(3, Derive(0.05))
	canonical := m.TokenFor(100)
	m.ShareToken(101, 100)
	if got := m.TokenFor(101); got != canonical {
		t.Error("shared entity did not receive the canonical token")
	}
	// Budget is shared: events on the alias deplete the same counters.
	for i := uint64(0); i < m.Thresholds().Mispredictions; i++ {
		m.OnMisprediction(101)
	}
	if got := m.TokenFor(100); got == canonical {
		t.Error("re-randomization via alias did not affect canonical entity")
	}
}

func TestMispredictionThresholdTriggers(t *testing.T) {
	th := Thresholds{Mispredictions: 5, Evictions: 100}
	m := NewManager(9, th)
	first := m.TokenFor(1)
	var rerand bool
	var st ST
	for i := 0; i < 4; i++ {
		if _, r := m.OnMisprediction(1); r {
			t.Fatalf("re-randomized after only %d events", i+1)
		}
	}
	st, rerand = m.OnMisprediction(1)
	if !rerand {
		t.Fatal("threshold did not trigger at 5 events")
	}
	if st == first {
		t.Error("re-randomized token equals the old token")
	}
	if m.TokenFor(1) != st {
		t.Error("returned ST not installed")
	}
	if m.Stats().RerandMisp != 1 {
		t.Errorf("RerandMisp = %d", m.Stats().RerandMisp)
	}
	// Counter reset: another full budget is needed.
	for i := 0; i < 4; i++ {
		if _, r := m.OnMisprediction(1); r {
			t.Fatalf("premature second re-randomization at %d", i+1)
		}
	}
	if _, r := m.OnMisprediction(1); !r {
		t.Error("second threshold did not trigger")
	}
}

func TestEvictionThresholdIndependent(t *testing.T) {
	th := Thresholds{Mispredictions: 100, Evictions: 3}
	m := NewManager(11, th)
	m.OnMisprediction(1)
	m.OnEviction(1)
	m.OnEviction(1)
	if _, r := m.OnEviction(1); !r {
		t.Error("eviction threshold did not trigger")
	}
	if m.Stats().RerandEvict != 1 || m.Stats().RerandMisp != 0 {
		t.Errorf("stats = %+v", m.Stats())
	}
}

func TestTageRegisterSeparate(t *testing.T) {
	th := Thresholds{Mispredictions: 1000, Evictions: 1000, TageMispredictions: 2}
	m := NewManager(13, th)
	m.OnTageMisprediction(1)
	if _, r := m.OnTageMisprediction(1); !r {
		t.Error("TAGE register did not trigger")
	}
	if m.Stats().RerandTage != 1 {
		t.Errorf("RerandTage = %d", m.Stats().RerandTage)
	}
}

func TestTageFallsBackToMainRegister(t *testing.T) {
	th := Thresholds{Mispredictions: 2, Evictions: 1000} // no TAGE register
	m := NewManager(15, th)
	m.OnTageMisprediction(1)
	if _, r := m.OnTageMisprediction(1); !r {
		t.Error("fallback to main register did not trigger")
	}
	if m.Stats().RerandMisp != 1 || m.Stats().RerandTage != 0 {
		t.Errorf("stats = %+v", m.Stats())
	}
}

func TestDisabledMonitors(t *testing.T) {
	m := NewManager(17, Thresholds{})
	for i := 0; i < 10000; i++ {
		if _, r := m.OnMisprediction(1); r {
			t.Fatal("disabled misprediction monitor triggered")
		}
		if _, r := m.OnEviction(1); r {
			t.Fatal("disabled eviction monitor triggered")
		}
	}
	if m.Stats().Total() != 0 {
		t.Error("stats should be zero with disabled monitors")
	}
}

func TestForcedRerandomize(t *testing.T) {
	m := NewManager(19, Derive(0.05))
	a := m.TokenFor(1)
	b := m.Rerandomize(1)
	if a == b {
		t.Error("forced re-randomization kept the token")
	}
	if m.TokenFor(1) != b {
		t.Error("forced token not installed")
	}
}

func TestDeterministicTokens(t *testing.T) {
	a := NewManager(42, Derive(0.05))
	b := NewManager(42, Derive(0.05))
	for k := uint64(0); k < 50; k++ {
		if a.TokenFor(k) != b.TokenFor(k) {
			t.Fatal("same seed produced different token streams")
		}
	}
}

func TestCountersPerEntityProperty(t *testing.T) {
	// Property: events on one entity never re-randomize another.
	f := func(seed uint64, events uint8) bool {
		m := NewManager(seed, Thresholds{Mispredictions: 10, Evictions: 10})
		before := m.TokenFor(2)
		for i := 0; i < int(events); i++ {
			m.OnMisprediction(1)
			m.OnEviction(1)
		}
		return m.TokenFor(2) == before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThresholdsString(t *testing.T) {
	s := Derive(0.05).String()
	if s == "" {
		t.Error("empty threshold string")
	}
}

func TestEnclaveManagerLifecycle(t *testing.T) {
	e := NewEnclaveManager(31, Thresholds{Mispredictions: 100, Evictions: 100})
	first := e.Enter()
	if !e.InEnclave() {
		t.Fatal("Enter did not mark the session")
	}
	// Same session keeps the token.
	if got := e.Enter(); got != first {
		t.Error("token changed within a session chain")
	}
	e.Exit()
	if e.InEnclave() {
		t.Fatal("Exit did not clear the session")
	}
	// Next session must see a fresh token: the untrusted world never
	// observes reusable enclave state.
	if got := e.Enter(); got == first {
		t.Error("enclave token survived an exit")
	}
	if e.Entries != 3 || e.Exits != 1 {
		t.Errorf("entries/exits = %d/%d", e.Entries, e.Exits)
	}
}

func TestEnclaveEventsOnlyInsideSession(t *testing.T) {
	e := NewEnclaveManager(33, Thresholds{Mispredictions: 3, Evictions: 3})
	// Events outside an enclave session are ignored.
	for i := 0; i < 10; i++ {
		if _, r := e.OnMisprediction(); r {
			t.Fatal("event outside enclave re-randomized")
		}
	}
	e.Enter()
	e.OnMisprediction()
	e.OnMisprediction()
	if _, r := e.OnMisprediction(); !r {
		t.Error("in-session threshold did not trigger")
	}
	if _, r := e.OnEviction(); r {
		t.Error("eviction counter should have been reset by re-randomization")
	}
	e.Exit()
	e.Exit() // double exit is a no-op
	if e.Exits != 1 {
		t.Errorf("Exits = %d", e.Exits)
	}
}
