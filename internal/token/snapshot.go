package token

// Snapshot support for the warm-state checkpoint tier (sim.Snapshotter):
// a Manager can be deep-cloned for forking and round-tripped through the
// deterministic snap codec. Entities are written in sorted key order
// with an entity-id indirection, so aliased records (ShareToken) survive
// the round-trip and identical logical states always encode to identical
// bytes regardless of map iteration order.

import (
	"sort"

	"stbpu/internal/snap"
)

// Clone returns a deep copy of the manager, preserving the RNG stream
// position, all entity state, and alias structure.
func (m *Manager) Clone() *Manager {
	nm := NewManager(0, m.thresholds)
	nm.r.SetState(m.r.State())
	nm.stats = m.stats
	// Aliased keys share one *entity; map originals to their clones so
	// the alias structure carries over.
	cloned := make(map[*entity]*entity, len(m.entities))
	for key, e := range m.entities {
		ne, ok := cloned[e]
		if !ok {
			c := *e
			ne = &c
			cloned[e] = ne
		}
		nm.entities[key] = ne
	}
	return nm
}

// EncodeState appends the manager's mutable state to w. Thresholds are
// configuration, not state, and are not encoded — the decoder's manager
// must be constructed with the same thresholds.
func (m *Manager) EncodeState(w *snap.Writer) {
	st := m.r.State()
	for _, v := range st {
		w.U64(v)
	}
	w.U64(m.stats.RerandMisp)
	w.U64(m.stats.RerandEvict)
	w.U64(m.stats.RerandTage)
	w.U64(m.stats.TokensIssued)

	keys := make([]uint64, 0, len(m.entities))
	for k := range m.entities {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	// First appearance in key order assigns each distinct entity record
	// an id; later keys aliasing the same record reference that id.
	ids := make(map[*entity]int, len(keys))
	var records []*entity
	w.Len(len(keys))
	for _, k := range keys {
		e := m.entities[k]
		id, ok := ids[e]
		if !ok {
			id = len(records)
			ids[e] = id
			records = append(records, e)
		}
		w.U64(k)
		w.Int(id)
	}
	w.Len(len(records))
	for _, e := range records {
		w.U32(e.st.Psi)
		w.U32(e.st.Phi)
		w.U64(e.ctr.misp)
		w.U64(e.ctr.evict)
		w.U64(e.ctr.tage)
	}
}

// DecodeState restores state encoded by EncodeState, replacing the
// manager's entities wholesale.
func (m *Manager) DecodeState(r *snap.Reader) {
	var st [4]uint64
	for i := range st {
		st[i] = r.U64()
	}
	m.r.SetState(st)
	m.stats.RerandMisp = r.U64()
	m.stats.RerandEvict = r.U64()
	m.stats.RerandTage = r.U64()
	m.stats.TokensIssued = r.U64()

	nKeys := r.Len()
	type ref struct {
		key uint64
		id  int
	}
	refs := make([]ref, 0, nKeys)
	maxID := -1
	for i := 0; i < nKeys; i++ {
		k := r.U64()
		id := r.Int()
		if id > maxID {
			maxID = id
		}
		refs = append(refs, ref{key: k, id: id})
	}
	nRecords := r.Len()
	records := make([]*entity, nRecords)
	for i := range records {
		e := &entity{}
		e.st.Psi = r.U32()
		e.st.Phi = r.U32()
		e.ctr.misp = r.U64()
		e.ctr.evict = r.U64()
		e.ctr.tage = r.U64()
		records[i] = e
	}
	if r.Err() != nil || maxID >= nRecords {
		return // leave the manager untouched on corrupt input
	}
	m.entities = make(map[uint64]*entity, nKeys)
	for _, rf := range refs {
		if rf.id < 0 || rf.id >= nRecords {
			continue
		}
		m.entities[rf.key] = records[rf.id]
	}
}
