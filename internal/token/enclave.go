package token

// EnclaveManager adapts STBPU token management to systems where the OS is
// *not* trusted (paper §IV-A: "STBPU can be also adapted for systems with
// OS not trusted (e.g. SGX), then another system component needs to be
// responsible for managing tokens ... the enclave entering routine can
// serve this purpose").
//
// The enclave-entry microcode owns the enclave's token: it installs a
// dedicated ST on every enclave entry and — because the untrusted OS must
// never observe or influence enclave history — re-randomizes it on every
// exit, so no predictor state survives across enclave sessions. Thresholds
// still apply inside a session, hardware-enforced rather than OS-set.
type EnclaveManager struct {
	inner *Manager
	// entries/exits count transitions for reporting.
	Entries, Exits uint64
	inEnclave      bool
}

// enclaveKey is the reserved entity key of the enclave world.
const enclaveKey = ^uint64(0)

// NewEnclaveManager builds an SGX-style manager. The thresholds are burned
// in by hardware (no OS involvement); the seed models the in-package TRNG.
func NewEnclaveManager(seed uint64, th Thresholds) *EnclaveManager {
	return &EnclaveManager{inner: NewManager(seed, th)}
}

// Enter installs the enclave token (EENTER path) and returns it.
func (e *EnclaveManager) Enter() ST {
	e.Entries++
	e.inEnclave = true
	return e.inner.TokenFor(enclaveKey)
}

// Exit leaves the enclave (EEXIT/AEX path): the token is immediately
// re-randomized so any predictor state the enclave created is unreachable
// to the untrusted world — and to the next enclave session.
func (e *EnclaveManager) Exit() {
	if !e.inEnclave {
		return
	}
	e.Exits++
	e.inEnclave = false
	e.inner.Rerandomize(enclaveKey)
}

// InEnclave reports whether an enclave session is active.
func (e *EnclaveManager) InEnclave() bool { return e.inEnclave }

// OnMisprediction forwards a monitored event while inside the enclave.
// Outside, enclave counters are frozen (events belong to the OS world).
func (e *EnclaveManager) OnMisprediction() (ST, bool) {
	if !e.inEnclave {
		return ST{}, false
	}
	return e.inner.OnMisprediction(enclaveKey)
}

// OnEviction forwards a monitored eviction while inside the enclave.
func (e *EnclaveManager) OnEviction() (ST, bool) {
	if !e.inEnclave {
		return ST{}, false
	}
	return e.inner.OnEviction(enclaveKey)
}

// Stats exposes the underlying manager counters.
func (e *EnclaveManager) Stats() Stats { return e.inner.Stats() }
