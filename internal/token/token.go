// Package token implements STBPU secret-token (ST) management (§IV):
// per-entity 64-bit tokens split into ψ (remap key) and φ (target
// encryption key), the MSR-style threshold counters that monitor
// mispredictions and BTB evictions, and automatic re-randomization when a
// counter reaches zero.
//
// The OS-visible model: each hardware thread has an ST register loaded on
// context/mode switches; the OS assigns tokens per software entity and may
// deliberately share one token among processes of the same program
// (selective history sharing for pre-forked servers, §IV-A). Counters are
// part of the saved context, so each entity depletes its own budget.
package token

import (
	"fmt"

	"stbpu/internal/rng"
)

// ST is a secret token: the ψ half keys the remapping functions R1..Rp,
// the φ half XOR-encrypts targets stored in BTB and RSB.
type ST struct {
	Psi uint32
	Phi uint32
}

// Attack complexity constants from the paper's security analysis
// (§VI-A.5): the cheapest known attacks require ~8.38e5 mispredictions
// (PHT reuse side channel / BranchScope) or ~5.3e5 BTB evictions
// (eviction-based side channel). Thresholds derive as Γ = r·C.
const (
	// MispredictComplexity is C for misprediction-counted attacks.
	MispredictComplexity = 838_000
	// EvictionComplexity is C for eviction-counted attacks.
	EvictionComplexity = 530_000
)

// DefaultR is the paper's chosen attack-difficulty factor (§VII-A): strong
// security margin at negligible accuracy cost.
const DefaultR = 0.05

// Thresholds are the re-randomization budgets (event counts between
// re-randomizations). Zero values disable the corresponding monitor.
type Thresholds struct {
	// Mispredictions triggers on effective mispredictions (wrong
	// direction or wrong target of any branch).
	Mispredictions uint64
	// Evictions triggers on BTB evictions.
	Evictions uint64
	// TageMispredictions is the separate register TAGE-based ST models
	// carry for tagged-bank mispredictions (§VII-B2). Zero routes TAGE
	// mispredictions to the main misprediction register instead.
	TageMispredictions uint64
}

// Derive computes Γ = r·C thresholds for a difficulty factor r, e.g.
// r=0.05 → 41,900 mispredictions and 26,500 evictions (§VII-A).
func Derive(r float64) Thresholds {
	if r <= 0 {
		return Thresholds{}
	}
	t := Thresholds{
		Mispredictions: uint64(r * MispredictComplexity),
		Evictions:      uint64(r * EvictionComplexity),
	}
	t.TageMispredictions = t.Mispredictions
	return t
}

// String renders thresholds for reports.
func (t Thresholds) String() string {
	return fmt.Sprintf("misp=%d evict=%d tage=%d", t.Mispredictions, t.Evictions, t.TageMispredictions)
}

// counters mirror the per-entity MSR state: initialized to the threshold,
// decremented per event, re-randomizing at zero.
type counters struct {
	misp  uint64
	evict uint64
	tage  uint64
}

// entity is the per-software-entity state the OS context-switches.
type entity struct {
	st  ST
	ctr counters
}

// Stats aggregates manager activity for experiment reports.
type Stats struct {
	// Rerandomizations counts ST replacements, by trigger.
	RerandMisp  uint64
	RerandEvict uint64
	RerandTage  uint64
	// TokensIssued counts distinct entities seen.
	TokensIssued uint64
}

// Total returns all re-randomizations.
func (s Stats) Total() uint64 { return s.RerandMisp + s.RerandEvict + s.RerandTage }

// Manager owns token assignment and threshold monitoring. It is the
// software-visible contract of STBPU's new registers: the simulator calls
// TokenFor on context switches and the On* hooks on prediction events.
// Not safe for concurrent use; each simulated core owns one Manager.
type Manager struct {
	r          *rng.Rand
	thresholds Thresholds
	entities   map[uint64]*entity
	stats      Stats
}

// NewManager builds a manager with the given thresholds. The seed fixes
// the token stream for reproducibility (hardware would use an in-chip
// TRNG; see DESIGN.md substitutions).
func NewManager(seed uint64, th Thresholds) *Manager {
	return &Manager{
		r:          rng.New(seed),
		thresholds: th,
		entities:   make(map[uint64]*entity),
	}
}

// Thresholds returns the active configuration.
func (m *Manager) Thresholds() Thresholds { return m.thresholds }

// Stats returns aggregate counters.
func (m *Manager) Stats() Stats { return m.stats }

func (m *Manager) freshST() ST {
	v := m.r.Uint64()
	return ST{Psi: uint32(v), Phi: uint32(v >> 32)}
}

func (m *Manager) get(key uint64) *entity {
	e, ok := m.entities[key]
	if !ok {
		e = &entity{st: m.freshST()}
		e.ctr = counters{
			misp:  m.thresholds.Mispredictions,
			evict: m.thresholds.Evictions,
			tage:  m.thresholds.TageMispredictions,
		}
		m.entities[key] = e
		m.stats.TokensIssued++
	}
	return e
}

// TokenFor returns the current ST of an entity, creating one on first use.
func (m *Manager) TokenFor(key uint64) ST { return m.get(key).st }

// ShareToken makes `key` use the same token as `canonical` by aliasing the
// entity record: the OS's selective history sharing. Subsequent events on
// either key deplete the same budget.
func (m *Manager) ShareToken(key, canonical uint64) {
	m.entities[key] = m.get(canonical)
}

// Rerandomize replaces the entity's token immediately and resets its
// counters (the OS can force this, e.g. for sensitive processes).
func (m *Manager) Rerandomize(key uint64) ST {
	e := m.get(key)
	e.st = m.freshST()
	e.ctr = counters{
		misp:  m.thresholds.Mispredictions,
		evict: m.thresholds.Evictions,
		tage:  m.thresholds.TageMispredictions,
	}
	return e.st
}

// decrement handles one monitored event; returns the new ST when the
// counter hit zero and the token was re-randomized.
func (m *Manager) decrement(key uint64, c *uint64, reason *uint64) (ST, bool) {
	if *c == 0 {
		// Monitor disabled (threshold 0).
		return ST{}, false
	}
	*c--
	if *c > 0 {
		return ST{}, false
	}
	*reason++
	return m.Rerandomize(key), true
}

// OnMisprediction records an effective misprediction for the entity.
func (m *Manager) OnMisprediction(key uint64) (ST, bool) {
	e := m.get(key)
	if m.thresholds.Mispredictions == 0 {
		return ST{}, false
	}
	return m.decrement(key, &e.ctr.misp, &m.stats.RerandMisp)
}

// OnEviction records a BTB eviction for the entity.
func (m *Manager) OnEviction(key uint64) (ST, bool) {
	e := m.get(key)
	if m.thresholds.Evictions == 0 {
		return ST{}, false
	}
	return m.decrement(key, &e.ctr.evict, &m.stats.RerandEvict)
}

// OnTageMisprediction records a tagged-bank misprediction on the separate
// TAGE register. If the configuration has no separate register, it falls
// through to the main misprediction counter.
func (m *Manager) OnTageMisprediction(key uint64) (ST, bool) {
	e := m.get(key)
	if m.thresholds.TageMispredictions == 0 {
		return m.OnMisprediction(key)
	}
	return m.decrement(key, &e.ctr.tage, &m.stats.RerandTage)
}
