package experiments

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"stbpu/internal/harness"
	"stbpu/internal/results"
)

// runAllTiny executes every registered scenario at a deliberately tiny
// scale — the tables pipeline cares about shapes, not physics.
func runAllTiny(t *testing.T) []harness.Report {
	t.Helper()
	pool := harness.NewPool(4, 1)
	reports, err := harness.RunAll(context.Background(), pool, harness.Options{
		Params: harness.Params{Records: 8000, MaxWorkloads: 2, MaxPairs: 2, Trials: 2, Bits: 32, Budget: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	return reports
}

// TestEveryScenarioResultIsTabler is the pipeline coverage gate: every
// registered scenario's aggregate must flatten into a results.Table,
// and the typed decoder must reproduce that table from the aggregate's
// JSON — the exact path stbpu-report takes through a suite document.
func TestEveryScenarioResultIsTabler(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every scenario")
	}
	reports := runAllTiny(t)
	if len(reports) < 12 {
		t.Fatalf("only %d scenarios ran", len(reports))
	}
	for _, rep := range reports {
		if strings.HasPrefix(rep.Scenario, "_") {
			continue // test-only scenarios registered by other files
		}
		tb, ok := rep.Result.(results.Tabler)
		if !ok {
			t.Errorf("scenario %s result %T does not implement results.Tabler", rep.Scenario, rep.Result)
			continue
		}
		direct := tb.Table().WithScenario(rep.Scenario)
		if len(direct.Rows) == 0 {
			t.Errorf("scenario %s flattened to an empty table", rep.Scenario)
			continue
		}
		raw, err := json.Marshal(rep.Result)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := DecodeResult(rep.Scenario, raw)
		if err != nil {
			t.Errorf("DecodeResult(%s): %v", rep.Scenario, err)
			continue
		}
		viaWire := decoded.Table().WithScenario(rep.Scenario)
		if !reflect.DeepEqual(direct, viaWire) {
			t.Errorf("scenario %s: table differs between live aggregate and JSON round-trip", rep.Scenario)
		}
		// A table diffed against itself must be clean — the invariant the
		// stbpu-report self-diff smoke leans on.
		d := results.Diff(direct, viaWire)
		if len(d.Changed()) != 0 || len(d.OnlyOld) != 0 || len(d.OnlyNew) != 0 {
			t.Errorf("scenario %s: self-diff not clean", rep.Scenario)
		}
		// Row keys must be unique: duplicate keys would silently shadow
		// each other in diffs.
		seen := map[string]bool{}
		for _, row := range direct.Rows {
			if seen[row.Key()] {
				t.Errorf("scenario %s: duplicate table key %q", rep.Scenario, strings.ReplaceAll(row.Key(), "\x00", "|"))
				break
			}
			seen[row.Key()] = true
		}
	}
}

func TestDecodeResultUnknownScenario(t *testing.T) {
	if _, err := DecodeResult("no-such-scenario", json.RawMessage("{}")); err == nil {
		t.Error("unknown scenario decoded without error")
	}
}
