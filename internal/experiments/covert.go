package experiments

// The covert-channel experiment quantifies BPU isolation directly: a
// cooperating sender/receiver pair measures the PHT channel's bit-error
// rate on every model in the defense lineup. Capacity (1 - H2(p) through
// a binary symmetric channel) is the cleanest single number for "how much
// information crosses the isolation boundary" — ~1 bit/symbol on the
// unprotected baseline, ~0 under STBPU.

import (
	"context"
	"fmt"
	"io"

	"stbpu/internal/attacks"
	"stbpu/internal/harness"
	"stbpu/internal/results"
	"stbpu/internal/rng"
)

// CovertRow is one model's channel measurement.
type CovertRow struct {
	Model string
	// ErrorRate is the measured bit-error probability.
	ErrorRate float64
	// Capacity is bits/symbol through the BSC model.
	Capacity float64
	// Bandwidth is usable bits per thousand branch records.
	Bandwidth float64
	// Rerandomizations observed (STBPU only).
	Rerandomizations uint64
}

// CovertResult is the whole comparison.
type CovertResult struct {
	Bits int
	Rows []CovertRow
}

// covertCell is one (model, trial) measurement before averaging. Its
// fields are exported so the cell survives the JSON round-trip through a
// wire backend (see internal/harness/exec.go).
type covertCell struct {
	ErrRate, Capacity, Bandwidth float64
	Rerands                      uint64
}

// RunCovertComparison measures the PHT covert channel on the full lineup
// on the default pool.
func RunCovertComparison(nbits int) CovertResult {
	res, _ := RunCovertComparisonCtx(context.Background(),
		harness.Params{Bits: nbits, Trials: matrixRuns}, harness.Default())
	return res
}

// RunCovertComparisonCtx measures the channel, sharding (model × trial)
// cells; trials average out randomized defenses' luck.
func RunCovertComparisonCtx(ctx context.Context, p harness.Params, pool *harness.Pool) (CovertResult, error) {
	models := DefenseModels()
	trials := p.Trials
	if trials <= 0 {
		trials = matrixRuns
	}
	cells, err := harness.Map(ctx, pool, "covert", len(models)*trials,
		func(ctx context.Context, shard int, seed uint64) (covertCell, error) {
			m := shard / trials
			tgt := newMatrixTarget(models, m, seed)
			// The channel's pattern RNG gets its own stream, split off the
			// cell seed so model and channel noise stay independent.
			chanSeed := rng.SplitMix64(&seed)
			r := attacks.PHTCovertChannel(tgt, p.Bits, chanSeed)
			return covertCell{
				ErrRate:   r.ErrorRate(),
				Capacity:  r.CapacityPerSymbol(),
				Bandwidth: r.BandwidthBitsPerKRecord(),
				Rerands:   r.Rerandomizations,
			}, nil
		})
	if err != nil {
		return CovertResult{}, err
	}
	res := CovertResult{Bits: p.Bits}
	for m := range models {
		var row CovertRow
		for _, c := range cells[m*trials : (m+1)*trials] {
			row.ErrorRate += c.ErrRate
			row.Capacity += c.Capacity
			row.Bandwidth += c.Bandwidth
			row.Rerandomizations += c.Rerands
		}
		row.Model = models[m]
		row.ErrorRate /= float64(trials)
		row.Capacity /= float64(trials)
		row.Bandwidth /= float64(trials)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render writes the channel comparison as a text table (shared
// renderer: results.Grid).
func (r CovertResult) Render(w io.Writer) {
	fmt.Fprintf(w, "PHT covert channel, %d bits per run\n", r.Bits)
	g := results.Grid{LabelWidth: 14}
	g.Row(w, "model", fmt.Sprintf("%10s", "error"), fmt.Sprintf("%12s", "bits/symbol"),
		fmt.Sprintf("%16s", "bits/krecord"), fmt.Sprintf("%8s", "rerand"))
	for _, row := range r.Rows {
		g.Row(w, row.Model, fmt.Sprintf("%10.3f", row.ErrorRate),
			fmt.Sprintf("%12.3f", row.Capacity), fmt.Sprintf("%16.3f", row.Bandwidth),
			fmt.Sprintf("%8d", row.Rerandomizations))
	}
}

// Row returns the named model's measurement.
func (r CovertResult) Row(model string) (CovertRow, bool) {
	for _, row := range r.Rows {
		if row.Model == model {
			return row, true
		}
	}
	return CovertRow{}, false
}
