package experiments

// The covert-channel experiment quantifies BPU isolation directly: a
// cooperating sender/receiver pair measures the PHT channel's bit-error
// rate on every model in the defense lineup. Capacity (1 - H2(p) through
// a binary symmetric channel) is the cleanest single number for "how much
// information crosses the isolation boundary" — ~1 bit/symbol on the
// unprotected baseline, ~0 under STBPU.

import (
	"fmt"
	"io"

	"stbpu/internal/attacks"
)

// CovertRow is one model's channel measurement.
type CovertRow struct {
	Model string
	// ErrorRate is the measured bit-error probability.
	ErrorRate float64
	// Capacity is bits/symbol through the BSC model.
	Capacity float64
	// Bandwidth is usable bits per thousand branch records.
	Bandwidth float64
	// Rerandomizations observed (STBPU only).
	Rerandomizations uint64
}

// CovertResult is the whole comparison.
type CovertResult struct {
	Bits int
	Rows []CovertRow
}

// RunCovertComparison measures the PHT covert channel on the full lineup.
func RunCovertComparison(nbits int) CovertResult {
	models := DefenseModels()
	res := CovertResult{Bits: nbits}
	for m := range models {
		// Average over independent instances to smooth randomized
		// defenses' luck.
		var errSum, capSum, bwSum float64
		var rerand uint64
		for run := uint64(0); run < matrixRuns; run++ {
			tgt := newMatrixTarget(models, m, 0xc0de+run)
			r := attacks.PHTCovertChannel(tgt, nbits, 0xfeed+run)
			errSum += r.ErrorRate()
			capSum += r.CapacityPerSymbol()
			bwSum += r.BandwidthBitsPerKRecord()
			rerand += r.Rerandomizations
		}
		res.Rows = append(res.Rows, CovertRow{
			Model:            models[m],
			ErrorRate:        errSum / matrixRuns,
			Capacity:         capSum / matrixRuns,
			Bandwidth:        bwSum / matrixRuns,
			Rerandomizations: rerand,
		})
	}
	return res
}

// Render writes the channel comparison as a text table.
func (r CovertResult) Render(w io.Writer) {
	fmt.Fprintf(w, "PHT covert channel, %d bits per run\n", r.Bits)
	fmt.Fprintf(w, "%-14s %10s %12s %16s %8s\n",
		"model", "error", "bits/symbol", "bits/krecord", "rerand")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14s %10.3f %12.3f %16.3f %8d\n",
			row.Model, row.ErrorRate, row.Capacity, row.Bandwidth, row.Rerandomizations)
	}
}

// Row returns the named model's measurement.
func (r CovertResult) Row(model string) (CovertRow, bool) {
	for _, row := range r.Rows {
		if row.Model == model {
			return row, true
		}
	}
	return CovertRow{}, false
}
