package experiments

import (
	"strings"
	"testing"
)

// TestFig3CappedShape is the short-mode stand-in for the full-list shape
// tests below: a capped workload set keeps `go test -race -short` fast
// while still exercising the harness path end to end.
func TestFig3CappedShape(t *testing.T) {
	res, err := RunFig3(Scale{Records: 25_000, MaxWorkloads: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("Fig3 rows = %d, want 6", len(res.Rows))
	}
	if res.AvgNormalized[0] != 1.0 {
		t.Errorf("baseline normalization broken: %v", res.AvgNormalized[0])
	}
	if st := res.AvgNormalized[4]; st < 0.95 {
		t.Errorf("STBPU average normalized OAE %.3f on capped set, want >= 0.95", st)
	}
}

func TestFig3QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full 37-workload sweep; TestFig3CappedShape covers the short path")
	}
	res, err := RunFig3(Scale{Records: 40_000, MaxWorkloads: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 37 {
		t.Fatalf("Fig3 rows = %d, want 37", len(res.Rows))
	}
	base, u1, u2, cons, st := res.AvgNormalized[0], res.AvgNormalized[1],
		res.AvgNormalized[2], res.AvgNormalized[3], res.AvgNormalized[4]
	if base != 1.0 {
		t.Errorf("baseline normalization broken: %v", base)
	}
	// Paper shape: µcode-1 (0.77) < µcode-2 (0.82) < conservative (0.88)
	// < STBPU (0.99). We assert the ordering and the headline bounds.
	if !(u1 <= u2+0.01 && u2 < cons && cons < st) {
		t.Errorf("model ordering broken: u1=%.3f u2=%.3f cons=%.3f stbpu=%.3f", u1, u2, cons, st)
	}
	if st < 0.97 {
		t.Errorf("STBPU average normalized OAE %.3f, paper says ~0.99", st)
	}
	if u2 > 0.93 {
		t.Errorf("µcode-2 average %.3f; flushing should cost ≥7%%", u2)
	}
	if cons > 0.985 {
		t.Errorf("conservative average %.3f; capacity loss should show", cons)
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "AVG") {
		t.Error("render missing average row")
	}
}

func TestFig3ServerWorkloadsHurtMost(t *testing.T) {
	if testing.Short() {
		t.Skip("full 37-workload sweep; needs the server/SPEC split")
	}
	res, err := RunFig3(Scale{Records: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	var specLoss, serverLoss []float64
	for _, row := range res.Rows {
		loss := 1 - row.Normalized[2] // µcode-2
		if strings.HasPrefix(row.Workload, "5") {
			specLoss = append(specLoss, loss)
		} else {
			serverLoss = append(serverLoss, loss)
		}
	}
	avg := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if avg(serverLoss) < avg(specLoss) {
		t.Errorf("flushing should hurt servers more: server loss %.3f vs spec %.3f",
			avg(serverLoss), avg(specLoss))
	}
}

func TestFig4Quick(t *testing.T) {
	res, err := RunFig4(Scale{Records: 30_000, MaxWorkloads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for d, avg := range res.Avg {
		if avg.DirReduction > 0.03 {
			t.Errorf("predictor %d: direction reduction %.4f too large (paper ≤0.013)", d, avg.DirReduction)
		}
		if avg.TgtReduction > 0.04 {
			t.Errorf("predictor %d: target reduction %.4f too large (paper ≤0.02)", d, avg.TgtReduction)
		}
		if avg.NormIPC < 0.93 {
			t.Errorf("predictor %d: normalized IPC %.3f (paper ≥0.96 avg)", d, avg.NormIPC)
		}
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "AVG") {
		t.Error("render missing average row")
	}
}

func TestFig5Quick(t *testing.T) {
	res, err := RunFig5(Scale{Records: 25_000, MaxPairs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for d, avg := range res.Avg {
		if avg.NormIPC < 0.90 {
			t.Errorf("predictor %d: SMT normalized IPC %.3f (paper ≥0.95)", d, avg.NormIPC)
		}
	}
	var sb strings.Builder
	res.Render(&sb)
	if len(sb.String()) == 0 {
		t.Error("empty render")
	}
}

func TestFig6SweepShape(t *testing.T) {
	res, err := RunFig6(Scale{Records: 25_000, MaxPairs: 2}, []float64{5e-2, 5e-4, 2e-6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Paper shape: accuracy stays >95% of nominal for moderate r, then
	// collapses when re-randomization fires every few hundred events.
	if res.Points[0].Accuracy < 0.8 {
		t.Errorf("operating-point accuracy %.3f too low", res.Points[0].Accuracy)
	}
	if res.Points[2].Accuracy >= res.Points[0].Accuracy {
		t.Errorf("extreme r should cost accuracy: %.3f vs %.3f",
			res.Points[2].Accuracy, res.Points[0].Accuracy)
	}
	if res.Points[2].Rerands <= res.Points[0].Rerands {
		t.Error("smaller r must re-randomize more often")
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "rerandomizations") {
		t.Error("render missing header")
	}
}

func TestThresholdReport(t *testing.T) {
	rep := RunThresholds(0.05)
	if len(rep.Complexities) != 5 {
		t.Fatalf("complexity rows = %d", len(rep.Complexities))
	}
	if rep.MispThresh < 4.1e4 || rep.MispThresh > 4.2e4 {
		t.Errorf("misp threshold %.4g, want ≈4.15e4", rep.MispThresh)
	}
	if rep.EvictThresh < 2.6e4 || rep.EvictThresh > 2.7e4 {
		t.Errorf("evict threshold %.4g, want ≈2.65e4", rep.EvictThresh)
	}
	var sb strings.Builder
	rep.Render(&sb)
	if !strings.Contains(sb.String(), "thresholds at r=0.05") {
		t.Error("render missing thresholds line")
	}
}

func TestScales(t *testing.T) {
	if QuickScale().Records <= 0 || FullScale().Records <= QuickScale().Records {
		t.Error("scale presets inconsistent")
	}
}

func TestDefenseAccuracyComparison(t *testing.T) {
	s := QuickScale()
	s.MaxWorkloads = 4
	res, err := RunDefenseAccuracy(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || len(res.Models) != 6 {
		t.Fatalf("unexpected shape: %d rows, %d models", len(res.Rows), len(res.Models))
	}
	// STBPU (last column) must retain accuracy: ≥ 0.95 of baseline on
	// average, and it must beat Zhao (whose regenerated masks forfeit
	// retained history on switch-heavy workloads).
	stbpu := res.AvgNormalized[len(res.Models)-1]
	if stbpu < 0.95 {
		t.Errorf("STBPU avg normalized OAE = %.3f, want >= 0.95", stbpu)
	}
	var zhao float64
	for i, m := range res.Models {
		if m == "Zhao-DAC21" {
			zhao = res.AvgNormalized[i]
		}
	}
	if stbpu < zhao {
		t.Errorf("STBPU (%.3f) should retain at least as much accuracy as Zhao (%.3f)", stbpu, zhao)
	}
}

func TestDefenseMatrixShape(t *testing.T) {
	res := RunDefenseMatrix()
	if !res.BaselineOpenToAll() {
		t.Error("baseline should be open to every attack class")
	}
	if !res.STBPUStopsAll() {
		t.Error("STBPU should stop every attack class within the budget")
	}
	// Every related-work defense must leave at least one class open —
	// the §VIII argument for why STBPU is needed.
	for m := 1; m < len(res.Models)-1; m++ {
		open := false
		for a := range res.Attacks {
			if res.Cells[a][m].Succeeded {
				open = true
				break
			}
		}
		if !open {
			t.Errorf("%s unexpectedly stops every attack class", res.Models[m])
		}
	}
}

func TestCovertComparisonShape(t *testing.T) {
	res := RunCovertComparison(128)
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
	base, ok := res.Row("baseline")
	if !ok {
		t.Fatal("missing baseline row")
	}
	if base.Capacity < 0.7 {
		t.Errorf("baseline covert capacity = %.3f, want >= 0.7 bits/symbol", base.Capacity)
	}
	st, ok := res.Row("STBPU")
	if !ok {
		t.Fatal("missing STBPU row")
	}
	if st.Capacity > 0.2 {
		t.Errorf("STBPU covert capacity = %.3f, want <= 0.2 bits/symbol", st.Capacity)
	}
	// Exynos leaves the PHT untouched: the channel must remain usable.
	ex, _ := res.Row("Exynos-XOR")
	if ex.Capacity < 0.5 {
		t.Errorf("Exynos covert capacity = %.3f, want >= 0.5 (PHT unprotected)", ex.Capacity)
	}
	// BRB retains the PHT per process: the channel must collapse.
	brb, _ := res.Row("BRB")
	if brb.Capacity > 0.2 {
		t.Errorf("BRB covert capacity = %.3f, want <= 0.2 (per-process PHT)", brb.Capacity)
	}
}

func TestITTAGEExtension(t *testing.T) {
	s := QuickScale()
	s.MaxWorkloads = 4
	res, err := RunITTAGE(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	if !res.ITTAGEHelps() {
		t.Errorf("ITTAGE did not improve target rate: %v", res.AvgTargetRate)
	}
	if !res.ProtectionKeepsGain(0.02) {
		t.Errorf("ST protection costs more than 2pp of ITTAGE's gain: %v", res.AvgTargetRate)
	}
}

func TestWarmupCurve(t *testing.T) {
	res, err := RunWarmup("mysql_128con_50s", []int{10_000, 40_000, 120_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if !res.FlushPenaltyGrows(0.02) {
		t.Errorf("flush penalty does not deepen with warm state: %+v", res.Points)
	}
}
