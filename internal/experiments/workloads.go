package experiments

// The workloads scenario family evaluates the protection-model lineup
// on spec-driven phase-structured workloads (internal/trace/spec):
// per phase, it measures each model's attacker OAE and the number of
// STBPU re-randomizations the phase triggered. Phase structure is what
// the flat Fig. 3 traces cannot ask about — how defenses behave when
// tenant mix, switch cadence, and branch mix shift mid-trace (load
// ramps, bursts, drift).
//
// Every (spec, phase, model) triple is one cell, grouped trace-major
// by spec so all cells of a spec share one resident trace. A phase
// cell's measurement is defined as: warm the model over the trace
// prefix [0, phaseStart) exactly as an uninterrupted run would, then
// measure over [phaseStart, phaseEnd). The snapshot tier executes that
// definition without the quadratic prefix replay: within a group, each
// model advances through the phase segments once (chunked incremental
// replay is bit-identical to prefix replay — the model carries all
// flush state and the windowed switch accounting never crosses calls),
// every phase boundary is checkpointed into the pool's snapstore, and a
// model that joins mid-trace (a worker executing a phase subset, a
// resumed run) restores the boundary checkpoint instead of replaying
// the prefix. Cell seeds derive from the model's phase-0 shard, so a
// cell remains a pure function of its address and seed — grouping,
// backends, snapshots on or off, and resume all stay byte-identical.

import (
	"context"
	"fmt"
	"io"
	"sort"
	"unicode/utf8"

	"stbpu/internal/harness"
	"stbpu/internal/results"
	"stbpu/internal/sim"
	"stbpu/internal/snapstore"
	"stbpu/internal/trace/spec"
)

// WorkloadPhaseRow is one (spec, phase) measurement across the model
// lineup.
type WorkloadPhaseRow struct {
	Spec    string
	Phase   string
	Records int
	// OAE is the attacker's observation-accuracy equivalent per model,
	// indexed like Models; Normalized divides by the phase's baseline.
	OAE        []float64
	Normalized []float64
	// Rerands counts STBPU re-randomizations triggered within the
	// phase (zero for non-STBPU models).
	Rerands []uint64
}

// WorkloadsResult is the whole family: phase rows for every selected
// spec workload.
type WorkloadsResult struct {
	Models []string
	Rows   []WorkloadPhaseRow
}

// workloadCell is one cell's wire-safe measurement.
type workloadCell struct {
	OAE     float64 `json:"oae"`
	Rerands uint64  `json:"rerands"`
}

// selectedSpecs resolves the scenario's spec population: the named
// registered spec when p.WorkloadSpec is set, else the built-in
// fixtures (capped by MaxWorkloads). The population must be identical
// in every process of a run — built-ins are registered at package
// init, and coordinators forward user specs to workers before cells
// are scheduled.
func selectedSpecs(p harness.Params) ([]*spec.Spec, error) {
	if p.WorkloadSpec != "" {
		s, ok := spec.Lookup(p.WorkloadSpec)
		if !ok {
			return nil, fmt.Errorf("experiments: workload spec %q is not registered in this process", p.WorkloadSpec)
		}
		return []*spec.Spec{s}, nil
	}
	return capList(spec.Builtin(), p.MaxWorkloads), nil
}

// specRecords returns the record budget for one spec under p.
func specRecords(p harness.Params, s *spec.Spec) int {
	if p.Records > 0 {
		return p.Records
	}
	return s.TotalRecords()
}

// RunWorkloads evaluates the built-in spec fixtures on the default pool.
func RunWorkloads() (WorkloadsResult, error) {
	return RunWorkloadsCtx(context.Background(), harness.Params{}, harness.Default())
}

// RunWorkloadsCtx measures the Fig. 3 model lineup per spec phase,
// sharding (spec × phase × model) cells grouped trace-major by spec.
func RunWorkloadsCtx(ctx context.Context, p harness.Params, pool *harness.Pool) (WorkloadsResult, error) {
	specs, err := selectedSpecs(p)
	if err != nil {
		return WorkloadsResult{}, err
	}
	kinds := sim.Fig3Kinds()
	k := len(kinds)
	type addr struct{ si, pi, ki int }
	var addrs []addr
	// specBase[si] is the shard index of (si, phase 0, model 0): every
	// phase cell of a (spec, model) pair seeds from its phase-0 shard,
	// so one warm model serves all phases and forked/restored state is
	// bit-identical to prefix replay.
	specBase := make([]int, len(specs))
	for si, s := range specs {
		specBase[si] = len(addrs)
		for pi := range s.Phases {
			for ki := 0; ki < k; ki++ {
				addrs = append(addrs, addr{si, pi, ki})
			}
		}
	}
	rootSeed := harness.DefaultRootSeed
	if pool != nil {
		rootSeed = pool.RootSeed()
	}
	cache := pool.Traces()
	cells, err := harness.MapTraceMajor(ctx, pool, "workloads", len(addrs),
		func(shard int) int { return addrs[shard].si },
		func(shard int) string {
			s := specs[addrs[shard].si]
			return harness.Locality(s.WorkloadName(), specRecords(p, s))
		},
		func(ctx context.Context, shards []int, _ []uint64) ([]workloadCell, error) {
			si := addrs[shards[0]].si
			s := specs[si]
			records := specRecords(p, s)
			wl := s.WorkloadName()
			cols, prof, err := cache.GetColumns(wl, records)
			if err != nil {
				return nil, err
			}
			bounds := s.Boundaries(records)
			out := make([]workloadCell, len(shards))

			useSnaps := pool.SnapshotsOn()
			var snaps *snapstore.Store
			if useSnaps {
				snaps = pool.Snaps()
			}

			// One run per model kind present in the group; shards arrive
			// ascending, so each model's wanted phases are ascending too.
			type mrun struct {
				ki      int
				phases  []int // positions in shards/out, ascending phase
				m       sim.Model
				snapper sim.Snapshotter
				fp      string
				pos     int // records already replayed
				lastHi  int // end of the last wanted phase
				next    int // index into phases
				warm    sim.Result
			}
			byKi := map[int]*mrun{}
			var runs []*mrun
			for i, shard := range shards {
				a := addrs[shard]
				mr := byKi[a.ki]
				if mr == nil {
					mr = &mrun{ki: a.ki}
					byKi[a.ki] = mr
					runs = append(runs, mr)
				}
				mr.phases = append(mr.phases, i)
			}
			sort.Slice(runs, func(a, b int) bool { return runs[a].ki < runs[b].ki })
			for _, mr := range runs {
				seed := harness.ShardSeed(rootSeed, "workloads", specBase[si]+mr.ki)
				opt := sim.Options{SharedTokens: prof.SharedTokens, Seed: seed}
				mr.m = sim.New(kinds[mr.ki], opt)
				mr.snapper, _ = mr.m.(sim.Snapshotter)
				mr.fp = sim.Fingerprint(kinds[mr.ki], opt)
				mr.lastHi = bounds[addrs[shards[mr.phases[len(mr.phases)-1]]].pi+1]
				// A model whose first wanted phase starts mid-trace
				// restores the boundary checkpoint instead of replaying
				// the prefix — the snapshot tier's whole point.
				firstLo := bounds[addrs[shards[mr.phases[0]]].pi]
				if useSnaps && mr.snapper != nil && firstLo > 0 {
					key := snapstore.Key{Model: mr.fp, Workload: wl, Records: records, Offset: firstLo}
					if data, ok := snaps.Get(key); ok {
						if err := mr.snapper.DecodeState(data); err == nil {
							mr.pos = firstLo
						} else {
							// A checkpoint that passed the store's checksum
							// but fails model decode (foreign or stale
							// bytes): discard the half-restored model and
							// fall back to replay.
							mr.m = sim.New(kinds[mr.ki], opt)
							mr.snapper, _ = mr.m.(sim.Snapshotter)
						}
					}
				}
			}

			// Walk the phase segments in order; every model whose span
			// covers a segment replays it exactly once, all models of the
			// group sharing one resident pass per segment. Models joining
			// at a later boundary and models already past their last
			// wanted phase simply sit the segment out.
			for pi := 0; pi+1 < len(bounds); pi++ {
				lo, hi := bounds[pi], bounds[pi+1]
				var active []*mrun
				var models []sim.Model
				for _, mr := range runs {
					if mr.pos == lo && lo < mr.lastHi {
						active = append(active, mr)
						models = append(models, mr.m)
					}
				}
				if len(active) == 0 {
					continue
				}
				for _, mr := range active {
					// Finalize counters are cumulative over the model's
					// life; capture them at the boundary so the phase's
					// own contribution is the delta.
					mr.warm = sim.Result{}
					if f, ok := mr.m.(sim.Finalizer); ok {
						f.Finalize(&mr.warm)
					}
				}
				rs, err := sim.RunColumnsMulti(ctx, models, cols.Slice(lo, hi))
				if err != nil {
					return nil, err
				}
				for j, mr := range active {
					mr.pos = hi
					if mr.next < len(mr.phases) {
						i := mr.phases[mr.next]
						if addrs[shards[i]].pi == pi {
							res := rs[j]
							out[i] = workloadCell{
								OAE:     res.OAE(),
								Rerands: res.Rerandomizations - mr.warm.Rerandomizations,
							}
							mr.next++
						}
					}
					if useSnaps && mr.snapper != nil && hi < records {
						key := snapstore.Key{Model: mr.fp, Workload: wl, Records: records, Offset: hi}
						snaps.Put(key, mr.snapper.EncodeState())
					}
				}
			}
			return out, nil
		})
	if err != nil {
		return WorkloadsResult{}, err
	}
	res := WorkloadsResult{}
	for _, kind := range kinds {
		res.Models = append(res.Models, kind.String())
	}
	idx := 0
	for _, s := range specs {
		records := specRecords(p, s)
		bounds := s.Boundaries(records)
		for pi := range s.Phases {
			row := WorkloadPhaseRow{
				Spec:       s.WorkloadName(),
				Phase:      s.Phases[pi].Name,
				Records:    bounds[pi+1] - bounds[pi],
				OAE:        make([]float64, k),
				Normalized: make([]float64, k),
				Rerands:    make([]uint64, k),
			}
			for ki := 0; ki < k; ki++ {
				row.OAE[ki] = cells[idx].OAE
				row.Rerands[ki] = cells[idx].Rerands
				idx++
			}
			if base := row.OAE[0]; base > 0 {
				for ki := 0; ki < k; ki++ {
					row.Normalized[ki] = row.OAE[ki] / base
				}
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Render writes the family as text tables (shared renderer:
// results.Grid).
func (r WorkloadsResult) Render(w io.Writer) {
	fmt.Fprintf(w, "spec-driven phase workloads (normalized OAE / rerands per phase)\n")
	g := results.Grid{LabelWidth: 30}
	g.Row(w, "spec/phase", results.Cells("%18s", r.Models...)...)
	for _, row := range r.Rows {
		label := row.Spec + "/" + row.Phase
		if len(label) > 30 {
			// Truncate on a rune boundary: a byte-indexed cut can split a
			// multi-byte rune in a user-supplied spec name and emit a
			// mangled replacement character.
			cut := len(label) - 30
			for cut < len(label) && !utf8.RuneStart(label[cut]) {
				cut++
			}
			label = label[cut:]
		}
		g.Row(w, label, results.Cells("%18.4f", row.Normalized...)...)
	}
}

// Table implements results.Tabler.
func (r WorkloadsResult) Table() results.Table {
	var t results.Table
	for _, row := range r.Rows {
		for i, m := range r.Models {
			cell := results.Labels("spec", row.Spec, "phase", row.Phase, "model", m)
			t.Add(cell, "oae", row.OAE[i])
			t.Add(cell, "norm_oae", row.Normalized[i])
			t.AddUnit(cell, "rerands", "count", float64(row.Rerands[i]))
		}
	}
	return t
}
