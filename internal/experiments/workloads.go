package experiments

// The workloads scenario family evaluates the protection-model lineup
// on spec-driven phase-structured workloads (internal/trace/spec):
// per phase, it measures each model's attacker OAE and the number of
// STBPU re-randomizations the phase triggered. Phase structure is what
// the flat Fig. 3 traces cannot ask about — how defenses behave when
// tenant mix, switch cadence, and branch mix shift mid-trace (load
// ramps, bursts, drift).
//
// Every (spec, phase, model) triple is one cell, grouped trace-major
// by spec so all cells of a spec share one resident trace. A phase
// cell replays the trace prefix [0, phaseStart) to warm the model
// exactly as an uninterrupted run would, then measures over
// [phaseStart, phaseEnd): each cell is a pure function of its address
// and seed, which keeps grouping, backends, and resume byte-identical.

import (
	"context"
	"fmt"
	"io"

	"stbpu/internal/harness"
	"stbpu/internal/results"
	"stbpu/internal/sim"
	"stbpu/internal/trace/spec"
)

// WorkloadPhaseRow is one (spec, phase) measurement across the model
// lineup.
type WorkloadPhaseRow struct {
	Spec    string
	Phase   string
	Records int
	// OAE is the attacker's observation-accuracy equivalent per model,
	// indexed like Models; Normalized divides by the phase's baseline.
	OAE        []float64
	Normalized []float64
	// Rerands counts STBPU re-randomizations triggered within the
	// phase (zero for non-STBPU models).
	Rerands []uint64
}

// WorkloadsResult is the whole family: phase rows for every selected
// spec workload.
type WorkloadsResult struct {
	Models []string
	Rows   []WorkloadPhaseRow
}

// workloadCell is one cell's wire-safe measurement.
type workloadCell struct {
	OAE     float64 `json:"oae"`
	Rerands uint64  `json:"rerands"`
}

// selectedSpecs resolves the scenario's spec population: the named
// registered spec when p.WorkloadSpec is set, else the built-in
// fixtures (capped by MaxWorkloads). The population must be identical
// in every process of a run — built-ins are registered at package
// init, and coordinators forward user specs to workers before cells
// are scheduled.
func selectedSpecs(p harness.Params) ([]*spec.Spec, error) {
	if p.WorkloadSpec != "" {
		s, ok := spec.Lookup(p.WorkloadSpec)
		if !ok {
			return nil, fmt.Errorf("experiments: workload spec %q is not registered in this process", p.WorkloadSpec)
		}
		return []*spec.Spec{s}, nil
	}
	return capList(spec.Builtin(), p.MaxWorkloads), nil
}

// specRecords returns the record budget for one spec under p.
func specRecords(p harness.Params, s *spec.Spec) int {
	if p.Records > 0 {
		return p.Records
	}
	return s.TotalRecords()
}

// RunWorkloads evaluates the built-in spec fixtures on the default pool.
func RunWorkloads() (WorkloadsResult, error) {
	return RunWorkloadsCtx(context.Background(), harness.Params{}, harness.Default())
}

// RunWorkloadsCtx measures the Fig. 3 model lineup per spec phase,
// sharding (spec × phase × model) cells grouped trace-major by spec.
func RunWorkloadsCtx(ctx context.Context, p harness.Params, pool *harness.Pool) (WorkloadsResult, error) {
	specs, err := selectedSpecs(p)
	if err != nil {
		return WorkloadsResult{}, err
	}
	kinds := sim.Fig3Kinds()
	k := len(kinds)
	type addr struct{ si, pi, ki int }
	var addrs []addr
	for si, s := range specs {
		for pi := range s.Phases {
			for ki := 0; ki < k; ki++ {
				addrs = append(addrs, addr{si, pi, ki})
			}
		}
	}
	cache := pool.Traces()
	cells, err := harness.MapTraceMajor(ctx, pool, "workloads", len(addrs),
		func(shard int) int { return addrs[shard].si },
		func(ctx context.Context, shards []int, seeds []uint64) ([]workloadCell, error) {
			s := specs[addrs[shards[0]].si]
			records := specRecords(p, s)
			cols, prof, err := cache.GetColumns(s.WorkloadName(), records)
			if err != nil {
				return nil, err
			}
			bounds := s.Boundaries(records)
			out := make([]workloadCell, len(shards))
			for i, shard := range shards {
				a := addrs[shard]
				lo, hi := bounds[a.pi], bounds[a.pi+1]
				m := sim.New(kinds[a.ki], sim.Options{SharedTokens: prof.SharedTokens, Seed: seeds[i]})
				var warm sim.Result
				if lo > 0 {
					// Warm the model over the prefix so the phase sees
					// exactly the predictor state an uninterrupted run
					// would carry in.
					warm, err = sim.RunColumnsCtx(ctx, m, cols.Slice(0, lo))
					if err != nil {
						return nil, err
					}
				}
				res, err := sim.RunColumnsCtx(ctx, m, cols.Slice(lo, hi))
				if err != nil {
					return nil, err
				}
				// Finalize counters are cumulative over the model's
				// life; the phase's own contribution is the delta past
				// the warmup run.
				out[i] = workloadCell{
					OAE:     res.OAE(),
					Rerands: res.Rerandomizations - warm.Rerandomizations,
				}
			}
			return out, nil
		})
	if err != nil {
		return WorkloadsResult{}, err
	}
	res := WorkloadsResult{}
	for _, kind := range kinds {
		res.Models = append(res.Models, kind.String())
	}
	idx := 0
	for _, s := range specs {
		records := specRecords(p, s)
		bounds := s.Boundaries(records)
		for pi := range s.Phases {
			row := WorkloadPhaseRow{
				Spec:       s.WorkloadName(),
				Phase:      s.Phases[pi].Name,
				Records:    bounds[pi+1] - bounds[pi],
				OAE:        make([]float64, k),
				Normalized: make([]float64, k),
				Rerands:    make([]uint64, k),
			}
			for ki := 0; ki < k; ki++ {
				row.OAE[ki] = cells[idx].OAE
				row.Rerands[ki] = cells[idx].Rerands
				idx++
			}
			if base := row.OAE[0]; base > 0 {
				for ki := 0; ki < k; ki++ {
					row.Normalized[ki] = row.OAE[ki] / base
				}
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Render writes the family as text tables (shared renderer:
// results.Grid).
func (r WorkloadsResult) Render(w io.Writer) {
	fmt.Fprintf(w, "spec-driven phase workloads (normalized OAE / rerands per phase)\n")
	g := results.Grid{LabelWidth: 30}
	g.Row(w, "spec/phase", results.Cells("%18s", r.Models...)...)
	for _, row := range r.Rows {
		label := row.Spec + "/" + row.Phase
		if len(label) > 30 {
			label = label[len(label)-30:]
		}
		g.Row(w, label, results.Cells("%18.4f", row.Normalized...)...)
	}
}

// Table implements results.Tabler.
func (r WorkloadsResult) Table() results.Table {
	var t results.Table
	for _, row := range r.Rows {
		for i, m := range r.Models {
			cell := results.Labels("spec", row.Spec, "phase", row.Phase, "model", m)
			t.Add(cell, "oae", row.OAE[i])
			t.Add(cell, "norm_oae", row.Normalized[i])
			t.AddUnit(cell, "rerands", "count", float64(row.Rerands[i]))
		}
	}
	return t
}
