package experiments

// The warmup experiment quantifies this reproduction's main documented
// divergence from the paper: Fig. 3's flushing-model penalties are
// gentler here than published because synthetic traces carry less warm
// predictor state than real binaries — a flush discards less. The curve
// below makes that mechanism measurable: as traces grow (more warm state
// accumulated between context switches), the flushing models' normalized
// OAE falls while STBPU's stays flat. Extrapolating the trend toward
// real-binary state sizes recovers the paper's 0.77-0.88 averages.

import (
	"context"
	"fmt"
	"io"

	"stbpu/internal/harness"
	"stbpu/internal/results"
	"stbpu/internal/sim"
)

// WarmupPoint is one trace-length measurement.
type WarmupPoint struct {
	Records int
	// NormOAE is OAE normalized to baseline, indexed by sim.Fig3Kinds.
	NormOAE [5]float64
}

// WarmupResult is the whole curve.
type WarmupResult struct {
	Workload string
	Points   []WarmupPoint
}

// DefaultWarmupLengths is the trace-length axis of the curve.
func DefaultWarmupLengths() []int { return []int{10_000, 40_000, 160_000} }

// DefaultWarmupSweep is DefaultWarmupLengths as a harness.Params sweep.
func DefaultWarmupSweep() []float64 {
	lengths := DefaultWarmupLengths()
	sweep := make([]float64, len(lengths))
	for i, l := range lengths {
		sweep[i] = float64(l)
	}
	return sweep
}

// RunWarmup measures the Fig. 3 lineup across increasing trace lengths on
// one switch-heavy workload, on the default pool.
func RunWarmup(workload string, lengths []int) (WarmupResult, error) {
	sweep := make([]float64, len(lengths))
	for i, l := range lengths {
		sweep[i] = float64(l)
	}
	return RunWarmupCtx(context.Background(),
		harness.Params{Workload: workload, Sweep: sweep}, harness.Default())
}

// RunWarmupCtx measures the curve, sharding (length × model) cells.
// p.Workload names the trace preset; p.Sweep carries the trace lengths.
func RunWarmupCtx(ctx context.Context, p harness.Params, pool *harness.Pool) (WarmupResult, error) {
	lengths := make([]int, 0, len(p.Sweep))
	for _, l := range p.Sweep {
		lengths = append(lengths, int(l))
	}
	if len(lengths) == 0 {
		lengths = DefaultWarmupLengths()
	}
	res := WarmupResult{Workload: p.Workload}
	kinds := sim.Fig3Kinds()
	cache := pool.Traces()
	k := len(kinds)
	// Trace-major: cells group by trace length — each prefix length is
	// its own resident trace shared by all five models.
	oaes, err := harness.MapTraceMajor(ctx, pool, "warmup", len(lengths)*k,
		func(shard int) int { return shard / k },
		func(ctx context.Context, shards []int, seeds []uint64) ([]float64, error) {
			cols, prof, err := cache.GetColumns(p.Workload, lengths[shards[0]/k])
			if err != nil {
				return nil, err
			}
			models := make([]sim.Model, len(shards))
			for i, shard := range shards {
				models[i] = sim.New(kinds[shard%k], sim.Options{SharedTokens: prof.SharedTokens, Seed: seeds[i]})
			}
			rs, err := sim.RunColumnsMulti(ctx, models, cols)
			if err != nil {
				return nil, err
			}
			out := make([]float64, len(rs))
			for i, r := range rs {
				out[i] = r.OAE()
			}
			return out, nil
		})
	if err != nil {
		return WarmupResult{}, err
	}
	res.Points = make([]WarmupPoint, len(lengths))
	for li := range lengths {
		pt := WarmupPoint{Records: lengths[li]}
		for ki := 0; ki < k; ki++ {
			pt.NormOAE[ki] = oaes[li*k+ki] / oaes[li*k]
		}
		res.Points[li] = pt
	}
	return res, nil
}

// Render writes the curve as a text table (shared renderer: results.Grid).
func (r WarmupResult) Render(w io.Writer) {
	fmt.Fprintf(w, "warm-state curve on %s (normalized OAE)\n", r.Workload)
	g := results.Grid{LabelWidth: 10}
	g.Row(w, "records", results.Cells("%18s", sim.Fig3Kinds()...)...)
	for _, p := range r.Points {
		g.Row(w, results.Itoa(p.Records), results.Cells("%18.4f", p.NormOAE[:]...)...)
	}
}

// FlushPenaltyGrows reports whether the flushing models' penalty deepens
// with trace length while STBPU's stays within eps of flat — the claimed
// mechanism behind the Fig. 3 magnitude difference.
func (r WarmupResult) FlushPenaltyGrows(eps float64) bool {
	if len(r.Points) < 2 {
		return false
	}
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	ucodeDeepens := last.NormOAE[1] < first.NormOAE[1] // µcode-1
	stbpuFlat := last.NormOAE[4] >= first.NormOAE[4]-eps
	return ucodeDeepens && stbpuFlat
}
