package experiments

// The warmup experiment quantifies this reproduction's main documented
// divergence from the paper: Fig. 3's flushing-model penalties are
// gentler here than published because synthetic traces carry less warm
// predictor state than real binaries — a flush discards less. The curve
// below makes that mechanism measurable: as traces grow (more warm state
// accumulated between context switches), the flushing models' normalized
// OAE falls while STBPU's stays flat. Extrapolating the trend toward
// real-binary state sizes recovers the paper's 0.77-0.88 averages.

import (
	"context"
	"fmt"
	"io"
	"sort"

	"stbpu/internal/harness"
	"stbpu/internal/results"
	"stbpu/internal/sim"
	"stbpu/internal/stats"
	"stbpu/internal/trace"
)

// WarmupPoint is one trace-length measurement.
type WarmupPoint struct {
	Records int
	// NormOAE is OAE normalized to baseline, indexed by sim.Fig3Kinds.
	NormOAE [5]float64
}

// WarmupResult is the whole curve.
type WarmupResult struct {
	Workload string
	Points   []WarmupPoint
}

// DefaultWarmupLengths is the trace-length axis of the curve.
func DefaultWarmupLengths() []int { return []int{10_000, 40_000, 160_000} }

// DefaultWarmupSweep is DefaultWarmupLengths as a harness.Params sweep.
func DefaultWarmupSweep() []float64 {
	lengths := DefaultWarmupLengths()
	sweep := make([]float64, len(lengths))
	for i, l := range lengths {
		sweep[i] = float64(l)
	}
	return sweep
}

// RunWarmup measures the Fig. 3 lineup across increasing trace lengths on
// one switch-heavy workload, on the default pool.
func RunWarmup(workload string, lengths []int) (WarmupResult, error) {
	sweep := make([]float64, len(lengths))
	for i, l := range lengths {
		sweep[i] = float64(l)
	}
	return RunWarmupCtx(context.Background(),
		harness.Params{Workload: workload, Sweep: sweep}, harness.Default())
}

// RunWarmupCtx measures the curve, sharding (length × model) cells.
// p.Workload names the trace preset; p.Sweep carries the trace lengths.
//
// Preset workloads generate prefix-stable traces (the l-record trace is
// the prefix of any longer one — pinned by trace's prefix-stability
// test), so the whole curve collapses into ONE trace-major group: each
// model replays the longest trace once, and every shorter length's OAE
// is read off the cumulative misprediction count at that record
// boundary — counters are additive, so the cumulative sums are
// bit-identical to a cold run of each prefix. That turns the old
// quadratic warmup replay (every length re-replays its shared prefix)
// into a single O(maxLen) pass per model. Spec-synth workloads rescale
// their phase boundaries with the record budget and are NOT
// prefix-stable, so they keep the per-length grouping.
func RunWarmupCtx(ctx context.Context, p harness.Params, pool *harness.Pool) (WarmupResult, error) {
	lengths := make([]int, 0, len(p.Sweep))
	for _, l := range p.Sweep {
		lengths = append(lengths, int(l))
	}
	if len(lengths) == 0 {
		lengths = DefaultWarmupLengths()
	}
	res := WarmupResult{Workload: p.Workload}
	kinds := sim.Fig3Kinds()
	cache := pool.Traces()
	k := len(kinds)
	rootSeed := harness.DefaultRootSeed
	if pool != nil {
		rootSeed = pool.RootSeed()
	}
	_, synth := trace.LookupSynth(p.Workload)

	// Trace-major grouping: prefix-stable presets share one group (one
	// resident trace, one pass per model); synths group by trace length.
	maxLen := 0
	for _, l := range lengths {
		if l > maxLen {
			maxLen = l
		}
	}
	key := func(int) int { return 0 }
	locality := func(int) string { return harness.Locality(p.Workload, maxLen) }
	if synth {
		key = func(shard int) int { return shard / k }
		locality = func(shard int) string { return harness.Locality(p.Workload, lengths[shard/k]) }
	}
	run := func(ctx context.Context, shards []int, seeds []uint64) ([]float64, error) {
		if synth {
			cols, prof, err := cache.GetColumns(p.Workload, lengths[shards[0]/k])
			if err != nil {
				return nil, err
			}
			models := make([]sim.Model, len(shards))
			for i, shard := range shards {
				models[i] = sim.New(kinds[shard%k], sim.Options{SharedTokens: prof.SharedTokens, Seed: seeds[i]})
			}
			rs, err := sim.RunColumnsMulti(ctx, models, cols)
			if err != nil {
				return nil, err
			}
			out := make([]float64, len(rs))
			for i, r := range rs {
				out[i] = r.OAE()
			}
			return out, nil
		}

		// Single-pass path. Boundaries are the sorted unique lengths;
		// each model replays the inter-boundary segments once, and a
		// cell (length, model) reads the cumulative mispredictions when
		// its boundary is crossed. Seeds derive from the model's
		// length-0 shard (one model instance serves every length).
		cols, prof, err := cache.GetColumns(p.Workload, maxLen)
		if err != nil {
			return nil, err
		}
		out := make([]float64, len(shards))
		type mrun struct {
			ki      int
			m       sim.Model
			misp    uint64
			maxWant int
			want    map[int][]int // length → positions in shards/out
		}
		byKi := map[int]*mrun{}
		var runs []*mrun
		for i, shard := range shards {
			li, ki := shard/k, shard%k
			mr := byKi[ki]
			if mr == nil {
				mr = &mrun{ki: ki, want: map[int][]int{}}
				byKi[ki] = mr
				runs = append(runs, mr)
			}
			l := lengths[li]
			mr.want[l] = append(mr.want[l], i)
			if l > mr.maxWant {
				mr.maxWant = l
			}
		}
		sort.Slice(runs, func(a, b int) bool { return runs[a].ki < runs[b].ki })
		for _, mr := range runs {
			mr.m = sim.New(kinds[mr.ki], sim.Options{SharedTokens: prof.SharedTokens,
				Seed: harness.ShardSeed(rootSeed, "warmup", mr.ki)})
		}
		bounds := append([]int{0}, lengths...)
		sort.Ints(bounds)
		uniq := bounds[:1]
		for _, b := range bounds[1:] {
			if b != uniq[len(uniq)-1] {
				uniq = append(uniq, b)
			}
		}
		emit := func(mr *mrun, l int) {
			for _, i := range mr.want[l] {
				out[i] = 1 - stats.Ratio(mr.misp, uint64(l))
			}
		}
		for _, mr := range runs {
			emit(mr, 0) // degenerate zero-length cells, if any
		}
		for j := 0; j+1 < len(uniq); j++ {
			lo, hi := uniq[j], uniq[j+1]
			var active []*mrun
			var models []sim.Model
			for _, mr := range runs {
				if mr.maxWant > lo {
					active = append(active, mr)
					models = append(models, mr.m)
				}
			}
			if len(active) == 0 {
				break
			}
			rs, err := sim.RunColumnsMulti(ctx, models, cols.Slice(lo, hi))
			if err != nil {
				return nil, err
			}
			for idx, mr := range active {
				mr.misp += rs[idx].Mispredicts
				emit(mr, hi)
			}
		}
		return out, nil
	}
	oaes, err := harness.MapTraceMajor(ctx, pool, "warmup", len(lengths)*k, key, locality, run)
	if err != nil {
		return WarmupResult{}, err
	}
	res.Points = make([]WarmupPoint, len(lengths))
	for li := range lengths {
		pt := WarmupPoint{Records: lengths[li]}
		for ki := 0; ki < k; ki++ {
			pt.NormOAE[ki] = oaes[li*k+ki] / oaes[li*k]
		}
		res.Points[li] = pt
	}
	return res, nil
}

// Render writes the curve as a text table (shared renderer: results.Grid).
func (r WarmupResult) Render(w io.Writer) {
	fmt.Fprintf(w, "warm-state curve on %s (normalized OAE)\n", r.Workload)
	g := results.Grid{LabelWidth: 10}
	g.Row(w, "records", results.Cells("%18s", sim.Fig3Kinds()...)...)
	for _, p := range r.Points {
		g.Row(w, results.Itoa(p.Records), results.Cells("%18.4f", p.NormOAE[:]...)...)
	}
}

// FlushPenaltyGrows reports whether the flushing models' penalty deepens
// with trace length while STBPU's stays within eps of flat — the claimed
// mechanism behind the Fig. 3 magnitude difference.
func (r WarmupResult) FlushPenaltyGrows(eps float64) bool {
	if len(r.Points) < 2 {
		return false
	}
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	ucodeDeepens := last.NormOAE[1] < first.NormOAE[1] // µcode-1
	stbpuFlat := last.NormOAE[4] >= first.NormOAE[4]-eps
	return ucodeDeepens && stbpuFlat
}
