package experiments

// The warmup experiment quantifies this reproduction's main documented
// divergence from the paper: Fig. 3's flushing-model penalties are
// gentler here than published because synthetic traces carry less warm
// predictor state than real binaries — a flush discards less. The curve
// below makes that mechanism measurable: as traces grow (more warm state
// accumulated between context switches), the flushing models' normalized
// OAE falls while STBPU's stays flat. Extrapolating the trend toward
// real-binary state sizes recovers the paper's 0.77-0.88 averages.

import (
	"fmt"
	"io"

	"stbpu/internal/sim"
	"stbpu/internal/trace"
)

// WarmupPoint is one trace-length measurement.
type WarmupPoint struct {
	Records int
	// NormOAE is OAE normalized to baseline, indexed by sim.Fig3Kinds.
	NormOAE [5]float64
}

// WarmupResult is the whole curve.
type WarmupResult struct {
	Workload string
	Points   []WarmupPoint
}

// RunWarmup measures the Fig. 3 lineup across increasing trace lengths on
// one switch-heavy workload.
func RunWarmup(workload string, lengths []int) (WarmupResult, error) {
	if len(lengths) == 0 {
		lengths = []int{10_000, 40_000, 160_000}
	}
	res := WarmupResult{Workload: workload}
	prof, err := trace.Preset(workload)
	if err != nil {
		return WarmupResult{}, err
	}
	points := make([]WarmupPoint, len(lengths))
	errs := make([]error, len(lengths))
	parallelFor(len(lengths), func(i int) {
		tr, err := trace.Generate(prof.WithRecords(lengths[i]))
		if err != nil {
			errs[i] = err
			return
		}
		pt := WarmupPoint{Records: lengths[i]}
		var oae [5]float64
		for k, kind := range sim.Fig3Kinds() {
			m := sim.New(kind, sim.Options{SharedTokens: prof.SharedTokens, Seed: 7})
			oae[k] = sim.Run(m, tr).OAE()
		}
		for k := range oae {
			pt.NormOAE[k] = oae[k] / oae[0]
		}
		points[i] = pt
	})
	for _, err := range errs {
		if err != nil {
			return WarmupResult{}, err
		}
	}
	res.Points = points
	return res, nil
}

// Render writes the curve as a text table.
func (r WarmupResult) Render(w io.Writer) {
	fmt.Fprintf(w, "warm-state curve on %s (normalized OAE)\n", r.Workload)
	fmt.Fprintf(w, "%-10s", "records")
	for _, k := range sim.Fig3Kinds() {
		fmt.Fprintf(w, " %18s", k)
	}
	fmt.Fprintln(w)
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-10d", p.Records)
		for _, v := range p.NormOAE {
			fmt.Fprintf(w, " %18.4f", v)
		}
		fmt.Fprintln(w)
	}
}

// FlushPenaltyGrows reports whether the flushing models' penalty deepens
// with trace length while STBPU's stays within eps of flat — the claimed
// mechanism behind the Fig. 3 magnitude difference.
func (r WarmupResult) FlushPenaltyGrows(eps float64) bool {
	if len(r.Points) < 2 {
		return false
	}
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	ucodeDeepens := last.NormOAE[1] < first.NormOAE[1] // µcode-1
	stbpuFlat := last.NormOAE[4] >= first.NormOAE[4]-eps
	return ucodeDeepens && stbpuFlat
}
