package experiments

// Scenario registration: every experiment driver in this package is a
// named harness.Scenario, so CLIs (stbpu-suite, stbpu-bench) and tests
// run them uniformly through the parallel engine. Importing this package
// populates the registry.

import (
	"context"

	"stbpu/internal/harness"
	"stbpu/internal/trace/spec"
)

// defaultScaleParams is the historical stbpu-bench default scale.
func defaultScaleParams() harness.Params {
	return harness.Params{Records: 120_000}
}

func init() {
	harness.Register(harness.Scenario{
		Name:        "fig3",
		Description: "Fig. 3 trace-driven OAE comparison of the five protection models",
		Defaults:    defaultScaleParams(),
		Run: func(ctx context.Context, p harness.Params, pool *harness.Pool) (any, error) {
			return RunFig3Ctx(ctx, p, pool)
		},
	})
	harness.Register(harness.Scenario{
		Name:        "fig4",
		Description: "Fig. 4 single-workload CPU evaluation (prediction reductions, normalized IPC)",
		Defaults:    defaultScaleParams(),
		Run: func(ctx context.Context, p harness.Params, pool *harness.Pool) (any, error) {
			return RunFig4Ctx(ctx, p, pool)
		},
	})
	harness.Register(harness.Scenario{
		Name:        "fig5",
		Description: "Fig. 5 SMT pair evaluation",
		Defaults:    defaultScaleParams(),
		Run: func(ctx context.Context, p harness.Params, pool *harness.Pool) (any, error) {
			return RunFig5Ctx(ctx, p, pool)
		},
	})
	harness.Register(harness.Scenario{
		Name:        "fig6",
		Description: "Fig. 6 aggressive re-randomization sweep",
		Defaults: harness.Params{
			Records: 120_000, Sweep: DefaultFig6Sweep(),
		},
		Run: func(ctx context.Context, p harness.Params, pool *harness.Pool) (any, error) {
			return RunFig6Ctx(ctx, p, pool)
		},
	})
	harness.Register(harness.Scenario{
		Name:        "thresholds",
		Description: "§VI-A.5 attack complexities and re-randomization thresholds",
		Defaults:    harness.Params{R: 0.05},
		Run: func(ctx context.Context, p harness.Params, pool *harness.Pool) (any, error) {
			return RunThresholds(p.R), nil
		},
	})
	harness.Register(harness.Scenario{
		Name:        "gamma",
		Description: "Γ sweep: epoch success probability vs attack-difficulty factor r",
		Defaults:    harness.Params{Sweep: DefaultGammaSweep()},
		Run: func(ctx context.Context, p harness.Params, pool *harness.Pool) (any, error) {
			return RunGamma(p.Sweep), nil
		},
	})
	harness.Register(harness.Scenario{
		Name:        "tablei",
		Description: "Table I attack surface against baseline and STBPU",
		Defaults:    harness.Params{Budget: 20_000},
		Run: func(ctx context.Context, p harness.Params, pool *harness.Pool) (any, error) {
			return RunTableICtx(ctx, p, pool)
		},
	})
	harness.Register(harness.Scenario{
		Name:        "defense-accuracy",
		Description: "§VIII related-work head-to-head: OAE retention across the defense lineup",
		Defaults:    defaultScaleParams(),
		Run: func(ctx context.Context, p harness.Params, pool *harness.Pool) (any, error) {
			return RunDefenseAccuracyCtx(ctx, p, pool)
		},
	})
	harness.Register(harness.Scenario{
		Name:        "defense-matrix",
		Description: "§VIII related-work head-to-head: attack-outcome matrix per Table I class",
		Defaults:    harness.Params{Trials: matrixRuns},
		Run: func(ctx context.Context, p harness.Params, pool *harness.Pool) (any, error) {
			return RunDefenseMatrixCtx(ctx, p, pool)
		},
	})
	harness.Register(harness.Scenario{
		Name:        "covert",
		Description: "PHT covert-channel capacity across the defense lineup",
		Defaults:    harness.Params{Bits: 512, Trials: matrixRuns},
		Run: func(ctx context.Context, p harness.Params, pool *harness.Pool) (any, error) {
			return RunCovertComparisonCtx(ctx, p, pool)
		},
	})
	harness.Register(harness.Scenario{
		Name:        "ittage",
		Description: "ITTAGE indirect-predictor extension comparison",
		Defaults:    defaultScaleParams(),
		Run: func(ctx context.Context, p harness.Params, pool *harness.Pool) (any, error) {
			return RunITTAGECtx(ctx, p, pool)
		},
	})
	// The built-in spec fixtures register before any scenario can run,
	// so every process of a distributed run resolves the same workload
	// names (user specs are forwarded separately by the CLIs).
	spec.RegisterBuiltin()
	harness.Register(harness.Scenario{
		Name:        "workloads",
		Description: "spec-driven phase-structured workloads: per-phase OAE and re-randomization across the model lineup",
		Run: func(ctx context.Context, p harness.Params, pool *harness.Pool) (any, error) {
			return RunWorkloadsCtx(ctx, p, pool)
		},
	})
	harness.Register(harness.Scenario{
		Name:        "warmup",
		Description: "warm-state curve: flush penalty vs trace length",
		Defaults: harness.Params{
			Workload: "mysql_128con_50s",
			Sweep:    DefaultWarmupSweep(),
		},
		Run: func(ctx context.Context, p harness.Params, pool *harness.Pool) (any, error) {
			return RunWarmupCtx(ctx, p, pool)
		},
	})
}
