package experiments

import (
	"context"
	"fmt"
	"io"

	"stbpu/internal/attacks"
	"stbpu/internal/harness"
	"stbpu/internal/results"
)

// TableIRow is one attack-surface cell: the same driver run against the
// baseline and STBPU.
type TableIRow struct {
	Attack   string
	Cell     string // Table I classification (RB-HE, RB-AE, EB-HE, EB-AE)
	Baseline attacks.Result
	STBPU    attacks.Result
}

// TableIResult is the executable version of the paper's Table I.
type TableIResult struct {
	Rows []TableIRow
}

// tableIDriver is one attack-surface entry.
type tableIDriver struct {
	name, cell string
	run        func(t *attacks.Target, budget int) attacks.Result
}

// tableIDrivers enumerates the surface.
func tableIDrivers() []tableIDriver {
	return []tableIDriver{
		{"BTB reuse side channel", "RB-HE", func(t *attacks.Target, b int) attacks.Result {
			return attacks.BTBReuseSideChannel(t, b)
		}},
		{"PHT reuse (BranchScope)", "RB-HE", func(t *attacks.Target, b int) attacks.Result {
			return attacks.BranchScope(t, true, b)
		}},
		{"RSB reuse (call-site leak)", "RB-HE", func(t *attacks.Target, b int) attacks.Result {
			return attacks.RSBReuseHomeEffect(t)
		}},
		{"BTB target injection (Spectre v2)", "RB-AE", func(t *attacks.Target, b int) attacks.Result {
			return attacks.SpectreV2(t, b)
		}},
		{"PHT planting (victim path steer)", "RB-AE", func(t *attacks.Target, b int) attacks.Result {
			return attacks.PHTAwayEffect(t, b/10+1)
		}},
		{"BTB planting (victim target steer)", "RB-AE", func(t *attacks.Target, b int) attacks.Result {
			return attacks.BTBAwayEffect(t, b)
		}},
		{"RSB injection (SpectreRSB)", "RB-AE", func(t *attacks.Target, b int) attacks.Result {
			return attacks.SpectreRSB(t, b)
		}},
		{"Same-address-space trojan", "RB-AE", func(t *attacks.Target, b int) attacks.Result {
			return attacks.SameAddressSpaceCollision(t, b)
		}},
		{"BTB eviction detection", "EB-HE", func(t *attacks.Target, b int) attacks.Result {
			return attacks.EvictionSetAttack(t, b)
		}},
		{"RSB overflow (static fallback)", "EB-AE", func(t *attacks.Target, b int) attacks.Result {
			return attacks.RSBOverflowDoS(t, 32)
		}},
		{"Targeted eviction DoS", "EB-AE", func(t *attacks.Target, b int) attacks.Result {
			return attacks.DoSEviction(t, 50, 16)
		}},
	}
}

// baselineAttackBudget bounds the baseline-side scans (baseline attacks
// are deterministic, so a small budget suffices).
const baselineAttackBudget = 64

// RunTableI executes the attack surface against both models on the
// default pool. budget bounds the STBPU-side scans.
func RunTableI(budget int) TableIResult {
	res, _ := RunTableICtx(context.Background(),
		harness.Params{Budget: budget}, harness.Default())
	return res
}

// RunTableICtx executes the surface, sharding (attack × model) cells.
func RunTableICtx(ctx context.Context, p harness.Params, pool *harness.Pool) (TableIResult, error) {
	drivers := tableIDrivers()
	cells, err := harness.Map(ctx, pool, "tablei", len(drivers)*2,
		func(ctx context.Context, shard int, seed uint64) (attacks.Result, error) {
			d := drivers[shard/2]
			if shard%2 == 0 {
				return d.run(attacks.NewBaselineTarget(), baselineAttackBudget), nil
			}
			return d.run(attacks.NewSTBPUTargetSeeded(nil, seed), p.Budget), nil
		})
	if err != nil {
		return TableIResult{}, err
	}
	var res TableIResult
	for i, d := range drivers {
		res.Rows = append(res.Rows, TableIRow{
			Attack:   d.name,
			Cell:     d.cell,
			Baseline: cells[2*i],
			STBPU:    cells[2*i+1],
		})
	}
	return res, nil
}

// Render writes the table (shared renderer: results.Grid).
func (r TableIResult) Render(w io.Writer) {
	g := results.Grid{LabelWidth: 36}
	g.Row(w, "attack", append(results.Cells("%-6s", "cell"), results.Cells("%-18s", "baseline", "STBPU")...)...)
	for _, row := range r.Rows {
		g.Row(w, row.Attack, fmt.Sprintf("%-6s", row.Cell),
			fmt.Sprintf("%-18s", verdict(row.Baseline)), fmt.Sprintf("%-18s", verdict(row.STBPU)))
	}
}

func verdict(r attacks.Result) string {
	if r.Succeeded {
		return fmt.Sprintf("succeeds@%d", r.Trials)
	}
	return fmt.Sprintf("blocked (%d tries)", r.Trials)
}

// Holds reports the paper's security claim over the surface: every
// collision-based attack that succeeds deterministically on the baseline
// is non-deterministic (blocked or brute-force) under STBPU. Capacity
// attacks (RSB overflow) are out of scope by design (§VI-A.6).
func (r TableIResult) Holds() bool {
	for _, row := range r.Rows {
		if row.Attack == "RSB overflow (static fallback)" {
			continue // capacity attack: not claimed
		}
		if row.Baseline.Succeeded && row.STBPU.Succeeded && row.STBPU.Trials <= 1 {
			return false
		}
	}
	return true
}
