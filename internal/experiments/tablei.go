package experiments

import (
	"fmt"
	"io"

	"stbpu/internal/attacks"
)

// TableIRow is one attack-surface cell: the same driver run against the
// baseline and STBPU.
type TableIRow struct {
	Attack   string
	Cell     string // Table I classification (RB-HE, RB-AE, EB-HE, EB-AE)
	Baseline attacks.Result
	STBPU    attacks.Result
}

// TableIResult is the executable version of the paper's Table I.
type TableIResult struct {
	Rows []TableIRow
}

// RunTableI executes the attack surface against both models. budget bounds
// the STBPU-side scans (baseline attacks are deterministic).
func RunTableI(budget int) TableIResult {
	type driver struct {
		name, cell string
		run        func(t *attacks.Target, budget int) attacks.Result
	}
	drivers := []driver{
		{"BTB reuse side channel", "RB-HE", func(t *attacks.Target, b int) attacks.Result {
			return attacks.BTBReuseSideChannel(t, b)
		}},
		{"PHT reuse (BranchScope)", "RB-HE", func(t *attacks.Target, b int) attacks.Result {
			return attacks.BranchScope(t, true, b)
		}},
		{"RSB reuse (call-site leak)", "RB-HE", func(t *attacks.Target, b int) attacks.Result {
			return attacks.RSBReuseHomeEffect(t)
		}},
		{"BTB target injection (Spectre v2)", "RB-AE", func(t *attacks.Target, b int) attacks.Result {
			return attacks.SpectreV2(t, b)
		}},
		{"PHT planting (victim path steer)", "RB-AE", func(t *attacks.Target, b int) attacks.Result {
			return attacks.PHTAwayEffect(t, b/10+1)
		}},
		{"BTB planting (victim target steer)", "RB-AE", func(t *attacks.Target, b int) attacks.Result {
			return attacks.BTBAwayEffect(t, b)
		}},
		{"RSB injection (SpectreRSB)", "RB-AE", func(t *attacks.Target, b int) attacks.Result {
			return attacks.SpectreRSB(t, b)
		}},
		{"Same-address-space trojan", "RB-AE", func(t *attacks.Target, b int) attacks.Result {
			return attacks.SameAddressSpaceCollision(t, b)
		}},
		{"BTB eviction detection", "EB-HE", func(t *attacks.Target, b int) attacks.Result {
			return attacks.EvictionSetAttack(t, b)
		}},
		{"RSB overflow (static fallback)", "EB-AE", func(t *attacks.Target, b int) attacks.Result {
			return attacks.RSBOverflowDoS(t, 32)
		}},
		{"Targeted eviction DoS", "EB-AE", func(t *attacks.Target, b int) attacks.Result {
			return attacks.DoSEviction(t, 50, 16)
		}},
	}
	var res TableIResult
	for _, d := range drivers {
		row := TableIRow{Attack: d.name, Cell: d.cell}
		row.Baseline = d.run(attacks.NewBaselineTarget(), 64)
		row.STBPU = d.run(attacks.NewSTBPUTarget(nil), budget)
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render writes the table.
func (r TableIResult) Render(w io.Writer) {
	fmt.Fprintf(w, "%-36s %-6s %-18s %-18s\n", "attack", "cell", "baseline", "STBPU")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-36s %-6s %-18s %-18s\n", row.Attack, row.Cell,
			verdict(row.Baseline), verdict(row.STBPU))
	}
}

func verdict(r attacks.Result) string {
	if r.Succeeded {
		return fmt.Sprintf("succeeds@%d", r.Trials)
	}
	return fmt.Sprintf("blocked (%d tries)", r.Trials)
}

// Holds reports the paper's security claim over the surface: every
// collision-based attack that succeeds deterministically on the baseline
// is non-deterministic (blocked or brute-force) under STBPU. Capacity
// attacks (RSB overflow) are out of scope by design (§VI-A.6).
func (r TableIResult) Holds() bool {
	for _, row := range r.Rows {
		if row.Attack == "RSB overflow (static fallback)" {
			continue // capacity attack: not claimed
		}
		if row.Baseline.Succeeded && row.STBPU.Succeeded && row.STBPU.Trials <= 1 {
			return false
		}
	}
	return true
}
