package experiments

// The defense-comparison experiment extends the paper's §VIII related-work
// discussion into a measured head-to-head: the four published alternative
// designs (BRB, BSUP, Zhao-DAC21, Exynos-XOR) run over the same traces and
// the same attack drivers as the baseline and STBPU. The paper argues
// these comparisons qualitatively; here they are regenerated as numbers —
// accuracy retention on switch-heavy workloads and an attack-outcome
// matrix per Table I class.

import (
	"context"
	"fmt"
	"io"

	"stbpu/internal/attacks"
	"stbpu/internal/core"
	"stbpu/internal/defenses"
	"stbpu/internal/harness"
	"stbpu/internal/results"
	"stbpu/internal/sim"
	"stbpu/internal/stats"
)

// DefenseModels returns the comparison lineup in presentation order:
// baseline, the four related-work designs, STBPU.
func DefenseModels() []string {
	names := []string{"baseline"}
	for _, k := range defenses.Kinds() {
		names = append(names, k.String())
	}
	return append(names, "STBPU")
}

// newDefenseModel constructs lineup entry idx (DefenseModels order) —
// only the selected model, since each (workload × model) cell needs one
// and predictor tables are expensive to allocate.
func newDefenseModel(idx int, sharedTokens bool, seed uint64) sim.Model {
	kinds := defenses.Kinds()
	switch {
	case idx == 0:
		return sim.New(sim.KindBaseline, sim.Options{Seed: seed})
	case idx <= len(kinds):
		return defenses.New(kinds[idx-1], defenses.Options{Seed: seed})
	default:
		return sim.New(sim.KindSTBPU, sim.Options{SharedTokens: sharedTokens, Seed: seed})
	}
}

// DefenseAccuracyRow is one workload's OAE across the lineup.
type DefenseAccuracyRow struct {
	Workload   string
	OAE        []float64
	Normalized []float64
}

// DefenseAccuracyResult is the accuracy half of the comparison.
type DefenseAccuracyResult struct {
	Models        []string
	Rows          []DefenseAccuracyRow
	AvgNormalized []float64
}

// defenseWorkloads picks a mix that exposes the designs' trade-offs:
// switch-heavy server/interactive workloads (where retention matters) and
// compute-bound SPEC (where raw accuracy matters).
func defenseWorkloads() []string {
	return []string{
		"505.mcf", "541.leela", "520.omnetpp", "531.deepsjeng",
		"apache2_prefork_c256", "mysql_128con_50s", "chrome-1jetstream",
	}
}

// RunDefenseAccuracy measures OAE for every model in the lineup on the
// default pool.
func RunDefenseAccuracy(s Scale) (DefenseAccuracyResult, error) {
	return RunDefenseAccuracyCtx(context.Background(), s.Params(), harness.Default())
}

// RunDefenseAccuracyCtx measures OAE for every model in the lineup,
// sharding (workload × model) cells.
func RunDefenseAccuracyCtx(ctx context.Context, p harness.Params, pool *harness.Pool) (DefenseAccuracyResult, error) {
	s := scaleOf(p)
	names := capList(defenseWorkloads(), s.MaxWorkloads)
	res := DefenseAccuracyResult{Models: DefenseModels()}
	cache := pool.Traces()
	k := len(res.Models)
	// Trace-major: one pass per workload feeds the whole model lineup.
	oaes, err := harness.MapTraceMajor(ctx, pool, "defense-accuracy", len(names)*k,
		func(shard int) int { return shard / k },
		func(shard int) string { return harness.Locality(names[shard/k], s.Records) },
		func(ctx context.Context, shards []int, seeds []uint64) ([]float64, error) {
			cols, prof, err := cache.GetColumns(names[shards[0]/k], s.Records)
			if err != nil {
				return nil, err
			}
			models := make([]sim.Model, len(shards))
			for i, shard := range shards {
				models[i] = newDefenseModel(shard%k, prof.SharedTokens, seeds[i])
			}
			rs, err := sim.RunColumnsMulti(ctx, models, cols)
			if err != nil {
				return nil, err
			}
			out := make([]float64, len(rs))
			for i, r := range rs {
				out[i] = r.OAE()
			}
			return out, nil
		})
	if err != nil {
		return DefenseAccuracyResult{}, err
	}
	res.Rows = make([]DefenseAccuracyRow, len(names))
	for w := range names {
		row := DefenseAccuracyRow{
			Workload:   names[w],
			OAE:        oaes[w*k : (w+1)*k : (w+1)*k],
			Normalized: make([]float64, k),
		}
		for mi := range row.Normalized {
			row.Normalized[mi] = row.OAE[mi] / row.OAE[0]
		}
		res.Rows[w] = row
	}
	res.AvgNormalized = make([]float64, k)
	for mi := range res.Models {
		vals := make([]float64, len(res.Rows))
		for i, r := range res.Rows {
			vals[i] = r.Normalized[mi]
		}
		res.AvgNormalized[mi] = stats.Mean(vals)
	}
	return res, nil
}

// Render writes the accuracy comparison as a text table (shared
// renderer: results.Grid).
func (r DefenseAccuracyResult) Render(w io.Writer) {
	g := results.Grid{LabelWidth: 24}
	g.Row(w, "workload", results.Cells("%12s", r.Models...)...)
	for _, row := range r.Rows {
		g.Row(w, row.Workload, results.Cells("%12.3f", row.Normalized...)...)
	}
	g.Row(w, "AVG (normalized OAE)", results.Cells("%12.3f", r.AvgNormalized...)...)
}

// DefenseMatrixCell is one (attack, model) outcome.
type DefenseMatrixCell struct {
	Attack    string
	Model     string
	Succeeded bool
	Trials    int
}

// DefenseMatrixResult is the security half of the comparison.
type DefenseMatrixResult struct {
	Attacks []string
	Models  []string
	// Cells[a][m] is the outcome of attack a against model m.
	Cells [][]DefenseMatrixCell
}

// defenseAttackBudget bounds the blind scans in the matrix.
const defenseAttackBudget = 512

// matrixRuns is the repeatability requirement: an attack class counts as
// OPEN only if it succeeds in at least matrixWins of matrixRuns
// independent runs. A single lucky blind collision against a randomized
// defense is not a usable channel.
const (
	matrixRuns = 4
	matrixWins = 3
)

// newMatrixTarget builds a fresh instance of the named model for one run.
func newMatrixTarget(models []string, idx int, seed uint64) *attacks.Target {
	name := models[idx]
	switch name {
	case "baseline":
		return attacks.NewBaselineTarget()
	case "STBPU":
		m := core.NewModel(core.ModelConfig{Dir: core.DirSKLCond, Seed: seed})
		return &attacks.Target{Model: &sim.STBPUModel{Inner: m}, Name: name}
	default:
		k := defenses.Kinds()[idx-1]
		return &attacks.Target{
			Model: defenses.New(k, defenses.Options{Seed: seed}),
			Name:  name,
		}
	}
}

// matrixDriver is one Table I attack class adapted to target factories, so
// paired trials (e.g. BlueThunder with both secret values) stay
// independent.
type matrixDriver struct {
	name string
	run  func(mk func() *attacks.Target) attacks.Result
}

// matrixDrivers is the attack lineup of the §VIII matrix.
func matrixDrivers() []matrixDriver {
	return []matrixDriver{
		{"btb-reuse", func(mk func() *attacks.Target) attacks.Result {
			return attacks.BTBReuseSideChannel(mk(), defenseAttackBudget)
		}},
		{"branchscope", func(mk func() *attacks.Target) attacks.Result {
			return attacks.BranchScope(mk(), true, defenseAttackBudget)
		}},
		// BlueThunder succeeds only if it recovers BOTH secret values —
		// a one-sided success is indistinguishable from a coin flip.
		{"bluethunder", func(mk func() *attacks.Target) attacks.Result {
			a := attacks.BlueThunder(mk(), true, 16)
			b := attacks.BlueThunder(mk(), false, 16)
			a.Succeeded = a.Succeeded && b.Succeeded
			a.Trials += b.Trials
			return a
		}},
		{"spectre-v2", func(mk func() *attacks.Target) attacks.Result {
			return attacks.SpectreV2(mk(), defenseAttackBudget)
		}},
		{"same-addr-space", func(mk func() *attacks.Target) attacks.Result {
			return attacks.SameAddressSpaceCollision(mk(), defenseAttackBudget)
		}},
		{"dos-reuse", func(mk func() *attacks.Target) attacks.Result {
			return attacks.DoSReuse(mk(), 64)
		}},
		// The SMT scenario: two hardware threads co-resident on one core.
		// Designs with a single key register per core (BSUP, §VIII
		// "unsuitable for SMT processors") are forced to share one key
		// across threads, which reopens cross-thread reuse; STBPU holds a
		// token register per hardware thread.
		{"btb-reuse (SMT)", func(mk func() *attacks.Target) attacks.Result {
			t := mk()
			if s, ok := t.Model.(interface{ SetSMTShared(bool) }); ok {
				s.SetSMTShared(true)
			}
			return attacks.BTBReuseSideChannel(t, defenseAttackBudget)
		}},
	}
}

// RunDefenseMatrix drives the Table I attack classes against the lineup on
// the default pool.
func RunDefenseMatrix() DefenseMatrixResult {
	res, _ := RunDefenseMatrixCtx(context.Background(),
		harness.Params{Trials: matrixRuns}, harness.Default())
	return res
}

// RunDefenseMatrixCtx drives the matrix, sharding (attack × model × trial)
// cells. An attack class counts as OPEN only if it succeeds in at least
// matrixWins of p.Trials independent runs.
func RunDefenseMatrixCtx(ctx context.Context, p harness.Params, pool *harness.Pool) (DefenseMatrixResult, error) {
	drivers := matrixDrivers()
	res := DefenseMatrixResult{Models: DefenseModels()}
	for _, d := range drivers {
		res.Attacks = append(res.Attacks, d.name)
	}
	trials := p.Trials
	if trials <= 0 {
		trials = matrixRuns
	}
	nm := len(res.Models)
	runs, err := harness.Map(ctx, pool, "defense-matrix", len(drivers)*nm*trials,
		func(ctx context.Context, shard int, seed uint64) (attacks.Result, error) {
			a := shard / (nm * trials)
			m := (shard / trials) % nm
			return drivers[a].run(func() *attacks.Target {
				return newMatrixTarget(res.Models, m, seed)
			}), nil
		})
	if err != nil {
		return DefenseMatrixResult{}, err
	}
	// The win bar scales with the trial count, preserving the 3-of-4
	// default ratio.
	wins := (matrixWins*trials + matrixRuns - 1) / matrixRuns
	res.Cells = make([][]DefenseMatrixCell, len(drivers))
	for a, d := range drivers {
		res.Cells[a] = make([]DefenseMatrixCell, nm)
		for m, name := range res.Models {
			won, total := 0, 0
			for run := 0; run < trials; run++ {
				r := runs[a*nm*trials+m*trials+run]
				if r.Succeeded {
					won++
				}
				total += r.Trials
			}
			res.Cells[a][m] = DefenseMatrixCell{
				Attack: d.name, Model: name,
				Succeeded: won >= wins, Trials: total / trials,
			}
		}
	}
	return res, nil
}

// Render writes the matrix with one row per attack (shared renderer:
// results.Grid).
func (r DefenseMatrixResult) Render(w io.Writer) {
	g := results.Grid{LabelWidth: 18}
	g.Row(w, "attack", results.Cells("%12s", r.Models...)...)
	for a, name := range r.Attacks {
		cells := make([]string, len(r.Models))
		for m := range r.Models {
			verdict := "stopped"
			if r.Cells[a][m].Succeeded {
				verdict = "OPEN"
			}
			cells[m] = fmt.Sprintf("%12s", verdict)
		}
		g.Row(w, name, cells...)
	}
}

// STBPUStopsAll reports whether the STBPU column is fully "stopped" — the
// reproduction claim the tests assert.
func (r DefenseMatrixResult) STBPUStopsAll() bool {
	col := len(r.Models) - 1
	for a := range r.Attacks {
		if r.Cells[a][col].Succeeded {
			return false
		}
	}
	return true
}

// BaselineOpenToAll reports whether the baseline column is fully "OPEN".
func (r DefenseMatrixResult) BaselineOpenToAll() bool {
	for a := range r.Attacks {
		if !r.Cells[a][0].Succeeded {
			return false
		}
	}
	return true
}
