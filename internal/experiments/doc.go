// Package experiments regenerates every table and figure of the paper's
// evaluation (§VII) from this repository's models. It is the scenario
// layer of docs/ARCHITECTURE.md: each experiment is registered as a
// harness.Scenario (see scenarios.go) whose cell space — (model ×
// workload × trial) — is sharded across the harness with per-cell seeds
// derived from the pool's root seed, so results are bit-identical at
// any worker count and on any backend (in-process, subprocess, or
// mixed; scenarios are backend-agnostic because all scheduling goes
// through harness.Map).
//
// Each Run* function returns a structured result with a Render method
// (built on results.Grid, the shared table renderer) producing the same
// rows/series the paper reports, and a Table method flattening it into
// a results.Table so cmd/stbpu-report can diff any two runs metric by
// metric (tables.go holds the Tabler implementations and the typed
// DecodeResult used to reload suite documents).
//
// Two conventions keep cells distributable (docs/ARCHITECTURE.md "The
// determinism contract"):
//
//   - every stochastic input derives from the cell seed, never from
//     time or a shared RNG, and aggregation walks shard order;
//   - intermediate per-cell structs (fig6Cell, covertCell, ittageCell)
//     keep exported fields so a cell's value survives the JSON framing
//     of harness.ExecBackend byte-exactly.
package experiments
