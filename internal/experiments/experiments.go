// Figures 3–6 and the threshold/Γ analyses (see doc.go for the package
// overview; sibling files hold Table I, the defense matrix, the covert
// channel, ITTAGE, and warmup).

package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"stbpu/internal/analysis"
	"stbpu/internal/core"
	"stbpu/internal/cpu"
	"stbpu/internal/harness"
	"stbpu/internal/results"
	"stbpu/internal/sim"
	"stbpu/internal/stats"
	"stbpu/internal/token"
	"stbpu/internal/trace"
)

// Scale bounds experiment size so the same harness serves quick tests,
// benchmarks, and full runs.
type Scale struct {
	// Records is the per-workload trace length.
	Records int
	// MaxWorkloads caps the workload list (0 = all).
	MaxWorkloads int
	// MaxPairs caps the SMT pair list (0 = all).
	MaxPairs int
}

// QuickScale is sized for unit tests and benchmarks.
func QuickScale() Scale { return Scale{Records: 40_000, MaxWorkloads: 6, MaxPairs: 4} }

// FullScale reproduces the complete figures.
func FullScale() Scale { return Scale{Records: 250_000} }

// Params lifts a Scale into harness parameters.
func (s Scale) Params() harness.Params {
	return harness.Params{Records: s.Records, MaxWorkloads: s.MaxWorkloads, MaxPairs: s.MaxPairs}
}

// scaleOf projects harness parameters back onto a Scale.
func scaleOf(p harness.Params) Scale {
	return Scale{Records: p.Records, MaxWorkloads: p.MaxWorkloads, MaxPairs: p.MaxPairs}
}

func capList[T any](xs []T, n int) []T {
	if n > 0 && len(xs) > n {
		return xs[:n]
	}
	return xs
}

// Workload traces come from the pool's shared tracestore.Store: one
// (workload, records) trace is generated once and shared read-only across
// every cell of every scenario in the run, with deduplicated generation
// and a byte-bounded LRU replacing the per-scenario caches each Run*Ctx
// used to carry. Replay-only scenarios fetch the columnar view
// (GetColumns + sim.RunColumnsCtx, the fast path); the cycle-accurate
// CPU scenarios (fig4/fig5/fig6) fetch AoS records via Get.

// ---------------------------------------------------------------------------
// Fig. 3 — trace-driven OAE comparison of the five protection models.

// Fig3Row is one workload's normalized OAE per model.
type Fig3Row struct {
	Workload   string
	OAE        [5]float64 // indexed by sim.Fig3Kinds order
	Normalized [5]float64 // OAE / baseline OAE
}

// Fig3Result is the whole figure.
type Fig3Result struct {
	Rows []Fig3Row
	// AvgNormalized per model (the figure's dashed averages; paper:
	// µcode-1 0.77, µcode-2 0.82, conservative 0.88, STBPU 0.99).
	AvgNormalized [5]float64
}

// RunFig3 regenerates Fig. 3 on the default pool.
func RunFig3(s Scale) (Fig3Result, error) {
	return RunFig3Ctx(context.Background(), s.Params(), harness.Default())
}

// RunFig3Ctx regenerates Fig. 3 on the given pool, sharding
// (workload × model) cells.
func RunFig3Ctx(ctx context.Context, p harness.Params, pool *harness.Pool) (Fig3Result, error) {
	s := scaleOf(p)
	names := capList(trace.Fig3Workloads(), s.MaxWorkloads)
	kinds := sim.Fig3Kinds()
	cache := pool.Traces()
	k := len(kinds)
	// Trace-major: all of a workload's model cells (shard/k equal)
	// replay in one pass over the shared columns.
	oaes, err := harness.MapTraceMajor(ctx, pool, "fig3", len(names)*k,
		func(shard int) int { return shard / k },
		func(shard int) string { return harness.Locality(names[shard/k], s.Records) },
		func(ctx context.Context, shards []int, seeds []uint64) ([]float64, error) {
			cols, prof, err := cache.GetColumns(names[shards[0]/k], s.Records)
			if err != nil {
				return nil, err
			}
			models := make([]sim.Model, len(shards))
			for i, shard := range shards {
				models[i] = sim.New(kinds[shard%k], sim.Options{SharedTokens: prof.SharedTokens, Seed: seeds[i]})
			}
			results, err := sim.RunColumnsMulti(ctx, models, cols)
			if err != nil {
				return nil, err
			}
			out := make([]float64, len(results))
			for i, res := range results {
				out[i] = res.OAE()
			}
			return out, nil
		})
	if err != nil {
		return Fig3Result{}, err
	}
	res := Fig3Result{Rows: make([]Fig3Row, len(names))}
	for w := range names {
		row := Fig3Row{Workload: names[w]}
		copy(row.OAE[:], oaes[w*k:(w+1)*k])
		for ki := range row.Normalized {
			row.Normalized[ki] = row.OAE[ki] / row.OAE[0]
		}
		res.Rows[w] = row
	}
	for ki := 0; ki < k; ki++ {
		vals := make([]float64, len(res.Rows))
		for i, r := range res.Rows {
			vals[i] = r.Normalized[ki]
		}
		res.AvgNormalized[ki] = stats.Mean(vals)
	}
	return res, nil
}

// Render writes the figure as a text table (shared renderer: results.Grid).
func (r Fig3Result) Render(w io.Writer) {
	kinds := sim.Fig3Kinds()
	g := results.Grid{LabelWidth: 24}
	g.Row(w, "workload", results.Cells("%18s", kinds...)...)
	for _, row := range r.Rows {
		cells := make([]string, len(kinds))
		for i := range kinds {
			cells[i] = fmt.Sprintf("%8.3f(%7.3f)", row.OAE[i], row.Normalized[i])
		}
		g.Row(w, row.Workload, cells...)
	}
	g.Row(w, "AVG (normalized)", results.Cells("%18.3f", r.AvgNormalized[:]...)...)
}

// ---------------------------------------------------------------------------
// Fig. 4 — single-workload CPU evaluation: prediction-rate reductions and
// normalized IPC for the four ST models vs their unprotected twins.

// Fig4Cell is one (workload, predictor) comparison.
type Fig4Cell struct {
	DirReduction float64 // unprotected − ST direction rate
	TgtReduction float64 // unprotected − ST target rate
	NormIPC      float64 // ST IPC / unprotected IPC
}

// Fig4Dirs is the predictor order of the figure.
func Fig4Dirs() []core.DirKind {
	return []core.DirKind{core.DirPerceptron, core.DirSKLCond, core.DirTAGE64, core.DirTAGE8}
}

// Fig4Row is one workload's results across the four predictor pairs.
type Fig4Row struct {
	Workload string
	Cells    [4]Fig4Cell
}

// Fig4Result is the whole figure.
type Fig4Result struct {
	Rows []Fig4Row
	// Avg per predictor (paper averages: dir reductions 0.001/0.01/
	// 0.009/0.011; tgt 0.012/−0.001/0.018/0.017; IPC 1.066… our shape
	// target is |dir|≤0.013, |tgt|≤0.02, IPC ≥ 0.96).
	Avg [4]Fig4Cell
}

// runPair runs one workload through the unprotected and ST variants of a
// predictor on the CPU model.
func runPair(ctx context.Context, tr *trace.Trace, dir core.DirKind, seed uint64) (Fig4Cell, error) {
	cfg := cpu.ConfigFor(tr.Name)
	base, err := cpu.New(cfg, &sim.UnitModel{
		ModelName: dir.String(), Unit: core.NewUnprotectedUnit(dir)}).RunCtx(ctx, tr)
	if err != nil {
		return Fig4Cell{}, err
	}
	st, err := cpu.New(cfg, &sim.STBPUModel{
		Inner: core.NewModel(core.ModelConfig{Dir: dir, Seed: seed})}).RunCtx(ctx, tr)
	if err != nil {
		return Fig4Cell{}, err
	}
	return Fig4Cell{
		DirReduction: base.Branch.DirectionRate() - st.Branch.DirectionRate(),
		TgtReduction: base.Branch.TargetRate() - st.Branch.TargetRate(),
		NormIPC:      st.IPC() / base.IPC(),
	}, nil
}

// RunFig4 regenerates Fig. 4 on the default pool.
func RunFig4(s Scale) (Fig4Result, error) {
	return RunFig4Ctx(context.Background(), s.Params(), harness.Default())
}

// RunFig4Ctx regenerates Fig. 4 on the given pool, sharding
// (workload × predictor) cells.
func RunFig4Ctx(ctx context.Context, p harness.Params, pool *harness.Pool) (Fig4Result, error) {
	s := scaleOf(p)
	names := capList(trace.SPEC18(), s.MaxWorkloads)
	dirs := Fig4Dirs()
	cache := pool.Traces()
	d := len(dirs)
	cells, err := harness.Map(ctx, pool, "fig4", len(names)*d,
		func(ctx context.Context, shard int, seed uint64) (Fig4Cell, error) {
			w, di := shard/d, shard%d
			tr, _, err := cache.Get(names[w], s.Records)
			if err != nil {
				return Fig4Cell{}, err
			}
			return runPair(ctx, tr, dirs[di], seed)
		})
	if err != nil {
		return Fig4Result{}, err
	}
	res := Fig4Result{Rows: make([]Fig4Row, len(names))}
	for w := range names {
		row := Fig4Row{Workload: names[w]}
		copy(row.Cells[:], cells[w*d:(w+1)*d])
		res.Rows[w] = row
	}
	res.Avg = avgFig4Cells(res.Rows, func(r Fig4Row) [4]Fig4Cell { return r.Cells })
	return res, nil
}

// avgFig4Cells column-averages the four predictor cells over rows.
func avgFig4Cells[T any](rows []T, cells func(T) [4]Fig4Cell) [4]Fig4Cell {
	var avg [4]Fig4Cell
	for d := 0; d < 4; d++ {
		var dirs, tgts, ipcs []float64
		for _, r := range rows {
			c := cells(r)[d]
			dirs = append(dirs, c.DirReduction)
			tgts = append(tgts, c.TgtReduction)
			ipcs = append(ipcs, c.NormIPC)
		}
		avg[d] = Fig4Cell{
			DirReduction: stats.Mean(dirs),
			TgtReduction: stats.Mean(tgts),
			NormIPC:      stats.Mean(ipcs),
		}
	}
	return avg
}

// fig4TripleCells formats the per-predictor (dir, tgt, ipc) triple the
// Fig. 4 and Fig. 5 tables share.
func fig4TripleCells(cs [4]Fig4Cell) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = fmt.Sprintf("%+0.4f %+0.4f %0.3f", c.DirReduction, c.TgtReduction, c.NormIPC)
	}
	return out
}

// Render writes the figure as a text table (shared renderer: results.Grid).
func (r Fig4Result) Render(w io.Writer) {
	g := results.Grid{LabelWidth: 12, Sep: " | "}
	g.Row(w, "workload", results.Cells("%s dir/tgt/ipc", Fig4Dirs()...)...)
	for _, row := range r.Rows {
		g.Row(w, row.Workload, fig4TripleCells(row.Cells)...)
	}
	g.Row(w, "AVG", fig4TripleCells(r.Avg)...)
}

// ---------------------------------------------------------------------------
// Fig. 5 — SMT pair evaluation.

// Fig5Row is one workload pair.
type Fig5Row struct {
	Pair  [2]string
	Cells [4]Fig4Cell // same cell semantics, harmonic-mean IPC
}

// Fig5Result is the whole figure.
type Fig5Result struct {
	Rows []Fig5Row
	Avg  [4]Fig4Cell
}

// runSMTPair compares unprotected vs ST for one predictor on a pair.
func runSMTPair(ctx context.Context, a, b *trace.Trace, dir core.DirKind, seed uint64) (Fig4Cell, error) {
	cfg := cpu.ConfigFor(a.Name) // pair co-runs share one core configuration
	base, err := cpu.New(cfg, &sim.UnitModel{
		ModelName: dir.String(), Unit: core.NewUnprotectedUnit(dir)}).RunSMTCtx(ctx, a, b)
	if err != nil {
		return Fig4Cell{}, err
	}
	st, err := cpu.New(cfg, &sim.STBPUModel{
		Inner: core.NewModel(core.ModelConfig{Dir: dir, Seed: seed})}).RunSMTCtx(ctx, a, b)
	if err != nil {
		return Fig4Cell{}, err
	}
	dirBase := (base.PerThread[0].Branch.DirectionRate() + base.PerThread[1].Branch.DirectionRate()) / 2
	dirST := (st.PerThread[0].Branch.DirectionRate() + st.PerThread[1].Branch.DirectionRate()) / 2
	tgtBase := (base.PerThread[0].Branch.TargetRate() + base.PerThread[1].Branch.TargetRate()) / 2
	tgtST := (st.PerThread[0].Branch.TargetRate() + st.PerThread[1].Branch.TargetRate()) / 2
	return Fig4Cell{
		DirReduction: dirBase - dirST,
		TgtReduction: tgtBase - tgtST,
		NormIPC:      st.HarmonicMeanIPC() / base.HarmonicMeanIPC(),
	}, nil
}

// RunFig5 regenerates Fig. 5 on the default pool.
func RunFig5(s Scale) (Fig5Result, error) {
	return RunFig5Ctx(context.Background(), s.Params(), harness.Default())
}

// RunFig5Ctx regenerates Fig. 5 on the given pool, sharding
// (pair × predictor) cells.
func RunFig5Ctx(ctx context.Context, p harness.Params, pool *harness.Pool) (Fig5Result, error) {
	s := scaleOf(p)
	pairs := capList(trace.SMTPairs(), s.MaxPairs)
	dirs := Fig4Dirs()
	cache := pool.Traces()
	d := len(dirs)
	cells, err := harness.Map(ctx, pool, "fig5", len(pairs)*d,
		func(ctx context.Context, shard int, seed uint64) (Fig4Cell, error) {
			pi, di := shard/d, shard%d
			a, _, err := cache.Get(pairs[pi][0], s.Records)
			if err != nil {
				return Fig4Cell{}, err
			}
			b, _, err := cache.Get(pairs[pi][1], s.Records)
			if err != nil {
				return Fig4Cell{}, err
			}
			return runSMTPair(ctx, a, b, dirs[di], seed)
		})
	if err != nil {
		return Fig5Result{}, err
	}
	res := Fig5Result{Rows: make([]Fig5Row, len(pairs))}
	for pi := range pairs {
		row := Fig5Row{Pair: pairs[pi]}
		copy(row.Cells[:], cells[pi*d:(pi+1)*d])
		res.Rows[pi] = row
	}
	res.Avg = avgFig4Cells(res.Rows, func(r Fig5Row) [4]Fig4Cell { return r.Cells })
	return res, nil
}

// Render writes the figure as a text table (shared renderer: results.Grid).
func (r Fig5Result) Render(w io.Writer) {
	g := results.Grid{LabelWidth: 26, Sep: " | "}
	g.Row(w, "pair", results.Cells("%s dir/tgt/hm-ipc", Fig4Dirs()...)...)
	for _, row := range r.Rows {
		g.Row(w, row.Pair[0]+"_"+row.Pair[1], fig4TripleCells(row.Cells)...)
	}
	g.Row(w, "AVG", fig4TripleCells(r.Avg)...)
}

// ---------------------------------------------------------------------------
// Fig. 6 — aggressive re-randomization sweep.

// Fig6Point is one r value's averaged outcome for ST_TAGE_SC_L_64KB in SMT.
type Fig6Point struct {
	R        float64
	Accuracy float64 // OAE-style effective accuracy (both threads)
	NormIPC  float64 // harmonic-mean IPC vs unprotected
	Rerands  uint64
}

// Fig6Result is the sweep.
type Fig6Result struct {
	Points []Fig6Point
}

// DefaultFig6Sweep is the paper's r axis: from the operating point down to
// values where re-randomization fires every few hundred events.
func DefaultFig6Sweep() []float64 { return []float64{5e-2, 5e-3, 5e-4, 5e-5, 5e-6} }

// fig6Cell is one (r, pair) measurement before aggregation. Its fields
// are exported so the cell survives the JSON round-trip through a wire
// backend (see internal/harness/exec.go).
type fig6Cell struct {
	Acc, IPC float64
	Rerands  uint64
}

// RunFig6 regenerates Fig. 6 on the default pool.
func RunFig6(s Scale, rs []float64) (Fig6Result, error) {
	p := s.Params()
	p.Sweep = rs
	return RunFig6Ctx(context.Background(), p, harness.Default())
}

// RunFig6Ctx regenerates Fig. 6 on the given pool, sharding (r × pair)
// cells across the sweep in p.Sweep.
func RunFig6Ctx(ctx context.Context, p harness.Params, pool *harness.Pool) (Fig6Result, error) {
	s := scaleOf(p)
	rs := p.Sweep
	if len(rs) == 0 {
		rs = DefaultFig6Sweep()
	}
	pairs := capList(trace.SMTPairsExtended(), s.MaxPairs)
	cache := pool.Traces()
	np := len(pairs)
	// The unprotected TAGE64 baseline depends only on the pair, not on r,
	// so it is simulated once per pair and shared across the sweep (it is
	// deterministic, so first-arrival computation keeps results
	// worker-count-independent). The memo is per-Run-invocation: under a
	// subprocess backend each worker batch re-runs the decomposition and
	// so re-simulates the baselines its cells touch — duplicated work on
	// the same deterministic inputs, never a result difference (the same
	// trade-off as worker-local trace generation; see
	// internal/tracestore/doc.go).
	type baselineEntry struct {
		once sync.Once
		ipc  float64
		err  error
	}
	baselines := make([]baselineEntry, np)
	cells, err := harness.Map(ctx, pool, "fig6", len(rs)*np,
		func(ctx context.Context, shard int, seed uint64) (fig6Cell, error) {
			ri, pi := shard/np, shard%np
			a, _, err := cache.Get(pairs[pi][0], s.Records)
			if err != nil {
				return fig6Cell{}, err
			}
			b, _, err := cache.Get(pairs[pi][1], s.Records)
			if err != nil {
				return fig6Cell{}, err
			}
			th := token.Derive(rs[ri])
			cfg := cpu.ConfigFor(a.Name)
			bl := &baselines[pi]
			bl.once.Do(func() {
				base, err := cpu.New(cfg, &sim.UnitModel{
					ModelName: "TAGE64", Unit: core.NewUnprotectedUnit(core.DirTAGE64)}).RunSMTCtx(ctx, a, b)
				if err != nil {
					bl.err = err
					return
				}
				bl.ipc = base.HarmonicMeanIPC()
			})
			if bl.err != nil {
				return fig6Cell{}, bl.err
			}
			stModel := core.NewModel(core.ModelConfig{Dir: core.DirTAGE64, Thresholds: &th, Seed: seed})
			st, err := cpu.New(cfg, &sim.STBPUModel{Inner: stModel}).RunSMTCtx(ctx, a, b)
			if err != nil {
				return fig6Cell{}, err
			}

			misp := st.PerThread[0].Branch.Mispredicts + st.PerThread[1].Branch.Mispredicts
			total := uint64(st.PerThread[0].Branch.Records + st.PerThread[1].Branch.Records)
			return fig6Cell{
				Acc:     1 - float64(misp)/float64(total),
				IPC:     st.HarmonicMeanIPC() / bl.ipc,
				Rerands: stModel.Rerandomizations(),
			}, nil
		})
	if err != nil {
		return Fig6Result{}, err
	}
	var res Fig6Result
	for ri, r := range rs {
		var accs, ipcs []float64
		var rerands uint64
		for _, c := range cells[ri*np : (ri+1)*np] {
			accs = append(accs, c.Acc)
			ipcs = append(ipcs, c.IPC)
			rerands += c.Rerands
		}
		res.Points = append(res.Points, Fig6Point{
			R:        r,
			Accuracy: stats.Mean(accs),
			NormIPC:  stats.Mean(ipcs),
			Rerands:  rerands,
		})
	}
	return res, nil
}

// Render writes the sweep (shared renderer: results.Grid).
func (r Fig6Result) Render(w io.Writer) {
	g := results.Grid{LabelWidth: 10}
	g.Row(w, "r", append(results.Cells("%-10s", "accuracy", "norm-IPC"), "rerandomizations")...)
	for _, p := range r.Points {
		g.Row(w, fmt.Sprintf("%.0e", p.R),
			fmt.Sprintf("%-10.3f", p.Accuracy), fmt.Sprintf("%-10.3f", p.NormIPC),
			fmt.Sprintf("%d", p.Rerands))
	}
}

// ---------------------------------------------------------------------------
// §VI-A.5 — attack complexities and thresholds.

// ThresholdReport couples the analytic complexity table with derived
// thresholds.
type ThresholdReport struct {
	Complexities []analysis.Complexity
	R            float64
	MispThresh   float64
	EvictThresh  float64
}

// RunThresholds evaluates the §VI numbers at difficulty factor r.
func RunThresholds(r float64) ThresholdReport {
	misp, evict := analysis.Thresholds(r)
	return ThresholdReport{
		Complexities: analysis.SectionVI(),
		R:            r,
		MispThresh:   misp,
		EvictThresh:  evict,
	}
}

// Render writes the report (shared renderer: results.Grid).
func (t ThresholdReport) Render(w io.Writer) {
	rows := append([]analysis.Complexity(nil), t.Complexities...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Events < rows[j].Events })
	g := results.Grid{LabelWidth: 44}
	g.Row(w, "attack", fmt.Sprintf("%-16s", "metric"), "events (50% success)")
	for _, c := range rows {
		g.Row(w, c.Attack, fmt.Sprintf("%-16s", c.Metric), fmt.Sprintf("%.4g", c.Events))
	}
	fmt.Fprintf(w, "\nthresholds at r=%g: mispredictions %.4g, evictions %.4g\n",
		t.R, t.MispThresh, t.EvictThresh)
}

// ---------------------------------------------------------------------------
// Γ sweep — the security side of Fig. 6.

// GammaResult tabulates epoch-success probabilities across r values.
type GammaResult struct {
	Rows []analysis.GammaSweepRow
}

// DefaultGammaSweep is the r axis the bench CLI historically printed.
func DefaultGammaSweep() []float64 {
	return []float64{0.05, 0.005, 5e-4, 5e-5, 5e-6, 5e-7}
}

// RunGamma evaluates the Γ security table at the given r values.
func RunGamma(rs []float64) GammaResult {
	if len(rs) == 0 {
		rs = DefaultGammaSweep()
	}
	return GammaResult{Rows: analysis.GammaSweep(rs)}
}

// Render writes the sweep (shared renderer: results.Grid).
func (g GammaResult) Render(w io.Writer) {
	grid := results.Grid{LabelWidth: 10}
	grid.Row(w, "r", append(results.Cells("%14s", "misp Γ", "evict Γ", "P(epoch)"),
		fmt.Sprintf("%16s", "epochs to 50%"))...)
	for _, row := range g.Rows {
		grid.Row(w, fmt.Sprintf("%.0e", row.R),
			fmt.Sprintf("%14.3e", row.MispThreshold),
			fmt.Sprintf("%14.3e", row.EvictThreshold),
			fmt.Sprintf("%14.5f", row.EpochSuccess),
			fmt.Sprintf("%16.3e", row.EpochsFor50))
	}
}
