// Package experiments regenerates every table and figure of the paper's
// evaluation (§VII) from this repository's models. Each Run* function
// returns a structured result with a Render method producing the same
// rows/series the paper reports; EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"stbpu/internal/analysis"
	"stbpu/internal/core"
	"stbpu/internal/cpu"
	"stbpu/internal/sim"
	"stbpu/internal/stats"
	"stbpu/internal/token"
	"stbpu/internal/trace"
)

// Scale bounds experiment size so the same harness serves quick tests,
// benchmarks, and full runs.
type Scale struct {
	// Records is the per-workload trace length.
	Records int
	// MaxWorkloads caps the workload list (0 = all).
	MaxWorkloads int
	// MaxPairs caps the SMT pair list (0 = all).
	MaxPairs int
}

// QuickScale is sized for unit tests and benchmarks.
func QuickScale() Scale { return Scale{Records: 40_000, MaxWorkloads: 6, MaxPairs: 4} }

// FullScale reproduces the complete figures.
func FullScale() Scale { return Scale{Records: 250_000} }

func capList[T any](xs []T, n int) []T {
	if n > 0 && len(xs) > n {
		return xs[:n]
	}
	return xs
}

// genTrace builds the synthetic trace for a workload at scale.
func genTrace(name string, s Scale) (*trace.Trace, trace.Profile, error) {
	p, err := trace.Preset(name)
	if err != nil {
		return nil, trace.Profile{}, err
	}
	p = p.WithRecords(s.Records)
	tr, err := trace.Generate(p)
	if err != nil {
		return nil, trace.Profile{}, err
	}
	return tr, p, nil
}

// parallelFor runs fn(i) for i in [0,n) on all cores.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	wg.Wait()
}

// ---------------------------------------------------------------------------
// Fig. 3 — trace-driven OAE comparison of the five protection models.

// Fig3Row is one workload's normalized OAE per model.
type Fig3Row struct {
	Workload   string
	OAE        [5]float64 // indexed by sim.Fig3Kinds order
	Normalized [5]float64 // OAE / baseline OAE
}

// Fig3Result is the whole figure.
type Fig3Result struct {
	Rows []Fig3Row
	// AvgNormalized per model (the figure's dashed averages; paper:
	// µcode-1 0.77, µcode-2 0.82, conservative 0.88, STBPU 0.99).
	AvgNormalized [5]float64
}

// RunFig3 regenerates Fig. 3.
func RunFig3(s Scale) (Fig3Result, error) {
	names := capList(trace.Fig3Workloads(), s.MaxWorkloads)
	rows := make([]Fig3Row, len(names))
	errs := make([]error, len(names))
	parallelFor(len(names), func(i int) {
		name := names[i]
		tr, prof, err := genTrace(name, s)
		if err != nil {
			errs[i] = err
			return
		}
		row := Fig3Row{Workload: name}
		for k, kind := range sim.Fig3Kinds() {
			m := sim.New(kind, sim.Options{SharedTokens: prof.SharedTokens, Seed: 7})
			row.OAE[k] = sim.Run(m, tr).OAE()
		}
		for k := range row.Normalized {
			row.Normalized[k] = row.OAE[k] / row.OAE[0]
		}
		rows[i] = row
	})
	for _, err := range errs {
		if err != nil {
			return Fig3Result{}, err
		}
	}
	var res Fig3Result
	res.Rows = rows
	for k := 0; k < 5; k++ {
		vals := make([]float64, len(rows))
		for i, r := range rows {
			vals[i] = r.Normalized[k]
		}
		res.AvgNormalized[k] = stats.Mean(vals)
	}
	return res, nil
}

// Render writes the figure as a text table.
func (r Fig3Result) Render(w io.Writer) {
	kinds := sim.Fig3Kinds()
	fmt.Fprintf(w, "%-24s", "workload")
	for _, k := range kinds {
		fmt.Fprintf(w, " %18s", k)
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-24s", row.Workload)
		for i := range kinds {
			fmt.Fprintf(w, " %8.3f(%7.3f)", row.OAE[i], row.Normalized[i])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-24s", "AVG (normalized)")
	for i := range kinds {
		fmt.Fprintf(w, " %18.3f", r.AvgNormalized[i])
	}
	fmt.Fprintln(w)
}

// ---------------------------------------------------------------------------
// Fig. 4 — single-workload CPU evaluation: prediction-rate reductions and
// normalized IPC for the four ST models vs their unprotected twins.

// Fig4Cell is one (workload, predictor) comparison.
type Fig4Cell struct {
	DirReduction float64 // unprotected − ST direction rate
	TgtReduction float64 // unprotected − ST target rate
	NormIPC      float64 // ST IPC / unprotected IPC
}

// Fig4Dirs is the predictor order of the figure.
func Fig4Dirs() []core.DirKind {
	return []core.DirKind{core.DirPerceptron, core.DirSKLCond, core.DirTAGE64, core.DirTAGE8}
}

// Fig4Row is one workload's results across the four predictor pairs.
type Fig4Row struct {
	Workload string
	Cells    [4]Fig4Cell
}

// Fig4Result is the whole figure.
type Fig4Result struct {
	Rows []Fig4Row
	// Avg per predictor (paper averages: dir reductions 0.001/0.01/
	// 0.009/0.011; tgt 0.012/−0.001/0.018/0.017; IPC 1.066… our shape
	// target is |dir|≤0.013, |tgt|≤0.02, IPC ≥ 0.96).
	Avg [4]Fig4Cell
}

// runPair runs one workload through the unprotected and ST variants of a
// predictor on the CPU model.
func runPair(tr *trace.Trace, dir core.DirKind, seed uint64) Fig4Cell {
	cfg := cpu.ConfigFor(tr.Name)
	base := cpu.New(cfg, &sim.UnitModel{
		ModelName: dir.String(), Unit: core.NewUnprotectedUnit(dir)}).Run(tr)
	st := cpu.New(cfg, &sim.STBPUModel{
		Inner: core.NewModel(core.ModelConfig{Dir: dir, Seed: seed})}).Run(tr)
	return Fig4Cell{
		DirReduction: base.Branch.DirectionRate() - st.Branch.DirectionRate(),
		TgtReduction: base.Branch.TargetRate() - st.Branch.TargetRate(),
		NormIPC:      st.IPC() / base.IPC(),
	}
}

// RunFig4 regenerates Fig. 4.
func RunFig4(s Scale) (Fig4Result, error) {
	names := capList(trace.SPEC18(), s.MaxWorkloads)
	rows := make([]Fig4Row, len(names))
	errs := make([]error, len(names))
	parallelFor(len(names), func(i int) {
		tr, _, err := genTrace(names[i], s)
		if err != nil {
			errs[i] = err
			return
		}
		row := Fig4Row{Workload: names[i]}
		for d, dir := range Fig4Dirs() {
			row.Cells[d] = runPair(tr, dir, 11)
		}
		rows[i] = row
	})
	for _, err := range errs {
		if err != nil {
			return Fig4Result{}, err
		}
	}
	res := Fig4Result{Rows: rows}
	for d := 0; d < 4; d++ {
		var dirs, tgts, ipcs []float64
		for _, r := range rows {
			dirs = append(dirs, r.Cells[d].DirReduction)
			tgts = append(tgts, r.Cells[d].TgtReduction)
			ipcs = append(ipcs, r.Cells[d].NormIPC)
		}
		res.Avg[d] = Fig4Cell{
			DirReduction: stats.Mean(dirs),
			TgtReduction: stats.Mean(tgts),
			NormIPC:      stats.Mean(ipcs),
		}
	}
	return res, nil
}

// Render writes the figure as a text table.
func (r Fig4Result) Render(w io.Writer) {
	fmt.Fprintf(w, "%-12s", "workload")
	for _, d := range Fig4Dirs() {
		fmt.Fprintf(w, " | %s dir/tgt/ipc", d)
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s", row.Workload)
		for _, c := range row.Cells {
			fmt.Fprintf(w, " | %+0.4f %+0.4f %0.3f", c.DirReduction, c.TgtReduction, c.NormIPC)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-12s", "AVG")
	for _, c := range r.Avg {
		fmt.Fprintf(w, " | %+0.4f %+0.4f %0.3f", c.DirReduction, c.TgtReduction, c.NormIPC)
	}
	fmt.Fprintln(w)
}

// ---------------------------------------------------------------------------
// Fig. 5 — SMT pair evaluation.

// Fig5Row is one workload pair.
type Fig5Row struct {
	Pair  [2]string
	Cells [4]Fig4Cell // same cell semantics, harmonic-mean IPC
}

// Fig5Result is the whole figure.
type Fig5Result struct {
	Rows []Fig5Row
	Avg  [4]Fig4Cell
}

// runSMTPair compares unprotected vs ST for one predictor on a pair.
func runSMTPair(a, b *trace.Trace, dir core.DirKind, seed uint64) Fig4Cell {
	cfg := cpu.ConfigFor(a.Name) // pair co-runs share one core configuration
	base := cpu.New(cfg, &sim.UnitModel{
		ModelName: dir.String(), Unit: core.NewUnprotectedUnit(dir)}).RunSMT(a, b)
	st := cpu.New(cfg, &sim.STBPUModel{
		Inner: core.NewModel(core.ModelConfig{Dir: dir, Seed: seed})}).RunSMT(a, b)
	dirBase := (base.PerThread[0].Branch.DirectionRate() + base.PerThread[1].Branch.DirectionRate()) / 2
	dirST := (st.PerThread[0].Branch.DirectionRate() + st.PerThread[1].Branch.DirectionRate()) / 2
	tgtBase := (base.PerThread[0].Branch.TargetRate() + base.PerThread[1].Branch.TargetRate()) / 2
	tgtST := (st.PerThread[0].Branch.TargetRate() + st.PerThread[1].Branch.TargetRate()) / 2
	return Fig4Cell{
		DirReduction: dirBase - dirST,
		TgtReduction: tgtBase - tgtST,
		NormIPC:      st.HarmonicMeanIPC() / base.HarmonicMeanIPC(),
	}
}

// RunFig5 regenerates Fig. 5.
func RunFig5(s Scale) (Fig5Result, error) {
	pairs := capList(trace.SMTPairs(), s.MaxPairs)
	rows := make([]Fig5Row, len(pairs))
	errs := make([]error, len(pairs))
	parallelFor(len(pairs), func(i int) {
		a, _, err := genTrace(pairs[i][0], s)
		if err != nil {
			errs[i] = err
			return
		}
		b, _, err := genTrace(pairs[i][1], s)
		if err != nil {
			errs[i] = err
			return
		}
		row := Fig5Row{Pair: pairs[i]}
		for d, dir := range Fig4Dirs() {
			row.Cells[d] = runSMTPair(a, b, dir, 13)
		}
		rows[i] = row
	})
	for _, err := range errs {
		if err != nil {
			return Fig5Result{}, err
		}
	}
	res := Fig5Result{Rows: rows}
	for d := 0; d < 4; d++ {
		var dirs, tgts, ipcs []float64
		for _, r := range rows {
			dirs = append(dirs, r.Cells[d].DirReduction)
			tgts = append(tgts, r.Cells[d].TgtReduction)
			ipcs = append(ipcs, r.Cells[d].NormIPC)
		}
		res.Avg[d] = Fig4Cell{
			DirReduction: stats.Mean(dirs),
			TgtReduction: stats.Mean(tgts),
			NormIPC:      stats.Mean(ipcs),
		}
	}
	return res, nil
}

// Render writes the figure as a text table.
func (r Fig5Result) Render(w io.Writer) {
	fmt.Fprintf(w, "%-26s", "pair")
	for _, d := range Fig4Dirs() {
		fmt.Fprintf(w, " | %s dir/tgt/hm-ipc", d)
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-26s", row.Pair[0]+"_"+row.Pair[1])
		for _, c := range row.Cells {
			fmt.Fprintf(w, " | %+0.4f %+0.4f %0.3f", c.DirReduction, c.TgtReduction, c.NormIPC)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-26s", "AVG")
	for _, c := range r.Avg {
		fmt.Fprintf(w, " | %+0.4f %+0.4f %0.3f", c.DirReduction, c.TgtReduction, c.NormIPC)
	}
	fmt.Fprintln(w)
}

// ---------------------------------------------------------------------------
// Fig. 6 — aggressive re-randomization sweep.

// Fig6Point is one r value's averaged outcome for ST_TAGE_SC_L_64KB in SMT.
type Fig6Point struct {
	R        float64
	Accuracy float64 // OAE-style effective accuracy (both threads)
	NormIPC  float64 // harmonic-mean IPC vs unprotected
	Rerands  uint64
}

// Fig6Result is the sweep.
type Fig6Result struct {
	Points []Fig6Point
}

// RunFig6 regenerates Fig. 6: the X axis sweeps the attack-difficulty
// factor r from the paper's operating point down to values where
// re-randomization fires every few hundred events.
func RunFig6(s Scale, rs []float64) (Fig6Result, error) {
	if len(rs) == 0 {
		rs = []float64{5e-2, 5e-3, 5e-4, 5e-5, 5e-6}
	}
	pairs := capList(trace.SMTPairsExtended(), s.MaxPairs)
	var res Fig6Result
	for _, r := range rs {
		var accs, ipcs []float64
		var rerands uint64
		th := token.Derive(r)
		for _, pr := range pairs {
			a, _, err := genTrace(pr[0], s)
			if err != nil {
				return Fig6Result{}, err
			}
			b, _, err := genTrace(pr[1], s)
			if err != nil {
				return Fig6Result{}, err
			}
			cfg := cpu.ConfigFor(a.Name)
			base := cpu.New(cfg, &sim.UnitModel{
				ModelName: "TAGE64", Unit: core.NewUnprotectedUnit(core.DirTAGE64)}).RunSMT(a, b)
			stModel := core.NewModel(core.ModelConfig{Dir: core.DirTAGE64, Thresholds: &th, Seed: 17})
			st := cpu.New(cfg, &sim.STBPUModel{Inner: stModel}).RunSMT(a, b)

			misp := st.PerThread[0].Branch.Mispredicts + st.PerThread[1].Branch.Mispredicts
			total := uint64(st.PerThread[0].Branch.Records + st.PerThread[1].Branch.Records)
			accs = append(accs, 1-float64(misp)/float64(total))
			ipcs = append(ipcs, st.HarmonicMeanIPC()/base.HarmonicMeanIPC())
			rerands += stModel.Rerandomizations()
		}
		res.Points = append(res.Points, Fig6Point{
			R:        r,
			Accuracy: stats.Mean(accs),
			NormIPC:  stats.Mean(ipcs),
			Rerands:  rerands,
		})
	}
	return res, nil
}

// Render writes the sweep.
func (r Fig6Result) Render(w io.Writer) {
	fmt.Fprintf(w, "%-10s %-10s %-10s %s\n", "r", "accuracy", "norm-IPC", "rerandomizations")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-10.0e %-10.3f %-10.3f %d\n", p.R, p.Accuracy, p.NormIPC, p.Rerands)
	}
}

// ---------------------------------------------------------------------------
// §VI-A.5 — attack complexities and thresholds.

// ThresholdReport couples the analytic complexity table with derived
// thresholds.
type ThresholdReport struct {
	Complexities []analysis.Complexity
	R            float64
	MispThresh   float64
	EvictThresh  float64
}

// RunThresholds evaluates the §VI numbers at difficulty factor r.
func RunThresholds(r float64) ThresholdReport {
	misp, evict := analysis.Thresholds(r)
	return ThresholdReport{
		Complexities: analysis.SectionVI(),
		R:            r,
		MispThresh:   misp,
		EvictThresh:  evict,
	}
}

// Render writes the report.
func (t ThresholdReport) Render(w io.Writer) {
	rows := append([]analysis.Complexity(nil), t.Complexities...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Events < rows[j].Events })
	fmt.Fprintf(w, "%-44s %-16s %s\n", "attack", "metric", "events (50% success)")
	for _, c := range rows {
		fmt.Fprintf(w, "%-44s %-16s %.4g\n", c.Attack, c.Metric, c.Events)
	}
	fmt.Fprintf(w, "\nthresholds at r=%g: mispredictions %.4g, evictions %.4g\n",
		t.R, t.MispThresh, t.EvictThresh)
}
