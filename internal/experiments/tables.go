package experiments

// Typed results pipeline: every scenario aggregate flattens into a
// results.Table — (cell, metric, value) rows in canonical order — so
// cmd/stbpu-report can diff any two runs metric by metric without
// knowing the aggregates' shapes. DecodeResult is the wire half: it
// turns a suite document's raw `result` JSON back into the concrete
// type by scenario name.

import (
	"encoding/json"
	"fmt"

	"stbpu/internal/attacks"
	"stbpu/internal/results"
	"stbpu/internal/sim"
)

// decodeAs unmarshals raw into a fresh T and returns it as a Tabler.
func decodeAs[T results.Tabler](raw json.RawMessage) (results.Tabler, error) {
	var r T
	err := json.Unmarshal(raw, &r)
	return r, err
}

// DecodeResult unmarshals one suite run's raw result JSON into its
// concrete aggregate by registry name and returns it as a Tabler. It
// errors on scenarios this package doesn't know — callers that must
// handle foreign documents fall back to generic flattening.
func DecodeResult(scenario string, raw json.RawMessage) (results.Tabler, error) {
	switch scenario {
	case "fig3":
		return decodeAs[Fig3Result](raw)
	case "fig4":
		return decodeAs[Fig4Result](raw)
	case "fig5":
		return decodeAs[Fig5Result](raw)
	case "fig6":
		return decodeAs[Fig6Result](raw)
	case "thresholds":
		return decodeAs[ThresholdReport](raw)
	case "gamma":
		return decodeAs[GammaResult](raw)
	case "tablei":
		return decodeAs[TableIResult](raw)
	case "defense-accuracy":
		return decodeAs[DefenseAccuracyResult](raw)
	case "defense-matrix":
		return decodeAs[DefenseMatrixResult](raw)
	case "covert":
		return decodeAs[CovertResult](raw)
	case "ittage":
		return decodeAs[ITTAGEResult](raw)
	case "warmup":
		return decodeAs[WarmupResult](raw)
	case "workloads":
		return decodeAs[WorkloadsResult](raw)
	default:
		return nil, fmt.Errorf("experiments: no typed decoder for scenario %q", scenario)
	}
}

// Table implements results.Tabler.
func (r Fig3Result) Table() results.Table {
	var t results.Table
	kinds := sim.Fig3Kinds()
	for _, row := range r.Rows {
		for i, k := range kinds {
			cell := results.Labels("workload", row.Workload, "model", k.String())
			t.Add(cell, "oae", row.OAE[i])
			t.Add(cell, "norm_oae", row.Normalized[i])
		}
	}
	for i, k := range kinds {
		t.Add(results.Labels("model", k.String()), "avg_norm_oae", r.AvgNormalized[i])
	}
	return t
}

// fig4CellMetrics flattens the (dir, tgt, ipc) triple shared by the
// Fig. 4 and Fig. 5 aggregates.
func fig4CellMetrics(t *results.Table, cell string, c Fig4Cell) {
	t.Add(cell, "dir_reduction", c.DirReduction)
	t.Add(cell, "tgt_reduction", c.TgtReduction)
	t.Add(cell, "norm_ipc", c.NormIPC)
}

// Table implements results.Tabler.
func (r Fig4Result) Table() results.Table {
	var t results.Table
	dirs := Fig4Dirs()
	for _, row := range r.Rows {
		for i, d := range dirs {
			fig4CellMetrics(&t, results.Labels("workload", row.Workload, "predictor", d.String()), row.Cells[i])
		}
	}
	for i, d := range dirs {
		fig4CellMetrics(&t, results.Labels("predictor", d.String()), r.Avg[i])
	}
	return t
}

// Table implements results.Tabler.
func (r Fig5Result) Table() results.Table {
	var t results.Table
	dirs := Fig4Dirs()
	for _, row := range r.Rows {
		pair := row.Pair[0] + "+" + row.Pair[1]
		for i, d := range dirs {
			fig4CellMetrics(&t, results.Labels("pair", pair, "predictor", d.String()), row.Cells[i])
		}
	}
	for i, d := range dirs {
		fig4CellMetrics(&t, results.Labels("predictor", d.String()), r.Avg[i])
	}
	return t
}

// Table implements results.Tabler.
func (r Fig6Result) Table() results.Table {
	var t results.Table
	for _, p := range r.Points {
		cell := results.Labels("r", results.Ftoa(p.R))
		t.Add(cell, "accuracy", p.Accuracy)
		t.Add(cell, "norm_ipc", p.NormIPC)
		t.AddUnit(cell, "rerands", "count", float64(p.Rerands))
	}
	return t
}

// Table implements results.Tabler.
func (r ThresholdReport) Table() results.Table {
	var t results.Table
	for _, c := range r.Complexities {
		t.AddUnit(results.Labels("attack", c.Attack, "metric", c.Metric), "events_50pct", "events", c.Events)
	}
	cell := results.Labels("r", results.Ftoa(r.R))
	t.AddUnit(cell, "misp_threshold", "events", r.MispThresh)
	t.AddUnit(cell, "evict_threshold", "events", r.EvictThresh)
	return t
}

// Table implements results.Tabler.
func (r GammaResult) Table() results.Table {
	var t results.Table
	for _, row := range r.Rows {
		cell := results.Labels("r", results.Ftoa(row.R))
		t.AddUnit(cell, "misp_gamma", "events", row.MispThreshold)
		t.AddUnit(cell, "evict_gamma", "events", row.EvictThreshold)
		t.Add(cell, "epoch_success", row.EpochSuccess)
		t.AddUnit(cell, "epochs_for_50pct", "epochs", row.EpochsFor50)
	}
	return t
}

// attackResultMetrics flattens one attack driver outcome.
func attackResultMetrics(t *results.Table, cell string, r attacks.Result) {
	t.Add(cell, "succeeded", results.Bool01(r.Succeeded))
	t.AddUnit(cell, "trials", "count", float64(r.Trials))
}

// Table implements results.Tabler.
func (r TableIResult) Table() results.Table {
	var t results.Table
	for _, row := range r.Rows {
		attackResultMetrics(&t, results.Labels("attack", row.Attack, "model", "baseline"), row.Baseline)
		attackResultMetrics(&t, results.Labels("attack", row.Attack, "model", "STBPU"), row.STBPU)
	}
	return t
}

// Table implements results.Tabler.
func (r DefenseAccuracyResult) Table() results.Table {
	var t results.Table
	for _, row := range r.Rows {
		for i, m := range r.Models {
			cell := results.Labels("workload", row.Workload, "model", m)
			t.Add(cell, "oae", row.OAE[i])
			t.Add(cell, "norm_oae", row.Normalized[i])
		}
	}
	for i, m := range r.Models {
		t.Add(results.Labels("model", m), "avg_norm_oae", r.AvgNormalized[i])
	}
	return t
}

// Table implements results.Tabler.
func (r DefenseMatrixResult) Table() results.Table {
	var t results.Table
	for a, attack := range r.Attacks {
		for m, model := range r.Models {
			cell := results.Labels("attack", attack, "model", model)
			t.Add(cell, "open", results.Bool01(r.Cells[a][m].Succeeded))
			t.AddUnit(cell, "trials", "count", float64(r.Cells[a][m].Trials))
		}
	}
	return t
}

// Table implements results.Tabler.
func (r CovertResult) Table() results.Table {
	var t results.Table
	for _, row := range r.Rows {
		cell := results.Labels("model", row.Model)
		t.Add(cell, "error_rate", row.ErrorRate)
		t.AddUnit(cell, "capacity", "bits/symbol", row.Capacity)
		t.AddUnit(cell, "bandwidth", "bits/krecord", row.Bandwidth)
		t.AddUnit(cell, "rerands", "count", float64(row.Rerandomizations))
	}
	return t
}

// Table implements results.Tabler.
func (r ITTAGEResult) Table() results.Table {
	var t results.Table
	variants := ITTAGEVariants()
	for _, row := range r.Rows {
		for v, name := range variants {
			cell := results.Labels("workload", row.Workload, "variant", name)
			t.Add(cell, "target_rate", row.TargetRate[v])
			t.Add(cell, "oae", row.OAE[v])
		}
	}
	for v, name := range variants {
		cell := results.Labels("variant", name)
		t.Add(cell, "avg_target_rate", r.AvgTargetRate[v])
		t.Add(cell, "avg_oae", r.AvgOAE[v])
	}
	return t
}

// Table implements results.Tabler.
func (r WarmupResult) Table() results.Table {
	var t results.Table
	for _, p := range r.Points {
		for i, k := range sim.Fig3Kinds() {
			cell := results.Labels("workload", r.Workload, "records", results.Itoa(p.Records), "model", k.String())
			t.Add(cell, "norm_oae", p.NormOAE[i])
		}
	}
	return t
}
