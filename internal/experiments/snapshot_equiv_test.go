// Pins the snapshot tier determinism contract: workloads and warmup
// results are bit-identical with trace-major scheduling on or off and
// the warm-state snapshot tier on or off, at any worker count.

package experiments

import (
	"context"
	"reflect"
	"testing"

	"stbpu/internal/harness"
)

func TestWorkloadsModesBitIdentical(t *testing.T) {
	p := harness.Params{Records: 8000}
	var base WorkloadsResult
	for i, cfg := range []struct{ tm, snaps bool }{{true, true}, {true, false}, {false, true}, {false, false}} {
		pool := harness.NewPool(4, harness.DefaultRootSeed)
		pool.SetTraceMajor(cfg.tm)
		pool.SetSnapshots(cfg.snaps)
		r, err := RunWorkloadsCtx(context.Background(), p, pool)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = r
			continue
		}
		if !reflect.DeepEqual(base, r) {
			t.Fatalf("config %+v differs from base", cfg)
		}
	}
}

func TestWarmupModesBitIdentical(t *testing.T) {
	p := harness.Params{Workload: "mysql_128con_50s", Sweep: []float64{5000, 12000, 20000}}
	var base WarmupResult
	for i, cfg := range []struct{ tm, snaps bool }{{true, true}, {false, false}} {
		pool := harness.NewPool(4, harness.DefaultRootSeed)
		pool.SetTraceMajor(cfg.tm)
		pool.SetSnapshots(cfg.snaps)
		r, err := RunWarmupCtx(context.Background(), p, pool)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = r
			continue
		}
		if !reflect.DeepEqual(base, r) {
			t.Fatalf("config %+v differs from base: %+v vs %+v", cfg, base, r)
		}
	}
}
