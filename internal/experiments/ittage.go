package experiments

// The ITTAGE extension experiment backs the paper's §IV claim that STBPU
// "can be applied to other branch predictor configurations and designs"
// for the *indirect* side: a dedicated ITTAGE target predictor is
// attached ahead of the BTB mode-two path, in unprotected (legacy-hashed)
// and ST-protected (ψ-keyed, φ-encrypted) variants. The reproduction
// claims: (1) ITTAGE improves target prediction on indirect-heavy
// workloads over the BTB-only baseline, and (2) the ST wrapper keeps that
// improvement — protection costs no more on ITTAGE than it does on the
// baseline structures.

import (
	"context"
	"io"

	"stbpu/internal/core"
	"stbpu/internal/harness"
	"stbpu/internal/results"
	"stbpu/internal/sim"
	"stbpu/internal/stats"
)

// ITTAGERow is one workload's four-way comparison.
type ITTAGERow struct {
	Workload string
	// TargetRate per variant: [0] BTB-only, [1] BTB+ITTAGE,
	// [2] ST BTB-only, [3] ST BTB+ITTAGE.
	TargetRate [4]float64
	// OAE per variant, same order.
	OAE [4]float64
}

// ITTAGEResult is the whole comparison.
type ITTAGEResult struct {
	Rows []ITTAGERow
	// AvgTargetRate and AvgOAE are per-variant means.
	AvgTargetRate, AvgOAE [4]float64
}

// ITTAGEVariants names the comparison columns.
func ITTAGEVariants() [4]string {
	return [4]string{"BTB-only", "BTB+ITTAGE", "ST_BTB-only", "ST_BTB+ITTAGE"}
}

// ittageWorkloads picks indirect-heavy presets (interpreter/browser-like
// fan-out) plus one SPEC control.
func ittageWorkloads() []string {
	return []string{
		"chrome-1jetstream", "chrome-1speedometer", "523.xalancbmk",
		"500.perlbench", "502.gcc", "505.mcf",
	}
}

// newITTAGEVariant builds comparison variant v (ITTAGEVariants order).
func newITTAGEVariant(v int, seed uint64) sim.Model {
	switch v {
	case 0:
		return &sim.UnitModel{ModelName: "btb-only", Unit: core.NewUnprotectedUnit(core.DirSKLCond)}
	case 1:
		return &sim.UnitModel{ModelName: "btb+ittage", Unit: core.NewUnprotectedUnitITTAGE(core.DirSKLCond)}
	case 2:
		return &sim.STBPUModel{Inner: core.NewModel(core.ModelConfig{Dir: core.DirSKLCond, Seed: seed})}
	default:
		return &sim.STBPUModel{Inner: core.NewModel(core.ModelConfig{Dir: core.DirSKLCond, Seed: seed, IndirectITTAGE: true})}
	}
}

// ittageCell is one (workload, variant) measurement. Its fields are
// exported so the cell survives the JSON round-trip through a wire
// backend (see internal/harness/exec.go).
type ittageCell struct {
	TargetRate, OAE float64
}

// RunITTAGE measures the four variants on the default pool.
func RunITTAGE(s Scale) (ITTAGEResult, error) {
	return RunITTAGECtx(context.Background(), s.Params(), harness.Default())
}

// RunITTAGECtx measures the four variants, sharding (workload × variant)
// cells.
func RunITTAGECtx(ctx context.Context, p harness.Params, pool *harness.Pool) (ITTAGEResult, error) {
	s := scaleOf(p)
	names := capList(ittageWorkloads(), s.MaxWorkloads)
	cache := pool.Traces()
	const nv = 4
	// Trace-major: the four variants share one pass per workload.
	cells, err := harness.MapTraceMajor(ctx, pool, "ittage", len(names)*nv,
		func(shard int) int { return shard / nv },
		func(shard int) string { return harness.Locality(names[shard/nv], s.Records) },
		func(ctx context.Context, shards []int, seeds []uint64) ([]ittageCell, error) {
			cols, _, err := cache.GetColumns(names[shards[0]/nv], s.Records)
			if err != nil {
				return nil, err
			}
			models := make([]sim.Model, len(shards))
			for i, shard := range shards {
				models[i] = newITTAGEVariant(shard%nv, seeds[i])
			}
			rs, err := sim.RunColumnsMulti(ctx, models, cols)
			if err != nil {
				return nil, err
			}
			out := make([]ittageCell, len(rs))
			for i, res := range rs {
				out[i] = ittageCell{TargetRate: res.TargetRate(), OAE: res.OAE()}
			}
			return out, nil
		})
	if err != nil {
		return ITTAGEResult{}, err
	}
	res := ITTAGEResult{Rows: make([]ITTAGERow, len(names))}
	for w := range names {
		row := ITTAGERow{Workload: names[w]}
		for v := 0; v < nv; v++ {
			row.TargetRate[v] = cells[w*nv+v].TargetRate
			row.OAE[v] = cells[w*nv+v].OAE
		}
		res.Rows[w] = row
	}
	for v := 0; v < nv; v++ {
		tr := make([]float64, len(res.Rows))
		oae := make([]float64, len(res.Rows))
		for i, r := range res.Rows {
			tr[i] = r.TargetRate[v]
			oae[i] = r.OAE[v]
		}
		res.AvgTargetRate[v] = stats.Mean(tr)
		res.AvgOAE[v] = stats.Mean(oae)
	}
	return res, nil
}

// Render writes the comparison as a text table (shared renderer:
// results.Grid).
func (r ITTAGEResult) Render(w io.Writer) {
	names := ITTAGEVariants()
	g := results.Grid{LabelWidth: 22}
	g.Row(w, "workload (target rate)", results.Cells("%14s", names[:]...)...)
	for _, row := range r.Rows {
		g.Row(w, row.Workload, results.Cells("%14.4f", row.TargetRate[:]...)...)
	}
	g.Row(w, "AVG target rate", results.Cells("%14.4f", r.AvgTargetRate[:]...)...)
	g.Row(w, "AVG OAE", results.Cells("%14.4f", r.AvgOAE[:]...)...)
}

// ITTAGEHelps reports claim (1): ITTAGE raises the average target rate.
func (r ITTAGEResult) ITTAGEHelps() bool {
	return r.AvgTargetRate[1] > r.AvgTargetRate[0]
}

// ProtectionKeepsGain reports claim (2): the target-rate *gain* ITTAGE
// provides survives the ST wrapper — the protected pair's improvement is
// within eps of the unprotected pair's improvement. (Comparing protected
// against unprotected directly would conflate ITTAGE with the general ST
// cost the other figures already measure.)
func (r ITTAGEResult) ProtectionKeepsGain(eps float64) bool {
	unprotGain := r.AvgTargetRate[1] - r.AvgTargetRate[0]
	protGain := r.AvgTargetRate[3] - r.AvgTargetRate[2]
	return protGain >= unprotGain-eps
}
